// Migration benchmark for the content-addressed snapshot store (src/store).
//
// Part 1 (delta vs full migration): a long-context LIP runs on a 2-replica
// cluster with recovery enabled; its replica is killed at a swept fraction of
// the baseline finish time. With journal checkpointing on, migration ships
// only the latest checkpoint reference plus the live journal suffix (delta);
// with it off, the full journal crosses the interconnect. Reports shipped
// bytes, recovery latency, and bit-identity of the output.
//
// Part 2 (warm import vs recompute): a hot named KV prefix lives on one
// replica. A consumer pinned to the *other* replica either finds a warm copy
// (published through the store by SharePrefixes) or must recompute the whole
// prefix from tokens. Swept over prefix length to show the crossover past
// which importing beats recomputing, alongside the cost model's prediction
// (Replayer::Choose).
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/recovery/replayer.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// A worker with a large cached context: prefill `prefix_tokens`, then decode
// `decode_tokens` one at a time. Deterministic given the LIP's RNG seed.
LipProgram MakeWorker(int prefix_tokens, int decode_tokens) {
  return [prefix_tokens, decode_tokens](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt;
    for (int i = 0; i < prefix_tokens; ++i) {
      prompt.push_back(static_cast<TokenId>(kFirstWordToken + (i % 1000)));
    }
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> first = co_await ctx.pred(kv, prompt);
    if (!first.ok()) {
      co_return;
    }
    TokenId t = first->back().Sample(ctx.uniform(), 0.8);
    for (int i = 0; i < decode_tokens; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform(), 0.8);
      ctx.emit(" " + std::to_string(t));
    }
    co_return;
  };
}

struct MigrationRun {
  double finish_s = 0.0;
  uint64_t ship_bytes = 0;
  uint64_t delta_ships = 0;
  uint64_t full_ships = 0;
  uint64_t checkpoints = 0;
  std::string output;
  bool diverged = false;
};

MigrationRun RunMigration(bool checkpoint, double kill_frac,
                          double baseline_finish_s) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.enable_recovery = true;
  options.checkpoint_journals = checkpoint;
  options.checkpoint_interval = 8;
  options.delta_migration = checkpoint;
  SymphonyCluster cluster(&sim, options);

  SymphonyCluster::ClusterLip id =
      cluster.Launch("worker", "", MakeWorker(2048, 48));
  MigrationRun run;
  if (kill_frac > 0.0) {
    sim.RunUntil(DurationFromSeconds(kill_frac * baseline_finish_s));
    (void)cluster.KillReplica(id.replica);
  }
  sim.Run();
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  run.finish_s = ToSeconds(sim.now());
  run.ship_bytes = snap.ship_bytes;
  run.delta_ships = snap.delta_ships;
  run.full_ships = snap.full_ships;
  run.checkpoints = snap.checkpoints;
  run.output = cluster.Output(id);
  run.diverged = snap.replay_divergences != 0;
  return run;
}

void MigrationSweep() {
  MigrationRun baseline = RunMigration(/*checkpoint=*/false, 0.0, 0.0);

  BenchTable table({"mode", "kill_frac", "ship_KB", "recovery_ms",
                    "checkpoints", "bit_identical"});
  for (bool checkpoint : {false, true}) {
    for (double frac : {0.25, 0.5, 0.75, 0.9}) {
      MigrationRun run = RunMigration(checkpoint, frac, baseline.finish_s);
      const char* mode = checkpoint ? "delta" : "full";
      double recovery_ms = (run.finish_s - baseline.finish_s) * 1e3;
      bool identical = !run.diverged && run.output == baseline.output;
      table.AddRow({mode, Fmt(frac), Fmt(run.ship_bytes / 1024.0, 1),
                    Fmt(recovery_ms), std::to_string(run.checkpoints),
                    identical ? "yes" : "NO"});
      std::printf(
          "JSON {\"bench\":\"migration\",\"part\":\"ship\",\"mode\":\"%s\","
          "\"kill_frac\":%.2f,\"ship_bytes\":%llu,\"recovery_ms\":%.3f,"
          "\"delta_ships\":%llu,\"full_ships\":%llu,\"checkpoints\":%llu,"
          "\"bit_identical\":%s}\n",
          mode, frac, static_cast<unsigned long long>(run.ship_bytes),
          recovery_ms, static_cast<unsigned long long>(run.delta_ships),
          static_cast<unsigned long long>(run.full_ships),
          static_cast<unsigned long long>(run.checkpoints),
          identical ? "true" : "false");
    }
  }
  std::printf("\nbaseline: finish=%.3fs (prefix=2048 decode=48)\n",
              baseline.finish_s);
  table.Print("journal shipping: checkpoint delta vs full replay (Llama13B)");
}

// Builds a `tokens`-long named prefix at `path` and leaves it shared.
LipProgram MakePublisher(std::string path, int tokens) {
  return [path, tokens](LipContext& ctx) -> Task {
    StatusOr<KvHandle> kv = ctx.kv_create(path, kModeShared);
    if (!kv.ok()) {
      co_return;
    }
    std::vector<TokenId> prompt;
    for (int i = 0; i < tokens; ++i) {
      prompt.push_back(static_cast<TokenId>(kFirstWordToken + (i % 1000)));
    }
    (void)co_await ctx.pred(*kv, prompt);
    co_return;
  };
}

// Bumps the prefix's open count so SharePrefixes considers it hot.
LipProgram MakeToucher(std::string path) {
  return [path](LipContext& ctx) -> Task {
    (void)ctx.kv_open(path);
    co_return;
  };
}

// A consumer that wants `prefix_tokens` of context, then decodes 16 tokens.
// If the named prefix exists locally (warm import landed) it forks it;
// otherwise it recomputes the prefix from tokens.
LipProgram MakeConsumer(std::string path, int prefix_tokens, bool* warm_hit) {
  return [path, prefix_tokens, warm_hit](LipContext& ctx) -> Task {
    KvHandle kv{};
    StatusOr<KvHandle> shared = ctx.kv_open(path);
    if (shared.ok()) {
      *warm_hit = true;
      kv = *ctx.kv_fork(*shared);
    } else {
      *warm_hit = false;
      kv = *ctx.kv_tmp();
      std::vector<TokenId> prompt;
      for (int i = 0; i < prefix_tokens; ++i) {
        prompt.push_back(static_cast<TokenId>(kFirstWordToken + (i % 1000)));
      }
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
      if (!d.ok()) {
        co_return;
      }
    }
    TokenId t = kFirstWordToken;
    for (int i = 0; i < 16; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform(), 0.8);
    }
    co_return;
  };
}

struct ConsumerRun {
  double latency_s = 0.0;
  bool warm_hit = false;
  uint64_t warm_imports = 0;
};

ConsumerRun RunConsumer(int prefix_tokens, bool share) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.share_min_opens = 2;
  options.share_min_tokens = 16;
  SymphonyCluster cluster(&sim, options);

  const std::string path = "/shared/corpus";
  cluster.replica(0).Launch("publisher", MakePublisher(path, prefix_tokens));
  sim.Run();
  cluster.replica(0).Launch("toucher", MakeToucher(path));
  sim.Run();
  if (share) {
    (void)cluster.SharePrefixes();
    sim.Run();  // Let the deferred import land after its transfer time.
  }

  ConsumerRun run;
  double start_s = ToSeconds(sim.now());
  cluster.replica(1).Launch(
      "consumer", MakeConsumer(path, prefix_tokens, &run.warm_hit));
  sim.Run();
  run.latency_s = ToSeconds(sim.now()) - start_s;
  run.warm_imports = cluster.Snapshot().warm_imports;
  return run;
}

void WarmImportSweep() {
  BenchTable table({"prefix_tokens", "cold_ms", "warm_ms", "speedup",
                    "warm_hit", "choose"});
  CostModel cost{ModelConfig::Llama13B()};
  for (int tokens : {64, 256, 1024, 4096, 16384}) {
    ConsumerRun cold = RunConsumer(tokens, /*share=*/false);
    ConsumerRun warm = RunConsumer(tokens, /*share=*/true);
    double cold_ms = cold.latency_s * 1e3;
    double warm_ms = warm.latency_s * 1e3;
    const char* choose =
        Replayer::Choose(cost, static_cast<uint64_t>(tokens)) ==
                RecoveryMode::kImportSnapshot
            ? "import"
            : "recompute";
    table.AddRow({std::to_string(tokens), Fmt(cold_ms), Fmt(warm_ms),
                  Fmt(cold_ms / warm_ms), warm.warm_hit ? "yes" : "no",
                  choose});
    std::printf(
        "JSON {\"bench\":\"migration\",\"part\":\"warm_import\","
        "\"prefix_tokens\":%d,\"cold_ms\":%.3f,\"warm_ms\":%.3f,"
        "\"warm_hit\":%s,\"warm_imports\":%llu,\"choose\":\"%s\"}\n",
        tokens, cold_ms, warm_ms, warm.warm_hit ? "true" : "false",
        static_cast<unsigned long long>(warm.warm_imports), choose);
  }
  table.Print("cross-replica prefix reuse: warm import vs recompute (Llama13B)");
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf(
      "bench_migration: snapshot-store delta migration and prefix sharing\n");
  symphony::MigrationSweep();
  symphony::WarmImportSweep();
  return 0;
}
