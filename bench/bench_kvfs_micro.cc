// Microbenchmarks for KVFS operations (google-benchmark).
//
// Measures the real (host CPU) cost of the KVFS data structures themselves:
// append, fork, copy-on-write divergence, extract, merge, eviction scans,
// and path lookups. These are the operations every pred syscall touches, so
// their constant factors bound the simulator's and — in a real port — the
// serving system's control-plane overhead.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/kvfs/kvfs.h"

namespace symphony {
namespace {

KvfsOptions BigOptions() {
  KvfsOptions o;
  o.gpu_page_budget = 1 << 20;
  o.host_page_budget = 1 << 20;
  return o;
}

std::vector<TokenRecord> MakeRecords(size_t n) {
  std::vector<TokenRecord> recs(n);
  for (size_t i = 0; i < n; ++i) {
    recs[i] = TokenRecord{static_cast<TokenId>(260 + (i % 1000)),
                          static_cast<int32_t>(i), 0x9e3779b9ULL * (i + 1)};
  }
  return recs;
}

void BM_Append(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  std::vector<TokenRecord> recs = MakeRecords(tokens);
  for (auto _ : state) {
    Kvfs fs(BigOptions());
    KvHandle h = *fs.CreateAnonymous(kAdminLip);
    benchmark::DoNotOptimize(fs.Append(h, recs));
    (void)fs.Close(h);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * tokens));
}
BENCHMARK(BM_Append)->Arg(128)->Arg(1024)->Arg(8192);

void BM_Fork(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Kvfs fs(BigOptions());
  KvHandle base = *fs.CreateAnonymous(kAdminLip);
  (void)fs.Append(base, MakeRecords(tokens));
  for (auto _ : state) {
    StatusOr<KvHandle> fork = fs.Fork(base, kAdminLip);
    benchmark::DoNotOptimize(fork);
    (void)fs.Close(*fork);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fork)->Arg(128)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ForkThenDivergentAppend(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Kvfs fs(BigOptions());
  KvHandle base = *fs.CreateAnonymous(kAdminLip);
  (void)fs.Append(base, MakeRecords(tokens));
  std::vector<TokenRecord> tail = MakeRecords(1);
  tail[0].position = static_cast<int32_t>(tokens);
  for (auto _ : state) {
    KvHandle fork = *fs.Fork(base, kAdminLip);
    benchmark::DoNotOptimize(fs.Append(fork, tail));  // Triggers one COW.
    (void)fs.Close(fork);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForkThenDivergentAppend)->Arg(1024)->Arg(8192);

void BM_Extract(benchmark::State& state) {
  const size_t tokens = 8192;
  const size_t keep = static_cast<size_t>(state.range(0));
  Kvfs fs(BigOptions());
  KvHandle base = *fs.CreateAnonymous(kAdminLip);
  (void)fs.Append(base, MakeRecords(tokens));
  std::vector<uint64_t> indices;
  for (size_t i = 0; i < keep; ++i) {
    indices.push_back(i * (tokens / keep));
  }
  for (auto _ : state) {
    StatusOr<KvHandle> extracted = fs.Extract(base, indices, kAdminLip);
    benchmark::DoNotOptimize(extracted);
    (void)fs.Close(*extracted);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * keep));
}
BENCHMARK(BM_Extract)->Arg(16)->Arg(256)->Arg(4096);

void BM_Merge(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Kvfs fs(BigOptions());
  KvHandle a = *fs.CreateAnonymous(kAdminLip);
  KvHandle b = *fs.CreateAnonymous(kAdminLip);
  (void)fs.Append(a, MakeRecords(tokens));
  (void)fs.Append(b, MakeRecords(tokens));
  std::vector<KvHandle> sources = {a, b};
  for (auto _ : state) {
    StatusOr<KvHandle> merged = fs.Merge(sources, kAdminLip);
    benchmark::DoNotOptimize(merged);
    (void)fs.Close(*merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * tokens * 2));
}
BENCHMARK(BM_Merge)->Arg(128)->Arg(2048);

void BM_PathLookup(benchmark::State& state) {
  const int files = static_cast<int>(state.range(0));
  Kvfs fs(BigOptions());
  for (int i = 0; i < files; ++i) {
    KvHandle h = *fs.Open("/kv/file_" + std::to_string(i),
                          OpenOptions{.requester = kAdminLip,
                                      .write = true,
                                      .create = true});
    (void)fs.Close(h);
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.Exists("/kv/file_" + std::to_string(i % files)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathLookup)->Arg(16)->Arg(1024);

void BM_EvictionDropLru(benchmark::State& state) {
  // Steady-state cache churn: insert named files into a full tier so every
  // insert evicts the LRU victim.
  KvfsOptions options;
  options.gpu_page_budget = 64;  // 16 files x 4 pages.
  options.host_page_budget = 0;
  options.eviction = EvictionMode::kDropLru;
  Kvfs fs(options);
  std::vector<TokenRecord> recs = MakeRecords(64);
  uint64_t id = 0;
  for (auto _ : state) {
    KvHandle h = *fs.Open("/cache/" + std::to_string(id++),
                          OpenOptions{.requester = kAdminLip,
                                      .write = true,
                                      .create = true});
    benchmark::DoNotOptimize(fs.Append(h, recs));
    (void)fs.Close(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvictionDropLru);

void BM_TailState(benchmark::State& state) {
  Kvfs fs(BigOptions());
  KvHandle h = *fs.CreateAnonymous(kAdminLip);
  (void)fs.Append(h, MakeRecords(4096));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.TailState(h));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TailState);

}  // namespace
}  // namespace symphony

BENCHMARK_MAIN();
