// Shared helpers for Symphony's benchmark harnesses: simple aligned table
// printing so every bench binary emits paper-style rows.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace symphony {

class BenchTable {
 public:
  explicit BenchTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(const std::string& title) const {
    std::printf("\n=== %s ===\n", title.c_str());
    std::vector<size_t> widths(columns_.size(), 0);
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const std::vector<std::string>& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const std::vector<std::string>& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace symphony

#endif  // BENCH_BENCH_UTIL_H_
