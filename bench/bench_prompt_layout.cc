// Ablation: prompt layout vs prefix caching (the Figure 3 mechanism note).
//
// The Figure 3 gap comes from prompt clients using the natural chat layout
// [instruction, query, document], which a *prefix* cache cannot exploit.
// This bench re-runs one Figure 3 point with the client layout flipped to
// document-first — the configuration maximally favorable to vLLM-style
// caching — and shows the baseline closing most of the gap, isolating
// exactly where Symphony's advantage does and does not come from.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/rag.h"

namespace symphony {
namespace {

RagConfig PointConfig(PromptLayout layout) {
  RagConfig config;
  config.answer_tokens = 32;
  config.num_requests = 350;
  config.request_rate = 12.0;
  config.pareto_index = 0.3;
  config.cache_top_k = 20;
  config.max_active = 16;
  config.baseline_layout = layout;
  return config;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_prompt_layout: why prefix caching misses what LIPs hit\n");

  BenchTable table({"system", "client_layout", "tok/s", "hit%", "ms/tok"});
  RagConfig symphony_config = PointConfig(PromptLayout::kQueryFirst);
  symphony_config.max_active = 20;
  RagRunResult sym = RunRagOnSymphony(symphony_config, ServerOptions{});
  table.AddRow({"symphony", "(lip-controlled)", Fmt(sym.throughput_tok_s, 1),
                Fmt(100.0 * static_cast<double>(sym.cache_hits) /
                        static_cast<double>(sym.completed),
                    1),
                Fmt(sym.mean_latency_per_token_ms)});
  for (PromptLayout layout : {PromptLayout::kQueryFirst, PromptLayout::kDocFirst}) {
    RagRunResult vllm = RunRagOnBaseline(PointConfig(layout), PromptServer::VllmLike());
    const char* name =
        layout == PromptLayout::kQueryFirst ? "query-first (chat)" : "doc-first";
    table.AddRow({"vllm-like", name, Fmt(vllm.throughput_tok_s, 1),
                  Fmt(100.0 * static_cast<double>(vllm.cache_hits) /
                          static_cast<double>(vllm.completed),
                      1),
                  Fmt(vllm.mean_latency_per_token_ms)});
  }
  table.Print("RAG point (Pareto 0.3, 12 req/s): hit rates count any block "
              "reuse, however small");
  return 0;
}
