// Recovery benchmark: checkpoint/restore cost for journaled LIPs.
//
// Part 1 (end-to-end): a long-context LIP runs on a 2-replica cluster with
// recovery enabled; its replica is killed at a swept fraction of the
// baseline finish time and the LIP replays on the survivor. Reports recovery
// latency (finish delay vs an unkilled run) and the wasted-token ratio
// (device tokens processed / baseline tokens) for both KV-rebuild modes:
//   * recompute       — replay resubmits the journaled preds to the GPU;
//   * snapshot-import — replay imports journaled TokenRecords into host KV
//                       and pays one PCIe restore on the next live pred.
// Part 2 (analytic crossover): Replayer::ImportCost vs RecomputeCost swept
// over cached-context length and PCIe bandwidth; reports the token count
// where importing becomes cheaper than recomputing.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/recovery/replayer.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// A worker with a large cached context: prefill `prefix_tokens`, then decode
// `decode_tokens` one at a time. Deterministic given the LIP's RNG seed.
LipProgram MakeWorker(int prefix_tokens, int decode_tokens) {
  return [prefix_tokens, decode_tokens](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt;
    for (int i = 0; i < prefix_tokens; ++i) {
      prompt.push_back(static_cast<TokenId>(kFirstWordToken + (i % 1000)));
    }
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> first = co_await ctx.pred(kv, prompt);
    if (!first.ok()) {
      co_return;
    }
    TokenId t = first->back().Sample(ctx.uniform(), 0.8);
    for (int i = 0; i < decode_tokens; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform(), 0.8);
      ctx.emit(" " + std::to_string(t));
    }
    co_return;
  };
}

struct RunResult {
  double finish_s = 0.0;
  uint64_t device_tokens = 0;  // Pred tokens processed across all replicas.
  std::string output;
  bool diverged = false;
};

uint64_t ClusterDeviceTokens(SymphonyCluster& cluster) {
  uint64_t total = 0;
  for (size_t i = 0; i < cluster.replica_count(); ++i) {
    total += cluster.replica(i).device().stats().new_tokens;
  }
  return total;
}

RunResult RunOnce(int prefix_tokens, int decode_tokens, RecoveryMode mode,
                  double kill_frac, double baseline_finish_s) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.enable_recovery = true;
  options.recovery_mode = mode;
  SymphonyCluster cluster(&sim, options);

  SymphonyCluster::ClusterLip id = cluster.Launch(
      "worker", "", MakeWorker(prefix_tokens, decode_tokens));
  RunResult result;
  if (kill_frac > 0.0) {
    sim.RunUntil(DurationFromSeconds(kill_frac * baseline_finish_s));
    (void)cluster.KillReplica(id.replica);
  }
  sim.Run();
  result.finish_s = ToSeconds(sim.now());
  result.device_tokens = ClusterDeviceTokens(cluster);
  result.output = cluster.Output(id);
  result.diverged = cluster.Snapshot().replay_divergences != 0;
  return result;
}

void EndToEndSweep() {
  constexpr int kPrefix = 2048;
  constexpr int kDecode = 48;
  RunResult baseline =
      RunOnce(kPrefix, kDecode, RecoveryMode::kAuto, /*kill_frac=*/0.0, 0.0);

  BenchTable table({"mode", "kill_frac", "recovery_ms", "wasted_ratio",
                    "device_tokens", "bit_identical"});
  for (RecoveryMode mode :
       {RecoveryMode::kRecompute, RecoveryMode::kImportSnapshot}) {
    for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      RunResult killed =
          RunOnce(kPrefix, kDecode, mode, frac, baseline.finish_s);
      double recovery_ms = (killed.finish_s - baseline.finish_s) * 1e3;
      double wasted = static_cast<double>(killed.device_tokens) /
                      static_cast<double>(baseline.device_tokens);
      bool identical = !killed.diverged && killed.output == baseline.output;
      table.AddRow({RecoveryModeName(mode), Fmt(frac), Fmt(recovery_ms),
                    Fmt(wasted, 3), std::to_string(killed.device_tokens),
                    identical ? "yes" : "NO"});
      std::printf(
          "JSON {\"bench\":\"recovery\",\"part\":\"end_to_end\","
          "\"mode\":\"%s\",\"kill_frac\":%.2f,\"recovery_ms\":%.3f,"
          "\"wasted_ratio\":%.4f,\"device_tokens\":%llu,"
          "\"bit_identical\":%s}\n",
          RecoveryModeName(mode), frac, recovery_ms, wasted,
          static_cast<unsigned long long>(killed.device_tokens),
          identical ? "true" : "false");
    }
  }
  std::printf("\nbaseline: finish=%.3fs device_tokens=%llu (prefix=%d decode=%d)\n",
              baseline.finish_s,
              static_cast<unsigned long long>(baseline.device_tokens), kPrefix,
              kDecode);
  table.Print("kill/replay on 2-replica cluster (Llama13B, A100)");
}

// First context length (scanning powers-of-two style steps) where importing
// the journaled KV beats recomputing it; 0 if import never wins in range.
uint64_t Crossover(const CostModel& cost) {
  for (uint64_t tokens = 16; tokens <= 1u << 20; tokens += 16) {
    if (Replayer::ImportCost(cost, tokens) <=
        Replayer::RecomputeCost(cost, tokens)) {
      return tokens;
    }
  }
  return 0;
}

void AnalyticCrossover() {
  ModelConfig model = ModelConfig::Llama13B();
  {
    BenchTable table({"cached_tokens", "import_ms", "recompute_ms", "winner"});
    CostModel cost(model);
    for (uint64_t tokens : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
      double import_ms = ToSeconds(Replayer::ImportCost(cost, tokens)) * 1e3;
      double recompute_ms =
          ToSeconds(Replayer::RecomputeCost(cost, tokens)) * 1e3;
      const char* winner = import_ms <= recompute_ms ? "import" : "recompute";
      table.AddRow({std::to_string(tokens), Fmt(import_ms, 3),
                    Fmt(recompute_ms, 3), winner});
      std::printf(
          "JSON {\"bench\":\"recovery\",\"part\":\"crossover\","
          "\"cached_tokens\":%llu,\"import_ms\":%.4f,\"recompute_ms\":%.4f,"
          "\"winner\":\"%s\"}\n",
          static_cast<unsigned long long>(tokens), import_ms, recompute_ms,
          winner);
    }
    table.Print("KV rebuild cost: PCIe import vs GPU recompute (Llama13B)");
    std::printf("crossover: import wins from %llu cached tokens (A100 PCIe)\n",
                static_cast<unsigned long long>(Crossover(cost)));
  }
  {
    // The crossover point is a PCIe-bandwidth property: slower links push it
    // toward longer contexts.
    BenchTable table({"pcie_GBps", "crossover_tokens", "speedup@4k"});
    for (double gbps : {8.0, 16.0, 25.0, 64.0}) {
      HardwareConfig hw = HardwareConfig::A100();
      hw.pcie_bandwidth = gbps * 1e9;
      CostModel cost(model, hw);
      uint64_t cross = Crossover(cost);
      double speedup = ToSeconds(Replayer::RecomputeCost(cost, 4096)) /
                       ToSeconds(Replayer::ImportCost(cost, 4096));
      table.AddRow({Fmt(gbps, 0), std::to_string(cross), Fmt(speedup)});
      std::printf(
          "JSON {\"bench\":\"recovery\",\"part\":\"pcie_sweep\","
          "\"pcie_gbps\":%.0f,\"crossover_tokens\":%llu,"
          "\"speedup_4k\":%.3f}\n",
          gbps, static_cast<unsigned long long>(cross), speedup);
    }
    table.Print("import/recompute crossover vs PCIe bandwidth");
  }
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf("bench_recovery: journal replay cost — recompute vs snapshot import\n");
  symphony::AnalyticCrossover();
  symphony::EndToEndSweep();
  return 0;
}
