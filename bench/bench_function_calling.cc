// §2.2 claim: co-locating tool execution with generation removes client
// round trips.
//
// Workload: an agent task that alternates k times between generating a short
// "thought" and executing a tool. Two implementations:
//   * symphony    — one LIP; tools run server-side via call_tool; the KV
//                   context persists in KVFS across the whole task.
//   * client-side — the classic prompt-API pattern: each round is a fresh
//                   completion request carrying the full conversation; the
//                   client pays a network round trip per tool call and per
//                   generation turn. (The baseline has prefix caching, so
//                   re-sent context is not recomputed — only re-transmitted
//                   and re-queued.)
// Sweeps tool-call count and network RTT; reports end-to-end task latency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/prompt_server.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kThoughtTokens = 8;
constexpr int kObservationTokens = 8;
constexpr SimDuration kToolLatency = Millis(30);

// One agent task on Symphony: returns virtual completion time.
double RunSymphonyAgent(int tool_calls) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  (void)server.tools().Register(ToolRegistry::Echo("tool", kToolLatency));

  SimTime finished = 0;
  server.Launch(
      "agent",
      [&, tool_calls](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_tmp();
        std::vector<TokenId> task(32, kFirstWordToken + 7);
        (void)co_await ctx.pred(kv, task);
        TokenId t = 260;
        for (int round = 0; round < tool_calls; ++round) {
          // The token sampled from the previous distribution counts as the
          // first thought token (as it would in a completion API), so only
          // kThoughtTokens - 1 further steps are needed.
          for (int i = 1; i < kThoughtTokens; ++i) {
            StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
            if (!d.ok()) {
              co_return;
            }
            t = d->back().Argmax();
          }
          StatusOr<std::string> result =
              co_await ctx.call_tool("tool", std::to_string(round));
          if (!result.ok()) {
            co_return;
          }
          std::vector<TokenId> obs(kObservationTokens, kFirstWordToken + 9);
          StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, obs);
          if (!d.ok()) {
            co_return;
          }
          t = d->back().Argmax();
        }
        co_return;
      },
      [&](LipId) { finished = sim.now(); });
  sim.Run();
  return ToSeconds(finished);
}

// The client-side emulation against a vLLM-like prompt server.
double RunClientSideAgent(int tool_calls, SimDuration rtt) {
  Simulator sim;
  BaselineOptions options = PromptServer::VllmLike();
  PromptServer server(&sim, options);

  // The "client": a state machine driven by simulator events. Each round:
  // RTT/2 -> completion request (thought) -> RTT/2 -> local tool execution
  // -> RTT/2 -> next request with the grown conversation.
  struct ClientState {
    std::vector<TokenId> conversation = std::vector<TokenId>(32, kFirstWordToken + 7);
    int rounds_left = 0;
    SimTime finished = 0;
  };
  auto state = std::make_shared<ClientState>();
  state->rounds_left = tool_calls;

  // NOLINTNEXTLINE(misc-no-recursion): event-driven round trip loop.
  std::function<void()> next_round = [&sim, &server, state, rtt, &next_round] {
    if (state->rounds_left == 0) {
      state->finished = sim.now();
      return;
    }
    --state->rounds_left;
    // Client -> server (half RTT), generate the thought.
    sim.ScheduleAfter(rtt / 2, [&sim, &server, state, rtt, &next_round] {
      CompletionRequest request;
      request.prompt = state->conversation;
      request.max_new_tokens = kThoughtTokens;
      request.stop_at_eos = false;
      request.done = [&sim, state, rtt, &next_round](const CompletionResponse& r) {
        if (!r.status.ok()) {
          state->finished = sim.now();
          return;
        }
        state->conversation.insert(state->conversation.end(), r.tokens.begin(),
                                   r.tokens.end());
        // Server -> client (half RTT), then the client executes the tool
        // locally and appends the observation.
        sim.ScheduleAfter(rtt / 2 + kToolLatency, [state, &next_round] {
          std::vector<TokenId> obs(kObservationTokens, kFirstWordToken + 9);
          state->conversation.insert(state->conversation.end(), obs.begin(),
                                     obs.end());
          next_round();
        });
      };
      server.Submit(std::move(request));
    });
  };
  next_round();
  sim.Run();
  return ToSeconds(state->finished);
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_function_calling: server-side tools vs client round trips\n");

  for (SimDuration rtt : {Millis(10), Millis(50), Millis(150)}) {
    BenchTable table({"tool_calls", "symphony_s", "client_s", "client/symphony"});
    for (int calls : {1, 2, 4, 8, 16}) {
      double sym = RunSymphonyAgent(calls);
      double client = RunClientSideAgent(calls, rtt);
      table.AddRow({std::to_string(calls), Fmt(sym, 3), Fmt(client, 3),
                    Fmt(client / sym)});
    }
    table.Print("end-to-end agent latency, network RTT " +
                Fmt(ToMillis(rtt), 0) + " ms");
  }
  return 0;
}
