// §4.4 ablation: batch-trigger policy of the inference scheduler.
//
// Open-loop decode workload: N independent LIPs, each running a decode loop,
// joining at Poisson-random times. Sweeps the arrival rate and compares the
// three batch policies on mean latency per token, mean batch size, and GPU
// utilization. Eager launches whatever is queued the moment the device goes
// idle; size/timeout waits for a target; Poisson-adaptive targets the batch
// size the estimated arrival rate can sustain (the paper's proposal).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"
#include "src/sim/distributions.h"

namespace symphony {
namespace {

struct PolicyResult {
  double mean_ms_per_token = 0.0;
  double p99_ms_per_token = 0.0;
  double mean_batch = 0.0;
  double utilization = 0.0;
  uint64_t batches = 0;
  // GPU-seconds consumed per generated token: the efficiency axis that
  // batching improves even when client-visible latency gets worse.
  double gpu_ms_per_token = 0.0;
};

PolicyResult RunDecodeLoad(BatchPolicyKind policy, double lips_per_sec, int num_lips) {
  Simulator sim;
  ServerOptions options;
  options.batch_policy = policy;
  options.batch_target_size = 16;
  options.batch_timeout = Millis(5);
  options.batch_max_wait = Millis(15);
  SymphonyServer server(&sim, options);

  constexpr int kContextTokens = 256;
  constexpr int kDecodeTokens = 48;

  SampleSeries ms_per_token;
  PoissonProcess arrivals(lips_per_sec, /*seed=*/7);
  SimTime when = 0;
  for (int i = 0; i < num_lips; ++i) {
    when += arrivals.NextGap();
    sim.ScheduleAt(when, [&, i] {
      SimTime start = sim.now();
      server.Launch(
          "decode-" + std::to_string(i),
          [&, i](LipContext& ctx) -> Task {
            KvHandle kv = *ctx.kv_tmp();
            std::vector<TokenId> prompt;
            for (int p = 0; p < kContextTokens; ++p) {
              prompt.push_back(
                  static_cast<TokenId>(kFirstWordToken + ((i * 31 + p) % 1000)));
            }
            StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
            if (!d0.ok()) {
              co_return;
            }
            TokenId t = d0->back().Argmax();
            for (int step = 0; step < kDecodeTokens; ++step) {
              StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
              if (!d.ok()) {
                co_return;
              }
              t = d->back().Argmax();
            }
            co_return;
          },
          [&, start](LipId) {
            ms_per_token.Add(ToMillis(sim.now() - start) / kDecodeTokens);
          });
    });
  }
  sim.Run();

  PolicyResult result;
  result.mean_ms_per_token = ms_per_token.mean();
  result.p99_ms_per_token = ms_per_token.Percentile(0.99);
  result.mean_batch = server.device().batch_sizes().mean();
  result.utilization = server.device().Utilization();
  result.batches = server.device().stats().batches;
  result.gpu_ms_per_token =
      ToMillis(server.device().stats().busy_time) /
      static_cast<double>(server.device().stats().new_tokens);
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_batch_policy: two-level scheduler batch triggers (paper 4.4)\n");

  const std::vector<std::pair<BatchPolicyKind, const char*>> policies = {
      {BatchPolicyKind::kEager, "eager"},
      {BatchPolicyKind::kSizeTimeout, "size-timeout"},
      {BatchPolicyKind::kPoissonAdaptive, "poisson"},
  };

  for (double rate : {2.0, 8.0, 24.0}) {
    BenchTable table({"policy", "ms/tok(mean)", "ms/tok(p99)", "mean_batch",
                      "batches", "gpu_util", "gpu_ms/tok"});
    for (const auto& [kind, name] : policies) {
      PolicyResult r = RunDecodeLoad(kind, rate, /*num_lips=*/120);
      table.AddRow({name, Fmt(r.mean_ms_per_token), Fmt(r.p99_ms_per_token),
                    Fmt(r.mean_batch, 1), std::to_string(r.batches),
                    Fmt(r.utilization), Fmt(r.gpu_ms_per_token)});
    }
    table.Print("decode load at " + Fmt(rate, 1) + " new LIPs/s (48-token decodes)");
  }
  return 0;
}
