// Figure 3 reproduction: RAG serving, Symphony vs vLLM-like vs TGI-like.
//
// Left panel:  normalized mean end-to-end latency per generated token as the
//              request rate sweeps, at a fixed Pareto index.
// Right panel: normalized throughput as the Pareto index sweeps, at a fixed
//              (high) request rate. The paper reports Symphony achieving up
//              to ~7x vLLM's throughput when the Pareto index is small.
//
// Workload (paper §5): 100 documents x 3000 tokens; a request picks a topic
// by Pareto-index-controlled popularity, fetches the document, and generates
// an answer. The Symphony LIP retains KV for the top-20 most popular topics
// as named KVFS files; the baselines run the identical token stream as
// prompt completions on the same simulated A100 + Llama-13B cost model.
// With --chunked, Symphony's scheduler runs chunked prefill (512-token
// chunks) + decode-priority packing, making the comparison apples-to-apples
// with the vLLM-like baseline's built-in 2048-token chunked prefill.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/rag.h"

namespace symphony {
namespace {

bool g_chunked = false;

RagConfig BaseConfig() {
  RagConfig config;
  config.num_docs = 100;
  config.doc_tokens = 3000;
  config.query_tokens = 24;
  config.answer_tokens = 32;
  config.num_requests = 350;
  config.cache_top_k = 20;
  config.max_active = 16;
  return config;
}

struct SystemResults {
  RagRunResult symphony;
  RagRunResult vllm;
  RagRunResult tgi;
};

SystemResults RunAll(const RagConfig& config) {
  SystemResults results;
  ServerOptions symphony_options;  // Llama-13B on A100, eager batching.
  if (g_chunked) {
    symphony_options.scheduler.prefill_chunk_tokens = 512;
    symphony_options.scheduler.decode_priority = true;
  }
  // Symphony admits a few more concurrent requests than the baselines' 16
  // slots: forked KV files share document pages, so the private footprint
  // per request is far below a baseline sequence's 3.1k-token allocation.
  RagConfig symphony_config = config;
  symphony_config.max_active = 20;
  results.symphony = RunRagOnSymphony(symphony_config, symphony_options);
  results.vllm = RunRagOnBaseline(config, PromptServer::VllmLike());
  results.tgi = RunRagOnBaseline(config, PromptServer::TgiLike());
  return results;
}

void LatencyVsRate() {
  BenchTable table({"req/s", "symphony", "vllm-like", "tgi-like", "sym_ms/tok",
                    "vllm_ms/tok", "tgi_ms/tok", "sym_hit%"});
  const std::vector<double> rates = {0.5, 1.0, 2.0, 4.0, 8.0};
  double norm = 0.0;
  for (double rate : rates) {
    RagConfig config = BaseConfig();
    config.pareto_index = 0.8;
    config.request_rate = rate;
    SystemResults r = RunAll(config);
    if (norm == 0.0) {
      norm = r.symphony.mean_latency_per_token_ms;  // Normalize to Symphony @ lowest rate.
    }
    double hit_rate = 100.0 * static_cast<double>(r.symphony.cache_hits) /
                      static_cast<double>(r.symphony.completed);
    table.AddRow({Fmt(rate), Fmt(r.symphony.mean_latency_per_token_ms / norm),
                  Fmt(r.vllm.mean_latency_per_token_ms / norm),
                  Fmt(r.tgi.mean_latency_per_token_ms / norm),
                  Fmt(r.symphony.mean_latency_per_token_ms),
                  Fmt(r.vllm.mean_latency_per_token_ms),
                  Fmt(r.tgi.mean_latency_per_token_ms), Fmt(hit_rate, 1)});
  }
  table.Print(
      "Figure 3 (left): normalized mean E2E latency per generated token vs "
      "request rate (Pareto index 0.8; normalized to Symphony @ 0.5 req/s)");
}

void ThroughputVsPareto() {
  BenchTable table({"pareto", "symphony", "vllm-like", "tgi-like", "sym/vllm",
                    "sym/tgi", "sym_tok/s", "vllm_tok/s", "tgi_tok/s",
                    "sym_hit%", "vllm_hit%"});
  const std::vector<double> indices = {0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 4.0};
  for (double index : indices) {
    RagConfig config = BaseConfig();
    config.pareto_index = index;
    config.request_rate = 12.0;  // Offered load beyond miss-path capacity.
    SystemResults r = RunAll(config);
    double norm = r.tgi.throughput_tok_s;  // Normalize to TGI per row.
    double vllm_hits = 100.0 * static_cast<double>(r.vllm.cache_hits) /
                       static_cast<double>(r.vllm.completed);
    double sym_hits = 100.0 * static_cast<double>(r.symphony.cache_hits) /
                      static_cast<double>(r.symphony.completed);
    table.AddRow({Fmt(index), Fmt(r.symphony.throughput_tok_s / norm),
                  Fmt(r.vllm.throughput_tok_s / norm), Fmt(1.0),
                  Fmt(r.symphony.throughput_tok_s / r.vllm.throughput_tok_s),
                  Fmt(r.symphony.throughput_tok_s / r.tgi.throughput_tok_s),
                  Fmt(r.symphony.throughput_tok_s, 1),
                  Fmt(r.vllm.throughput_tok_s, 1), Fmt(r.tgi.throughput_tok_s, 1),
                  Fmt(sym_hits, 1), Fmt(vllm_hits, 1)});
  }
  table.Print(
      "Figure 3 (right): normalized throughput vs Pareto index (12 req/s "
      "offered; normalized to TGI-like per row)");
}

}  // namespace
}  // namespace symphony

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunked") == 0) {
      symphony::g_chunked = true;
    } else {
      std::fprintf(stderr, "usage: %s [--chunked]\n", argv[0]);
      return 2;
    }
  }
  std::printf("bench_fig3_rag: paper Figure 3 — prompt caching via LIPs%s\n",
              symphony::g_chunked
                  ? " (Symphony: chunked prefill + decode priority)"
                  : "");
  symphony::LatencyVsRate();
  symphony::ThroughputVsPareto();
  return 0;
}
