// Stall-free scheduling: chunked prefill + decode-priority packing, and
// cluster prefill/decode disaggregation.
//
// Part 1 (single server): a 50/50 mix of chat decode streams and 3000-token
// RAG prefills sweeps the prefill chunk size. Unchunked, every decode that
// lands behind a 3000-token prefill batch waits the full ~500ms (Llama-13B on
// A100); chunking bounds the batch a decode can get stuck behind to the chunk
// budget, at the price of a few extra kernel launches per prefill.
//
// Part 2 (cluster): the same mix on four replicas — all-unified, all-unified
// with chunking, and 2 prefill + 2 decode (disaggregated: hinted launches
// prefill on P replicas, then migrate to a D replica through the snapshot
// store). Decode replicas never run a fresh multi-thousand-token prefill, so
// decode tail latency drops below even the chunked-unified config.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
// The binary exits nonzero when the headline properties regress:
//   * some chunked config improves decode p99 >= 5x over unchunked while
//     losing <= 10% prefill throughput;
//   * chunked decode p99 does not regress above unified;
//   * 2P+2D beats 4-unified on decode p99.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

constexpr int kChatLips = 6;
constexpr int kChatDecodes = 200;
constexpr int kRagLips = 6;
constexpr int kRagDecodes = 16;
constexpr uint64_t kDocTokens = 3000;
constexpr SimDuration kRagStagger = Millis(250);
constexpr SimDuration kRagStart = Millis(50);
// The cluster part offers 4x the single-replica load, so an all-unified
// fleet sees continuous prefill traffic on every replica — the regime
// disaggregation is for. (Under light load any config keeps decodes clean.)
constexpr int kClusterChat = 12;
constexpr int kClusterRag = 16;
constexpr SimDuration kClusterRagStagger = Millis(100);

std::vector<TokenId> SyntheticTokens(uint64_t n, uint64_t stream) {
  std::vector<TokenId> tokens(n);
  for (uint64_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<TokenId>(1 + (i * 13 + stream * 7) % 299);
  }
  return tokens;
}

// A chat turn: short prompt, then a long greedy decode stream with each
// inter-token latency sampled.
LipProgram ChatProgram(int id, int decodes, SampleSeries* decode_ms,
                       uint64_t* decode_tokens) {
  return [id, decodes, decode_ms, decode_tokens](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred(kv, SyntheticTokens(64, static_cast<uint64_t>(id)));
    if (!d.ok()) {
      co_return;
    }
    TokenId next = d->back().Argmax();
    for (int s = 0; s < decodes; ++s) {
      SimTime t0 = ctx.now();
      StatusOr<std::vector<Distribution>> dd = co_await ctx.pred1(kv, next);
      if (!dd.ok()) {
        co_return;
      }
      decode_ms->Add(ToMillis(ctx.now() - t0));
      ++*decode_tokens;
      next = dd->back().Argmax();
    }
    co_return;
  };
}

// A RAG request: 3000-token document prefill, then a short answer. The
// prefill completion time is sampled once per request id — a LIP that is
// migrated mid-life (disaggregation handoff) re-runs its program under
// replay, so the guard keeps the journal-served re-execution from recording
// a second, near-zero sample.
LipProgram RagProgram(int id, SimTime launched_at, SampleSeries* prefill_ms,
                      std::vector<char>* prefill_recorded,
                      SimTime* last_prefill_done, uint64_t* decode_tokens) {
  return [id, launched_at, prefill_ms, prefill_recorded, last_prefill_done,
          decode_tokens](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred(
        kv, SyntheticTokens(kDocTokens, 100 + static_cast<uint64_t>(id)));
    if (!d.ok()) {
      co_return;
    }
    if (!(*prefill_recorded)[id]) {
      (*prefill_recorded)[id] = 1;
      prefill_ms->Add(ToMillis(ctx.now() - launched_at));
      *last_prefill_done = std::max(*last_prefill_done, ctx.now());
    }
    TokenId next = d->back().Argmax();
    for (int s = 0; s < kRagDecodes; ++s) {
      StatusOr<std::vector<Distribution>> dd = co_await ctx.pred1(kv, next);
      if (!dd.ok()) {
        co_return;
      }
      ++*decode_tokens;
      next = dd->back().Argmax();
    }
    co_return;
  };
}

struct MixResult {
  double decode_p50_ms = 0.0;
  double decode_p99_ms = 0.0;
  double prefill_mean_ms = 0.0;
  double prefill_tok_s = 0.0;  // Prefill tokens / prefill phase makespan.
  double goodput_tok_s = 0.0;  // Generated (decode) tokens / total duration.
  uint64_t prefill_chunks = 0;
  uint64_t handoffs = 0;
  double queue_wait_p99_ms = 0.0;
};

// ---- Part 1: single-server chunk-size sweep ------------------------------

MixResult RunSingleServerMix(uint64_t chunk) {
  Simulator sim;
  ServerOptions options;  // Llama-13B on A100.
  options.scheduler.prefill_chunk_tokens = chunk;
  options.scheduler.decode_priority = chunk > 0;
  SymphonyServer server(&sim, options);

  SampleSeries decode_ms;
  SampleSeries prefill_ms;
  std::vector<char> prefill_recorded(kRagLips, 0);
  SimTime last_prefill_done = 0;
  uint64_t decode_tokens = 0;
  for (int c = 0; c < kChatLips; ++c) {
    sim.ScheduleAt(Millis(5) * c, [&, c] {
      server.Launch("chat",
                    ChatProgram(c, kChatDecodes, &decode_ms, &decode_tokens));
    });
  }
  for (int r = 0; r < kRagLips; ++r) {
    SimTime at = kRagStart + kRagStagger * r;
    sim.ScheduleAt(at, [&, r, at] {
      server.Launch("rag", RagProgram(r, at, &prefill_ms, &prefill_recorded,
                                      &last_prefill_done, &decode_tokens));
    });
  }
  sim.Run();

  MixResult result;
  result.decode_p50_ms = decode_ms.Percentile(0.5);
  result.decode_p99_ms = decode_ms.Percentile(0.99);
  result.prefill_mean_ms = prefill_ms.mean();
  double prefill_span_s = ToMillis(last_prefill_done - kRagStart) / 1000.0;
  result.prefill_tok_s =
      static_cast<double>(kRagLips * kDocTokens) / prefill_span_s;
  result.goodput_tok_s =
      static_cast<double>(decode_tokens) / (ToMillis(sim.now()) / 1000.0);
  result.prefill_chunks = server.scheduler().stats().prefill_chunks;
  result.queue_wait_p99_ms = server.scheduler().queue_waits_ms().count() > 0
                                 ? server.scheduler().queue_waits_ms().Percentile(0.99)
                                 : 0.0;
  return result;
}

bool ChunkSweep() {
  const std::vector<uint64_t> chunks = {0, 1024, 512, 256, 128};
  BenchTable table({"chunk", "dec_p50_ms", "dec_p99_ms", "p99_speedup",
                    "prefill_s", "prefill_tok/s", "tput_loss%", "goodput_tok/s",
                    "chunks", "qwait_p99_ms"});
  std::vector<MixResult> results;
  for (uint64_t chunk : chunks) {
    results.push_back(RunSingleServerMix(chunk));
  }
  const MixResult& base = results[0];
  bool any_headline = false;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const MixResult& r = results[i];
    double speedup = r.decode_p99_ms > 0 ? base.decode_p99_ms / r.decode_p99_ms : 0;
    double loss = 100.0 * (1.0 - r.prefill_tok_s / base.prefill_tok_s);
    if (i > 0 && speedup >= 5.0 && loss <= 10.0) {
      any_headline = true;
    }
    table.AddRow({std::to_string(chunks[i]), Fmt(r.decode_p50_ms),
                  Fmt(r.decode_p99_ms), Fmt(speedup), Fmt(r.prefill_mean_ms / 1000.0),
                  Fmt(r.prefill_tok_s, 0), Fmt(loss, 1), Fmt(r.goodput_tok_s, 1),
                  std::to_string(r.prefill_chunks), Fmt(r.queue_wait_p99_ms)});
    std::printf(
        "JSON {\"bench\":\"disaggregation\",\"part\":\"chunk_sweep\","
        "\"chunk\":%llu,\"decode_p50_ms\":%.3f,\"decode_p99_ms\":%.3f,"
        "\"p99_speedup\":%.2f,\"prefill_mean_s\":%.3f,\"prefill_tok_s\":%.1f,"
        "\"prefill_tput_loss_pct\":%.2f,\"goodput_tok_s\":%.2f,"
        "\"prefill_chunks\":%llu,\"queue_wait_p99_ms\":%.3f}\n",
        static_cast<unsigned long long>(chunks[i]), r.decode_p50_ms,
        r.decode_p99_ms, speedup, r.prefill_mean_ms / 1000.0, r.prefill_tok_s,
        loss, r.goodput_tok_s,
        static_cast<unsigned long long>(r.prefill_chunks),
        r.queue_wait_p99_ms);
  }
  table.Print(
      "Part 1: chunk-size sweep, 6 chat decode streams vs 6x3000-token "
      "prefills on one replica (Llama-13B/A100)");
  if (!any_headline) {
    std::printf(
        "FAIL: no chunked config reached >=5x decode p99 improvement with "
        "<=10%% prefill throughput loss\n");
  }
  return any_headline;
}

// ---- Part 2: cluster configurations --------------------------------------

MixResult RunClusterMix(bool chunked, bool disagg) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 4;
  options.routing = RoutingPolicy::kLeastLoaded;
  options.enable_recovery = true;  // Identical overhead across configs.
  if (disagg) {
    options.roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                     ReplicaRole::kDecode, ReplicaRole::kDecode};
    options.disagg_min_prefill_tokens = 512;
    options.checkpoint_journals = true;  // Ship checkpoint ref + suffix.
  }
  if (chunked) {
    options.server.scheduler.prefill_chunk_tokens = 512;
    options.server.scheduler.decode_priority = true;
  }
  SymphonyCluster cluster(&sim, options);

  SampleSeries decode_ms;
  SampleSeries prefill_ms;
  std::vector<char> prefill_recorded(kClusterRag, 0);
  SimTime last_prefill_done = 0;
  uint64_t decode_tokens = 0;
  for (int c = 0; c < kClusterChat; ++c) {
    sim.ScheduleAt(Millis(3) * c, [&, c] {
      cluster.Launch("chat", "",
                     ChatProgram(c, kChatDecodes, &decode_ms, &decode_tokens));
    });
  }
  for (int r = 0; r < kClusterRag; ++r) {
    SimTime at = kRagStart + kClusterRagStagger * r;
    sim.ScheduleAt(at, [&, r, at] {
      cluster.Launch("rag", "", /*prefill_hint_tokens=*/kDocTokens,
                     RagProgram(r, at, &prefill_ms, &prefill_recorded,
                                &last_prefill_done, &decode_tokens));
    });
  }
  sim.Run();

  MixResult result;
  result.decode_p50_ms = decode_ms.Percentile(0.5);
  result.decode_p99_ms = decode_ms.Percentile(0.99);
  result.prefill_mean_ms = prefill_ms.mean();
  double prefill_span_s = ToMillis(last_prefill_done - kRagStart) / 1000.0;
  result.prefill_tok_s =
      static_cast<double>(kClusterRag * kDocTokens) / prefill_span_s;
  result.goodput_tok_s =
      static_cast<double>(decode_tokens) / (ToMillis(sim.now()) / 1000.0);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  result.prefill_chunks = snap.prefill_chunks;
  result.handoffs = snap.disagg_handoffs;
  result.queue_wait_p99_ms = snap.queue_wait_p99_ms;
  return result;
}

bool ClusterComparison() {
  struct Config {
    const char* name;
    bool chunked;
    bool disagg;
  };
  const std::vector<Config> configs = {
      {"4xunified", false, false},
      {"4xunified+chunk", true, false},
      {"2P+2D+chunk", true, true},
  };
  BenchTable table({"config", "dec_p50_ms", "dec_p99_ms", "prefill_s",
                    "prefill_tok/s", "goodput_tok/s", "handoffs",
                    "qwait_p99_ms"});
  std::vector<MixResult> results;
  for (const Config& config : configs) {
    results.push_back(RunClusterMix(config.chunked, config.disagg));
  }
  for (size_t i = 0; i < configs.size(); ++i) {
    const MixResult& r = results[i];
    table.AddRow({configs[i].name, Fmt(r.decode_p50_ms), Fmt(r.decode_p99_ms),
                  Fmt(r.prefill_mean_ms / 1000.0), Fmt(r.prefill_tok_s, 0),
                  Fmt(r.goodput_tok_s, 1), std::to_string(r.handoffs),
                  Fmt(r.queue_wait_p99_ms)});
    std::printf(
        "JSON {\"bench\":\"disaggregation\",\"part\":\"cluster\","
        "\"config\":\"%s\",\"decode_p50_ms\":%.3f,\"decode_p99_ms\":%.3f,"
        "\"prefill_mean_s\":%.3f,\"prefill_tok_s\":%.1f,"
        "\"goodput_tok_s\":%.2f,\"handoffs\":%llu,"
        "\"queue_wait_p99_ms\":%.3f}\n",
        configs[i].name, r.decode_p50_ms, r.decode_p99_ms,
        r.prefill_mean_ms / 1000.0, r.prefill_tok_s, r.goodput_tok_s,
        static_cast<unsigned long long>(r.handoffs), r.queue_wait_p99_ms);
  }
  table.Print(
      "Part 2: 4-replica cluster, unified vs chunked vs disaggregated "
      "(2 prefill + 2 decode), same mixed workload");
  bool ok = true;
  if (results[1].decode_p99_ms > results[0].decode_p99_ms) {
    std::printf("FAIL: chunked decode p99 (%.2fms) above unified (%.2fms)\n",
                results[1].decode_p99_ms, results[0].decode_p99_ms);
    ok = false;
  }
  if (results[2].decode_p99_ms >= results[0].decode_p99_ms) {
    std::printf("FAIL: 2P+2D decode p99 (%.2fms) does not beat 4xunified "
                "(%.2fms)\n",
                results[2].decode_p99_ms, results[0].decode_p99_ms);
    ok = false;
  }
  if (results[2].handoffs == 0) {
    std::printf("FAIL: disaggregated config performed no handoffs\n");
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf(
      "bench_disaggregation: stall-free scheduling — chunked prefill, "
      "decode-priority packing, prefill/decode disaggregation\n");
  bool ok = symphony::ChunkSweep();
  ok = symphony::ClusterComparison() && ok;
  if (!ok) {
    std::printf("\nbench_disaggregation: REGRESSION (see FAIL lines above)\n");
    return 1;
  }
  std::printf("\nbench_disaggregation: all gates passed\n");
  return 0;
}
