// §4.3 mechanism: offload blocked threads' KV during tool I/O.
//
// Workload: agents with large contexts alternate between decoding and slow
// tool calls. Aggregate KV exceeds the device budget, so whatever sits idle
// on-GPU starves the others. With offload_kv_on_tool_io enabled, Symphony
// parks a blocked LIP's KV in host memory for the duration of the call and
// the next pred restores it; disabled, idle KV squats on the device.
//
// Sweeps the number of agents; reports makespan, failed preds (allocation
// pressure), and PCIe traffic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kContextTokens = 6000;   // ~4.9GB of KV per agent.
constexpr int kRounds = 4;
constexpr int kDecodePerRound = 8;
constexpr SimDuration kToolTime = Seconds(2);
constexpr SimDuration kArrivalGap = Millis(800);

struct OffloadResult {
  double makespan_s = 0.0;
  uint64_t completed = 0;
  uint64_t failed_preds = 0;
  uint64_t offloaded_pages = 0;
  uint64_t restored_pages = 0;
  double transfer_gb = 0.0;
};

OffloadResult RunAgents(int agents, bool offload) {
  Simulator sim;
  ServerOptions options;
  options.offload_kv_on_tool_io = offload;
  options.min_io_for_offload = Millis(100);
  SymphonyServer server(&sim, options);
  // Lognormal latency desynchronizes the agents' tool waits.
  (void)server.tools().Register(
      ToolRegistry::Lookup("slow_tool", kToolTime, /*sigma=*/0.6));

  OffloadResult result;
  for (int a = 0; a < agents; ++a) {
    sim.ScheduleAt(kArrivalGap * a, [&, a] {
    server.Launch(
        "agent-" + std::to_string(a),
        [&, a](LipContext& ctx) -> Task {
          KvHandle kv = *ctx.kv_tmp();
          std::vector<TokenId> context(
              kContextTokens, static_cast<TokenId>(kFirstWordToken + a));
          // Prefill in chunks (the scheduler caps batch tokens anyway).
          StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, context);
          if (!d0.ok()) {
            ++result.failed_preds;
            co_return;
          }
          TokenId t = d0->back().Argmax();
          for (int round = 0; round < kRounds; ++round) {
            StatusOr<std::string> io =
                co_await ctx.call_tool("slow_tool", std::to_string(round));
            if (!io.ok()) {
              co_return;
            }
            for (int i = 0; i < kDecodePerRound; ++i) {
              StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
              if (!d.ok()) {
                ++result.failed_preds;
                co_return;
              }
              t = d->back().Argmax();
            }
          }
          ++result.completed;
          co_return;
        });
    });
  }
  sim.Run();
  result.makespan_s = ToSeconds(sim.now());
  result.offloaded_pages = server.kvfs().stats().offloaded_pages;
  result.restored_pages = server.kvfs().stats().restored_pages;
  result.transfer_gb =
      static_cast<double>(server.device().stats().transfer_bytes) / 1e9;
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf(
      "bench_io_offload: KV offload while blocked on tool I/O (paper 4.3)\n");
  std::printf("device KV budget ~61k tokens; each agent holds ~6k tokens\n");

  BenchTable table({"agents", "offload", "makespan_s", "completed",
                    "failed_preds", "pages_out", "pages_in", "pcie_gb"});
  for (int agents : {8, 12, 16, 24}) {
    for (bool offload : {false, true}) {
      OffloadResult r = RunAgents(agents, offload);
      table.AddRow({std::to_string(agents), offload ? "on" : "off",
                    Fmt(r.makespan_s), std::to_string(r.completed),
                    std::to_string(r.failed_preds),
                    std::to_string(r.offloaded_pages),
                    std::to_string(r.restored_pages), Fmt(r.transfer_gb, 1)});
    }
  }
  table.Print("agents with 6k-token contexts blocked on 2s tool calls, "
              "arriving every 0.8s");
  return 0;
}
