// §4.1 mechanism: speculative decoding as a LIP.
//
// pred accepts multiple tokens and returns a distribution per token, so a
// LIP can implement draft-and-verify entirely in program logic: draft k
// tokens with a small model, pass all k to one pred on the target, verify
// with the standard acceptance rule, kv_truncate the rejected suffix, and
// continue. The draft model runs inside the LIP; its cost is charged with an
// analytic per-token latency (a 1.1B model's decode step).
//
// Sweeps draft length k; reports tokens/s vs plain autoregressive decoding
// and the measured acceptance rate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/decode/speculative.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kGenerateTokens = 256;
constexpr int kPromptTokens = 128;

// Per-token decode latency of the in-LIP draft model (1.1B params, memory
// bound: ~2.2GB weights / 1.6TB/s effective).
constexpr SimDuration kDraftTokenCost = Micros(1400);

struct SpecResult {
  double seconds = 0.0;
  double tokens_per_s = 0.0;
  double acceptance = 0.0;
  uint64_t target_steps = 0;
};

SpecResult RunPlainDecode() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  SpecResult result;
  server.Launch("plain", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt(kPromptTokens, kFirstWordToken + 3);
    StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
    if (!d0.ok()) {
      co_return;
    }
    TokenId t = d0->back().Sample(ctx.uniform());
    for (int i = 1; i < kGenerateTokens; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform());
    }
    co_return;
  });
  sim.Run();
  result.seconds = ToSeconds(sim.now());
  result.tokens_per_s = kGenerateTokens / result.seconds;
  result.target_steps = server.device().stats().batches;
  return result;
}

SpecResult RunSpeculative(int draft_len) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  Model draft(ModelConfig::Llama1BDraft());

  uint64_t drafted = 0;
  uint64_t accepted = 0;

  server.Launch("spec", [&, draft_len](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt(kPromptTokens, kFirstWordToken + 3);
    StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
    if (!d0.ok()) {
      co_return;
    }
    Distribution target_before = d0->back();
    Rng accept_rng(ctx.rand64());

    int generated = 0;
    while (generated < kGenerateTokens) {
      // Draft k tokens with the small model, starting from the same hidden
      // state (same model family), charging the draft model's decode time.
      StatusOr<uint64_t> len = ctx.kv_len(kv);
      if (!len.ok()) {
        co_return;
      }
      HiddenState state = target_before.state();
      std::vector<TokenId> draft_tokens;
      std::vector<Distribution> draft_dists;
      int32_t pos = static_cast<int32_t>(*len);
      for (int j = 0; j < draft_len; ++j) {
        Distribution dd = draft.Predict(state);
        TokenId t = dd.Sample(ctx.uniform());
        draft_dists.push_back(dd);
        draft_tokens.push_back(t);
        state = draft.Advance(state, t, pos++);
      }
      co_await ctx.sleep(kDraftTokenCost * draft_len);

      // One pred verifies all k draft tokens on the target model.
      StatusOr<std::vector<Distribution>> target_dists =
          co_await ctx.pred(kv, draft_tokens);
      if (!target_dists.ok()) {
        co_return;
      }
      SpeculativeOutcome outcome = VerifyDraft(target_before, draft_tokens,
                                               draft_dists, *target_dists,
                                               accept_rng);
      drafted += static_cast<uint64_t>(draft_len);
      accepted += outcome.accepted;

      // Roll back the rejected suffix, then append the correction/bonus
      // token with a final single-token pred.
      uint64_t keep = *len + outcome.accepted;
      if (outcome.accepted < draft_tokens.size()) {
        if (!ctx.kv_truncate(kv, keep).ok()) {
          co_return;
        }
      }
      StatusOr<std::vector<Distribution>> next =
          co_await ctx.pred1(kv, outcome.next_token);
      if (!next.ok()) {
        co_return;
      }
      target_before = next->back();
      generated += static_cast<int>(outcome.accepted) + 1;
    }
    co_return;
  });
  sim.Run();

  SpecResult result;
  result.seconds = ToSeconds(sim.now());
  result.tokens_per_s = kGenerateTokens / result.seconds;
  result.acceptance =
      drafted > 0 ? static_cast<double>(accepted) / static_cast<double>(drafted) : 0;
  result.target_steps = server.device().stats().batches;
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_speculative: draft-and-verify via multi-token pred (paper 4.1)\n");

  SpecResult plain = RunPlainDecode();
  BenchTable table({"mode", "tok/s", "speedup", "acceptance", "target_steps"});
  table.AddRow({"plain", Fmt(plain.tokens_per_s, 1), Fmt(1.0), "-",
                std::to_string(plain.target_steps)});
  for (int k : {2, 3, 4, 6, 8}) {
    SpecResult spec = RunSpeculative(k);
    table.AddRow({"draft k=" + std::to_string(k), Fmt(spec.tokens_per_s, 1),
                  Fmt(spec.tokens_per_s / plain.tokens_per_s),
                  Fmt(spec.acceptance), std::to_string(spec.target_steps)});
  }
  table.Print("decoding 256 tokens on Llama-13B with a 1.1B in-LIP draft model");
  return 0;
}
