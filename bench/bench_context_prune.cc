// KVFS ablation: runtime context pruning with kv_extract.
//
// Long-context generation where the LIP periodically prunes its KV file to
// "attention sinks + recent window" (StreamingLLM-style), using kv_extract
// to build the pruned file and kv_remove to drop the original. Attention
// cost grows with context length, so pruning trades (simulated) model
// fidelity for decode speed and memory. The serving system needs no special
// support — pruning is four lines of LIP code.
//
// Sweeps generation length; reports time per token and KV pages held.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kSinkTokens = 4;
constexpr int kWindowTokens = 512;
constexpr int kPruneCheckEvery = 256;

struct PruneResult {
  double ms_per_token = 0.0;
  uint64_t final_context = 0;
  uint64_t gpu_pages_end = 0;
};

PruneResult RunGeneration(int total_tokens, bool prune) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  PruneResult result;
  server.Launch("longgen", [&, total_tokens, prune](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt(64, kFirstWordToken + 11);
    StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
    if (!d0.ok()) {
      co_return;
    }
    TokenId t = d0->back().Sample(ctx.uniform());
    for (int i = 1; i < total_tokens; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform());

      if (prune && i % kPruneCheckEvery == 0) {
        StatusOr<uint64_t> len = ctx.kv_len(kv);
        if (len.ok() && *len > kSinkTokens + kWindowTokens) {
          // Keep the attention sinks and the recent window; drop the middle.
          std::vector<uint64_t> keep(kSinkTokens);
          std::iota(keep.begin(), keep.end(), 0);
          for (uint64_t idx = *len - kWindowTokens; idx < *len; ++idx) {
            keep.push_back(idx);
          }
          StatusOr<KvHandle> pruned = ctx.kv_extract(kv, keep);
          if (pruned.ok()) {
            (void)ctx.kv_close(kv);
            kv = *pruned;
          }
        }
      }
    }
    StatusOr<uint64_t> len = ctx.kv_len(kv);
    result.final_context = len.ok() ? *len : 0;
    result.gpu_pages_end = server.kvfs().pool().stats().gpu_pages_used;
    co_return;
  });
  sim.Run();
  result.ms_per_token = ToMillis(sim.now()) / total_tokens;
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_context_prune: kv_extract for streaming windows\n");

  BenchTable table({"gen_tokens", "mode", "ms/token", "final_ctx", "gpu_pages"});
  for (int total : {1024, 4096, 12288}) {
    PruneResult full = RunGeneration(total, /*prune=*/false);
    PruneResult pruned = RunGeneration(total, /*prune=*/true);
    table.AddRow({std::to_string(total), "full", Fmt(full.ms_per_token),
                  std::to_string(full.final_context),
                  std::to_string(full.gpu_pages_end)});
    table.AddRow({std::to_string(total), "pruned", Fmt(pruned.ms_per_token),
                  std::to_string(pruned.final_context),
                  std::to_string(pruned.gpu_pages_end)});
  }
  table.Print("single-stream generation, sinks=4 window=512 (prune every 256)");
  return 0;
}
