// Overload benchmark: goodput and tail latency vs offered load, with the
// protection stack (admission control + per-LIP deadlines) on vs off.
//
// Method: measure the server's saturation capacity with a closed-loop run,
// then offer open-loop Poisson arrivals at 0.5x, 1x, 2x, and 4x that
// capacity for a fixed window. Every job carries the same latency target
// (a multiple of its unloaded latency); a job counts toward goodput only if
// it completes within the target.
//   * unprotected — every arrival launches immediately; nothing is ever
//     rejected or cancelled, so past saturation the batch queue grows
//     without bound and everyone's latency blows through the target.
//   * protected   — arrivals go through SymphonyServer::Submit with a
//     bounded queue, deadline-aware rejection, and an enforced per-LIP
//     deadline that cancels doomed work so capacity goes to jobs that can
//     still meet their target.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kPrefixTokens = 24;
constexpr int kDecodeTokens = 12;
constexpr double kDeadlineSlack = 4.0;  // Latency target = slack x unloaded.
constexpr double kArrivalWindowS = 4.0;

// One serving job: prefill a fixed prompt, then decode a few tokens.
LipProgram MakeJob() {
  return [](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt;
    for (int i = 0; i < kPrefixTokens; ++i) {
      prompt.push_back(static_cast<TokenId>(kFirstWordToken + (i % 50)));
    }
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> first = co_await ctx.pred(kv, prompt);
    if (!first.ok()) {
      co_return;
    }
    TokenId t = first->back().Argmax();
    for (int i = 0; i < kDecodeTokens; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Argmax();
    }
    co_return;
  };
}

ServerOptions BaseOptions(bool protect) {
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  if (protect) {
    options.admission.enabled = true;
    // Sized for a batch engine: concurrency up to two full batches keeps the
    // device saturated; the queue bound caps waiting at roughly one more.
    options.admission.max_live_lips = 64;
    options.admission.max_queue = 64;
  }
  return options;
}

// Unloaded single-job latency — the basis for the latency target.
double UnloadedLatencyS() {
  Simulator sim;
  SymphonyServer server(&sim, BaseOptions(false));
  server.Launch("probe", MakeJob());
  sim.Run();
  return ToSeconds(sim.now());
}

// Saturation capacity: closed-loop, many jobs at t=0, completions/second.
double CapacityJobsPerS() {
  constexpr int kJobs = 96;
  Simulator sim;
  SymphonyServer server(&sim, BaseOptions(false));
  for (int i = 0; i < kJobs; ++i) {
    server.Launch("cap" + std::to_string(i), MakeJob());
  }
  sim.Run();
  return kJobs / ToSeconds(sim.now());
}

struct LoadResult {
  uint64_t offered = 0;
  uint64_t completed = 0;   // Ran to completion (not cancelled, not shed).
  uint64_t on_time = 0;     // Completed within the latency target.
  uint64_t rejected = 0;    // Shed at admission (protected arm only).
  uint64_t expired = 0;     // Cancelled by deadline expiry.
  double goodput_per_s = 0.0;
  double p99_ms = 0.0;      // Over completed jobs; 0 when none completed.
};

LoadResult RunLoad(double rate_per_s, bool protect, double deadline_s,
                   uint64_t seed) {
  Simulator sim;
  SymphonyServer server(&sim, BaseOptions(protect));

  LoadResult result;
  std::vector<double> latencies_ms;
  Rng arrivals(seed);

  // Pre-compute the Poisson arrival times for the window.
  std::vector<SimTime> schedule;
  double t = 0.0;
  while (t < kArrivalWindowS) {
    t += -std::log(1.0 - arrivals.NextDouble()) / rate_per_s;
    if (t < kArrivalWindowS) {
      schedule.push_back(DurationFromSeconds(t));
    }
  }
  result.offered = schedule.size();

  for (size_t i = 0; i < schedule.size(); ++i) {
    SimTime arrival = schedule[i];
    sim.ScheduleAt(arrival, [&, arrival, i] {
      SymphonyServer::LaunchSpec spec;
      spec.name = "job" + std::to_string(i);
      spec.program = MakeJob();
      // The protected arm enforces the target as a real deadline; the
      // unprotected arm only scores against it after the fact.
      if (protect) {
        spec.deadline = DurationFromSeconds(deadline_s);
      }
      spec.on_exit = [&, arrival](LipId lip) {
        if (server.runtime().DeadlineExpired(lip)) {
          ++result.expired;
          return;
        }
        ++result.completed;
        double latency_s = ToSeconds(sim.now() - arrival);
        latencies_ms.push_back(latency_s * 1e3);
        if (latency_s <= deadline_s) {
          ++result.on_time;
        }
      };
      SymphonyServer::AdmitResult admitted = server.Submit(std::move(spec));
      if (!admitted.status.ok()) {
        ++result.rejected;
      }
    });
  }
  sim.Run();

  result.goodput_per_s = result.on_time / kArrivalWindowS;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    size_t idx = (latencies_ms.size() * 99 + 99) / 100;
    result.p99_ms = latencies_ms[std::min(idx, latencies_ms.size()) - 1];
  }
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;

  double unloaded_s = UnloadedLatencyS();
  double capacity = CapacityJobsPerS();
  double deadline_s = kDeadlineSlack * unloaded_s;
  std::printf("unloaded latency: %.2f ms, capacity: %.1f jobs/s, "
              "latency target: %.2f ms\n",
              unloaded_s * 1e3, capacity, deadline_s * 1e3);
  std::printf("JSON {\"bench\":\"overload\",\"row\":\"calibration\","
              "\"unloaded_ms\":%.3f,\"capacity_per_s\":%.3f,"
              "\"deadline_ms\":%.3f}\n",
              unloaded_s * 1e3, capacity, deadline_s * 1e3);

  BenchTable table({"load", "mode", "offered", "completed", "on-time",
                    "rejected", "expired", "goodput/s", "p99 ms"});
  for (double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    double rate = multiplier * capacity;
    for (bool protect : {false, true}) {
      LoadResult r = RunLoad(rate, protect, deadline_s, /*seed=*/42);
      const char* mode = protect ? "protected" : "unprotected";
      table.AddRow({Fmt(multiplier, 1) + "x", mode,
                    std::to_string(r.offered), std::to_string(r.completed),
                    std::to_string(r.on_time), std::to_string(r.rejected),
                    std::to_string(r.expired), Fmt(r.goodput_per_s, 1),
                    Fmt(r.p99_ms, 2)});
      std::printf("JSON {\"bench\":\"overload\",\"load_x\":%.2f,"
                  "\"mode\":\"%s\",\"offered\":%llu,\"completed\":%llu,"
                  "\"on_time\":%llu,\"rejected\":%llu,\"expired\":%llu,"
                  "\"goodput_per_s\":%.3f,\"p99_ms\":%.3f}\n",
                  multiplier, mode,
                  static_cast<unsigned long long>(r.offered),
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.on_time),
                  static_cast<unsigned long long>(r.rejected),
                  static_cast<unsigned long long>(r.expired),
                  r.goodput_per_s, r.p99_ms);
    }
  }
  table.Print("Overload: goodput and p99 vs offered load (window " +
              Fmt(kArrivalWindowS, 1) + "s)");
  return 0;
}
