// §6 multi-tenancy: queue discipline under a noisy neighbor.
//
// Tenant A floods the inference queue (many threads, chunky preds); tenant B
// is an interactive LIP issuing one small decode at a time. Under FIFO, B's
// requests wait behind A's backlog; under fair share the scheduler round-
// robins across LIPs when forming batches, bounding B's queueing delay.
// Quotas compose with this: capping A's pred tokens bounds the damage too.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

struct FairnessResult {
  double victim_mean_ms = 0.0;
  double victim_p99_ms = 0.0;
  double hog_tokens_per_s = 0.0;
};

FairnessResult RunNoisyNeighbor(QueueDiscipline discipline,
                                uint64_t hog_quota_tokens) {
  Simulator sim;
  ServerOptions options;
  options.scheduler.discipline = discipline;
  // A modest per-batch token cap so a flooded queue means real backlog
  // (several batches deep) instead of one giant batch absorbing everyone.
  options.scheduler.max_batch_tokens = 1024;
  SymphonyServer server(&sim, options);

  constexpr SimTime kEnd = Seconds(30);
  uint64_t hog_tokens = 0;

  // The hog: 40 threads, each looping 64-token preds forever, recycling its
  // KV file so the experiment measures queue contention, not memory.
  LipQuota hog_quota;
  hog_quota.max_pred_tokens = hog_quota_tokens;
  server.LaunchWithQuota("hog", hog_quota, [&](LipContext& ctx) -> Task {
    for (int worker = 0; worker < 40; ++worker) {
      ctx.spawn([&, worker](LipContext& inner) -> Task {
        KvHandle kv = *inner.kv_tmp();
        while (inner.now() < kEnd) {
          StatusOr<uint64_t> len = inner.kv_len(kv);
          if (len.ok() && *len >= 1024) {
            (void)inner.kv_close(kv);
            StatusOr<KvHandle> fresh = inner.kv_tmp();
            if (!fresh.ok()) {
              co_return;
            }
            kv = *fresh;
          }
          std::vector<TokenId> chunk(
              64, static_cast<TokenId>(kFirstWordToken + worker));
          StatusOr<std::vector<Distribution>> d = co_await inner.pred(kv, chunk);
          if (!d.ok()) {
            co_return;  // Quota exhausted.
          }
          hog_tokens += 64;
        }
        co_return;
      });
    }
    co_await ctx.join_all();
    co_return;
  });

  // The victim: one small pred every 50ms; measures its own syscall latency.
  SampleSeries victim_ms;
  server.Launch("victim", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    TokenId t = 260;
    while (ctx.now() < kEnd) {
      SimTime start = ctx.now();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      victim_ms.Add(ToMillis(ctx.now() - start));
      t = d->back().Argmax();
      co_await ctx.sleep(Millis(50));
    }
    co_return;
  });

  sim.Run();
  FairnessResult result;
  result.victim_mean_ms = victim_ms.mean();
  result.victim_p99_ms = victim_ms.Percentile(0.99);
  result.hog_tokens_per_s = static_cast<double>(hog_tokens) / ToSeconds(kEnd);
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_fairness: noisy neighbor vs queue discipline (paper 6)\n");

  BenchTable table({"discipline", "hog_quota", "victim_ms(mean)",
                    "victim_ms(p99)", "hog_tok/s"});
  struct Case {
    QueueDiscipline discipline;
    uint64_t quota;
    const char* discipline_name;
    const char* quota_name;
  };
  const std::vector<Case> cases = {
      {QueueDiscipline::kFifo, UINT64_MAX, "fifo", "unlimited"},
      {QueueDiscipline::kFairShare, UINT64_MAX, "fair-share", "unlimited"},
      {QueueDiscipline::kFifo, 40000, "fifo", "40k tokens"},
      {QueueDiscipline::kFairShare, 40000, "fair-share", "40k tokens"},
  };
  for (const Case& c : cases) {
    FairnessResult r = RunNoisyNeighbor(c.discipline, c.quota);
    table.AddRow({c.discipline_name, c.quota_name, Fmt(r.victim_mean_ms, 1),
                  Fmt(r.victim_p99_ms, 1), Fmt(r.hog_tokens_per_s, 0)});
  }
  table.Print("interactive tenant latency while a 40-thread tenant floods "
              "the queue (30 virtual seconds)");
  return 0;
}
