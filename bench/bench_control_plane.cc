// Control plane benchmark (src/ctrl).
//
// Part 1 (detection & recovery vs heartbeat period): a seeded FaultPlan
// crash kills a replica mid-run; the detector's only signal is the missing
// heartbeats. Sweeping the heartbeat period (with the suspect/lease/declare
// thresholds scaled in proportion) shows the classic trade: a faster cadence
// detects and recovers sooner but spends more control traffic. Reports the
// declare latency (crash -> dead declared), the sweep's own detection age,
// recovery MTTR (completion delta vs the fault-free run), heartbeat volume,
// and whether the recovered output stayed bit-identical.
//
// Part 2 (partition handling): the same detector faced with silence that is
// NOT a crash. A short blip (< lease) must cost only a suspicion; a long
// window forces the full false-death path — source self-fence, declare,
// failover, readmission at the bumped epoch — and the exactly-once counter
// shows how many tool calls re-executed beyond the fault-free run.
//
// Part 3 (elastic reaction): a submit flood over admission caps trips the
// scaling loop. Sweeping the evaluate period shows how quickly the fleet
// grows after the first shed and how much of the burst each cadence saves.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// Same multi-turn tool-calling agent as the ctrl tests: samples tokens,
// calls a tool, sleeps, emits — captured by value so replay can re-run it.
LipProgram MakeAgent(int turns) {
  return [turns](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2 w3");
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Sample(ctx.uniform(), 0.8);
    for (int turn = 0; turn < turns; ++turn) {
      for (int i = 0; i < 6 && next != kEosToken; ++i) {
        ctx.emit(ctx.tokenizer().TokenToString(next) + " ");
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
        if (!d.ok()) {
          co_return;
        }
        next = d->back().Sample(ctx.uniform(), 0.8);
      }
      StatusOr<std::string> out = co_await ctx.call_tool(
          "calc", std::to_string(turn) + " + " + std::to_string(next));
      if (out.ok()) {
        ctx.emit("[" + *out + "]");
      }
      co_await ctx.sleep(Millis(1));
      if (next == kEosToken) {
        break;
      }
    }
    co_return;
  };
}

// Counts real handler executions: replay serves journaled results verbatim,
// so executions beyond the fault-free run measure double execution.
ToolSpec CountingTool(uint64_t* executions) {
  ToolSpec spec;
  spec.name = "calc";
  spec.description = "side-effect-counting calculator";
  spec.handler = [executions](const std::string& args, Rng&) {
    ++*executions;
    ToolInvocation out;
    out.latency = Millis(2);
    out.output = "v=" + args;
    return out;
  };
  return spec;
}

// Detector scaled around a heartbeat period: suspect after ~2 missed beats,
// self-fence at 3.5 periods, declare dead at 5.
ControlPlaneOptions ScaledCtrl(SimDuration heartbeat_period) {
  ControlPlaneOptions ctrl;
  ctrl.enabled = true;
  ctrl.heartbeat_period = heartbeat_period;
  ctrl.heartbeat_jitter = 0.25;
  ctrl.suspect_after = heartbeat_period * 2;
  ctrl.lease = heartbeat_period * 7 / 2;
  ctrl.declare_dead_after = heartbeat_period * 5;
  ctrl.sweep_period = heartbeat_period;
  return ctrl;
}

ClusterOptions CtrlCluster(uint64_t seed, size_t replicas,
                           const ControlPlaneOptions& ctrl,
                           uint64_t* executions) {
  ClusterOptions options;
  options.replicas = replicas;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.enable_recovery = true;
  options.ctrl = ctrl;
  options.configure_replica = [executions](SymphonyServer& server, size_t) {
    if (!server.tools().Register(CountingTool(executions)).ok()) {
      std::abort();
    }
  };
  return options;
}

struct CtrlRun {
  std::string output;
  SimTime finish = 0;
  uint64_t tool_executions = 0;
  SymphonyCluster::ClusterSnapshot snap;
};

CtrlRun RunAgents(uint64_t seed, size_t replicas, int agents, int turns,
                  const ControlPlaneOptions& ctrl,
                  const std::function<void(FaultPlan&)>& arm = nullptr) {
  Simulator sim;
  FaultPlan plan(seed);
  if (arm) {
    arm(plan);
  }
  CtrlRun run;
  ClusterOptions options =
      CtrlCluster(seed, replicas, ctrl, &run.tool_executions);
  options.server.fault_plan = &plan;
  SymphonyCluster cluster(&sim, options);
  std::vector<SymphonyCluster::ClusterLip> ids;
  for (int i = 0; i < agents; ++i) {
    ids.push_back(
        cluster.Launch("agent" + std::to_string(i), "", MakeAgent(turns)));
  }
  sim.Run();
  for (const SymphonyCluster::ClusterLip& id : ids) {
    run.output += cluster.Output(id) + "|";
  }
  run.finish = sim.now();
  run.snap = cluster.Snapshot();
  return run;
}

// ---- Part 1: detection latency & MTTR vs heartbeat period ---------------

void DetectionSweep() {
  constexpr uint64_t kSeed = 71;
  BenchTable table({"hb_period_ms", "declare_latency_ms", "detect_age_ms",
                    "mttr_ms", "hb_sent", "bit_identical"});
  for (SimDuration hb : {Millis(1), Millis(2), Millis(4), Millis(8)}) {
    ControlPlaneOptions ctrl = ScaledCtrl(hb);
    CtrlRun baseline = RunAgents(kSeed, 2, /*agents=*/1, /*turns=*/8, ctrl);
    SimTime crash_at = baseline.finish * 2 / 5;
    CtrlRun crashed =
        RunAgents(kSeed, 2, 1, 8, ctrl,
                  [crash_at](FaultPlan& plan) {
                    plan.CrashReplicaAt(0, crash_at);
                  });
    const ControlPlaneStats& cs = crashed.snap.ctrl;
    double declare_ms =
        cs.last_dead_declared_at >= 0
            ? ToSeconds(cs.last_dead_declared_at - crash_at) * 1e3
            : -1.0;
    double age_ms =
        cs.dead_declared > 0
            ? ToSeconds(cs.detection_age_total) /
                  static_cast<double>(cs.dead_declared) * 1e3
            : -1.0;
    double mttr_ms = ToSeconds(crashed.finish - baseline.finish) * 1e3;
    bool identical = crashed.output == baseline.output;
    table.AddRow({Fmt(ToSeconds(hb) * 1e3, 0), Fmt(declare_ms),
                  Fmt(age_ms), Fmt(mttr_ms),
                  std::to_string(cs.heartbeats_sent),
                  identical ? "yes" : "NO"});
    std::printf(
        "JSON {\"bench\":\"control_plane\",\"part\":\"detection\","
        "\"hb_period_ms\":%.0f,\"declare_latency_ms\":%.3f,"
        "\"detect_age_ms\":%.3f,\"mttr_ms\":%.3f,\"heartbeats_sent\":%llu,"
        "\"dead_declared\":%llu,\"auto_failovers\":%llu,"
        "\"bit_identical\":%s}\n",
        ToSeconds(hb) * 1e3, declare_ms, age_ms, mttr_ms,
        static_cast<unsigned long long>(cs.heartbeats_sent),
        static_cast<unsigned long long>(cs.dead_declared),
        static_cast<unsigned long long>(cs.auto_failovers),
        identical ? "true" : "false");
  }
  table.Print(
      "seeded crash: detection latency & recovery MTTR vs heartbeat period");
}

// ---- Part 2: partition handling (suspicion vs false death) --------------

void PartitionSweep() {
  constexpr uint64_t kSeed = 72;
  ControlPlaneOptions ctrl = ScaledCtrl(Millis(2));  // lease = 7ms.
  CtrlRun baseline = RunAgents(kSeed, 3, /*agents=*/3, /*turns=*/8, ctrl);
  SimTime p_at = baseline.finish / 4;
  struct Case {
    const char* name;
    SimDuration window;
  };
  const Case kCases[] = {{"blip-6ms", Millis(6)}, {"window-25ms", Millis(25)}};
  BenchTable table({"partition", "suspicions", "self_fences", "dead_declared",
                    "failovers", "readmissions", "extra_tool_execs",
                    "bit_identical"});
  for (const Case& c : kCases) {
    CtrlRun cut = RunAgents(kSeed, 3, 3, 8, ctrl,
                            [p_at, &c](FaultPlan& plan) {
                              plan.AddPartition(0, 2, p_at, c.window);
                            });
    const ControlPlaneStats& cs = cut.snap.ctrl;
    uint64_t extra = cut.tool_executions - baseline.tool_executions;
    bool identical = cut.output == baseline.output;
    table.AddRow({c.name, std::to_string(cs.suspicions),
                  std::to_string(cs.self_fences),
                  std::to_string(cs.dead_declared),
                  std::to_string(cut.snap.failovers),
                  std::to_string(cs.readmissions), std::to_string(extra),
                  identical ? "yes" : "NO"});
    std::printf(
        "JSON {\"bench\":\"control_plane\",\"part\":\"partition\","
        "\"case\":\"%s\",\"window_ms\":%.0f,\"suspicions\":%llu,"
        "\"false_suspicions\":%llu,\"self_fences\":%llu,"
        "\"dead_declared\":%llu,\"failovers\":%llu,\"readmissions\":%llu,"
        "\"extra_tool_executions\":%llu,\"bit_identical\":%s}\n",
        c.name, ToSeconds(c.window) * 1e3,
        static_cast<unsigned long long>(cs.suspicions),
        static_cast<unsigned long long>(cs.false_suspicions),
        static_cast<unsigned long long>(cs.self_fences),
        static_cast<unsigned long long>(cs.dead_declared),
        static_cast<unsigned long long>(cut.snap.failovers),
        static_cast<unsigned long long>(cs.readmissions),
        static_cast<unsigned long long>(extra), identical ? "true" : "false");
  }
  std::printf("\npartition (0,2) at t=%.3fms in a 3-replica cluster; "
              "lease %.0fms, declare %.0fms\n",
              ToSeconds(p_at) * 1e3, ToSeconds(ctrl.lease) * 1e3,
              ToSeconds(ctrl.declare_dead_after) * 1e3);
  table.Print("partition silence: suspicion vs fenced false death");
}

// ---- Part 3: elastic scale-out reaction ---------------------------------

void ScalingSweep() {
  BenchTable table({"eval_period_ms", "reaction_ms", "sheds", "scale_outs",
                    "final_replicas", "accepted", "completed"});
  for (SimDuration eval : {Millis(2), Millis(4), Millis(8)}) {
    Simulator sim;
    uint64_t executions = 0;
    ClusterOptions options =
        CtrlCluster(73, /*replicas=*/1, ScaledCtrl(Millis(2)), &executions);
    options.routing = RoutingPolicy::kLeastLoaded;
    options.server.admission.enabled = true;
    options.server.admission.max_live_lips = 2;
    options.server.admission.max_queue = 1;
    options.ctrl.scaling.enabled = true;
    options.ctrl.scaling.min_replicas = 1;
    options.ctrl.scaling.max_replicas = 4;
    options.ctrl.scaling.evaluate_period = eval;
    options.ctrl.scaling.scale_out_on_sheds = 1;
    options.ctrl.scaling.scale_out_cooldown = eval * 2;
    options.ctrl.scaling.scale_in_load = 0.0;  // Growth only.
    SymphonyCluster cluster(&sim, options);
    uint64_t accepted = 0;
    auto submit_wave = [&cluster, &accepted](int count) {
      for (int i = 0; i < count; ++i) {
        SymphonyServer::LaunchSpec spec;
        spec.name = "burst";
        spec.program = MakeAgent(2);
        if (cluster.Submit(std::move(spec)).result.status.ok()) {
          ++accepted;
        }
      }
    };
    submit_wave(8);  // t=0: overflows the lone replica, sheds trip scaling.
    sim.ScheduleAt(Millis(12), [&] { submit_wave(4); });
    sim.Run();
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    double reaction_ms = snap.ctrl.last_scale_out_at >= 0
                             ? ToSeconds(snap.ctrl.last_scale_out_at) * 1e3
                             : -1.0;
    table.AddRow({Fmt(ToSeconds(eval) * 1e3, 0), Fmt(reaction_ms),
                  std::to_string(snap.submit_sheds),
                  std::to_string(snap.ctrl.scale_outs),
                  std::to_string(cluster.replica_count()),
                  std::to_string(accepted),
                  std::to_string(snap.lips_completed)});
    std::printf(
        "JSON {\"bench\":\"control_plane\",\"part\":\"scaling\","
        "\"eval_period_ms\":%.0f,\"reaction_ms\":%.3f,\"sheds\":%llu,"
        "\"scale_outs\":%llu,\"final_replicas\":%zu,\"accepted\":%llu,"
        "\"completed\":%llu}\n",
        ToSeconds(eval) * 1e3, reaction_ms,
        static_cast<unsigned long long>(snap.submit_sheds),
        static_cast<unsigned long long>(snap.ctrl.scale_outs),
        cluster.replica_count(), static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(snap.lips_completed));
  }
  std::printf("\nburst of 8 at t=0 over caps {live 2, queue 1}, "
              "+4 at t=12ms; last_scale_out_at is the reaction time\n");
  table.Print("submit flood: scale-out reaction vs evaluate period");
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf(
      "bench_control_plane: detection, fenced recovery, elastic scaling\n");
  symphony::DetectionSweep();
  symphony::PartitionSweep();
  symphony::ScalingSweep();
  return 0;
}
