// §2.3 claim: distribution-level constrained decoding in a LIP vs the
// client-side workaround.
//
// Task: produce an output matching a regex. Two implementations:
//   * lip-masked     — the LIP masks each distribution with the DFA: every
//                      generated token is valid by construction; exactly one
//                      pass, no wasted tokens.
//   * client-retry   — the prompt-API workaround: generate unconstrained,
//                      validate client-side, resubmit on failure (up to a
//                      retry cap). Tokens from failed attempts are wasted
//                      GPU work and add end-to-end latency.
// Sweeps patterns of increasing selectivity; reports latency, attempts, and
// model tokens spent per valid output.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/decode/regex.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

constexpr int kTasks = 20;
constexpr int kMaxRetries = 25;
constexpr int kMaxTokens = 24;

struct ConstrainedResult {
  double mean_latency_ms = 0.0;
  double model_tokens_per_output = 0.0;
  double attempts_per_output = 0.0;
  uint64_t valid_outputs = 0;
};

// Each task: produce a string matching `pattern`, starting from a distinct
// prompt. Returns aggregate stats.
ConstrainedResult RunLipMasked(const std::string& pattern) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  std::unique_ptr<Dfa> dfa = *CompileRegex(pattern);

  SampleSeries latency_ms;
  uint64_t valid = 0;
  for (int task = 0; task < kTasks; ++task) {
    SimTime start = Millis(600) * task;
    sim.ScheduleAt(start, [&, task, start] {
      server.Launch(
          "masked-" + std::to_string(task),
          [&, task](LipContext& ctx) -> Task {
            TokenConstraint constraint(dfa.get(), &ctx.tokenizer());
            KvHandle kv = *ctx.kv_tmp();
            std::vector<TokenId> prompt(16,
                                        static_cast<TokenId>(kFirstWordToken + task));
            StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
            if (!d0.ok()) {
              co_return;
            }
            Dfa::StateId state = constraint.start();
            Distribution dist = d0->back();
            std::string out;
            for (int step = 0; step < kMaxTokens; ++step) {
              TokenId t = dist.SampleMasked(
                  ctx.uniform(), 1.0,
                  [&](TokenId tok) { return constraint.Allows(state, tok); });
              if (t == kUnkToken) {
                co_return;
              }
              if (t == kEosToken) {
                break;
              }
              out += ctx.tokenizer().TokenToString(t);
              state = constraint.Advance(state, t);
              StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
              if (!d.ok()) {
                co_return;
              }
              dist = d->back();
              if (constraint.IsAccept(state)) {
                break;
              }
            }
            if (dfa->Matches(out)) {
              ctx.emit("ok");
            }
            co_return;
          },
          [&, start](LipId lip) {
            latency_ms.Add(ToMillis(sim.now() - start));
            if (server.runtime().Output(lip) == "ok") {
              ++valid;
            }
          });
    });
  }
  sim.Run();

  ConstrainedResult result;
  result.mean_latency_ms = latency_ms.mean();
  result.valid_outputs = valid;
  result.model_tokens_per_output =
      static_cast<double>(server.device().stats().new_tokens) / kTasks;
  result.attempts_per_output = 1.0;
  return result;
}

ConstrainedResult RunClientRetry(const std::string& pattern) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  std::unique_ptr<Dfa> dfa = *CompileRegex(pattern);

  SampleSeries latency_ms;
  uint64_t valid = 0;
  uint64_t attempts_total = 0;

  for (int task = 0; task < kTasks; ++task) {
    SimTime start = Millis(600) * task;
    sim.ScheduleAt(start, [&, task, start] {
      // Unconstrained generation, client-side validation, retry-on-mismatch.
      // Each retry varies the sampling seed (as an API client would).
      server.Launch(
          "retry-" + std::to_string(task),
          [&, task](LipContext& ctx) -> Task {
            for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
              ++attempts_total;
              KvHandle kv = *ctx.kv_tmp();
              std::vector<TokenId> prompt(
                  16, static_cast<TokenId>(kFirstWordToken + task));
              StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
              if (!d0.ok()) {
                co_return;
              }
              Distribution dist = d0->back();
              std::string out;
              for (int step = 0; step < kMaxTokens; ++step) {
                TokenId t = dist.Sample(ctx.uniform());
                if (t == kEosToken) {
                  break;
                }
                out += ctx.tokenizer().TokenToString(t);
                if (dfa->Run(dfa->start(), out) == Dfa::kDead) {
                  break;  // Client notices the prefix can't match; abort early.
                }
                StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
                if (!d.ok()) {
                  co_return;
                }
                dist = d->back();
              }
              (void)ctx.kv_close(kv);
              if (dfa->Matches(out)) {
                ctx.emit("ok");
                co_return;
              }
            }
            co_return;
          },
          [&, start](LipId lip) {
            latency_ms.Add(ToMillis(sim.now() - start));
            if (server.runtime().Output(lip) == "ok") {
              ++valid;
            }
          });
    });
  }
  sim.Run();

  ConstrainedResult result;
  result.mean_latency_ms = latency_ms.mean();
  result.valid_outputs = valid;
  result.model_tokens_per_output =
      static_cast<double>(server.device().stats().new_tokens) / kTasks;
  result.attempts_per_output = static_cast<double>(attempts_total) / kTasks;
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_constrained: distribution masking vs client-side retries "
              "(paper 2.3)\n");

  const std::vector<std::pair<const char*, const char*>> patterns = {
      {"loose", "[a-z0-9]+"},
      {"digits", "[0-9]{6}"},
      {"phone", "\\([0-9]{3}\\) [0-9]{3}-[0-9]{4}"},
  };

  BenchTable table({"pattern", "mode", "valid", "latency_ms", "attempts",
                    "model_tok/output"});
  for (const auto& [name, pattern] : patterns) {
    ConstrainedResult masked = RunLipMasked(pattern);
    ConstrainedResult retry = RunClientRetry(pattern);
    table.AddRow({name, "lip-masked", std::to_string(masked.valid_outputs),
                  Fmt(masked.mean_latency_ms, 1), Fmt(masked.attempts_per_output, 1),
                  Fmt(masked.model_tokens_per_output, 1)});
    table.AddRow({name, "client-retry", std::to_string(retry.valid_outputs),
                  Fmt(retry.mean_latency_ms, 1), Fmt(retry.attempts_per_output, 1),
                  Fmt(retry.model_tokens_per_output, 1)});
  }
  table.Print("constrained generation, 20 tasks per pattern");
  return 0;
}
