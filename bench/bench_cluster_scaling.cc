// Multi-GPU scaling and routing-policy ablation.
//
// The paper's scheduler "schedules this batch on the GPU(s)"; this bench
// runs the Figure 3 RAG workload on a data-parallel cluster of Symphony
// replicas and asks two questions:
//   1. How does throughput scale with replica count?
//   2. Does cache-affinity routing (same topic -> same replica, so named KV
//      files are shared) beat round-robin (topics scatter, every replica
//      re-prefills and caches every hot document)?
// Offered load scales with the replica count so each point runs at pressure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/rag.h"

namespace symphony {
namespace {

RagConfig BaseConfig(size_t replicas) {
  RagConfig config;
  config.answer_tokens = 32;
  config.num_requests = 250 * replicas;
  config.request_rate = 12.0 * static_cast<double>(replicas);
  config.pareto_index = 0.3;
  config.cache_top_k = 20;
  config.max_active = 20;  // Per replica.
  return config;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_cluster_scaling: data-parallel replicas + routing policy\n");

  BenchTable table({"replicas", "routing", "tok/s", "scaling", "hit%",
                    "mean_ms/tok", "util"});
  double single = 0.0;
  for (size_t replicas : {1u, 2u, 4u}) {
    for (RoutingPolicy routing :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kCacheAffinity,
          RoutingPolicy::kAffinityBounded}) {
      if (replicas == 1 && routing != RoutingPolicy::kRoundRobin) {
        continue;  // Identical to round-robin at one replica.
      }
      ClusterOptions cluster;
      cluster.replicas = replicas;
      cluster.routing = routing;
      RagConfig config = BaseConfig(replicas);
      RagRunResult r = RunRagOnCluster(config, cluster);
      if (single == 0.0) {
        single = r.throughput_tok_s;
      }
      double hit_rate = 100.0 * static_cast<double>(r.cache_hits) /
                        static_cast<double>(r.completed);
      const char* name = routing == RoutingPolicy::kRoundRobin ? "round-robin"
                         : routing == RoutingPolicy::kCacheAffinity
                             ? "affinity"
                             : "aff-bounded";
      table.AddRow({std::to_string(replicas), name, Fmt(r.throughput_tok_s, 1),
                    Fmt(r.throughput_tok_s / single), Fmt(hit_rate, 1),
                    Fmt(r.mean_latency_per_token_ms), Fmt(r.gpu_utilization)});
    }
  }
  table.Print("RAG (Pareto 0.3) at 12 req/s per replica; scaling normalized "
              "to 1 replica");
  return 0;
}
