// §2.1 claim: application-defined KV retention beats system-wide policy.
//
// Two experiments:
//
// 1. Multi-round chat under memory pressure. N sessions interleave rounds
//    with think time; between rounds a session's KV sits idle. The serving
//    system cannot know which idle KV will return (its LRU treats a finished
//    one-shot request and a paused session identically), but the application
//    can: the Symphony session LIP keeps its KV file alive (and lets KVFS
//    offload it to host under pressure) so every round resumes incrementally.
//    The baselines re-send the growing conversation each round; the
//    vLLM-like prefix cache helps only while the cached blocks survive LRU.
//
// 2. The Figure 3 policy-refinement ablation: pinning the hottest documents
//    on-GPU (pin_top_k) helps under high skew and wastes memory at flat
//    popularity — evidence that policy belongs to the application, which
//    knows its workload.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/prompt_server.h"
#include "src/serve/server.h"
#include "src/sim/distributions.h"
#include "src/workload/rag.h"

namespace symphony {
namespace {

struct ChatConfig {
  // Sized so that idle-session KV exceeds the device budget (~61k tokens):
  // 60 sessions x up to ~1.6k tokens of conversation = ~96k tokens.
  int sessions = 60;
  int rounds = 5;
  int user_tokens = 256;
  int reply_tokens = 64;
  SimDuration think_time = Seconds(20);
  uint64_t seed = 17;
};

struct ChatResult {
  double mean_round_latency_ms = 0.0;
  double total_s = 0.0;
  uint64_t prefill_tokens = 0;  // Model-computed prompt tokens (waste metric).
};

std::vector<TokenId> UserTurn(const ChatConfig& config, int session, int round) {
  std::vector<TokenId> turn;
  Rng rng(config.seed ^ (static_cast<uint64_t>(session) << 20) ^
          static_cast<uint64_t>(round));
  for (int i = 0; i < config.user_tokens; ++i) {
    turn.push_back(
        static_cast<TokenId>(kFirstWordToken + rng.NextBounded(20000)));
  }
  return turn;
}

ChatResult RunChatOnSymphony(const ChatConfig& config) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  SampleSeries round_ms;

  for (int s = 0; s < config.sessions; ++s) {
    // Stagger session starts across one think period so rounds desynchronize.
    sim.ScheduleAt(config.think_time * s / config.sessions, [&, s] {
    server.Launch("chat-" + std::to_string(s), [&, s](LipContext& ctx) -> Task {
      // The application keeps the session KV file for the whole dialogue.
      KvHandle kv = *ctx.kv_tmp();
      for (int round = 0; round < config.rounds; ++round) {
        SimTime round_start = ctx.now();
        std::vector<TokenId> turn = UserTurn(config, s, round);
        StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, turn);
        if (!d0.ok()) {
          co_return;
        }
        TokenId t = d0->back().Argmax();
        for (int i = 0; i < config.reply_tokens; ++i) {
          StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
          if (!d.ok()) {
            co_return;
          }
          t = d->back().Argmax();
        }
        round_ms.Add(ToMillis(ctx.now() - round_start));
        // Application policy: this KV is idle until the user replies — park
        // it in host memory so active sessions get the device.
        (void)ctx.kv_offload(kv);
        co_await ctx.sleep(config.think_time);  // User reads and types.
      }
      co_return;
    });
    });
  }
  sim.Run();

  ChatResult result;
  result.mean_round_latency_ms = round_ms.mean();
  result.total_s = ToSeconds(sim.now());
  result.prefill_tokens = server.device().stats().new_tokens;
  return result;
}

ChatResult RunChatOnBaseline(const ChatConfig& config, BaselineOptions options) {
  Simulator sim;
  PromptServer server(&sim, options);
  SampleSeries round_ms;

  struct Session {
    std::vector<TokenId> conversation;
    int round = 0;
  };
  auto sessions = std::make_shared<std::vector<Session>>(config.sessions);

  // Each round re-sends the whole conversation as a prompt.
  std::function<void(int)> do_round = [&, sessions](int s) {
    Session& session = (*sessions)[static_cast<size_t>(s)];
    if (session.round >= config.rounds) {
      return;
    }
    std::vector<TokenId> turn = UserTurn(config, s, session.round);
    session.conversation.insert(session.conversation.end(), turn.begin(),
                                turn.end());
    ++session.round;
    SimTime start = sim.now();
    CompletionRequest request;
    request.prompt = session.conversation;
    request.max_new_tokens = static_cast<uint32_t>(config.reply_tokens);
    request.stop_at_eos = false;
    request.done = [&, sessions, s, start](const CompletionResponse& r) {
      if (!r.status.ok()) {
        return;
      }
      Session& sess = (*sessions)[static_cast<size_t>(s)];
      sess.conversation.insert(sess.conversation.end(), r.tokens.begin(),
                               r.tokens.end());
      round_ms.Add(ToMillis(sim.now() - start));
      sim.ScheduleAfter(config.think_time, [&, s] { do_round(s); });
    };
    server.Submit(std::move(request));
  };
  for (int s = 0; s < config.sessions; ++s) {
    sim.ScheduleAt(config.think_time * s / config.sessions, [&, s] { do_round(s); });
  }
  sim.Run();

  ChatResult result;
  result.mean_round_latency_ms = round_ms.mean();
  result.total_s = ToSeconds(sim.now());
  result.prefill_tokens = server.device().stats().new_tokens;
  return result;
}

void ChatExperiment() {
  ChatConfig config;
  ChatResult sym = RunChatOnSymphony(config);
  ChatResult vllm = RunChatOnBaseline(config, PromptServer::VllmLike());
  ChatResult tgi = RunChatOnBaseline(config, PromptServer::TgiLike());

  BenchTable table({"system", "round_ms(mean)", "model_tokens", "vs_symphony"});
  table.AddRow({"symphony", Fmt(sym.mean_round_latency_ms),
                std::to_string(sym.prefill_tokens), Fmt(1.0)});
  table.AddRow({"vllm-like", Fmt(vllm.mean_round_latency_ms),
                std::to_string(vllm.prefill_tokens),
                Fmt(vllm.mean_round_latency_ms / sym.mean_round_latency_ms)});
  table.AddRow({"tgi-like", Fmt(tgi.mean_round_latency_ms),
                std::to_string(tgi.prefill_tokens),
                Fmt(tgi.mean_round_latency_ms / sym.mean_round_latency_ms)});
  table.Print("multi-round chat under memory pressure: 60 sessions x 5 rounds, "
              "per-round latency and total model-computed tokens");
}

void PinAblation() {
  BenchTable table({"pareto", "pin=0", "pin=2", "pin=4", "pin=8"});
  for (double index : {0.2, 0.8, 2.0}) {
    std::vector<std::string> row = {Fmt(index, 1)};
    for (size_t pin : {0u, 2u, 4u, 8u}) {
      RagConfig config;
      config.answer_tokens = 32;
      config.num_requests = 200;
      config.request_rate = 12.0;
      config.pareto_index = index;
      config.max_active = 20;
      config.pin_top_k = pin;
      RagRunResult r = RunRagOnSymphony(config, ServerOptions{});
      row.push_back(Fmt(r.throughput_tok_s, 1));
    }
    table.AddRow(row);
  }
  table.Print("LIP policy refinement: RAG throughput (tok/s) vs pinned hot "
              "documents (pin_top_k)");
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf("bench_kv_policy: application-managed KV retention (paper 2.1)\n");
  symphony::ChatExperiment();
  symphony::PinAblation();
  return 0;
}
