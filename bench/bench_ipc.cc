// IPC fabric benchmark (src/net).
//
// Part 1 (ping-pong): two LIPs bounce a message back and forth over a pair
// of named channels, either co-located on one replica (every delivery is
// local) or split across replicas (every delivery crosses a simulated link).
// Reports round-trip latency, message throughput, and the fabric's
// local-vs-cross counters.
//
// Part 2 (split-pair migration stall): a producer streams messages at a
// fixed cadence to a consumer on another replica; mid-stream the consumer is
// migrated (or its replica killed) and the stream must re-route to its new
// home. The consumer stamps every arrival, so the report shows the longest
// inter-arrival gap (the stall the fault inserted), the completion delta
// versus the fault-free run, and whether the received sequence stayed
// bit-identical.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// ---- Part 1: ping-pong -------------------------------------------------

LipProgram Pinger(int rounds, std::vector<SimDuration>* rtts) {
  return [rounds, rtts](LipContext& ctx) -> Task {
    for (int i = 0; i < rounds; ++i) {
      SimTime start = ctx.now();
      ctx.send("ping", "p" + std::to_string(i));
      StatusOr<std::string> reply = co_await ctx.recv("pong");
      if (!reply.ok()) {
        co_return;
      }
      rtts->push_back(ctx.now() - start);
    }
    co_return;
  };
}

LipProgram Ponger(int rounds) {
  return [rounds](LipContext& ctx) -> Task {
    for (int i = 0; i < rounds; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("ping");
      if (!msg.ok()) {
        co_return;
      }
      ctx.send("pong", *msg + ":ack");
    }
    co_return;
  };
}

struct PingPongRun {
  double mean_rtt_us = 0.0;
  double msgs_per_s = 0.0;
  uint64_t local_deliveries = 0;
  uint64_t cross_sends = 0;
};

PingPongRun RunPingPong(bool colocated, int rounds) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = colocated ? RoutingPolicy::kCacheAffinity
                              : RoutingPolicy::kRoundRobin;
  SymphonyCluster cluster(&sim, options);
  std::vector<SimDuration> rtts;
  // Ponger first: its recv registers both ends before the first ping.
  cluster.Launch("ponger", "pair", Ponger(rounds));
  cluster.Launch("pinger", "pair", Pinger(rounds, &rtts));
  sim.Run();
  PingPongRun run;
  SimDuration total = 0;
  for (SimDuration rtt : rtts) {
    total += rtt;
  }
  if (!rtts.empty()) {
    run.mean_rtt_us = ToSeconds(total) / static_cast<double>(rtts.size()) * 1e6;
  }
  double elapsed_s = ToSeconds(sim.now());
  if (elapsed_s > 0.0) {
    run.msgs_per_s = 2.0 * static_cast<double>(rtts.size()) / elapsed_s;
  }
  run.local_deliveries = cluster.fabric().stats().local_deliveries;
  run.cross_sends = cluster.fabric().stats().cross_sends;
  return run;
}

void PingPongSweep() {
  constexpr int kRounds = 64;
  BenchTable table({"placement", "mean_rtt_us", "msgs_per_s", "local",
                    "cross"});
  for (bool colocated : {true, false}) {
    PingPongRun run = RunPingPong(colocated, kRounds);
    const char* placement = colocated ? "intra-replica" : "cross-replica";
    table.AddRow({placement, Fmt(run.mean_rtt_us), Fmt(run.msgs_per_s, 0),
                  std::to_string(run.local_deliveries),
                  std::to_string(run.cross_sends)});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"pingpong\",\"placement\":\"%s\","
        "\"rounds\":%d,\"mean_rtt_us\":%.3f,\"msgs_per_s\":%.0f,"
        "\"local_deliveries\":%llu,\"cross_sends\":%llu}\n",
        placement, kRounds, run.mean_rtt_us, run.msgs_per_s,
        static_cast<unsigned long long>(run.local_deliveries),
        static_cast<unsigned long long>(run.cross_sends));
  }
  table.Print("channel ping-pong: intra- vs cross-replica (Llama13B links)");
}

// ---- Part 2: split-pair migration stall --------------------------------

constexpr int kStreamMsgs = 40;
constexpr SimDuration kStreamGap = Micros(500);

LipProgram StreamProducer() {
  return [](LipContext& ctx) -> Task {
    for (int i = 0; i < kStreamMsgs; ++i) {
      ctx.send("stream", "s" + std::to_string(i));
      co_await ctx.sleep(kStreamGap);
    }
    co_return;
  };
}

// Stamps each message index first-write-wins: a replayed incarnation re-runs
// the loop, but its journal-served recvs must not overwrite the original
// live delivery times — only genuinely new (post-fault) arrivals stamp.
LipProgram StreamConsumer(std::vector<SimTime>* arrivals) {
  return [arrivals](LipContext& ctx) -> Task {
    for (int i = 0; i < kStreamMsgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("stream");
      if (!msg.ok()) {
        co_return;
      }
      if ((*arrivals)[i] == 0) {
        (*arrivals)[i] = ctx.now();
      }
      ctx.emit(*msg + ";");
    }
    co_return;
  };
}

enum class StreamFault { kNone, kMigrateConsumer, kKillConsumerReplica };

struct StreamRun {
  double finish_s = 0.0;
  double max_gap_us = 0.0;
  uint64_t forwarded = 0;
  uint64_t rehomes = 0;
  std::string log;
};

StreamRun RunStream(StreamFault fault, SimTime at) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 3;
  options.routing = RoutingPolicy::kRoundRobin;
  options.enable_recovery = true;
  SymphonyCluster cluster(&sim, options);
  std::vector<SimTime> arrivals(kStreamMsgs, 0);
  StreamRun run;
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", StreamConsumer(&arrivals));
  cluster.Launch("producer", "", StreamProducer());
  if (fault != StreamFault::kNone) {
    sim.ScheduleAt(at, [&cluster, cons, fault] {
      SymphonyCluster::ClusterLip where = cluster.Locate(cons);
      if (fault == StreamFault::kMigrateConsumer) {
        (void)cluster.Migrate(where, 2);  // The idle third replica.
      } else {
        (void)cluster.KillReplica(where.replica);
      }
    });
  }
  sim.Run();
  run.finish_s = ToSeconds(sim.now());
  run.log = cluster.Output(cons);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] == 0 || arrivals[i - 1] == 0) {
      continue;
    }
    run.max_gap_us = std::max(
        run.max_gap_us, ToSeconds(arrivals[i] - arrivals[i - 1]) * 1e6);
  }
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  run.forwarded = snap.ipc_forwarded;
  run.rehomes = snap.ipc_rehomes;
  return run;
}

void MigrationStallSweep() {
  StreamRun baseline = RunStream(StreamFault::kNone, 0);
  BenchTable table({"fault", "max_gap_us", "stall_vs_clean_us",
                    "completion_delta_ms", "forwarded", "rehomes",
                    "bit_identical"});
  struct Case {
    const char* name;
    StreamFault fault;
  };
  constexpr Case kCases[] = {
      {"none", StreamFault::kNone},
      {"migrate-consumer", StreamFault::kMigrateConsumer},
      {"kill-consumer-replica", StreamFault::kKillConsumerReplica},
  };
  SimTime mid = DurationFromSeconds(baseline.finish_s / 2.0);
  for (const Case& c : kCases) {
    StreamRun run = RunStream(c.fault, mid);
    double stall_us = run.max_gap_us - baseline.max_gap_us;
    double delta_ms = (run.finish_s - baseline.finish_s) * 1e3;
    bool identical = run.log == baseline.log;
    table.AddRow({c.name, Fmt(run.max_gap_us), Fmt(stall_us),
                  Fmt(delta_ms), std::to_string(run.forwarded),
                  std::to_string(run.rehomes), identical ? "yes" : "NO"});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"migration_stall\","
        "\"fault\":\"%s\",\"max_gap_us\":%.3f,\"stall_vs_clean_us\":%.3f,"
        "\"completion_delta_ms\":%.3f,\"forwarded\":%llu,\"rehomes\":%llu,"
        "\"bit_identical\":%s}\n",
        c.name, run.max_gap_us, stall_us, delta_ms,
        static_cast<unsigned long long>(run.forwarded),
        static_cast<unsigned long long>(run.rehomes),
        identical ? "true" : "false");
  }
  std::printf("\nstream: %d msgs at %.0fus cadence, fault at t=%.3fms\n",
              kStreamMsgs, ToSeconds(kStreamGap) * 1e6,
              ToSeconds(mid) * 1e3);
  table.Print("split-pair stream: migration/kill stall (Llama13B links)");
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf("bench_ipc: cluster IPC fabric latency, throughput, stalls\n");
  symphony::PingPongSweep();
  symphony::MigrationStallSweep();
  return 0;
}
