// IPC fabric benchmark (src/net).
//
// Part 1 (ping-pong): two LIPs bounce a message back and forth over a pair
// of named channels, either co-located on one replica (every delivery is
// local) or split across replicas (every delivery crosses a simulated link).
// Reports round-trip latency, message throughput, and the fabric's
// local-vs-cross counters.
//
// Part 2 (split-pair migration stall): a producer streams messages at a
// fixed cadence to a consumer on another replica; mid-stream the consumer is
// migrated (or its replica killed) and the stream must re-route to its new
// home. The consumer stamps every arrival, so the report shows the longest
// inter-arrival gap (the stall the fault inserted), the completion delta
// versus the fault-free run, and whether the received sequence stayed
// bit-identical.
//
// Part 3 (slow consumer, bounded vs unbounded): a producer floods a channel
// whose home replica is inside a FaultPlan slow-consumer window, so every
// delivery stalls. Unbounded channels absorb the flood as queue growth;
// credit-bounded channels park the producer instead. The report compares
// peak queue depth (the memory proxy), producer completion, delivery
// goodput, and mean in-queue / end-to-end latency across credit limits.
//
// Part 4 (topology): rack locality and shared-uplink congestion. First the
// raw link graph: one-way / round-trip times intra-rack vs inter-rack on the
// 2-rack preset, across payload sizes (propagation dominates empty packets,
// serialization dominates large ones). Then a cluster run on a 2-rack graph
// with a deliberately thin uplink: a producer streams across the racks while
// a journal-heavy LIP migrates over the same uplink mid-stream, and the
// report shows the inter-arrival stall the migration's bytes inflict on
// concurrent IPC, plus the uplink's own queue-delay counter.
//
// Every row is also emitted as a JSON line (prefix "JSON ") for scripting.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// ---- Part 1: ping-pong -------------------------------------------------

LipProgram Pinger(int rounds, std::vector<SimDuration>* rtts) {
  return [rounds, rtts](LipContext& ctx) -> Task {
    for (int i = 0; i < rounds; ++i) {
      SimTime start = ctx.now();
      co_await ctx.send("ping", "p" + std::to_string(i));
      StatusOr<std::string> reply = co_await ctx.recv("pong");
      if (!reply.ok()) {
        co_return;
      }
      rtts->push_back(ctx.now() - start);
    }
    co_return;
  };
}

LipProgram Ponger(int rounds) {
  return [rounds](LipContext& ctx) -> Task {
    for (int i = 0; i < rounds; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("ping");
      if (!msg.ok()) {
        co_return;
      }
      co_await ctx.send("pong", *msg + ":ack");
    }
    co_return;
  };
}

struct PingPongRun {
  double mean_rtt_us = 0.0;
  double msgs_per_s = 0.0;
  uint64_t local_deliveries = 0;
  uint64_t cross_sends = 0;
};

PingPongRun RunPingPong(bool colocated, int rounds) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = colocated ? RoutingPolicy::kCacheAffinity
                              : RoutingPolicy::kRoundRobin;
  SymphonyCluster cluster(&sim, options);
  std::vector<SimDuration> rtts;
  // Ponger first: its recv registers both ends before the first ping.
  cluster.Launch("ponger", "pair", Ponger(rounds));
  cluster.Launch("pinger", "pair", Pinger(rounds, &rtts));
  sim.Run();
  PingPongRun run;
  SimDuration total = 0;
  for (SimDuration rtt : rtts) {
    total += rtt;
  }
  if (!rtts.empty()) {
    run.mean_rtt_us = ToSeconds(total) / static_cast<double>(rtts.size()) * 1e6;
  }
  double elapsed_s = ToSeconds(sim.now());
  if (elapsed_s > 0.0) {
    run.msgs_per_s = 2.0 * static_cast<double>(rtts.size()) / elapsed_s;
  }
  run.local_deliveries = cluster.fabric().stats().local_deliveries;
  run.cross_sends = cluster.fabric().stats().cross_sends;
  return run;
}

void PingPongSweep() {
  constexpr int kRounds = 64;
  BenchTable table({"placement", "mean_rtt_us", "msgs_per_s", "local",
                    "cross"});
  for (bool colocated : {true, false}) {
    PingPongRun run = RunPingPong(colocated, kRounds);
    const char* placement = colocated ? "intra-replica" : "cross-replica";
    table.AddRow({placement, Fmt(run.mean_rtt_us), Fmt(run.msgs_per_s, 0),
                  std::to_string(run.local_deliveries),
                  std::to_string(run.cross_sends)});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"pingpong\",\"placement\":\"%s\","
        "\"rounds\":%d,\"mean_rtt_us\":%.3f,\"msgs_per_s\":%.0f,"
        "\"local_deliveries\":%llu,\"cross_sends\":%llu}\n",
        placement, kRounds, run.mean_rtt_us, run.msgs_per_s,
        static_cast<unsigned long long>(run.local_deliveries),
        static_cast<unsigned long long>(run.cross_sends));
  }
  table.Print("channel ping-pong: intra- vs cross-replica (Llama13B links)");
}

// ---- Part 2: split-pair migration stall --------------------------------

constexpr int kStreamMsgs = 40;
constexpr SimDuration kStreamGap = Micros(500);

LipProgram StreamProducer() {
  return [](LipContext& ctx) -> Task {
    for (int i = 0; i < kStreamMsgs; ++i) {
      co_await ctx.send("stream", "s" + std::to_string(i));
      co_await ctx.sleep(kStreamGap);
    }
    co_return;
  };
}

// Stamps each message index first-write-wins: a replayed incarnation re-runs
// the loop, but its journal-served recvs must not overwrite the original
// live delivery times — only genuinely new (post-fault) arrivals stamp.
LipProgram StreamConsumer(std::vector<SimTime>* arrivals) {
  return [arrivals](LipContext& ctx) -> Task {
    for (int i = 0; i < kStreamMsgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("stream");
      if (!msg.ok()) {
        co_return;
      }
      if ((*arrivals)[i] == 0) {
        (*arrivals)[i] = ctx.now();
      }
      ctx.emit(*msg + ";");
    }
    co_return;
  };
}

enum class StreamFault { kNone, kMigrateConsumer, kKillConsumerReplica };

struct StreamRun {
  double finish_s = 0.0;
  double max_gap_us = 0.0;
  uint64_t forwarded = 0;
  uint64_t rehomes = 0;
  std::string log;
};

StreamRun RunStream(StreamFault fault, SimTime at) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 3;
  options.routing = RoutingPolicy::kRoundRobin;
  options.enable_recovery = true;
  SymphonyCluster cluster(&sim, options);
  std::vector<SimTime> arrivals(kStreamMsgs, 0);
  StreamRun run;
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", StreamConsumer(&arrivals));
  cluster.Launch("producer", "", StreamProducer());
  if (fault != StreamFault::kNone) {
    sim.ScheduleAt(at, [&cluster, cons, fault] {
      SymphonyCluster::ClusterLip where = cluster.Locate(cons);
      if (fault == StreamFault::kMigrateConsumer) {
        (void)cluster.Migrate(where, 2);  // The idle third replica.
      } else {
        (void)cluster.KillReplica(where.replica);
      }
    });
  }
  sim.Run();
  run.finish_s = ToSeconds(sim.now());
  run.log = cluster.Output(cons);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] == 0 || arrivals[i - 1] == 0) {
      continue;
    }
    run.max_gap_us = std::max(
        run.max_gap_us, ToSeconds(arrivals[i] - arrivals[i - 1]) * 1e6);
  }
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  run.forwarded = snap.ipc_forwarded;
  run.rehomes = snap.ipc_rehomes;
  return run;
}

void MigrationStallSweep() {
  StreamRun baseline = RunStream(StreamFault::kNone, 0);
  BenchTable table({"fault", "max_gap_us", "stall_vs_clean_us",
                    "completion_delta_ms", "forwarded", "rehomes",
                    "bit_identical"});
  struct Case {
    const char* name;
    StreamFault fault;
  };
  constexpr Case kCases[] = {
      {"none", StreamFault::kNone},
      {"migrate-consumer", StreamFault::kMigrateConsumer},
      {"kill-consumer-replica", StreamFault::kKillConsumerReplica},
  };
  SimTime mid = DurationFromSeconds(baseline.finish_s / 2.0);
  for (const Case& c : kCases) {
    StreamRun run = RunStream(c.fault, mid);
    double stall_us = run.max_gap_us - baseline.max_gap_us;
    double delta_ms = (run.finish_s - baseline.finish_s) * 1e3;
    bool identical = run.log == baseline.log;
    table.AddRow({c.name, Fmt(run.max_gap_us), Fmt(stall_us),
                  Fmt(delta_ms), std::to_string(run.forwarded),
                  std::to_string(run.rehomes), identical ? "yes" : "NO"});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"migration_stall\","
        "\"fault\":\"%s\",\"max_gap_us\":%.3f,\"stall_vs_clean_us\":%.3f,"
        "\"completion_delta_ms\":%.3f,\"forwarded\":%llu,\"rehomes\":%llu,"
        "\"bit_identical\":%s}\n",
        c.name, run.max_gap_us, stall_us, delta_ms,
        static_cast<unsigned long long>(run.forwarded),
        static_cast<unsigned long long>(run.rehomes),
        identical ? "true" : "false");
  }
  std::printf("\nstream: %d msgs at %.0fus cadence, fault at t=%.3fms\n",
              kStreamMsgs, ToSeconds(kStreamGap) * 1e6,
              ToSeconds(mid) * 1e3);
  table.Print("split-pair stream: migration/kill stall (Llama13B links)");
}

// ---- Part 3: slow consumer, bounded vs unbounded -----------------------

constexpr int kFloodMsgs = 64;
constexpr SimDuration kConsumerStall = Micros(200);

// Sends as fast as the channel admits. `offered[i]` is when the producer
// reached the send (includes any credit-park time in later deltas);
// `accepted[i]` is when the fabric took the message.
LipProgram FloodProducer(std::vector<SimTime>* offered,
                         std::vector<SimTime>* accepted) {
  return [offered, accepted](LipContext& ctx) -> Task {
    for (int i = 0; i < kFloodMsgs; ++i) {
      (*offered)[i] = ctx.now();
      co_await ctx.send("flood", "f" + std::to_string(i));
      (*accepted)[i] = ctx.now();
    }
    co_return;
  };
}

LipProgram FloodConsumer(std::vector<SimTime>* arrivals) {
  return [arrivals](LipContext& ctx) -> Task {
    for (int i = 0; i < kFloodMsgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("flood");
      if (!msg.ok()) {
        co_return;
      }
      (*arrivals)[i] = ctx.now();  // Single producer: FIFO, index == order.
    }
    co_return;
  };
}

struct SlowConsumerRun {
  uint64_t queue_peak = 0;
  uint64_t credit_waits = 0;
  double producer_done_ms = 0.0;
  double finish_ms = 0.0;
  double goodput_msgs_per_s = 0.0;
  double mean_queue_us = 0.0;  // accepted -> delivered (fabric residency).
  double mean_e2e_us = 0.0;    // offered -> delivered (producer's view).
};

SlowConsumerRun RunSlowConsumer(uint64_t credits) {
  Simulator sim;
  FaultPlan faults(7);
  // Consumer lands on replica 0 (round-robin, launched first), so the
  // channel homes there; stall every delivery for the whole run.
  faults.AddSlowConsumer(0, 0, Seconds(60), kConsumerStall);
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.fault_plan = &faults;
  options.ipc.channel_credits = credits;
  SymphonyCluster cluster(&sim, options);
  std::vector<SimTime> offered(kFloodMsgs, 0);
  std::vector<SimTime> accepted(kFloodMsgs, 0);
  std::vector<SimTime> arrivals(kFloodMsgs, 0);
  cluster.Launch("consumer", "", FloodConsumer(&arrivals));
  cluster.Launch("producer", "", FloodProducer(&offered, &accepted));
  sim.Run();
  SlowConsumerRun run;
  run.queue_peak = cluster.fabric().View("flood").queue_peak;
  run.credit_waits = cluster.fabric().stats().credit_waits;
  run.producer_done_ms = ToSeconds(accepted.back()) * 1e3;
  run.finish_ms = ToSeconds(arrivals.back()) * 1e3;
  if (arrivals.back() > 0) {
    run.goodput_msgs_per_s =
        static_cast<double>(kFloodMsgs) / ToSeconds(arrivals.back());
  }
  SimDuration queue_total = 0;
  SimDuration e2e_total = 0;
  for (int i = 0; i < kFloodMsgs; ++i) {
    queue_total += arrivals[i] - accepted[i];
    e2e_total += arrivals[i] - offered[i];
  }
  run.mean_queue_us = ToSeconds(queue_total) / kFloodMsgs * 1e6;
  run.mean_e2e_us = ToSeconds(e2e_total) / kFloodMsgs * 1e6;
  return run;
}

void SlowConsumerSweep() {
  BenchTable table({"credits", "queue_peak", "credit_waits",
                    "producer_done_ms", "finish_ms", "goodput_msg_s",
                    "mean_queue_us", "mean_e2e_us"});
  for (uint64_t credits : {uint64_t{0}, uint64_t{4}, uint64_t{16}}) {
    SlowConsumerRun run = RunSlowConsumer(credits);
    std::string label = credits == 0 ? "unbounded" : std::to_string(credits);
    table.AddRow({label, std::to_string(run.queue_peak),
                  std::to_string(run.credit_waits),
                  Fmt(run.producer_done_ms), Fmt(run.finish_ms),
                  Fmt(run.goodput_msgs_per_s, 0), Fmt(run.mean_queue_us),
                  Fmt(run.mean_e2e_us)});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"slow_consumer\","
        "\"credits\":%llu,\"msgs\":%d,\"queue_peak\":%llu,"
        "\"credit_waits\":%llu,\"producer_done_ms\":%.3f,\"finish_ms\":%.3f,"
        "\"goodput_msgs_per_s\":%.0f,\"mean_queue_us\":%.3f,"
        "\"mean_e2e_us\":%.3f}\n",
        static_cast<unsigned long long>(credits), kFloodMsgs,
        static_cast<unsigned long long>(run.queue_peak),
        static_cast<unsigned long long>(run.credit_waits),
        run.producer_done_ms, run.finish_ms, run.goodput_msgs_per_s,
        run.mean_queue_us, run.mean_e2e_us);
  }
  std::printf("\nflood: %d msgs, consumer stalled %.0fus/delivery\n",
              kFloodMsgs, ToSeconds(kConsumerStall) * 1e6);
  table.Print(
      "slow consumer: queue growth vs credit backpressure (Llama13B links)");
}

// ---- Part 4: topology — rack locality and uplink congestion ------------

// Raw link-graph round trips on the 2-rack preset: replicas {0,1} share
// rack0, {2,3} share rack1. Each measurement uses a fresh topology so idle
// link state never bleeds between rows; forward and reverse directions are
// independent wires, so RTT = 2x the one-way arrival.
void TopologyRttSweep() {
  CostModel cost(ModelConfig::Llama13B());
  BenchTable table({"scope", "payload_b", "one_way_us", "rtt_us"});
  struct Scope {
    const char* name;
    size_t from, to;
  };
  constexpr Scope kScopes[] = {{"intra-rack", 0, 1}, {"inter-rack", 0, 2}};
  for (const Scope& scope : kScopes) {
    for (uint64_t payload : {uint64_t{0}, uint64_t{4096}, uint64_t{1 << 20}}) {
      Simulator sim;
      TopologyOptions topt;
      topt.preset = TopologyOptions::Preset::kTwoRack;
      topt.replicas = 4;
      topt.rack_split = 2;
      NetworkTopology topo(&sim, &cost, nullptr, nullptr, topt);
      double one_way_us =
          ToSeconds(topo.Transfer(scope.from, scope.to, payload, "rtt")) * 1e6;
      double rtt_us = 2.0 * one_way_us;
      table.AddRow({scope.name, std::to_string(payload), Fmt(one_way_us),
                    Fmt(rtt_us)});
      std::printf(
          "JSON {\"bench\":\"ipc\",\"part\":\"topology_rtt\","
          "\"scope\":\"%s\",\"payload_bytes\":%llu,\"one_way_us\":%.3f,"
          "\"rtt_us\":%.3f}\n",
          scope.name, static_cast<unsigned long long>(payload), one_way_us,
          rtt_us);
    }
  }
  table.Print("2-rack topology: intra- vs inter-rack transfer (Llama13B)");
}

// Builds a journal worth shipping: local self-channel traffic with fat
// payloads (recv replay keeps the bytes), paced so the LIP is still alive
// when the migration fires.
constexpr int kBulkMsgs = 64;
constexpr size_t kBulkPayload = 512;

LipProgram BulkJournalLip() {
  return [](LipContext& ctx) -> Task {
    for (int i = 0; i < kBulkMsgs; ++i) {
      co_await ctx.send("bulk", std::string(kBulkPayload, 'b'));
      StatusOr<std::string> msg = co_await ctx.recv("bulk");
      if (!msg.ok()) {
        co_return;
      }
      co_await ctx.sleep(Micros(300));
    }
    ctx.emit("bulk-done;");
    co_return;
  };
}

struct CongestionRun {
  double max_gap_us = 0.0;
  double finish_ms = 0.0;
  uint64_t ship_bytes = 0;
  uint64_t fetched_bytes = 0;
  double uplink_queue_us = 0.0;
  std::string log;
};

// Two replicas on opposite racks joined by a deliberately thin uplink.
// Stream: producer (replica 1) -> consumer (replica 0), i.e. every message
// rides the rack1->rack0 uplink direction. The bulk LIP sits on replica 1;
// migrating it to replica 0 ships its journal over that SAME directed
// uplink, so the stream queues behind the migration's bytes.
CongestionRun RunUplinkCongestion(bool migrate_bulk) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.enable_recovery = true;
  options.topology.preset = TopologyOptions::Preset::kTwoRack;
  options.topology.rack_split = 1;            // replica0 | replica1.
  options.topology.uplink_bandwidth = 1e6;    // 1 MB/s: ~1us per byte.
  SymphonyCluster cluster(&sim, options);
  std::vector<SimTime> arrivals(kStreamMsgs, 0);
  // Round-robin placement: consumer->0, producer->1, filler->0, bulk->1.
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", StreamConsumer(&arrivals));
  cluster.Launch("producer", "", StreamProducer());
  cluster.Launch("filler", "", [](LipContext& ctx) -> Task {
    (void)ctx;
    co_return;
  });
  SymphonyCluster::ClusterLip bulk =
      cluster.Launch("bulk", "", BulkJournalLip());
  if (migrate_bulk) {
    sim.ScheduleAt(Millis(8), [&cluster, bulk] {
      SymphonyCluster::ClusterLip where = cluster.Locate(bulk);
      (void)cluster.Migrate(where, 0);
    });
  }
  sim.Run();
  CongestionRun run;
  run.log = cluster.Output(cons);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] == 0 || arrivals[i - 1] == 0) {
      continue;
    }
    run.max_gap_us = std::max(
        run.max_gap_us, ToSeconds(arrivals[i] - arrivals[i - 1]) * 1e6);
  }
  run.finish_ms = ToSeconds(sim.now()) * 1e3;
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  run.ship_bytes = snap.ship_bytes;
  run.fetched_bytes = snap.store.fetched_bytes;
  for (const TopoLinkReport& link : snap.net_links) {
    if (link.name == "link:rack1->rack0") {
      run.uplink_queue_us = ToSeconds(link.stats.queue_delay) * 1e6;
    }
  }
  return run;
}

void UplinkCongestionSweep() {
  CongestionRun clean = RunUplinkCongestion(false);
  CongestionRun congested = RunUplinkCongestion(true);
  BenchTable table({"scenario", "max_gap_us", "stall_vs_clean_us",
                    "uplink_queue_us", "ship_bytes", "fetched_bytes",
                    "bit_identical"});
  struct Case {
    const char* name;
    const CongestionRun* run;
  };
  const Case kCases[] = {{"stream-only", &clean},
                         {"stream+migration", &congested}};
  for (const Case& c : kCases) {
    double stall_us = c.run->max_gap_us - clean.max_gap_us;
    bool identical = c.run->log == clean.log;
    table.AddRow({c.name, Fmt(c.run->max_gap_us), Fmt(stall_us),
                  Fmt(c.run->uplink_queue_us),
                  std::to_string(c.run->ship_bytes),
                  std::to_string(c.run->fetched_bytes),
                  identical ? "yes" : "NO"});
    std::printf(
        "JSON {\"bench\":\"ipc\",\"part\":\"uplink_congestion\","
        "\"scenario\":\"%s\",\"max_gap_us\":%.3f,\"stall_vs_clean_us\":%.3f,"
        "\"uplink_queue_us\":%.3f,\"ship_bytes\":%llu,\"fetched_bytes\":%llu,"
        "\"bit_identical\":%s}\n",
        c.name, c.run->max_gap_us, stall_us, c.run->uplink_queue_us,
        static_cast<unsigned long long>(c.run->ship_bytes),
        static_cast<unsigned long long>(c.run->fetched_bytes),
        identical ? "true" : "false");
  }
  std::printf(
      "\n2 racks (replica0 | replica1), uplink 1 MB/s; bulk LIP (%d x %zuB "
      "journal) migrates across the uplink at t=8ms\n",
      kBulkMsgs, kBulkPayload);
  table.Print("shared uplink: migration bytes stall concurrent IPC");
}

}  // namespace
}  // namespace symphony

int main() {
  std::printf("bench_ipc: cluster IPC fabric latency, throughput, stalls\n");
  symphony::PingPongSweep();
  symphony::MigrationStallSweep();
  symphony::SlowConsumerSweep();
  symphony::TopologyRttSweep();
  symphony::UplinkCongestionSweep();
  return 0;
}
