// Figure 2 mechanism benchmark: parallel generation over a shared prefix.
//
// The paper's example program forks a precomputed prefix KV per branch.
// This bench quantifies what kv_fork buys over the two alternatives a
// prompt-serving client has:
//   * recompute  — each branch prefills the prefix from scratch;
//   * fork       — each branch shares the prefix pages copy-on-write.
// Sweeps branch count and prefix length; reports virtual completion time,
// GPU page usage, and the speedup.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

struct RunResult {
  double seconds = 0.0;
  uint64_t gpu_pages_peak = 0;
  uint64_t batches = 0;
};

RunResult RunParallelGeneration(int branches, int prefix_tokens, bool use_fork) {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  constexpr int kTokensPerBranch = 16;

  RunResult result;
  server.Launch("fig2", [&, branches, prefix_tokens, use_fork](LipContext& ctx) -> Task {
    std::vector<TokenId> prefix;
    for (int i = 0; i < prefix_tokens; ++i) {
      prefix.push_back(static_cast<TokenId>(kFirstWordToken + (i % 1000)));
    }
    KvHandle prefix_kv{};
    if (use_fork) {
      prefix_kv = *ctx.kv_create("/kv/prefix", kModeShared);
      (void)co_await ctx.pred(prefix_kv, prefix);
    }
    for (int b = 0; b < branches; ++b) {
      ctx.spawn([&, b](LipContext& inner) -> Task {
        KvHandle kv{};
        if (use_fork) {
          StatusOr<KvHandle> fork = inner.kv_fork(prefix_kv);
          if (!fork.ok()) {
            co_return;
          }
          kv = *fork;
        } else {
          kv = *inner.kv_tmp();
          (void)co_await inner.pred(kv, prefix);  // Recompute the prefix.
        }
        TokenId t = static_cast<TokenId>(260 + b);
        for (int step = 0; step < kTokensPerBranch; ++step) {
          StatusOr<std::vector<Distribution>> d = co_await inner.pred1(kv, t);
          if (!d.ok()) {
            co_return;
          }
          t = d->back().Argmax();
        }
        // Keep kv open so the page census below sees every branch's KV;
        // process exit reclaims the handles.
        co_return;
      });
    }
    co_await ctx.join_all();
    result.gpu_pages_peak = server.kvfs().pool().stats().gpu_pages_used;
    co_return;
  });
  sim.Run();
  result.seconds = ToSeconds(sim.now());
  result.batches = server.device().stats().batches;
  return result;
}

}  // namespace
}  // namespace symphony

int main() {
  using namespace symphony;
  std::printf("bench_fork_vs_recompute: Figure 2 shared-prefix parallel generation\n");

  {
    BenchTable table({"branches", "prefix", "fork_s", "recompute_s", "speedup",
                      "fork_pages", "recompute_pages"});
    for (int branches : {2, 4, 8, 16}) {
      for (int prefix : {512, 2048}) {
        RunResult fork = RunParallelGeneration(branches, prefix, /*use_fork=*/true);
        RunResult redo = RunParallelGeneration(branches, prefix, /*use_fork=*/false);
        table.AddRow({std::to_string(branches), std::to_string(prefix),
                      Fmt(fork.seconds), Fmt(redo.seconds),
                      Fmt(redo.seconds / fork.seconds),
                      std::to_string(fork.gpu_pages_peak),
                      std::to_string(redo.gpu_pages_peak)});
      }
    }
    table.Print("kv_fork vs per-branch recompute (time to finish all branches)");
  }
  return 0;
}
