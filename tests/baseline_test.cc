// Tests for the baseline prompt servers: completion correctness, continuous
// batching, and automatic prefix caching (vLLM-like) vs none (TGI-like).
#include <gtest/gtest.h>

#include <vector>

#include "src/baseline/prompt_server.h"
#include "src/model/model.h"
#include "src/sim/event_queue.h"

namespace symphony {
namespace {

BaselineOptions TinyBaseline(bool prefix_cache) {
  BaselineOptions o = prefix_cache ? PromptServer::VllmLike() : PromptServer::TgiLike();
  o.model = ModelConfig::Tiny();
  return o;
}

std::vector<TokenId> MakePrompt(int variant, size_t len = 8) {
  std::vector<TokenId> prompt;
  for (size_t i = 0; i < len; ++i) {
    prompt.push_back(static_cast<TokenId>(260 + (variant * 7 + i) % 40));
  }
  return prompt;
}

TEST(PromptServerTest, CompletesGreedyRequest) {
  Simulator sim;
  PromptServer server(&sim, TinyBaseline(false));
  CompletionResponse got;
  CompletionRequest request;
  request.id = 1;
  request.prompt = MakePrompt(0);
  request.max_new_tokens = 6;
  request.stop_at_eos = false;
  request.done = [&](const CompletionResponse& r) { got = r; };
  server.Submit(std::move(request));
  sim.Run();

  ASSERT_TRUE(got.status.ok()) << got.status;
  EXPECT_EQ(got.tokens.size(), 6u);
  EXPECT_GT(got.finish_time, got.arrival);
  EXPECT_GE(got.first_token_time, got.arrival);

  // Greedy output must equal direct model computation.
  Model model(ModelConfig::Tiny());
  HiddenState s = model.InitialState();
  int32_t pos = 0;
  for (TokenId t : MakePrompt(0)) {
    s = model.Advance(s, t, pos++);
  }
  std::vector<TokenId> expected;
  TokenId next = model.Predict(s).Argmax();
  for (int i = 0; i < 6; ++i) {
    expected.push_back(next);
    s = model.Advance(s, next, pos++);
    next = model.Predict(s).Argmax();
  }
  EXPECT_EQ(got.tokens, expected);
}

TEST(PromptServerTest, StopsAtEos) {
  Simulator sim;
  BaselineOptions options = TinyBaseline(false);
  // Crank the EOS bias so EOS arrives quickly under greedy decoding.
  options.model.eos_bias_permille = 500;
  PromptServer server(&sim, options);
  CompletionResponse got;
  CompletionRequest request;
  request.prompt = MakePrompt(1);
  request.max_new_tokens = 200;
  request.stop_at_eos = true;
  request.done = [&](const CompletionResponse& r) { got = r; };
  server.Submit(std::move(request));
  sim.Run();
  ASSERT_TRUE(got.status.ok());
  EXPECT_LT(got.tokens.size(), 200u);
  for (TokenId t : got.tokens) {
    EXPECT_NE(t, kEosToken);
  }
}

TEST(PromptServerTest, ContinuousBatchingInterleaves) {
  Simulator sim;
  PromptServer server(&sim, TinyBaseline(false));
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    CompletionRequest request;
    request.id = static_cast<uint64_t>(i);
    request.prompt = MakePrompt(i);
    request.max_new_tokens = 5;
    request.stop_at_eos = false;
    request.done = [&](const CompletionResponse& r) {
      if (r.status.ok()) {
        ++completed;
      }
    };
    server.Submit(std::move(request));
  }
  sim.Run();
  EXPECT_EQ(completed, 8);
  // Interleaved execution: far fewer steps than 8 sequential requests would
  // need if run back-to-back (8 * (1 prefill + 4 decode) = 40).
  EXPECT_LT(server.stats().steps, 40u);
}

TEST(PromptServerTest, VllmLikeCacheHitsOnRepeatedPrompt) {
  Simulator sim;
  PromptServer server(&sim, TinyBaseline(true));
  std::vector<CompletionResponse> responses;
  auto submit = [&](uint64_t id) {
    CompletionRequest request;
    request.id = id;
    request.prompt = MakePrompt(3, 40);
    request.max_new_tokens = 4;
    request.stop_at_eos = false;
    request.done = [&](const CompletionResponse& r) { responses.push_back(r); };
    server.Submit(std::move(request));
  };
  submit(1);
  sim.Run();
  submit(2);
  sim.Run();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().cache_misses, 1u);
  // Identical outputs either way.
  EXPECT_EQ(responses[0].tokens, responses[1].tokens);
  // The hit is much faster: it skipped a 40-token prefill.
  EXPECT_LT(responses[1].e2e_latency(), responses[0].e2e_latency());
}

TEST(PromptServerTest, TgiLikeNeverCaches) {
  Simulator sim;
  PromptServer server(&sim, TinyBaseline(false));
  int hits = 0;
  for (int i = 0; i < 3; ++i) {
    CompletionRequest request;
    request.prompt = MakePrompt(4, 30);
    request.max_new_tokens = 3;
    request.stop_at_eos = false;
    request.done = [&](const CompletionResponse& r) { hits += r.cache_hit ? 1 : 0; };
    server.Submit(std::move(request));
    sim.Run();
  }
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(PromptServerTest, CacheEvictedUnderMemoryPressure) {
  Simulator sim;
  BaselineOptions options = TinyBaseline(true);
  // Tiny KV budget: shrink the device so only ~2 prompts' KV fits.
  options.hardware.hbm_bytes = options.model.WeightBytes() +
                               options.hardware.activation_reserve_bytes +
                               options.model.KvBytesPerToken() * 128;
  PromptServer server(&sim, options);
  // Distinct prompts, each ~48 tokens: filling the cache forces LRU drops.
  for (int i = 0; i < 6; ++i) {
    CompletionRequest request;
    request.prompt = MakePrompt(i, 48);
    request.max_new_tokens = 2;
    request.stop_at_eos = false;
    request.done = [](const CompletionResponse&) {};
    server.Submit(std::move(request));
    sim.Run();
  }
  EXPECT_GT(server.kvfs().stats().dropped_files, 0u);
}

TEST(PromptServerTest, ManyConcurrentRequestsAllComplete) {
  Simulator sim;
  PromptServer server(&sim, TinyBaseline(true));
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAt(Millis(i), [&, i] {
      CompletionRequest request;
      request.prompt = MakePrompt(i % 5, 48);
      request.max_new_tokens = 8;
      request.stop_at_eos = false;
      request.done = [&](const CompletionResponse& r) {
        r.status.ok() ? ++ok : ++failed;
      };
      server.Submit(std::move(request));
    });
  }
  sim.Run();
  EXPECT_EQ(ok, 50);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(server.stats().cache_hits, 0u);  // Repeated prompt variants.
}

}  // namespace
}  // namespace symphony
