// Tests for the Chrome-trace recorder and its serving-stack integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/serve/server.h"
#include "src/sim/trace.h"

namespace symphony {
namespace {

TEST(TraceTest, SpanSerializesToChromeEvent) {
  TraceRecorder trace;
  trace.Span("gpu", "batch n=4", Millis(10), Millis(25));
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25000.000"), std::string::npos);
  EXPECT_NE(json.find("batch n=4"), std::string::npos);
}

TEST(TraceTest, InstantAndCounter) {
  TraceRecorder trace;
  trace.Instant("lips", "launch", Micros(5));
  trace.Counter("queue_depth", Micros(7), 12.0);
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("queue_depth"), std::string::npos);
  EXPECT_EQ(trace.event_count(), 2u);
}

TEST(TraceTest, EscapesSpecialCharacters) {
  TraceRecorder trace;
  trace.Span("t", "quote\"back\\slash\nnl", 0, 1);
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnl"), std::string::npos);
}

TEST(TraceTest, DistinctTracksGetDistinctTids) {
  TraceRecorder trace;
  trace.Span("gpu", "a", 0, 1);
  trace.Span("lips", "b", 0, 1);
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceTest, WritesFile) {
  TraceRecorder trace;
  trace.Span("gpu", "x", 0, Millis(1));
  std::string path = ::testing::TempDir() + "/symphony_trace_test.json";
  ASSERT_TRUE(trace.WriteChromeJson(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {0};
  size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_GT(n, 0u);
  EXPECT_EQ(std::string(buffer).substr(0, 15), "{\"traceEvents\":");
}

TEST(TraceTest, ServerEmitsBatchLipAndToolSpans) {
  Simulator sim;
  TraceRecorder trace;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.trace = &trace;
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("t", Millis(3))).ok());

  server.Launch("traced-lip", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261);
    (void)co_await ctx.call_tool("t", "x");
    co_return;
  });
  sim.Run();

  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("batch n=1"), std::string::npos);
  EXPECT_NE(json.find("traced-lip"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"t\""), std::string::npos);
  EXPECT_GE(trace.event_count(), 3u);
}

TEST(TraceTest, NoTraceMeansNoOverheadPath) {
  // Without a recorder, nothing is recorded and nothing crashes.
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  SymphonyServer server(&sim, options);
  server.Launch("untraced", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260);
    co_return;
  });
  sim.Run();
  SUCCEED();
}

}  // namespace
}  // namespace symphony
