// Tests for the LIP standard library: Generate, GenerateConstrained,
// BestOfN, and BeamSearch, all exercised through a full SymphonyServer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/liplib/beam.h"
#include "src/liplib/generation.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

class LiplibTest : public ::testing::Test {
 protected:
  LiplibTest() : server_(&sim_, TinyOptions()) {}

  static ServerOptions TinyOptions() {
    ServerOptions options;
    options.model = ModelConfig::Tiny();
    return options;
  }

  // Runs `body` as a LIP to completion.
  void RunLip(LipProgram body) {
    server_.Launch("test", std::move(body));
    sim_.Run();
  }

  Simulator sim_;
  SymphonyServer server_;
};

TEST_F(LiplibTest, GenerateGreedyMatchesDirectModel) {
  std::vector<TokenId> prompt = {260, 261, 262};
  GenResult result;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 0.0;
    options.max_new_tokens = 10;
    options.stop_at_eos = false;
    result = co_await Generate(ctx, kv, prompt, options);
    co_return;
  });
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.tokens.size(), 10u);

  Model model(ModelConfig::Tiny());
  HiddenState s = model.InitialState();
  int32_t pos = 0;
  for (TokenId t : prompt) {
    s = model.Advance(s, t, pos++);
  }
  for (TokenId expected_next : result.tokens) {
    EXPECT_EQ(model.Predict(s).Argmax(), expected_next);
    s = model.Advance(s, expected_next, pos++);
  }
}

TEST_F(LiplibTest, GenerateLeavesFileConsistent) {
  GenResult result;
  uint64_t file_len = 0;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    GenOptions options;
    options.max_new_tokens = 7;
    options.stop_at_eos = false;
    std::vector<TokenId> prompt = {260, 261};
    result = co_await Generate(ctx, kv, prompt, options);
    file_len = *ctx.kv_len(kv);
    co_return;
  });
  ASSERT_TRUE(result.ok());
  // File contains prompt + every generated token.
  EXPECT_EQ(file_len, 2u + result.tokens.size());
}

TEST_F(LiplibTest, GenerateStopsAtEos) {
  ServerOptions options = TinyOptions();
  options.model.eos_bias_permille = 300;
  Simulator sim;
  SymphonyServer server(&sim, options);
  GenResult result;
  server.Launch("eos", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    GenOptions gen;
    gen.sampler.temperature = 0.0;
    gen.max_new_tokens = 300;
    std::vector<TokenId> prompt = {260};
    result = co_await Generate(ctx, kv, prompt, gen);
    co_return;
  });
  sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.hit_eos);
  EXPECT_LT(result.tokens.size(), 300u);
}

TEST_F(LiplibTest, GenerateEmptyPromptRejected) {
  GenResult result;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    result = co_await Generate(ctx, kv, std::vector<TokenId>(), GenOptions{});
    co_return;
  });
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(LiplibTest, GenerateLogprobMatchesDistributions) {
  GenResult result;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 0.0;
    options.max_new_tokens = 5;
    options.stop_at_eos = false;
    std::vector<TokenId> prompt = {265};
    result = co_await Generate(ctx, kv, prompt, options);
    co_return;
  });
  ASSERT_TRUE(result.ok());
  Model model(ModelConfig::Tiny());
  HiddenState s = model.Advance(model.InitialState(), 265, 0);
  double expected = 0.0;
  int32_t pos = 1;
  for (TokenId t : result.tokens) {
    expected += model.Predict(s).LogProb(t);
    s = model.Advance(s, t, pos++);
  }
  EXPECT_NEAR(result.sum_logprob, expected, 1e-9);
}

TEST_F(LiplibTest, ConstrainedRegexGeneration) {
  std::unique_ptr<Dfa> dfa = *CompileRegex("[0-9]{4}");
  GenResult result;
  RunLip([&](LipContext& ctx) -> Task {
    TokenConstraint constraint(dfa.get(), &ctx.tokenizer());
    KvHandle kv = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 0.0;
    options.max_new_tokens = 16;
    std::vector<TokenId> prompt = {260};
    result = co_await GenerateConstrained(ctx, kv, prompt,
                                          MaskFromRegex(&constraint), options);
    co_return;
  });
  ASSERT_TRUE(result.ok()) << result.status;
  std::string text;
  Tokenizer tokenizer(ModelConfig::Tiny().vocab_size);
  for (TokenId t : result.tokens) {
    text += tokenizer.TokenToString(t);
  }
  EXPECT_TRUE(dfa->Matches(text)) << text;
}

TEST_F(LiplibTest, ConstrainedJsonGeneration) {
  GenResult result;
  std::string text;
  RunLip([&](LipContext& ctx) -> Task {
    JsonMachine machine;
    KvHandle kv = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 0.0;
    options.max_new_tokens = 40;
    std::vector<TokenId> prompt = {261};
    result = co_await GenerateConstrained(ctx, kv, prompt,
                                          MaskFromJson(&machine, &ctx.tokenizer()),
                                          options);
    for (TokenId t : result.tokens) {
      text += ctx.tokenizer().TokenToString(t);
    }
    co_return;
  });
  ASSERT_TRUE(result.ok()) << result.status;
  // Either the machine finished (valid JSON) or the budget truncated it; in
  // the finished case the text must validate.
  JsonMachine checker;
  if (checker.FeedAll(text) && checker.Done()) {
    SUCCEED();
  } else {
    // Truncated: the prefix must at least still be alive.
    JsonMachine prefix_checker;
    EXPECT_TRUE(prefix_checker.FeedAll(text)) << text;
  }
}

TEST_F(LiplibTest, BestOfNPicksHighestLikelihood) {
  GenResult best;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 1.2;
    options.max_new_tokens = 8;
    options.stop_at_eos = false;
    std::vector<TokenId> prompt = {262, 263};
    best = co_await BestOfN(ctx, base, prompt, 6, options);
    co_return;
  });
  ASSERT_TRUE(best.ok()) << best.status;
  EXPECT_EQ(best.tokens.size(), 8u);
  // The winner's mean logprob should beat a single greedy-free sample most
  // of the time; at minimum it must be a finite, sane value.
  EXPECT_GT(best.sum_logprob / 8.0, -18.0);
}

TEST_F(LiplibTest, BestOfNValidatesArguments) {
  GenResult result;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_tmp();
    std::vector<TokenId> prompt = {260};
    result = co_await BestOfN(ctx, base, prompt, 0, GenOptions{});
    co_return;
  });
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(LiplibTest, BeamSearchBeatsGreedyLikelihood) {
  GenResult greedy;
  BeamResult beam;
  RunLip([&](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt = {264, 265};
    // Greedy baseline.
    KvHandle g = *ctx.kv_tmp();
    GenOptions options;
    options.sampler.temperature = 0.0;
    options.max_new_tokens = 8;
    options.stop_at_eos = false;
    greedy = co_await Generate(ctx, g, prompt, options);

    // Beam search from the same prompt.
    KvHandle base = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred(base, prompt);
    if (!d.ok()) {
      co_return;
    }
    BeamOptions beam_options;
    beam_options.width = 4;
    beam_options.max_steps = 8;
    beam = co_await BeamSearch(ctx, base, d->back(), beam_options);
    co_return;
  });
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(beam.ok()) << beam.status;
  ASSERT_FALSE(beam.tokens.empty());
  // Beam search explores more; its mean logprob must be at least greedy's.
  double greedy_mean = greedy.sum_logprob / static_cast<double>(greedy.tokens.size());
  EXPECT_GE(beam.MeanLogprob() + 1e-9, greedy_mean);
}

TEST_F(LiplibTest, BeamSearchClosesAllForks) {
  uint64_t pages_before = 0;
  uint64_t pages_after = 0;
  RunLip([&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred_tokens(base, 266, 267);
    if (!d.ok()) {
      co_return;
    }
    pages_before = server_.kvfs().pool().stats().gpu_pages_used;
    BeamOptions options;
    options.width = 3;
    options.max_steps = 5;
    (void)co_await BeamSearch(ctx, base, d->back(), options);
    pages_after = server_.kvfs().pool().stats().gpu_pages_used;
    co_return;
  });
  // All beam forks were closed: only the base file's pages remain.
  EXPECT_EQ(pages_after, pages_before);
}

TEST_F(LiplibTest, BeamSearchDeterministic) {
  auto run = [&] {
    Simulator sim;
    SymphonyServer server(&sim, TinyOptions());
    BeamResult beam;
    server.Launch("beam", [&](LipContext& ctx) -> Task {
      KvHandle base = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d =
          co_await ctx.pred_tokens(base, 270, 271);
      if (!d.ok()) {
        co_return;
      }
      beam = co_await BeamSearch(ctx, base, d->back(), BeamOptions{});
      co_return;
    });
    sim.Run();
    return beam.tokens;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace symphony
