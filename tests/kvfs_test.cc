// Tests for KVFS: page pool (refcounting, COW, tiers), file data
// (append/truncate/clone), and the Kvfs namespace (ACLs, locks, fork,
// extract, merge, eviction, residency).
#include <gtest/gtest.h>

#include <vector>

#include "src/kvfs/kv_file.h"
#include "src/kvfs/kvfs.h"
#include "src/kvfs/page_pool.h"
#include "src/kvfs/types.h"

namespace symphony {
namespace {

TokenRecord Rec(TokenId t, int32_t pos) {
  return TokenRecord{t, pos, static_cast<HiddenState>(t) * 1000003ULL + static_cast<uint64_t>(pos)};
}

// ---------- PagePool ----------

TEST(PagePoolTest, AllocateAndFree) {
  PagePool pool(4, 4);
  StatusOr<PageId> p = pool.Allocate(Tier::kGpu);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(pool.stats().gpu_pages_used, 1u);
  pool.Unref(*p);
  EXPECT_EQ(pool.stats().gpu_pages_used, 0u);
}

TEST(PagePoolTest, BudgetEnforced) {
  PagePool pool(2, 1);
  ASSERT_TRUE(pool.Allocate(Tier::kGpu).ok());
  ASSERT_TRUE(pool.Allocate(Tier::kGpu).ok());
  StatusOr<PageId> third = pool.Allocate(Tier::kGpu);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(pool.Allocate(Tier::kHost).ok());
}

TEST(PagePoolTest, RefcountKeepsPageAlive) {
  PagePool pool(4, 0);
  PageId p = *pool.Allocate(Tier::kGpu);
  pool.Ref(p);
  pool.Unref(p);
  EXPECT_EQ(pool.refcount(p), 1u);
  EXPECT_EQ(pool.stats().gpu_pages_used, 1u);
  pool.Unref(p);
  EXPECT_EQ(pool.stats().gpu_pages_used, 0u);
}

TEST(PagePoolTest, EnsureExclusiveNoCopyWhenUnshared) {
  PagePool pool(4, 0);
  PageId p = *pool.Allocate(Tier::kGpu);
  StatusOr<PageId> q = pool.EnsureExclusive(p);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, p);
  EXPECT_EQ(pool.stats().cow_copies, 0u);
}

TEST(PagePoolTest, EnsureExclusiveCopiesWhenShared) {
  PagePool pool(4, 0);
  PageId p = *pool.Allocate(Tier::kGpu);
  pool.MutableRecords(p)[0] = Rec(100, 0);
  pool.set_used(p, 1);
  pool.Ref(p);
  StatusOr<PageId> q = pool.EnsureExclusive(p);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(*q, p);
  EXPECT_EQ(pool.stats().cow_copies, 1u);
  EXPECT_EQ(pool.refcount(p), 1u);
  EXPECT_EQ(pool.refcount(*q), 1u);
  EXPECT_EQ(pool.Records(*q)[0].token, 100);
  EXPECT_EQ(pool.used(*q), 1u);
}

TEST(PagePoolTest, MoveToTierAccounting) {
  PagePool pool(2, 2);
  PageId p = *pool.Allocate(Tier::kGpu);
  ASSERT_TRUE(pool.MoveToTier(p, Tier::kHost).ok());
  EXPECT_EQ(pool.tier(p), Tier::kHost);
  EXPECT_EQ(pool.stats().gpu_pages_used, 0u);
  EXPECT_EQ(pool.stats().host_pages_used, 1u);
  // Move back.
  ASSERT_TRUE(pool.MoveToTier(p, Tier::kGpu).ok());
  EXPECT_EQ(pool.tier(p), Tier::kGpu);
}

TEST(PagePoolTest, MoveToFullTierFails) {
  PagePool pool(2, 1);
  PageId a = *pool.Allocate(Tier::kGpu);
  ASSERT_TRUE(pool.Allocate(Tier::kHost).ok());
  EXPECT_FALSE(pool.MoveToTier(a, Tier::kHost).ok());
}

TEST(PagePoolTest, SlotReuseAfterFree) {
  PagePool pool(1, 0);
  PageId a = *pool.Allocate(Tier::kGpu);
  pool.Unref(a);
  PageId b = *pool.Allocate(Tier::kGpu);
  EXPECT_EQ(a, b);  // Free list reuses the slot.
}

// ---------- KvFileData ----------

class KvFileDataTest : public ::testing::Test {
 protected:
  PagePool pool_{64, 64};
};

TEST_F(KvFileDataTest, AppendAndRead) {
  KvFileData f(&pool_);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(f.Append(Rec(260 + i, i)).ok());
  }
  EXPECT_EQ(f.length(), 40u);
  EXPECT_EQ(f.pages().size(), 3u);  // ceil(40/16)
  StatusOr<TokenRecord> r = f.At(25);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->token, 285);
  EXPECT_EQ(r->position, 25);
}

TEST_F(KvFileDataTest, AtOutOfRange) {
  KvFileData f(&pool_);
  ASSERT_TRUE(f.Append(Rec(1, 0)).ok());
  EXPECT_EQ(f.At(1).status().code(), StatusCode::kOutOfRange);
}

TEST_F(KvFileDataTest, TailState) {
  KvFileData f(&pool_);
  EXPECT_EQ(f.TailState().status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(f.Append(Rec(5, 0)).ok());
  EXPECT_EQ(*f.TailState(), Rec(5, 0).state);
}

TEST_F(KvFileDataTest, TruncateReleasesPages) {
  KvFileData f(&pool_);
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(f.Append(Rec(i, i)).ok());
  }
  EXPECT_EQ(pool_.stats().gpu_pages_used, 3u);
  ASSERT_TRUE(f.Truncate(10).ok());
  EXPECT_EQ(f.length(), 10u);
  EXPECT_EQ(pool_.stats().gpu_pages_used, 1u);
}

TEST_F(KvFileDataTest, TruncateBeyondLengthFails) {
  KvFileData f(&pool_);
  EXPECT_EQ(f.Truncate(5).code(), StatusCode::kOutOfRange);
}

TEST_F(KvFileDataTest, CloneSharesPages) {
  KvFileData a(&pool_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.Append(Rec(i, i)).ok());
  }
  uint64_t pages_before = pool_.stats().gpu_pages_used;
  KvFileData b(&pool_);
  ASSERT_TRUE(b.CloneFrom(a).ok());
  EXPECT_EQ(pool_.stats().gpu_pages_used, pages_before);  // No new pages.
  EXPECT_EQ(b.length(), 20u);
  EXPECT_EQ(b.At(7)->token, a.At(7)->token);
}

TEST_F(KvFileDataTest, CloneThenDivergentAppendsCow) {
  KvFileData a(&pool_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.Append(Rec(i, i)).ok());
  }
  KvFileData b(&pool_);
  ASSERT_TRUE(b.CloneFrom(a).ok());
  // b appends into the shared partial tail page -> COW.
  ASSERT_TRUE(b.Append(Rec(777, 20)).ok());
  EXPECT_EQ(pool_.stats().cow_copies, 1u);
  // a's view unchanged.
  EXPECT_EQ(a.length(), 20u);
  EXPECT_EQ(a.At(19)->token, 19);
  EXPECT_EQ(b.At(20)->token, 777);
  // a appends too; its tail page is exclusively owned again after b's COW.
  ASSERT_TRUE(a.Append(Rec(888, 20)).ok());
  EXPECT_EQ(pool_.stats().cow_copies, 1u);
  EXPECT_EQ(a.At(20)->token, 888);
  EXPECT_EQ(b.At(20)->token, 777);
}

TEST_F(KvFileDataTest, TruncateSharedPageCows) {
  KvFileData a(&pool_);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(a.Append(Rec(i, i)).ok());
  }
  KvFileData b(&pool_);
  ASSERT_TRUE(b.CloneFrom(a).ok());
  ASSERT_TRUE(b.Truncate(5).ok());
  EXPECT_EQ(b.length(), 5u);
  // a unaffected.
  EXPECT_EQ(a.length(), 16u);
  EXPECT_EQ(a.At(15)->token, 15);
}

TEST_F(KvFileDataTest, ReleaseAllFreesEverything) {
  KvFileData a(&pool_);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(a.Append(Rec(i, i)).ok());
  }
  a.ReleaseAll();
  EXPECT_EQ(a.length(), 0u);
  EXPECT_EQ(pool_.stats().gpu_pages_used, 0u);
}

TEST_F(KvFileDataTest, MoveTransfersOwnership) {
  KvFileData a(&pool_);
  ASSERT_TRUE(a.Append(Rec(1, 0)).ok());
  KvFileData b = std::move(a);
  EXPECT_EQ(b.length(), 1u);
  EXPECT_EQ(a.length(), 0u);  // NOLINT(bugprone-use-after-move): testing reset.
  EXPECT_EQ(pool_.stats().gpu_pages_used, 1u);
}

// ---------- Kvfs ----------

class KvfsTest : public ::testing::Test {
 protected:
  static KvfsOptions Options(EvictionMode mode = EvictionMode::kOffloadLru,
                             uint64_t gpu_pages = 64, uint64_t host_pages = 64) {
    KvfsOptions o;
    o.gpu_page_budget = gpu_pages;
    o.host_page_budget = host_pages;
    o.eviction = mode;
    return o;
  }

  static constexpr LipId kAlice = 10;
  static constexpr LipId kBob = 11;

  static std::vector<TokenRecord> MakeRecords(int n, TokenId base = 300) {
    std::vector<TokenRecord> recs;
    for (int i = 0; i < n; ++i) {
      recs.push_back(Rec(base + i, i));
    }
    return recs;
  }
};

TEST_F(KvfsTest, CreateOpenCloseLifecycle) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  StatusOr<KvHandle> h = fs.Open("/kv/doc", create);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(fs.Exists("/kv/doc"));
  ASSERT_TRUE(fs.Close(*h).ok());
  EXPECT_TRUE(fs.Exists("/kv/doc"));  // Named files persist after close.
}

TEST_F(KvfsTest, OpenMissingWithoutCreateFails) {
  Kvfs fs(Options());
  OpenOptions open{.requester = kAlice};
  EXPECT_EQ(fs.Open("/nope", open).status().code(), StatusCode::kNotFound);
}

TEST_F(KvfsTest, ExclusiveCreateFailsOnExisting) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  ASSERT_TRUE(fs.Open("/kv/x", create).ok());
  OpenOptions excl = create;
  excl.exclusive = true;
  EXPECT_EQ(fs.Open("/kv/x", excl).status().code(), StatusCode::kAlreadyExists);
}

TEST_F(KvfsTest, StaleHandleRejected) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/x", create);
  ASSERT_TRUE(fs.Close(h).ok());
  EXPECT_EQ(fs.Length(h).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.Close(h).code(), StatusCode::kInvalidArgument);
}

TEST_F(KvfsTest, AppendReadTailState) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/x", create);
  std::vector<TokenRecord> recs = MakeRecords(20);
  ASSERT_TRUE(fs.Append(h, recs).ok());
  EXPECT_EQ(*fs.Length(h), 20u);
  EXPECT_EQ(fs.Read(h, 5)->token, 305);
  EXPECT_EQ(*fs.TailState(h), recs.back().state);
}

TEST_F(KvfsTest, AclDeniesOtherReader) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModePrivate;
  ASSERT_TRUE(fs.Open("/kv/secret", create).ok());
  OpenOptions read{.requester = kBob};
  EXPECT_EQ(fs.Open("/kv/secret", read).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_GT(fs.stats().acl_denials, 0u);
}

TEST_F(KvfsTest, SharedModeAllowsOtherReaderNotWriter) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModeShared;
  ASSERT_TRUE(fs.Open("/kv/shared", create).ok());
  OpenOptions read{.requester = kBob};
  EXPECT_TRUE(fs.Open("/kv/shared", read).ok());
  OpenOptions write{.requester = kBob, .write = true};
  EXPECT_EQ(fs.Open("/kv/shared", write).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KvfsTest, AdminBypassesAcl) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModePrivate;
  ASSERT_TRUE(fs.Open("/kv/secret", create).ok());
  OpenOptions admin{.requester = kAdminLip, .write = true};
  EXPECT_TRUE(fs.Open("/kv/secret", admin).ok());
}

TEST_F(KvfsTest, SetModePromotesAccess) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/doc", create);
  ASSERT_TRUE(fs.SetMode(h, kModeShared).ok());
  OpenOptions read{.requester = kBob};
  EXPECT_TRUE(fs.Open("/kv/doc", read).ok());
}

TEST_F(KvfsTest, SetModeRequiresOwnership) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModePublic;
  ASSERT_TRUE(fs.Open("/kv/doc", create).ok());
  OpenOptions open{.requester = kBob, .write = true};
  KvHandle hb = *fs.Open("/kv/doc", open);
  EXPECT_EQ(fs.SetMode(hb, kModePrivate).code(), StatusCode::kPermissionDenied);
}

TEST_F(KvfsTest, WriteOnReadOnlyHandleFails) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModeShared;
  ASSERT_TRUE(fs.Open("/kv/doc", create).ok());
  OpenOptions read{.requester = kBob};
  KvHandle hb = *fs.Open("/kv/doc", read);
  std::vector<TokenRecord> recs = MakeRecords(1);
  EXPECT_EQ(fs.Append(hb, recs).code(), StatusCode::kPermissionDenied);
}

TEST_F(KvfsTest, RemoveUnlinksButOpenHandleStillWorks) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/doc", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(5)).ok());
  ASSERT_TRUE(fs.Remove("/kv/doc", kAlice).ok());
  EXPECT_FALSE(fs.Exists("/kv/doc"));
  EXPECT_EQ(*fs.Length(h), 5u);  // POSIX unlink semantics.
  ASSERT_TRUE(fs.Close(h).ok());
  EXPECT_EQ(fs.pool().stats().gpu_pages_used, 0u);  // Reclaimed.
}

TEST_F(KvfsTest, RemoveDeniedForStranger) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  ASSERT_TRUE(fs.Open("/kv/doc", create).ok());
  EXPECT_EQ(fs.Remove("/kv/doc", kBob).code(), StatusCode::kPermissionDenied);
}

TEST_F(KvfsTest, AnonymousFileReclaimedOnClose) {
  Kvfs fs(Options());
  KvHandle h = *fs.CreateAnonymous(kAlice);
  ASSERT_TRUE(fs.Append(h, MakeRecords(20)).ok());
  EXPECT_GT(fs.pool().stats().gpu_pages_used, 0u);
  ASSERT_TRUE(fs.Close(h).ok());
  EXPECT_EQ(fs.pool().stats().gpu_pages_used, 0u);
}

TEST_F(KvfsTest, LinkNamesAnonymousFile) {
  Kvfs fs(Options());
  KvHandle h = *fs.CreateAnonymous(kAlice);
  ASSERT_TRUE(fs.Append(h, MakeRecords(3)).ok());
  ASSERT_TRUE(fs.Link(h, "/kv/promoted").ok());
  ASSERT_TRUE(fs.Close(h).ok());
  EXPECT_TRUE(fs.Exists("/kv/promoted"));
  EXPECT_EQ(fs.StatPath("/kv/promoted")->length, 3u);
}

TEST_F(KvfsTest, ForkSharesPagesAndDiverges) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/prefix", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(20)).ok());
  uint64_t pages_before = fs.pool().stats().gpu_pages_used;

  StatusOr<KvHandle> fork = fs.Fork(h, kAlice);
  ASSERT_TRUE(fork.ok());
  EXPECT_EQ(fs.pool().stats().gpu_pages_used, pages_before);
  EXPECT_EQ(*fs.Length(*fork), 20u);

  ASSERT_TRUE(fs.Append(*fork, MakeRecords(1, 999)).ok());
  EXPECT_EQ(*fs.Length(*fork), 21u);
  EXPECT_EQ(*fs.Length(h), 20u);
  EXPECT_EQ(fs.stats().forks, 1u);
}

TEST_F(KvfsTest, ExtractPicksIndices) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/ctx", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(30)).ok());
  std::vector<uint64_t> keep = {0, 5, 29};
  StatusOr<KvHandle> ex = fs.Extract(h, keep, kAlice);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(*fs.Length(*ex), 3u);
  EXPECT_EQ(fs.Read(*ex, 0)->token, 300);
  EXPECT_EQ(fs.Read(*ex, 1)->token, 305);
  EXPECT_EQ(fs.Read(*ex, 2)->token, 329);
}

TEST_F(KvfsTest, ExtractRejectsNonIncreasing) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/ctx", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(10)).ok());
  std::vector<uint64_t> bad = {3, 3};
  EXPECT_EQ(fs.Extract(h, bad, kAlice).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(KvfsTest, ExtractBeyondLengthFails) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/ctx", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(10)).ok());
  std::vector<uint64_t> bad = {50};
  EXPECT_EQ(fs.Extract(h, bad, kAlice).status().code(), StatusCode::kOutOfRange);
}

TEST_F(KvfsTest, MergeConcatenates) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/a", create);
  KvHandle b = *fs.Open("/kv/b", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(4, 300)).ok());
  ASSERT_TRUE(fs.Append(b, MakeRecords(3, 400)).ok());
  std::vector<KvHandle> srcs = {a, b};
  StatusOr<KvHandle> merged = fs.Merge(srcs, kAlice);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*fs.Length(*merged), 7u);
  EXPECT_EQ(fs.Read(*merged, 0)->token, 300);
  EXPECT_EQ(fs.Read(*merged, 4)->token, 400);
}

TEST_F(KvfsTest, LockBlocksOtherWriters) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModePublic;
  KvHandle ha = *fs.Open("/kv/doc", create);
  ASSERT_TRUE(fs.Lock(ha).ok());
  OpenOptions open_b{.requester = kBob, .write = true};
  KvHandle hb = *fs.Open("/kv/doc", open_b);
  EXPECT_EQ(fs.Append(hb, MakeRecords(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fs.Lock(hb).code(), StatusCode::kFailedPrecondition);
  // Holder can still write.
  EXPECT_TRUE(fs.Append(ha, MakeRecords(1)).ok());
  ASSERT_TRUE(fs.Unlock(ha).ok());
  EXPECT_TRUE(fs.Append(hb, MakeRecords(1)).ok());
}

TEST_F(KvfsTest, UnlockByNonHolderFails) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModePublic;
  KvHandle ha = *fs.Open("/kv/doc", create);
  ASSERT_TRUE(fs.Lock(ha).ok());
  OpenOptions open_b{.requester = kBob, .write = true};
  KvHandle hb = *fs.Open("/kv/doc", open_b);
  EXPECT_EQ(fs.Unlock(hb).code(), StatusCode::kFailedPrecondition);
}

TEST_F(KvfsTest, EvictionDropsLruFile) {
  // 4-page GPU budget, no host tier worth using: drop mode.
  Kvfs fs(Options(EvictionMode::kDropLru, /*gpu_pages=*/4, /*host_pages=*/0));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/old", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(32)).ok());  // 2 pages.
  ASSERT_TRUE(fs.Close(a).ok());                    // Eligible for eviction.
  KvHandle b = *fs.Open("/kv/new", create);
  ASSERT_TRUE(fs.Append(b, MakeRecords(48)).ok());  // Needs 3 pages -> evict.
  EXPECT_FALSE(fs.Exists("/kv/old"));
  EXPECT_EQ(*fs.Length(b), 48u);
  EXPECT_GT(fs.stats().dropped_files, 0u);
}

TEST_F(KvfsTest, EvictionOffloadsToHost) {
  Kvfs fs(Options(EvictionMode::kOffloadLru, /*gpu_pages=*/4, /*host_pages=*/8));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/old", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(32)).ok());
  ASSERT_TRUE(fs.Close(a).ok());
  KvHandle b = *fs.Open("/kv/new", create);
  ASSERT_TRUE(fs.Append(b, MakeRecords(48)).ok());
  EXPECT_TRUE(fs.Exists("/kv/old"));  // Offloaded, not dropped.
  EXPECT_EQ(fs.StatPath("/kv/old")->host_pages, 2u);
  EXPECT_GT(fs.TakePendingTransferBytes(), 0u);
}

TEST_F(KvfsTest, PinnedFilesNeverEvicted) {
  Kvfs fs(Options(EvictionMode::kDropLru, /*gpu_pages=*/4, /*host_pages=*/0));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/pinned", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(48)).ok());  // 3 pages.
  ASSERT_TRUE(fs.Pin(a).ok());
  ASSERT_TRUE(fs.Close(a).ok());
  KvHandle b = *fs.Open("/kv/new", create);
  // Needs 2 pages but only 1 free and the other file is pinned.
  Status st = fs.Append(b, MakeRecords(32));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fs.Exists("/kv/pinned"));
}

TEST_F(KvfsTest, OpenFilesNeverEvicted) {
  Kvfs fs(Options(EvictionMode::kDropLru, /*gpu_pages=*/4, /*host_pages=*/0));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/active", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(48)).ok());
  // `a` stays open.
  KvHandle b = *fs.Open("/kv/new", create);
  EXPECT_EQ(fs.Append(b, MakeRecords(32)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(fs.Exists("/kv/active"));
}

TEST_F(KvfsTest, EvictionHookOverridesChoice) {
  Kvfs fs(Options(EvictionMode::kDropLru, /*gpu_pages=*/4, /*host_pages=*/0));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle a = *fs.Open("/kv/first", create);
  ASSERT_TRUE(fs.Append(a, MakeRecords(16)).ok());
  ASSERT_TRUE(fs.Close(a).ok());
  KvHandle b = *fs.Open("/kv/second", create);
  ASSERT_TRUE(fs.Append(b, MakeRecords(16)).ok());
  ASSERT_TRUE(fs.Close(b).ok());
  // LRU would evict /kv/first; the hook picks /kv/second instead.
  fs.set_eviction_hook([](const std::vector<KvFileInfo>& candidates) {
    for (const KvFileInfo& info : candidates) {
      if (info.path == "/kv/second") {
        return std::optional<FileId>(info.id);
      }
    }
    return std::optional<FileId>();
  });
  KvHandle c = *fs.Open("/kv/third", create);
  ASSERT_TRUE(fs.Append(c, MakeRecords(48)).ok());
  EXPECT_TRUE(fs.Exists("/kv/first"));
  EXPECT_FALSE(fs.Exists("/kv/second"));
}

TEST_F(KvfsTest, OffloadAndRestoreRoundTrip) {
  Kvfs fs(Options(EvictionMode::kOffloadLru, 8, 8));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/doc", create);
  std::vector<TokenRecord> recs = MakeRecords(40);
  ASSERT_TRUE(fs.Append(h, recs).ok());
  ASSERT_TRUE(fs.OffloadToHost(h).ok());
  EXPECT_EQ(fs.Stat(h)->gpu_pages, 0u);
  EXPECT_EQ(fs.Stat(h)->host_pages, 3u);
  uint64_t offload_bytes = fs.TakePendingTransferBytes();
  EXPECT_GT(offload_bytes, 0u);

  ASSERT_TRUE(fs.RestoreToGpu(h).ok());
  EXPECT_EQ(fs.Stat(h)->gpu_pages, 3u);
  EXPECT_EQ(fs.TakePendingTransferBytes(), offload_bytes);
  // Data intact.
  EXPECT_EQ(fs.Read(h, 39)->token, recs[39].token);
}

TEST_F(KvfsTest, ListFiltersByPrefix) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  ASSERT_TRUE(fs.Open("/cache/a", create).ok());
  ASSERT_TRUE(fs.Open("/cache/b", create).ok());
  ASSERT_TRUE(fs.Open("/other/c", create).ok());
  std::vector<std::string> cached = fs.List("/cache/");
  EXPECT_EQ(cached, (std::vector<std::string>{"/cache/a", "/cache/b"}));
}

TEST_F(KvfsTest, StatReportsMetadata) {
  Kvfs fs(Options());
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  create.create_mode = kModeShared;
  KvHandle h = *fs.Open("/kv/doc", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(17)).ok());
  StatusOr<KvFileInfo> info = fs.Stat(h);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->path, "/kv/doc");
  EXPECT_EQ(info->owner, kAlice);
  EXPECT_EQ(info->mode, kModeShared);
  EXPECT_EQ(info->length, 17u);
  EXPECT_EQ(info->gpu_pages, 2u);
  EXPECT_EQ(info->open_count, 1u);
}

TEST_F(KvfsTest, OwnerPageRefsTrackLifecycle) {
  Kvfs fs(Options());
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 0u);
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/mine", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(40)).ok());  // 3 pages.
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 3u);

  // Fork doubles the refs (same owner).
  KvHandle fork = *fs.Fork(h, kAlice);
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 6u);

  // Truncate sheds pages.
  ASSERT_TRUE(fs.Truncate(fork, 5).ok());
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 4u);

  // Closing the anonymous fork releases its refs.
  ASSERT_TRUE(fs.Close(fork).ok());
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 3u);

  // A different owner forking attributes to THEM, not Alice.
  fs.SetMode(h, kModeShared).ok() ? void() : void();
  OpenOptions read{.requester = kBob};
  KvHandle hb = *fs.Open("/kv/mine", read);
  KvHandle bob_fork = *fs.Fork(hb, kBob);
  EXPECT_EQ(fs.OwnerPageRefs(kAlice), 3u);
  EXPECT_EQ(fs.OwnerPageRefs(kBob), 3u);
  (void)bob_fork;
}

TEST_F(KvfsTest, PageQuotaHookEnforced) {
  Kvfs fs(Options());
  fs.set_page_quota_hook([](LipId owner) -> uint64_t {
    return owner == kAlice ? 2 : UINT64_MAX;
  });
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/capped", create);
  // Two pages fit.
  ASSERT_TRUE(fs.Append(h, MakeRecords(32)).ok());
  // The third page trips the quota; the append is rolled back atomically.
  Status st = fs.Append(h, MakeRecords(1, 500));
  EXPECT_EQ(st.code(), StatusCode::kQuotaExceeded);
  EXPECT_EQ(*fs.Length(h), 32u);
  // Bob is unaffected.
  OpenOptions bob_create{.requester = kBob, .write = true, .create = true};
  KvHandle hb = *fs.Open("/kv/bobs", bob_create);
  EXPECT_TRUE(fs.Append(hb, MakeRecords(48)).ok());
}

TEST_F(KvfsTest, AppendIsAtomicOnMidSpanFailure) {
  // 3-page budget; a 4-page span must fail and leave the file unchanged.
  Kvfs fs(Options(EvictionMode::kNone, /*gpu_pages=*/3, /*host_pages=*/0));
  OpenOptions create{.requester = kAlice, .write = true, .create = true};
  KvHandle h = *fs.Open("/kv/a", create);
  ASSERT_TRUE(fs.Append(h, MakeRecords(16)).ok());  // 1 page used.
  Status st = fs.Append(h, MakeRecords(48, 700));   // Needs 3 more; only 2 free.
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(*fs.Length(h), 16u);
  EXPECT_EQ(fs.pool().stats().gpu_pages_used, 1u);
}

}  // namespace
}  // namespace symphony
