// Tests for per-LIP resource accounting and quotas (paper §6).
#include <gtest/gtest.h>

#include <vector>

#include "src/serve/server.h"

namespace symphony {
namespace {

ServerOptions TinyOptions() {
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  return options;
}

TEST(QuotaTest, PredTokenBudgetEnforced) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_pred_tokens = 10;
  int ok_preds = 0;
  Status blocked;
  server.LaunchWithQuota("budgeted", quota, [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    for (int i = 0; i < 20; ++i) {
      StatusOr<std::vector<Distribution>> d =
          co_await ctx.pred1(kv, static_cast<TokenId>(260 + i));
      if (d.ok()) {
        ++ok_preds;
      } else {
        blocked = d.status();
        break;
      }
    }
    co_return;
  });
  sim.Run();
  EXPECT_EQ(ok_preds, 10);
  EXPECT_EQ(blocked.code(), StatusCode::kQuotaExceeded);
}

TEST(QuotaTest, MultiTokenPredCountsAllTokens) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_pred_tokens = 5;
  Status first;
  Status second;
  server.LaunchWithQuota("multi", quota, [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> a =
        co_await ctx.pred_tokens(kv, 260, 261, 262);
    first = a.status();
    // 3 used; a 3-token pred exceeds the remaining 2.
    StatusOr<std::vector<Distribution>> b =
        co_await ctx.pred_tokens(kv, 263, 264, 265);
    second = b.status();
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(second.code(), StatusCode::kQuotaExceeded);
}

TEST(QuotaTest, ToolCallBudgetEnforced) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("t", Millis(1))).ok());
  LipQuota quota;
  quota.max_tool_calls = 2;
  int ok_calls = 0;
  Status blocked;
  server.LaunchWithQuota("tooler", quota, [&](LipContext& ctx) -> Task {
    for (int i = 0; i < 5; ++i) {
      StatusOr<std::string> r = co_await ctx.call_tool("t", "x");
      if (r.ok()) {
        ++ok_calls;
      } else {
        blocked = r.status();
        break;
      }
    }
    co_return;
  });
  sim.Run();
  EXPECT_EQ(ok_calls, 2);
  EXPECT_EQ(blocked.code(), StatusCode::kQuotaExceeded);
}

TEST(QuotaTest, ThreadQuotaEnforced) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_threads = 3;  // Main thread + 2 spawns.
  std::vector<ThreadId> spawned;
  server.LaunchWithQuota("spawner", quota, [&](LipContext& ctx) -> Task {
    for (int i = 0; i < 5; ++i) {
      spawned.push_back(ctx.spawn([](LipContext&) -> Task { co_return; }));
    }
    co_await ctx.join_all();
    co_return;
  });
  sim.Run();
  ASSERT_EQ(spawned.size(), 5u);
  EXPECT_NE(spawned[0], 0u);
  EXPECT_NE(spawned[1], 0u);
  EXPECT_EQ(spawned[2], 0u);  // Third spawn (4th thread) denied.
  EXPECT_EQ(spawned[3], 0u);
  EXPECT_EQ(spawned[4], 0u);
}

TEST(QuotaTest, KvPageQuotaEnforcedOnPred) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_kv_pages = 2;  // 32 tokens at 16 tokens/page.
  Status blocked;
  uint64_t reached = 0;
  server.LaunchWithQuota("pager", quota, [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt(48, 260);  // Needs 3 pages.
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
    blocked = d.status();
    reached = *ctx.kv_len(kv);
    co_return;
  });
  sim.Run();
  EXPECT_EQ(blocked.code(), StatusCode::kQuotaExceeded);
  // The scheduler retried until the budget ran out; the file never grew past
  // the quota.
  EXPECT_LE(reached, 32u);
}

TEST(QuotaTest, KvPageQuotaCountsForks) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_kv_pages = 3;
  Status fork_status;
  server.LaunchWithQuota("forker", quota, [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt(32, 260);  // 2 pages.
    (void)co_await ctx.pred(kv, prompt);
    // A fork duplicates 2 page references -> 4 > 3.
    fork_status = ctx.kv_fork(kv).status();
    co_return;
  });
  sim.Run();
  EXPECT_EQ(fork_status.code(), StatusCode::kQuotaExceeded);
}

TEST(QuotaTest, UsageIsQueryable) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("t", Millis(1))).ok());
  LipUsage snapshot;
  server.Launch("observer", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261, 262);
    (void)co_await ctx.call_tool("t", "x");
    ctx.spawn([](LipContext&) -> Task { co_return; });
    co_await ctx.join_all();
    snapshot = ctx.usage();
    co_return;
  });
  sim.Run();
  EXPECT_EQ(snapshot.pred_tokens, 3u);
  EXPECT_EQ(snapshot.tool_calls, 1u);
  EXPECT_EQ(snapshot.threads_spawned, 2u);  // Main + child.
  EXPECT_EQ(snapshot.kv_pages, 1u);         // 3 tokens = 1 page.
}

TEST(QuotaTest, QuotaIsPerLipNotGlobal) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota tight;
  tight.max_pred_tokens = 2;
  Status limited;
  Status unlimited;
  server.LaunchWithQuota("tight", tight, [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred_tokens(kv, 260, 261, 262);
    limited = d.status();
    co_return;
  });
  server.Launch("free", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred_tokens(kv, 260, 261, 262);
    unlimited = d.status();
    co_return;
  });
  sim.Run();
  EXPECT_EQ(limited.code(), StatusCode::kQuotaExceeded);
  EXPECT_TRUE(unlimited.ok());
}

TEST(QuotaTest, PagesReleasedOnCloseReturnToBudget) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  LipQuota quota;
  quota.max_kv_pages = 2;
  Status second_round;
  server.LaunchWithQuota("recycler", quota, [&](LipContext& ctx) -> Task {
    {
      KvHandle kv = *ctx.kv_tmp();
      std::vector<TokenId> prompt(32, 260);  // Exactly 2 pages: fits.
      (void)co_await ctx.pred(kv, prompt);
      (void)ctx.kv_close(kv);  // Releases both pages.
    }
    KvHandle kv2 = *ctx.kv_tmp();
    std::vector<TokenId> prompt(32, 261);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv2, prompt);
    second_round = d.status();
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(second_round.ok()) << second_round;
}

}  // namespace
}  // namespace symphony
