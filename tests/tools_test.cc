// Tests for the server-side tool registry.
#include <gtest/gtest.h>

#include "src/tools/tool_registry.h"

namespace symphony {
namespace {

TEST(ToolRegistryTest, RegisterAndRun) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.Register(ToolRegistry::Echo("echo", Millis(3))).ok());
  EXPECT_TRUE(registry.Has("echo"));
  StatusOr<ToolInvocation> run = registry.Run("echo", "hello");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->output, "echo:hello");
  EXPECT_EQ(run->latency, Millis(3));
  EXPECT_TRUE(run->status.ok());
}

TEST(ToolRegistryTest, UnknownToolNotFound) {
  ToolRegistry registry;
  EXPECT_EQ(registry.Run("nope", "").status().code(), StatusCode::kNotFound);
}

TEST(ToolRegistryTest, DuplicateRejected) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.Register(ToolRegistry::Echo("t", Millis(1))).ok());
  EXPECT_EQ(registry.Register(ToolRegistry::Echo("t", Millis(2))).code(),
            StatusCode::kAlreadyExists);
}

TEST(ToolRegistryTest, InvalidSpecRejected) {
  ToolRegistry registry;
  ToolSpec empty;
  EXPECT_EQ(registry.Register(empty).code(), StatusCode::kInvalidArgument);
}

TEST(ToolRegistryTest, NamesSorted) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.Register(ToolRegistry::Echo("zeta", Millis(1))).ok());
  ASSERT_TRUE(registry.Register(ToolRegistry::Echo("alpha", Millis(1))).ok());
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(ToolRegistryTest, LookupDeterministicPerArgs) {
  ToolRegistry a(77);
  ToolRegistry b(77);
  ASSERT_TRUE(a.Register(ToolRegistry::Lookup("fetch", Millis(50))).ok());
  ASSERT_TRUE(b.Register(ToolRegistry::Lookup("fetch", Millis(50))).ok());
  StatusOr<ToolInvocation> ra = a.Run("fetch", "topic-1");
  StatusOr<ToolInvocation> rb = b.Run("fetch", "topic-1");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->output, rb->output);
  EXPECT_EQ(ra->latency, rb->latency);
  EXPECT_GT(ra->latency, 0);
}

TEST(ToolRegistryTest, LookupLatencyVaries) {
  ToolRegistry registry(5);
  ASSERT_TRUE(registry.Register(ToolRegistry::Lookup("fetch", Millis(50), 1.0)).ok());
  SimDuration first = registry.Run("fetch", "a")->latency;
  SimDuration second = registry.Run("fetch", "b")->latency;
  EXPECT_NE(first, second);
}

TEST(ToolRegistryTest, CalculatorBasics) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.Register(ToolRegistry::Calculator("calc", Millis(1))).ok());
  EXPECT_EQ(registry.Run("calc", "2 + 3")->output, "5");
  EXPECT_EQ(registry.Run("calc", "10 * 7")->output, "70");
  EXPECT_EQ(registry.Run("calc", "9 - 12")->output, "-3");
  EXPECT_EQ(registry.Run("calc", "20 / 4")->output, "5");
}

TEST(ToolRegistryTest, CalculatorErrors) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.Register(ToolRegistry::Calculator("calc", Millis(1))).ok());
  EXPECT_EQ(registry.Run("calc", "1 / 0")->status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Run("calc", "1 % 2")->status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Run("calc", "")->status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace symphony
