// Tests for src/store: content addressing, chunk dedup, reference counting,
// local-vs-remote fetch accounting, corruption detection, the journal codec,
// and checkpoint fold / rehydrate round trips.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/model/cost_model.h"
#include "src/model/model_config.h"
#include "src/net/topology.h"
#include "src/recovery/journal.h"
#include "src/sim/event_queue.h"
#include "src/store/journal_checkpoint.h"
#include "src/store/snapshot_store.h"

namespace symphony {
namespace {

std::string Bytes(size_t n, char fill) { return std::string(n, fill); }

// Distinct bytes per position (seeded) so fixed-size chunks don't all
// collapse into one content address.
std::string VariedBytes(size_t n, uint64_t seed) {
  std::string out(n, '\0');
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    out[i] = static_cast<char>(x >> 56);
  }
  return out;
}

SnapshotPayload Payload(const std::string& label, uint64_t fingerprint,
                        uint64_t tokens, std::string stream) {
  SnapshotPayload payload;
  payload.label = label;
  payload.model_fingerprint = fingerprint;
  payload.tokens = tokens;
  payload.streams.emplace_back("records", std::move(stream));
  return payload;
}

// ---- Content addressing -------------------------------------------------

TEST(SnapshotStoreTest, IdenticalPayloadsCollideIntoOneSnapshot) {
  SnapshotStore store;
  PublishResult a = store.Publish(0, Payload("a", 7, 100, Bytes(10000, 'x')));
  PublishResult b = store.Publish(1, Payload("b", 7, 100, Bytes(10000, 'x')));
  EXPECT_EQ(a.key, b.key);
  EXPECT_FALSE(a.deduped);
  EXPECT_TRUE(b.deduped);
  EXPECT_EQ(store.snapshot_count(), 1u);
  EXPECT_EQ(b.new_bytes, 0u);
  EXPECT_EQ(store.stats().publish_dedup_hits, 1u);
  // The label is metadata, not identity — but the model fingerprint is: the
  // same bytes under a different model must NOT collide.
  PublishResult c = store.Publish(0, Payload("a", 8, 100, Bytes(10000, 'x')));
  EXPECT_NE(c.key, a.key);
  EXPECT_EQ(store.snapshot_count(), 2u);
}

TEST(SnapshotStoreTest, ChunkKeyChangesWhenAnyByteChanges) {
  std::string bytes = Bytes(4096, 'q');
  uint64_t key = SnapshotChunkKey(bytes);
  for (size_t i : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_NE(SnapshotChunkKey(corrupt), key) << "flipped byte " << i;
  }
  // Length is part of the address: a truncated chunk can't keep it either.
  EXPECT_NE(SnapshotChunkKey(std::string(bytes, 0, 4095)), key);
}

// ---- Structural dedup across growing streams ----------------------------

TEST(SnapshotStoreTest, GrowingStreamRepublishesOnlyTailChunks) {
  SnapshotStoreOptions options;
  options.chunk_bytes = 1024;
  SnapshotStore store(options);
  std::string generation1 = VariedBytes(8 * 1024, 7);
  PublishResult first = store.Publish(0, Payload("ckpt", 1, 64, generation1));
  EXPECT_EQ(first.new_bytes, generation1.size());
  // Generation 2 extends generation 1 by two chunks.
  std::string generation2 = generation1 + VariedBytes(2 * 1024, 8);
  PublishResult second = store.Publish(0, Payload("ckpt", 1, 80, generation2));
  EXPECT_NE(second.key, first.key);
  EXPECT_EQ(second.new_bytes, 2 * 1024u);
  EXPECT_EQ(second.deduped_bytes, generation1.size());
  // Dropping the first generation must not strand the shared prefix chunks.
  ASSERT_TRUE(store.Release(first.key).ok());
  StatusOr<FetchResult> fetch = store.Fetch(0, second.key);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->streams[0].second, generation2);
}

// ---- Reference counting -------------------------------------------------

TEST(SnapshotStoreTest, RefcountDropsSnapshotAndUnsharedChunksAtZero) {
  SnapshotStoreOptions options;
  options.chunk_bytes = 1024;
  SnapshotStore store(options);
  PublishResult a = store.Publish(0, Payload("a", 1, 10, Bytes(4096, 'a')));
  PublishResult b =
      store.Publish(0, Payload("b", 1, 20, Bytes(4096, 'a') + Bytes(1024, 'b')));
  ASSERT_TRUE(store.Acquire(a.key).ok());  // a: 2 refs.
  ASSERT_TRUE(store.Release(a.key).ok());
  EXPECT_TRUE(store.Contains(a.key));      // 1 ref left.
  ASSERT_TRUE(store.Release(a.key).ok());
  EXPECT_FALSE(store.Contains(a.key));
  // b still resolves: the chunks it shared with a survived a's drop.
  StatusOr<FetchResult> fetch = store.Fetch(0, b.key);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->streams[0].second, Bytes(4096, 'a') + Bytes(1024, 'b'));
  ASSERT_TRUE(store.Release(b.key).ok());
  EXPECT_EQ(store.snapshot_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_FALSE(store.Release(b.key).ok());  // Double release is an error.
}

// ---- Local vs. remote fetch accounting ----------------------------------

TEST(SnapshotStoreTest, FetchMovesBytesOnlyForChunksTheReplicaLacks) {
  CostModel cost(ModelConfig::Tiny());
  SnapshotStoreOptions options;
  options.chunk_bytes = 1024;
  options.cost = &cost;
  SnapshotStore store(options);
  std::string data = VariedBytes(5 * 1024, 13);
  PublishResult pub = store.Publish(0, Payload("p", 1, 40, data));
  // The publisher holds every chunk: a local fetch moves nothing.
  StatusOr<FetchResult> local = store.Fetch(0, pub.key);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->bytes_fetched, 0u);
  EXPECT_EQ(local->transfer_time, 0);
  EXPECT_EQ(local->chunk_hits, 5u);
  // Replica 1 has nothing cached: everything moves, and interconnect time is
  // charged for exactly those bytes.
  StatusOr<FetchResult> remote = store.Fetch(1, pub.key);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->bytes_fetched, data.size());
  EXPECT_EQ(remote->transfer_time, cost.NetworkTime(data.size()));
  EXPECT_EQ(remote->streams[0].second, data);
  // The fetch warmed replica 1's cache: a second fetch is free.
  StatusOr<FetchResult> again = store.Fetch(1, pub.key);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bytes_fetched, 0u);
  EXPECT_EQ(store.stats().fetched_bytes, data.size());
  EXPECT_GT(store.stats().local_hit_bytes, 0u);
}

// With a topology wired in, fetches route moved chunks from the nearest
// caching replica over physical links instead of the flat cost-model charge.
// On the idle single-switch mesh both agree exactly; local and repeat
// fetches still move nothing and take no time.
TEST(SnapshotStoreTest, FetchRoutesMovedChunksThroughTheTopology) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  NetworkTopology topo(&sim, &cost, nullptr, nullptr);
  SnapshotStoreOptions options;
  options.chunk_bytes = 1024;
  options.sim = &sim;
  options.cost = &cost;
  options.topology = &topo;
  SnapshotStore store(options);
  std::string data = VariedBytes(5 * 1024, 29);
  PublishResult pub = store.Publish(0, Payload("p", 1, 40, data));
  StatusOr<FetchResult> local = store.Fetch(0, pub.key);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->transfer_time, 0);
  EXPECT_EQ(topo.stats().transfers, 0u);  // Nothing moved, nothing routed.
  StatusOr<FetchResult> remote = store.Fetch(1, pub.key);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->bytes_fetched, data.size());
  // Idle single-source transfer == the legacy flat charge, and the bytes are
  // now visible on the publisher->fetcher link.
  EXPECT_EQ(remote->transfer_time, cost.NetworkTime(data.size()));
  EXPECT_EQ(topo.stats().transfers, 1u);
  EXPECT_EQ(topo.stats().payload_bytes, data.size());
  std::vector<TopoLinkReport> links = topo.LinkReport();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].name, "link:replica0->replica1");
  EXPECT_EQ(links[0].stats.bytes, data.size());
  // The fetch warmed replica 1's cache: repeating it routes nothing.
  StatusOr<FetchResult> again = store.Fetch(1, pub.key);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bytes_fetched, 0u);
  EXPECT_EQ(again->transfer_time, 0);
  EXPECT_EQ(topo.stats().transfers, 1u);
}

// ---- Corruption detection -----------------------------------------------

TEST(SnapshotStoreTest, CorruptedTransfersAreDetectedNeverServed) {
  Simulator sim;
  FaultPlan plan(99);
  plan.AddKvCorruption(/*at=*/0, /*duration=*/Millis(100), /*prob=*/1.0);
  SnapshotStoreOptions options;
  options.chunk_bytes = 1024;
  options.sim = &sim;
  options.fault_plan = &plan;
  SnapshotStore store(options);
  std::string data = Bytes(4 * 1024, 'c');
  PublishResult pub = store.Publish(0, Payload("c", 1, 30, data));
  // Local fetch never transfers, so the window can't touch it.
  ASSERT_TRUE(store.Fetch(0, pub.key).ok());
  // Remote fetch inside the window: every transfer (and every retry)
  // corrupts, so the fetch must FAIL — corrupt bytes must never come back.
  StatusOr<FetchResult> remote = store.Fetch(1, pub.key);
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(remote.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(store.stats().corrupt_chunks_detected, 0u);
  EXPECT_EQ(store.stats().corrupt_fetch_failures, 1u);
  EXPECT_GT(plan.stats().kv_corruptions, 0u);
  // Past the window the same fetch succeeds byte-identically.
  sim.ScheduleAt(Millis(200), [&] {
    StatusOr<FetchResult> after = store.Fetch(1, pub.key);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->streams[0].second, data);
  });
  sim.Run();
}

// ---- Journal codec ------------------------------------------------------

std::vector<JournalEntry> SampleEntries() {
  std::vector<JournalEntry> entries;
  JournalEntry pred;
  pred.kind = JournalEntry::Kind::kPred;
  pred.tokens = {3, 7, 11};
  pred.positions = {0, 1, 2};
  pred.states = {0xAAULL, 0xBBULL, 0xCCULL};
  entries.push_back(pred);
  JournalEntry tool;
  tool.kind = JournalEntry::Kind::kTool;
  tool.status = UnavailableError("tool down");
  tool.payload = "partial-output";
  entries.push_back(tool);
  JournalEntry sleep;
  sleep.kind = JournalEntry::Kind::kSleep;
  sleep.duration = Millis(7);
  entries.push_back(sleep);
  JournalEntry recv;
  recv.kind = JournalEntry::Kind::kRecv;
  recv.payload = std::string("msg\0with-nul", 12);
  entries.push_back(recv);
  return entries;
}

void ExpectEntriesEqual(const std::vector<JournalEntry>& got,
                        const std::vector<JournalEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].status.code(), want[i].status.code()) << i;
    EXPECT_EQ(got[i].status.message(), want[i].status.message()) << i;
    EXPECT_EQ(got[i].tokens, want[i].tokens) << i;
    EXPECT_EQ(got[i].positions, want[i].positions) << i;
    EXPECT_EQ(got[i].states, want[i].states) << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << i;
    EXPECT_EQ(got[i].duration, want[i].duration) << i;
  }
}

TEST(JournalCodecTest, EntriesRoundTrip) {
  std::vector<JournalEntry> entries = SampleEntries();
  std::string bytes = SerializeJournalEntries(entries);
  StatusOr<std::vector<JournalEntry>> parsed = ParseJournalEntries(bytes);
  ASSERT_TRUE(parsed.ok());
  ExpectEntriesEqual(*parsed, entries);
  // Truncated input must fail cleanly, not misparse.
  EXPECT_FALSE(ParseJournalEntries(bytes.substr(0, bytes.size() - 3)).ok());
}

TEST(JournalCodecTest, SerializationIsPrefixStable) {
  // The dedup contract: serializing [0, n) then [0, m), m > n, yields
  // byte-identical prefixes, so checkpoint generations share chunks.
  std::vector<JournalEntry> entries = SampleEntries();
  std::vector<JournalEntry> shorter(entries.begin(), entries.end() - 1);
  std::string full = SerializeJournalEntries(entries);
  std::string prefix = SerializeJournalEntries(shorter);
  ASSERT_LT(prefix.size(), full.size());
  EXPECT_EQ(full.substr(0, prefix.size()), prefix);
}

TEST(JournalCodecTest, TokenRecordsRoundTrip) {
  std::vector<TokenRecord> records;
  for (uint32_t i = 0; i < 33; ++i) {
    records.push_back(TokenRecord{static_cast<TokenId>(i * 3),
                                  static_cast<int32_t>(i), 0x1000ULL + i});
  }
  std::string bytes = SerializeTokenRecords(records);
  StatusOr<std::vector<TokenRecord>> parsed = ParseTokenRecords(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*parsed)[i].token, records[i].token);
    EXPECT_EQ((*parsed)[i].position, records[i].position);
    EXPECT_EQ((*parsed)[i].state, records[i].state);
  }
  EXPECT_FALSE(ParseTokenRecords(bytes.substr(0, bytes.size() - 1)).ok());
}

// ---- Checkpoint fold / rehydrate ----------------------------------------

JournalEntry PredEntry(uint32_t n) {
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kPred;
  entry.tokens = {static_cast<TokenId>(n)};
  entry.positions = {static_cast<int32_t>(n)};
  entry.states = {0x5000ULL + n};
  return entry;
}

TEST(JournalCheckpointTest, FoldThenRehydrateRestoresTheFullLog) {
  SnapshotStoreOptions options;
  options.chunk_bytes = 256;
  SnapshotStore store(options);
  SyscallJournal journal;
  journal.name = "agent";
  for (uint32_t i = 0; i < 20; ++i) {
    journal.Append(i % 2 == 0 ? "0" : "0.1", PredEntry(i));
  }
  std::string before = SerializeJournalEntries(
      [&] {
        std::vector<JournalEntry> all;
        for (uint32_t i = 0; i < 20; ++i) {
          all.push_back(*journal.At(i % 2 == 0 ? "0" : "0.1", i / 2));
        }
        return all;
      }());

  StatusOr<CheckpointOutcome> fold = CheckpointJournal(store, 0, 42, journal);
  ASSERT_TRUE(fold.ok());
  EXPECT_EQ(fold->folded_entries, 20u);
  EXPECT_EQ(journal.live_entries(), 0u);
  EXPECT_EQ(journal.folded_entries(), 20u);
  EXPECT_EQ(journal.checkpoint_key(), fold->key);
  EXPECT_TRUE(store.Contains(fold->key));
  // Logical indexing survives truncation.
  EXPECT_EQ(journal.total_entries(), 20u);
  EXPECT_EQ(journal.EntryCount("0"), 10u);
  EXPECT_EQ(journal.At("0", 3), nullptr);
  EXPECT_TRUE(journal.FoldedAt("0", 3));
  EXPECT_FALSE(journal.FoldedAt("0", 10));

  // Entries appended after the fold live alongside the truncated prefix.
  journal.Append("0", PredEntry(100));
  EXPECT_EQ(journal.live_entries(), 1u);

  // Rehydrate at another replica: the prefix comes back and indices resolve.
  StatusOr<RehydrateOutcome> wet = RehydrateJournal(store, 1, journal);
  ASSERT_TRUE(wet.ok());
  EXPECT_EQ(wet->entries_restored, 20u);
  EXPECT_GT(wet->bytes_fetched, 0u);
  EXPECT_EQ(journal.folded_entries(), 0u);
  EXPECT_EQ(journal.live_entries(), 21u);
  for (uint32_t i = 0; i < 20; ++i) {
    const JournalEntry* entry = journal.At(i % 2 == 0 ? "0" : "0.1", i / 2);
    ASSERT_NE(entry, nullptr) << i;
    EXPECT_EQ(entry->tokens[0], static_cast<TokenId>(i)) << i;
  }
  EXPECT_EQ(journal.At("0", 10)->tokens[0], 100);
  // The checkpoint reference is kept for dedup on the next fold.
  EXPECT_EQ(journal.checkpoint_key(), fold->key);

  // Next fold supersedes: the old checkpoint's ref moves to the new key, and
  // prefix-stable serialization makes the second generation mostly dedup.
  StatusOr<CheckpointOutcome> fold2 = CheckpointJournal(store, 0, 42, journal);
  ASSERT_TRUE(fold2.ok());
  EXPECT_NE(fold2->key, fold->key);
  EXPECT_FALSE(store.Contains(fold->key));
  EXPECT_LT(fold2->new_bytes, before.size());
  EXPECT_EQ(journal.checkpoint_key(), fold2->key);
}

TEST(JournalCheckpointTest, FoldFailureLeavesTheJournalUntouched) {
  Simulator sim;
  FaultPlan plan(5);
  SnapshotStoreOptions options;
  options.chunk_bytes = 128;
  options.sim = &sim;
  options.fault_plan = &plan;
  SnapshotStore store(options);
  SyscallJournal journal;
  for (uint32_t i = 0; i < 8; ++i) {
    journal.Append("0", PredEntry(i));
  }
  ASSERT_TRUE(CheckpointJournal(store, 0, 1, journal).ok());
  for (uint32_t i = 8; i < 12; ++i) {
    journal.Append("0", PredEntry(i));
  }
  // A permanent corruption window: the second fold must re-read the first
  // checkpoint at replica 1 (no local chunks), which fails — and the journal
  // must be exactly as fat as before the attempt.
  plan.AddKvCorruption(0, Millis(1000), 1.0);
  uint64_t live_before = journal.live_entries();
  uint64_t key_before = journal.checkpoint_key();
  StatusOr<CheckpointOutcome> fold = CheckpointJournal(store, 1, 1, journal);
  EXPECT_FALSE(fold.ok());
  EXPECT_EQ(journal.live_entries(), live_before);
  EXPECT_EQ(journal.folded_entries(), 8u);
  EXPECT_EQ(journal.checkpoint_key(), key_before);
}

TEST(JournalCheckpointTest, FoldHookTriggersAtIntervalAndBoundsLiveEntries) {
  SnapshotStore store;
  SyscallJournal journal;
  uint64_t folds = 0;
  journal.set_fold_hook(
      [&store, &folds](SyscallJournal& j) {
        ASSERT_TRUE(CheckpointJournal(store, 0, 9, j).ok());
        ++folds;
      },
      /*interval=*/4);
  for (uint32_t i = 0; i < 23; ++i) {
    journal.Append("0", PredEntry(i));
    EXPECT_LE(journal.live_entries(), 4u);
  }
  EXPECT_EQ(folds, 5u);
  EXPECT_EQ(journal.total_entries(), 23u);
  EXPECT_EQ(journal.live_entries(), 3u);
}

}  // namespace
}  // namespace symphony
