// Tests for the RAG workload: corpus determinism and end-to-end driver runs
// on all three systems, including the headline comparison shape on a scaled
// down configuration (the full Figure 3 sweep lives in bench/).
#include <gtest/gtest.h>

#include "src/workload/rag.h"

namespace symphony {
namespace {

RagConfig SmallConfig() {
  RagConfig config;
  config.num_docs = 10;
  config.doc_tokens = 300;
  config.query_tokens = 8;
  config.answer_tokens = 16;
  config.num_requests = 30;
  config.request_rate = 5.0;
  config.cache_top_k = 3;
  config.pareto_index = 0.7;
  return config;
}

TEST(RagCorpusTest, Deterministic) {
  RagConfig config = SmallConfig();
  RagCorpus a(config, 32000);
  RagCorpus b(config, 32000);
  EXPECT_EQ(a.doc(3), b.doc(3));
  EXPECT_EQ(a.MakeQuery(3, 17), b.MakeQuery(3, 17));
}

TEST(RagCorpusTest, DocsDifferAcrossTopics) {
  RagCorpus corpus(SmallConfig(), 32000);
  EXPECT_NE(corpus.doc(0), corpus.doc(1));
}

TEST(RagCorpusTest, QueriesShareTopicMarker) {
  RagCorpus corpus(SmallConfig(), 32000);
  EXPECT_EQ(corpus.MakeQuery(2, 5)[0], corpus.MakeQuery(2, 99)[0]);
  EXPECT_NE(corpus.MakeQuery(2, 5)[0], corpus.MakeQuery(3, 5)[0]);
}

TEST(RagCorpusTest, DocFirstPromptIsDocPlusQuery) {
  RagConfig config = SmallConfig();
  RagCorpus corpus(config, 32000);
  std::vector<TokenId> prompt = corpus.MakePrompt(1, 7, PromptLayout::kDocFirst);
  EXPECT_EQ(prompt.size(), config.doc_tokens + config.query_tokens);
  EXPECT_EQ(prompt[0], corpus.doc(1)[0]);
  EXPECT_EQ(prompt[config.doc_tokens], corpus.MakeQuery(1, 7)[0]);
}

TEST(RagCorpusTest, QueryFirstPromptStartsWithSharedInstruction) {
  RagConfig config = SmallConfig();
  RagCorpus corpus(config, 32000);
  std::vector<TokenId> a = corpus.MakePrompt(1, 7, PromptLayout::kQueryFirst);
  std::vector<TokenId> b = corpus.MakePrompt(2, 8, PromptLayout::kQueryFirst);
  EXPECT_EQ(a.size(), config.instruction_tokens + config.query_tokens +
                          config.doc_tokens);
  // Shared instruction prefix, divergent afterwards.
  for (uint32_t i = 0; i < config.instruction_tokens; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_NE(std::vector<TokenId>(a.begin() + config.instruction_tokens, a.end()),
            std::vector<TokenId>(b.begin() + config.instruction_tokens, b.end()));
}

class RagDriverTest : public ::testing::Test {
 protected:
  static BaselineOptions TinyBaseline(bool cache) {
    BaselineOptions o = cache ? PromptServer::VllmLike() : PromptServer::TgiLike();
    o.model = ModelConfig::Tiny();
    return o;
  }
  static ServerOptions TinySymphony() {
    ServerOptions o;
    o.model = ModelConfig::Tiny();
    return o;
  }
};

TEST_F(RagDriverTest, BaselineCompletesAllRequests) {
  RagConfig config = SmallConfig();
  RagRunResult result = RunRagOnBaseline(config, TinyBaseline(true));
  EXPECT_EQ(result.completed, config.num_requests);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_tok_s, 0.0);
  EXPECT_GT(result.mean_latency_per_token_ms, 0.0);
  EXPECT_EQ(result.system, "vllm-like");
}

TEST_F(RagDriverTest, SymphonyCompletesAllRequests) {
  RagConfig config = SmallConfig();
  RagRunResult result = RunRagOnSymphony(config, TinySymphony());
  EXPECT_EQ(result.completed, config.num_requests);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_tok_s, 0.0);
  EXPECT_EQ(result.system, "symphony");
}

TEST_F(RagDriverTest, SymphonyGetsCacheHitsOnPopularTopics) {
  RagConfig config = SmallConfig();
  config.pareto_index = 0.4;  // Strong skew: most requests hit the top-3.
  RagRunResult result = RunRagOnSymphony(config, TinySymphony());
  EXPECT_GT(result.cache_hits, config.num_requests / 3);
}

TEST_F(RagDriverTest, RunsAreReproducible) {
  RagConfig config = SmallConfig();
  RagRunResult a = RunRagOnSymphony(config, TinySymphony());
  RagRunResult b = RunRagOnSymphony(config, TinySymphony());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_DOUBLE_EQ(a.mean_latency_per_token_ms, b.mean_latency_per_token_ms);
  EXPECT_DOUBLE_EQ(a.throughput_tok_s, b.throughput_tok_s);
}

TEST_F(RagDriverTest, SkewedPopularityFavorsSymphonyOverTgi) {
  // Scaled-down Figure 3 sanity check with the full-size model: under strong
  // skew, Symphony's app-managed cache must beat the cacheless baseline on
  // latency per token.
  RagConfig config;
  config.num_docs = 20;
  config.doc_tokens = 800;
  config.query_tokens = 12;
  config.answer_tokens = 24;
  config.num_requests = 40;
  config.request_rate = 1.5;
  config.cache_top_k = 5;
  config.pareto_index = 0.4;

  RagRunResult symphony = RunRagOnSymphony(config, ServerOptions{});
  RagRunResult tgi = RunRagOnBaseline(config, PromptServer::TgiLike());

  EXPECT_EQ(symphony.failed, 0u);
  EXPECT_EQ(tgi.failed, 0u);
  EXPECT_LT(symphony.mean_latency_per_token_ms, tgi.mean_latency_per_token_ms);
}

}  // namespace
}  // namespace symphony
