// Tests for the LIP runtime: launch/exit lifecycle, threads (spawn, join,
// join_all, yield), sleep, IPC channels, kv syscalls through LipContext, and
// process-exit resource cleanup.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kvfs/kvfs.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/runtime.h"
#include "src/sim/event_queue.h"

namespace symphony {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : kvfs_(MakeKvfsOptions()), runtime_(&sim_, &kvfs_) {}

  static KvfsOptions MakeKvfsOptions() {
    KvfsOptions o;
    o.gpu_page_budget = 64;
    o.host_page_budget = 64;
    return o;
  }

  Simulator sim_;
  Kvfs kvfs_;
  LipRuntime runtime_;
};

TEST_F(RuntimeTest, LaunchRunsToCompletion) {
  LipId lip = runtime_.Launch("hello", [](LipContext& ctx) -> Task {
    ctx.emit("hello world");
    co_return;
  });
  EXPECT_FALSE(runtime_.LipDone(lip));
  sim_.Run();
  EXPECT_TRUE(runtime_.LipDone(lip));
  EXPECT_EQ(runtime_.Output(lip), "hello world");
  EXPECT_EQ(runtime_.live_lips(), 0u);
  EXPECT_EQ(runtime_.stats().lips_completed, 1u);
}

TEST_F(RuntimeTest, OnExitCallbackFires) {
  bool exited = false;
  LipId expected = runtime_.Launch(
      "cb", [](LipContext&) -> Task { co_return; },
      [&](LipId lip_arg) {
        exited = true;
        EXPECT_EQ(lip_arg, 2u);  // First lip id after kAdminLip.
        (void)lip_arg;
      });
  (void)expected;
  sim_.Run();
  EXPECT_TRUE(exited);
}

TEST_F(RuntimeTest, SleepAdvancesVirtualTime) {
  SimTime woke_at = -1;
  LipId lip = runtime_.Launch("sleeper", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(250));
    woke_at = ctx.now();
    co_return;
  });
  (void)lip;
  sim_.Run();
  EXPECT_GE(woke_at, Millis(250));
  EXPECT_LT(woke_at, Millis(251));
}

TEST_F(RuntimeTest, SpawnAndJoin) {
  std::vector<int> order;
  runtime_.Launch("parent", [&](LipContext& ctx) -> Task {
    ThreadId child = ctx.spawn([&](LipContext& inner) -> Task {
      co_await inner.sleep(Millis(10));
      order.push_back(1);
      co_return;
    });
    co_await ctx.join(child);
    order.push_back(2);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(runtime_.stats().threads_spawned, 2u);
}

TEST_F(RuntimeTest, JoinFinishedThreadIsImmediate) {
  bool done = false;
  runtime_.Launch("parent", [&](LipContext& ctx) -> Task {
    ThreadId child = ctx.spawn([](LipContext&) -> Task { co_return; });
    co_await ctx.sleep(Millis(5));  // Child finishes long before.
    co_await ctx.join(child);
    done = true;
    co_return;
  });
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(RuntimeTest, JoinAllWaitsForEveryChild) {
  int finished_children = 0;
  bool parent_resumed_after_all = false;
  runtime_.Launch("parent", [&](LipContext& ctx) -> Task {
    for (int i = 1; i <= 5; ++i) {
      ctx.spawn([&, i](LipContext& inner) -> Task {
        co_await inner.sleep(Millis(i * 10));
        ++finished_children;
        co_return;
      });
    }
    co_await ctx.join_all();
    parent_resumed_after_all = (finished_children == 5);
    co_return;
  });
  sim_.Run();
  EXPECT_TRUE(parent_resumed_after_all);
}

TEST_F(RuntimeTest, ProcessEndsWhenAllThreadsEnd) {
  // Main returns immediately; a detached child keeps the process alive.
  SimTime exit_time = -1;
  LipId lip = runtime_.Launch(
      "detached",
      [&](LipContext& ctx) -> Task {
        ctx.spawn([](LipContext& inner) -> Task {
          co_await inner.sleep(Millis(100));
          co_return;
        });
        co_return;  // Main exits first.
      },
      [&](LipId) { exit_time = sim_.now(); });
  (void)lip;
  sim_.Run();
  EXPECT_GE(exit_time, Millis(100));
}

TEST_F(RuntimeTest, YieldInterleavesThreads) {
  std::string trace;
  runtime_.Launch("interleave", [&](LipContext& ctx) -> Task {
    ThreadId a = ctx.spawn([&](LipContext& inner) -> Task {
      trace += 'a';
      co_await inner.yield();
      trace += 'A';
      co_return;
    });
    ThreadId b = ctx.spawn([&](LipContext& inner) -> Task {
      trace += 'b';
      co_await inner.yield();
      trace += 'B';
      co_return;
    });
    co_await ctx.join(a);
    co_await ctx.join(b);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(trace, "abAB");  // FIFO interleaving, not aAbB.
}

TEST_F(RuntimeTest, ChannelSendThenRecv) {
  std::string got;
  runtime_.Launch("producer", [&](LipContext& ctx) -> Task {
    co_await ctx.send("chan", "payload");
    co_return;
  });
  runtime_.Launch("consumer", [&](LipContext& ctx) -> Task {
    got = co_await ctx.recv("chan");
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(got, "payload");
}

TEST_F(RuntimeTest, ChannelRecvBlocksUntilSend) {
  std::string got;
  SimTime recv_time = -1;
  runtime_.Launch("consumer", [&](LipContext& ctx) -> Task {
    got = co_await ctx.recv("late");
    recv_time = ctx.now();
    co_return;
  });
  runtime_.Launch("producer", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(40));
    co_await ctx.send("late", "eventually");
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(got, "eventually");
  EXPECT_GE(recv_time, Millis(40));
}

TEST_F(RuntimeTest, ChannelFifoAcrossMessages) {
  std::vector<std::string> got;
  runtime_.Launch("producer", [&](LipContext& ctx) -> Task {
    co_await ctx.send("q", "one");
    co_await ctx.send("q", "two");
    co_await ctx.send("q", "three");
    co_return;
  });
  runtime_.Launch("consumer", [&](LipContext& ctx) -> Task {
    for (int i = 0; i < 3; ++i) {
      got.push_back(co_await ctx.recv("q"));
    }
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(RuntimeTest, KvSyscallsThroughContext) {
  Status result;
  runtime_.Launch("kvuser", [&](LipContext& ctx) -> Task {
    StatusOr<KvHandle> h = ctx.kv_create("/kv/mine");
    if (!h.ok()) {
      result = h.status();
      co_return;
    }
    std::vector<TokenRecord> recs;
    for (int i = 0; i < 5; ++i) {
      recs.push_back(TokenRecord{static_cast<TokenId>(300 + i), i, 77u});
    }
    Status append = ctx.runtime_for_testing()->kvfs()->Append(*h, recs);
    if (!append.ok()) {
      result = append;
      co_return;
    }
    StatusOr<uint64_t> len = ctx.kv_len(*h);
    if (!len.ok() || *len != 5) {
      result = InternalError("bad length");
      co_return;
    }
    result = ctx.kv_close(*h);
    co_return;
  });
  sim_.Run();
  EXPECT_TRUE(result.ok()) << result;
  EXPECT_TRUE(kvfs_.Exists("/kv/mine"));
}

TEST_F(RuntimeTest, ProcessExitClosesLeakedHandles) {
  runtime_.Launch("leaker", [&](LipContext& ctx) -> Task {
    StatusOr<KvHandle> tmp = ctx.kv_tmp();  // Anonymous, never closed.
    (void)tmp;
    co_return;
  });
  sim_.Run();
  // The anonymous file was reclaimed at exit: all pages free, no live files
  // other than none.
  EXPECT_EQ(kvfs_.pool().stats().gpu_pages_used, 0u);
  EXPECT_TRUE(kvfs_.ListAll().empty());
}

TEST_F(RuntimeTest, ForkThroughContextIsCow) {
  uint64_t pages_after_fork = 0;
  runtime_.Launch("forker", [&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_create("/kv/base");
    std::vector<TokenRecord> recs(20, TokenRecord{300, 0, 1u});
    for (int i = 0; i < 20; ++i) {
      recs[static_cast<size_t>(i)].position = i;
    }
    (void)runtime_.kvfs()->Append(base, recs);
    StatusOr<KvHandle> fork = ctx.kv_fork(base);
    pages_after_fork = kvfs_.pool().stats().gpu_pages_used;
    (void)fork;
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(pages_after_fork, 2u);  // 20 tokens = 2 pages, shared by fork.
}

TEST_F(RuntimeTest, KvStatReportsThroughContext) {
  KvFileInfo info;
  runtime_.Launch("stat", [&](LipContext& ctx) -> Task {
    KvHandle h = *ctx.kv_create("/kv/statme", kModeShared);
    std::vector<TokenRecord> recs(5);
    for (int i = 0; i < 5; ++i) {
      recs[static_cast<size_t>(i)] = TokenRecord{260, i, 1u};
    }
    (void)ctx.runtime_for_testing()->kvfs()->Append(h, recs);
    info = *ctx.kv_stat(h);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(info.path, "/kv/statme");
  EXPECT_EQ(info.length, 5u);
  EXPECT_EQ(info.mode, kModeShared);
}

TEST_F(RuntimeTest, KvListFiltersByReadability) {
  std::vector<std::string> alice_sees;
  std::vector<std::string> bob_sees;
  runtime_.Launch("alice", [&](LipContext& ctx) -> Task {
    (void)ctx.kv_create("/kv/private", kModePrivate);
    (void)ctx.kv_create("/kv/shared", kModeShared);
    co_await ctx.send("ready", "go");
    alice_sees = ctx.kv_list("/kv/");
    co_return;
  });
  runtime_.Launch("bob", [&](LipContext& ctx) -> Task {
    (void)co_await ctx.recv("ready");
    bob_sees = ctx.kv_list("/kv/");
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(alice_sees,
            (std::vector<std::string>{"/kv/private", "/kv/shared"}));
  EXPECT_EQ(bob_sees, (std::vector<std::string>{"/kv/shared"}));
}

TEST_F(RuntimeTest, PredWithoutServiceFails) {
  Status pred_status;
  runtime_.Launch("nopred", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred1(kv, 300);
    pred_status = dists.status();
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(pred_status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, PredEmptyTokensFailsEarly) {
  Status pred_status;
  runtime_.Launch("empty", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, std::vector<TokenId>{});
    pred_status = dists.status();
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(pred_status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RuntimeTest, ToolWithoutServiceFails) {
  Status tool_status;
  runtime_.Launch("notool", [&](LipContext& ctx) -> Task {
    StatusOr<std::string> out = co_await ctx.call_tool("weather", "nyc");
    tool_status = out.status();
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(tool_status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, LipRngIsDeterministicPerLip) {
  std::vector<uint64_t> first_run;
  std::vector<uint64_t> second_run;
  auto program = [](std::vector<uint64_t>* out) {
    return [out](LipContext& ctx) -> Task {
      for (int i = 0; i < 4; ++i) {
        out->push_back(ctx.rand64());
      }
      co_return;
    };
  };
  runtime_.Launch("rng", program(&first_run));
  sim_.Run();

  Simulator sim2;
  Kvfs kvfs2(MakeKvfsOptions());
  LipRuntime runtime2(&sim2, &kvfs2);
  runtime2.Launch("rng", program(&second_run));
  sim2.Run();

  EXPECT_EQ(first_run, second_run);
}

TEST_F(RuntimeTest, ResumeOverheadChargesTime) {
  Simulator sim2;
  Kvfs kvfs2(MakeKvfsOptions());
  RuntimeOptions options;
  options.resume_overhead = Millis(1);
  LipRuntime runtime2(&sim2, &kvfs2, options);
  runtime2.Launch("spinner", [](LipContext& ctx) -> Task {
    for (int i = 0; i < 9; ++i) {
      co_await ctx.yield();
    }
    co_return;
  });
  sim2.Run();
  // 1 initial resume + 9 yields = 10 resumes at 1ms each.
  EXPECT_EQ(sim2.now(), Millis(10));
}

TEST_F(RuntimeTest, ManyLipsAllComplete) {
  constexpr int kLips = 200;
  for (int i = 0; i < kLips; ++i) {
    runtime_.Launch("worker", [i](LipContext& ctx) -> Task {
      co_await ctx.sleep(Millis(i % 17));
      ctx.emit("x");
      co_return;
    });
  }
  sim_.Run();
  EXPECT_EQ(runtime_.stats().lips_completed, static_cast<uint64_t>(kLips));
  EXPECT_EQ(runtime_.live_lips(), 0u);
}

}  // namespace
}  // namespace symphony
