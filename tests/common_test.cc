// Unit tests for src/common: Status/StatusOr, Rng, hashing, logging.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace symphony {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseMacros(int x, int* out) {
  SYMPHONY_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  SYMPHONY_RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status bad = UseMacros(3, &out);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsBounded) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(4.0);
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 2.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(HashTest, Mix64IsInjectiveOnSmallSet) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, Fnv1aStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(LoggingTest, SinkCapturesMessages) {
  std::vector<std::string> captured;
  LogConfig::set_sink([&](LogLevel, const std::string& m) { captured.push_back(m); });
  LogConfig::set_level(LogLevel::kInfo);
  SYMPHONY_LOG(kInfo) << "hello " << 42;
  SYMPHONY_LOG(kDebug) << "filtered";
  LogConfig::set_sink(nullptr);
  LogConfig::set_level(LogLevel::kWarning);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("hello 42"), std::string::npos);
}

}  // namespace
}  // namespace symphony
