// Tests for the batch inference scheduler + simulated device, driven end to
// end through LIP programs: correctness of pred results (equivalence with
// direct model computation), position validation, batching behaviour, batch
// policies, and KV residency/transfer accounting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/model.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/runtime.h"
#include "src/sched/batch_policy.h"
#include "src/sched/inference_scheduler.h"
#include "src/sim/event_queue.h"

namespace symphony {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  SchedTest() : SchedTest(std::make_unique<EagerPolicy>()) {}

  explicit SchedTest(std::unique_ptr<BatchPolicy> policy)
      : model_(ModelConfig::Tiny()),
        kvfs_(MakeKvfsOptions()),
        device_(&sim_, CostModel(ModelConfig::Tiny())),
        scheduler_(&sim_, &kvfs_, &model_, &device_, std::move(policy)),
        runtime_(&sim_, &kvfs_) {
    runtime_.set_pred_service(&scheduler_);
  }

  static KvfsOptions MakeKvfsOptions() {
    KvfsOptions o;
    o.gpu_page_budget = 256;
    o.host_page_budget = 256;
    return o;
  }

  Model model_;
  Simulator sim_;
  Kvfs kvfs_;
  Device device_;
  InferenceScheduler scheduler_;
  LipRuntime runtime_;
};

TEST_F(SchedTest, PredReturnsOneDistPerToken) {
  size_t dist_count = 0;
  Status status;
  runtime_.Launch("basic", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261, 262);
    status = dists.status();
    if (dists.ok()) {
      dist_count = dists->size();
    }
    co_return;
  });
  sim_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(dist_count, 3u);
}

TEST_F(SchedTest, PredMatchesDirectModelComputation) {
  // Greedy decoding through the full serving stack must equal greedy
  // decoding straight on the Model.
  std::vector<TokenId> prompt = {260, 265, 270};
  constexpr int kSteps = 12;

  // Direct computation.
  std::vector<TokenId> expected;
  {
    HiddenState s = model_.InitialState();
    int32_t pos = 0;
    for (TokenId t : prompt) {
      s = model_.Advance(s, t, pos++);
    }
    TokenId next = model_.Predict(s).Argmax();
    for (int i = 0; i < kSteps; ++i) {
      expected.push_back(next);
      s = model_.Advance(s, next, pos++);
      next = model_.Predict(s).Argmax();
    }
  }

  std::vector<TokenId> got;
  runtime_.Launch("greedy", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Argmax();
    for (int i = 0; i < kSteps; ++i) {
      got.push_back(next);
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
      if (!d.ok()) {
        co_return;
      }
      next = d->back().Argmax();
    }
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(got, expected);
}

TEST_F(SchedTest, PredAppendsRecordsToFile) {
  uint64_t final_len = 0;
  HiddenState tail = 0;
  runtime_.Launch("append", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261);
    (void)co_await ctx.pred1(kv, 262);
    final_len = *ctx.kv_len(kv);
    tail = *runtime_.kvfs()->TailState(kv);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(final_len, 3u);
  std::vector<HiddenState> states =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 262}, 0);
  EXPECT_EQ(tail, states.back());
}

TEST_F(SchedTest, NonContinuationPositionsRejected) {
  Status status;
  runtime_.Launch("badpos", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    // File is empty, so position must be 0; 5 must be rejected.
    std::vector<TokenId> toks = {260};
    std::vector<int32_t> bad_positions = {5};
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_at(kv, std::move(toks), std::move(bad_positions));
    status = dists.status();
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // A rejected request still waited in the queue; the sample must not be
  // silently dropped from the latency series.
  EXPECT_EQ(scheduler_.queue_waits_ms().count(), 1u);
}

TEST_F(SchedTest, SpeculativeRollbackViaTruncate) {
  // Draft-then-verify: append 4 draft tokens in one pred, "reject" the last
  // two, truncate, and continue — state must match the accepted prefix.
  bool ok = false;
  runtime_.Launch("spec", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261, 262, 263);
    (void)ctx.kv_truncate(kv, 2);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 290);
    if (!d.ok()) {
      co_return;
    }
    std::vector<HiddenState> direct =
        model_.AdvanceSeq(model_.InitialState(), {260, 261, 290}, 0);
    ok = (*runtime_.kvfs()->TailState(kv) == direct.back());
    co_return;
  });
  sim_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(SchedTest, ForkedFilesContinueIndependently) {
  HiddenState tail_a = 0;
  HiddenState tail_b = 0;
  runtime_.Launch("forker", [&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(base, 260, 261);
    KvHandle a = *ctx.kv_fork(base);
    KvHandle b = *ctx.kv_fork(base);
    (void)co_await ctx.pred1(a, 270);
    (void)co_await ctx.pred1(b, 280);
    tail_a = *runtime_.kvfs()->TailState(a);
    tail_b = *runtime_.kvfs()->TailState(b);
    co_return;
  });
  sim_.Run();
  std::vector<HiddenState> da =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 270}, 0);
  std::vector<HiddenState> db =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 280}, 0);
  EXPECT_EQ(tail_a, da.back());
  EXPECT_EQ(tail_b, db.back());
}

TEST_F(SchedTest, ConcurrentPredsAreBatched) {
  // 8 LIPs submit preds at the same instant; eager policy launches one batch
  // for the first, and the remaining 7 coalesce into the next batch(es).
  constexpr int kLips = 8;
  int completed = 0;
  for (int i = 0; i < kLips; ++i) {
    runtime_.Launch("client", [&](LipContext& ctx) -> Task {
      KvHandle kv = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
      if (d.ok()) {
        ++completed;
      }
      co_return;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, kLips);
  EXPECT_LT(scheduler_.stats().batches, static_cast<uint64_t>(kLips));
  EXPECT_GE(device_.stats().batches, 2u);
}

TEST_F(SchedTest, RestoreFromHostChargesTransfer) {
  runtime_.Launch("offloaded", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261, 262);
    // Push the file to host, then pred again: the scheduler must restore it.
    (void)runtime_.kvfs()->OffloadToHost(kv);
    (void)runtime_.kvfs()->TakePendingTransferBytes();  // Clear offload bytes.
    (void)co_await ctx.pred1(kv, 263);
    co_return;
  });
  sim_.Run();
  EXPECT_GT(device_.stats().transfer_bytes, 0u);
}

TEST_F(SchedTest, DeviceAccountsUtilization) {
  runtime_.Launch("busy", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    for (int i = 0; i < 5; ++i) {
      (void)co_await ctx.pred1(kv, static_cast<TokenId>(260 + i));
    }
    co_return;
  });
  sim_.Run();
  EXPECT_GT(device_.stats().busy_time, 0);
  EXPECT_GT(device_.Utilization(), 0.1);
  EXPECT_LE(device_.Utilization(), 1.0);
  EXPECT_EQ(device_.stats().new_tokens, 5u);
}

TEST_F(SchedTest, QueueWaitRecorded) {
  runtime_.Launch("w", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(scheduler_.queue_waits_ms().count(), 1u);
}

TEST_F(SchedTest, FairSharePicksAcrossLips) {
  // Two LIPs: a hog with 6 concurrent single-token preds per round and a
  // victim with one. Under fair share (batch capped at 2), the victim must
  // ride in the first batch after its submit, never behind the whole hog
  // backlog.
  Simulator sim;
  Kvfs kvfs(MakeKvfsOptions());
  Model model(ModelConfig::Tiny());
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions sched_options;
  sched_options.discipline = QueueDiscipline::kFairShare;
  sched_options.max_batch_requests = 2;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), sched_options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  SampleSeries victim_waits_ms;
  runtime.Launch("hog", [&](LipContext& ctx) -> Task {
    for (int w = 0; w < 6; ++w) {
      ctx.spawn([&, w](LipContext& inner) -> Task {
        KvHandle kv = *inner.kv_tmp();
        for (int i = 0; i < 20; ++i) {
          StatusOr<std::vector<Distribution>> d =
              co_await inner.pred1(kv, static_cast<TokenId>(260 + w));
          if (!d.ok()) {
            co_return;
          }
        }
        co_return;
      });
    }
    co_await ctx.join_all();
    co_return;
  });
  runtime.Launch("victim", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    for (int i = 0; i < 10; ++i) {
      SimTime start = ctx.now();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 300);
      if (!d.ok()) {
        co_return;
      }
      victim_waits_ms.Add(ToMillis(ctx.now() - start));
      co_await ctx.sleep(Millis(2));
    }
    co_return;
  });
  sim.Run();
  ASSERT_EQ(victim_waits_ms.count(), 10u);
  // Batch time ~0.16ms (tiny model); with 6 hog requests always queued and
  // batch size 2, FIFO would make the victim wait ~3+ batches regularly.
  // Fair share bounds it near 2 batch times (in-flight + next).
  EXPECT_LT(victim_waits_ms.max(), 1.2);
}

class PoissonSchedTest : public SchedTest {
 protected:
  PoissonSchedTest() : SchedTest(std::make_unique<PoissonAdaptivePolicy>(Millis(10))) {}
};

TEST_F(PoissonSchedTest, AccumulatesBatchesUnderLoad) {
  // 32 LIPs arriving every 10us — much faster than a ~150us batch — so the
  // adaptive policy should coalesce arrivals into a few large batches
  // rather than 32 singletons.
  constexpr int kLips = 32;
  int completed = 0;
  for (int i = 0; i < kLips; ++i) {
    sim_.ScheduleAt(Micros(10) * i, [&, i] {
      (void)i;
      runtime_.Launch("client", [&](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_tmp();
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
        if (d.ok()) {
          ++completed;
        }
        co_return;
      });
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, kLips);
  EXPECT_LE(scheduler_.stats().batches, 8u);
}

TEST_F(PoissonSchedTest, MaxWaitBoundsLatency) {
  // A single lonely request must still launch within max_wait (10ms) plus
  // execution time, not wait forever for a batch to fill.
  SimTime done_at = -1;
  runtime_.Launch("lonely", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260);
    done_at = ctx.now();
    co_return;
  });
  sim_.Run();
  EXPECT_GT(done_at, 0);
  EXPECT_LT(done_at, Millis(40));
}

TEST(SizeTimeoutPolicyTest, LaunchesAtSize) {
  SizeTimeoutPolicy policy(4, Millis(100));
  BatchPolicyInput input;
  input.queue_size = 4;
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
  input.queue_size = 3;
  input.oldest_wait = Millis(1);
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_GT(d.recheck_after, 0);
}

TEST(SizeTimeoutPolicyTest, LaunchesAtTimeout) {
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5);
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(PoissonPolicyTest, HighRateWaitsForBatch) {
  PoissonAdaptivePolicy policy(Millis(50));
  BatchPolicyInput input;
  input.queue_size = 2;
  input.oldest_wait = Millis(1);
  input.arrival_rate_per_sec = 1000.0;  // ~20 arrivals per 20ms batch.
  input.est_batch_time = Millis(20);
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
}

TEST(PoissonPolicyTest, LowRateLaunchesImmediately) {
  PoissonAdaptivePolicy policy(Millis(50));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Micros(100);
  input.arrival_rate_per_sec = 5.0;  // Sparse arrivals: don't wait.
  input.est_batch_time = Millis(20);
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, EmptyQueueWaitsFullTimeout) {
  SizeTimeoutPolicy policy(4, Millis(100));
  BatchPolicyInput input;
  input.queue_size = 0;
  input.oldest_wait = 0;
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_EQ(d.recheck_after, Millis(100));
}

TEST(SizeTimeoutPolicyTest, WaitExactlyAtTimeoutLaunches) {
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5);  // Boundary: >= is launch, not >.
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
  input.oldest_wait = Millis(5) - 1;
  EXPECT_FALSE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, RecheckIsClampedToMinimumGranularity) {
  // 1ns short of the timeout must not schedule a 1ns recheck spin.
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5) - 1;
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_GE(d.recheck_after, Micros(50));
}

TEST(SizeTimeoutPolicyTest, TargetAboveMaxBatchLaunchesAtMaxBatch) {
  // target_size 64 but the device caps at 8: a full device batch must not
  // wait for the unreachable target.
  SizeTimeoutPolicy policy(64, Seconds(10));
  BatchPolicyInput input;
  input.queue_size = 8;
  input.oldest_wait = 0;
  input.max_batch = 8;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, ZeroTimeoutDegeneratesToEager) {
  SizeTimeoutPolicy policy(64, 0);
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = 0;
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(MemoryBackoffTest, RequeuesWithExponentialBackoffUntilPressureLifts) {
  // Pin the whole GPU pool for a window; a pred arriving during it cannot
  // restore its KV and must survive on backoff retries, then complete when
  // the pins release. The doubling backoff keeps the retry count far below
  // a fixed-interval scheme's.
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 8;
  kv_options.host_page_budget = 256;
  kv_options.clock = [&sim] { return sim.now(); };
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions options;
  options.memory_retry_backoff = Millis(1);
  options.memory_retry_backoff_cap = Millis(8);
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  // Occupy all 8 GPU pages with a pinned admin file until t=50ms.
  KvHandle pressure = *kvfs.CreateAnonymous(kAdminLip);
  std::vector<TokenRecord> filler(8 * kPageTokens);
  for (size_t i = 0; i < filler.size(); ++i) {
    filler[i] = TokenRecord{0, static_cast<int32_t>(i), 0};
  }
  ASSERT_TRUE(kvfs.Append(pressure, filler).ok());
  ASSERT_TRUE(kvfs.Pin(pressure).ok());
  sim.ScheduleAt(Millis(50), [&] {
    ASSERT_TRUE(kvfs.Unpin(pressure).ok());
    ASSERT_TRUE(kvfs.Close(pressure).ok());
  });

  Status status;
  SimTime done_at = -1;
  runtime.Launch("starved", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261);
    status = dists.status();
    done_at = ctx.now();
    co_return;
  });
  sim.Run();

  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GT(done_at, Millis(50));  // Only succeeded after the window closed.
  const InferenceSchedulerStats& stats = scheduler.stats();
  EXPECT_GT(stats.memory_requeues, 0u);
  EXPECT_GE(stats.max_memory_retry_depth, 4u);
  // Doubling schedule over ~50ms: 1+2+4+8+8+... needs ~9 retries; a fixed
  // 1ms interval would need ~50. Allow slack but catch a non-growing backoff.
  EXPECT_LE(stats.memory_requeues, 15u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(MemoryBackoffTest, RetryBudgetExhaustionFailsTheRequest) {
  // Pressure that never lifts: the request must fail with the original
  // kResourceExhausted once max_memory_retries is spent, not spin forever.
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 8;
  kv_options.host_page_budget = 256;
  kv_options.clock = [&sim] { return sim.now(); };
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions options;
  options.memory_retry_backoff = Millis(1);
  options.memory_retry_backoff_cap = Millis(4);
  options.max_memory_retries = 6;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  KvHandle pressure = *kvfs.CreateAnonymous(kAdminLip);
  std::vector<TokenRecord> filler(8 * kPageTokens);
  for (size_t i = 0; i < filler.size(); ++i) {
    filler[i] = TokenRecord{0, static_cast<int32_t>(i), 0};
  }
  ASSERT_TRUE(kvfs.Append(pressure, filler).ok());
  ASSERT_TRUE(kvfs.Pin(pressure).ok());

  Status status;
  runtime.Launch("doomed", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261);
    status = dists.status();
    co_return;
  });
  sim.Run();

  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().memory_requeues, 6u);
  EXPECT_EQ(scheduler.stats().max_memory_retry_depth, 6u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Stall-free scheduling: chunked prefill must be semantically invisible.
// ---------------------------------------------------------------------------

// Stress-scalable seeds, same contract as PropertySeeds in property_test.cc:
// curated base seeds by default, widened under SYMPHONY_STRESS.
std::vector<uint64_t> ChunkSeeds(std::vector<uint64_t> base, uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

struct LipObservation {
  std::vector<uint64_t> dist_states;  // Every distribution, in program order.
  HiddenState tail = 0;
  uint64_t kv_len = 0;
};

// Runs a mixed prefill+decode workload under the given chunk size and packing
// mode. Everything returned must be independent of `chunk` and
// `decode_priority`: chunking may only change WHEN tokens are batched, never
// what they compute.
std::vector<LipObservation> RunChunkedWorkload(
    uint64_t seed, uint64_t chunk, bool decode_priority,
    InferenceSchedulerStats* stats_out) {
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 512;
  kv_options.host_page_budget = 512;
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions options;
  options.prefill_chunk_tokens = chunk;
  options.decode_priority = decode_priority;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  constexpr size_t kLips = 4;
  std::vector<LipObservation> obs(kLips);
  Rng rng(seed);
  for (size_t i = 0; i < kLips; ++i) {
    // LIP 0 is a pure decode stream (short prompt); the rest prefill
    // 80..279 tokens, so every chunk size under 80 actually splits.
    uint64_t prompt_len = i == 0 ? 4 : 80 + rng.NextBounded(200);
    std::vector<TokenId> prompt(prompt_len);
    for (TokenId& t : prompt) {
      t = static_cast<TokenId>(1 + rng.NextBounded(299));
    }
    int decode_steps = 4 + static_cast<int>(rng.NextBounded(5));
    sim.ScheduleAt(Micros(40) * static_cast<SimTime>(i),
                   [&, i, prompt = std::move(prompt), decode_steps] {
      runtime.Launch(
          "lip" + std::to_string(i),
          [&, i, prompt, decode_steps](LipContext& ctx) -> Task {
            KvHandle kv = *ctx.kv_tmp();
            StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
            if (!d.ok()) {
              co_return;
            }
            for (const Distribution& dist : *d) {
              obs[i].dist_states.push_back(dist.state());
            }
            TokenId next = d->back().Argmax();
            for (int s = 0; s < decode_steps; ++s) {
              StatusOr<std::vector<Distribution>> dd = co_await ctx.pred1(kv, next);
              if (!dd.ok()) {
                co_return;
              }
              obs[i].dist_states.push_back(dd->back().state());
              next = dd->back().Argmax();
            }
            obs[i].kv_len = *ctx.kv_len(kv);
            obs[i].tail = *runtime.kvfs()->TailState(kv);
            co_return;
          });
    });
  }
  sim.Run();
  if (stats_out != nullptr) {
    *stats_out = scheduler.stats();
  }
  return obs;
}

class ChunkInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChunkInvarianceTest, ChunkedExecutionIsBitIdentical) {
  uint64_t seed = GetParam();
  std::vector<LipObservation> baseline =
      RunChunkedWorkload(seed, /*chunk=*/0, /*decode_priority=*/false, nullptr);
  for (const LipObservation& o : baseline) {
    ASSERT_FALSE(o.dist_states.empty());
    ASSERT_GT(o.kv_len, 0u);
  }
  for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{64}, uint64_t{512}}) {
    for (bool decode_priority : {false, true}) {
      InferenceSchedulerStats stats;
      std::vector<LipObservation> got =
          RunChunkedWorkload(seed, chunk, decode_priority, &stats);
      ASSERT_EQ(got.size(), baseline.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dist_states, baseline[i].dist_states)
            << "lip " << i << " chunk " << chunk << " dp " << decode_priority;
        EXPECT_EQ(got[i].tail, baseline[i].tail)
            << "lip " << i << " chunk " << chunk << " dp " << decode_priority;
        EXPECT_EQ(got[i].kv_len, baseline[i].kv_len)
            << "lip " << i << " chunk " << chunk << " dp " << decode_priority;
      }
      if (chunk < 80) {
        // Every prefill is larger than the chunk, so splits must happen
        // (and each split contributes at least two chunk launches).
        EXPECT_GT(stats.prefills_chunked, 0u) << "chunk " << chunk;
        EXPECT_GT(stats.prefill_chunks, stats.prefills_chunked)
            << "chunk " << chunk;
      } else {
        EXPECT_EQ(stats.prefills_chunked, 0u) << "chunk " << chunk;
      }
      // Occupancy accounting covers both request classes in this mix.
      EXPECT_GT(stats.decode_tokens_batched, 0u);
      EXPECT_GT(stats.prefill_tokens_batched, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkInvarianceTest,
                         ::testing::ValuesIn(ChunkSeeds({11, 29, 47}, 0xC0)));

// ---------------------------------------------------------------------------
// Chunking exists to bound decode tail latency: shrinking the chunk must
// never make the decode p99 worse, and a small chunk must beat unchunked by
// a wide margin.
// ---------------------------------------------------------------------------

// Decode p99 (ms) for a decode stream contending with a stream of 2000-token
// prefills. Timing uses the Llama13B cost model — on Tiny the 150us kernel
// overhead dwarfs per-token compute and chunking would be unobservable.
double DecodeP99ForChunk(uint64_t chunk) {
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 2048;
  kv_options.host_page_budget = 2048;
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Llama13B()));
  InferenceSchedulerOptions options;
  options.prefill_chunk_tokens = chunk;
  options.decode_priority = true;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  SampleSeries decode_ms;
  runtime.Launch("decoder", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred_tokens(kv, 260, 261, 262, 263);
    if (!d.ok()) {
      co_return;
    }
    TokenId next = d->back().Argmax();
    for (int i = 0; i < 120; ++i) {
      SimTime start = ctx.now();
      StatusOr<std::vector<Distribution>> dd = co_await ctx.pred1(kv, next);
      if (!dd.ok()) {
        co_return;
      }
      decode_ms.Add(ToMillis(ctx.now() - start));
      next = dd->back().Argmax();
    }
    co_return;
  });
  std::vector<TokenId> prompt(2000);
  for (size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<TokenId>(1 + i % 299);
  }
  for (int p = 0; p < 6; ++p) {
    sim.ScheduleAt(Millis(20) + Millis(150) * p, [&] {
      runtime.Launch("prefill", [&](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_tmp();
        (void)co_await ctx.pred(kv, prompt);
        co_return;
      });
    });
  }
  sim.Run();
  EXPECT_EQ(decode_ms.count(), 120u) << "chunk " << chunk;
  return decode_ms.Percentile(0.99);
}

TEST(ChunkLatencyTest, DecodeTailLatencyNonIncreasingAsChunkShrinks) {
  const std::vector<uint64_t> chunks = {0, 512, 128, 32};
  std::vector<double> p99;
  for (uint64_t chunk : chunks) {
    p99.push_back(DecodeP99ForChunk(chunk));
  }
  for (size_t i = 1; i < p99.size(); ++i) {
    EXPECT_LE(p99[i], p99[i - 1] * 1.05)
        << "chunk " << chunks[i] << " worsened decode p99: " << p99[i]
        << "ms vs " << p99[i - 1] << "ms at chunk " << chunks[i - 1];
  }
  // The headline effect, not a tie: a 32-token chunk bounds the batch a
  // decode can get stuck behind to a fraction of a full 2000-token prefill.
  EXPECT_LT(p99.back(), p99.front() / 2.0);
}

}  // namespace
}  // namespace symphony
