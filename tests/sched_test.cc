// Tests for the batch inference scheduler + simulated device, driven end to
// end through LIP programs: correctness of pred results (equivalence with
// direct model computation), position validation, batching behaviour, batch
// policies, and KV residency/transfer accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/model.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/runtime.h"
#include "src/sched/batch_policy.h"
#include "src/sched/inference_scheduler.h"
#include "src/sim/event_queue.h"

namespace symphony {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  SchedTest() : SchedTest(std::make_unique<EagerPolicy>()) {}

  explicit SchedTest(std::unique_ptr<BatchPolicy> policy)
      : model_(ModelConfig::Tiny()),
        kvfs_(MakeKvfsOptions()),
        device_(&sim_, CostModel(ModelConfig::Tiny())),
        scheduler_(&sim_, &kvfs_, &model_, &device_, std::move(policy)),
        runtime_(&sim_, &kvfs_) {
    runtime_.set_pred_service(&scheduler_);
  }

  static KvfsOptions MakeKvfsOptions() {
    KvfsOptions o;
    o.gpu_page_budget = 256;
    o.host_page_budget = 256;
    return o;
  }

  Model model_;
  Simulator sim_;
  Kvfs kvfs_;
  Device device_;
  InferenceScheduler scheduler_;
  LipRuntime runtime_;
};

TEST_F(SchedTest, PredReturnsOneDistPerToken) {
  size_t dist_count = 0;
  Status status;
  runtime_.Launch("basic", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261, 262);
    status = dists.status();
    if (dists.ok()) {
      dist_count = dists->size();
    }
    co_return;
  });
  sim_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(dist_count, 3u);
}

TEST_F(SchedTest, PredMatchesDirectModelComputation) {
  // Greedy decoding through the full serving stack must equal greedy
  // decoding straight on the Model.
  std::vector<TokenId> prompt = {260, 265, 270};
  constexpr int kSteps = 12;

  // Direct computation.
  std::vector<TokenId> expected;
  {
    HiddenState s = model_.InitialState();
    int32_t pos = 0;
    for (TokenId t : prompt) {
      s = model_.Advance(s, t, pos++);
    }
    TokenId next = model_.Predict(s).Argmax();
    for (int i = 0; i < kSteps; ++i) {
      expected.push_back(next);
      s = model_.Advance(s, next, pos++);
      next = model_.Predict(s).Argmax();
    }
  }

  std::vector<TokenId> got;
  runtime_.Launch("greedy", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Argmax();
    for (int i = 0; i < kSteps; ++i) {
      got.push_back(next);
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
      if (!d.ok()) {
        co_return;
      }
      next = d->back().Argmax();
    }
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(got, expected);
}

TEST_F(SchedTest, PredAppendsRecordsToFile) {
  uint64_t final_len = 0;
  HiddenState tail = 0;
  runtime_.Launch("append", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261);
    (void)co_await ctx.pred1(kv, 262);
    final_len = *ctx.kv_len(kv);
    tail = *runtime_.kvfs()->TailState(kv);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(final_len, 3u);
  std::vector<HiddenState> states =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 262}, 0);
  EXPECT_EQ(tail, states.back());
}

TEST_F(SchedTest, NonContinuationPositionsRejected) {
  Status status;
  runtime_.Launch("badpos", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    // File is empty, so position must be 0; 5 must be rejected.
    std::vector<TokenId> toks = {260};
    std::vector<int32_t> bad_positions = {5};
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_at(kv, std::move(toks), std::move(bad_positions));
    status = dists.status();
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedTest, SpeculativeRollbackViaTruncate) {
  // Draft-then-verify: append 4 draft tokens in one pred, "reject" the last
  // two, truncate, and continue — state must match the accepted prefix.
  bool ok = false;
  runtime_.Launch("spec", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261, 262, 263);
    (void)ctx.kv_truncate(kv, 2);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 290);
    if (!d.ok()) {
      co_return;
    }
    std::vector<HiddenState> direct =
        model_.AdvanceSeq(model_.InitialState(), {260, 261, 290}, 0);
    ok = (*runtime_.kvfs()->TailState(kv) == direct.back());
    co_return;
  });
  sim_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(SchedTest, ForkedFilesContinueIndependently) {
  HiddenState tail_a = 0;
  HiddenState tail_b = 0;
  runtime_.Launch("forker", [&](LipContext& ctx) -> Task {
    KvHandle base = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(base, 260, 261);
    KvHandle a = *ctx.kv_fork(base);
    KvHandle b = *ctx.kv_fork(base);
    (void)co_await ctx.pred1(a, 270);
    (void)co_await ctx.pred1(b, 280);
    tail_a = *runtime_.kvfs()->TailState(a);
    tail_b = *runtime_.kvfs()->TailState(b);
    co_return;
  });
  sim_.Run();
  std::vector<HiddenState> da =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 270}, 0);
  std::vector<HiddenState> db =
      model_.AdvanceSeq(model_.InitialState(), {260, 261, 280}, 0);
  EXPECT_EQ(tail_a, da.back());
  EXPECT_EQ(tail_b, db.back());
}

TEST_F(SchedTest, ConcurrentPredsAreBatched) {
  // 8 LIPs submit preds at the same instant; eager policy launches one batch
  // for the first, and the remaining 7 coalesce into the next batch(es).
  constexpr int kLips = 8;
  int completed = 0;
  for (int i = 0; i < kLips; ++i) {
    runtime_.Launch("client", [&](LipContext& ctx) -> Task {
      KvHandle kv = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
      if (d.ok()) {
        ++completed;
      }
      co_return;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, kLips);
  EXPECT_LT(scheduler_.stats().batches, static_cast<uint64_t>(kLips));
  EXPECT_GE(device_.stats().batches, 2u);
}

TEST_F(SchedTest, RestoreFromHostChargesTransfer) {
  runtime_.Launch("offloaded", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261, 262);
    // Push the file to host, then pred again: the scheduler must restore it.
    (void)runtime_.kvfs()->OffloadToHost(kv);
    (void)runtime_.kvfs()->TakePendingTransferBytes();  // Clear offload bytes.
    (void)co_await ctx.pred1(kv, 263);
    co_return;
  });
  sim_.Run();
  EXPECT_GT(device_.stats().transfer_bytes, 0u);
}

TEST_F(SchedTest, DeviceAccountsUtilization) {
  runtime_.Launch("busy", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    for (int i = 0; i < 5; ++i) {
      (void)co_await ctx.pred1(kv, static_cast<TokenId>(260 + i));
    }
    co_return;
  });
  sim_.Run();
  EXPECT_GT(device_.stats().busy_time, 0);
  EXPECT_GT(device_.Utilization(), 0.1);
  EXPECT_LE(device_.Utilization(), 1.0);
  EXPECT_EQ(device_.stats().new_tokens, 5u);
}

TEST_F(SchedTest, QueueWaitRecorded) {
  runtime_.Launch("w", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260);
    co_return;
  });
  sim_.Run();
  EXPECT_EQ(scheduler_.queue_waits_ms().count(), 1u);
}

TEST_F(SchedTest, FairSharePicksAcrossLips) {
  // Two LIPs: a hog with 6 concurrent single-token preds per round and a
  // victim with one. Under fair share (batch capped at 2), the victim must
  // ride in the first batch after its submit, never behind the whole hog
  // backlog.
  Simulator sim;
  Kvfs kvfs(MakeKvfsOptions());
  Model model(ModelConfig::Tiny());
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions sched_options;
  sched_options.discipline = QueueDiscipline::kFairShare;
  sched_options.max_batch_requests = 2;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), sched_options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  SampleSeries victim_waits_ms;
  runtime.Launch("hog", [&](LipContext& ctx) -> Task {
    for (int w = 0; w < 6; ++w) {
      ctx.spawn([&, w](LipContext& inner) -> Task {
        KvHandle kv = *inner.kv_tmp();
        for (int i = 0; i < 20; ++i) {
          StatusOr<std::vector<Distribution>> d =
              co_await inner.pred1(kv, static_cast<TokenId>(260 + w));
          if (!d.ok()) {
            co_return;
          }
        }
        co_return;
      });
    }
    co_await ctx.join_all();
    co_return;
  });
  runtime.Launch("victim", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    for (int i = 0; i < 10; ++i) {
      SimTime start = ctx.now();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 300);
      if (!d.ok()) {
        co_return;
      }
      victim_waits_ms.Add(ToMillis(ctx.now() - start));
      co_await ctx.sleep(Millis(2));
    }
    co_return;
  });
  sim.Run();
  ASSERT_EQ(victim_waits_ms.count(), 10u);
  // Batch time ~0.16ms (tiny model); with 6 hog requests always queued and
  // batch size 2, FIFO would make the victim wait ~3+ batches regularly.
  // Fair share bounds it near 2 batch times (in-flight + next).
  EXPECT_LT(victim_waits_ms.max(), 1.2);
}

class PoissonSchedTest : public SchedTest {
 protected:
  PoissonSchedTest() : SchedTest(std::make_unique<PoissonAdaptivePolicy>(Millis(10))) {}
};

TEST_F(PoissonSchedTest, AccumulatesBatchesUnderLoad) {
  // 32 LIPs arriving every 10us — much faster than a ~150us batch — so the
  // adaptive policy should coalesce arrivals into a few large batches
  // rather than 32 singletons.
  constexpr int kLips = 32;
  int completed = 0;
  for (int i = 0; i < kLips; ++i) {
    sim_.ScheduleAt(Micros(10) * i, [&, i] {
      (void)i;
      runtime_.Launch("client", [&](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_tmp();
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
        if (d.ok()) {
          ++completed;
        }
        co_return;
      });
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, kLips);
  EXPECT_LE(scheduler_.stats().batches, 8u);
}

TEST_F(PoissonSchedTest, MaxWaitBoundsLatency) {
  // A single lonely request must still launch within max_wait (10ms) plus
  // execution time, not wait forever for a batch to fill.
  SimTime done_at = -1;
  runtime_.Launch("lonely", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260);
    done_at = ctx.now();
    co_return;
  });
  sim_.Run();
  EXPECT_GT(done_at, 0);
  EXPECT_LT(done_at, Millis(40));
}

TEST(SizeTimeoutPolicyTest, LaunchesAtSize) {
  SizeTimeoutPolicy policy(4, Millis(100));
  BatchPolicyInput input;
  input.queue_size = 4;
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
  input.queue_size = 3;
  input.oldest_wait = Millis(1);
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_GT(d.recheck_after, 0);
}

TEST(SizeTimeoutPolicyTest, LaunchesAtTimeout) {
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5);
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(PoissonPolicyTest, HighRateWaitsForBatch) {
  PoissonAdaptivePolicy policy(Millis(50));
  BatchPolicyInput input;
  input.queue_size = 2;
  input.oldest_wait = Millis(1);
  input.arrival_rate_per_sec = 1000.0;  // ~20 arrivals per 20ms batch.
  input.est_batch_time = Millis(20);
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
}

TEST(PoissonPolicyTest, LowRateLaunchesImmediately) {
  PoissonAdaptivePolicy policy(Millis(50));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Micros(100);
  input.arrival_rate_per_sec = 5.0;  // Sparse arrivals: don't wait.
  input.est_batch_time = Millis(20);
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, EmptyQueueWaitsFullTimeout) {
  SizeTimeoutPolicy policy(4, Millis(100));
  BatchPolicyInput input;
  input.queue_size = 0;
  input.oldest_wait = 0;
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_EQ(d.recheck_after, Millis(100));
}

TEST(SizeTimeoutPolicyTest, WaitExactlyAtTimeoutLaunches) {
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5);  // Boundary: >= is launch, not >.
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
  input.oldest_wait = Millis(5) - 1;
  EXPECT_FALSE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, RecheckIsClampedToMinimumGranularity) {
  // 1ns short of the timeout must not schedule a 1ns recheck spin.
  SizeTimeoutPolicy policy(64, Millis(5));
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = Millis(5) - 1;
  input.max_batch = 32;
  BatchDecision d = policy.ShouldLaunch(input);
  EXPECT_FALSE(d.launch);
  EXPECT_GE(d.recheck_after, Micros(50));
}

TEST(SizeTimeoutPolicyTest, TargetAboveMaxBatchLaunchesAtMaxBatch) {
  // target_size 64 but the device caps at 8: a full device batch must not
  // wait for the unreachable target.
  SizeTimeoutPolicy policy(64, Seconds(10));
  BatchPolicyInput input;
  input.queue_size = 8;
  input.oldest_wait = 0;
  input.max_batch = 8;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(SizeTimeoutPolicyTest, ZeroTimeoutDegeneratesToEager) {
  SizeTimeoutPolicy policy(64, 0);
  BatchPolicyInput input;
  input.queue_size = 1;
  input.oldest_wait = 0;
  input.max_batch = 32;
  EXPECT_TRUE(policy.ShouldLaunch(input).launch);
}

TEST(MemoryBackoffTest, RequeuesWithExponentialBackoffUntilPressureLifts) {
  // Pin the whole GPU pool for a window; a pred arriving during it cannot
  // restore its KV and must survive on backoff retries, then complete when
  // the pins release. The doubling backoff keeps the retry count far below
  // a fixed-interval scheme's.
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 8;
  kv_options.host_page_budget = 256;
  kv_options.clock = [&sim] { return sim.now(); };
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions options;
  options.memory_retry_backoff = Millis(1);
  options.memory_retry_backoff_cap = Millis(8);
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  // Occupy all 8 GPU pages with a pinned admin file until t=50ms.
  KvHandle pressure = *kvfs.CreateAnonymous(kAdminLip);
  std::vector<TokenRecord> filler(8 * kPageTokens);
  for (size_t i = 0; i < filler.size(); ++i) {
    filler[i] = TokenRecord{0, static_cast<int32_t>(i), 0};
  }
  ASSERT_TRUE(kvfs.Append(pressure, filler).ok());
  ASSERT_TRUE(kvfs.Pin(pressure).ok());
  sim.ScheduleAt(Millis(50), [&] {
    ASSERT_TRUE(kvfs.Unpin(pressure).ok());
    ASSERT_TRUE(kvfs.Close(pressure).ok());
  });

  Status status;
  SimTime done_at = -1;
  runtime.Launch("starved", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261);
    status = dists.status();
    done_at = ctx.now();
    co_return;
  });
  sim.Run();

  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GT(done_at, Millis(50));  // Only succeeded after the window closed.
  const InferenceSchedulerStats& stats = scheduler.stats();
  EXPECT_GT(stats.memory_requeues, 0u);
  EXPECT_GE(stats.max_memory_retry_depth, 4u);
  // Doubling schedule over ~50ms: 1+2+4+8+8+... needs ~9 retries; a fixed
  // 1ms interval would need ~50. Allow slack but catch a non-growing backoff.
  EXPECT_LE(stats.memory_requeues, 15u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(MemoryBackoffTest, RetryBudgetExhaustionFailsTheRequest) {
  // Pressure that never lifts: the request must fail with the original
  // kResourceExhausted once max_memory_retries is spent, not spin forever.
  Simulator sim;
  Model model(ModelConfig::Tiny());
  KvfsOptions kv_options;
  kv_options.gpu_page_budget = 8;
  kv_options.host_page_budget = 256;
  kv_options.clock = [&sim] { return sim.now(); };
  Kvfs kvfs(kv_options);
  Device device(&sim, CostModel(ModelConfig::Tiny()));
  InferenceSchedulerOptions options;
  options.memory_retry_backoff = Millis(1);
  options.memory_retry_backoff_cap = Millis(4);
  options.max_memory_retries = 6;
  InferenceScheduler scheduler(&sim, &kvfs, &model, &device,
                               std::make_unique<EagerPolicy>(), options);
  LipRuntime runtime(&sim, &kvfs);
  runtime.set_pred_service(&scheduler);

  KvHandle pressure = *kvfs.CreateAnonymous(kAdminLip);
  std::vector<TokenRecord> filler(8 * kPageTokens);
  for (size_t i = 0; i < filler.size(); ++i) {
    filler[i] = TokenRecord{0, static_cast<int32_t>(i), 0};
  }
  ASSERT_TRUE(kvfs.Append(pressure, filler).ok());
  ASSERT_TRUE(kvfs.Pin(pressure).ok());

  Status status;
  runtime.Launch("doomed", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred_tokens(kv, 260, 261);
    status = dists.status();
    co_return;
  });
  sim.Run();

  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().memory_requeues, 6u);
  EXPECT_EQ(scheduler.stats().max_memory_retry_depth, 6u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

}  // namespace
}  // namespace symphony
