// Tests for SymphonyCluster: routing policies, namespace isolation, and
// aggregate accounting.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/serve/cluster.h"

namespace symphony {
namespace {

ClusterOptions TinyCluster(size_t replicas, RoutingPolicy routing) {
  ClusterOptions options;
  options.replicas = replicas;
  options.routing = routing;
  options.server.model = ModelConfig::Tiny();
  return options;
}

TEST(ClusterTest, RoundRobinCycles) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(3, RoutingPolicy::kRoundRobin));
  EXPECT_EQ(cluster.RouteFor(""), 0u);
  EXPECT_EQ(cluster.RouteFor(""), 1u);
  EXPECT_EQ(cluster.RouteFor(""), 2u);
  EXPECT_EQ(cluster.RouteFor(""), 0u);
}

TEST(ClusterTest, AffinityIsDeterministicPerKey) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(4, RoutingPolicy::kCacheAffinity));
  size_t first = cluster.RouteFor("topic-7");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cluster.RouteFor("topic-7"), first);
  }
  // Different keys spread across replicas.
  std::set<size_t> seen;
  for (int k = 0; k < 40; ++k) {
    seen.insert(cluster.RouteFor("topic-" + std::to_string(k)));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(ClusterTest, LeastLoadedPicksIdleReplica) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kLeastLoaded));
  // Occupy replica 0 with a long-running LIP.
  cluster.replica(0).Launch("sleeper", [](LipContext& ctx) -> Task {
    co_await ctx.sleep(Seconds(100));
    co_return;
  });
  sim.RunUntil(Millis(1));
  EXPECT_EQ(cluster.RouteFor("anything"), 1u);
}

TEST(ClusterTest, BoundedAffinityOverflowsUnderLoad) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kAffinityBounded);
  options.load_factor = 1.2;
  SymphonyCluster cluster(&sim, options);
  std::string key = "hot-topic";
  size_t preferred = cluster.RouteFor(key);
  // Saturate the preferred replica with live LIPs.
  for (int i = 0; i < 8; ++i) {
    cluster.replica(preferred).Launch("hog", [](LipContext& ctx) -> Task {
      co_await ctx.sleep(Seconds(100));
      co_return;
    });
  }
  sim.RunUntil(Millis(1));
  // 8 live on preferred vs 0 elsewhere: the bound (1.2 * 4.5) rejects it.
  EXPECT_NE(cluster.RouteFor(key), preferred);
}

TEST(ClusterTest, ReplicaNamespacesAreIsolated) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kRoundRobin));
  cluster.replica(0).Launch("writer", [&](LipContext& ctx) -> Task {
    (void)ctx.kv_create("/cache/doc", kModeShared);
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(cluster.replica(0).kvfs().Exists("/cache/doc"));
  EXPECT_FALSE(cluster.replica(1).kvfs().Exists("/cache/doc"));
}

TEST(ClusterTest, LaunchRoutesAndRuns) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kCacheAffinity));
  int done = 0;
  std::set<size_t> replicas_used;
  for (int i = 0; i < 8; ++i) {
    SymphonyCluster::ClusterLip lip = cluster.Launch(
        "job", "key-" + std::to_string(i),
        [&](LipContext& ctx) -> Task {
          KvHandle kv = *ctx.kv_tmp();
          StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
          if (d.ok()) {
            ++done;
          }
          co_return;
        });
    replicas_used.insert(lip.replica);
  }
  sim.Run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(replicas_used.size(), 2u);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.lips_completed, 8u);
  EXPECT_GT(snap.batches, 0u);
  EXPECT_EQ(snap.lips_per_replica.size(), 2u);
}

TEST(ClusterTest, ReplicasShareTheVirtualClock) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kRoundRobin));
  SimTime t0 = -1;
  SimTime t1 = -1;
  cluster.replica(0).Launch("a", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(10));
    t0 = ctx.now();
    co_return;
  });
  cluster.replica(1).Launch("b", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(20));
    t1 = ctx.now();
    co_return;
  });
  sim.Run();
  EXPECT_GE(t0, Millis(10));
  EXPECT_GE(t1, Millis(20));
  EXPECT_GE(sim.now(), Millis(20));
}

}  // namespace
}  // namespace symphony
