// Tests for SymphonyCluster: routing policies, namespace isolation, and
// aggregate accounting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

ClusterOptions TinyCluster(size_t replicas, RoutingPolicy routing) {
  ClusterOptions options;
  options.replicas = replicas;
  options.routing = routing;
  options.server.model = ModelConfig::Tiny();
  return options;
}

TEST(ClusterTest, RoundRobinCycles) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(3, RoutingPolicy::kRoundRobin));
  EXPECT_EQ(cluster.RouteFor(""), 0u);
  EXPECT_EQ(cluster.RouteFor(""), 1u);
  EXPECT_EQ(cluster.RouteFor(""), 2u);
  EXPECT_EQ(cluster.RouteFor(""), 0u);
}

TEST(ClusterTest, AffinityIsDeterministicPerKey) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(4, RoutingPolicy::kCacheAffinity));
  size_t first = cluster.RouteFor("topic-7");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cluster.RouteFor("topic-7"), first);
  }
  // Different keys spread across replicas.
  std::set<size_t> seen;
  for (int k = 0; k < 40; ++k) {
    seen.insert(cluster.RouteFor("topic-" + std::to_string(k)));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(ClusterTest, LeastLoadedPicksIdleReplica) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kLeastLoaded));
  // Occupy replica 0 with a long-running LIP.
  cluster.replica(0).Launch("sleeper", [](LipContext& ctx) -> Task {
    co_await ctx.sleep(Seconds(100));
    co_return;
  });
  sim.RunUntil(Millis(1));
  EXPECT_EQ(cluster.RouteFor("anything"), 1u);
}

TEST(ClusterTest, BoundedAffinityOverflowsUnderLoad) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kAffinityBounded);
  options.load_factor = 1.2;
  SymphonyCluster cluster(&sim, options);
  std::string key = "hot-topic";
  size_t preferred = cluster.RouteFor(key);
  // Saturate the preferred replica with live LIPs.
  for (int i = 0; i < 8; ++i) {
    cluster.replica(preferred).Launch("hog", [](LipContext& ctx) -> Task {
      co_await ctx.sleep(Seconds(100));
      co_return;
    });
  }
  sim.RunUntil(Millis(1));
  // 8 live on preferred vs 0 elsewhere: the bound (1.2 * 4.5) rejects it.
  EXPECT_NE(cluster.RouteFor(key), preferred);
}

TEST(ClusterTest, ReplicaNamespacesAreIsolated) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kRoundRobin));
  cluster.replica(0).Launch("writer", [&](LipContext& ctx) -> Task {
    (void)ctx.kv_create("/cache/doc", kModeShared);
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(cluster.replica(0).kvfs().Exists("/cache/doc"));
  EXPECT_FALSE(cluster.replica(1).kvfs().Exists("/cache/doc"));
}

TEST(ClusterTest, LaunchRoutesAndRuns) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kCacheAffinity));
  int done = 0;
  std::set<size_t> replicas_used;
  for (int i = 0; i < 8; ++i) {
    SymphonyCluster::ClusterLip lip = cluster.Launch(
        "job", "key-" + std::to_string(i),
        [&](LipContext& ctx) -> Task {
          KvHandle kv = *ctx.kv_tmp();
          StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
          if (d.ok()) {
            ++done;
          }
          co_return;
        });
    replicas_used.insert(lip.replica);
  }
  sim.Run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(replicas_used.size(), 2u);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.lips_completed, 8u);
  EXPECT_GT(snap.batches, 0u);
  EXPECT_EQ(snap.lips_per_replica.size(), 2u);
}

TEST(ClusterTest, ReplicasShareTheVirtualClock) {
  Simulator sim;
  SymphonyCluster cluster(&sim, TinyCluster(2, RoutingPolicy::kRoundRobin));
  SimTime t0 = -1;
  SimTime t1 = -1;
  cluster.replica(0).Launch("a", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(10));
    t0 = ctx.now();
    co_return;
  });
  cluster.replica(1).Launch("b", [&](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(20));
    t1 = ctx.now();
    co_return;
  });
  sim.Run();
  EXPECT_GE(t0, Millis(10));
  EXPECT_GE(t1, Millis(20));
  EXPECT_GE(sim.now(), Millis(20));
}

// ---- Cluster admission tier (reroute before shed) -----------------------

LipProgram LongSleeper() {
  return [](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(50));
    co_return;
  };
}

SymphonyServer::LaunchSpec SleeperSpec(const std::string& name) {
  SymphonyServer::LaunchSpec spec;
  spec.name = name;
  spec.program = LongSleeper();
  return spec;
}

TEST(ClusterAdmissionTest, RejectedSubmitsRerouteToLessLoadedReplica) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kCacheAffinity);
  options.server.admission.enabled = true;
  options.server.admission.max_live_lips = 2;
  options.server.admission.max_queue = 1;
  SymphonyCluster cluster(&sim, options);
  // One affinity key: every Submit routes to the same replica, which can
  // hold 2 running + 1 queued. The rest must spill to the other replica
  // instead of being shed.
  std::vector<SymphonyCluster::ClusterAdmitResult> results;
  for (int i = 0; i < 6; ++i) {
    results.push_back(
        cluster.Submit(SleeperSpec("s" + std::to_string(i)), "hot-key"));
  }
  size_t admitted = 0;
  size_t rerouted = 0;
  for (const auto& r : results) {
    if (r.result.status.ok()) {
      ++admitted;
    }
    if (r.rerouted) {
      ++rerouted;
    }
  }
  EXPECT_EQ(admitted, 6u);  // Nothing shed: the spare replica absorbed it.
  EXPECT_EQ(rerouted, 3u);  // 2 running + 1 queued fit on the routed pick.
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.submit_reroutes, 3u);
  EXPECT_EQ(snap.submit_sheds, 0u);
  sim.Run();
}

TEST(ClusterAdmissionTest, ShedsOnlyWhenEveryReplicaRejects) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kCacheAffinity);
  options.server.admission.enabled = true;
  options.server.admission.max_live_lips = 1;
  options.server.admission.max_queue = 1;
  SymphonyCluster cluster(&sim, options);
  // Capacity across the whole cluster: 2 running + 2 queued = 4.
  std::vector<SymphonyCluster::ClusterAdmitResult> results;
  for (int i = 0; i < 6; ++i) {
    results.push_back(
        cluster.Submit(SleeperSpec("s" + std::to_string(i)), "hot-key"));
  }
  size_t shed = 0;
  for (const auto& r : results) {
    if (!r.result.status.ok()) {
      ++shed;
      EXPECT_EQ(r.result.status.code(), StatusCode::kUnavailable);
      EXPECT_GT(r.result.retry_after, 0);  // Backpressure hint survives.
    }
  }
  EXPECT_EQ(shed, 2u);
  EXPECT_EQ(cluster.Snapshot().submit_sheds, 2u);
  sim.Run();
}

TEST(ClusterAdmissionTest, RerouteDisabledShedsAtTheRoutedReplica) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kCacheAffinity);
  options.server.admission.enabled = true;
  options.server.admission.max_live_lips = 1;
  options.server.admission.max_queue = 0;
  options.reroute_on_reject = false;
  SymphonyCluster cluster(&sim, options);
  ASSERT_TRUE(cluster.Submit(SleeperSpec("a"), "hot-key").result.status.ok());
  SymphonyCluster::ClusterAdmitResult second =
      cluster.Submit(SleeperSpec("b"), "hot-key");
  EXPECT_FALSE(second.result.status.ok());
  EXPECT_FALSE(second.rerouted);
  EXPECT_EQ(cluster.Snapshot().submit_sheds, 1u);
  sim.Run();
}

// ---- Cross-replica prefix sharing (src/store) ---------------------------

// Opens (or creates) the named file and appends `grow` tokens to it.
LipProgram PrefixUser(const std::string& path, int grow) {
  return [path, grow](LipContext& ctx) -> Task {
    StatusOr<KvHandle> kv = ctx.kv_open(path, /*write=*/true);
    if (!kv.ok()) {
      kv = ctx.kv_create(path, kModeShared);
    }
    if (!kv.ok()) {
      co_return;
    }
    for (int i = 0; i < grow; ++i) {
      auto d = co_await ctx.pred1(*kv, static_cast<TokenId>(3 + i % 5));
      if (!d.ok()) {
        co_return;
      }
      ctx.emit(".");
    }
    co_return;
  };
}

// A read-only consumer: bumps the file's open count without writing.
LipProgram Toucher(const std::string& path) {
  return [path](LipContext& ctx) -> Task {
    (void)ctx.kv_open(path);
    co_return;
  };
}

TEST(PrefixSharingTest, HotFilesWarmOtherReplicasThroughTheStore) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kCacheAffinity);
  options.share_min_opens = 2;
  options.share_min_tokens = 64;
  SymphonyCluster cluster(&sim, options);
  // Two LIPs on replica 0 build and re-open a hot 100-token named prefix.
  size_t home = cluster.RouteFor("doc");
  cluster.Launch("writer", "doc", PrefixUser("/shared/doc", 100));
  sim.RunUntil(Millis(400));
  cluster.Launch("reader", "doc", Toucher("/shared/doc"));
  sim.RunUntil(Millis(800));
  ASSERT_TRUE(cluster.replica(home).kvfs().Exists("/shared/doc"));
  size_t other = 1 - home;
  ASSERT_FALSE(cluster.replica(other).kvfs().Exists("/shared/doc"));

  size_t warmed = cluster.SharePrefixes();
  EXPECT_EQ(warmed, 1u);
  sim.Run();  // Let the deferred import land after its transfer time.
  EXPECT_TRUE(cluster.replica(other).kvfs().Exists("/shared/doc"));
  // The imported copy is byte-identical and lands on the host tier.
  KvFileInfo info = *cluster.replica(other).kvfs().StatPath("/shared/doc");
  EXPECT_EQ(info.length, 100u);
  EXPECT_EQ(info.gpu_pages, 0u);  // Imports land on the host tier.
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.prefix_publishes, 1u);
  EXPECT_EQ(snap.warm_imports, 1u);
  EXPECT_EQ(snap.warm_import_tokens, 100u);
  EXPECT_GT(snap.store.fetched_bytes, 0u);

  // A second pass at the same length is a no-op (already published+warm).
  EXPECT_EQ(cluster.SharePrefixes(), 0u);
  EXPECT_EQ(cluster.Snapshot().prefix_publishes, 1u);
}

TEST(PrefixSharingTest, ColdOrShortFilesAreNotShared) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kCacheAffinity);
  options.share_min_opens = 2;
  options.share_min_tokens = 64;
  SymphonyCluster cluster(&sim, options);
  // Opened twice but too short; long enough but opened once.
  cluster.Launch("short", "a", PrefixUser("/shared/short", 10));
  cluster.Launch("short2", "a", Toucher("/shared/short"));
  cluster.Launch("cold", "b", PrefixUser("/shared/cold", 100));
  sim.Run();
  EXPECT_EQ(cluster.SharePrefixes(), 0u);
  EXPECT_EQ(cluster.Snapshot().prefix_publishes, 0u);
}

// ---- Prefill/decode disaggregation --------------------------------------

// Stress-scalable seeds, same contract as PropertySeeds in property_test.cc.
std::vector<uint64_t> DisaggSeeds(std::vector<uint64_t> base, uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

// Prefills `prompt_len` deterministic tokens, then emits `decode_steps`
// greedy continuation tokens — the output fingerprints the whole KV state.
LipProgram PrefillThenDecode(uint64_t prompt_len, int decode_steps) {
  return [prompt_len, decode_steps](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt(prompt_len);
    for (size_t i = 0; i < prompt.size(); ++i) {
      prompt[i] = static_cast<TokenId>(1 + i % 299);
    }
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
    if (!d.ok()) {
      co_return;
    }
    TokenId next = d->back().Argmax();
    for (int i = 0; i < decode_steps; ++i) {
      ctx.emit(std::to_string(next) + " ");
      StatusOr<std::vector<Distribution>> dd = co_await ctx.pred1(kv, next);
      if (!dd.ok()) {
        co_return;
      }
      next = dd->back().Argmax();
    }
    co_return;
  };
}

TEST(DisaggregationTest, HintedLaunchesRouteToPrefillPool) {
  Simulator sim;
  ClusterOptions options = TinyCluster(3, RoutingPolicy::kLeastLoaded);
  options.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode,
                   ReplicaRole::kDecode};
  options.disagg_min_prefill_tokens = 64;
  SymphonyCluster cluster(&sim, options);
  EXPECT_EQ(cluster.RoleOf(0), ReplicaRole::kPrefill);
  // A qualifying hint goes to the prefill pool; an unhinted or sub-threshold
  // launch must never land behind another LIP's giant prefill.
  EXPECT_EQ(cluster.RouteFor("", 128), 0u);
  EXPECT_NE(cluster.RouteFor("", 0), 0u);
  EXPECT_NE(cluster.RouteFor("", 63), 0u);
  EXPECT_GT(cluster.Snapshot().disagg_prefill_routes, 0u);
}

TEST(DisaggregationTest, PrefillHandsOffToDecodePoolBitIdentically) {
  // The same program on a role-less single replica is the semantic oracle:
  // disaggregation moves the LIP between machines mid-life but must not
  // change a single emitted token.
  constexpr uint64_t kPrompt = 96;
  constexpr int kDecodes = 8;
  std::string expected;
  {
    Simulator sim;
    SymphonyCluster cluster(&sim, TinyCluster(1, RoutingPolicy::kLeastLoaded));
    SymphonyCluster::ClusterLip lip =
        cluster.Launch("oracle", "", PrefillThenDecode(kPrompt, kDecodes));
    sim.Run();
    ASSERT_TRUE(cluster.Done(lip));
    expected = cluster.Output(lip);
    ASSERT_FALSE(expected.empty());
  }

  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kLeastLoaded);
  options.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  options.disagg_min_prefill_tokens = 64;
  options.enable_recovery = true;
  // Large interval: the only journal fold is the one the handoff forces to
  // publish the prefilled KV through the store.
  options.checkpoint_journals = true;
  options.checkpoint_interval = 100000;
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip lip = cluster.Launch(
      "rag", "", /*prefill_hint_tokens=*/kPrompt,
      PrefillThenDecode(kPrompt, kDecodes));
  EXPECT_EQ(lip.replica, 0u);
  sim.Run();
  ASSERT_TRUE(cluster.Done(lip));
  EXPECT_EQ(cluster.Output(lip), expected);
  EXPECT_EQ(cluster.Locate(lip).replica, 1u);  // Decoding happened on D.
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.disagg_handoffs, 1u);
  EXPECT_EQ(snap.replay_divergences, 0u);
  EXPECT_GE(snap.checkpoints, 1u);   // Prefilled KV was force-published.
  EXPECT_GE(snap.delta_ships, 1u);   // ...so the ship was ref + suffix.
}

TEST(DisaggregationTest, SubThresholdPrefillStaysOnItsReplica) {
  Simulator sim;
  ClusterOptions options = TinyCluster(2, RoutingPolicy::kLeastLoaded);
  options.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  options.disagg_min_prefill_tokens = 512;
  options.enable_recovery = true;
  SymphonyCluster cluster(&sim, options);
  // The hint overstates the actual prefill, so the launch is steered to the
  // prefill replica — but the completed 96-token context is below the
  // threshold and the handoff must decline rather than pay the hop.
  SymphonyCluster::ClusterLip lip = cluster.Launch(
      "small", "", /*prefill_hint_tokens=*/512, PrefillThenDecode(96, 4));
  EXPECT_EQ(lip.replica, 0u);
  sim.Run();
  ASSERT_TRUE(cluster.Done(lip));
  EXPECT_EQ(cluster.Locate(lip).replica, 0u);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.disagg_handoffs, 0u);
  EXPECT_GE(snap.disagg_handoff_skips, 1u);
}

// Kill/replay during a chunked prefill: the journal holds no trace of
// partially executed chunks (a pred journals only on completion), so the
// survivor re-runs the whole pred — chunked again — and the output must be
// bit-identical to an undisturbed run.
class ChunkedKillSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChunkedKillSweepTest, KillMidChunkedPrefillReplaysBitIdentical) {
  Rng rng(GetParam());
  const uint64_t prompt_len = 64 + rng.NextBounded(128);
  const SimDuration kill_at = Micros(100) + Micros(rng.NextBounded(3000));

  auto run = [&](bool kill) -> std::string {
    Simulator sim;
    ClusterOptions options = TinyCluster(2, RoutingPolicy::kLeastLoaded);
    options.enable_recovery = true;
    options.server.scheduler.prefill_chunk_tokens = 8;
    options.server.scheduler.decode_priority = true;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip lip =
        cluster.Launch("victim", "", PrefillThenDecode(prompt_len, 6));
    if (kill) {
      sim.ScheduleAt(kill_at, [&] {
        size_t where = cluster.Locate(lip).replica;
        if (!cluster.replica_dead(where)) {
          (void)cluster.KillReplica(where);
        }
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(lip)) << "kill=" << kill;
    EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
    return cluster.Output(lip);
  };
  std::string undisturbed = run(false);
  ASSERT_FALSE(undisturbed.empty());
  EXPECT_EQ(run(true), undisturbed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkedKillSweepTest,
                         ::testing::ValuesIn(DisaggSeeds({1, 2, 3}, 0xD1)));

// Kill/replay around the prefill->decode handoff: depending on the seed the
// kill lands before the handoff (on the prefill replica), while the shipped
// journal is in flight, or after decoding started on the target — the output
// must be bit-identical in every case.
class DisaggKillSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisaggKillSweepTest, KillAroundHandoffReplaysBitIdentical) {
  Rng rng(GetParam());
  const uint64_t prompt_len = 64 + rng.NextBounded(128);
  const SimDuration kill_at = Micros(100) + Micros(rng.NextBounded(4000));

  auto run = [&](bool kill) -> std::string {
    Simulator sim;
    ClusterOptions options = TinyCluster(3, RoutingPolicy::kLeastLoaded);
    options.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode,
                     ReplicaRole::kDecode};
    options.disagg_min_prefill_tokens = 32;
    options.enable_recovery = true;
    options.checkpoint_journals = true;
    options.server.scheduler.prefill_chunk_tokens = 16;
    options.server.scheduler.decode_priority = true;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip lip = cluster.Launch(
        "handoff", "", /*prefill_hint_tokens=*/prompt_len,
        PrefillThenDecode(prompt_len, 6));
    if (kill) {
      sim.ScheduleAt(kill_at, [&] {
        size_t where = cluster.Locate(lip).replica;
        if (!cluster.replica_dead(where)) {
          (void)cluster.KillReplica(where);
        }
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(lip)) << "kill=" << kill;
    EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
    return cluster.Output(lip);
  };
  std::string undisturbed = run(false);
  ASSERT_FALSE(undisturbed.empty());
  EXPECT_EQ(run(true), undisturbed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DisaggKillSweepTest,
                         ::testing::ValuesIn(DisaggSeeds({1, 2, 3}, 0xD2)));

}  // namespace
}  // namespace symphony
