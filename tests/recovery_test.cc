// Tests for src/recovery: syscall journaling, replay, KVFS snapshots, and
// cluster fault injection / live migration.
//
// The acceptance property (ISSUE 1): a LIP killed mid-generation and
// replayed on another replica produces bit-identical final output to an
// uninterrupted run — property-tested across seeds, random kill times, and
// all recovery modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/recovery/replayer.h"
#include "src/serve/cluster.h"
#include "src/store/journal_checkpoint.h"

namespace symphony {
namespace {

// A multi-turn tool-calling agent: samples tokens (RNG-dependent), calls a
// tool whose args depend on generated state, sleeps between turns, and emits
// everything. Captures nothing by reference so the cluster's retained copy
// can re-run it during replay.
LipProgram MakeAgent(int turns) {
  return [turns](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2 w3");
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Sample(ctx.uniform(), 0.8);
    for (int turn = 0; turn < turns; ++turn) {
      for (int i = 0; i < 6 && next != kEosToken; ++i) {
        ctx.emit(ctx.tokenizer().TokenToString(next) + " ");
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
        if (!d.ok()) {
          co_return;
        }
        next = d->back().Sample(ctx.uniform(), 0.8);
      }
      StatusOr<std::string> out = co_await ctx.call_tool(
          "calc", std::to_string(turn) + " + " + std::to_string(next));
      if (out.ok()) {
        ctx.emit("[" + *out + "]");
      }
      co_await ctx.sleep(Millis(1));
      if (next == kEosToken) {
        break;
      }
    }
    co_return;
  };
}

ClusterOptions RecoveryCluster(uint64_t seed, RecoveryMode mode) {
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.enable_recovery = true;
  options.recovery_mode = mode;
  return options;
}

void RegisterTools(SymphonyCluster& cluster) {
  for (size_t i = 0; i < cluster.replica_count(); ++i) {
    ASSERT_TRUE(cluster.replica(i)
                    .tools()
                    .Register(ToolRegistry::Calculator("calc", Millis(2)))
                    .ok());
  }
}

struct RunResult {
  std::string output;
  SimTime finish = 0;
  uint64_t pred_tokens_used = 0;
};

// Runs one agent to completion; optionally kills its replica at
// `kill_frac x baseline_finish` virtual time.
RunResult RunAgent(uint64_t seed, RecoveryMode mode,
                   std::optional<double> kill_frac, SimTime baseline_finish) {
  Simulator sim;
  SymphonyCluster cluster(&sim, RecoveryCluster(seed, mode));
  RegisterTools(cluster);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(4));
  if (kill_frac.has_value()) {
    SimTime kill_at =
        static_cast<SimTime>(*kill_frac * static_cast<double>(baseline_finish));
    sim.ScheduleAt(kill_at,
                   [&cluster, id] { (void)cluster.KillReplica(id.replica); });
  }
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
  RunResult result;
  result.output = cluster.Output(id);
  result.finish = sim.now();
  SymphonyCluster::ClusterLip where = cluster.Locate(id);
  result.pred_tokens_used =
      cluster.replica(where.replica).runtime().GetUsage(where.lip).pred_tokens;
  return result;
}

// ---- The acceptance property ------------------------------------------

TEST(RecoveryTest, KilledLipReplaysBitIdenticalAcrossSeeds) {
  Rng kill_rng(0xBADF00DULL);
  constexpr RecoveryMode kModes[] = {RecoveryMode::kAuto,
                                     RecoveryMode::kRecompute,
                                     RecoveryMode::kImportSnapshot};
  for (int trial = 0; trial < 12; ++trial) {
    uint64_t seed = 1000 + static_cast<uint64_t>(trial) * 17;
    RecoveryMode mode = kModes[trial % 3];
    RunResult baseline = RunAgent(seed, mode, std::nullopt, 0);
    ASSERT_FALSE(baseline.output.empty());
    ASSERT_GT(baseline.finish, 0u);
    // Random kill time mid-run.
    double frac = 0.05 + 0.85 * kill_rng.NextDouble();
    RunResult killed = RunAgent(seed, mode, frac, baseline.finish);
    EXPECT_EQ(killed.output, baseline.output)
        << "seed=" << seed << " mode=" << RecoveryModeName(mode)
        << " kill_frac=" << frac;
  }
}

// ---- Quota carry-over (a migration must not reset LipUsage) ------------

TEST(RecoveryTest, QuotaUsageCarriesOverAcrossFailover) {
  auto run = [](bool kill) {
    Simulator sim;
    SymphonyCluster cluster(&sim, RecoveryCluster(7, RecoveryMode::kAuto));
    RegisterTools(cluster);
    SymphonyCluster::ClusterLip id = cluster.Launch("limited", "", MakeAgent(8));
    LipQuota quota;
    quota.max_pred_tokens = 14;  // Cuts generation short mid-turn.
    cluster.replica(id.replica).runtime().SetQuota(id.lip, quota);
    if (kill) {
      sim.ScheduleAt(Millis(40),
                     [&cluster, id] { (void)cluster.KillReplica(id.replica); });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(id));
    SymphonyCluster::ClusterLip where = cluster.Locate(id);
    LipUsage usage =
        cluster.replica(where.replica).runtime().GetUsage(where.lip);
    return std::make_pair(cluster.Output(id), usage.pred_tokens);
  };
  auto [baseline_output, baseline_used] = run(false);
  auto [killed_output, killed_used] = run(true);
  // The quota bit: replay re-runs the accounting, so usage on the new
  // replica equals the uninterrupted run's — the kill resets nothing.
  EXPECT_EQ(killed_used, baseline_used);
  EXPECT_LE(killed_used, 14u);
  EXPECT_EQ(killed_output, baseline_output);
}

// ---- Live migration ----------------------------------------------------

TEST(RecoveryTest, LiveMigrationPreservesOutput) {
  RunResult baseline = RunAgent(42, RecoveryMode::kAuto, std::nullopt, 0);
  ASSERT_FALSE(baseline.output.empty());

  Simulator sim;
  SymphonyCluster cluster(&sim, RecoveryCluster(42, RecoveryMode::kAuto));
  // (Can't reuse RunAgent: we need to call Migrate mid-run.)
  for (size_t i = 0; i < cluster.replica_count(); ++i) {
    ASSERT_TRUE(cluster.replica(i)
                    .tools()
                    .Register(ToolRegistry::Calculator("calc", Millis(2)))
                    .ok());
  }
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(4));
  SimTime migrate_at = baseline.finish / 2;
  sim.ScheduleAt(migrate_at, [&cluster, id] {
    SymphonyCluster::ClusterLip where = cluster.Locate(id);
    Status st = cluster.Migrate(where, 1 - where.replica);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  EXPECT_EQ(cluster.Output(id), baseline.output);
  EXPECT_EQ(cluster.Locate(id).replica, 1u - id.replica);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.migrations, 1u);
  EXPECT_EQ(snap.replay_divergences, 0u);
}

TEST(RecoveryTest, MigrateRejectsDeadTargetsAndUnknownLips) {
  Simulator sim;
  SymphonyCluster cluster(&sim, RecoveryCluster(1, RecoveryMode::kAuto));
  RegisterTools(cluster);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(1));
  EXPECT_FALSE(cluster.Migrate(id, 99).ok());
  EXPECT_FALSE(cluster.Migrate(id, id.replica).ok());
  SymphonyCluster::ClusterLip bogus{0, 123, 9999};
  EXPECT_FALSE(cluster.Migrate(bogus, 1).ok());
  sim.Run();
}

// ---- IPC-coupled LIPs co-migrate and replay through real channels ------

TEST(RecoveryTest, IpcPairSurvivesReplicaKill) {
  LipProgram producer = [](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred(kv, ctx.tokenizer().Encode("w4 w5"));
    if (!d.ok()) {
      co_return;
    }
    TokenId t = d->back().Argmax();
    for (int i = 0; i < 4; ++i) {
      co_await ctx.send("pipe", "msg" + std::to_string(t + i));
      co_await ctx.sleep(Millis(1));
    }
    ctx.emit("sent");
    co_return;
  };
  LipProgram consumer = [](LipContext& ctx) -> Task {
    for (int i = 0; i < 4; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("pipe");
      if (!msg.ok()) {
        co_return;
      }
      ctx.emit(*msg + ";");
    }
    co_return;
  };
  auto run = [&](bool kill) {
    Simulator sim;
    ClusterOptions options = RecoveryCluster(3, RecoveryMode::kAuto);
    options.routing = RoutingPolicy::kCacheAffinity;  // Same key → same replica.
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "pair", producer);
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "pair", consumer);
    EXPECT_EQ(prod.replica, cons.replica);
    if (kill) {
      sim.ScheduleAt(Micros(2500), [&cluster, prod] {
        (void)cluster.KillReplica(prod.replica);
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(cons));
    EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
    return cluster.Output(prod) + "|" + cluster.Output(cons);
  };
  std::string baseline = run(false);
  std::string killed = run(true);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(killed, baseline);
}

// ---- Routing and rebalancing ------------------------------------------

TEST(RecoveryTest, RouterSkipsDeadReplicas) {
  Simulator sim;
  ClusterOptions options = RecoveryCluster(5, RecoveryMode::kAuto);
  options.replicas = 3;
  SymphonyCluster cluster(&sim, options);
  ASSERT_TRUE(cluster.KillReplica(1).ok());
  EXPECT_TRUE(cluster.replica_dead(1));
  for (int i = 0; i < 9; ++i) {
    EXPECT_NE(cluster.RouteFor(""), 1u);
  }
  // Affinity keys that hash to the dead replica fall through to a live one.
  for (int k = 0; k < 20; ++k) {
    ClusterOptions affinity_options = options;
    EXPECT_NE(cluster.RouteFor("key-" + std::to_string(k)), 1u);
  }
  EXPECT_FALSE(cluster.KillReplica(1).ok());  // Already dead.
}

TEST(RecoveryTest, RebalanceShedsOverloadedReplica) {
  Simulator sim;
  ClusterOptions options = RecoveryCluster(11, RecoveryMode::kAuto);
  options.routing = RoutingPolicy::kCacheAffinity;
  SymphonyCluster cluster(&sim, options);
  RegisterTools(cluster);
  std::vector<SymphonyCluster::ClusterLip> ids;
  for (int i = 0; i < 6; ++i) {
    // One affinity key: all six land on the same replica.
    ids.push_back(cluster.Launch("agent" + std::to_string(i), "hot-key",
                                 MakeAgent(3)));
  }
  size_t loaded = ids[0].replica;
  sim.RunUntil(Millis(5));
  size_t moved = cluster.Rebalance();
  EXPECT_GT(moved, 0u);
  sim.Run();
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.migrations, moved);
  EXPECT_EQ(snap.replay_divergences, 0u);
  size_t elsewhere = 0;
  for (const SymphonyCluster::ClusterLip& id : ids) {
    EXPECT_TRUE(cluster.Done(id));
    EXPECT_FALSE(cluster.Output(id).empty());
    if (cluster.Locate(id).replica != loaded) {
      ++elsewhere;
    }
  }
  EXPECT_EQ(elsewhere, moved);
}

TEST(RecoveryTest, AutoRebalanceRunsAndDrains) {
  Simulator sim;
  ClusterOptions options = RecoveryCluster(13, RecoveryMode::kAuto);
  options.routing = RoutingPolicy::kCacheAffinity;
  SymphonyCluster cluster(&sim, options);
  RegisterTools(cluster);
  std::vector<SymphonyCluster::ClusterLip> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(cluster.Launch("agent" + std::to_string(i), "hot-key",
                                 MakeAgent(2)));
  }
  cluster.StartAutoRebalance(Millis(2));
  sim.Run();  // Terminates: the rebalance chain stops once lips drain.
  for (const SymphonyCluster::ClusterLip& id : ids) {
    EXPECT_TRUE(cluster.Done(id));
  }
}

// ---- KVFS snapshot export/import --------------------------------------

TEST(RecoveryTest, KvfsSnapshotRoundTrip) {
  KvfsOptions fs_options;
  Kvfs source(fs_options);
  KvHandle handle = *source.CreateAnonymous(kAdminLip);
  std::vector<TokenRecord> records;
  for (uint32_t i = 0; i < 40; ++i) {
    records.push_back(TokenRecord{static_cast<TokenId>(i + 5),
                                  static_cast<int32_t>(i),
                                  0x1234ULL + i});
  }
  ASSERT_TRUE(source.Append(handle, records).ok());
  StatusOr<KvFileSnapshot> snapshot = source.ExportSnapshot(handle);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->records.size(), records.size());
  EXPECT_EQ(source.stats().snapshot_exports, 1u);

  Kvfs target(fs_options);
  StatusOr<KvHandle> imported = target.ImportSnapshot(*snapshot, kAdminLip);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(*target.Length(*imported), records.size());
  for (uint32_t i = 0; i < records.size(); ++i) {
    TokenRecord rec = *target.Read(*imported, i);
    EXPECT_EQ(rec.token, records[i].token);
    EXPECT_EQ(rec.position, records[i].position);
    EXPECT_EQ(rec.state, records[i].state);
  }
  // Host-tier by default: restore pays PCIe lazily, not at import time.
  KvFileInfo info = *target.Stat(*imported);
  EXPECT_EQ(info.gpu_pages, 0u);
  EXPECT_GT(info.host_pages, 0u);
  EXPECT_EQ(target.stats().snapshot_imports, 1u);
  EXPECT_EQ(target.stats().imported_tokens, records.size());
}

// ---- Cost-model choice -------------------------------------------------

TEST(RecoveryTest, ImportBeatsRecomputeForLargeContexts) {
  CostModel cost(ModelConfig::Llama13B());
  EXPECT_LT(Replayer::ImportCost(cost, 1000),
            Replayer::RecomputeCost(cost, 1000));
  EXPECT_EQ(Replayer::Choose(cost, 1000), RecoveryMode::kImportSnapshot);
  EXPECT_EQ(Replayer::Choose(cost, 0), RecoveryMode::kRecompute);
}

// ---- Journal bookkeeping ----------------------------------------------

// ---- Checkpoint truncation + delta migration (src/store) ---------------

// Mirrors property_test.cc's stress-scalable seed lists: curated base seeds
// by default, widened with derived seeds when SYMPHONY_STRESS is set.
std::vector<uint64_t> StressSeeds(std::vector<uint64_t> base, uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

constexpr uint64_t kCheckpointInterval = 8;

ClusterOptions CheckpointCluster(uint64_t seed, bool delta) {
  ClusterOptions options = RecoveryCluster(seed, RecoveryMode::kAuto);
  options.checkpoint_journals = true;
  options.checkpoint_interval = kCheckpointInterval;
  options.delta_migration = delta;
  return options;
}

struct CheckpointRun {
  std::string output;
  SimTime finish = 0;
  SymphonyCluster::ClusterSnapshot snap;
  uint64_t max_live_seen = 0;   // Peak live entries a mid-run probe saw.
  size_t store_snapshots = 0;   // Snapshots still referenced at the end.
};

// Runs one checkpointed agent, probing its journal's resident entry count
// every 500us; optionally kills its replica mid-run.
CheckpointRun RunCheckpointedAgent(uint64_t seed, bool delta,
                                   std::optional<double> kill_frac,
                                   SimTime baseline_finish) {
  Simulator sim;
  SymphonyCluster cluster(&sim, CheckpointCluster(seed, delta));
  RegisterTools(cluster);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(4));
  CheckpointRun run;
  bool killed = false;
  std::function<void()> probe = [&] {
    if (cluster.Done(id)) {
      return;
    }
    SymphonyCluster::ClusterLip where = cluster.Locate(id);
    if (!cluster.replica_dead(where.replica)) {
      std::shared_ptr<SyscallJournal> journal =
          cluster.replica(where.replica).runtime().Journal(where.lip);
      // Skip the transient rehydrated state right after a failover replay:
      // the first post-replay append folds it back under the bound.
      if (journal != nullptr && !killed) {
        run.max_live_seen = std::max(run.max_live_seen,
                                     journal->live_entries());
      }
    }
    sim.ScheduleAfter(Micros(500), probe);
  };
  sim.ScheduleAfter(Micros(500), probe);
  if (kill_frac.has_value()) {
    SimTime kill_at =
        static_cast<SimTime>(*kill_frac * static_cast<double>(baseline_finish));
    sim.ScheduleAt(kill_at, [&cluster, &killed, id] {
      killed = true;
      (void)cluster.KillReplica(id.replica);
    });
  }
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  run.output = cluster.Output(id);
  run.finish = sim.now();
  run.snap = cluster.Snapshot();
  run.store_snapshots = cluster.store().snapshot_count();
  EXPECT_EQ(run.snap.replay_divergences, 0u);
  return run;
}

class CheckpointPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The satellite property: with truncation on, the journal's resident entry
// count stays bounded (<= 2x the checkpoint interval) for the whole run, and
// replay after a random-time kill is still bit-identical — the truncated
// prefix comes back from the store, not from luck.
TEST_P(CheckpointPropertyTest, TruncationBoundsJournalAndKillStaysBitIdentical) {
  uint64_t seed = GetParam();
  RunResult plain = RunAgent(seed, RecoveryMode::kAuto, std::nullopt, 0);
  ASSERT_FALSE(plain.output.empty());

  // Checkpointing must not perturb execution: same output, journal bounded.
  CheckpointRun baseline =
      RunCheckpointedAgent(seed, /*delta=*/true, std::nullopt, 0);
  EXPECT_EQ(baseline.output, plain.output);
  EXPECT_GT(baseline.snap.checkpoints, 0u);
  EXPECT_GT(baseline.snap.checkpoint_entries_folded, 0u);
  EXPECT_LE(baseline.max_live_seen, 2 * kCheckpointInterval);
  // Completed LIPs release their checkpoints: nothing leaks in the store.
  EXPECT_EQ(baseline.store_snapshots, 0u);

  // Kill at a seed-derived random time: replay from (checkpoint + suffix).
  Rng kill_rng(seed ^ 0xC0FFEEULL);
  double frac = 0.05 + 0.85 * kill_rng.NextDouble();
  CheckpointRun after_kill =
      RunCheckpointedAgent(seed, /*delta=*/true, frac, plain.finish);
  EXPECT_EQ(after_kill.output, plain.output) << "seed=" << seed
                                             << " kill_frac=" << frac;
  EXPECT_EQ(after_kill.snap.failovers, 1u);
  EXPECT_EQ(after_kill.store_snapshots, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {201, 202, 203, 204, 205, 206}, 0xC4)));

TEST(RecoveryTest, DeltaMigrationShipsFewerBytesThanFullReplay) {
  uint64_t seed = 77;
  RunResult plain = RunAgent(seed, RecoveryMode::kAuto, std::nullopt, 0);
  ASSERT_FALSE(plain.output.empty());
  CheckpointRun delta =
      RunCheckpointedAgent(seed, /*delta=*/true, 0.7, plain.finish);
  CheckpointRun full =
      RunCheckpointedAgent(seed, /*delta=*/false, 0.7, plain.finish);
  // Same recovery, either way.
  EXPECT_EQ(delta.output, plain.output);
  EXPECT_EQ(full.output, plain.output);
  // The delta run shipped only the live suffix; the full run re-shipped the
  // whole rehydrated log.
  EXPECT_EQ(delta.snap.delta_ships, 1u);
  EXPECT_EQ(delta.snap.full_ships, 0u);
  EXPECT_EQ(full.snap.delta_ships, 0u);
  EXPECT_EQ(full.snap.full_ships, 1u);
  EXPECT_LT(delta.snap.ship_bytes, full.snap.ship_bytes);
}

TEST(RecoveryTest, ReplayRejectsTruncatedJournalUntilRehydrated) {
  // A journal with a truncated prefix must be rejected by replay — silently
  // replaying only the live suffix would diverge.
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  SymphonyServer server(&sim, options);
  LipProgram idle = [](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(1));
    co_return;
  };
  LipId lip = server.runtime().Launch("idle", idle);
  auto journal = std::make_shared<SyscallJournal>();
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kSleep;
  entry.duration = Millis(1);
  journal->Append("0", entry);
  journal->FoldPrefix(/*key=*/123);
  server.runtime().EnableJournal(lip, journal);
  ModelConfig config = ModelConfig::Tiny();
  Status began =
      server.runtime().BeginReplay(lip, RecoveryMode::kRecompute, &config);
  EXPECT_EQ(began.code(), StatusCode::kFailedPrecondition);
  sim.Run();
}

TEST(RecoveryTest, JournalRecordsSyscallsPerThreadPath) {
  Simulator sim;
  SymphonyCluster cluster(&sim, RecoveryCluster(21, RecoveryMode::kAuto));
  RegisterTools(cluster);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(2));
  sim.Run();
  std::shared_ptr<SyscallJournal> journal =
      cluster.replica(id.replica).runtime().Journal(id.lip);
  ASSERT_NE(journal, nullptr);
  EXPECT_GT(journal->total_entries(), 0u);
  EXPECT_GT(journal->pred_tokens(), 0u);
  EXPECT_GT(journal->EntryCount("0"), 0u);  // Root thread path.
  EXPECT_EQ(journal->name, "agent");
}

}  // namespace
}  // namespace symphony
