// Cross-module integration tests: end-to-end invariants that only hold if
// the whole stack (runtime + scheduler + device + KVFS + model) cooperates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/baseline/prompt_server.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

ServerOptions TinyOptions() {
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  return options;
}

// Greedy continuation from a cached/forked prefix must emit the same tokens
// as recomputing the whole context from scratch.
TEST(IntegrationTest, CachedForkEqualsRecompute) {
  std::vector<TokenId> doc;
  for (int i = 0; i < 100; ++i) {
    doc.push_back(static_cast<TokenId>(260 + (i % 40)));
  }
  std::vector<TokenId> query = {270, 271, 272};
  constexpr int kSteps = 10;

  auto generate = [&](bool use_cache) {
    Simulator sim;
    SymphonyServer server(&sim, TinyOptions());
    std::vector<TokenId> out;
    if (use_cache) {
      // First LIP publishes the doc KV; second forks it.
      server.Launch("publisher", [&](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_create("/cache/doc", kModeShared);
        (void)co_await ctx.pred(kv, doc);
        (void)ctx.kv_close(kv);
        co_return;
      });
      sim.Run();
    }
    server.Launch("consumer", [&](LipContext& ctx) -> Task {
      KvHandle kv{};
      if (use_cache) {
        KvHandle shared = *ctx.kv_open("/cache/doc");
        kv = *ctx.kv_fork(shared);
        (void)ctx.kv_close(shared);
      } else {
        kv = *ctx.kv_tmp();
        (void)co_await ctx.pred(kv, doc);
      }
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, query);
      if (!d.ok()) {
        co_return;
      }
      TokenId t = d->back().Argmax();
      for (int i = 0; i < kSteps; ++i) {
        out.push_back(t);
        StatusOr<std::vector<Distribution>> next = co_await ctx.pred1(kv, t);
        if (!next.ok()) {
          co_return;
        }
        t = next->back().Argmax();
      }
      co_return;
    });
    sim.Run();
    return out;
  };

  std::vector<TokenId> cached = generate(true);
  std::vector<TokenId> recomputed = generate(false);
  ASSERT_EQ(cached.size(), static_cast<size_t>(kSteps));
  EXPECT_EQ(cached, recomputed);
}

// Symphony and the baseline prompt server run the same model: greedy
// completions must agree token for token.
TEST(IntegrationTest, SymphonyAndBaselineAgreeOnGreedyTokens) {
  std::vector<TokenId> prompt = {260, 261, 262, 263, 264};
  constexpr int kSteps = 8;

  std::vector<TokenId> from_baseline;
  {
    Simulator sim;
    BaselineOptions options = PromptServer::TgiLike();
    options.model = ModelConfig::Tiny();
    PromptServer server(&sim, options);
    CompletionRequest request;
    request.prompt = prompt;
    request.max_new_tokens = kSteps;
    request.stop_at_eos = false;
    request.done = [&](const CompletionResponse& r) { from_baseline = r.tokens; };
    server.Submit(std::move(request));
    sim.Run();
  }

  std::vector<TokenId> from_symphony;
  {
    Simulator sim;
    SymphonyServer server(&sim, TinyOptions());
    server.Launch("gen", [&](LipContext& ctx) -> Task {
      KvHandle kv = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
      if (!d.ok()) {
        co_return;
      }
      TokenId t = d->back().Argmax();
      for (int i = 0; i < kSteps; ++i) {
        from_symphony.push_back(t);
        StatusOr<std::vector<Distribution>> next = co_await ctx.pred1(kv, t);
        if (!next.ok()) {
          co_return;
        }
        t = next->back().Argmax();
      }
      co_return;
    });
    sim.Run();
  }

  EXPECT_EQ(from_baseline, from_symphony);
}

// Whole-server determinism: identical runs produce identical virtual end
// times, outputs, and device statistics.
TEST(IntegrationTest, WholeServerRunsAreDeterministic) {
  auto run = [] {
    Simulator sim;
    SymphonyServer server(&sim, TinyOptions());
    (void)server.tools().Register(ToolRegistry::Lookup("fetch", Millis(15)));
    std::string transcript;
    for (int i = 0; i < 6; ++i) {
      server.Launch("lip-" + std::to_string(i), [&, i](LipContext& ctx) -> Task {
        KvHandle kv = *ctx.kv_tmp();
        StatusOr<std::vector<Distribution>> d =
            co_await ctx.pred_tokens(kv, 260 + i, 261, 262);
        if (!d.ok()) {
          co_return;
        }
        TokenId t = d->back().Sample(ctx.uniform(), 0.9);
        StatusOr<std::string> fetched =
            co_await ctx.call_tool("fetch", std::to_string(i));
        transcript += std::to_string(t) + ":" + fetched.value_or("?") + ";";
        co_return;
      });
    }
    sim.Run();
    return std::make_tuple(sim.now(), transcript,
                           server.device().stats().batches,
                           server.kvfs().pool().stats().allocations);
  };
  EXPECT_EQ(run(), run());
}

// Page accounting balances after heavy churn of fork/extract/merge/remove.
TEST(IntegrationTest, PageAccountingBalancesAfterChurn) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  server.Launch("churn", [&](LipContext& ctx) -> Task {
    for (int round = 0; round < 10; ++round) {
      KvHandle base = *ctx.kv_tmp();
      std::vector<TokenId> toks;
      for (int i = 0; i < 40; ++i) {
        toks.push_back(static_cast<TokenId>(260 + ((round + i) % 40)));
      }
      (void)co_await ctx.pred(base, toks);

      KvHandle fork = *ctx.kv_fork(base);
      (void)co_await ctx.pred1(fork, 270);

      std::vector<uint64_t> keep = {0, 1, 2, 10, 20, 39};
      KvHandle pruned = *ctx.kv_extract(base, keep);

      std::vector<KvHandle> sources = {pruned, fork};
      KvHandle merged = *ctx.kv_merge(sources);
      (void)merged;

      // Close some, leak others: process exit must reclaim everything.
      (void)ctx.kv_close(base);
      (void)ctx.kv_close(pruned);
    }
    co_return;
  });
  sim.Run();
  EXPECT_EQ(server.kvfs().pool().stats().gpu_pages_used, 0u);
  EXPECT_EQ(server.kvfs().pool().stats().host_pages_used, 0u);
  EXPECT_TRUE(server.kvfs().ListAll().empty());
}

// A pred in flight while another LIP appends to the same file must fail the
// re-validation instead of corrupting the file.
TEST(IntegrationTest, ConcurrentSharedFileModificationDetected) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  Status slow_status;

  server.Launch("owner", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_create("/shared/ctx", kModePublic);
    (void)co_await ctx.pred_tokens(kv, 260, 261);
    co_await ctx.send("ready", "go");
    // Submit a pred, and while it is queued/executing the intruder appends.
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 262);
    slow_status = d.status();
    co_return;
  });
  server.Launch("intruder", [&](LipContext& ctx) -> Task {
    (void)co_await ctx.recv("ready");
    StatusOr<KvHandle> kv = ctx.kv_open("/shared/ctx", /*write=*/true);
    if (!kv.ok()) {
      co_return;
    }
    // Direct append through KVFS (no model work), racing the owner's pred.
    std::vector<TokenRecord> rogue = {TokenRecord{299, 2, 12345u}};
    (void)ctx.runtime_for_testing()->kvfs()->Append(*kv, rogue);
    co_return;
  });
  sim.Run();
  // Either the owner's pred lost the race (invalid continuation) or it
  // completed first and the rogue append extended a valid file; both leave
  // the system consistent. With this event ordering the pred must fail.
  EXPECT_EQ(slow_status.code(), StatusCode::kInvalidArgument);
}

// Offload + restore through the pred path preserves contents exactly.
TEST(IntegrationTest, OffloadRestoreRoundTripThroughPred) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  bool match = false;
  server.Launch("roundtrip", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt;
    for (int i = 0; i < 50; ++i) {
      prompt.push_back(static_cast<TokenId>(260 + (i % 40)));
    }
    (void)co_await ctx.pred(kv, prompt);
    HiddenState before = *ctx.runtime_for_testing()->kvfs()->TailState(kv);
    (void)ctx.kv_offload(kv);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 270);
    if (!d.ok()) {
      co_return;
    }
    // Recompute what the tail state should be.
    Model model(ModelConfig::Tiny());
    HiddenState expected = model.Advance(before, 270, 50);
    match = (*ctx.runtime_for_testing()->kvfs()->TailState(kv) == expected);
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(match);
}

// Natural termination: with a strong EOS bias, greedy generation ends on its
// own and the file stops growing.
TEST(IntegrationTest, EosTerminatesGeneration) {
  Simulator sim;
  ServerOptions options = TinyOptions();
  options.model.eos_bias_permille = 300;
  SymphonyServer server(&sim, options);
  int generated = 0;
  bool saw_eos = false;
  server.Launch("short", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred_tokens(kv, 260);
    if (!d.ok()) {
      co_return;
    }
    TokenId t = d->back().Argmax();
    for (int i = 0; i < 500; ++i) {
      if (t == kEosToken) {
        saw_eos = true;
        break;
      }
      ++generated;
      StatusOr<std::vector<Distribution>> next = co_await ctx.pred1(kv, t);
      if (!next.ok()) {
        co_return;
      }
      t = next->back().Argmax();
    }
    co_return;
  });
  sim.Run();
  EXPECT_TRUE(saw_eos);
  EXPECT_LT(generated, 500);
}

// Memory-pressure preemption: more concurrent LIP KV than the device holds
// must stall-and-retry, not fail, as long as LIPs eventually finish.
TEST(IntegrationTest, MemoryPressureRequeuesInsteadOfFailing) {
  Simulator sim;
  ServerOptions options = TinyOptions();
  // Tiny device: KV budget ~192 tokens at Tiny geometry.
  options.hardware.hbm_bytes = options.model.WeightBytes() +
                               options.hardware.activation_reserve_bytes +
                               options.model.KvBytesPerToken() * 192;
  SymphonyServer server(&sim, options);
  int completed = 0;
  constexpr int kLips = 8;  // 8 x 48 tokens = 2x the budget.
  for (int i = 0; i < kLips; ++i) {
    server.Launch(
        "big-" + std::to_string(i),
        [&, i](LipContext& ctx) -> Task {
          KvHandle kv = *ctx.kv_tmp();
          std::vector<TokenId> prompt(48, static_cast<TokenId>(260 + i));
          StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, prompt);
          if (d.ok()) {
            ++completed;
          }
          // Close promptly so others can proceed.
          (void)ctx.kv_close(kv);
          co_return;
        });
  }
  sim.Run();
  EXPECT_EQ(completed, kLips);
  EXPECT_GT(server.scheduler().stats().memory_requeues, 0u);
}

// Tool failures surface to the LIP as a Status, not a crash, and the LIP
// continues running afterwards.
TEST(IntegrationTest, ToolErrorsAreRecoverable) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  (void)server.tools().Register(ToolRegistry::Calculator("calc", Millis(1)));
  std::vector<std::string> log;
  server.Launch("robust", [&](LipContext& ctx) -> Task {
    StatusOr<std::string> bad = co_await ctx.call_tool("calc", "1 / 0");
    log.push_back(bad.ok() ? "unexpected" : StatusCodeName(bad.status().code()).data());
    StatusOr<std::string> missing = co_await ctx.call_tool("no_such_tool", "");
    log.push_back(missing.ok() ? "unexpected" : StatusCodeName(missing.status().code()).data());
    StatusOr<std::string> good = co_await ctx.call_tool("calc", "2 + 2");
    log.push_back(good.value_or("fail"));
    co_return;
  });
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "INVALID_ARGUMENT");
  EXPECT_EQ(log[1], "NOT_FOUND");
  EXPECT_EQ(log[2], "4");
}

// Awaitable sub-coroutines: a LIP factored into helper Tasks behaves like
// the inline version.
Task GenerateN(LipContext& ctx, KvHandle kv, TokenId first, int n,
               std::vector<TokenId>* out) {
  TokenId t = first;
  for (int i = 0; i < n; ++i) {
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
    if (!d.ok()) {
      co_return;
    }
    t = d->back().Argmax();
    out->push_back(t);
  }
  co_return;
}

TEST(IntegrationTest, SubCoroutinesComposeWithSyscalls) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  std::vector<TokenId> nested;
  std::vector<TokenId> inline_version;
  server.Launch("nested", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    co_await GenerateN(ctx, kv, 260, 3, &nested);
    co_await GenerateN(ctx, kv, 261, 3, &nested);
    co_return;
  });
  sim.Run();

  Simulator sim2;
  SymphonyServer server2(&sim2, TinyOptions());
  server2.Launch("inline", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    TokenId t = 260;
    for (int i = 0; i < 3; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      t = d->back().Argmax();
      inline_version.push_back(t);
    }
    t = 261;
    for (int i = 0; i < 3; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      t = d->back().Argmax();
      inline_version.push_back(t);
    }
    co_return;
  });
  sim2.Run();

  ASSERT_EQ(nested.size(), 6u);
  EXPECT_EQ(nested, inline_version);
}

}  // namespace
}  // namespace symphony
