// Tests for the simulated GPU device: execution timing, busy bookkeeping,
// PCIe/compute overlap, statistics, and trace emission.
#include <gtest/gtest.h>

#include <vector>

#include "src/gpu/device.h"
#include "src/model/model_config.h"

namespace symphony {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : device_(&sim_, CostModel(ModelConfig::Llama13B())) {}

  Simulator sim_;
  Device device_;
};

TEST_F(DeviceTest, ExecuteTakesVirtualTimeAndCompletes) {
  bool done = false;
  std::vector<WorkItem> items = {WorkItem{1, 1000}};
  SimTime predicted = device_.Execute(items, 0, [&] { done = true; });
  EXPECT_TRUE(device_.busy());
  EXPECT_FALSE(done);
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(device_.busy());
  EXPECT_EQ(sim_.now(), predicted);
  // A single decode step on 13B is weight-pass bound: ~16-20ms.
  EXPECT_GT(sim_.now(), Millis(10));
  EXPECT_LT(sim_.now(), Millis(40));
}

TEST_F(DeviceTest, EstimateMatchesExecute) {
  std::vector<WorkItem> items = {WorkItem{64, 500}, WorkItem{1, 3000}};
  SimDuration estimate = device_.EstimateTime(items, 123456);
  SimTime completion = device_.Execute(items, 123456, [] {});
  EXPECT_EQ(completion, estimate);  // Started at t=0.
  sim_.Run();
}

TEST_F(DeviceTest, TransferOverlapsWithCompute) {
  // Small transfer hides entirely behind a compute-heavy batch...
  std::vector<WorkItem> prefill = {WorkItem{3000, 0}};
  SimDuration compute_only = device_.EstimateTime(prefill, 0);
  EXPECT_EQ(device_.EstimateTime(prefill, 1'000'000), compute_only);
  // ...while a huge transfer dominates a tiny batch.
  std::vector<WorkItem> decode = {WorkItem{1, 100}};
  SimDuration small_compute = device_.EstimateTime(decode, 0);
  SimDuration with_transfer = device_.EstimateTime(decode, 10'000'000'000ULL);
  EXPECT_GT(with_transfer, small_compute);
  // 10GB at 25GB/s = 400ms.
  EXPECT_NEAR(ToSeconds(with_transfer), 0.4, 0.01);
}

TEST_F(DeviceTest, StatsAccumulate) {
  std::vector<WorkItem> a = {WorkItem{10, 0}, WorkItem{5, 100}};
  device_.Execute(a, 1000, [] {});
  sim_.Run();
  std::vector<WorkItem> b = {WorkItem{1, 50}};
  device_.Execute(b, 0, [] {});
  sim_.Run();
  EXPECT_EQ(device_.stats().batches, 2u);
  EXPECT_EQ(device_.stats().items, 3u);
  EXPECT_EQ(device_.stats().new_tokens, 16u);
  EXPECT_EQ(device_.stats().transfer_bytes, 1000u);
  EXPECT_GT(device_.stats().busy_time, 0);
  EXPECT_NEAR(device_.batch_sizes().mean(), 1.5, 1e-9);
}

TEST_F(DeviceTest, UtilizationIsBusyFraction) {
  std::vector<WorkItem> items = {WorkItem{1, 100}};
  device_.Execute(items, 0, [] {});
  sim_.Run();
  // Device was busy from 0 to completion: utilization 1.0.
  EXPECT_NEAR(device_.Utilization(), 1.0, 1e-9);
  // Idle gap halves it.
  SimTime busy_until = sim_.now();
  sim_.ScheduleAt(busy_until * 2, [] {});
  sim_.Run();
  EXPECT_NEAR(device_.Utilization(), 0.5, 1e-9);
}

TEST_F(DeviceTest, TraceEmitsBatchSpan) {
  TraceRecorder trace;
  device_.set_trace(&trace, "gpu0");
  std::vector<WorkItem> items = {WorkItem{8, 200}};
  device_.Execute(items, 0, [] {});
  sim_.Run();
  EXPECT_EQ(trace.event_count(), 1u);
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("batch n=1 tok=8"), std::string::npos);
}

TEST_F(DeviceTest, BackToBackBatchesSerialize) {
  // The second Execute happens only after the first completes (the scheduler
  // guarantees this; the device asserts it). Here we chain via callback.
  std::vector<SimTime> completions;
  std::vector<WorkItem> items = {WorkItem{1, 100}};
  device_.Execute(items, 0, [&] {
    completions.push_back(sim_.now());
    std::vector<WorkItem> next = {WorkItem{1, 101}};
    device_.Execute(next, 0, [&] { completions.push_back(sim_.now()); });
  });
  sim_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_GT(completions[1], completions[0]);
}

}  // namespace
}  // namespace symphony
