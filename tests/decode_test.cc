// Tests for the decode module: samplers, the regex engine (parser, DFA,
// token constraints), the JSON machine, and speculative verification.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/decode/json_machine.h"
#include "src/decode/regex.h"
#include "src/decode/samplers.h"
#include "src/decode/speculative.h"
#include "src/decode/watermark.h"
#include "src/model/model.h"

namespace symphony {
namespace {

// ---------- Regex: full-match behaviour ----------

struct RegexCase {
  const char* pattern;
  const char* input;
  bool matches;
};

class RegexMatchTest : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexMatchTest, Matches) {
  const RegexCase& c = GetParam();
  StatusOr<std::unique_ptr<Dfa>> dfa = CompileRegex(c.pattern);
  ASSERT_TRUE(dfa.ok()) << c.pattern << ": " << dfa.status();
  EXPECT_EQ((*dfa)->Matches(c.input), c.matches)
      << "pattern=" << c.pattern << " input=" << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Basics, RegexMatchTest,
    ::testing::Values(
        RegexCase{"abc", "abc", true}, RegexCase{"abc", "ab", false},
        RegexCase{"abc", "abcd", false}, RegexCase{"a*", "", true},
        RegexCase{"a*", "aaaa", true}, RegexCase{"a*", "ab", false},
        RegexCase{"a+", "", false}, RegexCase{"a+", "aaa", true},
        RegexCase{"a?b", "b", true}, RegexCase{"a?b", "ab", true},
        RegexCase{"a?b", "aab", false}, RegexCase{"a|b", "a", true},
        RegexCase{"a|b", "b", true}, RegexCase{"a|b", "c", false},
        RegexCase{"(ab)+", "ababab", true}, RegexCase{"(ab)+", "aba", false},
        RegexCase{"a(b|c)d", "abd", true}, RegexCase{"a(b|c)d", "acd", true},
        RegexCase{"a(b|c)d", "aed", false}));

INSTANTIATE_TEST_SUITE_P(
    Classes, RegexMatchTest,
    ::testing::Values(
        RegexCase{"[abc]+", "cab", true}, RegexCase{"[abc]+", "cad", false},
        RegexCase{"[a-z]+", "hello", true}, RegexCase{"[a-z]+", "Hello", false},
        RegexCase{"[^0-9]+", "abc", true}, RegexCase{"[^0-9]+", "ab1", false},
        RegexCase{"\\d+", "12345", true}, RegexCase{"\\d+", "12a45", false},
        RegexCase{"\\w+", "az_09", true}, RegexCase{"\\w+", "a b", false},
        RegexCase{"\\s", " ", true}, RegexCase{"\\s", "x", false},
        RegexCase{"a\\.b", "a.b", true}, RegexCase{"a\\.b", "axb", false},
        RegexCase{"a.c", "abc", true}, RegexCase{"a.c", "a\nc", false},
        RegexCase{"[a\\-z]+", "a-z", true}));

INSTANTIATE_TEST_SUITE_P(
    Bounds, RegexMatchTest,
    ::testing::Values(
        RegexCase{"a{3}", "aaa", true}, RegexCase{"a{3}", "aa", false},
        RegexCase{"a{3}", "aaaa", false}, RegexCase{"a{2,4}", "aa", true},
        RegexCase{"a{2,4}", "aaaa", true}, RegexCase{"a{2,4}", "aaaaa", false},
        RegexCase{"a{2,}", "aaaaaaa", true}, RegexCase{"a{2,}", "a", false},
        RegexCase{"(ab){2}", "abab", true}, RegexCase{"(ab){2}", "ab", false},
        RegexCase{"\\d{3}-\\d{4}", "555-1234", true},
        RegexCase{"\\d{3}-\\d{4}", "55-1234", false}));

INSTANTIATE_TEST_SUITE_P(
    Compound, RegexMatchTest,
    ::testing::Values(
        RegexCase{"(yes|no)", "yes", true}, RegexCase{"(yes|no)", "maybe", false},
        RegexCase{"-?\\d+(\\.\\d+)?", "-3.14", true},
        RegexCase{"-?\\d+(\\.\\d+)?", "42", true},
        RegexCase{"-?\\d+(\\.\\d+)?", "4.", false},
        RegexCase{"\"[a-z]*\"", "\"abc\"", true},
        RegexCase{"\"[a-z]*\"", "\"abc", false}));

TEST(RegexCompileTest, SyntaxErrors) {
  EXPECT_FALSE(CompileRegex("(ab").ok());
  EXPECT_FALSE(CompileRegex("ab)").ok());
  EXPECT_FALSE(CompileRegex("[abc").ok());
  EXPECT_FALSE(CompileRegex("*a").ok());
  EXPECT_FALSE(CompileRegex("a{2,1}").ok());
  EXPECT_FALSE(CompileRegex("a{").ok());
  EXPECT_FALSE(CompileRegex("a\\").ok());
  EXPECT_FALSE(CompileRegex("[z-a]").ok());
}

TEST(RegexCompileTest, StateLimitEnforced) {
  // A pathological pattern whose DFA blows up: (a|b)*a(a|b){12} has ~2^12
  // states.
  StatusOr<std::unique_ptr<Dfa>> dfa = CompileRegex("(a|b)*a(a|b){12}", 256);
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
}

TEST(RegexDfaTest, DeadEndDetection) {
  std::unique_ptr<Dfa> dfa = *CompileRegex("abc");
  Dfa::StateId s = dfa->start();
  EXPECT_FALSE(dfa->IsDeadEnd(s));
  s = dfa->Next(s, 'a');
  EXPECT_FALSE(dfa->IsDeadEnd(s));
  s = dfa->Next(s, 'x');
  EXPECT_TRUE(dfa->IsDeadEnd(s));
}

TEST(RegexDfaTest, RunAndAccept) {
  std::unique_ptr<Dfa> dfa = *CompileRegex("ab*");
  Dfa::StateId s = dfa->Run(dfa->start(), "abbb");
  EXPECT_TRUE(dfa->IsAccept(s));
  EXPECT_FALSE(dfa->IsAccept(dfa->start()));
}

// ---------- TokenConstraint ----------

class TokenConstraintTest : public ::testing::Test {
 protected:
  Tokenizer tokenizer_{ModelConfig::Tiny().vocab_size};
};

TEST_F(TokenConstraintTest, ByteTokensFollowDfa) {
  std::unique_ptr<Dfa> dfa = *CompileRegex("[0-9]+");
  TokenConstraint constraint(dfa.get(), &tokenizer_);
  Dfa::StateId s = constraint.start();
  TokenId digit = kFirstByteToken + '7';
  TokenId letter = kFirstByteToken + 'x';
  EXPECT_TRUE(constraint.Allows(s, digit));
  EXPECT_FALSE(constraint.Allows(s, letter));
  EXPECT_FALSE(constraint.Allows(s, kEosToken));  // Nothing consumed yet.
  s = constraint.Advance(s, digit);
  EXPECT_TRUE(constraint.Allows(s, kEosToken));  // "7" is a full match.
}

TEST_F(TokenConstraintTest, WordTokensMatchWholeText) {
  // Word token "w7" consumes the two characters 'w''7'.
  std::unique_ptr<Dfa> dfa = *CompileRegex("w[0-9]");
  TokenConstraint constraint(dfa.get(), &tokenizer_);
  Dfa::StateId s = constraint.start();
  TokenId w7 = tokenizer_.LookupWord("w7");
  ASSERT_NE(w7, kUnkToken);
  EXPECT_TRUE(constraint.Allows(s, w7));
  s = constraint.Advance(s, w7);
  EXPECT_TRUE(constraint.IsAccept(s));
}

TEST_F(TokenConstraintTest, SpecialsNeverAllowed) {
  std::unique_ptr<Dfa> dfa = *CompileRegex(".*");
  TokenConstraint constraint(dfa.get(), &tokenizer_);
  EXPECT_FALSE(constraint.Allows(constraint.start(), kPadToken));
  EXPECT_FALSE(constraint.Allows(constraint.start(), kBosToken));
  EXPECT_FALSE(constraint.Allows(constraint.start(), kUnkToken));
}

TEST_F(TokenConstraintTest, ConstrainedGreedyGenerationMatchesPattern) {
  // Drive the Tiny model greedily under a phone-number constraint; the
  // emitted string must match the pattern.
  std::unique_ptr<Dfa> dfa = *CompileRegex("[0-9]{3}-[0-9]{4}");
  TokenConstraint constraint(dfa.get(), &tokenizer_);
  Model model(ModelConfig::Tiny());

  HiddenState state = model.InitialState();
  Dfa::StateId cs = constraint.start();
  std::string out;
  int32_t pos = 0;
  for (int step = 0; step < 32; ++step) {
    Distribution dist = model.Predict(state);
    TokenId t = dist.GreedyMasked(
        [&](TokenId tok) { return constraint.Allows(cs, tok); });
    ASSERT_NE(t, kUnkToken);
    if (t == kEosToken) {
      break;
    }
    out += tokenizer_.TokenToString(t);
    cs = constraint.Advance(cs, t);
    state = model.Advance(state, t, pos++);
  }
  EXPECT_TRUE(dfa->Matches(out)) << out;
}

// ---------- JSON machine ----------

struct JsonCase {
  const char* input;
  bool valid_complete;
};

class JsonCompleteTest : public ::testing::TestWithParam<JsonCase> {};

TEST_P(JsonCompleteTest, FeedAllAndDone) {
  const JsonCase& c = GetParam();
  JsonMachine machine;
  bool fed = machine.FeedAll(c.input);
  EXPECT_EQ(fed && machine.Done(), c.valid_complete) << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Values, JsonCompleteTest,
    ::testing::Values(
        JsonCase{"{}", true}, JsonCase{"[]", true}, JsonCase{"null", true},
        JsonCase{"true", true}, JsonCase{"false", true}, JsonCase{"0", true},
        JsonCase{"-12", true}, JsonCase{"3.25", true}, JsonCase{"1e9", true},
        JsonCase{"6.02e+23", true}, JsonCase{"\"hi\"", true},
        JsonCase{"\"esc\\n\\\"q\\\"\"", true}, JsonCase{"\"\\u00e9\"", true},
        JsonCase{"  {  } ", true}, JsonCase{"[1, 2, 3]", true},
        JsonCase{"{\"a\": 1}", true},
        JsonCase{"{\"a\": [true, null, {\"b\": \"c\"}]}", true},
        JsonCase{"{\"a\": 1, \"b\": 2}", true}));

INSTANTIATE_TEST_SUITE_P(
    Invalid, JsonCompleteTest,
    ::testing::Values(
        JsonCase{"{", false}, JsonCase{"[1,", false}, JsonCase{"01", false},
        JsonCase{"1.", false}, JsonCase{"+1", false}, JsonCase{"tru", false},
        JsonCase{"truee", false}, JsonCase{"{\"a\" 1}", false},
        JsonCase{"{a: 1}", false}, JsonCase{"[1 2]", false},
        JsonCase{"\"unterminated", false}, JsonCase{"{} {}", false},
        JsonCase{"\"bad\\x\"", false}, JsonCase{"[]]", false},
        JsonCase{"", false}));

TEST(JsonMachineTest, PrefixStaysAliveUntilError) {
  JsonMachine machine;
  EXPECT_TRUE(machine.FeedAll("{\"key\": [1, 2"));
  EXPECT_FALSE(machine.Done());
  EXPECT_FALSE(machine.dead());
  EXPECT_FALSE(machine.Feed('x'));  // "1, 2x" is unsalvageable.
  EXPECT_TRUE(machine.dead());
}

TEST(JsonMachineTest, CanFeedDoesNotMutate) {
  JsonMachine machine;
  ASSERT_TRUE(machine.FeedAll("[1"));
  EXPECT_TRUE(machine.CanFeed(", 2]"));
  EXPECT_TRUE(machine.CanFeed("]"));
  // Machine state unchanged: both futures still possible.
  EXPECT_TRUE(machine.FeedAll("]"));
  EXPECT_TRUE(machine.Done());
}

TEST(JsonMachineTest, TopLevelNumberDoneWhileExtensible) {
  JsonMachine machine;
  ASSERT_TRUE(machine.FeedAll("42"));
  EXPECT_TRUE(machine.Done());       // "42" is complete...
  EXPECT_TRUE(machine.Feed('0'));    // ...but can still extend to "420".
  EXPECT_TRUE(machine.Done());
}

TEST(JsonMachineTest, TokenLevelInterface) {
  Tokenizer tokenizer(ModelConfig::Tiny().vocab_size);
  JsonMachine machine;
  TokenId open = kFirstByteToken + '{';
  TokenId close = kFirstByteToken + '}';
  EXPECT_TRUE(machine.AllowsToken(tokenizer, open));
  EXPECT_FALSE(machine.AllowsToken(tokenizer, kEosToken));
  machine.AdvanceToken(tokenizer, open);
  EXPECT_TRUE(machine.AllowsToken(tokenizer, close));
  machine.AdvanceToken(tokenizer, close);
  EXPECT_TRUE(machine.AllowsToken(tokenizer, kEosToken));
}

TEST(JsonMachineTest, ConstrainedGenerationProducesValidJson) {
  Tokenizer tokenizer(ModelConfig::Tiny().vocab_size);
  Model model(ModelConfig::Tiny());
  JsonMachine machine;
  HiddenState state = model.InitialState();
  std::string out;
  int32_t pos = 0;
  for (int step = 0; step < 64; ++step) {
    Distribution dist = model.Predict(state);
    TokenId t = dist.GreedyMasked(
        [&](TokenId tok) { return machine.AllowsToken(tokenizer, tok); });
    ASSERT_NE(t, kUnkToken);
    if (t == kEosToken) {
      break;
    }
    out += tokenizer.TokenToString(t);
    machine.AdvanceToken(tokenizer, t);
    state = model.Advance(state, t, pos++);
  }
  JsonMachine checker;
  EXPECT_TRUE(checker.FeedAll(out) && checker.Done()) << out;
}

// ---------- Samplers ----------

class SamplerTest : public ::testing::Test {
 protected:
  ModelConfig config_ = ModelConfig::Tiny();
  Model model_{config_};
  Distribution Dist(TokenId seed_token) {
    return model_.Predict(model_.Advance(model_.InitialState(), seed_token, 0));
  }
};

TEST_F(SamplerTest, ZeroTemperatureIsGreedy) {
  Distribution d = Dist(260);
  SamplerConfig cfg;
  cfg.temperature = 0.0;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleToken(d, cfg, rng.NextDouble()), d.Argmax());
  }
}

TEST_F(SamplerTest, TopK1IsGreedy) {
  Distribution d = Dist(261);
  SamplerConfig cfg;
  cfg.top_k = 1;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleToken(d, cfg, rng.NextDouble()), d.Argmax());
  }
}

TEST_F(SamplerTest, TopKRestrictsSupport) {
  Distribution d = Dist(262);
  std::vector<TokenId> cands = d.TopCandidates();
  SamplerConfig cfg;
  cfg.top_k = 4;
  cfg.temperature = 2.0;  // Flatten so lower ranks would otherwise appear.
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    TokenId t = SampleToken(d, cfg, rng.NextDouble());
    bool in_top4 = false;
    for (size_t j = 0; j < 4; ++j) {
      if (t == cands[j]) {
        in_top4 = true;
      }
    }
    EXPECT_TRUE(in_top4);
  }
}

TEST_F(SamplerTest, TopPRestrictsToNucleus) {
  Distribution d = Dist(263);
  SamplerConfig cfg;
  cfg.top_p = 0.5;
  Rng rng(4);
  // Compute the nucleus ourselves.
  std::vector<TokenId> cands = d.TopCandidates();
  double cum = 0.0;
  size_t nucleus = 0;
  for (TokenId t : cands) {
    cum += d.Prob(t);
    ++nucleus;
    if (cum >= 0.5) {
      break;
    }
  }
  for (int i = 0; i < 500; ++i) {
    TokenId t = SampleToken(d, cfg, rng.NextDouble());
    bool in_nucleus = false;
    for (size_t j = 0; j < nucleus; ++j) {
      if (t == cands[j]) {
        in_nucleus = true;
      }
    }
    EXPECT_TRUE(in_nucleus);
  }
}

// ---------- Speculative verification ----------

TEST(SpeculativeTest, PerfectDraftAcceptsAll) {
  // Draft == target model: every draft token has p == q, always accepted.
  Model target(ModelConfig::Llama13B());
  HiddenState s = target.InitialState();
  Distribution before = target.Predict(s);

  std::vector<TokenId> draft_tokens;
  std::vector<Distribution> draft_dists;
  std::vector<Distribution> target_dists;
  HiddenState cur = s;
  int32_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    Distribution d = target.Predict(cur);
    TokenId t = d.Argmax();
    draft_dists.push_back(d);
    draft_tokens.push_back(t);
    cur = target.Advance(cur, t, pos++);
    target_dists.push_back(target.Predict(cur));
  }
  Rng rng(7);
  SpeculativeOutcome outcome =
      VerifyDraft(before, draft_tokens, draft_dists, target_dists, rng);
  EXPECT_EQ(outcome.accepted, 4u);
  EXPECT_NE(outcome.next_token, kUnkToken);
}

TEST(SpeculativeTest, ImperfectDraftAcceptsSome) {
  Model target(ModelConfig::Llama13B());
  Model draft(ModelConfig::Llama1BDraft());

  Rng rng(11);
  uint64_t total_accepted = 0;
  uint64_t total_drafted = 0;
  HiddenState s = target.InitialState();
  int32_t pos = 0;
  constexpr int kRounds = 60;
  constexpr int kDraftLen = 4;
  for (int round = 0; round < kRounds; ++round) {
    Distribution before = target.Predict(s);
    std::vector<TokenId> draft_tokens;
    std::vector<Distribution> draft_dists;
    std::vector<Distribution> target_dists;
    HiddenState cur = s;
    int32_t p = pos;
    for (int i = 0; i < kDraftLen; ++i) {
      Distribution dd = draft.Predict(cur);
      TokenId t = dd.Argmax();
      draft_dists.push_back(dd);
      draft_tokens.push_back(t);
      cur = target.Advance(cur, t, p++);
      target_dists.push_back(target.Predict(cur));
    }
    SpeculativeOutcome outcome =
        VerifyDraft(before, draft_tokens, draft_dists, target_dists, rng);
    total_accepted += outcome.accepted;
    total_drafted += kDraftLen;
    // Advance the "real" sequence by the accepted prefix + next token.
    for (size_t i = 0; i < outcome.accepted; ++i) {
      s = target.Advance(s, draft_tokens[i], pos++);
    }
    s = target.Advance(s, outcome.next_token, pos++);
  }
  double acceptance = static_cast<double>(total_accepted) /
                      static_cast<double>(total_drafted);
  EXPECT_GT(acceptance, 0.3);
  EXPECT_LT(acceptance, 0.98);
}

TEST(SpeculativeTest, EmptyDraftSamplesFromTarget) {
  Model target(ModelConfig::Tiny());
  Distribution before = target.Predict(target.InitialState());
  Rng rng(3);
  SpeculativeOutcome outcome = VerifyDraft(before, {}, {}, {}, rng);
  EXPECT_EQ(outcome.accepted, 0u);
  EXPECT_GE(outcome.next_token, 0);
}

// ---------- Watermarking ----------

class WatermarkTest : public ::testing::Test {
 protected:
  ModelConfig config_ = ModelConfig::Tiny();
  Model model_{config_};
  WatermarkConfig wm_;

  // Generates `n` tokens with (or without) the watermark.
  std::vector<TokenId> GenerateTokens(int n, bool watermarked, uint64_t seed) {
    Watermarker watermarker(wm_);
    Rng rng(seed);
    HiddenState s = model_.InitialState();
    TokenId prev = 260;
    s = model_.Advance(s, prev, 0);
    std::vector<TokenId> out = {prev};
    for (int i = 1; i <= n; ++i) {
      Distribution dist = model_.Predict(s);
      TokenId t = watermarked
                      ? watermarker.Sample(dist, prev, rng.NextDouble(),
                                           rng.NextDouble())
                      : dist.Sample(rng.NextDouble());
      out.push_back(t);
      s = model_.Advance(s, t, i);
      prev = t;
    }
    return out;
  }
};

TEST_F(WatermarkTest, GreenListIsGammaFraction) {
  Watermarker watermarker(wm_);
  int green = 0;
  int total = 0;
  for (TokenId prev = 260; prev < 280; ++prev) {
    for (TokenId t = 0; t < static_cast<TokenId>(config_.vocab_size); ++t) {
      ++total;
      green += watermarker.IsGreen(prev, t) ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(green) / total, wm_.gamma, 0.03);
}

TEST_F(WatermarkTest, GreenListDependsOnPreviousToken) {
  Watermarker watermarker(wm_);
  int differing = 0;
  for (TokenId t = 0; t < 256; ++t) {
    if (watermarker.IsGreen(260, t) != watermarker.IsGreen(261, t)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50);  // Partitions are (nearly) independent.
}

TEST_F(WatermarkTest, WatermarkedTextDetected) {
  std::vector<TokenId> text = GenerateTokens(300, /*watermarked=*/true, 7);
  WatermarkVerdict verdict = DetectWatermark(text, wm_);
  EXPECT_TRUE(verdict.watermarked) << "z=" << verdict.z_score;
  EXPECT_GT(verdict.z_score, 4.0);
}

TEST_F(WatermarkTest, UnwatermarkedTextNotDetected) {
  std::vector<TokenId> text = GenerateTokens(300, /*watermarked=*/false, 7);
  WatermarkVerdict verdict = DetectWatermark(text, wm_);
  EXPECT_FALSE(verdict.watermarked) << "z=" << verdict.z_score;
  EXPECT_LT(verdict.z_score, 4.0);
}

TEST_F(WatermarkTest, WrongSaltDoesNotDetect) {
  std::vector<TokenId> text = GenerateTokens(300, /*watermarked=*/true, 7);
  WatermarkConfig wrong = wm_;
  wrong.salt ^= 0xdeadbeef;
  WatermarkVerdict verdict = DetectWatermark(text, wrong);
  EXPECT_FALSE(verdict.watermarked) << "z=" << verdict.z_score;
}

TEST_F(WatermarkTest, EmptyAndTinyInputsAreSafe) {
  EXPECT_FALSE(DetectWatermark({}, wm_).watermarked);
  EXPECT_FALSE(DetectWatermark({260}, wm_).watermarked);
}

}  // namespace
}  // namespace symphony
