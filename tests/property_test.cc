// Property-based tests (parameterized sweeps) on the core invariants:
//   * PagePool vs a reference model under random op sequences,
//   * KvFileData vs a reference vector under random append/truncate/clone,
//   * model state: shared prefix <=> shared state,
//   * Distribution axioms across many hidden states,
//   * regex engine differential-tested against std::regex,
//   * JSON machine against a generator of random valid documents.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/decode/json_machine.h"
#include "src/decode/regex.h"
#include "src/kvfs/kv_file.h"
#include "src/kvfs/page_pool.h"
#include "src/model/cost_model.h"
#include "src/model/model.h"
#include "src/model/tokenizer.h"

namespace symphony {
namespace {

// Stress-scalable seed lists. By default each sweep runs its curated base
// seeds; when SYMPHONY_STRESS is set (the nightly CI stress profile), every
// sweep is widened with derived seeds — 64 extra, or the variable's integer
// value when it parses to something larger than 1. `stream` decorrelates the
// suites so they don't all replay the same derived sequence.
std::vector<uint64_t> PropertySeeds(std::vector<uint64_t> base,
                                    uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

std::vector<uint64_t> SeedRange(uint64_t begin, uint64_t end) {
  std::vector<uint64_t> seeds;
  for (uint64_t s = begin; s < end; ++s) {
    seeds.push_back(s);
  }
  return seeds;
}

// ---------------------------------------------------------------------------
// PagePool: random alloc/ref/unref/move sequences vs a reference model.
// ---------------------------------------------------------------------------

class PagePoolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagePoolPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  constexpr uint64_t kGpuBudget = 24;
  constexpr uint64_t kHostBudget = 24;
  PagePool pool(kGpuBudget, kHostBudget);

  struct RefPage {
    uint32_t refcount;
    Tier tier;
  };
  std::map<PageId, RefPage> reference;
  auto used_in = [&](Tier tier) {
    uint64_t n = 0;
    for (const auto& [id, page] : reference) {
      if (page.tier == tier) {
        ++n;
      }
    }
    return n;
  };

  for (int step = 0; step < 2000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0: {  // Allocate.
        Tier tier = rng.NextBounded(2) == 0 ? Tier::kGpu : Tier::kHost;
        uint64_t budget = tier == Tier::kGpu ? kGpuBudget : kHostBudget;
        StatusOr<PageId> page = pool.Allocate(tier);
        if (used_in(tier) >= budget) {
          EXPECT_FALSE(page.ok());
        } else {
          ASSERT_TRUE(page.ok());
          EXPECT_EQ(reference.count(*page), 0u);
          reference[*page] = RefPage{1, tier};
        }
        break;
      }
      case 1: {  // Ref a random live page.
        if (reference.empty()) {
          break;
        }
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(reference.size()));
        pool.Ref(it->first);
        ++it->second.refcount;
        break;
      }
      case 2: {  // Unref a random live page.
        if (reference.empty()) {
          break;
        }
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(reference.size()));
        pool.Unref(it->first);
        if (--it->second.refcount == 0) {
          reference.erase(it);
        }
        break;
      }
      case 3: {  // Move tiers.
        if (reference.empty()) {
          break;
        }
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(reference.size()));
        Tier target = it->second.tier == Tier::kGpu ? Tier::kHost : Tier::kGpu;
        uint64_t budget = target == Tier::kGpu ? kGpuBudget : kHostBudget;
        Status st = pool.MoveToTier(it->first, target);
        if (used_in(target) >= budget) {
          EXPECT_FALSE(st.ok());
        } else {
          ASSERT_TRUE(st.ok());
          it->second.tier = target;
        }
        break;
      }
    }
    // Invariants after every step.
    ASSERT_EQ(pool.stats().gpu_pages_used, used_in(Tier::kGpu));
    ASSERT_EQ(pool.stats().host_pages_used, used_in(Tier::kHost));
  }
  for (const auto& [id, page] : reference) {
    EXPECT_EQ(pool.refcount(id), page.refcount);
    EXPECT_EQ(pool.tier(id), page.tier);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagePoolPropertyTest,
                         ::testing::ValuesIn(PropertySeeds({1, 2, 3, 17, 99, 12345}, 1)));

// ---------------------------------------------------------------------------
// KvFileData: random append/truncate/clone vs std::vector references.
// ---------------------------------------------------------------------------

class KvFilePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvFilePropertyTest, MatchesVectorReference) {
  Rng rng(GetParam());
  PagePool pool(1 << 14, 0);

  struct Pair {
    std::unique_ptr<KvFileData> file;
    std::vector<TokenRecord> reference;
  };
  std::vector<Pair> files;
  files.push_back(Pair{std::make_unique<KvFileData>(&pool), {}});

  int32_t next_pos = 0;
  for (int step = 0; step < 1500; ++step) {
    size_t idx = rng.NextBounded(files.size());
    Pair& target = files[idx];
    switch (rng.NextBounded(5)) {
      case 0:
      case 1: {  // Append 1..20 records.
        uint64_t n = 1 + rng.NextBounded(20);
        for (uint64_t i = 0; i < n; ++i) {
          TokenRecord rec{static_cast<TokenId>(260 + rng.NextBounded(40)),
                          next_pos, rng.NextU64()};
          ++next_pos;
          ASSERT_TRUE(target.file->Append(rec).ok());
          target.reference.push_back(rec);
        }
        break;
      }
      case 2: {  // Truncate to a random length.
        if (target.reference.empty()) {
          break;
        }
        uint64_t keep = rng.NextBounded(target.reference.size() + 1);
        ASSERT_TRUE(target.file->Truncate(keep).ok());
        target.reference.resize(keep);
        break;
      }
      case 3: {  // Clone into a new file (cap population).
        if (files.size() >= 8) {
          break;
        }
        Pair clone{std::make_unique<KvFileData>(&pool), target.reference};
        ASSERT_TRUE(clone.file->CloneFrom(*target.file).ok());
        files.push_back(std::move(clone));
        break;
      }
      case 4: {  // Drop a file entirely (keep at least one).
        if (files.size() <= 1) {
          break;
        }
        files[idx] = std::move(files.back());
        files.pop_back();
        break;
      }
    }
    // Spot-check a random file against its reference.
    const Pair& check = files[rng.NextBounded(files.size())];
    ASSERT_EQ(check.file->length(), check.reference.size());
    if (!check.reference.empty()) {
      uint64_t i = rng.NextBounded(check.reference.size());
      StatusOr<TokenRecord> rec = check.file->At(i);
      ASSERT_TRUE(rec.ok());
      EXPECT_EQ(rec->token, check.reference[i].token);
      EXPECT_EQ(rec->position, check.reference[i].position);
      EXPECT_EQ(rec->state, check.reference[i].state);
      EXPECT_EQ(*check.file->TailState(), check.reference.back().state);
    }
  }

  // Full verification and teardown balance.
  for (const Pair& pair : files) {
    for (size_t i = 0; i < pair.reference.size(); ++i) {
      EXPECT_EQ(pair.file->At(i)->state, pair.reference[i].state);
    }
  }
  files.clear();
  EXPECT_EQ(pool.stats().gpu_pages_used, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFilePropertyTest,
                         ::testing::ValuesIn(PropertySeeds({5, 6, 7, 8, 4242}, 2)));

// ---------------------------------------------------------------------------
// Model state: shared prefix <=> shared state.
// ---------------------------------------------------------------------------

class ModelStatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelStatePropertyTest, SharedPrefixSharedState) {
  Rng rng(GetParam());
  Model model(ModelConfig::Tiny());
  // Two random sequences sharing a random-length prefix.
  size_t prefix_len = 1 + rng.NextBounded(30);
  size_t total_len = prefix_len + 1 + rng.NextBounded(30);

  std::vector<TokenId> a;
  std::vector<TokenId> b;
  for (size_t i = 0; i < total_len; ++i) {
    TokenId t = static_cast<TokenId>(260 + rng.NextBounded(40));
    a.push_back(t);
    if (i < prefix_len) {
      b.push_back(t);
    } else {
      // Guarantee divergence at the first post-prefix position.
      TokenId other = static_cast<TokenId>(260 + rng.NextBounded(40));
      if (i == prefix_len && other == t) {
        other = static_cast<TokenId>(260 + ((other - 260 + 1) % 40));
      }
      b.push_back(other);
    }
  }

  std::vector<HiddenState> sa = model.AdvanceSeq(model.InitialState(), a, 0);
  std::vector<HiddenState> sb = model.AdvanceSeq(model.InitialState(), b, 0);
  for (size_t i = 0; i < prefix_len; ++i) {
    ASSERT_EQ(sa[i], sb[i]) << "prefix position " << i;
  }
  // Once diverged, states never re-coincide (hash collision ~ 2^-64).
  for (size_t i = prefix_len; i < total_len; ++i) {
    EXPECT_NE(sa[i], sb[i]) << "post-divergence position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelStatePropertyTest,
                         ::testing::ValuesIn(PropertySeeds(SeedRange(100, 120), 3)));

// ---------------------------------------------------------------------------
// Distribution axioms across many states.
// ---------------------------------------------------------------------------

class DistributionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributionPropertyTest, AxiomsHold) {
  Model model(ModelConfig::Tiny());
  Rng rng(GetParam());
  HiddenState state = model.InitialState();
  for (int step = 0; step < 40; ++step) {
    state = model.Advance(state, static_cast<TokenId>(260 + rng.NextBounded(40)),
                          step);
    Distribution dist = model.Predict(state);

    // Probabilities sum to 1 and Argmax dominates.
    std::vector<double> dense = dist.Dense();
    double total = 0.0;
    TokenId dense_argmax = 0;
    for (TokenId t = 0; t < static_cast<TokenId>(dense.size()); ++t) {
      ASSERT_GE(dense[static_cast<size_t>(t)], 0.0);
      total += dense[static_cast<size_t>(t)];
      if (dense[static_cast<size_t>(t)] > dense[static_cast<size_t>(dense_argmax)]) {
        dense_argmax = t;
      }
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
    ASSERT_EQ(dist.Argmax(), dense_argmax);

    // Candidates are distinct and in descending probability order.
    std::vector<TokenId> cands = dist.TopCandidates();
    for (size_t i = 1; i < cands.size(); ++i) {
      ASSERT_GE(dist.Prob(cands[i - 1]), dist.Prob(cands[i]));
      for (size_t j = 0; j < i; ++j) {
        ASSERT_NE(cands[i], cands[j]);
      }
    }

    // Inverse-CDF sampling is monotone in u over the candidate region and
    // always in-vocabulary.
    for (double u : {0.0, 0.3, 0.7, 0.9999}) {
      TokenId t = dist.Sample(u);
      ASSERT_GE(t, 0);
      ASSERT_LT(t, static_cast<TokenId>(dense.size()));
    }
    ASSERT_EQ(dist.Sample(0.0), dist.Argmax());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionPropertyTest,
                         ::testing::ValuesIn(PropertySeeds({11, 22, 33, 44}, 4)));

// ---------------------------------------------------------------------------
// Regex engine: differential test against std::regex (ECMAScript).
// ---------------------------------------------------------------------------

struct RegexDiffCase {
  const char* pattern;
  const char* alphabet;  // Generation alphabet for random strings.
};

class RegexDifferentialTest : public ::testing::TestWithParam<RegexDiffCase> {};

TEST_P(RegexDifferentialTest, AgreesWithStdRegex) {
  const RegexDiffCase& c = GetParam();
  StatusOr<std::unique_ptr<Dfa>> dfa = CompileRegex(c.pattern);
  ASSERT_TRUE(dfa.ok()) << c.pattern;
  std::regex reference(c.pattern, std::regex::ECMAScript);

  std::string alphabet = c.alphabet;
  Rng rng(Fnv1a(c.pattern));
  int agreements_positive = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = rng.NextBounded(12);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s += alphabet[rng.NextBounded(alphabet.size())];
    }
    bool ours = (*dfa)->Matches(s);
    bool theirs = std::regex_match(s, reference);
    ASSERT_EQ(ours, theirs) << "pattern=" << c.pattern << " input=\"" << s << "\"";
    if (ours) {
      ++agreements_positive;
    }
  }
  // The alphabet is chosen so some strings match; an all-negative run would
  // mean the test exercised nothing.
  EXPECT_GT(agreements_positive, 0) << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexDifferentialTest,
    ::testing::Values(RegexDiffCase{"a*b", "ab"}, RegexDiffCase{"(a|b)*", "abc"},
                      RegexDiffCase{"a+(b|c)?a", "abc"},
                      RegexDiffCase{"[a-c]{2,4}", "abcd"},
                      RegexDiffCase{"a.c", "abc"},
                      RegexDiffCase{"\\d{1,3}", "0123x"},
                      RegexDiffCase{"(ab)+c?", "abc"},
                      RegexDiffCase{"x[^y]*y", "xyz"},
                      RegexDiffCase{"\\w\\s\\w", "a b"},
                      RegexDiffCase{"(a|bb)*(c|dd)", "abcd"}));

// ---------------------------------------------------------------------------
// JSON machine: random valid documents are accepted, with all prefixes alive.
// ---------------------------------------------------------------------------

std::string RandomJson(Rng& rng, int depth) {
  switch (depth <= 0 ? rng.NextBounded(4) : rng.NextBounded(6)) {
    case 0:
      return std::to_string(static_cast<int64_t>(rng.NextBounded(2000)) - 1000);
    case 1:
      return rng.NextBounded(2) == 0 ? "true" : "false";
    case 2:
      return "null";
    case 3: {
      std::string s = "\"";
      size_t n = rng.NextBounded(6);
      for (size_t i = 0; i < n; ++i) {
        s += static_cast<char>('a' + rng.NextBounded(26));
      }
      return s + "\"";
    }
    case 4: {  // Array.
      std::string s = "[";
      size_t n = rng.NextBounded(4);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += RandomJson(rng, depth - 1);
      }
      return s + "]";
    }
    default: {  // Object.
      std::string s = "{";
      size_t n = rng.NextBounded(3);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += "\"k" + std::to_string(i) + "\": " + RandomJson(rng, depth - 1);
      }
      return s + "}";
    }
  }
}

class JsonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonPropertyTest, ValidDocumentsAcceptedWithLivePrefixes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = RandomJson(rng, 3);
    JsonMachine machine;
    for (size_t i = 0; i < doc.size(); ++i) {
      ASSERT_TRUE(machine.Feed(doc[i]))
          << "died at " << i << " of: " << doc;
    }
    EXPECT_TRUE(machine.Done()) << doc;
  }
}

TEST_P(JsonPropertyTest, StructuralCorruptionDetected) {
  Rng rng(GetParam() + 1);
  int rejected = 0;
  int trials = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = RandomJson(rng, 3);
    // Appending a closing brace to a complete doc must fail (trailing junk).
    JsonMachine machine;
    if (!machine.FeedAll(doc) || !machine.Done()) {
      continue;
    }
    ++trials;
    if (!machine.Feed('}') || !machine.Done()) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, trials);  // Every trailing '}' must break completeness.
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::ValuesIn(PropertySeeds({51, 52, 53}, 5)));

// ---------------------------------------------------------------------------
// Tokenizer: decode(encode(s)) == whitespace-normalized s, for fuzzed input.
// ---------------------------------------------------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, RoundTripNormalizesWhitespace) {
  Rng rng(GetParam());
  Tokenizer tokenizer(32000);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789_!?.wwwww   ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    size_t words = rng.NextBounded(8);
    for (size_t w = 0; w < words; ++w) {
      size_t len = 1 + rng.NextBounded(6);
      for (size_t i = 0; i < len; ++i) {
        text += charset[rng.NextBounded(charset.size())];
      }
      text += ' ';
    }
    // Reference normalization: collapse whitespace runs, trim.
    std::string normalized;
    bool in_space = true;
    for (char c : text) {
      bool is_space = c == ' ' || c == '\t' || c == '\n';
      if (is_space) {
        if (!in_space) {
          normalized += ' ';
        }
        in_space = true;
      } else {
        normalized += c;
        in_space = false;
      }
    }
    while (!normalized.empty() && normalized.back() == ' ') {
      normalized.pop_back();
    }
    EXPECT_EQ(tokenizer.Decode(tokenizer.Encode(text)), normalized)
        << "input: [" << text << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::ValuesIn(PropertySeeds({61, 62, 63}, 6)));

// ---------------------------------------------------------------------------
// Cost model: monotonicity and superadditivity-of-batching properties.
// ---------------------------------------------------------------------------

class CostModelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostModelPropertyTest, MonotoneInWorkAndBatchingNeverHurts) {
  Rng rng(GetParam());
  CostModel cost(ModelConfig::Llama13B());
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t new_tokens = 1 + rng.NextBounded(4000);
    uint64_t context = rng.NextBounded(20000);

    // More new tokens never costs less.
    WorkItem a{new_tokens, context};
    WorkItem b{new_tokens + 1 + rng.NextBounded(500), context};
    ASSERT_LE(cost.BatchTime(std::span<const WorkItem>(&a, 1)),
              cost.BatchTime(std::span<const WorkItem>(&b, 1)));

    // Longer context never costs less.
    WorkItem c{new_tokens, context + 1 + rng.NextBounded(5000)};
    ASSERT_LE(cost.BatchTime(std::span<const WorkItem>(&a, 1)),
              cost.BatchTime(std::span<const WorkItem>(&c, 1)));

    // One fused batch never costs more than running the items separately.
    WorkItem d{1 + rng.NextBounded(200), rng.NextBounded(4000)};
    std::vector<WorkItem> fused = {a, d};
    ASSERT_LE(cost.BatchTime(fused),
              cost.BatchTime(std::span<const WorkItem>(&a, 1)) +
                  cost.BatchTime(std::span<const WorkItem>(&d, 1)));
  }
}

TEST_P(CostModelPropertyTest, TransferTimeIsLinearish) {
  Rng rng(GetParam());
  CostModel cost(ModelConfig::Llama13B());
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t bytes = 1 + rng.NextBounded(1000000000);
    ASSERT_LE(cost.TransferTime(bytes), cost.TransferTime(bytes * 2));
    // Latency term bounded: doubling bytes at most doubles time.
    ASSERT_LE(cost.TransferTime(bytes * 2), 2 * cost.TransferTime(bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelPropertyTest,
                         ::testing::ValuesIn(PropertySeeds({71, 72}, 7)));

}  // namespace
}  // namespace symphony
