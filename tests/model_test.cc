// Tests for the deterministic pseudo-LLM: state evolution, distribution
// properties, cost model shape. These encode the invariants the whole
// serving stack depends on (prefix reuse == recompute).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/model/cost_model.h"
#include "src/model/distribution.h"
#include "src/model/model.h"
#include "src/model/model_config.h"

namespace symphony {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  Model model_{ModelConfig::Tiny()};
};

TEST_F(ModelTest, AdvanceIsDeterministic) {
  HiddenState a = model_.Advance(model_.InitialState(), 270, 0);
  HiddenState b = model_.Advance(model_.InitialState(), 270, 0);
  EXPECT_EQ(a, b);
}

TEST_F(ModelTest, StateDependsOnToken) {
  HiddenState a = model_.Advance(model_.InitialState(), 270, 0);
  HiddenState b = model_.Advance(model_.InitialState(), 271, 0);
  EXPECT_NE(a, b);
}

TEST_F(ModelTest, StateDependsOnPosition) {
  HiddenState a = model_.Advance(model_.InitialState(), 270, 0);
  HiddenState b = model_.Advance(model_.InitialState(), 270, 1);
  EXPECT_NE(a, b);
}

TEST_F(ModelTest, PrefixReuseEqualsRecompute) {
  // The central KV-cache invariant: continuing from a cached prefix state
  // produces the same states as recomputing the full sequence.
  std::vector<TokenId> prefix = {260, 261, 262, 263};
  std::vector<TokenId> suffix = {264, 265};

  std::vector<HiddenState> full_states = model_.AdvanceSeq(
      model_.InitialState(), {260, 261, 262, 263, 264, 265}, 0);

  std::vector<HiddenState> prefix_states =
      model_.AdvanceSeq(model_.InitialState(), prefix, 0);
  std::vector<HiddenState> resumed =
      model_.AdvanceSeq(prefix_states.back(), suffix,
                        static_cast<int32_t>(prefix.size()));

  EXPECT_EQ(full_states[3], prefix_states[3]);
  EXPECT_EQ(full_states[4], resumed[0]);
  EXPECT_EQ(full_states[5], resumed[1]);
}

TEST_F(ModelTest, DifferentFamiliesDiverge) {
  Model other(ModelConfig::Llama13B());
  EXPECT_NE(model_.InitialState(), other.InitialState());
}

TEST_F(ModelTest, PredictIsDeterministic) {
  HiddenState s = model_.Advance(model_.InitialState(), 270, 0);
  Distribution d1 = model_.Predict(s);
  Distribution d2 = model_.Predict(s);
  EXPECT_EQ(d1.Argmax(), d2.Argmax());
  EXPECT_EQ(d1.TopCandidates(), d2.TopCandidates());
}

class DistributionTest : public ::testing::Test {
 protected:
  ModelConfig config_ = ModelConfig::Tiny();
  Model model_{config_};

  Distribution DistAfter(std::vector<TokenId> tokens) {
    HiddenState s = model_.InitialState();
    int32_t pos = 0;
    for (TokenId t : tokens) {
      s = model_.Advance(s, t, pos++);
    }
    return model_.Predict(s);
  }
};

TEST_F(DistributionTest, DenseSumsToOne) {
  Distribution d = DistAfter({260, 300 % 256});
  std::vector<double> probs = d.Dense();
  ASSERT_EQ(probs.size(), config_.vocab_size);
  double total = std::accumulate(probs.begin(), probs.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(DistributionTest, ProbMatchesDense) {
  Distribution d = DistAfter({261});
  std::vector<double> probs = d.Dense();
  for (TokenId t = 0; t < static_cast<TokenId>(config_.vocab_size); t += 7) {
    EXPECT_NEAR(d.Prob(t), probs[static_cast<size_t>(t)], 1e-12) << "token " << t;
  }
}

TEST_F(DistributionTest, ArgmaxMatchesDense) {
  for (TokenId seed_token = 260; seed_token < 280; ++seed_token) {
    Distribution d = DistAfter({seed_token});
    std::vector<double> probs = d.Dense();
    TokenId argmax = 0;
    for (TokenId t = 1; t < static_cast<TokenId>(probs.size()); ++t) {
      if (probs[static_cast<size_t>(t)] > probs[static_cast<size_t>(argmax)]) {
        argmax = t;
      }
    }
    EXPECT_EQ(d.Argmax(), argmax);
  }
}

TEST_F(DistributionTest, SampleMatchesDistribution) {
  Distribution d = DistAfter({262});
  Rng rng(1234);
  std::vector<int> counts(config_.vocab_size, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    TokenId t = d.Sample(rng.NextDouble());
    ASSERT_GE(t, 0);
    ASSERT_LT(t, static_cast<TokenId>(config_.vocab_size));
    ++counts[static_cast<size_t>(t)];
  }
  // Empirical frequency of the top candidates should match Prob().
  for (TokenId t : d.TopCandidates()) {
    double expected = d.Prob(t);
    double got = static_cast<double>(counts[static_cast<size_t>(t)]) / kN;
    EXPECT_NEAR(got, expected, 0.01) << "token " << t;
  }
}

TEST_F(DistributionTest, LowTemperatureSharpens) {
  Distribution d = DistAfter({263});
  Rng rng(99);
  int argmax_hits_cold = 0;
  int argmax_hits_hot = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    if (d.Sample(rng.NextDouble(), 0.1) == d.Argmax()) {
      ++argmax_hits_cold;
    }
    if (d.Sample(rng.NextDouble(), 3.0) == d.Argmax()) {
      ++argmax_hits_hot;
    }
  }
  EXPECT_GT(argmax_hits_cold, argmax_hits_hot);
  EXPECT_GT(argmax_hits_cold, kN * 9 / 10);
}

TEST_F(DistributionTest, GreedyMaskedRespectsMask) {
  Distribution d = DistAfter({264});
  TokenId only = 42;
  TokenId got = d.GreedyMasked([&](TokenId t) { return t == only; });
  EXPECT_EQ(got, only);
}

TEST_F(DistributionTest, GreedyMaskedPrefersBestAllowedCandidate) {
  Distribution d = DistAfter({265});
  std::vector<TokenId> cands = d.TopCandidates();
  // Disallow the argmax; expect the next-best candidate.
  TokenId got = d.GreedyMasked([&](TokenId t) { return t != cands[0]; });
  EXPECT_EQ(got, cands[1]);
}

TEST_F(DistributionTest, GreedyMaskedDeadEndReturnsUnk) {
  Distribution d = DistAfter({266});
  EXPECT_EQ(d.GreedyMasked([](TokenId) { return false; }), kUnkToken);
}

TEST_F(DistributionTest, SampleMaskedOnlyReturnsAllowed) {
  Distribution d = DistAfter({267});
  Rng rng(7);
  auto even = [](TokenId t) { return t % 2 == 0; };
  for (int i = 0; i < 1000; ++i) {
    TokenId t = d.SampleMasked(rng.NextDouble(), 1.0, even);
    EXPECT_EQ(t % 2, 0);
  }
}

TEST_F(DistributionTest, FamilyMembersShareCandidates) {
  // Target and draft (same family) must mostly agree on candidate sets for
  // speculative decoding to be interesting.
  Model target(ModelConfig::Llama13B());
  Model draft(ModelConfig::Llama1BDraft());
  ASSERT_EQ(target.InitialState(), draft.InitialState());
  HiddenState s = target.InitialState();
  int argmax_agree = 0;
  constexpr int kSteps = 300;
  for (int i = 0; i < kSteps; ++i) {
    Distribution dt = target.Predict(s);
    Distribution dd = draft.Predict(s);
    EXPECT_EQ(dt.state(), dd.state());
    if (dt.Argmax() == dd.Argmax()) {
      ++argmax_agree;
    }
    s = target.Advance(s, dt.Argmax(), i);
  }
  double agreement = static_cast<double>(argmax_agree) / kSteps;
  EXPECT_GT(agreement, 0.4);  // Correlated...
  EXPECT_LT(agreement, 0.99);  // ...but not identical.
}

TEST_F(DistributionTest, EosAppearsWithConfiguredBias) {
  ModelConfig biased = ModelConfig::Tiny();
  biased.eos_bias_permille = 200;  // 20% of steps boost EOS to the top.
  Model model(biased);
  HiddenState s = model.InitialState();
  int eos_top = 0;
  constexpr int kSteps = 2000;
  for (int i = 0; i < kSteps; ++i) {
    Distribution d = model.Predict(s);
    std::vector<TokenId> cands = d.TopCandidates();
    bool eos_candidate = false;
    for (TokenId t : cands) {
      if (t == kEosToken) {
        eos_candidate = true;
      }
    }
    if (eos_candidate) {
      ++eos_top;
    }
    s = model.Advance(s, static_cast<TokenId>(260 + (i % 40)), i);
  }
  EXPECT_NEAR(static_cast<double>(eos_top) / kSteps, 0.2, 0.05);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModel cost_{ModelConfig::Llama13B()};
};

TEST_F(CostModelTest, EmptyBatchIsFree) {
  EXPECT_EQ(cost_.BatchTime({}), 0);
}

TEST_F(CostModelTest, DecodeStepIsMemoryBound) {
  // One decode token with 3000-token context: dominated by the weight pass
  // (~16ms at 2TB/s * 0.8 for 26GB).
  WorkItem item{1, 3000};
  SimDuration t = cost_.BatchTime(std::span<const WorkItem>(&item, 1));
  EXPECT_GT(t, Millis(10));
  EXPECT_LT(t, Millis(40));
}

TEST_F(CostModelTest, PrefillIsComputeBound) {
  // 3000-token prefill: ~0.5s of compute at 156 TFLOPS effective.
  WorkItem item{3000, 0};
  SimDuration t = cost_.BatchTime(std::span<const WorkItem>(&item, 1));
  EXPECT_GT(t, Millis(300));
  EXPECT_LT(t, Millis(800));
}

TEST_F(CostModelTest, BatchingAmortizesWeightPass) {
  // 8 decode tokens in one batch must be much cheaper than 8 separate steps.
  std::vector<WorkItem> batch(8, WorkItem{1, 1000});
  SimDuration batched = cost_.BatchTime(batch);
  WorkItem single{1, 1000};
  SimDuration sequential = 8 * cost_.BatchTime(std::span<const WorkItem>(&single, 1));
  EXPECT_LT(batched, sequential / 3);
}

TEST_F(CostModelTest, LongerContextCostsMore) {
  WorkItem short_ctx{1, 100};
  WorkItem long_ctx{1, 50000};
  EXPECT_LT(cost_.BatchTime(std::span<const WorkItem>(&short_ctx, 1)),
            cost_.BatchTime(std::span<const WorkItem>(&long_ctx, 1)));
}

TEST_F(CostModelTest, TransferTimeScalesWithBytes) {
  SimDuration small = cost_.TransferTime(1'000'000);
  SimDuration large = cost_.TransferTime(1'000'000'000);
  EXPECT_LT(small, large);
  // 1GB over 25GB/s ~= 40ms.
  EXPECT_NEAR(ToSeconds(large), 0.04, 0.005);
}

TEST_F(CostModelTest, ZeroByteNetworkTimeIsPropagationLatency) {
  // An empty message is still a packet: it pays the interconnect's
  // propagation latency even though it serializes in zero time.
  // (Regression: this used to return 0, letting empty-payload sends and
  // fully-deduped delta ships arrive instantaneously.)
  EXPECT_EQ(cost_.NetworkTime(0), cost_.hardware().interconnect_latency);
  EXPECT_GT(cost_.NetworkTime(1 << 20), cost_.NetworkTime(0));
}

TEST_F(CostModelTest, KvBudgetFitsRoughly50GB) {
  // 80GB - 26GB weights - 4GB activations = 50GB.
  EXPECT_NEAR(static_cast<double>(cost_.DeviceKvBudgetBytes()), 50e9, 1e9);
  // About 61k tokens at 0.82MB/token.
  EXPECT_GT(cost_.DeviceKvBudgetTokens(), 55'000u);
  EXPECT_LT(cost_.DeviceKvBudgetTokens(), 65'000u);
}

TEST_F(CostModelTest, CachedPrefillMuchCheaperThanFull) {
  // The Figure 3 asymmetry: generating 100 tokens on a cached 3000-token
  // prefix must be far cheaper than prefilling 3000 tokens first.
  WorkItem cached{100, 3000};
  WorkItem full{3100, 0};
  SimDuration cached_t = cost_.BatchTime(std::span<const WorkItem>(&cached, 1));
  SimDuration full_t = cost_.BatchTime(std::span<const WorkItem>(&full, 1));
  EXPECT_LT(cached_t * 5, full_t);
}

}  // namespace
}  // namespace symphony
