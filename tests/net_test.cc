// Tests for src/net: the cluster IPC fabric.
//
// The acceptance property (ISSUE 6): kill or migrate ONE endpoint of a
// cross-replica IPC pair at a random seeded time — the replayed endpoint's
// emitted text and the surviving endpoint's received message sequence are
// bit-identical to the fault-free run. Plus: partition windows retry through
// without loss, partition deadlines drop with kUnavailable surfaced, FIFO
// fairness for multi-waiter recv (including under replay), and the
// local-vs-cross delivery counters.
//
// Credit-based flow control (ISSUE 7): queue depth never exceeds the credit
// limit under random kill/migrate of either endpoint; blocked-sender wakeup
// order is bit-identical under replay (journaled kCreditWait grants); 2- and
// 3-cycle credit-wait deadlocks are flagged with kDeadlock instead of
// hanging; FaultPlan slow-consumer windows stall deliveries and propagate
// backpressure to producers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/faults/fault_plan.h"
#include "src/net/ipc_fabric.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

constexpr int kPairMsgs = 6;

// Sends kPairMsgs messages whose contents depend on generated tokens, so a
// replayed producer must re-derive the exact same bytes.
LipProgram PairProducer() {
  return [](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> d =
        co_await ctx.pred(kv, ctx.tokenizer().Encode("w1 w2"));
    if (!d.ok()) {
      co_return;
    }
    TokenId t = d->back().Sample(ctx.uniform(), 0.8);
    for (int i = 0; i < kPairMsgs; ++i) {
      co_await ctx.send("pair", "m" + std::to_string(t) + "." + std::to_string(i));
      ctx.emit("s" + std::to_string(t) + "." + std::to_string(i) + ";");
      co_await ctx.sleep(Millis(1));
      StatusOr<std::vector<Distribution>> n = co_await ctx.pred1(kv, t);
      if (!n.ok()) {
        co_return;
      }
      t = n->back().Sample(ctx.uniform(), 0.8);
    }
    co_return;
  };
}

LipProgram PairConsumer(int msgs) {
  return [msgs](LipContext& ctx) -> Task {
    for (int i = 0; i < msgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("pair");
      if (!msg.ok()) {
        co_return;
      }
      ctx.emit(*msg + ";");
    }
    co_return;
  };
}

ClusterOptions SplitPairOptions(uint64_t seed) {
  ClusterOptions options;
  options.replicas = 3;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.enable_recovery = true;
  return options;
}

enum class PairFault {
  kNone,
  kKillProducerReplica,
  kKillConsumerReplica,
  kMigrateProducer,
  kMigrateConsumer,
};

struct PairRun {
  std::string producer_out;
  std::string consumer_out;
  SimTime finish = 0;
  SymphonyCluster::ClusterSnapshot snap;
};

// Launches a producer/consumer pair on DIFFERENT replicas (round robin:
// consumer lands on 0, producer on 1) and optionally faults ONE endpoint.
// two_rack swaps the default single-switch topology for a 2-rack graph
// (replicas {0,1} | {2}, spine spare), making every cross-rack byte
// multi-hop.
PairRun RunSplitPair(uint64_t seed, PairFault fault, SimTime at,
                     bool two_rack = false) {
  Simulator sim;
  ClusterOptions options = SplitPairOptions(seed);
  if (two_rack) {
    options.topology.preset = TopologyOptions::Preset::kTwoRack;
    options.topology.rack_split = 2;
    options.topology.spine = true;
  }
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
  SymphonyCluster::ClusterLip prod =
      cluster.Launch("producer", "", PairProducer());
  EXPECT_NE(cons.replica, prod.replica);
  if (fault != PairFault::kNone) {
    sim.ScheduleAt(at, [&cluster, cons, prod, fault] {
      SymphonyCluster::ClusterLip victim =
          (fault == PairFault::kKillProducerReplica ||
           fault == PairFault::kMigrateProducer)
              ? prod
              : cons;
      SymphonyCluster::ClusterLip where = cluster.Locate(victim);
      if (fault == PairFault::kKillProducerReplica ||
          fault == PairFault::kKillConsumerReplica) {
        (void)cluster.KillReplica(where.replica);
      } else {
        (void)cluster.Migrate(where, (where.replica + 1) % 3);
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(cluster.Done(prod));
  EXPECT_TRUE(cluster.Done(cons));
  PairRun run;
  run.producer_out = cluster.Output(prod);
  run.consumer_out = cluster.Output(cons);
  run.finish = sim.now();
  run.snap = cluster.Snapshot();
  EXPECT_EQ(run.snap.replay_divergences, 0u);
  EXPECT_EQ(run.snap.ipc_dropped, 0u);
  return run;
}

// Mirrors recovery_test.cc's stress-scalable seed lists: curated base seeds
// by default, widened with derived seeds when SYMPHONY_STRESS is set.
std::vector<uint64_t> StressSeeds(std::vector<uint64_t> base, uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

// ---- The acceptance property ------------------------------------------

class SplitPairPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Kill or migrate ONE endpoint of a cross-replica pair at a seed-derived
// random time: the replayed endpoint's emitted text and the surviving
// endpoint's received sequence must match the fault-free run byte for byte.
TEST_P(SplitPairPropertyTest, FaultedEndpointStaysBitIdentical) {
  uint64_t seed = GetParam();
  PairRun baseline = RunSplitPair(seed, PairFault::kNone, 0);
  ASSERT_FALSE(baseline.consumer_out.empty());
  ASSERT_GT(baseline.finish, 0u);
  EXPECT_GT(baseline.snap.ipc_cross_sends, 0u);  // The pair really is split.
  Rng rng(seed ^ 0x5EEDF00DULL);
  constexpr PairFault kFaults[] = {
      PairFault::kKillProducerReplica, PairFault::kKillConsumerReplica,
      PairFault::kMigrateProducer, PairFault::kMigrateConsumer};
  PairFault fault = kFaults[rng.NextBounded(4)];
  double frac = 0.1 + 0.7 * rng.NextDouble();
  SimTime at = static_cast<SimTime>(frac * static_cast<double>(baseline.finish));
  PairRun faulted = RunSplitPair(seed, fault, at);
  EXPECT_EQ(faulted.producer_out, baseline.producer_out)
      << "seed=" << seed << " fault=" << static_cast<int>(fault)
      << " frac=" << frac;
  EXPECT_EQ(faulted.consumer_out, baseline.consumer_out)
      << "seed=" << seed << " fault=" << static_cast<int>(fault)
      << " frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPairPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {301, 302, 303, 304, 305, 306, 307, 308}, 0x6E7)));

// Deterministic late kills so the replay-discipline counters are observable:
// a replayed producer suppresses its journaled sends, a replayed consumer is
// served its journaled recvs verbatim.
TEST(NetTest, ReplayCountersShowSuppressionAndServedRecvs) {
  PairRun baseline = RunSplitPair(91, PairFault::kNone, 0);
  SimTime late = baseline.finish * 7 / 10;
  PairRun prod_killed = RunSplitPair(91, PairFault::kKillProducerReplica, late);
  EXPECT_EQ(prod_killed.consumer_out, baseline.consumer_out);
  EXPECT_GT(prod_killed.snap.ipc_sends_suppressed, 0u);
  PairRun cons_killed = RunSplitPair(91, PairFault::kKillConsumerReplica, late);
  EXPECT_EQ(cons_killed.consumer_out, baseline.consumer_out);
  EXPECT_GT(cons_killed.snap.ipc_recvs_replayed, 0u);
  EXPECT_GT(cons_killed.snap.ipc_rehomes, 0u);
}

// ---- Partition windows -------------------------------------------------

ClusterOptions PartitionOptions(uint64_t seed, FaultPlan* plan) {
  ClusterOptions options;
  options.replicas = 2;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.server.fault_plan = plan;
  return options;
}

// A partition window shorter than the send deadline: every send retries
// through it with backoff and completes — delayed, never lost or reordered.
TEST(NetTest, PartitionWindowRetriesAndCompletes) {
  auto run = [](FaultPlan* plan) {
    Simulator sim;
    SymphonyCluster cluster(&sim, PartitionOptions(17, plan));
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", PairProducer());
    EXPECT_NE(cons.replica, prod.replica);
    sim.Run();
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(cons));
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    EXPECT_EQ(snap.ipc_dropped, 0u);
    EXPECT_EQ(snap.ipc_received, static_cast<uint64_t>(kPairMsgs));
    return std::make_pair(cluster.Output(cons), snap);
  };
  auto [clean_out, clean_snap] = run(nullptr);
  ASSERT_FALSE(clean_out.empty());
  EXPECT_EQ(clean_snap.ipc_partition_retries, 0u);

  FaultPlan plan(17);
  plan.AddPartition(0, 1, Micros(500), Millis(30));
  auto [partitioned_out, partitioned_snap] = run(&plan);
  // Retried through the window; same messages, same order, nothing lost.
  EXPECT_GT(partitioned_snap.ipc_partition_retries, 0u);
  EXPECT_GT(plan.stats().partition_blocks, 0u);
  EXPECT_EQ(partitioned_out, clean_out);
}

// A partition outlasting the send deadline: messages drop, the channel
// surfaces kUnavailable via View(), and the receiver simply comes up short
// (send stays fire-and-forget — nothing throws at the sender).
TEST(NetTest, PartitionPastDeadlineDropsAndSurfacesUnavailable) {
  FaultPlan plan(19);
  plan.AddPartition(0, 1, 0, Millis(10000));  // The whole run.
  Simulator sim;
  ClusterOptions options = PartitionOptions(19, &plan);
  options.ipc.send_deadline = Millis(4);
  options.ipc.retry_base = Micros(500);
  options.ipc.retry_cap = Millis(2);
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
  SymphonyCluster::ClusterLip prod =
      cluster.Launch("producer", "", PairProducer());
  sim.Run();
  EXPECT_TRUE(cluster.Done(prod));     // Sender is never blocked by a drop.
  EXPECT_FALSE(cluster.Done(cons));    // Receiver is still waiting at the end.
  EXPECT_TRUE(cluster.Output(cons).empty());
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.ipc_dropped, static_cast<uint64_t>(kPairMsgs));
  EXPECT_EQ(snap.ipc_received, 0u);
  ChannelView view = cluster.fabric().View("pair");
  EXPECT_EQ(view.dropped, static_cast<uint64_t>(kPairMsgs));
  EXPECT_EQ(view.last_error.code(), StatusCode::kUnavailable);
}

// ---- FIFO fairness -----------------------------------------------------

// A consumer that fans one channel into `workers` threads, each tagging what
// it received and forwarding the tag to a collector channel. FIFO contract:
// parked waiters are served strictly in arrival order and no TryRecv
// overtakes them, so messages land on the workers round-robin in exact send
// order — and the forwarded tags reach the collector in that same order.
LipProgram FanInConsumer(int workers, int per_worker) {
  return [workers, per_worker](LipContext& ctx) -> Task {
    std::vector<ThreadId> spawned;
    for (int w = 0; w < workers; ++w) {
      spawned.push_back(ctx.spawn([w, per_worker](LipContext& tctx) -> Task {
        for (int k = 0; k < per_worker; ++k) {
          StatusOr<std::string> msg = co_await tctx.recv("fan");
          if (!msg.ok()) {
            co_return;
          }
          std::string tagged = "w" + std::to_string(w) + ":" + *msg;
          tctx.emit(tagged + ";");
          co_await tctx.send("out", std::move(tagged));
        }
        co_return;
      }));
    }
    for (ThreadId t : spawned) {
      co_await ctx.join(t);
    }
    co_return;
  };
}

LipProgram Collector(int msgs) {
  return [msgs](LipContext& ctx) -> Task {
    for (int i = 0; i < msgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("out");
      if (!msg.ok()) {
        co_return;
      }
      ctx.emit(*msg + ";");
    }
    co_return;
  };
}

LipProgram FanOutProducer(int msgs) {
  return [msgs](LipContext& ctx) -> Task {
    co_await ctx.sleep(Millis(1));  // Let every waiter park first.
    for (int i = 0; i < msgs; ++i) {
      co_await ctx.send("fan", "m" + std::to_string(i));
      co_await ctx.sleep(Micros(200));
    }
    co_return;
  };
}

// Strips "w<id>:" tags and returns the message sequence in emission order.
std::vector<std::string> MessageOrder(const std::string& out) {
  std::vector<std::string> order;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t colon = out.find(':', pos);
    size_t semi = out.find(';', pos);
    if (colon == std::string::npos || semi == std::string::npos) {
      break;
    }
    order.push_back(out.substr(colon + 1, semi - colon - 1));
    pos = semi + 1;
  }
  return order;
}

// Extracts worker `w`'s tagged emissions, in order.
std::vector<std::string> WorkerSubsequence(const std::string& out, int w) {
  std::vector<std::string> seq;
  std::string tag = "w" + std::to_string(w) + ":";
  size_t pos = 0;
  while ((pos = out.find(tag, pos)) != std::string::npos) {
    size_t semi = out.find(';', pos);
    seq.push_back(out.substr(pos, semi - pos));
    pos = semi + 1;
  }
  return seq;
}

TEST(NetTest, MultiWaiterRecvIsFifoFairIncludingUnderReplay) {
  constexpr int kWorkers = 3;
  constexpr int kPerWorker = 4;
  constexpr int kTotal = kWorkers * kPerWorker;
  struct FanRun {
    std::string consumer_out;
    std::string collector_out;
  };
  auto run = [&](std::optional<SimTime> kill_consumer_at) {
    Simulator sim;
    SymphonyCluster cluster(&sim, SplitPairOptions(23));
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("fan-consumer", "", FanInConsumer(kWorkers, kPerWorker));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("fan-producer", "", FanOutProducer(kTotal));
    SymphonyCluster::ClusterLip coll =
        cluster.Launch("collector", "", Collector(kTotal));
    if (kill_consumer_at.has_value()) {
      sim.ScheduleAt(*kill_consumer_at, [&cluster, cons] {
        (void)cluster.KillReplica(cluster.Locate(cons).replica);
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(cons));
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(coll));
    EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
    return FanRun{cluster.Output(cons), cluster.Output(coll)};
  };
  FanRun baseline = run(std::nullopt);
  // Messages were consumed in exact send order despite three competing
  // waiters — the collector (a third LIP) saw the tags in send order — and
  // each worker got its fair round-robin share.
  std::vector<std::string> order = MessageOrder(baseline.collector_out);
  ASSERT_EQ(order.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(order[i], "m" + std::to_string(i));
  }
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(WorkerSubsequence(baseline.consumer_out, w).size(),
              static_cast<size_t>(kPerWorker))
        << "worker " << w;
  }
  // The same fairness holds when the consumer is killed mid-fan-in and
  // replayed on another replica: the surviving collector's received sequence
  // is bit-identical (replay re-parks each waiter at its journal-recorded
  // queue position), and so is each worker's own stream. Only the
  // cross-thread interleaving of the replayed LIP's local emissions within
  // the fast-forwarded window may differ — per-thread journals record no
  // global emission order (see journal.h).
  FanRun killed = run(Millis(2));
  EXPECT_EQ(killed.collector_out, baseline.collector_out);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(WorkerSubsequence(killed.consumer_out, w),
              WorkerSubsequence(baseline.consumer_out, w))
        << "worker " << w;
  }
}

// ---- Counters ----------------------------------------------------------

TEST(NetTest, CountersDistinguishLocalFromCrossDeliveries) {
  // Co-located pair (one affinity key): every delivery is local.
  {
    Simulator sim;
    ClusterOptions options = SplitPairOptions(29);
    options.routing = RoutingPolicy::kCacheAffinity;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "pair-key", PairConsumer(kPairMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "pair-key", PairProducer());
    EXPECT_EQ(cons.replica, prod.replica);
    sim.Run();
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    EXPECT_EQ(snap.ipc_sent, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_received, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_local_deliveries, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_cross_sends, 0u);
  }
  // Split pair: every delivery crossed a link, and the per-replica rows
  // attribute sends to the producer's replica and receives to the consumer's.
  {
    Simulator sim;
    SymphonyCluster cluster(&sim, SplitPairOptions(29));
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", PairProducer());
    sim.Run();
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    EXPECT_EQ(snap.ipc_sent, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_received, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_local_deliveries, 0u);
    EXPECT_EQ(snap.ipc_cross_sends, static_cast<uint64_t>(kPairMsgs));
    ASSERT_EQ(snap.ipc_per_replica.size(), 3u);
    EXPECT_EQ(snap.ipc_per_replica[prod.replica].sent,
              static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(snap.ipc_per_replica[cons.replica].received,
              static_cast<uint64_t>(kPairMsgs));
    // The topology's links carried the bytes: per-link stats account for
    // every payload byte the fabric handed over.
    uint64_t link_transfers = 0;
    uint64_t link_bytes = 0;
    for (const TopoLinkReport& link : snap.net_links) {
      link_transfers += link.stats.transfers;
      link_bytes += link.stats.bytes;
    }
    EXPECT_EQ(link_transfers, static_cast<uint64_t>(kPairMsgs));
    EXPECT_EQ(link_bytes, snap.ipc_cross_bytes);
    EXPECT_EQ(snap.net_transfers, snap.ipc_cross_sends);
  }
}

// ---- Credit-based flow control (ISSUE 7) -------------------------------

constexpr int kCreditMsgs = 12;

// Floods the bounded channel with no pacing: with k credits and a slower
// consumer, the producer MUST park (credit_waits > 0) for the run to finish.
LipProgram CreditProducer(int msgs) {
  return [msgs](LipContext& ctx) -> Task {
    for (int i = 0; i < msgs; ++i) {
      co_await ctx.send("credit", "m" + std::to_string(i));
      ctx.emit("s" + std::to_string(i) + ";");
    }
    co_return;
  };
}

LipProgram CreditConsumer(int msgs) {
  return [msgs](LipContext& ctx) -> Task {
    for (int i = 0; i < msgs; ++i) {
      StatusOr<std::string> msg = co_await ctx.recv("credit");
      if (!msg.ok()) {
        co_return;
      }
      ctx.emit(*msg + ";");
      co_await ctx.sleep(Micros(300));  // Slower than the producer floods.
    }
    co_return;
  };
}

struct CreditRun {
  std::string producer_out;
  std::string consumer_out;
  uint64_t queue_peak = 0;
  bool deadlocked = false;
  SimTime finish = 0;
  SymphonyCluster::ClusterSnapshot snap;
};

CreditRun RunCreditPair(uint64_t seed, uint64_t credits, PairFault fault,
                        SimTime at) {
  Simulator sim;
  ClusterOptions options = SplitPairOptions(seed);
  options.ipc.channel_credits = credits;
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", CreditConsumer(kCreditMsgs));
  SymphonyCluster::ClusterLip prod =
      cluster.Launch("producer", "", CreditProducer(kCreditMsgs));
  EXPECT_NE(cons.replica, prod.replica);
  if (fault != PairFault::kNone) {
    sim.ScheduleAt(at, [&cluster, cons, prod, fault] {
      SymphonyCluster::ClusterLip victim =
          (fault == PairFault::kKillProducerReplica ||
           fault == PairFault::kMigrateProducer)
              ? prod
              : cons;
      SymphonyCluster::ClusterLip where = cluster.Locate(victim);
      if (fault == PairFault::kKillProducerReplica ||
          fault == PairFault::kKillConsumerReplica) {
        (void)cluster.KillReplica(where.replica);
      } else {
        (void)cluster.Migrate(where, (where.replica + 1) % 3);
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(cluster.Done(prod));
  EXPECT_TRUE(cluster.Done(cons));
  CreditRun run;
  run.producer_out = cluster.Output(prod);
  run.consumer_out = cluster.Output(cons);
  ChannelView view = cluster.fabric().View("credit");
  run.queue_peak = view.queue_peak;
  run.deadlocked = view.deadlocked;
  run.finish = sim.now();
  run.snap = cluster.Snapshot();
  EXPECT_EQ(run.snap.replay_divergences, 0u);
  EXPECT_EQ(run.snap.ipc_dropped, 0u);
  return run;
}

class CreditBoundPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The acceptance property: with k credits the channel NEVER holds more than
// k undelivered messages — even while a seed-derived random kill/migrate of
// either endpoint is replayed — and delivery stays complete, in-order, and
// bit-identical to the fault-free run.
TEST_P(CreditBoundPropertyTest, QueueDepthNeverExceedsCreditsUnderFaults) {
  uint64_t seed = GetParam();
  for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    CreditRun baseline = RunCreditPair(seed, k, PairFault::kNone, 0);
    ASSERT_FALSE(baseline.consumer_out.empty());
    EXPECT_GT(baseline.snap.ipc_credit_waits, 0u)
        << "seed=" << seed << " k=" << k << ": flood never parked";
    EXPECT_LE(baseline.queue_peak, k) << "seed=" << seed << " k=" << k;
    Rng rng(seed ^ (0xC4ED17ULL + k));
    constexpr PairFault kFaults[] = {
        PairFault::kKillProducerReplica, PairFault::kKillConsumerReplica,
        PairFault::kMigrateProducer, PairFault::kMigrateConsumer};
    PairFault fault = kFaults[rng.NextBounded(4)];
    double frac = 0.1 + 0.7 * rng.NextDouble();
    SimTime at =
        static_cast<SimTime>(frac * static_cast<double>(baseline.finish));
    CreditRun faulted = RunCreditPair(seed, k, fault, at);
    EXPECT_LE(faulted.queue_peak, k)
        << "seed=" << seed << " k=" << k << " fault=" << static_cast<int>(fault)
        << " frac=" << frac;
    EXPECT_EQ(faulted.producer_out, baseline.producer_out)
        << "seed=" << seed << " k=" << k << " fault=" << static_cast<int>(fault);
    EXPECT_EQ(faulted.consumer_out, baseline.consumer_out)
        << "seed=" << seed << " k=" << k << " fault=" << static_cast<int>(fault);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CreditBoundPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {401, 402, 403, 404, 405, 406}, 0xC4E)));

// One producer LIP with three sender threads contending for a 1-credit
// channel: grants wake parked senders strictly FIFO, and a journaled grant
// ordinal (kCreditWait) re-parks each replayed blocked send at the exact
// position it held — so the consumer's received sequence is bit-identical
// when the producer's replica is killed mid-contention.
TEST(NetTest, BlockedSenderWakeupOrderBitIdenticalUnderReplay) {
  constexpr int kSenders = 3;
  constexpr int kPerSender = 3;
  constexpr int kTotal = kSenders * kPerSender;
  auto producer = []() -> LipProgram {
    return [](LipContext& ctx) -> Task {
      std::vector<ThreadId> spawned;
      for (int w = 0; w < kSenders; ++w) {
        spawned.push_back(ctx.spawn([w](LipContext& tctx) -> Task {
          for (int i = 0; i < kPerSender; ++i) {
            co_await tctx.send(
                "credit", "t" + std::to_string(w) + "." + std::to_string(i));
          }
          co_return;
        }));
      }
      for (ThreadId t : spawned) {
        co_await ctx.join(t);
      }
      co_return;
    };
  };
  auto run = [&](std::optional<SimTime> kill_producer_at) {
    Simulator sim;
    ClusterOptions options = SplitPairOptions(37);
    options.ipc.channel_credits = 1;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", CreditConsumer(kTotal));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", producer());
    if (kill_producer_at.has_value()) {
      sim.ScheduleAt(*kill_producer_at, [&cluster, prod] {
        (void)cluster.KillReplica(cluster.Locate(prod).replica);
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(cons));
    EXPECT_TRUE(cluster.Done(prod));
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    EXPECT_EQ(snap.replay_divergences, 0u);
    return std::make_pair(cluster.Output(cons), snap);
  };
  auto [baseline_out, baseline_snap] = run(std::nullopt);
  ASSERT_FALSE(baseline_out.empty());
  EXPECT_GT(baseline_snap.ipc_credit_waits, 0u);
  EXPECT_GT(baseline_snap.ipc_credit_grants, 0u);
  // Kill mid-contention: some grants are already journaled (replayed as
  // kCreditWait entries), the rest of the flood re-parks live in order.
  auto [killed_out, killed_snap] = run(Millis(1));
  EXPECT_EQ(killed_out, baseline_out);
  EXPECT_GT(killed_snap.ipc_credit_waits_replayed, 0u);
}

// ---- Deadlock detection ------------------------------------------------

// After a handshake that pins both channel homes, each peer floods its
// outbound channel one message past the credit limit without ever receiving
// again: both park, the wait-for graph closes, and the fabric must FLAG the
// cycle (kDeadlock on both channels) instead of hanging.
LipProgram DeadlockPeer(std::string out, std::string in, bool leader,
                        int flood) {
  return [out = std::move(out), in = std::move(in), leader,
          flood](LipContext& ctx) -> Task {
    if (leader) {
      co_await ctx.send(out, "hs");
      StatusOr<std::string> hs = co_await ctx.recv(in);
      if (!hs.ok()) {
        co_return;
      }
    } else {
      StatusOr<std::string> hs = co_await ctx.recv(in);
      if (!hs.ok()) {
        co_return;
      }
      co_await ctx.send(out, "hs");
    }
    for (int i = 0; i < flood; ++i) {
      co_await ctx.send(out, "f" + std::to_string(i));
    }
    ctx.emit("done");  // Unreachable when the flood exceeds the credits.
    co_return;
  };
}

TEST(NetTest, TwoCycleCreditDeadlockIsDetectedNotHung) {
  constexpr uint64_t kCredits = 2;
  Simulator sim;
  ClusterOptions options = SplitPairOptions(41);
  options.replicas = 2;
  options.ipc.channel_credits = kCredits;
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip a = cluster.Launch(
      "peer-a", "", DeadlockPeer("a2b", "b2a", true, kCredits + 1));
  SymphonyCluster::ClusterLip b = cluster.Launch(
      "peer-b", "", DeadlockPeer("b2a", "a2b", false, kCredits + 1));
  EXPECT_NE(a.replica, b.replica);
  sim.Run();  // Terminates: parked senders schedule no events.
  EXPECT_FALSE(cluster.Done(a));
  EXPECT_FALSE(cluster.Done(b));
  EXPECT_TRUE(cluster.Output(a).empty());
  EXPECT_TRUE(cluster.Output(b).empty());
  for (const char* name : {"a2b", "b2a"}) {
    ChannelView view = cluster.fabric().View(name);
    EXPECT_TRUE(view.deadlocked) << name;
    EXPECT_EQ(view.last_error.code(), StatusCode::kDeadlock) << name;
    EXPECT_EQ(view.capacity, kCredits) << name;
    EXPECT_EQ(view.credits, 0) << name;
    EXPECT_EQ(view.send_waiters, 1u) << name;
    EXPECT_LE(view.queue_peak, kCredits) << name;
  }
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.ipc_credit_deadlocks, 2u);
  EXPECT_GE(snap.ipc_credit_waits, 2u);
  // Parked senders advertise admission backpressure on both replicas.
  EXPECT_GT(cluster.fabric().BackpressureDelay(a.replica), 0);
  EXPECT_GT(cluster.fabric().BackpressureDelay(b.replica), 0);
}

TEST(NetTest, ThreeCycleCreditDeadlockIsDetectedNotHung) {
  constexpr uint64_t kCredits = 1;
  Simulator sim;
  ClusterOptions options = SplitPairOptions(43);
  options.ipc.channel_credits = kCredits;
  SymphonyCluster cluster(&sim, options);
  // Ring handshake pins homes: ab -> B's replica, bc -> C's, ca -> A's.
  SymphonyCluster::ClusterLip a =
      cluster.Launch("peer-a", "", DeadlockPeer("ab", "ca", true, kCredits + 1));
  SymphonyCluster::ClusterLip b = cluster.Launch(
      "peer-b", "", DeadlockPeer("bc", "ab", false, kCredits + 1));
  SymphonyCluster::ClusterLip c = cluster.Launch(
      "peer-c", "", DeadlockPeer("ca", "bc", false, kCredits + 1));
  EXPECT_NE(a.replica, b.replica);
  EXPECT_NE(b.replica, c.replica);
  sim.Run();
  EXPECT_FALSE(cluster.Done(a));
  EXPECT_FALSE(cluster.Done(b));
  EXPECT_FALSE(cluster.Done(c));
  for (const char* name : {"ab", "bc", "ca"}) {
    ChannelView view = cluster.fabric().View(name);
    EXPECT_TRUE(view.deadlocked) << name;
    EXPECT_EQ(view.last_error.code(), StatusCode::kDeadlock) << name;
  }
  EXPECT_EQ(cluster.Snapshot().ipc_credit_deadlocks, 3u);
}

// A pair that DRAINS (no cycle) must never be flagged: backpressure alone is
// not deadlock.
TEST(NetTest, BoundedButDrainingChannelIsNotFlaggedDeadlocked) {
  CreditRun run = RunCreditPair(47, 1, PairFault::kNone, 0);
  EXPECT_GT(run.snap.ipc_credit_waits, 0u);
  EXPECT_EQ(run.snap.ipc_credit_deadlocks, 0u);
  EXPECT_FALSE(run.deadlocked);
}

// ---- Slow-consumer windows ---------------------------------------------

// A FaultPlan slow-consumer window stalls every delivery to the home
// replica; with bounded credits the stall propagates to the producer as
// parking, and the run completes later but byte-identically.
TEST(NetTest, SlowConsumerWindowStallsDeliveriesAndParksSenders) {
  auto run = [](FaultPlan* plan, uint64_t credits) {
    Simulator sim;
    ClusterOptions options = SplitPairOptions(53);
    options.server.fault_plan = plan;
    options.ipc.channel_credits = credits;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", CreditConsumer(kCreditMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", CreditProducer(kCreditMsgs));
    sim.Run();
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(cons));
    CreditRun r;
    r.consumer_out = cluster.Output(cons);
    r.queue_peak = cluster.fabric().View("credit").queue_peak;
    r.finish = sim.now();
    r.snap = cluster.Snapshot();
    return r;
  };
  CreditRun clean = run(nullptr, 2);
  ASSERT_FALSE(clean.consumer_out.empty());
  FaultPlan plan(53);
  plan.AddSlowConsumer(0, 0, Seconds(60), Micros(500));
  CreditRun slow = run(&plan, 2);
  EXPECT_GT(plan.stats().slow_consumer_stalls, 0u);
  EXPECT_GT(slow.finish, clean.finish);
  EXPECT_GT(slow.snap.ipc_credit_waits, 0u);
  EXPECT_LE(slow.queue_peak, 2u);
  EXPECT_EQ(slow.consumer_out, clean.consumer_out);  // Delayed, not reordered.
}

// Per-channel override: an unbounded fabric with one channel bounded via
// SetChannelCredits parks only that channel's senders.
TEST(NetTest, PerChannelCreditOverrideBoundsOnlyThatChannel) {
  Simulator sim;
  ClusterOptions options = SplitPairOptions(59);  // channel_credits = 0.
  SymphonyCluster cluster(&sim, options);
  cluster.fabric().SetChannelCredits("credit", 1);
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", CreditConsumer(kCreditMsgs));
  SymphonyCluster::ClusterLip prod =
      cluster.Launch("producer", "", CreditProducer(kCreditMsgs));
  sim.Run();
  EXPECT_TRUE(cluster.Done(prod));
  EXPECT_TRUE(cluster.Done(cons));
  ChannelView bounded = cluster.fabric().View("credit");
  EXPECT_EQ(bounded.capacity, 1u);
  EXPECT_LE(bounded.queue_peak, 1u);
  EXPECT_GT(cluster.Snapshot().ipc_credit_waits, 0u);
  // Raising the bound back to unbounded releases any future backpressure.
  cluster.fabric().SetChannelCredits("credit", 0);
  EXPECT_EQ(cluster.fabric().View("credit").capacity, 0u);
}

// ---- Network topology (ISSUE 8) ----------------------------------------

// Zero bytes is still a packet: the propagation latency applies, end to end
// and in the cost model. (Regression: NetworkTime(0) used to return 0, so
// empty-payload sends and fully-deduped delta ships teleported.)
TEST(NetTopologyTest, ZeroByteTransferStillPaysPropagationLatency) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  NetworkTopology topo(&sim, &cost, nullptr, nullptr);
  SimDuration latency = cost.hardware().interconnect_latency;
  EXPECT_EQ(topo.Transfer(0, 1, 0, "empty"), latency);
  EXPECT_EQ(cost.NetworkTime(0), latency);
}

// The default single-switch preset is the legacy uniform interconnect: one
// idle transfer costs exactly CostModel::NetworkTime, and back-to-back
// transfers on the same pair serialize (queue_delay shows the wait).
TEST(NetTopologyTest, SingleSwitchMatchesCostModelAndSerializes) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  NetworkTopology topo(&sim, &cost, nullptr, nullptr);
  constexpr uint64_t kBytes = 1 << 20;
  SimTime first = topo.Transfer(0, 1, kBytes, "a");
  EXPECT_EQ(first, cost.NetworkTime(kBytes));
  // Second transfer queues behind the first's serialization (not its
  // latency): arrival = 2x serialization + latency.
  SimTime second = topo.Transfer(0, 1, kBytes, "b");
  SimDuration serialize =
      cost.NetworkTime(kBytes) - cost.hardware().interconnect_latency;
  EXPECT_EQ(second, first + serialize);
  // The reverse direction is an independent wire.
  EXPECT_EQ(topo.Transfer(1, 0, kBytes, "c"), cost.NetworkTime(kBytes));
  EXPECT_EQ(topo.stats().multi_hop_transfers, 0u);
  std::vector<TopoLinkReport> links = topo.LinkReport();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].name, "link:replica0->replica1");
  EXPECT_EQ(links[0].stats.transfers, 2u);
  EXPECT_EQ(links[0].stats.queue_delay, serialize);
  EXPECT_EQ(links[1].name, "link:replica1->replica0");
}

TopologyOptions TwoRackOptions(size_t replicas, size_t split, bool spine) {
  TopologyOptions topt;
  topt.preset = TopologyOptions::Preset::kTwoRack;
  topt.replicas = replicas;
  topt.rack_split = split;
  topt.spine = spine;
  return topt;
}

// Two racks: an inter-rack transfer pays exactly one uplink (serialization +
// latency) more than an intra-rack one, and the placement metric sees the
// difference.
TEST(NetTopologyTest, InterRackCostsOneUplinkMoreThanIntraRack) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  NetworkTopology topo(&sim, &cost, nullptr, nullptr,
                       TwoRackOptions(4, 2, false));
  constexpr uint64_t kBytes = 4096;
  // Disjoint directed links: 0->1 uses (0->rack0, rack0->1); 2->0 uses
  // (2->rack1, rack1->rack0, rack0->0). No queueing between the two.
  SimTime intra = topo.Transfer(0, 1, kBytes, "intra");
  SimTime inter = topo.Transfer(2, 0, kBytes, "inter");
  EXPECT_GT(inter, intra);
  // Defaults: edge latency = half the interconnect latency, uplink = full —
  // so the extra hop costs exactly one single-switch one-way.
  EXPECT_EQ(inter - intra, cost.NetworkTime(kBytes));
  EXPECT_EQ(topo.stats().multi_hop_transfers, 2u);
  SimDuration hw_latency = cost.hardware().interconnect_latency;
  EXPECT_EQ(topo.Distance(0, 1), hw_latency);
  EXPECT_EQ(topo.Distance(0, 2), 2 * hw_latency);
  EXPECT_EQ(topo.Distance(3, 3), 0);
}

// A downed uplink with a spine spare: transfers reroute over the strictly
// worse path (later arrival, reroutes counted) and go back to the uplink
// once the window closes.
TEST(NetTopologyTest, DownedUplinkReroutesOverSpine) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  constexpr uint64_t kBytes = 4096;
  FaultPlan plan(7);
  plan.AddLinkDown("rack0", "rack1", 0, Millis(10));
  NetworkTopology faulted(&sim, &cost, &plan, nullptr,
                          TwoRackOptions(3, 2, true));
  NetworkTopology healthy(&sim, &cost, nullptr, nullptr,
                          TwoRackOptions(3, 2, true));
  EXPECT_TRUE(faulted.Routable(0, 2, 0));
  SimTime via_spine = faulted.Transfer(0, 2, kBytes, "x");
  SimTime via_uplink = healthy.Transfer(0, 2, kBytes, "x");
  EXPECT_GT(via_spine, via_uplink);
  EXPECT_EQ(faulted.stats().reroutes, 1u);
  EXPECT_EQ(plan.stats().link_down_blocks, 1u);
  // Outside the window the static uplink route is live again.
  EXPECT_TRUE(faulted.Routable(0, 2, Millis(11)));
}

// No spare: the same window makes the racks mutually unroutable (blocked
// counted), while intra-rack traffic is untouched.
TEST(NetTopologyTest, DownedUplinkWithoutSpareBlocksRouting) {
  Simulator sim;
  CostModel cost(ModelConfig::Tiny());
  FaultPlan plan(7);
  plan.AddLinkDown("rack0", "rack1", 0, Millis(10));
  NetworkTopology topo(&sim, &cost, &plan, nullptr,
                       TwoRackOptions(3, 2, false));
  EXPECT_FALSE(topo.Routable(0, 2, 0));
  EXPECT_TRUE(topo.Routable(0, 1, 0));
  EXPECT_TRUE(topo.Routable(0, 2, Millis(10)));  // Window is half-open.
  EXPECT_EQ(topo.stats().blocked, 1u);
  EXPECT_EQ(plan.stats().link_down_blocks, 1u);
}

// Cluster-level link-down surfacing on the single-switch mesh (no alternate
// path exists by construction): sends retry with backoff through the window
// — the IPC semantics of a partition, driven by the topology — and complete
// without loss or reordering.
TEST(NetTest, LinkDownWindowRetriesAndCompletes) {
  auto run = [](FaultPlan* plan) {
    Simulator sim;
    SymphonyCluster cluster(&sim, PartitionOptions(17, plan));
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", PairProducer());
    sim.Run();
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(cons));
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    EXPECT_EQ(snap.ipc_dropped, 0u);
    return std::make_pair(cluster.Output(cons), snap);
  };
  auto [clean_out, clean_snap] = run(nullptr);
  ASSERT_FALSE(clean_out.empty());
  EXPECT_EQ(clean_snap.ipc_link_down_retries, 0u);

  FaultPlan plan(17);
  plan.AddLinkDown("replica0", "replica1", Micros(500), Millis(30));
  auto [downed_out, downed_snap] = run(&plan);
  EXPECT_GT(downed_snap.ipc_link_down_retries, 0u);
  EXPECT_GT(downed_snap.net_link_blocked, 0u);
  EXPECT_GT(plan.stats().link_down_blocks, 0u);
  EXPECT_EQ(downed_snap.ipc_partition_retries, 0u);  // Not a partition.
  EXPECT_EQ(downed_out, clean_out);
}

// An empty-payload send crosses the wire like any packet: delivered, counted
// as a cross-replica transfer, zero payload bytes on the link.
TEST(NetTest, EmptyPayloadIpcSendCrossesTheWire) {
  Simulator sim;
  SymphonyCluster cluster(&sim, SplitPairOptions(61));
  SymphonyCluster::ClusterLip cons =
      cluster.Launch("consumer", "", [](LipContext& ctx) -> Task {
        StatusOr<std::string> msg = co_await ctx.recv("empty");
        if (msg.ok()) {
          ctx.emit("len" + std::to_string(msg->size()) + ";");
        }
        co_return;
      });
  SymphonyCluster::ClusterLip prod =
      cluster.Launch("producer", "", [](LipContext& ctx) -> Task {
        co_await ctx.send("empty", "");
        co_return;
      });
  EXPECT_NE(cons.replica, prod.replica);
  sim.Run();
  EXPECT_TRUE(cluster.Done(cons));
  EXPECT_EQ(cluster.Output(cons), "len0;");
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.ipc_cross_sends, 1u);
  EXPECT_EQ(snap.ipc_cross_bytes, 0u);
  EXPECT_EQ(snap.net_transfers, 1u);
  EXPECT_EQ(snap.net_payload_bytes, 0u);
  // The empty packet still took wire time to arrive.
  CostModel cost(ModelConfig::Tiny());
  EXPECT_GE(sim.now(), cost.hardware().interconnect_latency);
}

// A LIP whose journal folded completely into a checkpoint ships ZERO live
// bytes on migration (fully-deduped delta). Regression: the zero-byte ship
// must still route through the topology (paying latency) and replay must
// stay bit-identical.
TEST(NetTest, FullyDedupedDeltaShipRoutesThroughTopology) {
  auto sleeper = []() -> LipProgram {
    return [](LipContext& ctx) -> Task {
      for (int i = 0; i < 8; ++i) {
        co_await ctx.sleep(Micros(200));
      }
      co_await ctx.sleep(Millis(20));
      ctx.emit("done;");
      co_return;
    };
  };
  auto run = [&](bool migrate) {
    Simulator sim;
    ClusterOptions options = SplitPairOptions(67);
    options.replicas = 2;
    options.checkpoint_journals = true;
    options.checkpoint_interval = 4;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip lip =
        cluster.Launch("sleeper", "", sleeper());
    if (migrate) {
      sim.ScheduleAt(Millis(10), [&cluster, lip] {
        SymphonyCluster::ClusterLip where = cluster.Locate(lip);
        (void)cluster.Migrate(where, (where.replica + 1) % 2);
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(lip));
    return std::make_pair(cluster.Output(lip), cluster.Snapshot());
  };
  auto [baseline_out, baseline_snap] = run(false);
  EXPECT_EQ(baseline_out, "done;");
  EXPECT_GT(baseline_snap.checkpoints, 0u);
  auto [migrated_out, migrated_snap] = run(true);
  EXPECT_EQ(migrated_out, baseline_out);
  EXPECT_EQ(migrated_snap.replay_divergences, 0u);
  EXPECT_EQ(migrated_snap.delta_ships, 1u);
  EXPECT_EQ(migrated_snap.ship_bytes, 0u) << "journal was fully folded";
  // The checkpoint fetch and the zero-byte ship both rode the topology.
  EXPECT_GE(migrated_snap.net_transfers, 2u);
  EXPECT_EQ(migrated_snap.net_payload_bytes,
            migrated_snap.store.fetched_bytes + migrated_snap.ipc_cross_bytes +
                migrated_snap.ship_bytes);
}

// ---- Byte conservation (property) --------------------------------------

// Every cross-replica byte stream — IPC payloads, journal ships, store chunk
// fetches — is charged to the topology exactly once, so on the single-hop
// single-switch mesh the per-link byte totals reconcile with the consumer
// counters, under a random seeded kill/migrate with checkpointing active.
class ByteConservationPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ByteConservationPropertyTest, LinkBytesMatchConsumerCounters) {
  uint64_t seed = GetParam();
  auto run = [&](PairFault fault, SimTime at) {
    Simulator sim;
    ClusterOptions options = SplitPairOptions(seed);
    options.checkpoint_journals = true;
    options.checkpoint_interval = 8;
    SymphonyCluster cluster(&sim, options);
    SymphonyCluster::ClusterLip cons =
        cluster.Launch("consumer", "", PairConsumer(kPairMsgs));
    SymphonyCluster::ClusterLip prod =
        cluster.Launch("producer", "", PairProducer());
    if (fault != PairFault::kNone) {
      sim.ScheduleAt(at, [&cluster, cons, prod, fault] {
        SymphonyCluster::ClusterLip victim =
            (fault == PairFault::kKillProducerReplica ||
             fault == PairFault::kMigrateProducer)
                ? prod
                : cons;
        SymphonyCluster::ClusterLip where = cluster.Locate(victim);
        if (fault == PairFault::kKillProducerReplica ||
            fault == PairFault::kKillConsumerReplica) {
          (void)cluster.KillReplica(where.replica);
        } else {
          (void)cluster.Migrate(where, (where.replica + 1) % 3);
        }
      });
    }
    sim.Run();
    EXPECT_TRUE(cluster.Done(prod));
    EXPECT_TRUE(cluster.Done(cons));
    SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
    uint64_t link_bytes = 0;
    for (const TopoLinkReport& link : snap.net_links) {
      link_bytes += link.stats.bytes;
    }
    EXPECT_EQ(snap.net_payload_bytes,
              snap.ipc_cross_bytes + snap.ship_bytes + snap.store.fetched_bytes)
        << "seed=" << seed << " fault=" << static_cast<int>(fault);
    EXPECT_EQ(link_bytes, snap.net_payload_bytes)
        << "seed=" << seed << " fault=" << static_cast<int>(fault);
    return sim.now();
  };
  SimTime finish = run(PairFault::kNone, 0);
  ASSERT_GT(finish, 0);
  Rng rng(seed ^ 0xB17E5ULL);
  constexpr PairFault kFaults[] = {
      PairFault::kKillProducerReplica, PairFault::kKillConsumerReplica,
      PairFault::kMigrateProducer, PairFault::kMigrateConsumer};
  PairFault fault = kFaults[rng.NextBounded(4)];
  double frac = 0.1 + 0.7 * rng.NextDouble();
  (void)run(fault, static_cast<SimTime>(frac * static_cast<double>(finish)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteConservationPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {501, 502, 503, 504, 505, 506}, 0xB17)));

// ---- Multi-hop replay bit-identity (property) --------------------------

class TwoRackSplitPairPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

// The ISSUE 6 acceptance property survives multi-hop routing: on the 2-rack
// graph (every producer->consumer byte crosses rack switches, some the
// uplink), a random seeded kill/migrate of ONE endpoint keeps both outputs
// bit-identical to the fault-free 2-rack run. Routing is deterministic, so
// timing shifts never leak into payloads.
TEST_P(TwoRackSplitPairPropertyTest, MultiHopRoutingStaysBitIdentical) {
  uint64_t seed = GetParam();
  PairRun baseline = RunSplitPair(seed, PairFault::kNone, 0, /*two_rack=*/true);
  ASSERT_FALSE(baseline.consumer_out.empty());
  EXPECT_GT(baseline.snap.net_multi_hop, 0u);  // Really crossed switches.
  Rng rng(seed ^ 0x2AC5ULL);
  constexpr PairFault kFaults[] = {
      PairFault::kKillProducerReplica, PairFault::kKillConsumerReplica,
      PairFault::kMigrateProducer, PairFault::kMigrateConsumer};
  PairFault fault = kFaults[rng.NextBounded(4)];
  double frac = 0.1 + 0.7 * rng.NextDouble();
  SimTime at = static_cast<SimTime>(frac * static_cast<double>(baseline.finish));
  PairRun faulted = RunSplitPair(seed, fault, at, /*two_rack=*/true);
  EXPECT_GT(faulted.snap.net_multi_hop, 0u);
  EXPECT_EQ(faulted.producer_out, baseline.producer_out)
      << "seed=" << seed << " fault=" << static_cast<int>(fault)
      << " frac=" << frac;
  EXPECT_EQ(faulted.consumer_out, baseline.consumer_out)
      << "seed=" << seed << " fault=" << static_cast<int>(fault)
      << " frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoRackSplitPairPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {601, 602, 603, 604, 605, 606}, 0x2AC)));

}  // namespace
}  // namespace symphony
