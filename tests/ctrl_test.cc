// Tests for src/ctrl: the autonomic control plane — heartbeat failure
// detection, epoch-fenced automatic recovery, readmission, and elastic
// replica scaling.
//
// The acceptance property (ISSUE 9): with ONLY a seeded FaultPlan crash (no
// external KillReplica call) the cluster detects the failure via missed
// heartbeats and auto-recovers every hosted LIP bit-identically to a
// fault-free run; a partition-induced false suspicion is fenced without
// double execution — property-tested across seeds and random fault windows.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/serve/cluster.h"

namespace symphony {
namespace {

// Same multi-turn tool-calling agent as the recovery tests: samples tokens
// (RNG-dependent), calls a tool whose args depend on generated state, sleeps
// between turns, and emits everything. Captures nothing by reference so the
// cluster's retained copy can re-run it during replay.
LipProgram MakeAgent(int turns) {
  return [turns](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2 w3");
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Sample(ctx.uniform(), 0.8);
    for (int turn = 0; turn < turns; ++turn) {
      for (int i = 0; i < 6 && next != kEosToken; ++i) {
        ctx.emit(ctx.tokenizer().TokenToString(next) + " ");
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
        if (!d.ok()) {
          co_return;
        }
        next = d->back().Sample(ctx.uniform(), 0.8);
      }
      StatusOr<std::string> out = co_await ctx.call_tool(
          "calc", std::to_string(turn) + " + " + std::to_string(next));
      if (out.ok()) {
        ctx.emit("[" + *out + "]");
      }
      co_await ctx.sleep(Millis(1));
      if (next == kEosToken) {
        break;
      }
    }
    co_return;
  };
}

// A deterministic calculator stand-in that counts real executions through a
// side channel. Replay serves journaled results verbatim (the handler never
// re-runs), so the counter measures exactly-once-ness: only an in-flight,
// not-yet-journaled call at kill time may legally execute a second time.
ToolSpec CountingTool(std::string name, SimDuration latency,
                      uint64_t* executions) {
  ToolSpec spec;
  spec.name = std::move(name);
  spec.description = "side-effect-counting calculator";
  spec.handler = [latency, executions](const std::string& args, Rng&) {
    ++*executions;
    ToolInvocation out;
    out.latency = latency;
    out.output = "v=" + args;
    return out;
  };
  return spec;
}

// Detector cadence fast enough that a mid-run fault is detected, fenced, and
// recovered well inside one agent's lifetime.
ControlPlaneOptions FastCtrl() {
  ControlPlaneOptions ctrl;
  ctrl.enabled = true;
  ctrl.heartbeat_period = Millis(2);
  ctrl.heartbeat_jitter = 0.25;
  ctrl.suspect_after = Millis(4);
  ctrl.lease = Millis(7);
  ctrl.declare_dead_after = Millis(10);
  ctrl.sweep_period = Millis(2);
  return ctrl;
}

ClusterOptions CtrlCluster(uint64_t seed, size_t replicas,
                           uint64_t* executions) {
  ClusterOptions options;
  options.replicas = replicas;
  options.routing = RoutingPolicy::kRoundRobin;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.enable_recovery = true;
  options.ctrl = FastCtrl();
  // Through configure_replica so slots rebuilt by readmission (and replicas
  // added by scale-out) serve the same tool surface as the original fleet.
  options.configure_replica = [executions](SymphonyServer& server, size_t) {
    ASSERT_TRUE(server.tools()
                    .Register(CountingTool("calc", Millis(2), executions))
                    .ok());
  };
  return options;
}

struct CtrlRun {
  std::string output;  // All agent outputs, '|'-joined in launch order.
  SimTime finish = 0;
  uint64_t tool_executions = 0;
  SymphonyCluster::ClusterSnapshot snap;
};

// Launches `agents` identical agents round-robin and runs to completion;
// `arm` may register FaultPlan windows and gets called before construction.
CtrlRun RunCtrlAgents(uint64_t seed, size_t replicas, int agents, int turns,
                      const std::function<void(FaultPlan&)>& arm = nullptr) {
  Simulator sim;
  FaultPlan plan(seed);
  if (arm) {
    arm(plan);
  }
  CtrlRun run;
  ClusterOptions options = CtrlCluster(seed, replicas, &run.tool_executions);
  options.server.fault_plan = &plan;
  SymphonyCluster cluster(&sim, options);
  std::vector<SymphonyCluster::ClusterLip> ids;
  for (int i = 0; i < agents; ++i) {
    ids.push_back(cluster.Launch("agent" + std::to_string(i), "",
                                 MakeAgent(turns)));
    EXPECT_EQ(ids.back().replica, static_cast<size_t>(i) % replicas);
  }
  sim.Run();
  for (const SymphonyCluster::ClusterLip& id : ids) {
    EXPECT_TRUE(cluster.Done(id));
    run.output += cluster.Output(id) + "|";
  }
  run.finish = sim.now();
  run.snap = cluster.Snapshot();
  EXPECT_EQ(run.snap.replay_divergences, 0u);
  return run;
}

// ---- The acceptance property ------------------------------------------

// A seeded FaultPlan crash — no KillReplica call anywhere — is detected by
// missed heartbeats, declared dead, fenced, and its LIP auto-recovered
// bit-identically to the fault-free run.
TEST(CtrlTest, SeededCrashIsDetectedAndAutoRecoveredBitIdentical) {
  const uint64_t seed = 9001;
  CtrlRun baseline = RunCtrlAgents(seed, 2, /*agents=*/1, /*turns=*/6);
  ASSERT_FALSE(baseline.output.empty());
  ASSERT_GT(baseline.finish, 0);
  EXPECT_EQ(baseline.snap.ctrl.dead_declared, 0u);
  EXPECT_GT(baseline.snap.ctrl.heartbeats_delivered, 0u);

  SimTime crash_at = baseline.finish * 2 / 5;  // Mid-run on replica 0.
  CtrlRun crashed =
      RunCtrlAgents(seed, 2, 1, 6, [crash_at](FaultPlan& plan) {
        plan.CrashReplicaAt(0, crash_at);
      });
  EXPECT_EQ(crashed.output, baseline.output);
  EXPECT_GE(crashed.snap.ctrl.dead_declared, 1u);
  EXPECT_GE(crashed.snap.ctrl.auto_failovers, 1u);
  EXPECT_GE(crashed.snap.failovers, 1u);
  EXPECT_GT(crashed.snap.ctrl.last_dead_declared_at, crash_at);
  EXPECT_GT(crashed.snap.ctrl.detection_age_total, 0);
  // The fleet's view: replica 0 dead and fenced at a bumped epoch, the seat
  // moved to the survivor.
  ASSERT_EQ(crashed.snap.liveness.size(), 2u);
  EXPECT_EQ(crashed.snap.liveness[0].state, ReplicaHealth::kDead);
  EXPECT_TRUE(crashed.snap.liveness[0].fenced);
  EXPECT_EQ(crashed.snap.liveness[0].epoch, 2u);
  EXPECT_EQ(crashed.snap.liveness[1].state, ReplicaHealth::kLive);
  EXPECT_EQ(crashed.snap.ctrl_seat, 1u);
  // Exactly-once: at most the one in-flight tool call per failover re-runs.
  EXPECT_LE(crashed.tool_executions,
            baseline.tool_executions + crashed.snap.failovers);
}

// A crash with a heal window (FaultPlan down_for) is readmitted at the
// bumped epoch once the process returns, and the slot serves again.
TEST(CtrlTest, HealedCrashIsReadmittedAtBumpedEpoch) {
  const uint64_t seed = 9002;
  CtrlRun baseline = RunCtrlAgents(seed, 2, 1, 6);
  ASSERT_FALSE(baseline.output.empty());

  SimTime crash_at = baseline.finish / 4;
  SimDuration down_for = baseline.finish;  // Heals after the work drained.
  Simulator sim;
  FaultPlan plan(seed);
  plan.CrashReplicaAt(0, crash_at, down_for);
  uint64_t executions = 0;
  ClusterOptions options = CtrlCluster(seed, 2, &executions);
  options.server.fault_plan = &plan;
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(6));
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  EXPECT_EQ(cluster.Output(id) + "|", baseline.output);
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_GE(snap.ctrl.dead_declared, 1u);
  EXPECT_EQ(snap.ctrl.readmissions, 1u);
  EXPECT_GE(snap.ctrl.last_readmission_at, crash_at + down_for);
  EXPECT_FALSE(cluster.replica_dead(0));
  ASSERT_EQ(snap.liveness.size(), 2u);
  EXPECT_EQ(snap.liveness[0].state, ReplicaHealth::kLive);
  EXPECT_EQ(snap.liveness[0].epoch, 2u);
  EXPECT_FALSE(snap.liveness[0].fenced);
  // The readmitted slot is placeable again: new work can land on it (the
  // rebuilt server got its tools back through configure_replica).
  SymphonyCluster::ClusterLip next = cluster.Launch("again", "", MakeAgent(2));
  sim.Run();
  EXPECT_TRUE(cluster.Done(next));
  EXPECT_FALSE(cluster.Output(next).empty());
  EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
}

// A partition between a replica and the seat silences its heartbeats: the
// replica self-fences at the lease, the seat declares it dead and replays
// its LIP elsewhere, and when the window closes the (healthy, never-crashed)
// process readmits at the bumped epoch. The LIP executed exactly once.
TEST(CtrlTest, PartitionFalseDeathIsFencedWithoutDoubleExecution) {
  const uint64_t seed = 9003;
  CtrlRun baseline = RunCtrlAgents(seed, 3, /*agents=*/3, /*turns=*/8);
  ASSERT_FALSE(baseline.output.empty());
  ASSERT_GT(baseline.tool_executions, 0u);
  // Detection must complete while the victim's LIP is still running.
  ASSERT_GT(baseline.finish, Millis(30));

  // Replica 2 beats to the seat (0); partition that pair only, so the seat's
  // own deputy beats (0 -> 1) stay clean.
  SimTime p_at = baseline.finish / 4;
  SimDuration p_for = Millis(25);
  CtrlRun cut = RunCtrlAgents(seed, 3, 3, 8, [p_at, p_for](FaultPlan& plan) {
    plan.AddPartition(0, 2, p_at, p_for);
  });
  EXPECT_EQ(cut.output, baseline.output);
  // The isolated replica fenced ITSELF before the seat declared it dead
  // (lease < declare_dead_after), so the failover never raced a zombie.
  EXPECT_GE(cut.snap.ctrl.self_fences, 1u);
  EXPECT_GE(cut.snap.ctrl.heartbeats_dropped, 1u);
  EXPECT_GE(cut.snap.ctrl.dead_declared, 1u);
  EXPECT_GE(cut.snap.failovers, 1u);
  // The window closed: the healthy process rejoined at the bumped epoch.
  EXPECT_GE(cut.snap.ctrl.readmissions, 1u);
  ASSERT_EQ(cut.snap.liveness.size(), 3u);
  EXPECT_EQ(cut.snap.liveness[2].state, ReplicaHealth::kLive);
  EXPECT_GE(cut.snap.liveness[2].epoch, 2u);
  // Exactly-once under false death: every journaled call replayed verbatim.
  EXPECT_LE(cut.tool_executions,
            baseline.tool_executions + cut.snap.failovers);
}

// A partition shorter than the lease only produces a suspicion (routing
// de-prefers the replica) that clears when beats resume: no fence, no
// declaration, no failover, and identical outputs.
TEST(CtrlTest, ShortPartitionCausesOnlyAFalseSuspicion) {
  const uint64_t seed = 9004;
  CtrlRun baseline = RunCtrlAgents(seed, 3, 3, 8);
  ASSERT_GT(baseline.finish, Millis(30));

  SimTime p_at = baseline.finish / 4;
  CtrlRun blip = RunCtrlAgents(seed, 3, 3, 8, [p_at](FaultPlan& plan) {
    plan.AddPartition(0, 2, p_at, Millis(6));  // < lease (7ms).
  });
  EXPECT_EQ(blip.output, baseline.output);
  EXPECT_GE(blip.snap.ctrl.suspicions, 1u);
  EXPECT_GE(blip.snap.ctrl.false_suspicions, 1u);
  EXPECT_EQ(blip.snap.ctrl.self_fences, 0u);
  EXPECT_EQ(blip.snap.ctrl.dead_declared, 0u);
  EXPECT_EQ(blip.snap.failovers, 0u);
  EXPECT_EQ(blip.snap.ctrl.readmissions, 0u);
  EXPECT_EQ(blip.tool_executions, baseline.tool_executions);
}

// ---- Elasticity --------------------------------------------------------

// Submit-flood sheds trip the scaling loop: the fleet grows at runtime and
// the new replica (attached to the topology and fabric, tools registered via
// configure_replica) absorbs later waves.
TEST(CtrlTest, ScalingLoopGrowsTheFleetUnderLoad) {
  Simulator sim;
  uint64_t executions = 0;
  ClusterOptions options = CtrlCluster(31, /*replicas=*/1, &executions);
  options.routing = RoutingPolicy::kLeastLoaded;
  options.server.admission.enabled = true;
  options.server.admission.max_live_lips = 2;
  options.server.admission.max_queue = 1;
  options.ctrl.scaling.enabled = true;
  options.ctrl.scaling.min_replicas = 1;
  options.ctrl.scaling.max_replicas = 3;
  options.ctrl.scaling.evaluate_period = Millis(4);
  options.ctrl.scaling.scale_out_on_sheds = 1;
  options.ctrl.scaling.scale_out_cooldown = Millis(8);
  options.ctrl.scaling.scale_in_load = 0.0;  // Never drain in this test.
  SymphonyCluster cluster(&sim, options);

  uint64_t accepted = 0;
  auto submit_wave = [&cluster, &accepted](int count) {
    for (int i = 0; i < count; ++i) {
      SymphonyServer::LaunchSpec spec;
      spec.name = "burst";
      spec.program = MakeAgent(2);
      if (cluster.Submit(std::move(spec)).result.status.ok()) {
        ++accepted;
      }
    }
  };
  submit_wave(6);  // 2 admitted + 1 queued on the lone replica; 3 shed.
  sim.ScheduleAt(Millis(12), [&] { submit_wave(4); });
  sim.ScheduleAt(Millis(24), [&] { submit_wave(4); });
  sim.Run();

  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_GE(snap.submit_sheds, 1u);
  EXPECT_GE(snap.ctrl.scale_outs, 1u);
  EXPECT_GT(cluster.replica_count(), 1u);
  EXPECT_GE(snap.ctrl.last_scale_out_at, 0);
  ASSERT_EQ(snap.liveness.size(), cluster.replica_count());
  // The scaled-out capacity actually took load.
  uint64_t beyond_first = 0;
  for (size_t i = 1; i < snap.lips_per_replica.size(); ++i) {
    beyond_first += snap.lips_per_replica[i];
  }
  EXPECT_GT(beyond_first, 0u);
  EXPECT_GE(snap.lips_completed, accepted);
  EXPECT_EQ(snap.replay_divergences, 0u);
}

// With load below the floor the scaling loop drains the emptiest replica:
// placement stops, its LIPs migrate off, and the sweep detaches it.
TEST(CtrlTest, ScalingLoopDrainsAndDetachesAnIdleReplica) {
  Simulator sim;
  uint64_t executions = 0;
  ClusterOptions options = CtrlCluster(32, /*replicas=*/2, &executions);
  options.ctrl.scaling.enabled = true;
  options.ctrl.scaling.min_replicas = 1;
  options.ctrl.scaling.max_replicas = 2;
  options.ctrl.scaling.evaluate_period = Millis(4);
  options.ctrl.scaling.scale_out_on_sheds = 0;  // Disable the shed trigger.
  options.ctrl.scaling.scale_out_queue_delay = Millis(100000);
  options.ctrl.scaling.scale_in_load = 0.6;
  options.ctrl.scaling.scale_in_cooldown = Millis(4);
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", MakeAgent(8));
  EXPECT_EQ(id.replica, 0u);
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  EXPECT_FALSE(cluster.Output(id).empty());
  SymphonyCluster::ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.ctrl.scale_ins, 1u);
  EXPECT_EQ(snap.ctrl.drains_completed, 1u);
  EXPECT_TRUE(cluster.replica_dead(1));
  ASSERT_EQ(snap.liveness.size(), 2u);
  EXPECT_EQ(snap.liveness[1].state, ReplicaHealth::kDetached);
  EXPECT_EQ(snap.liveness[0].state, ReplicaHealth::kLive);
  EXPECT_EQ(snap.replay_divergences, 0u);
}

// Manual elasticity without a control plane: AddReplica serves immediately,
// DrainReplica migrates the hosted LIPs off and detaches through the poll
// chain, and outputs match a run that never drained.
TEST(CtrlTest, ManualAddAndDrainWithoutControlPlane) {
  auto run = [](bool drain) {
    Simulator sim;
    uint64_t executions = 0;
    ClusterOptions options = CtrlCluster(33, /*replicas=*/2, &executions);
    options.ctrl.enabled = false;
    SymphonyCluster cluster(&sim, options);
    EXPECT_EQ(cluster.control_plane(), nullptr);
    EXPECT_EQ(cluster.AddReplica(), 2u);
    EXPECT_EQ(cluster.replica_count(), 3u);
    std::vector<SymphonyCluster::ClusterLip> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(
          cluster.Launch("agent" + std::to_string(i), "", MakeAgent(3)));
    }
    EXPECT_EQ(ids[2].replica, 2u);  // Round robin reached the new replica.
    if (drain) {
      sim.ScheduleAt(Millis(8), [&cluster] {
        EXPECT_TRUE(cluster.DrainReplica(2).ok());
        EXPECT_TRUE(cluster.replica_draining(2));
        // Draining replicas take no new placements.
        EXPECT_NE(cluster.RouteFor(""), 2u);
      });
    }
    sim.Run();
    std::string joined;
    for (const SymphonyCluster::ClusterLip& id : ids) {
      EXPECT_TRUE(cluster.Done(id));
      joined += cluster.Output(id) + "|";
    }
    if (drain) {
      EXPECT_TRUE(cluster.replica_dead(2));
      EXPECT_FALSE(cluster.replica_draining(2));
      EXPECT_GE(cluster.Snapshot().migrations, 1u);
      // Detached for good: a second drain (or a crash) is refused.
      EXPECT_FALSE(cluster.DrainReplica(2).ok());
      EXPECT_FALSE(cluster.CrashReplica(2).ok());
    }
    EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
    return joined;
  };
  std::string baseline = run(false);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(true), baseline);
}

// Without a control plane a silent crash strands its work — nothing detects
// it, which is exactly why the detector exists. (The legacy manual-kill
// contract is unaffected.)
TEST(CtrlTest, CrashWithoutControlPlaneStrandsWork) {
  Simulator sim;
  uint64_t executions = 0;
  ClusterOptions options = CtrlCluster(34, /*replicas=*/2, &executions);
  options.ctrl.enabled = false;
  SymphonyCluster cluster(&sim, options);
  SymphonyCluster::ClusterLip a = cluster.Launch("a", "", MakeAgent(8));
  SymphonyCluster::ClusterLip b = cluster.Launch("b", "", MakeAgent(4));
  sim.ScheduleAt(Millis(2),
                 [&cluster, a] { EXPECT_TRUE(cluster.CrashReplica(a.replica).ok()); });
  sim.Run();  // Terminates: a halted runtime drops its callbacks.
  EXPECT_FALSE(cluster.Done(a));  // Stranded forever.
  EXPECT_TRUE(cluster.Done(b));
  // A crash is not a death: the cluster was never told.
  EXPECT_FALSE(cluster.replica_dead(a.replica));
}

// ---- Fencing surfaces (defense in depth) -------------------------------

// The fabric and store refuse a fenced replica directly: the exactly-once
// guarantee does not rest on the runtime halt alone.
TEST(CtrlTest, FabricAndStoreRefuseFencedReplicas) {
  Simulator sim;
  uint64_t executions = 0;
  ClusterOptions options = CtrlCluster(35, /*replicas=*/2, &executions);
  options.ctrl.enabled = false;
  SymphonyCluster cluster(&sim, options);

  SnapshotPayload payload;
  payload.label = "fence-probe";
  payload.tokens = 16;
  payload.streams.emplace_back("records", std::string(512, 'x'));
  PublishResult published = cluster.store().Publish(0, payload);
  ASSERT_NE(published.key, 0u);

  cluster.store().SetReplicaFenced(1, true);
  StatusOr<FetchResult> fenced_fetch = cluster.store().Fetch(1, published.key);
  EXPECT_FALSE(fenced_fetch.ok());
  EXPECT_EQ(fenced_fetch.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.store().stats().fenced_fetches, 1u);
  cluster.store().SetReplicaFenced(1, false);
  EXPECT_TRUE(cluster.store().Fetch(1, published.key).ok());

  cluster.fabric().FenceReplica(1, 7);
  EXPECT_TRUE(cluster.fabric().replica_fenced(1));
  EXPECT_EQ(cluster.fabric().replica_fence_epoch(1), 7u);
  cluster.fabric().ReviveReplica(1, &cluster.replica(1).runtime());
  EXPECT_FALSE(cluster.fabric().replica_fenced(1));
  // The fence epoch survives revival as the slot's generation high-water
  // mark (stale sends from epoch < 7 stay refused).
  EXPECT_EQ(cluster.fabric().replica_fence_epoch(1), 7u);
}

// ---- The stress property ----------------------------------------------

// Mirrors recovery_test.cc: curated base seeds, widened with derived seeds
// when SYMPHONY_STRESS is set.
std::vector<uint64_t> StressSeeds(std::vector<uint64_t> base, uint64_t stream) {
  const char* stress = std::getenv("SYMPHONY_STRESS");
  if (stress == nullptr || *stress == '\0' ||
      std::string_view(stress) == "0") {
    return base;
  }
  uint64_t extra = 64;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(stress, &end, 10);
  if (end != stress && *end == '\0' && parsed > 1) {
    extra = parsed;
  }
  for (uint64_t i = 0; i < extra; ++i) {
    base.push_back(Mix64((stream << 32) ^ (i + 1)));
  }
  return base;
}

class CtrlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The satellite property: under a random permanent crash AND a random
// partition window (which can falsely isolate a healthy replica, fence it,
// and fail its LIP over), every agent still completes bit-identically to the
// fault-free run, no LIP executes a journaled tool call twice, and the
// simulation terminates — even when a failover transiently finds no
// placeable survivor (readmission rescues the stranded LIPs).
TEST_P(CtrlPropertyTest, RandomFaultWindowsNeverDoubleExecute) {
  uint64_t seed = GetParam();
  CtrlRun baseline = RunCtrlAgents(seed, 3, /*agents=*/3, /*turns=*/5);
  ASSERT_FALSE(baseline.output.empty());
  ASSERT_GT(baseline.finish, 0);

  Rng rng(seed ^ 0xFE2CEULL);
  size_t crash_replica = rng.NextDouble() < 0.5 ? 0 : 1;
  auto frac_time = [&](double lo, double hi) {
    return static_cast<SimTime>(
        (lo + (hi - lo) * rng.NextDouble()) *
        static_cast<double>(baseline.finish));
  };
  SimTime crash_at = frac_time(0.15, 0.55);
  SimTime p_at = frac_time(0.10, 0.60);

  CtrlRun faulted = RunCtrlAgents(
      seed, 3, 3, 5, [crash_replica, crash_at, p_at](FaultPlan& plan) {
        plan.CrashReplicaAt(crash_replica, crash_at);
        plan.AddPartition(0, 2, p_at, Millis(25));
      });
  EXPECT_EQ(faulted.output, baseline.output)
      << "seed=" << seed << " crash_replica=" << crash_replica
      << " crash_at=" << crash_at << " p_at=" << p_at;
  EXPECT_EQ(faulted.snap.replay_divergences, 0u);
  EXPECT_GE(faulted.snap.ctrl.dead_declared, 1u);
  EXPECT_LE(faulted.tool_executions,
            baseline.tool_executions + faulted.snap.failovers)
      << "seed=" << seed << ": a journaled tool call re-executed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrlPropertyTest,
                         ::testing::ValuesIn(StressSeeds(
                             {301, 302, 303, 304, 305, 306}, 0xC7)));

}  // namespace
}  // namespace symphony
