// Unit tests for the deterministic tokenizer.
#include <gtest/gtest.h>

#include "src/model/model_config.h"
#include "src/model/tokenizer.h"

namespace symphony {
namespace {

TEST(TokenizerTest, KnownWordsSingleToken) {
  Tokenizer tok(32000);
  std::vector<TokenId> ids = tok.Encode("w0 w1 w42");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], kFirstWordToken + 0);
  EXPECT_EQ(ids[1], kFirstWordToken + 1);
  EXPECT_EQ(ids[2], kFirstWordToken + 42);
}

TEST(TokenizerTest, RoundTripKnownWords) {
  Tokenizer tok(32000);
  std::string text = "w1 w2 w3 w999";
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(TokenizerTest, UnknownWordFallsBackToBytes) {
  Tokenizer tok(32000);
  std::vector<TokenId> ids = tok.Encode("xyz!");
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], kFirstByteToken + 'x');
  EXPECT_EQ(ids[3], kFirstByteToken + '!');
  EXPECT_EQ(tok.Decode(ids), "xyz!");
}

TEST(TokenizerTest, MixedKnownAndUnknownRoundTrip) {
  Tokenizer tok(32000);
  std::string text = "w5 hello w6 world";
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(TokenizerTest, WhitespaceNormalizes) {
  Tokenizer tok(32000);
  EXPECT_EQ(tok.Decode(tok.Encode("  w1\t\nw2  ")), "w1 w2");
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok(32000);
  EXPECT_TRUE(tok.Encode("").empty());
  EXPECT_EQ(tok.Decode({}), "");
}

TEST(TokenizerTest, SpecialsFrameAndAreSkippedOnDecode) {
  Tokenizer tok(32000);
  std::vector<TokenId> ids = tok.EncodeWithSpecials("w7");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.front(), kBosToken);
  EXPECT_EQ(ids.back(), kEosToken);
  EXPECT_EQ(tok.Decode(ids), "w7");
}

TEST(TokenizerTest, TokenToStringSpecials) {
  Tokenizer tok(32000);
  EXPECT_EQ(tok.TokenToString(kPadToken), "<pad>");
  EXPECT_EQ(tok.TokenToString(kBosToken), "<bos>");
  EXPECT_EQ(tok.TokenToString(kEosToken), "<eos>");
  EXPECT_EQ(tok.TokenToString(kUnkToken), "<unk>");
  EXPECT_EQ(tok.TokenToString(static_cast<TokenId>(tok.vocab_size()) + 5), "<invalid>");
}

TEST(TokenizerTest, AddWordUsesHeadroom) {
  Tokenizer tok(32000);
  StatusOr<TokenId> id = tok.AddWord("search_web");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(tok.LookupWord("search_web"), *id);
  std::vector<TokenId> ids = tok.Encode("search_web");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], *id);
}

TEST(TokenizerTest, AddWordIdempotent) {
  Tokenizer tok(32000);
  StatusOr<TokenId> a = tok.AddWord("mytool");
  StatusOr<TokenId> b = tok.AddWord("mytool");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TokenizerTest, AddWordRejectsWhitespace) {
  Tokenizer tok(32000);
  EXPECT_FALSE(tok.AddWord("two words").ok());
  EXPECT_FALSE(tok.AddWord("").ok());
}

TEST(TokenizerTest, SmallVocabFillsCompletely) {
  Tokenizer tok(300);  // Tiny config: 40 word slots, no headroom.
  EXPECT_EQ(tok.num_words(), 40u);
  EXPECT_FALSE(tok.AddWord("extra").ok());
}

TEST(TokenizerTest, TinyConfigVocabIsValid) {
  ModelConfig tiny = ModelConfig::Tiny();
  Tokenizer tok(tiny.vocab_size);
  EXPECT_EQ(tok.Decode(tok.Encode("w0 w39")), "w0 w39");
}

TEST(TokenizerTest, DeterministicAcrossInstances) {
  Tokenizer a(32000);
  Tokenizer b(32000);
  EXPECT_EQ(a.Encode("w1 w2 zzz"), b.Encode("w1 w2 zzz"));
}

}  // namespace
}  // namespace symphony
