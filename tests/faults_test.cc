// Tests for the failure-semantics stack (ISSUE 2): FaultPlan injection,
// tool retry/backoff, circuit breakers, per-LIP deadlines, admission
// control, and the interaction of injected faults with journal replay.
//
// Acceptance properties covered here:
//   * a seeded FaultPlan run is bit-identical across reruns;
//   * a LIP killed mid-run under injected tool faults replays to identical
//     output via the journal (faults included);
//   * a LIP past its deadline consumes no further decode steps and releases
//     its KV quota.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/serve/cluster.h"
#include "src/tools/circuit_breaker.h"

namespace symphony {
namespace {

// ---- FaultPlan decision determinism ------------------------------------

TEST(FaultPlanTest, DecisionsAreDeterministicPerSeed) {
  ToolFaultSpec spec;
  spec.fail_prob = 0.4;
  spec.tail_prob = 0.3;
  auto draw = [&spec](uint64_t seed) {
    FaultPlan plan(seed);
    plan.FailTool("web", spec);
    std::string key;
    for (uint64_t call = 0; call < 64; ++call) {
      FaultDecision d = plan.OnToolCall("web", Millis(1), "query", call, 1);
      key += d.status.ok() ? (d.latency_factor > 1.0 ? 'T' : '.') : 'F';
    }
    return key;
  };
  std::string a = draw(7);
  std::string b = draw(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, std::string(64, '.'));  // Some faults actually fired.
  EXPECT_NE(draw(8), a);               // Seed matters.
}

TEST(FaultPlanTest, DecisionsIgnoreGlobalInterleaving) {
  // The same (tool, args, ordinal, attempt) must draw the same decision no
  // matter what other calls happened in between — that is what makes the
  // injected faults replay-invariant when a recovered LIP re-executes.
  ToolFaultSpec spec;
  spec.fail_prob = 0.5;
  FaultPlan one(11);
  one.FailTool("web", spec);
  FaultPlan two(11);
  two.FailTool("web", spec);
  // Plan `two` sees unrelated traffic first.
  for (uint64_t i = 0; i < 100; ++i) {
    (void)two.OnToolCall("web", Millis(1), "other-args", 1000 + i, 1);
  }
  for (uint64_t call = 0; call < 32; ++call) {
    FaultDecision a = one.OnToolCall("web", Millis(5), "q", call, 1);
    FaultDecision b = two.OnToolCall("web", Millis(5), "q", call, 1);
    EXPECT_EQ(a.status.code(), b.status.code());
    EXPECT_EQ(a.latency_factor, b.latency_factor);
  }
}

TEST(FaultPlanTest, OutageWindowIsTimeBounded) {
  FaultPlan plan(1);
  ToolFaultSpec spec;
  spec.fail_after = Millis(10);
  spec.recover_at = Millis(20);
  plan.FailTool("db", spec);
  EXPECT_TRUE(plan.OnToolCall("db", Millis(5), "x", 0, 1).status.ok());
  EXPECT_EQ(plan.OnToolCall("db", Millis(15), "x", 1, 1).status.code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(plan.OnToolCall("db", Millis(25), "x", 2, 1).status.ok());
  EXPECT_EQ(plan.stats().tool_faults, 1u);
}

// ---- Circuit breaker state machine -------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbes) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown = Millis(100);
  CircuitBreaker breaker(options);

  SimTime now = 0;
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow(now));
    breaker.RecordFailure(now);
  }
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kClosed);
  // A success resets the consecutive count.
  ASSERT_TRUE(breaker.Allow(now));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  // Three consecutive failures trip it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow(now));
    breaker.RecordFailure(now);
  }
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // Open: rejected until the cooldown elapses, with a retry-after hint.
  EXPECT_FALSE(breaker.Allow(now + Millis(50)));
  EXPECT_EQ(breaker.RetryAfter(now + Millis(50)), Millis(50));
  EXPECT_EQ(breaker.rejections(), 1u);

  // Half-open: exactly one probe goes through; a second caller is rejected.
  SimTime later = now + Millis(100);
  EXPECT_EQ(breaker.state(later), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(later));
  EXPECT_FALSE(breaker.Allow(later));

  // Failed probe: straight back to open, cooldown restarts.
  breaker.RecordFailure(later);
  EXPECT_EQ(breaker.state(later), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.Allow(later + Millis(99)));

  // Successful probe closes it.
  SimTime recovered = later + Millis(100);
  EXPECT_TRUE(breaker.Allow(recovered));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(recovered), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(recovered));
}

// ---- Tool faults through the serving stack ------------------------------

// A LIP that calls one tool `calls` times and emits ok/err per call.
LipProgram ToolHammer(int calls) {
  return [calls](LipContext& ctx) -> Task {
    for (int i = 0; i < calls; ++i) {
      StatusOr<std::string> out =
          co_await ctx.call_tool("flaky", "q" + std::to_string(i));
      ctx.emit(out.ok() ? "ok;" : "err;");
    }
    co_return;
  };
}

ServerOptions FaultyServerOptions(FaultPlan* plan) {
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.fault_plan = plan;
  return options;
}

TEST(ToolFaultTest, RetriesSmoothTransientFaults) {
  FaultPlan plan(3);
  ToolFaultSpec spec;
  spec.fail_prob = 0.3;
  plan.FailTool("flaky", spec);

  Simulator sim;
  ServerOptions options = FaultyServerOptions(&plan);
  options.tool_retry.max_attempts = 5;
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("flaky", Millis(1))).ok());
  LipId lip = server.Launch("hammer", ToolHammer(20));
  sim.Run();

  // Every logical call eventually succeeded: each retry re-draws the fault
  // decision, and 0.3^5 makes a full washout vanishingly unlikely.
  std::string expected;
  for (int i = 0; i < 20; ++i) {
    expected += "ok;";
  }
  EXPECT_EQ(server.runtime().Output(lip), expected);
  EXPECT_GT(server.tool_stats().retries, 0u);
  EXPECT_GT(plan.stats().tool_faults, 0u);
  EXPECT_EQ(server.tool_stats().failures, 0u);
}

TEST(ToolFaultTest, NoRetriesSurfaceFaultsToTheLip) {
  FaultPlan plan(3);
  ToolFaultSpec spec;
  spec.fail_prob = 0.3;
  plan.FailTool("flaky", spec);

  Simulator sim;
  ServerOptions options = FaultyServerOptions(&plan);
  options.tool_retry.max_attempts = 1;  // No retries.
  options.breaker.enabled = false;      // Isolate the retry knob.
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("flaky", Millis(1))).ok());
  LipId lip = server.Launch("hammer", ToolHammer(20));
  sim.Run();

  EXPECT_NE(server.runtime().Output(lip).find("err;"), std::string::npos);
  EXPECT_EQ(server.tool_stats().retries, 0u);
  EXPECT_GT(server.tool_stats().failures, 0u);
}

TEST(ToolFaultTest, OutageTripsBreakerAndShortCircuits) {
  FaultPlan plan(5);
  ToolFaultSpec spec;
  spec.fail_after = 0;  // Down from the start, forever.
  plan.FailTool("flaky", spec);

  Simulator sim;
  ServerOptions options = FaultyServerOptions(&plan);
  options.tool_retry.max_attempts = 2;
  options.tool_retry.backoff_base = Millis(1);
  options.breaker.failure_threshold = 4;
  options.breaker.cooldown = Seconds(10);  // Never half-opens in this run.
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("flaky", Millis(1))).ok());
  LipId lip = server.Launch("hammer", ToolHammer(30));
  sim.Run();

  // Every call failed; after the first few, the breaker answered instantly.
  std::string expected;
  for (int i = 0; i < 30; ++i) {
    expected += "err;";
  }
  EXPECT_EQ(server.runtime().Output(lip), expected);
  const CircuitBreaker* breaker = server.tool_breaker("flaky");
  ASSERT_NE(breaker, nullptr);
  EXPECT_GE(breaker->opens(), 1u);
  EXPECT_GT(server.Snapshot().breaker_rejections, 0u);
  // The breaker saved tool-latency: most attempts never reached the tool.
  EXPECT_GT(server.Snapshot().breaker_opens, 0u);
}

TEST(ToolFaultTest, TimeoutCutsLatencyTails) {
  FaultPlan plan(9);
  ToolFaultSpec spec;
  spec.tail_prob = 1.0;     // Every attempt is stretched...
  spec.tail_factor = 50.0;  // ...from 1ms to 50ms.
  plan.FailTool("flaky", spec);

  Simulator sim;
  ServerOptions options = FaultyServerOptions(&plan);
  options.tool_retry.call_timeout = Millis(5);
  options.tool_retry.max_attempts = 2;
  options.tool_retry.backoff_base = Millis(1);
  options.breaker.enabled = false;
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("flaky", Millis(1))).ok());
  LipId lip = server.Launch("hammer", ToolHammer(4));
  sim.Run();

  // Both attempts of every call timed out: failures surface as err, and the
  // run finishes in bounded time (4 calls x 2 attempts x ~6ms, not x 50ms).
  EXPECT_EQ(server.runtime().Output(lip), "err;err;err;err;");
  EXPECT_EQ(server.tool_stats().timeouts, 8u);
  EXPECT_LT(sim.now(), Millis(60));
  EXPECT_EQ(plan.stats().tool_tail_stretches, 8u);
}

// ---- Whole-run determinism under faults ---------------------------------

// A fault-exercising agent whose output depends on pred sampling AND tool
// outcomes, so any nondeterminism in either shows up in the output.
LipProgram FaultAgent(int turns) {
  return [turns](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred(kv, ctx.tokenizer().Encode("w1 w2 w3"));
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Sample(ctx.uniform(), 0.8);
    for (int turn = 0; turn < turns; ++turn) {
      for (int i = 0; i < 5 && next != kEosToken; ++i) {
        ctx.emit(ctx.tokenizer().TokenToString(next) + " ");
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
        if (!d.ok()) {
          co_return;
        }
        next = d->back().Sample(ctx.uniform(), 0.8);
      }
      StatusOr<std::string> out = co_await ctx.call_tool(
          "flaky", std::to_string(turn) + ":" + std::to_string(next));
      ctx.emit(out.ok() ? "[" + *out + "]" : "[err]");
      co_await ctx.sleep(Millis(1));
      if (next == kEosToken) {
        break;
      }
    }
    co_return;
  };
}

ClusterOptions FaultyClusterOptions(FaultPlan* plan, uint64_t seed) {
  ClusterOptions options;
  options.replicas = 2;
  options.server.model = ModelConfig::Tiny();
  options.server.runtime.seed = seed;
  options.server.fault_plan = plan;
  options.server.tool_retry.max_attempts = 3;
  options.server.tool_retry.backoff_base = Millis(1);
  options.enable_recovery = true;
  return options;
}

struct FaultRun {
  std::string output;
  uint64_t tool_faults = 0;
  SimTime finish = 0;
};

FaultRun RunUnderFaults(uint64_t seed, std::optional<SimTime> kill_at) {
  FaultPlan plan(seed * 31 + 1);
  ToolFaultSpec spec;
  spec.fail_prob = 0.25;
  spec.tail_prob = 0.2;
  spec.tail_factor = 4.0;
  plan.FailTool("flaky", spec);
  if (kill_at.has_value()) {
    plan.KillReplicaAt(0, *kill_at);
  }

  Simulator sim;
  SymphonyCluster cluster(&sim, FaultyClusterOptions(&plan, seed));
  for (size_t i = 0; i < cluster.replica_count(); ++i) {
    EXPECT_TRUE(cluster.replica(i)
                    .tools()
                    .Register(ToolRegistry::Echo("flaky", Millis(2)))
                    .ok());
  }
  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", FaultAgent(4));
  EXPECT_EQ(id.replica, 0u);  // Round-robin: first launch lands on 0.
  sim.Run();
  EXPECT_TRUE(cluster.Done(id));
  EXPECT_EQ(cluster.Snapshot().replay_divergences, 0u);
  FaultRun run;
  run.output = cluster.Output(id);
  run.tool_faults = plan.stats().tool_faults;
  run.finish = sim.now();
  return run;
}

TEST(FaultReplayTest, SeededFaultRunIsBitIdenticalAcrossReruns) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    FaultRun a = RunUnderFaults(seed, std::nullopt);
    FaultRun b = RunUnderFaults(seed, std::nullopt);
    ASSERT_FALSE(a.output.empty());
    EXPECT_EQ(a.output, b.output) << "seed=" << seed;
    EXPECT_EQ(a.tool_faults, b.tool_faults) << "seed=" << seed;
    EXPECT_EQ(a.finish, b.finish) << "seed=" << seed;
  }
}

TEST(FaultReplayTest, KillUnderInjectedFaultsReplaysBitIdentical) {
  // The acceptance property: a replica kill mid-run — while tool faults are
  // being injected — must not change the LIP's final output. The journal
  // replays the failures it recorded; re-executed live calls re-draw the
  // same fault decisions (ordinal-keyed, not globally counted).
  for (uint64_t seed : {4u, 5u, 6u, 7u}) {
    FaultRun baseline = RunUnderFaults(seed, std::nullopt);
    ASSERT_FALSE(baseline.output.empty());
    SimTime kill_at = baseline.finish / 2;
    FaultRun killed = RunUnderFaults(seed, kill_at);
    EXPECT_EQ(killed.output, baseline.output) << "seed=" << seed;
  }
}

// ---- KV corruption windows (src/store) ----------------------------------

TEST(KvCorruptionTest, DrawsAreDeterministicPerSeedChunkAndAttempt) {
  auto corrupt = [](uint64_t seed, uint64_t chunk, uint32_t attempt) {
    FaultPlan plan(seed);
    plan.AddKvCorruption(/*at=*/0, /*duration=*/Millis(10), /*prob=*/1.0);
    std::string bytes(256, 'z');
    EXPECT_TRUE(plan.OnKvTransfer(Millis(5), chunk, attempt, &bytes));
    return bytes;
  };
  // Same identity -> same corrupted bytes (replay-invariant injection).
  EXPECT_EQ(corrupt(9, 111, 1), corrupt(9, 111, 1));
  // A retry (new attempt) and a different chunk re-draw independently.
  EXPECT_NE(corrupt(9, 111, 1), corrupt(9, 111, 2));
  EXPECT_NE(corrupt(9, 111, 1), corrupt(9, 222, 1));
  EXPECT_NE(corrupt(10, 111, 1), corrupt(9, 111, 1));
}

TEST(KvCorruptionTest, WindowIsTimeBoundedAndProbabilityGated) {
  FaultPlan plan(3);
  plan.AddKvCorruption(Millis(10), Millis(10), 1.0);
  std::string bytes(64, 'q');
  std::string original = bytes;
  EXPECT_FALSE(plan.OnKvTransfer(Millis(5), 1, 1, &bytes));
  EXPECT_EQ(bytes, original);  // Outside the window: untouched.
  EXPECT_FALSE(plan.OnKvTransfer(Millis(25), 1, 1, &bytes));
  EXPECT_EQ(bytes, original);
  EXPECT_TRUE(plan.OnKvTransfer(Millis(15), 1, 1, &bytes));
  EXPECT_NE(bytes, original);  // Inside: exactly one flipped bit.
  size_t diff = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    diff += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned char>(bytes[i] ^ original[i])));
  }
  EXPECT_EQ(diff, 1u);
  EXPECT_EQ(plan.stats().kv_corruptions, 1u);
  // prob 0 never corrupts even inside its window.
  FaultPlan never(3);
  never.AddKvCorruption(0, Millis(100), 0.0);
  std::string intact(64, 'q');
  EXPECT_FALSE(never.OnKvTransfer(Millis(50), 1, 1, &intact));
  EXPECT_EQ(intact, original);
}

TEST(KvCorruptionTest, MigrationUnderCorruptionRetriesAndStaysBitIdentical) {
  // A corruption window covering the failover: the checkpoint rehydrate's
  // chunk transfers are corrupted (and detected — never served), the ship
  // retries past the window, and the replayed LIP still produces the
  // baseline output. This is the end-to-end "detected, never silently
  // served" acceptance property.
  auto run = [](std::optional<SimTime> kill_at, SimDuration window) {
    FaultPlan plan(41);
    if (kill_at.has_value()) {
      plan.KillReplicaAt(0, *kill_at);
      plan.AddKvCorruption(*kill_at, window, 1.0);
    }
    Simulator sim;
    ClusterOptions options = FaultyClusterOptions(&plan, 19);
    options.checkpoint_journals = true;
    options.checkpoint_interval = 8;
    SymphonyCluster cluster(&sim, options);
    for (size_t i = 0; i < cluster.replica_count(); ++i) {
      EXPECT_TRUE(cluster.replica(i)
                      .tools()
                      .Register(ToolRegistry::Echo("flaky", Millis(2)))
                      .ok());
    }
    SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", FaultAgent(4));
    sim.Run();
    EXPECT_TRUE(cluster.Done(id));
    return std::make_tuple(cluster.Output(id), cluster.Snapshot(), sim.now());
  };
  auto [baseline, baseline_snap, baseline_finish] = run(std::nullopt, 0);
  ASSERT_FALSE(baseline.empty());
  ASSERT_GT(baseline_snap.checkpoints, 0u);
  auto [killed, snap, killed_finish] = run(baseline_finish / 2, Millis(6));
  EXPECT_EQ(killed, baseline);
  EXPECT_EQ(snap.failovers, 1u);
  // Every corrupted transfer was caught by its checksum and retried; the
  // rehydrate kept backing off until the window closed.
  EXPECT_GT(snap.rehydrate_retries, 0u);
  EXPECT_GT(snap.store.corrupt_chunks_detected, 0u);
  EXPECT_GT(snap.store.corrupt_fetch_failures, 0u);
  EXPECT_EQ(snap.replay_divergences, 0u);
}

// ---- Per-LIP deadlines --------------------------------------------------

// Generates forever (until a syscall fails), emitting one '.' per pred.
LipProgram EndlessDecoder() {
  return [](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    StatusOr<std::vector<Distribution>> dists =
        co_await ctx.pred(kv, ctx.tokenizer().Encode("w1 w2"));
    if (!dists.ok()) {
      ctx.emit("early-fail");
      co_return;
    }
    TokenId next = dists->back().Argmax();
    for (int i = 0; i < 100000; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
      if (!d.ok()) {
        ctx.emit("|" + std::string(StatusCodeName(d.status().code())));
        co_return;
      }
      ctx.emit(".");
      next = d->back().Argmax();
      if (next == kEosToken) {
        next = 1;
      }
    }
    co_return;
  };
}

TEST(DeadlineTest, ExpiryCancelsPredsAndReleasesKvQuota) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  SymphonyServer server(&sim, options);

  SymphonyServer::LaunchSpec spec;
  spec.name = "bounded";
  spec.program = EndlessDecoder();
  spec.deadline = Millis(30);
  SymphonyServer::AdmitResult admitted = server.Submit(std::move(spec));
  ASSERT_TRUE(admitted.status.ok());
  ASSERT_NE(admitted.lip, kNoLip);
  LipId lip = admitted.lip;

  uint64_t tokens_at_deadline = 0;
  sim.ScheduleAt(Millis(31), [&] {
    tokens_at_deadline = server.runtime().GetUsage(lip).pred_tokens;
  });
  sim.Run();

  // The LIP saw kDeadlineExceeded and stopped.
  const std::string& output = server.runtime().Output(lip);
  EXPECT_NE(output.find("DEADLINE_EXCEEDED"), std::string::npos) << output;
  EXPECT_TRUE(server.runtime().LipDone(lip));
  EXPECT_TRUE(server.runtime().DeadlineExpired(lip));

  // No decode past the deadline: at most one in-flight pred (already inside
  // a batch at expiry) may land after it; everything later was rejected.
  uint64_t final_tokens = server.runtime().GetUsage(lip).pred_tokens;
  EXPECT_LE(final_tokens, tokens_at_deadline + 1);
  EXPECT_EQ(server.runtime().stats().deadlines_expired, 1u);

  // KV quota released at expiry.
  EXPECT_EQ(server.kvfs().OwnerPageRefs(lip), 0u);
  EXPECT_EQ(server.Snapshot().deadlines_expired, 1u);
}

TEST(DeadlineTest, QueuedPredsAreCancelledAtExpiry) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  // Big batches of long prefills keep the device busy so the victim's preds
  // sit in the scheduler queue when the deadline fires.
  SymphonyServer server(&sim, options);
  for (int i = 0; i < 6; ++i) {
    server.Launch("filler" + std::to_string(i), EndlessDecoder());
  }
  SymphonyServer::LaunchSpec spec;
  spec.name = "victim";
  spec.program = EndlessDecoder();
  spec.deadline = Millis(2);
  SymphonyServer::AdmitResult admitted = server.Submit(std::move(spec));
  ASSERT_TRUE(admitted.status.ok());
  sim.RunUntil(Millis(200));
  EXPECT_TRUE(server.runtime().LipDone(admitted.lip));
  // Either the queue purge or the syscall-boundary rejection caught it.
  EXPECT_GE(server.scheduler().stats().cancelled +
                server.runtime().stats().deadline_rejections,
            1u);
}

// ---- Admission control --------------------------------------------------

LipProgram Sleeper(SimDuration how_long) {
  return [how_long](LipContext& ctx) -> Task {
    co_await ctx.sleep(how_long);
    co_return;
  };
}

TEST(AdmissionTest, BoundedQueueAdmitsQueuesAndSheds) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.admission.enabled = true;
  options.admission.max_live_lips = 2;
  options.admission.max_queue = 2;
  SymphonyServer server(&sim, options);

  auto submit = [&server] {
    SymphonyServer::LaunchSpec spec;
    spec.name = "job";
    spec.program = Sleeper(Millis(10));
    return server.Submit(std::move(spec));
  };
  SymphonyServer::AdmitResult first = submit();
  SymphonyServer::AdmitResult second = submit();
  SymphonyServer::AdmitResult third = submit();
  SymphonyServer::AdmitResult fourth = submit();
  SymphonyServer::AdmitResult fifth = submit();

  EXPECT_TRUE(first.status.ok());
  EXPECT_FALSE(first.queued);
  EXPECT_TRUE(second.status.ok());
  EXPECT_TRUE(third.status.ok());
  EXPECT_TRUE(third.queued);
  EXPECT_TRUE(fourth.queued);
  // Queue full: shed with a backpressure hint.
  EXPECT_EQ(fifth.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(fifth.retry_after, 0);
  EXPECT_EQ(server.admission_queue_depth(), 2u);

  sim.Run();
  // The queued pair ran once slots freed.
  EXPECT_EQ(server.admission_stats().admitted, 4u);
  EXPECT_EQ(server.admission_stats().rejected_full, 1u);
  EXPECT_EQ(server.runtime().stats().lips_completed, 4u);
}

TEST(AdmissionTest, DeadlineAwareRejectionUsesProjectedDelay) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.admission.enabled = true;
  options.admission.max_live_lips = 1;
  options.admission.max_queue = 16;
  options.admission.initial_service_estimate = Millis(100);
  SymphonyServer server(&sim, options);

  SymphonyServer::LaunchSpec running;
  running.name = "running";
  running.program = Sleeper(Millis(100));
  ASSERT_TRUE(server.Submit(std::move(running)).status.ok());

  // Projected wait for the next request is ~100ms; a 5ms deadline cannot be
  // met, so it is shed immediately instead of dying in the queue.
  SymphonyServer::LaunchSpec tight;
  tight.name = "tight";
  tight.program = Sleeper(Millis(1));
  tight.deadline = Millis(5);
  SymphonyServer::AdmitResult result = server.Submit(std::move(tight));
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(result.retry_after, 0);
  EXPECT_EQ(server.admission_stats().rejected_deadline, 1u);

  // A relaxed deadline queues fine.
  SymphonyServer::LaunchSpec relaxed;
  relaxed.name = "relaxed";
  relaxed.program = Sleeper(Millis(1));
  relaxed.deadline = Seconds(5);
  EXPECT_TRUE(server.Submit(std::move(relaxed)).queued);
  sim.Run();
  EXPECT_EQ(server.runtime().stats().lips_completed, 2u);
}

TEST(AdmissionTest, HigherPriorityClassDrainsFirst) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.admission.enabled = true;
  options.admission.max_live_lips = 1;
  options.admission.max_queue = 8;
  SymphonyServer server(&sim, options);

  std::vector<std::string> started;
  auto submit = [&](const std::string& name, uint32_t priority) {
    SymphonyServer::LaunchSpec spec;
    spec.name = name;
    spec.priority = priority;
    spec.program = [&started, name](LipContext& ctx) -> Task {
      started.push_back(name);
      co_await ctx.sleep(Millis(5));
      co_return;
    };
    return server.Submit(std::move(spec));
  };
  ASSERT_FALSE(submit("first", 1).queued);     // Takes the slot.
  ASSERT_TRUE(submit("low", 2).queued);        // Queued first...
  ASSERT_TRUE(submit("high", 0).queued);       // ...but lower priority.
  sim.Run();
  ASSERT_EQ(started.size(), 3u);
  EXPECT_EQ(started[0], "first");
  EXPECT_EQ(started[1], "high");  // Priority 0 jumps the earlier priority 2.
  EXPECT_EQ(started[2], "low");
}

TEST(AdmissionTest, ExpiredQueueEntriesAreShedAtDequeue) {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  options.admission.enabled = true;
  options.admission.max_live_lips = 1;
  options.admission.max_queue = 8;
  // Optimistic estimate so the doomed entry queues instead of being
  // rejected up front — this test exercises the dequeue-time shed.
  options.admission.initial_service_estimate = Millis(1);
  SymphonyServer server(&sim, options);

  SymphonyServer::LaunchSpec running;
  running.name = "running";
  running.program = Sleeper(Millis(50));
  ASSERT_TRUE(server.Submit(std::move(running)).status.ok());

  SymphonyServer::LaunchSpec doomed;
  doomed.name = "doomed";
  doomed.program = Sleeper(Millis(1));
  doomed.deadline = Millis(10);  // Expires long before the slot frees.
  ASSERT_TRUE(server.Submit(std::move(doomed)).queued);

  sim.Run();
  EXPECT_EQ(server.admission_stats().shed_expired, 1u);
  EXPECT_EQ(server.runtime().stats().lips_completed, 1u);  // Only "running".
}

// ---- KV pressure windows ------------------------------------------------

TEST(KvPressureTest, WindowPinsPagesThenReleasesThem) {
  Simulator sim;
  KvfsOptions fs_options;
  fs_options.gpu_page_budget = 64;
  fs_options.clock = [&sim] { return sim.now(); };
  Kvfs kvfs(fs_options);

  FaultPlan plan(2);
  plan.AddKvPressure(Millis(10), Millis(20), 16);
  plan.ArmKvPressure(&sim, &kvfs);

  uint64_t during = 0;
  sim.ScheduleAt(Millis(20), [&] { during = kvfs.OwnerPageRefs(kAdminLip); });
  uint64_t after = UINT64_MAX;
  sim.ScheduleAt(Millis(40), [&] { after = kvfs.OwnerPageRefs(kAdminLip); });
  sim.Run();

  EXPECT_EQ(during, 16u);  // 16 pages pinned during the window.
  EXPECT_EQ(after, 0u);    // Released when it closed.
  EXPECT_EQ(plan.stats().pressure_windows, 1u);
}

}  // namespace
}  // namespace symphony
