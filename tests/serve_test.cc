// Integration tests for SymphonyServer: full LIPs exercising pred + KVFS +
// tools + scheduling through the composed public API, including the
// Figure 2 program shape (parallel generation over a forked prefix) and the
// §4.3 offload-on-I/O policy.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/decode/samplers.h"
#include "src/serve/server.h"

namespace symphony {
namespace {

ServerOptions TinyOptions() {
  ServerOptions options;
  options.model = ModelConfig::Tiny();
  return options;
}

TEST(ServerTest, QuickstartGreedyGeneration) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  std::string output;
  server.Launch("quickstart", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2 w3");
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Argmax();
    for (int i = 0; i < 8 && next != kEosToken; ++i) {
      output += ctx.tokenizer().TokenToString(next) + " ";
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
      if (!d.ok()) {
        co_return;
      }
      next = d->back().Argmax();
    }
    co_return;
  });
  sim.Run();
  EXPECT_FALSE(output.empty());
}

TEST(ServerTest, GenerationIsReproducible) {
  auto run_once = [] {
    Simulator sim;
    SymphonyServer server(&sim, TinyOptions());
    std::string output;
    server.Launch("repro", [&](LipContext& ctx) -> Task {
      KvHandle kv = *ctx.kv_tmp();
      std::vector<TokenId> prompt = ctx.tokenizer().Encode("w5 w6");
      StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
      if (!dists.ok()) {
        co_return;
      }
      SamplerConfig cfg;
      cfg.temperature = 0.8;
      TokenId next = SampleToken(dists->back(), cfg, ctx.uniform());
      for (int i = 0; i < 10 && next != kEosToken; ++i) {
        output += ctx.tokenizer().TokenToString(next);
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
        if (!d.ok()) {
          co_return;
        }
        next = SampleToken(d->back(), cfg, ctx.uniform());
      }
      co_return;
    });
    sim.Run();
    return output;
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ServerTest, Figure2ParallelGenerationSharedPrefix) {
  // The paper's example program: load a shared prefix, fork it per query,
  // generate in parallel threads, join.
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());

  int completed_branches = 0;
  uint64_t cow_copies_at_end = 0;
  server.Launch("fig2", [&](LipContext& ctx) -> Task {
    // Build the "system prompt" KV once.
    KvHandle prefix = *ctx.kv_create("/kv/sys_msg");
    std::vector<TokenId> sys = ctx.tokenizer().Encode("w0 w1 w2 w3 w4 w5");
    (void)co_await ctx.pred(prefix, sys);

    std::vector<std::vector<TokenId>> suffixes = {
        ctx.tokenizer().Encode("w10"), ctx.tokenizer().Encode("w11"),
        ctx.tokenizer().Encode("w12")};
    for (const std::vector<TokenId>& suffix : suffixes) {
      ctx.spawn([&, suffix](LipContext& inner) -> Task {
        StatusOr<KvHandle> kv = inner.kv_fork(prefix);
        if (!kv.ok()) {
          co_return;
        }
        StatusOr<std::vector<Distribution>> dists =
            co_await inner.pred(*kv, suffix);
        if (!dists.ok()) {
          co_return;
        }
        TokenId t = dists->back().Argmax();
        for (int step = 0; step < 6 && t != kEosToken; ++step) {
          StatusOr<std::vector<Distribution>> d = co_await inner.pred1(*kv, t);
          if (!d.ok()) {
            co_return;
          }
          t = d->back().Argmax();
        }
        ++completed_branches;
        co_return;
      });
    }
    co_await ctx.join_all();
    cow_copies_at_end = server.kvfs().pool().stats().cow_copies;
    co_return;
  });
  sim.Run();
  EXPECT_EQ(completed_branches, 3);
  // Branches shared the prefix pages; only divergent tails were copied.
  EXPECT_GT(cow_copies_at_end, 0u);
  EXPECT_LE(cow_copies_at_end, 3u);
}

TEST(ServerTest, ToolCallsRunServerSide) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Calculator("calc", Millis(2))).ok());
  std::string result;
  SimTime finished_at = 0;
  server.Launch("agent", [&](LipContext& ctx) -> Task {
    StatusOr<std::string> out = co_await ctx.call_tool("calc", "21 * 2");
    if (out.ok()) {
      result = *out;
    }
    finished_at = ctx.now();
    co_return;
  });
  sim.Run();
  EXPECT_EQ(result, "42");
  EXPECT_GE(finished_at, Millis(2));
}

TEST(ServerTest, SlowToolIoTriggersKvOffload) {
  Simulator sim;
  ServerOptions options = TinyOptions();
  options.offload_kv_on_tool_io = true;
  options.min_io_for_offload = Millis(5);
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("slow", Millis(50))).ok());

  server.Launch("io", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2 w3 w4");
    (void)co_await ctx.pred(kv, prompt);
    (void)co_await ctx.call_tool("slow", "x");
    // KV was offloaded during the call; the next pred restores it.
    (void)co_await ctx.pred1(kv, 260);
    co_return;
  });
  sim.Run();
  EXPECT_GT(server.kvfs().stats().offloaded_pages, 0u);
  EXPECT_GT(server.kvfs().stats().restored_pages, 0u);
}

TEST(ServerTest, FastToolIoDoesNotOffload) {
  Simulator sim;
  ServerOptions options = TinyOptions();
  options.min_io_for_offload = Millis(5);
  SymphonyServer server(&sim, options);
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Echo("fast", Micros(100))).ok());
  server.Launch("io", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w1 w2");
    (void)co_await ctx.pred(kv, prompt);
    (void)co_await ctx.call_tool("fast", "x");
    co_return;
  });
  sim.Run();
  EXPECT_EQ(server.kvfs().stats().offloaded_pages, 0u);
}

TEST(ServerTest, MultiAgentIpcPipeline) {
  // Two LIPs cooperating through a channel: a "researcher" fetches and a
  // "writer" consumes, all server-side.
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  ASSERT_TRUE(server.tools().Register(ToolRegistry::Lookup("fetch", Millis(10))).ok());

  std::string writer_saw;
  server.Launch("researcher", [&](LipContext& ctx) -> Task {
    StatusOr<std::string> doc = co_await ctx.call_tool("fetch", "topic");
    // Named lvalue: GCC 12 double-destroys conditional-operator temporaries
    // inside a co_await operand (use-after-free in the delivered bytes).
    std::string findings = doc.ok() ? *doc : "error";
    co_await ctx.send("findings", std::move(findings));
    co_return;
  });
  server.Launch("writer", [&](LipContext& ctx) -> Task {
    writer_saw = co_await ctx.recv("findings");
    co_return;
  });
  sim.Run();
  EXPECT_EQ(writer_saw.substr(0, 3), "doc");
}

TEST(ServerTest, NamedKvPersistsAcrossLips) {
  // A LIP builds a named KV file; a later LIP reuses it without recompute.
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());

  uint64_t prefill_batches = 0;
  server.Launch("builder", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_create("/cache/doc", kModeShared);
    std::vector<TokenId> doc = ctx.tokenizer().Encode("w1 w2 w3 w4 w5 w6 w7 w8");
    (void)co_await ctx.pred(kv, doc);
    (void)ctx.kv_close(kv);
    co_return;
  });
  sim.Run();
  prefill_batches = server.device().stats().batches;

  uint64_t reuse_len = 0;
  server.Launch("reuser", [&](LipContext& ctx) -> Task {
    StatusOr<KvHandle> shared = ctx.kv_open("/cache/doc");
    if (!shared.ok()) {
      co_return;
    }
    StatusOr<KvHandle> mine = ctx.kv_fork(*shared);
    if (!mine.ok()) {
      co_return;
    }
    reuse_len = *ctx.kv_len(*mine);
    (void)co_await ctx.pred1(*mine, 260);
    co_return;
  });
  sim.Run();
  EXPECT_EQ(reuse_len, 8u);
  // Reuse needed exactly one more batch (the single decode step).
  EXPECT_EQ(server.device().stats().batches, prefill_batches + 1);
}

TEST(ServerTest, SnapshotAggregatesComponentStats) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  server.Launch("work", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred_tokens(kv, 260, 261);
    co_return;
  });
  sim.Run();
  SymphonyServer::MetricsSnapshot snap = server.Snapshot();
  EXPECT_EQ(snap.preds, 1u);
  EXPECT_EQ(snap.lips_completed, 1u);
  EXPECT_GT(snap.gpu_utilization, 0.0);
  EXPECT_EQ(snap.batches, 1u);
}

TEST(ServerTest, AclIsolatesTenants) {
  Simulator sim;
  SymphonyServer server(&sim, TinyOptions());
  Status intruder_status;
  server.Launch("tenant-a", [&](LipContext& ctx) -> Task {
    (void)ctx.kv_create("/private/a");  // kModePrivate by default.
    co_return;
  });
  sim.Run();
  server.Launch("tenant-b", [&](LipContext& ctx) -> Task {
    StatusOr<KvHandle> stolen = ctx.kv_open("/private/a");
    intruder_status = stolen.status();
    co_return;
  });
  sim.Run();
  EXPECT_EQ(intruder_status.code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace symphony
