// Unit tests for src/sim: virtual time, the event queue, statistics, and
// the stochastic processes used by workload generators.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/distributions.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace symphony {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_EQ(Millis(1), 1'000'000);
  EXPECT_EQ(Micros(1), 1'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
  EXPECT_EQ(DurationFromSeconds(0.5), Millis(500));
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Millis(1), [&] {
    ++fired;
    sim.ScheduleAfter(Millis(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Millis(2));
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleAt(Millis(1), [&] {
      // Runs at now (10ms), not in the past.
      EXPECT_EQ(sim.now(), Millis(10));
    });
  });
  sim.Run();
}

TEST(SimulatorTest, CancelSkipsEvent) {
  Simulator sim;
  bool ran = false;
  Simulator::EventId id = sim.ScheduleAt(Millis(5), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Millis(1), [&] { ++fired; });
  sim.ScheduleAt(Millis(100), [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(Millis(50)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Millis(50));
  EXPECT_FALSE(sim.empty());
}

TEST(SimulatorTest, StepDispatchesOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSeriesTest, ExactPercentiles) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0.99), 99.01, 1e-9);
}

TEST(SampleSeriesTest, AddAfterPercentileStillCorrect) {
  SampleSeries s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(20.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(PoissonProcessTest, MeanGapMatchesRate) {
  PoissonProcess p(50.0, /*seed=*/42);
  double total = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    total += ToSeconds(p.NextGap());
  }
  EXPECT_NEAR(total / kN, 1.0 / 50.0, 1e-3);
}

TEST(ParetoCatalogTest, MassesSumToOne) {
  ParetoCatalog cat(100, /*pareto_index=*/1.0, /*seed=*/1);
  double total = 0.0;
  for (size_t i = 0; i < cat.size(); ++i) {
    total += cat.Mass(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ParetoCatalogTest, SmallIndexIsMoreSkewed) {
  // Small Pareto index => a few topics dominate (paper §5 reading).
  ParetoCatalog skewed(100, /*pareto_index=*/0.5, /*seed=*/1);
  ParetoCatalog flat(100, /*pareto_index=*/4.0, /*seed=*/1);
  double skewed_top10 = 0.0;
  double flat_top10 = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    skewed_top10 += skewed.Mass(i);
    flat_top10 += flat.Mass(i);
  }
  EXPECT_GT(skewed_top10, 0.9);
  EXPECT_LT(flat_top10, 0.6);
}

TEST(ParetoCatalogTest, EmpiricalFrequencyTracksMass) {
  ParetoCatalog cat(10, /*pareto_index=*/1.0, /*seed=*/99);
  std::vector<int> counts(10, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    ++counts[cat.Next()];
  }
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, cat.Mass(r), 0.01)
        << "rank " << r;
  }
}

TEST(ParetoCatalogTest, RanksAreDescendinglyPopular) {
  ParetoCatalog cat(50, /*pareto_index=*/1.5, /*seed=*/5);
  for (size_t r = 1; r < 50; ++r) {
    EXPECT_GE(cat.Mass(r - 1), cat.Mass(r));
  }
}

}  // namespace
}  // namespace symphony
