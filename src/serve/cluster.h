// SymphonyCluster: data-parallel multi-GPU serving (paper §4.4 "schedules
// this batch on the GPU(s)").
//
// Each replica is a complete SymphonyServer (own device, KVFS namespace,
// schedulers) over the same virtual clock; a router places each incoming LIP
// on a replica. Because KV files live in a replica's namespace, placement
// policy determines cache locality:
//   * kRoundRobin     — classic load spreading; a topic's requests scatter,
//                       so every replica ends up caching every hot document.
//   * kLeastLoaded    — place on the replica with the fewest live LIPs.
//   * kCacheAffinity  — hash an application-provided affinity key (e.g. the
//                       RAG topic) so same-key LIPs share a replica and its
//                       named KV files.
//
// Fault tolerance & live migration (src/recovery): with enable_recovery the
// cluster journals every LIP's syscalls. KillReplica(i) halts a replica and
// replays its live LIPs on a survivor; Migrate moves one LIP between live
// replicas; Rebalance migrates LIPs off overloaded replicas. Replayed LIPs
// fast-forward deterministically and produce bit-identical output (see
// journal.h for the determinism contract).
#ifndef SRC_SERVE_CLUSTER_H_
#define SRC_SERVE_CLUSTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/recovery/replayer.h"
#include "src/serve/server.h"

namespace symphony {

enum class RoutingPolicy {
  kRoundRobin,
  kLeastLoaded,
  kCacheAffinity,
  // Bounded-load consistent hashing: prefer the affinity replica unless its
  // live-LIP load exceeds load_factor x the cluster average, then overflow
  // to the least-loaded replica. Keeps locality without letting a hot key
  // saturate one replica (the failure mode of pure affinity under skew).
  kAffinityBounded,
};

struct ClusterOptions {
  size_t replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kRoundRobin;
  // kAffinityBounded overflow threshold (x cluster-average load); also the
  // per-replica overload bound used by Rebalance's default policy.
  double load_factor = 1.25;
  ServerOptions server;
  // Checkpoint/restore: journal every launched LIP so it survives
  // KillReplica and can be moved by Migrate/Rebalance.
  bool enable_recovery = false;
  // How a recovered LIP's KV cache is rebuilt (kAuto: cost-model choice).
  RecoveryMode recovery_mode = RecoveryMode::kAuto;
  // Event-driven rebalancing: under kAffinityBounded, each routing decision
  // that overflows away from its preferred replica is evidence of a hot key.
  // When `overflow_threshold` overflows accumulate within `overflow_window`,
  // a Rebalance pass runs immediately (at most once per `overflow_cooldown`)
  // instead of waiting for the next fixed-period StartAutoRebalance tick.
  // Requires enable_recovery; other routing policies never overflow.
  bool rebalance_on_overflow = true;
  uint32_t overflow_threshold = 4;
  SimDuration overflow_window = Millis(50);
  SimDuration overflow_cooldown = Millis(100);
};

class SymphonyCluster {
 public:
  SymphonyCluster(Simulator* sim, ClusterOptions options);

  SymphonyCluster(const SymphonyCluster&) = delete;
  SymphonyCluster& operator=(const SymphonyCluster&) = delete;

  // A LIP's cluster-wide identity. `replica`/`lip` are the placement at
  // launch time and go stale when the LIP is migrated; `uid` is stable for
  // the LIP's whole life (0 when recovery is disabled).
  struct ClusterLip {
    size_t replica = 0;
    LipId lip = kNoLip;
    uint64_t uid = 0;
  };

  // Routes and launches. `affinity_key` feeds kCacheAffinity (ignored by the
  // other policies; an empty key falls back to least-loaded).
  ClusterLip Launch(std::string name, const std::string& affinity_key,
                    LipProgram program,
                    std::function<void(LipId)> on_exit = nullptr);

  // The replica the router would pick for `affinity_key` right now. Dead
  // replicas are never picked.
  size_t RouteFor(const std::string& affinity_key) const;

  size_t replica_count() const { return replicas_.size(); }
  SymphonyServer& replica(size_t index) { return *replicas_[index]; }
  const ClusterOptions& options() const { return options_; }
  bool replica_dead(size_t index) const { return dead_[index]; }

  // ---- Fault injection, migration, rebalancing (src/recovery) ----------

  // Kills replica `index` at the current virtual time: its runtime halts
  // (nothing on it ever resumes) and, with recovery enabled, every live
  // journaled LIP is replayed on one least-loaded survivor — one survivor
  // for all of them, so IPC-coupled LIPs re-execute against each other.
  Status KillReplica(size_t index);

  // Live-migrates one LIP to `to_replica`: detaches it from its current
  // replica and replays it there. Requires recovery; both replicas live.
  Status Migrate(const ClusterLip& id, size_t to_replica);

  // One rebalance pass: migrates LIPs off replicas whose live load exceeds
  // load_factor x the live-replica average (or whatever the hook decides).
  // Returns the number of LIPs moved.
  size_t Rebalance();

  // Custom rebalance policy: given per-replica live-LIP counts (SIZE_MAX for
  // dead replicas), return (uid, target_replica) migrations to perform.
  using RebalanceHook =
      std::function<std::vector<std::pair<uint64_t, size_t>>(
          const std::vector<size_t>& live_lips)>;
  void set_rebalance_hook(RebalanceHook hook) {
    rebalance_hook_ = std::move(hook);
  }

  // Runs Rebalance() every `period` while the cluster has live LIPs (the
  // chain stops when it drains, so Simulator::Run still terminates).
  void StartAutoRebalance(SimDuration period);

  // ---- Introspection ---------------------------------------------------

  // Current placement of `id` (follows migrations via uid when recovery is
  // on; returns `id` unchanged otherwise).
  ClusterLip Locate(const ClusterLip& id) const;

  // Output/done state of a LIP, wherever it currently lives.
  const std::string& Output(const ClusterLip& id) const;
  bool Done(const ClusterLip& id) const;

  // Cluster-wide aggregates.
  struct ClusterSnapshot {
    double total_throughput_busy = 0.0;  // Sum of device busy fractions.
    uint64_t batches = 0;
    uint64_t lips_completed = 0;
    std::vector<uint64_t> lips_per_replica;
    size_t replicas_dead = 0;
    uint64_t failovers = 0;    // LIPs replayed because their replica died.
    uint64_t migrations = 0;   // Migrate/Rebalance moves.
    uint64_t lips_replayed = 0;
    uint64_t replay_divergences = 0;
    uint64_t overflow_events = 0;      // kAffinityBounded hot-key overflows.
    uint64_t overflow_rebalances = 0;  // Rebalances those overflows triggered.
  };
  ClusterSnapshot Snapshot() const;

 private:
  // Everything needed to re-launch a LIP somewhere else.
  struct LipRecord {
    uint64_t uid = 0;
    std::string name;
    LipProgram program;  // LipProgram is copyable: relaunch re-invokes it.
    std::function<void(LipId)> user_on_exit;
    size_t replica = 0;
    LipId lip = kNoLip;
    bool done = false;
    std::shared_ptr<SyscallJournal> journal;
  };

  size_t LeastLoaded() const;
  size_t FirstLiveFrom(size_t preferred) const;
  // Records a kAffinityBounded overflow (RouteFor is const; the counters are
  // routing observability, not routing state).
  void NoteOverflow() const;
  // Runs an immediate Rebalance if recent overflows crossed the threshold.
  void MaybeShedOnOverflow();
  std::function<void(LipId)> MakeOnExit(uint64_t uid);
  // Replays `rec` on `target` from a copy of its journal; updates placement.
  void ReplayOnto(LipRecord& rec, size_t target);
  void ScheduleRebalance(SimDuration period);
  size_t LiveLipsTotal() const;

  Simulator* sim_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<SymphonyServer>> replicas_;
  mutable size_t next_round_robin_ = 0;
  std::vector<uint64_t> launched_per_replica_;
  std::vector<bool> dead_;
  std::unordered_map<uint64_t, LipRecord> records_;
  uint64_t next_uid_ = 1;
  uint64_t failovers_ = 0;
  uint64_t migrations_ = 0;
  // Overflow-driven rebalance state (mutable: see NoteOverflow).
  mutable uint64_t overflow_events_ = 0;
  mutable uint32_t overflow_in_window_ = 0;
  mutable SimTime overflow_window_start_ = 0;
  uint64_t overflow_rebalances_ = 0;
  SimTime last_overflow_rebalance_ = -1;
  RebalanceHook rebalance_hook_;
};

}  // namespace symphony

#endif  // SRC_SERVE_CLUSTER_H_
