// SymphonyCluster: data-parallel multi-GPU serving (paper §4.4 "schedules
// this batch on the GPU(s)").
//
// Each replica is a complete SymphonyServer (own device, KVFS namespace,
// schedulers) over the same virtual clock; a router places each incoming LIP
// on a replica. Because KV files live in a replica's namespace, placement
// policy determines cache locality:
//   * kRoundRobin     — classic load spreading; a topic's requests scatter,
//                       so every replica ends up caching every hot document.
//   * kLeastLoaded    — place on the replica with the fewest live LIPs.
//   * kCacheAffinity  — hash an application-provided affinity key (e.g. the
//                       RAG topic) so same-key LIPs share a replica and its
//                       named KV files.
//
// Fault tolerance & live migration (src/recovery): with enable_recovery the
// cluster journals every LIP's syscalls. KillReplica(i) halts a replica and
// replays its live LIPs on a survivor; Migrate moves one LIP between live
// replicas; Rebalance migrates LIPs off overloaded replicas. Replayed LIPs
// fast-forward deterministically and produce bit-identical output (see
// journal.h for the determinism contract).
//
// Snapshot store (src/store): the cluster owns one content-addressed KV
// snapshot store shared by three consumers —
//   * journal checkpointing: each journal folds into the store every
//     checkpoint_interval entries and truncates the folded prefix, bounding
//     journal memory for long-lived LIPs;
//   * delta migration: Migrate/KillReplica ship (checkpoint ref + live
//     suffix) instead of the whole log; replay starts once the bytes that
//     actually moved clear the network topology's links;
//   * cross-replica prefix sharing: SharePrefixes() publishes hot named KV
//     files and warm-imports them on other replicas when the Replayer's cost
//     model says import beats recompute.
#ifndef SRC_SERVE_CLUSTER_H_
#define SRC_SERVE_CLUSTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ctrl/control_plane.h"
#include "src/net/ipc_fabric.h"
#include "src/recovery/replayer.h"
#include "src/serve/server.h"
#include "src/store/journal_checkpoint.h"
#include "src/store/snapshot_store.h"

namespace symphony {

// Per-replica role for prefill/decode disaggregation. A kPrefill replica
// takes only fresh launches with a large-prefill hint; when such a LIP's
// prefill completes, the cluster publishes its KV through the snapshot store
// and migrates it (delta path, bytes charged to the topology) to a decode or
// unified replica, so decode replicas never run a multi-thousand-token
// prefill and prefill replicas never accumulate decode load.
enum class ReplicaRole {
  kUnified,  // Takes any work (the default; a role-less cluster is all-unified).
  kPrefill,  // Large-prefill launches only; hands off after the prefill.
  kDecode,   // Normal placement pool; never picked for hinted large prefills.
};

enum class RoutingPolicy {
  kRoundRobin,
  kLeastLoaded,
  kCacheAffinity,
  // Bounded-load consistent hashing: prefer the affinity replica unless its
  // live-LIP load exceeds load_factor x the cluster average, then overflow
  // to the least-loaded replica. Keeps locality without letting a hot key
  // saturate one replica (the failure mode of pure affinity under skew).
  kAffinityBounded,
};

struct ClusterOptions {
  size_t replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kRoundRobin;
  // kAffinityBounded overflow threshold (x cluster-average load); also the
  // per-replica overload bound used by Rebalance's default policy.
  double load_factor = 1.25;
  ServerOptions server;
  // Checkpoint/restore: journal every launched LIP so it survives
  // KillReplica and can be moved by Migrate/Rebalance.
  bool enable_recovery = false;
  // How a recovered LIP's KV cache is rebuilt (kAuto: cost-model choice).
  RecoveryMode recovery_mode = RecoveryMode::kAuto;
  // Event-driven rebalancing: under kAffinityBounded, each routing decision
  // that overflows away from its preferred replica is evidence of a hot key.
  // When `overflow_threshold` overflows accumulate within `overflow_window`,
  // a Rebalance pass runs immediately (at most once per `overflow_cooldown`)
  // instead of waiting for the next fixed-period StartAutoRebalance tick.
  // Requires enable_recovery; other routing policies never overflow.
  bool rebalance_on_overflow = true;
  uint32_t overflow_threshold = 4;
  SimDuration overflow_window = Millis(50);
  SimDuration overflow_cooldown = Millis(100);
  // ---- Snapshot store (src/store) --------------------------------------
  // Fold each LIP's journal into the store and truncate the folded prefix
  // every `checkpoint_interval` live entries. Requires enable_recovery.
  bool checkpoint_journals = false;
  uint64_t checkpoint_interval = 64;
  // Ship (checkpoint ref + live suffix) on Migrate/KillReplica instead of
  // the full serialized journal. Replay start is delayed by the shipped
  // bytes' time on the topology's links either way.
  bool delta_migration = true;
  uint64_t store_chunk_bytes = 4096;
  // Prefix sharing: a named file is publishable once it has been opened this
  // often and is at least this long (shorter prefixes lose to recompute
  // anyway — the Replayer cost model has the final say per file).
  uint64_t share_min_opens = 2;
  uint64_t share_min_tokens = 64;
  // Cluster admission tier: Submit() tries other live replicas (ascending
  // load) when the routed replica rejects, before shedding.
  bool reroute_on_reject = true;
  // ---- Prefill/decode disaggregation -----------------------------------
  // Per-replica roles; replicas beyond the vector's end default to kUnified
  // (elastic scale-out picks the hotter pool's role, see ControlAddReplica).
  // The prefill->decode handoff requires enable_recovery (it is a journaled
  // migration); with checkpoint_journals the prefilled KV is published
  // through the snapshot store so the ship is a checkpoint ref + suffix.
  std::vector<ReplicaRole> roles;
  // A launch is steered to the prefill pool only when its prefill hint is at
  // least this many tokens, and handed off afterwards only when the Replayer
  // cost model says importing the shipped KV beats recomputing it — small
  // jobs never pay the hop either way.
  uint64_t disagg_min_prefill_tokens = 512;
  // Cluster IPC fabric (src/net): cross-replica channel routing, partition
  // retry/deadline behavior, link cost charging.
  IpcFabricOptions ipc;
  // Network topology (src/net): the physical link graph EVERY cross-replica
  // byte — IPC, journal shipping, snapshot-store fetches — is routed over.
  // `replicas` above overrides the preset's replica count. The default
  // single-switch preset reproduces the uniform-interconnect timings exactly.
  TopologyOptions topology;
  // Autonomic control plane (src/ctrl): heartbeat failure detection with
  // epoch-fenced automatic recovery, readmission of healed replicas, and
  // (when ctrl.scaling.enabled) elastic scale-out/in. Detection-driven
  // recovery requires enable_recovery. Off by default — the legacy
  // manual-KillReplica contract is unchanged.
  ControlPlaneOptions ctrl;
  // Invoked for every server the cluster builds: the initial replicas, a
  // slot rebuilt by readmission, and elastic scale-out. Register server-side
  // tools (and any other per-replica setup) here, so a rebuilt or new
  // replica serves the same program surface as the original fleet.
  std::function<void(SymphonyServer&, size_t)> configure_replica;
};

class SymphonyCluster : private ClusterControl {
 public:
  SymphonyCluster(Simulator* sim, ClusterOptions options);

  SymphonyCluster(const SymphonyCluster&) = delete;
  SymphonyCluster& operator=(const SymphonyCluster&) = delete;

  // A LIP's cluster-wide identity. `replica`/`lip` are the placement at
  // launch time and go stale when the LIP is migrated; `uid` is stable for
  // the LIP's whole life (0 when recovery is disabled).
  struct ClusterLip {
    size_t replica = 0;
    LipId lip = kNoLip;
    uint64_t uid = 0;
  };

  // Routes and launches. `affinity_key` feeds kCacheAffinity (ignored by the
  // other policies; an empty key falls back to least-loaded).
  ClusterLip Launch(std::string name, const std::string& affinity_key,
                    LipProgram program,
                    std::function<void(LipId)> on_exit = nullptr);

  // Launch with a prefill-size hint: how many fresh context tokens the LIP
  // will prefill up front (0 = unknown/small). With prefill-role replicas
  // configured, a hint of at least disagg_min_prefill_tokens routes the LIP
  // to the prefill pool; it migrates to a decode replica once the prefill
  // completes and the cost gate approves the ship.
  ClusterLip Launch(std::string name, const std::string& affinity_key,
                    uint64_t prefill_hint_tokens, LipProgram program,
                    std::function<void(LipId)> on_exit = nullptr);

  // Admission-controlled launch with a cluster-level fallback tier: when the
  // routed replica's Submit rejects (kUnavailable + retry_after), the other
  // live replicas are tried in ascending live-LIP order before the request
  // is shed. The returned status/retry_after on a shed is the minimum
  // backpressure hint across all replicas.
  struct ClusterAdmitResult {
    SymphonyServer::AdmitResult result;
    size_t replica = 0;     // Where it was admitted/queued (or last tried).
    bool rerouted = false;  // Admitted somewhere other than the routed pick.
  };
  ClusterAdmitResult Submit(SymphonyServer::LaunchSpec spec,
                            const std::string& affinity_key = "");

  // The replica the router would pick for `affinity_key` right now. Dead
  // replicas are never picked; prefill-role replicas are picked only through
  // a qualifying `prefill_hint_tokens` (or when nothing else is placeable).
  size_t RouteFor(const std::string& affinity_key) const;
  size_t RouteFor(const std::string& affinity_key,
                  uint64_t prefill_hint_tokens) const;

  // The role replica `index` was configured (or scaled out) with.
  ReplicaRole RoleOf(size_t index) const;

  size_t replica_count() const { return replicas_.size(); }
  SymphonyServer& replica(size_t index) { return *replicas_[index]; }
  const ClusterOptions& options() const { return options_; }
  bool replica_dead(size_t index) const { return dead_[index]; }
  bool replica_draining(size_t index) const { return draining_[index]; }

  // The autonomic control plane, or nullptr when options.ctrl.enabled is
  // false. Exposes detector state (Health/Epoch/HeartbeatAge) and stats.
  ControlPlane* control_plane() { return ctrl_.get(); }
  const ControlPlane* control_plane() const { return ctrl_.get(); }

  // ---- Elasticity (src/ctrl) -------------------------------------------

  // Grows the fleet by one replica at runtime: a fresh SymphonyServer whose
  // node attaches to the emptier rack switch in the topology, wired into the
  // IPC fabric and (when enabled) the control plane. The scaling loop calls
  // this automatically; it is public so harnesses can scale manually.
  // Returns the new replica index.
  size_t AddReplica();

  // Starts draining `index`: placement stops immediately, its live LIPs
  // migrate to placeable replicas, and — with the control plane enabled —
  // the replica detaches once empty. Requires enable_recovery.
  Status DrainReplica(size_t index);

  // Crashes replica `index` the way FaultPlan::CrashReplicaAt does: its
  // process halts silently — no component is told, which is the point: only
  // the control plane's missed heartbeats can notice. With down_for >= 0
  // the process heals after that long and may be readmitted (at a bumped
  // epoch) once the detector declared it dead.
  Status CrashReplica(size_t index, SimDuration down_for = -1);

  // ---- Fault injection, migration, rebalancing (src/recovery) ----------

  // Kills replica `index` at the current virtual time: its runtime halts
  // (nothing on it ever resumes) and, with recovery enabled, every live
  // journaled LIP is replayed on a survivor, spread across survivors by
  // load. IPC-coupled LIPs no longer need to co-migrate: the fabric serves
  // journaled recvs, suppresses journaled sends, and rehomes each replayed
  // endpoint's channels wherever it lands (see src/net/ipc_fabric.h).
  Status KillReplica(size_t index);

  // Live-migrates one LIP to `to_replica`: detaches it from its current
  // replica and replays it there. Requires recovery; both replicas live.
  Status Migrate(const ClusterLip& id, size_t to_replica);

  // One rebalance pass: migrates LIPs off replicas whose live load exceeds
  // load_factor x the live-replica average (or whatever the hook decides).
  // Returns the number of LIPs moved.
  size_t Rebalance();

  // Custom rebalance policy: given per-replica live-LIP counts (SIZE_MAX for
  // dead replicas), return (uid, target_replica) migrations to perform.
  using RebalanceHook =
      std::function<std::vector<std::pair<uint64_t, size_t>>(
          const std::vector<size_t>& live_lips)>;
  void set_rebalance_hook(RebalanceHook hook) {
    rebalance_hook_ = std::move(hook);
  }

  // Runs Rebalance() every `period` while the cluster has live LIPs (the
  // chain stops when it drains, so Simulator::Run still terminates).
  void StartAutoRebalance(SimDuration period);

  // ---- Cross-replica prefix sharing (src/store) ------------------------

  // One sharing pass: publishes hot named KV files (>= share_min_opens
  // opens, >= share_min_tokens tokens, import cheaper than recompute per the
  // Replayer cost model) into the snapshot store and warm-imports them on
  // every live replica that lacks the path. The import lands after the
  // fetched bytes' interconnect time. Returns files warmed this pass.
  size_t SharePrefixes();

  // Runs SharePrefixes() every `period` while the cluster has live LIPs.
  void StartPrefixSharing(SimDuration period);

  // The cluster-wide snapshot store (journal checkpoints + shared prefixes).
  SnapshotStore& store() { return *store_; }
  const SnapshotStore& store() const { return *store_; }

  // The cluster IPC fabric (src/net): cluster-wide named channels.
  IpcFabric& fabric() { return *fabric_; }
  const IpcFabric& fabric() const { return *fabric_; }

  // The network topology all cross-replica bytes are routed over.
  NetworkTopology& topology() { return *topology_; }
  const NetworkTopology& topology() const { return *topology_; }

  // ---- Introspection ---------------------------------------------------

  // Current placement of `id` (follows migrations via uid when recovery is
  // on; returns `id` unchanged otherwise).
  ClusterLip Locate(const ClusterLip& id) const;

  // Output/done state of a LIP, wherever it currently lives.
  const std::string& Output(const ClusterLip& id) const;
  bool Done(const ClusterLip& id) const;

  // Cluster-wide aggregates.
  struct ClusterSnapshot {
    double total_throughput_busy = 0.0;  // Sum of device busy fractions.
    uint64_t batches = 0;
    uint64_t lips_completed = 0;
    std::vector<uint64_t> lips_per_replica;
    size_t replicas_dead = 0;
    uint64_t failovers = 0;    // LIPs replayed because their replica died.
    uint64_t migrations = 0;   // Migrate/Rebalance moves.
    uint64_t lips_replayed = 0;
    uint64_t replay_divergences = 0;
    uint64_t overflow_events = 0;      // kAffinityBounded hot-key overflows.
    uint64_t overflow_rebalances = 0;  // Rebalances those overflows triggered.
    // Snapshot store consumers.
    uint64_t checkpoints = 0;               // Journal folds into the store.
    uint64_t checkpoint_entries_folded = 0; // Entries truncated by folds.
    uint64_t delta_ships = 0;           // Migrations shipping suffix only.
    uint64_t full_ships = 0;            // Migrations shipping the whole log.
    uint64_t ship_bytes = 0;            // Journal bytes moved (both kinds).
    uint64_t rehydrate_retries = 0;     // Rehydrations re-tried (corruption).
    uint64_t prefix_publishes = 0;      // Hot files published by sharing.
    uint64_t warm_imports = 0;          // Files warm-imported on a replica.
    uint64_t warm_import_tokens = 0;
    uint64_t warm_skips_cost = 0;       // Sharing skipped: recompute cheaper.
    uint64_t warm_corrupt_fallbacks = 0; // Imports abandoned to recompute.
    // Cluster admission tier.
    uint64_t submit_reroutes = 0;       // Rejections salvaged elsewhere.
    uint64_t submit_sheds = 0;          // Rejected by every live replica.
    // Cluster IPC fabric (src/net).
    uint64_t ipc_sent = 0;              // Messages accepted from senders.
    uint64_t ipc_received = 0;          // Messages delivered to receivers.
    uint64_t ipc_forwarded = 0;         // Transfers re-kicked after a rehome.
    uint64_t ipc_dropped = 0;           // Partitioned past the send deadline.
    uint64_t ipc_cross_sends = 0;       // Link transfers started.
    uint64_t ipc_local_deliveries = 0;  // Sender and receiver co-located.
    uint64_t ipc_partition_retries = 0; // Transfer attempts blocked.
    uint64_t ipc_rehomes = 0;           // Channel endpoint re-registrations.
    uint64_t ipc_recvs_replayed = 0;    // Recvs served verbatim from journals.
    uint64_t ipc_sends_suppressed = 0;  // Journaled sends not re-sent.
    // Credit-based flow control (bounded channels).
    uint64_t ipc_credit_waits = 0;      // Sends parked for lack of credit.
    uint64_t ipc_credit_grants = 0;     // Parked sends later granted a credit.
    uint64_t ipc_credit_deadlocks = 0;  // Channels flagged in a wait cycle.
    uint64_t ipc_credit_waits_replayed = 0;  // Waits consumed from journals.
    std::vector<IpcReplicaStats> ipc_per_replica;
    SnapshotStoreStats store;
    // Network topology (src/net): every cross-replica byte, by physical link.
    uint64_t net_transfers = 0;         // End-to-end transfers routed.
    uint64_t net_payload_bytes = 0;     // Payload bytes (counted once each).
    uint64_t net_multi_hop = 0;         // Transfers that crossed a switch hop.
    uint64_t net_reroutes = 0;          // Transfers detoured around a down link.
    uint64_t net_link_blocked = 0;      // Attempts with no live route at all.
    uint64_t ipc_cross_bytes = 0;       // IPC payload handed to the topology.
    uint64_t ipc_link_down_retries = 0; // IPC retries caused by down links.
    std::vector<TopoLinkReport> net_links;  // Per-link transfer/byte/queue stats.
    // Control plane (src/ctrl): per-replica liveness as the detector sees it
    // (empty when the control plane is disabled).
    struct ReplicaLiveness {
      ReplicaHealth state = ReplicaHealth::kLive;
      uint64_t epoch = 1;               // Bumped at each declare-dead.
      SimDuration heartbeat_age = -1;   // -1: dead/detached or never beat.
      uint64_t lips_hosted = 0;
      bool fenced = false;
    };
    std::vector<ReplicaLiveness> liveness;
    ControlPlaneStats ctrl;
    size_t ctrl_seat = kNoReplica;      // Where the membership service runs.
    uint64_t ipc_fenced_rejections = 0; // Fabric ops refused from fenced replicas.
    // Stall-free scheduling (chunked prefill + decode priority, src/sched).
    double queue_wait_p50_ms = 0.0;     // Scheduler queue waits, cluster-wide.
    double queue_wait_p99_ms = 0.0;
    uint64_t decode_tokens_batched = 0;   // Per-batch token occupancy, summed.
    uint64_t prefill_tokens_batched = 0;
    uint64_t prefill_chunks = 0;          // Chunk launches of split prefills.
    uint64_t prefills_chunked = 0;        // Prefills split at least once.
    // Prefill/decode disaggregation.
    uint64_t disagg_prefill_routes = 0;   // Launches steered to the prefill pool.
    uint64_t disagg_handoffs = 0;         // Prefill->decode migrations shipped.
    uint64_t disagg_handoff_skips = 0;    // Handoffs declined (cost gate,
                                          // no placeable target, or raced).
  };
  ClusterSnapshot Snapshot() const;

 private:
  // Everything needed to re-launch a LIP somewhere else.
  struct LipRecord {
    uint64_t uid = 0;
    std::string name;
    LipProgram program;  // LipProgram is copyable: relaunch re-invokes it.
    std::function<void(LipId)> user_on_exit;
    size_t replica = 0;
    LipId lip = kNoLip;
    bool done = false;
    // Journal shipped to a new replica but replay not started yet: the LIP
    // must not be re-migrated, and replica/lip still name the old (halted or
    // detached) incarnation so Output()/Locate() keep answering.
    bool in_flight = false;
    std::shared_ptr<SyscallJournal> journal;
    // Final output, cached at exit: the hosting replica's runtime may be
    // rebuilt (readmission) after the LIP finishes, so Output() must not
    // depend on the old incarnation surviving.
    std::string output;
  };

  // ---- ClusterControl (src/ctrl) ---------------------------------------
  size_t ControlReplicaCount() const override;
  bool ControlBeating(size_t replica) const override;
  bool ControlHasWork() const override;
  SimTime ControlHealAt(size_t replica) const override;
  void ControlFence(size_t replica, uint64_t epoch) override;
  void ControlFailover(size_t replica) override;
  bool ControlReadmit(size_t replica, uint64_t epoch) override;
  size_t ControlAddReplica() override;
  bool ControlStartDrain(size_t replica) override;
  bool ControlDrainComplete(size_t replica) override;
  LoadSignal ControlLoadSignal() const override;

  // Builds the SymphonyServer for slot `index` with the cluster's
  // per-replica seed decorrelation (also what readmission rebuilds from).
  std::unique_ptr<SymphonyServer> BuildReplica(size_t index) const;
  // Replica `index` accepts new placements (not dead, draining, or halted).
  bool Placeable(size_t index) const;
  // Routing should avoid `index` (control plane suspects it is failing).
  bool Avoided(size_t index) const;
  // Shared guts of KillReplica and ControlFailover: marks the replica dead
  // and fails its journaled LIPs over to placeable survivors.
  Status FailReplica(size_t index);
  // Migrates every undone LIP hosted on draining replica `index` away.
  void DrainStep(size_t index);
  // LIPs stranded on dead replicas with no failover in flight (a failover
  // that found no placeable survivor leaves them behind), sorted by uid.
  std::vector<uint64_t> StrandedLips() const;
  // Completion chain for manual drains without a control plane.
  void PollDrain(size_t index);

  size_t LeastLoaded() const;
  size_t FirstLiveFrom(size_t preferred) const;
  // Replica `index` belongs to the general placement pool (decode/unified).
  // Prefill-role replicas are excluded so a decode stream never lands behind
  // another LIP's giant prefill; they remain a last resort when nothing in
  // the serve pool is placeable.
  bool InServePool(size_t index) const;
  bool HasPrefillPool() const;
  // Least-loaded placeable prefill-role replica, or kNoReplica.
  size_t LeastLoadedPrefill() const;
  // Wires the prefill-completion handoff hook into replica `index`'s
  // scheduler (no-op unless the slot is prefill-role with recovery on).
  // Re-run wherever the slot's server is (re)built.
  void InstallDisaggHook(size_t index);
  // Prefill finished on a prefill-role replica: publish the KV through the
  // snapshot store and migrate the LIP to the least-loaded decode-pool
  // replica, unless the cost model says the hop loses to local decode.
  void MaybeHandoff(uint64_t uid, uint64_t context_tokens);
  // Records a kAffinityBounded overflow (RouteFor is const; the counters are
  // routing observability, not routing state).
  void NoteOverflow() const;
  // Runs an immediate Rebalance if recent overflows crossed the threshold.
  void MaybeShedOnOverflow();
  std::function<void(LipId)> MakeOnExit(uint64_t uid);
  // Ships `rec`'s journal to `target` (delta or full) and replays it there
  // after the shipped bytes' interconnect time; updates placement when the
  // replay actually starts.
  void ReplayOnto(LipRecord& rec, size_t target);
  // Rehydrates + schedules the deferred replay; re-tries itself while the
  // checkpoint fetch hits a corruption window.
  void ShipJournal(uint64_t uid, size_t target,
                   std::shared_ptr<SyscallJournal> journal);
  void StartReplay(uint64_t uid, size_t target,
                   std::shared_ptr<SyscallJournal> journal);
  // Installs the journal's store fold hook for its current host replica.
  void InstallCheckpointHook(const std::shared_ptr<SyscallJournal>& journal,
                             size_t replica);
  void ScheduleRebalance(SimDuration period);
  void SchedulePrefixSharing(SimDuration period);
  size_t LiveLipsTotal() const;

  Simulator* sim_;
  ClusterOptions options_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<NetworkTopology> topology_;
  std::unique_ptr<SnapshotStore> store_;
  std::unique_ptr<IpcFabric> fabric_;
  std::vector<std::unique_ptr<SymphonyServer>> replicas_;
  // Replaced server incarnations (readmission rebuilds the slot). Kept
  // alive, not destroyed: halted runtimes may still be named by pending
  // simulator events and late completions.
  std::vector<std::unique_ptr<SymphonyServer>> retired_servers_;
  mutable size_t next_round_robin_ = 0;
  std::vector<uint64_t> launched_per_replica_;
  std::vector<bool> dead_;
  std::vector<bool> draining_;   // Scale-in: no placement, migrating off.
  std::vector<bool> fenced_;     // Fenced by the control plane (epoch bump).
  std::vector<bool> crashed_;    // Process down (FaultPlan crash).
  std::vector<bool> retired_;    // Manual kill / detached: never readmitted.
  std::vector<SimTime> crash_heal_at_;  // -1: permanent.
  // Per-slot roles, kept index-aligned with replicas_ (scale-out appends the
  // hotter pool's role; readmission keeps the slot's original role).
  std::vector<ReplicaRole> roles_;
  std::unordered_map<uint64_t, LipRecord> records_;
  uint64_t next_uid_ = 1;
  uint64_t failovers_ = 0;
  uint64_t migrations_ = 0;
  // Overflow-driven rebalance state (mutable: see NoteOverflow).
  mutable uint64_t overflow_events_ = 0;
  mutable uint32_t overflow_in_window_ = 0;
  mutable SimTime overflow_window_start_ = 0;
  uint64_t overflow_rebalances_ = 0;
  SimTime last_overflow_rebalance_ = -1;
  RebalanceHook rebalance_hook_;
  // Snapshot-store consumer state.
  struct SharedPrefix {
    uint64_t key = 0;      // Store manifest (one reference held).
    uint64_t tokens = 0;   // File length at publish (skip unchanged files).
  };
  std::unordered_map<std::string, SharedPrefix> shared_prefixes_;
  uint64_t checkpoints_ = 0;
  uint64_t checkpoint_entries_folded_ = 0;
  uint64_t delta_ships_ = 0;
  uint64_t full_ships_ = 0;
  uint64_t ship_bytes_ = 0;
  uint64_t rehydrate_retries_ = 0;
  uint64_t prefix_publishes_ = 0;
  uint64_t warm_imports_ = 0;
  uint64_t warm_import_tokens_ = 0;
  uint64_t warm_skips_cost_ = 0;
  uint64_t warm_corrupt_fallbacks_ = 0;
  uint64_t submit_reroutes_ = 0;
  uint64_t submit_sheds_ = 0;
  // Disaggregation observability (mutable: RouteFor is const, see
  // NoteOverflow for the precedent).
  mutable uint64_t disagg_prefill_routes_ = 0;
  uint64_t disagg_handoffs_ = 0;
  uint64_t disagg_handoff_skips_ = 0;
  // Declared last: the control plane's loops call back into everything
  // above, so it must be destroyed first.
  std::unique_ptr<ControlPlane> ctrl_;
};

}  // namespace symphony

#endif  // SRC_SERVE_CLUSTER_H_
