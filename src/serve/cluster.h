// SymphonyCluster: data-parallel multi-GPU serving (paper §4.4 "schedules
// this batch on the GPU(s)").
//
// Each replica is a complete SymphonyServer (own device, KVFS namespace,
// schedulers) over the same virtual clock; a router places each incoming LIP
// on a replica. Because KV files live in a replica's namespace, placement
// policy determines cache locality:
//   * kRoundRobin     — classic load spreading; a topic's requests scatter,
//                       so every replica ends up caching every hot document.
//   * kLeastLoaded    — place on the replica with the fewest live LIPs.
//   * kCacheAffinity  — hash an application-provided affinity key (e.g. the
//                       RAG topic) so same-key LIPs share a replica and its
//                       named KV files.
#ifndef SRC_SERVE_CLUSTER_H_
#define SRC_SERVE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/serve/server.h"

namespace symphony {

enum class RoutingPolicy {
  kRoundRobin,
  kLeastLoaded,
  kCacheAffinity,
  // Bounded-load consistent hashing: prefer the affinity replica unless its
  // live-LIP load exceeds load_factor x the cluster average, then overflow
  // to the least-loaded replica. Keeps locality without letting a hot key
  // saturate one replica (the failure mode of pure affinity under skew).
  kAffinityBounded,
};

struct ClusterOptions {
  size_t replicas = 2;
  RoutingPolicy routing = RoutingPolicy::kRoundRobin;
  // kAffinityBounded overflow threshold (x cluster-average load).
  double load_factor = 1.25;
  ServerOptions server;
};

class SymphonyCluster {
 public:
  SymphonyCluster(Simulator* sim, ClusterOptions options);

  SymphonyCluster(const SymphonyCluster&) = delete;
  SymphonyCluster& operator=(const SymphonyCluster&) = delete;

  // A LIP's cluster-wide identity.
  struct ClusterLip {
    size_t replica = 0;
    LipId lip = kNoLip;
  };

  // Routes and launches. `affinity_key` feeds kCacheAffinity (ignored by the
  // other policies; an empty key falls back to least-loaded).
  ClusterLip Launch(std::string name, const std::string& affinity_key,
                    LipProgram program,
                    std::function<void(LipId)> on_exit = nullptr);

  // The replica the router would pick for `affinity_key` right now.
  size_t RouteFor(const std::string& affinity_key) const;

  size_t replica_count() const { return replicas_.size(); }
  SymphonyServer& replica(size_t index) { return *replicas_[index]; }
  const ClusterOptions& options() const { return options_; }

  // Cluster-wide aggregates.
  struct ClusterSnapshot {
    double total_throughput_busy = 0.0;  // Sum of device busy fractions.
    uint64_t batches = 0;
    uint64_t lips_completed = 0;
    std::vector<uint64_t> lips_per_replica;
  };
  ClusterSnapshot Snapshot() const;

 private:
  size_t LeastLoaded() const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<SymphonyServer>> replicas_;
  mutable size_t next_round_robin_ = 0;
  std::vector<uint64_t> launched_per_replica_;
};

}  // namespace symphony

#endif  // SRC_SERVE_CLUSTER_H_
