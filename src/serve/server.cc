#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"

namespace symphony {

namespace {

std::unique_ptr<BatchPolicy> MakePolicy(const ServerOptions& options) {
  switch (options.batch_policy) {
    case BatchPolicyKind::kEager:
      return std::make_unique<EagerPolicy>();
    case BatchPolicyKind::kSizeTimeout:
      return std::make_unique<SizeTimeoutPolicy>(options.batch_target_size,
                                                 options.batch_timeout);
    case BatchPolicyKind::kPoissonAdaptive:
      return std::make_unique<PoissonAdaptivePolicy>(options.batch_max_wait);
  }
  return std::make_unique<EagerPolicy>();
}

KvfsOptions MakeKvfsOptions(const ServerOptions& options, Simulator* sim,
                            const CostModel& cost) {
  KvfsOptions kv;
  uint64_t page_bytes =
      static_cast<uint64_t>(kPageTokens) * options.model.KvBytesPerToken();
  kv.gpu_page_budget = cost.DeviceKvBudgetBytes() / page_bytes;
  kv.host_page_budget = options.hardware.host_bytes / page_bytes;
  kv.eviction = options.eviction;
  kv.clock = [sim] { return sim->now(); };
  return kv;
}

}  // namespace

// Executes tools from the registry with the full failure-semantics stack:
// per-tool circuit breaker, injected faults (FaultPlan), per-attempt
// timeouts, and exponential-backoff retries of transient failures. While a
// LIP waits out a slow call its KV files are offloaded to host memory (§4.3)
// and restored lazily by the next pred. Only the final result of the loop
// reaches the runtime (and thus the syscall journal), so a recovered LIP
// replays exactly the failures it observed.
class SymphonyServer::ServerToolService : public ToolService {
 public:
  ServerToolService(SymphonyServer* server)
      : server_(server),
        jitter_rng_(Mix64(server->options_.tool_seed ^ 0x7e7a11ULL)) {}

  void Invoke(LipId lip, ThreadId thread, const std::string& tool,
              const std::string& args,
              std::function<void(ToolResult)> complete) override {
    (void)thread;
    // The calling LIP's tool-call ordinal (the runtime charges usage before
    // invoking us): the replay-invariant identity FaultPlan keys on.
    uint64_t ordinal = server_->runtime_->GetUsage(lip).tool_calls;
    Attempt(lip, tool, args, ordinal, 1, std::move(complete));
  }

  const ToolServiceStats& stats() const { return stats_; }

  const CircuitBreaker* breaker(const std::string& tool) const {
    auto it = breakers_.find(tool);
    return it == breakers_.end() ? nullptr : &it->second;
  }

  uint64_t TotalBreakerOpens() const {
    uint64_t total = 0;
    for (const auto& [name, b] : breakers_) {
      total += b.opens();
    }
    return total;
  }

 private:
  void Attempt(LipId lip, const std::string& tool, const std::string& args,
               uint64_t ordinal, uint32_t attempt,
               std::function<void(ToolResult)> complete) {
    Simulator* sim = server_->sim_;
    const ServerOptions& options = server_->options_;
    ++stats_.attempts;
    CircuitBreaker& breaker =
        breakers_.try_emplace(tool, options.breaker).first->second;
    if (options.breaker.enabled && !breaker.Allow(sim->now())) {
      // Open breaker: fail instantly without paying tool latency. Still
      // eligible for retry — the backoff may outlast the cooldown.
      ++stats_.breaker_rejections;
      FailOrRetry(lip, tool, args, ordinal, attempt,
                  UnavailableError("circuit open for tool '" + tool + "'"),
                  std::move(complete));
      return;
    }
    StatusOr<ToolInvocation> run = server_->tools_->Run(tool, args);
    if (!run.ok()) {
      // Registry errors (unknown tool) are caller errors: permanent, and
      // invisible to the breaker. Deliver after a scheduler turn, never
      // synchronously.
      ++stats_.failures;
      sim->ScheduleAt(sim->now(),
                      [complete = std::move(complete), st = run.status()] {
                        complete(ToolResult{st, ""});
                      });
      return;
    }
    ToolInvocation invocation = std::move(*run);
    FaultDecision fault;
    if (options.fault_plan != nullptr) {
      fault = options.fault_plan->OnToolCall(tool, sim->now(), args, ordinal,
                                             attempt);
    }
    SimDuration latency = invocation.latency;
    if (fault.latency_factor != 1.0) {
      latency = static_cast<SimDuration>(static_cast<double>(latency) *
                                         fault.latency_factor);
    }
    Status outcome = !fault.status.ok() ? fault.status : invocation.status;
    if (options.tool_retry.call_timeout > 0 &&
        latency > options.tool_retry.call_timeout) {
      // The caller gives up at the timeout; the (simulated) backend work is
      // abandoned. This is how latency-tail faults convert into retries.
      latency = options.tool_retry.call_timeout;
      ++stats_.timeouts;
      outcome = DeadlineExceededError("tool '" + tool + "' timed out");
    }
    if (outcome.ok() && options.offload_kv_on_tool_io &&
        latency >= options.min_io_for_offload) {
      server_->kvfs_->OffloadOwnedBy(lip);
    }
    if (options.trace != nullptr) {
      options.trace->Span("tools", tool, sim->now(), latency);
    }
    sim->ScheduleAfter(
        latency, [this, lip, tool, args, ordinal, attempt,
                  outcome = std::move(outcome),
                  output = std::move(invocation.output),
                  complete = std::move(complete)]() mutable {
          CircuitBreaker& b =
              breakers_.try_emplace(tool, server_->options_.breaker)
                  .first->second;
          if (outcome.ok()) {
            b.RecordSuccess();
            complete(ToolResult{std::move(outcome), std::move(output)});
            return;
          }
          if (IsTransientError(outcome.code())) {
            b.RecordFailure(server_->sim_->now());
          }
          FailOrRetry(lip, tool, args, ordinal, attempt, std::move(outcome),
                      std::move(complete));
        });
  }

  void FailOrRetry(LipId lip, const std::string& tool, const std::string& args,
                   uint64_t ordinal, uint32_t attempt, Status why,
                   std::function<void(ToolResult)> complete) {
    const ToolRetryOptions& retry = server_->options_.tool_retry;
    Simulator* sim = server_->sim_;
    if (attempt >= retry.max_attempts || !IsTransientError(why.code())) {
      ++stats_.failures;
      sim->ScheduleAt(sim->now(),
                      [complete = std::move(complete), why = std::move(why)] {
                        complete(ToolResult{std::move(why), ""});
                      });
      return;
    }
    ++stats_.retries;
    SimDuration backoff = retry.backoff_base;
    for (uint32_t i = 1; i < attempt && backoff < retry.backoff_cap; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, retry.backoff_cap);
    if (retry.backoff_jitter > 0.0) {
      backoff += static_cast<SimDuration>(static_cast<double>(backoff) *
                                          retry.backoff_jitter *
                                          jitter_rng_.NextDouble());
    }
    sim->ScheduleAfter(backoff, [this, lip, tool, args, ordinal, attempt,
                                 complete = std::move(complete)]() mutable {
      Attempt(lip, tool, args, ordinal, attempt + 1, std::move(complete));
    });
  }

  SymphonyServer* server_;
  Rng jitter_rng_;
  std::unordered_map<std::string, CircuitBreaker> breakers_;
  ToolServiceStats stats_;
};

SymphonyServer::SymphonyServer(Simulator* sim, ServerOptions options)
    : sim_(sim), options_(std::move(options)) {
  CostModel cost(options_.model, options_.hardware);
  model_ = std::make_unique<Model>(options_.model);
  tokenizer_ = std::make_unique<Tokenizer>(options_.model.vocab_size);
  kvfs_ = std::make_unique<Kvfs>(MakeKvfsOptions(options_, sim_, cost));
  kvfs_->set_bytes_per_page(static_cast<uint64_t>(kPageTokens) *
                            options_.model.KvBytesPerToken());
  device_ = std::make_unique<Device>(sim_, cost);
  scheduler_ = std::make_unique<InferenceScheduler>(
      sim_, kvfs_.get(), model_.get(), device_.get(), MakePolicy(options_),
      options_.scheduler);
  tools_ = std::make_unique<ToolRegistry>(options_.tool_seed);
  tool_service_ = std::make_unique<ServerToolService>(this);
  runtime_ = std::make_unique<LipRuntime>(sim_, kvfs_.get(), options_.runtime);
  runtime_->set_pred_service(scheduler_.get());
  runtime_->set_tool_service(tool_service_.get());
  runtime_->set_tokenizer(tokenizer_.get());
  if (options_.trace != nullptr) {
    device_->set_trace(options_.trace);
    runtime_->set_trace(options_.trace);
  }
  if (options_.fault_plan != nullptr) {
    options_.fault_plan->ArmKvPressure(sim_, kvfs_.get());
  }
}

SymphonyServer::~SymphonyServer() = default;

LipId SymphonyServer::Launch(std::string name, LipProgram program,
                             std::function<void(LipId)> on_exit) {
  return runtime_->Launch(std::move(name), std::move(program), std::move(on_exit));
}

LipId SymphonyServer::LaunchWithQuota(std::string name, LipQuota quota,
                                      LipProgram program,
                                      std::function<void(LipId)> on_exit) {
  LipId lip =
      runtime_->Launch(std::move(name), std::move(program), std::move(on_exit));
  // The program's first resume happens on a later simulator dispatch, so the
  // quota is in force before any of its system calls run.
  runtime_->SetQuota(lip, quota);
  return lip;
}

Status SymphonyServer::ImportNamedSnapshot(const KvFileSnapshot& snapshot) {
  if (snapshot.path.empty()) {
    return InvalidArgumentError("snapshot has no path");
  }
  if (kvfs_->Exists(snapshot.path)) {
    return AlreadyExistsError("kv file exists: " + snapshot.path);
  }
  SYMPHONY_ASSIGN_OR_RETURN(KvHandle handle,
                            kvfs_->ImportSnapshot(snapshot, kAdminLip));
  Status linked = kvfs_->Link(handle, snapshot.path);
  if (!linked.ok()) {
    (void)kvfs_->Close(handle);  // Reclaims the orphaned anonymous file.
    return linked;
  }
  // Closing leaves the named file in place for LIPs to open; the snapshot's
  // mode (applied by ImportSnapshot) governs who may.
  return kvfs_->Close(handle);
}

SymphonyServer::AdmitResult SymphonyServer::Submit(LaunchSpec spec) {
  AdmitResult result;
  if (!options_.admission.enabled) {
    SimTime abs =
        spec.deadline > 0 ? sim_->now() + spec.deadline : SimTime{0};
    result.lip = LaunchAdmitted(std::move(spec), abs);
    result.status = Status::Ok();
    return result;
  }
  ++admission_stats_.submitted;
  if (live_admitted_ < options_.admission.max_live_lips) {
    SimTime abs =
        spec.deadline > 0 ? sim_->now() + spec.deadline : SimTime{0};
    result.lip = LaunchAdmitted(std::move(spec), abs);
    result.status = Status::Ok();
    return result;
  }
  size_t depth = admission_queue_depth();
  SimDuration projected = ProjectedQueueDelay(depth);
  if (depth >= options_.admission.max_queue) {
    ++admission_stats_.rejected_full;
    result.status = UnavailableError("admission queue full");
    result.retry_after = projected;
    return result;
  }
  if (spec.deadline > 0 && projected > spec.deadline) {
    // The request would very likely blow its deadline waiting; shedding it
    // now is cheaper for everyone than serving it late (goodput over
    // throughput).
    ++admission_stats_.rejected_deadline;
    result.status =
        UnavailableError("projected queue delay exceeds request deadline");
    result.retry_after = projected;
    return result;
  }
  uint32_t priority = std::min(spec.priority, kPriorityLevels - 1);
  QueuedLaunch entry;
  entry.enqueued = sim_->now();
  entry.expire = spec.deadline > 0 ? sim_->now() + spec.deadline : SimTime{0};
  entry.spec = std::move(spec);
  admission_queue_[priority].push_back(std::move(entry));
  ++admission_stats_.queued;
  result.status = Status::Ok();
  result.queued = true;
  return result;
}

LipId SymphonyServer::LaunchAdmitted(LaunchSpec spec, SimTime abs_deadline) {
  bool tracked = options_.admission.enabled;
  if (tracked) {
    ++live_admitted_;
    ++admission_stats_.admitted;
  }
  SimTime start = sim_->now();
  auto user_exit = std::move(spec.on_exit);
  auto on_exit = [this, tracked, start,
                  user_exit = std::move(user_exit)](LipId lip) {
    if (tracked) {
      double service_s = ToSeconds(sim_->now() - start);
      double alpha = options_.admission.service_ewma_alpha;
      service_ewma_s_ = service_ewma_s_ == 0.0
                            ? service_s
                            : (1.0 - alpha) * service_ewma_s_ +
                                  alpha * service_s;
      --live_admitted_;
    }
    if (user_exit) {
      user_exit(lip);
    }
    if (tracked) {
      AdmitFromQueue();
    }
  };
  LipId lip = runtime_->Launch(std::move(spec.name), std::move(spec.program),
                               std::move(on_exit));
  if (spec.has_quota) {
    runtime_->SetQuota(lip, spec.quota);
  }
  if (abs_deadline > 0) {
    runtime_->SetDeadline(lip, abs_deadline);
  }
  return lip;
}

void SymphonyServer::AdmitFromQueue() {
  while (live_admitted_ < options_.admission.max_live_lips) {
    bool found = false;
    QueuedLaunch item;
    for (auto& queue : admission_queue_) {
      while (!queue.empty()) {
        if (queue.front().expire > 0 && sim_->now() >= queue.front().expire) {
          // Its deadline passed while it waited: launching now would only
          // burn decode steps on a guaranteed-late answer.
          ++admission_stats_.shed_expired;
          queue.pop_front();
          continue;
        }
        item = std::move(queue.front());
        queue.pop_front();
        found = true;
        break;
      }
      if (found) {
        break;
      }
    }
    if (!found) {
      return;
    }
    (void)LaunchAdmitted(std::move(item.spec), item.expire);
  }
}

SimDuration SymphonyServer::ProjectedQueueDelay(size_t depth) const {
  double service_s =
      service_ewma_s_ > 0.0
          ? service_ewma_s_
          : ToSeconds(options_.admission.initial_service_estimate);
  uint32_t slots = std::max<uint32_t>(options_.admission.max_live_lips, 1);
  SimDuration projected =
      DurationFromSeconds(service_s * static_cast<double>(depth + 1) /
                          static_cast<double>(slots));
  if (backpressure_hook_) {
    projected += backpressure_hook_();
  }
  return projected;
}

size_t SymphonyServer::admission_queue_depth() const {
  size_t depth = 0;
  for (const auto& queue : admission_queue_) {
    depth += queue.size();
  }
  return depth;
}

const ToolServiceStats& SymphonyServer::tool_stats() const {
  return tool_service_->stats();
}

const CircuitBreaker* SymphonyServer::tool_breaker(
    const std::string& tool) const {
  return tool_service_->breaker(tool);
}

SymphonyServer::MetricsSnapshot SymphonyServer::Snapshot() const {
  MetricsSnapshot snap;
  snap.gpu_utilization = device_->Utilization();
  snap.batches = device_->stats().batches;
  snap.mean_batch_size = device_->batch_sizes().mean();
  snap.preds = runtime_->stats().preds_submitted;
  snap.lips_completed = runtime_->stats().lips_completed;
  snap.kv_evicted_files = kvfs_->stats().evicted_files;
  snap.kv_offloaded_pages = kvfs_->stats().offloaded_pages;
  snap.kv_restored_pages = kvfs_->stats().restored_pages;
  snap.transfer_bytes = device_->stats().transfer_bytes;
  snap.mean_queue_wait_ms = scheduler_->queue_waits_ms().mean();
  snap.memory_requeues = scheduler_->stats().memory_requeues;
  snap.preds_cancelled = scheduler_->stats().cancelled;
  snap.tool_retries = tool_service_->stats().retries;
  snap.tool_timeouts = tool_service_->stats().timeouts;
  snap.tool_failures = tool_service_->stats().failures;
  snap.breaker_opens = tool_service_->TotalBreakerOpens();
  snap.breaker_rejections = tool_service_->stats().breaker_rejections;
  snap.deadlines_expired = runtime_->stats().deadlines_expired;
  snap.deadline_rejections = runtime_->stats().deadline_rejections;
  snap.admission_rejected =
      admission_stats_.rejected_full + admission_stats_.rejected_deadline;
  snap.admission_shed = admission_stats_.shed_expired;
  return snap;
}

}  // namespace symphony
