#include "src/serve/server.h"

#include <utility>

namespace symphony {

namespace {

std::unique_ptr<BatchPolicy> MakePolicy(const ServerOptions& options) {
  switch (options.batch_policy) {
    case BatchPolicyKind::kEager:
      return std::make_unique<EagerPolicy>();
    case BatchPolicyKind::kSizeTimeout:
      return std::make_unique<SizeTimeoutPolicy>(options.batch_target_size,
                                                 options.batch_timeout);
    case BatchPolicyKind::kPoissonAdaptive:
      return std::make_unique<PoissonAdaptivePolicy>(options.batch_max_wait);
  }
  return std::make_unique<EagerPolicy>();
}

KvfsOptions MakeKvfsOptions(const ServerOptions& options, Simulator* sim,
                            const CostModel& cost) {
  KvfsOptions kv;
  uint64_t page_bytes =
      static_cast<uint64_t>(kPageTokens) * options.model.KvBytesPerToken();
  kv.gpu_page_budget = cost.DeviceKvBudgetBytes() / page_bytes;
  kv.host_page_budget = options.hardware.host_bytes / page_bytes;
  kv.eviction = options.eviction;
  kv.clock = [sim] { return sim->now(); };
  return kv;
}

}  // namespace

// Executes tools from the registry; while a LIP waits out a slow call, its
// KV files are offloaded to host memory (§4.3) and restored lazily by the
// next pred.
class SymphonyServer::ServerToolService : public ToolService {
 public:
  ServerToolService(SymphonyServer* server) : server_(server) {}

  void Invoke(LipId lip, ThreadId thread, const std::string& tool,
              const std::string& args,
              std::function<void(ToolResult)> complete) override {
    (void)thread;
    StatusOr<ToolInvocation> run = server_->tools_->Run(tool, args);
    if (!run.ok()) {
      // Deliver the error after a scheduler turn, never synchronously.
      server_->sim_->ScheduleAt(server_->sim_->now(),
                                [complete = std::move(complete), st = run.status()] {
                                  complete(ToolResult{st, ""});
                                });
      return;
    }
    const ServerOptions& options = server_->options_;
    if (options.offload_kv_on_tool_io &&
        run->latency >= options.min_io_for_offload) {
      server_->kvfs_->OffloadOwnedBy(lip);
    }
    ToolInvocation invocation = std::move(*run);
    if (server_->options_.trace != nullptr) {
      server_->options_.trace->Span("tools", tool, server_->sim_->now(),
                                    invocation.latency);
    }
    server_->sim_->ScheduleAfter(
        invocation.latency,
        [complete = std::move(complete), invocation = std::move(invocation)] {
          complete(ToolResult{invocation.status, invocation.output});
        });
  }

 private:
  SymphonyServer* server_;
};

SymphonyServer::SymphonyServer(Simulator* sim, ServerOptions options)
    : sim_(sim), options_(std::move(options)) {
  CostModel cost(options_.model, options_.hardware);
  model_ = std::make_unique<Model>(options_.model);
  tokenizer_ = std::make_unique<Tokenizer>(options_.model.vocab_size);
  kvfs_ = std::make_unique<Kvfs>(MakeKvfsOptions(options_, sim_, cost));
  kvfs_->set_bytes_per_page(static_cast<uint64_t>(kPageTokens) *
                            options_.model.KvBytesPerToken());
  device_ = std::make_unique<Device>(sim_, cost);
  scheduler_ = std::make_unique<InferenceScheduler>(
      sim_, kvfs_.get(), model_.get(), device_.get(), MakePolicy(options_),
      options_.scheduler);
  tools_ = std::make_unique<ToolRegistry>(options_.tool_seed);
  tool_service_ = std::make_unique<ServerToolService>(this);
  runtime_ = std::make_unique<LipRuntime>(sim_, kvfs_.get(), options_.runtime);
  runtime_->set_pred_service(scheduler_.get());
  runtime_->set_tool_service(tool_service_.get());
  runtime_->set_tokenizer(tokenizer_.get());
  if (options_.trace != nullptr) {
    device_->set_trace(options_.trace);
    runtime_->set_trace(options_.trace);
  }
}

SymphonyServer::~SymphonyServer() = default;

LipId SymphonyServer::Launch(std::string name, LipProgram program,
                             std::function<void(LipId)> on_exit) {
  return runtime_->Launch(std::move(name), std::move(program), std::move(on_exit));
}

LipId SymphonyServer::LaunchWithQuota(std::string name, LipQuota quota,
                                      LipProgram program,
                                      std::function<void(LipId)> on_exit) {
  LipId lip =
      runtime_->Launch(std::move(name), std::move(program), std::move(on_exit));
  // The program's first resume happens on a later simulator dispatch, so the
  // quota is in force before any of its system calls run.
  runtime_->SetQuota(lip, quota);
  return lip;
}

SymphonyServer::MetricsSnapshot SymphonyServer::Snapshot() const {
  MetricsSnapshot snap;
  snap.gpu_utilization = device_->Utilization();
  snap.batches = device_->stats().batches;
  snap.mean_batch_size = device_->batch_sizes().mean();
  snap.preds = runtime_->stats().preds_submitted;
  snap.lips_completed = runtime_->stats().lips_completed;
  snap.kv_evicted_files = kvfs_->stats().evicted_files;
  snap.kv_offloaded_pages = kvfs_->stats().offloaded_pages;
  snap.kv_restored_pages = kvfs_->stats().restored_pages;
  snap.transfer_bytes = device_->stats().transfer_bytes;
  snap.mean_queue_wait_ms = scheduler_->queue_waits_ms().mean();
  return snap;
}

}  // namespace symphony
