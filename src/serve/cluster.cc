#include "src/serve/cluster.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace symphony {

SymphonyCluster::SymphonyCluster(Simulator* sim, ClusterOptions options)
    : sim_(sim), options_(std::move(options)) {
  assert(sim != nullptr);
  assert(options_.replicas > 0);
  replicas_.reserve(options_.replicas);
  for (size_t i = 0; i < options_.replicas; ++i) {
    replicas_.push_back(BuildReplica(i));
  }
  roles_ = options_.roles;
  roles_.resize(options_.replicas, ReplicaRole::kUnified);
  launched_per_replica_.assign(options_.replicas, 0);
  dead_.assign(options_.replicas, false);
  draining_.assign(options_.replicas, false);
  fenced_.assign(options_.replicas, false);
  crashed_.assign(options_.replicas, false);
  retired_.assign(options_.replicas, false);
  crash_heal_at_.assign(options_.replicas, -1);
  cost_model_ = std::make_unique<CostModel>(options_.server.model,
                                            options_.server.hardware);
  // ONE topology instance routes every cross-replica byte: IPC, journal
  // shipping, and store fetches contend for the same physical links.
  TopologyOptions topology_options = options_.topology;
  topology_options.replicas = options_.replicas;
  topology_ = std::make_unique<NetworkTopology>(
      sim_, cost_model_.get(), options_.server.fault_plan,
      options_.server.trace, topology_options);
  SnapshotStoreOptions store_options;
  store_options.chunk_bytes = options_.store_chunk_bytes;
  store_options.sim = sim_;
  store_options.cost = cost_model_.get();
  store_options.fault_plan = options_.server.fault_plan;
  store_options.trace = options_.server.trace;
  store_options.topology = topology_.get();
  store_ = std::make_unique<SnapshotStore>(store_options);
  fabric_ = std::make_unique<IpcFabric>(
      sim_, cost_model_.get(), options_.server.fault_plan,
      options_.server.trace, options_.ipc, topology_.get());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    fabric_->AttachReplica(i, &replicas_[i]->runtime());
    replicas_[i]->runtime().set_channel_fabric(fabric_.get(), i);
    // Credit backpressure feeds admission: parked senders on a replica
    // inflate its projected queue delay, steering Submit's reroute tier
    // toward less-congested replicas.
    replicas_[i]->set_backpressure_hook(
        [fabric = fabric_.get(), i] { return fabric->BackpressureDelay(i); });
    InstallDisaggHook(i);
  }
  // Arm the fault plan's replica-kill schedule. Kills route through the
  // normal KillReplica path, so with recovery enabled the victims fail over.
  if (options_.server.fault_plan != nullptr) {
    for (const auto& [replica, at] : options_.server.fault_plan->replica_kills()) {
      sim_->ScheduleAt(at, [this, replica = replica] {
        if (replica < replicas_.size() && !dead_[replica]) {
          (void)KillReplica(replica);
        }
      });
    }
    // Crashes are silent: the process halts and NOTHING is told — only the
    // control plane's missed heartbeats can detect it (the acceptance test
    // for autonomic recovery). Without the control plane a crashed replica
    // simply stays down.
    for (const CrashSpec& spec : options_.server.fault_plan->crashes()) {
      sim_->ScheduleAt(spec.at, [this, spec] {
        (void)CrashReplica(spec.replica, spec.down_for);
      });
    }
  }
  if (options_.ctrl.enabled) {
    // The base cast must happen here, in member context: the inheritance is
    // private (the ClusterControl surface is an implementation detail).
    ctrl_ = std::make_unique<ControlPlane>(
        sim_, static_cast<ClusterControl*>(this), topology_.get(),
        options_.server.fault_plan, options_.server.trace, options_.ctrl);
  }
}

std::unique_ptr<SymphonyServer> SymphonyCluster::BuildReplica(
    size_t index) const {
  ServerOptions server_options = options_.server;
  // Decorrelate per-replica randomness (tool latencies etc.). A readmitted
  // slot rebuilds with the same seeds: determinism is per slot, and the
  // replayed LIPs draw from their own uid-derived streams anyway.
  server_options.runtime.seed = options_.server.runtime.seed + index * 7919;
  server_options.tool_seed = options_.server.tool_seed + index * 104729;
  auto server = std::make_unique<SymphonyServer>(sim_, server_options);
  // Same setup for every incarnation of the slot: a replica rebuilt by
  // readmission (or added by scale-out) must serve the same tools as the
  // original fleet, or replayed/new LIPs would observe a different server.
  if (options_.configure_replica) {
    options_.configure_replica(*server, index);
  }
  return server;
}

std::vector<uint64_t> SymphonyCluster::StrandedLips() const {
  std::vector<uint64_t> stranded;
  for (const auto& entry : records_) {
    const LipRecord& rec = entry.second;
    if (!rec.done && !rec.in_flight && dead_[rec.replica]) {
      stranded.push_back(rec.uid);
    }
  }
  std::sort(stranded.begin(), stranded.end());
  return stranded;
}

bool SymphonyCluster::Placeable(size_t index) const {
  return !dead_[index] && !draining_[index] &&
         !replicas_[index]->runtime().halted();
}

bool SymphonyCluster::Avoided(size_t index) const {
  return ctrl_ != nullptr &&
         ctrl_->Health(index) == ReplicaHealth::kSuspected;
}

ReplicaRole SymphonyCluster::RoleOf(size_t index) const {
  return index < roles_.size() ? roles_[index] : ReplicaRole::kUnified;
}

bool SymphonyCluster::InServePool(size_t index) const {
  return RoleOf(index) != ReplicaRole::kPrefill;
}

bool SymphonyCluster::HasPrefillPool() const {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (RoleOf(i) == ReplicaRole::kPrefill) {
      return true;
    }
  }
  return false;
}

size_t SymphonyCluster::LeastLoadedPrefill() const {
  size_t best = kNoReplica;
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (RoleOf(i) != ReplicaRole::kPrefill || !Placeable(i) || Avoided(i)) {
      continue;
    }
    size_t load = replicas_[i]->runtime().live_lips();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

size_t SymphonyCluster::LeastLoaded() const {
  // Pool pass 0 considers only serve-pool (decode/unified) replicas, so a
  // decode stream or failover never lands behind a prefill replica's giant
  // prefills; prefill replicas are better than nothing when the whole serve
  // pool is down (pass 1). Within a pool, two passes: suspected replicas
  // (control-plane detector) lose placements to healthy ones, but remain
  // better than nothing when all else is down. A role-less cluster puts
  // every replica in the serve pool, preserving the legacy pick exactly.
  for (int pool = 0; pool < 2; ++pool) {
    for (int pass = 0; pass < 2; ++pass) {
      size_t best = replicas_.size();
      size_t best_load = SIZE_MAX;
      for (size_t i = 0; i < replicas_.size(); ++i) {
        if (!Placeable(i) || (pool == 0 && !InServePool(i)) ||
            (pass == 0 && Avoided(i))) {
          continue;
        }
        size_t load = replicas_[i]->runtime().live_lips();
        if (load < best_load) {
          best = i;
          best_load = load;
        }
      }
      if (best < replicas_.size()) {
        return best;
      }
    }
  }
  assert(false && "no live replica");
  return 0;
}

size_t SymphonyCluster::FirstLiveFrom(size_t preferred) const {
  // Same pool preference as LeastLoaded: serve-pool replicas first.
  for (int pool = 0; pool < 2; ++pool) {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t probe = 0; probe < replicas_.size(); ++probe) {
        size_t i = (preferred + probe) % replicas_.size();
        if (Placeable(i) && (pool == 1 || InServePool(i)) &&
            (pass == 1 || !Avoided(i))) {
          return i;
        }
      }
    }
  }
  assert(false && "no live replica");
  return 0;
}

size_t SymphonyCluster::RouteFor(const std::string& affinity_key) const {
  return RouteFor(affinity_key, 0);
}

size_t SymphonyCluster::RouteFor(const std::string& affinity_key,
                                 uint64_t prefill_hint_tokens) const {
  // A fresh launch that will prefill a large context goes to the prefill
  // pool (least-loaded placeable prefill replica). Everything else — decode
  // streams, small jobs, hint-less launches — routes through the normal
  // policy, which avoids prefill replicas (see LeastLoaded/FirstLiveFrom).
  if (prefill_hint_tokens >= options_.disagg_min_prefill_tokens) {
    size_t pick = LeastLoadedPrefill();
    if (pick != kNoReplica) {
      ++disagg_prefill_routes_;
      return pick;
    }
  }
  switch (options_.routing) {
    case RoutingPolicy::kRoundRobin: {
      size_t replica = FirstLiveFrom(next_round_robin_);
      next_round_robin_ = (replica + 1) % replicas_.size();
      return replica;
    }
    case RoutingPolicy::kLeastLoaded:
      return LeastLoaded();
    case RoutingPolicy::kCacheAffinity:
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      return FirstLiveFrom(
          static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size()));
    case RoutingPolicy::kAffinityBounded: {
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      size_t preferred = FirstLiveFrom(
          static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size()));
      size_t total_live = 0;
      size_t live_replicas = 0;
      for (size_t i = 0; i < replicas_.size(); ++i) {
        if (!Placeable(i)) {
          continue;
        }
        total_live += replicas_[i]->runtime().live_lips();
        ++live_replicas;
      }
      double average = static_cast<double>(total_live + 1) /
                       static_cast<double>(live_replicas);
      double bound = options_.load_factor * average;
      if (static_cast<double>(replicas_[preferred]->runtime().live_lips() + 1) <=
          bound) {
        return preferred;
      }
      // Hot key: the preferred replica is over its bound. The overflow is
      // both a routing decision and a load signal (see MaybeShedOnOverflow).
      NoteOverflow();
      return LeastLoaded();
    }
  }
  return 0;
}

void SymphonyCluster::NoteOverflow() const {
  ++overflow_events_;
  SimTime now = sim_->now();
  if (now - overflow_window_start_ > options_.overflow_window) {
    overflow_window_start_ = now;
    overflow_in_window_ = 0;
  }
  ++overflow_in_window_;
}

void SymphonyCluster::MaybeShedOnOverflow() {
  if (!options_.rebalance_on_overflow || !options_.enable_recovery ||
      overflow_in_window_ < options_.overflow_threshold) {
    return;
  }
  SimTime now = sim_->now();
  if (last_overflow_rebalance_ >= 0 &&
      now - last_overflow_rebalance_ < options_.overflow_cooldown) {
    return;
  }
  last_overflow_rebalance_ = now;
  overflow_in_window_ = 0;
  ++overflow_rebalances_;
  // Deferred one dispatch: Launch's placement must settle before migration
  // decisions read the load it just added.
  sim_->ScheduleAt(now, [this] { (void)Rebalance(); });
}

std::function<void(LipId)> SymphonyCluster::MakeOnExit(uint64_t uid) {
  return [this, uid](LipId lip) {
    auto it = records_.find(uid);
    if (it == records_.end()) {
      return;
    }
    LipRecord& rec = it->second;
    rec.done = true;
    // Cache the output: the hosting slot may be rebuilt by readmission after
    // this LIP is gone, and Output() must keep answering.
    rec.output = replicas_[rec.replica]->runtime().Output(lip);
    // The journal's life is over: drop its checkpoint's store reference.
    if (rec.journal != nullptr && rec.journal->checkpoint_key() != 0) {
      (void)store_->Release(rec.journal->checkpoint_key());
      rec.journal->AbandonCheckpoint();
    }
    if (rec.user_on_exit) {
      rec.user_on_exit(lip);
    }
  };
}

void SymphonyCluster::InstallCheckpointHook(
    const std::shared_ptr<SyscallJournal>& journal, size_t replica) {
  if (!options_.checkpoint_journals) {
    return;
  }
  uint64_t fingerprint = options_.server.model.Fingerprint();
  journal->set_fold_hook(
      [this, replica, fingerprint](SyscallJournal& j) {
        StatusOr<CheckpointOutcome> out =
            CheckpointJournal(*store_, replica, fingerprint, j);
        if (!out.ok()) {
          // Typically a corruption window on the previous checkpoint's
          // chunks: the fold is skipped and the journal stays fatter until
          // the next interval crossing.
          return;
        }
        ++checkpoints_;
        checkpoint_entries_folded_ += out->folded_entries;
        if (options_.server.trace != nullptr) {
          options_.server.trace->Instant(
              "store",
              "checkpoint:replica" + std::to_string(replica) + ":" +
                  std::to_string(out->folded_entries) + "entries",
              sim_->now());
        }
      },
      options_.checkpoint_interval);
}

void SymphonyCluster::InstallDisaggHook(size_t index) {
  if (RoleOf(index) != ReplicaRole::kPrefill || !options_.enable_recovery) {
    return;
  }
  replicas_[index]->scheduler().set_prefill_complete_hook(
      [this, index](LipId lip, uint64_t context_tokens) {
        // Map the runtime LIP back to its cluster record; the handoff runs
        // one dispatch later so the pred result settles into its coroutine
        // frame (and its journal entry) before the LIP is detached.
        for (const auto& entry : records_) {
          const LipRecord& rec = entry.second;
          if (rec.replica == index && rec.lip == lip && !rec.done &&
              !rec.in_flight) {
            sim_->ScheduleAt(sim_->now(),
                             [this, uid = rec.uid, context_tokens] {
                               MaybeHandoff(uid, context_tokens);
                             });
            return;
          }
        }
      });
}

void SymphonyCluster::MaybeHandoff(uint64_t uid, uint64_t context_tokens) {
  auto it = records_.find(uid);
  if (it == records_.end()) {
    return;
  }
  LipRecord& rec = it->second;
  if (rec.done || rec.in_flight || dead_[rec.replica] ||
      RoleOf(rec.replica) != ReplicaRole::kPrefill) {
    return;
  }
  if (context_tokens < options_.disagg_min_prefill_tokens ||
      // Ship-vs-local-decode: migrating replays the LIP on the target from
      // its journal, importing the prefilled KV when the Replayer's cost
      // model says the shipped bytes beat recomputing the prefill there.
      // When even the import loses to recompute, the hop buys nothing and
      // the LIP decodes where it is.
      Replayer::Choose(*cost_model_, context_tokens) !=
          RecoveryMode::kImportSnapshot) {
    ++disagg_handoff_skips_;
    return;
  }
  // Least-loaded placeable serve-pool target (never another prefill slot).
  size_t target = kNoReplica;
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i == rec.replica || !Placeable(i) || !InServePool(i) || Avoided(i)) {
      continue;
    }
    size_t load = replicas_[i]->runtime().live_lips();
    if (load < best_load) {
      target = i;
      best_load = load;
    }
  }
  if (target == kNoReplica) {
    ++disagg_handoff_skips_;
    return;
  }
  // Publish the prefilled KV through the snapshot store now, so the ship is
  // a checkpoint reference plus a thin live suffix instead of the raw pred
  // log (the target pulls the chunks over the topology either way).
  if (options_.checkpoint_journals && rec.journal != nullptr &&
      rec.journal->live_entries() > 0) {
    StatusOr<CheckpointOutcome> folded = CheckpointJournal(
        *store_, rec.replica, options_.server.model.Fingerprint(),
        *rec.journal);
    if (folded.ok()) {
      ++checkpoints_;
      checkpoint_entries_folded_ += folded->folded_entries;
    }
    // A corruption-window failure just means a fatter (full) ship below.
  }
  ClusterLip id{rec.replica, rec.lip, uid};
  if (Migrate(id, target).ok()) {
    ++disagg_handoffs_;
    if (options_.server.trace != nullptr) {
      options_.server.trace->Instant(
          "recovery", "handoff:" + rec.name + ":replica" +
                          std::to_string(id.replica) + "->replica" +
                          std::to_string(target) + ":" +
                          std::to_string(context_tokens) + "tok",
          sim_->now());
    }
  } else {
    ++disagg_handoff_skips_;
  }
}

SymphonyCluster::ClusterLip SymphonyCluster::Launch(
    std::string name, const std::string& affinity_key, LipProgram program,
    std::function<void(LipId)> on_exit) {
  return Launch(std::move(name), affinity_key, 0, std::move(program),
                std::move(on_exit));
}

SymphonyCluster::ClusterLip SymphonyCluster::Launch(
    std::string name, const std::string& affinity_key,
    uint64_t prefill_hint_tokens, LipProgram program,
    std::function<void(LipId)> on_exit) {
  size_t replica = RouteFor(affinity_key, prefill_hint_tokens);
  ++launched_per_replica_[replica];
  MaybeShedOnOverflow();
  if (!options_.enable_recovery) {
    LipId lip = replicas_[replica]->Launch(std::move(name), std::move(program),
                                           std::move(on_exit));
    if (ctrl_ != nullptr) {
      ctrl_->Kick();  // New work: (re)arm heartbeat/sweep/scaling chains.
    }
    return ClusterLip{replica, lip, 0};
  }
  uint64_t uid = next_uid_++;
  LipRecord& rec = records_[uid];
  rec.uid = uid;
  rec.name = name;
  rec.program = program;  // Keep a copy for relaunch.
  rec.user_on_exit = std::move(on_exit);
  rec.replica = replica;
  rec.journal = std::make_shared<SyscallJournal>();
  // Replica-independent seed: a replayed LIP must re-draw the identical RNG
  // stream on any replica, so the seed is derived from the cluster-wide uid
  // rather than the replica's decorrelated runtime seed.
  uint64_t seed =
      Mix64(options_.server.runtime.seed ^ (0x5eedULL + uid * 0x9e3779b9ULL));
  LipRuntime& runtime = replicas_[replica]->runtime();
  rec.lip = runtime.LaunchWithSeed(std::move(name), seed, std::move(program),
                                   MakeOnExit(uid));
  runtime.EnableJournal(rec.lip, rec.journal);
  InstallCheckpointHook(rec.journal, replica);
  if (ctrl_ != nullptr) {
    // AFTER the record lands: Kick is gated on ControlHasWork, and this
    // launch may be the first work the cluster has seen.
    ctrl_->Kick();
  }
  return ClusterLip{replica, rec.lip, uid};
}

SymphonyCluster::ClusterAdmitResult SymphonyCluster::Submit(
    SymphonyServer::LaunchSpec spec, const std::string& affinity_key) {
  size_t preferred = RouteFor(affinity_key, spec.prefill_hint_tokens);
  MaybeShedOnOverflow();
  // Candidate order: the routed replica first, then (with reroute enabled)
  // the other placeable replicas from least to most loaded, with
  // control-plane-suspected replicas demoted to the very end.
  std::vector<size_t> candidates{preferred};
  if (options_.reroute_on_reject) {
    // (suspected, live lips, replica)
    std::vector<std::tuple<bool, size_t, size_t>> rest;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      // Prefill-role replicas never serve as reroute fallbacks: rerouted
      // work is by definition not a routed large prefill.
      if (i == preferred || !Placeable(i) || !InServePool(i)) {
        continue;
      }
      rest.emplace_back(Avoided(i), replicas_[i]->runtime().live_lips(), i);
    }
    std::sort(rest.begin(), rest.end());
    for (const auto& [avoided, load, i] : rest) {
      candidates.push_back(i);
    }
  }
  ClusterAdmitResult shed;
  shed.replica = preferred;
  shed.result.retry_after = 0;
  for (size_t c : candidates) {
    // LaunchSpec is copyable (LipProgram re-invokes); keep ours for the
    // next candidate.
    SymphonyServer::AdmitResult result = replicas_[c]->Submit(spec);
    if (result.status.ok()) {
      ++launched_per_replica_[c];
      ClusterAdmitResult out;
      out.result = std::move(result);
      out.replica = c;
      out.rerouted = c != preferred;
      if (out.rerouted) {
        ++submit_reroutes_;
      }
      if (ctrl_ != nullptr) {
        // AFTER the admit/queue landed: Kick is gated on ControlHasWork and
        // this may be the cluster's first work.
        ctrl_->Kick();
      }
      return out;
    }
    // Remember the gentlest backpressure hint across the rejections.
    if (shed.result.retry_after == 0 ||
        (result.retry_after > 0 &&
         result.retry_after < shed.result.retry_after)) {
      shed.result = std::move(result);
      shed.replica = c;
    }
  }
  ++submit_sheds_;
  return shed;
}

void SymphonyCluster::ReplayOnto(LipRecord& rec, size_t target) {
  // Replay from a copy: late completions on the old replica may still append
  // to the original journal, and the new incarnation records into its own.
  auto journal = std::make_shared<SyscallJournal>(*rec.journal);
  // The copy inherits the checkpoint's store reference; neuter the original
  // so a straggler fold on the abandoned incarnation can't double-own it.
  rec.journal->set_fold_hook(nullptr, 0);
  rec.journal->AbandonCheckpoint();
  rec.journal = journal;
  rec.in_flight = true;
  ShipJournal(rec.uid, target, std::move(journal));
}

void SymphonyCluster::ShipJournal(uint64_t uid, size_t target,
                                  std::shared_ptr<SyscallJournal> journal) {
  auto it = records_.find(uid);
  if (it == records_.end() || it->second.done) {
    return;
  }
  size_t source = it->second.replica;
  // A down link with no surviving route: hold the shipment and retry, the
  // same surfacing as a corrupted rehydrate. The journal bytes sit at the
  // source until a path exists.
  if (!topology_->Routable(source, target, sim_->now())) {
    sim_->ScheduleAfter(Millis(2), [this, uid, target, journal] {
      ShipJournal(uid, target, journal);
    });
    return;
  }
  // Measure the live suffix BEFORE rehydration turns the folded prefix back
  // into live entries.
  uint64_t suffix_bytes = JournalLiveBytes(*journal);
  bool had_checkpoint = journal->folded_entries() > 0;
  SimDuration fetch_time = 0;
  if (had_checkpoint) {
    // The target pulls the checkpoint from the store (paying interconnect
    // only for chunks it doesn't already cache) so the full log exists for
    // replay. A corruption window fails the fetch — retry shortly; the
    // verified chunks never reach the journal.
    StatusOr<RehydrateOutcome> fetch =
        RehydrateJournal(*store_, target, *journal);
    if (!fetch.ok()) {
      ++rehydrate_retries_;
      sim_->ScheduleAfter(Millis(2), [this, uid, target, journal] {
        ShipJournal(uid, target, journal);
      });
      return;
    }
    fetch_time = fetch->transfer_time;
  }
  bool delta = had_checkpoint && options_.delta_migration;
  // Delta ships only the live suffix over the wire (the prefix came out of
  // the store above); full ships the whole serialized log and the store
  // fetch was just the local mechanism, so only the wire bytes are charged.
  uint64_t ship = delta ? suffix_bytes : JournalLiveBytes(*journal);
  // The suffix rides the topology's links from the source, occupying them
  // against concurrent IPC. The checkpoint fetch above already occupies its
  // own routes (queueing against this ship where they share a link), so a
  // delta waits for whichever of the two racing streams lands last — not
  // their sum.
  SimDuration wire = topology_->Transfer(source, target, ship,
                                         "ship:" + it->second.name) -
                     sim_->now();
  SimDuration delay = delta ? std::max(wire, fetch_time) : wire;
  ship_bytes_ += ship;
  if (delta) {
    ++delta_ships_;
  } else {
    ++full_ships_;
  }
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "store", std::string(delta ? "delta-ship:" : "full-ship:") +
                     it->second.name + ":" + std::to_string(ship) + "B",
        sim_->now());
  }
  sim_->ScheduleAfter(delay, [this, uid, target, journal] {
    StartReplay(uid, target, journal);
  });
}

void SymphonyCluster::StartReplay(uint64_t uid, size_t target,
                                  std::shared_ptr<SyscallJournal> journal) {
  auto it = records_.find(uid);
  if (it == records_.end()) {
    return;
  }
  LipRecord& rec = it->second;
  if (rec.done) {
    rec.in_flight = false;
    return;
  }
  if (!Placeable(target)) {
    // The target died (or started draining / crashed) while the journal was
    // in flight; divert to a survivor (the journal bytes already moved — no
    // second shipping charge).
    bool any_live = false;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      any_live = any_live || Placeable(i);
    }
    if (!any_live) {
      rec.in_flight = false;
      return;
    }
    target = LeastLoaded();
  }
  // Capture the stale placement before overwriting: the fabric forwards any
  // channel homed at the old incarnation to wherever the replay landed.
  size_t old_replica = rec.replica;
  LipId old_lip = rec.lip;
  ReplayOutcome outcome = Replayer::Replay(
      replicas_[target]->runtime(), *cost_model_, &options_.server.model,
      journal, rec.program, options_.recovery_mode, MakeOnExit(uid));
  fabric_->RehomeEndpoint(old_replica, old_lip, target, outcome.lip);
  rec.replica = target;
  rec.lip = outcome.lip;
  rec.in_flight = false;
  InstallCheckpointHook(journal, target);
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "restore:" + rec.name + "@replica" +
                        std::to_string(target) + ":" +
                        RecoveryModeName(outcome.mode),
        sim_->now());
  }
}

Status SymphonyCluster::KillReplica(size_t index) {
  if (index >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(index));
  }
  if (dead_[index]) {
    return FailedPreconditionError("replica " + std::to_string(index) +
                                   " already dead");
  }
  // Manual kills are permanent: the slot is retired (never readmitted) and
  // the control plane is told so it stops monitoring instead of burning a
  // detection window discovering what the caller already knows.
  retired_[index] = true;
  if (ctrl_ != nullptr) {
    ctrl_->NoteManualDeath(index);
  }
  return FailReplica(index);
}

Status SymphonyCluster::FailReplica(size_t index) {
  if (dead_[index]) {
    return Status::Ok();  // ControlFailover after a manual kill raced: done.
  }
  dead_[index] = true;
  LipRuntime& runtime = replicas_[index]->runtime();
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant("recovery",
                                   "kill:replica" + std::to_string(index),
                                   sim_->now());
  }
  // Collect the victims before halting: LipDone() still answers afterwards,
  // but the order keeps this readable. (On the autonomic path the runtime
  // was already halted by the fence — collection only reads.)
  std::vector<uint64_t> victims;
  for (auto& entry : records_) {
    LipRecord& rec = entry.second;
    // In-flight records still name this replica but their journal is already
    // on its way elsewhere (StartReplay re-targets if needed); skip them.
    if (rec.replica == index && !rec.done && !rec.in_flight &&
        !runtime.LipDone(rec.lip)) {
      victims.push_back(rec.uid);
    }
  }
  runtime.Halt();
  fabric_->MarkReplicaDead(index);
  if (!options_.enable_recovery || victims.empty()) {
    return Status::Ok();
  }
  bool any_live = false;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    any_live = any_live || Placeable(i);
  }
  if (!any_live) {
    return FailedPreconditionError("no surviving replica to fail over to");
  }
  // Spread the victims across survivors by (planned) load. IPC-coupled LIPs
  // may land apart: the fabric serves each one's journaled recvs, suppresses
  // its journaled sends, and rehomes its channels at replay time, so they no
  // longer have to re-execute against each other on one replica. Sort first —
  // records_ iteration order is unordered and placement must be stable.
  std::sort(victims.begin(), victims.end());
  std::vector<size_t> planned(replicas_.size(), 0);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    planned[i] = Placeable(i) ? replicas_[i]->runtime().live_lips() : SIZE_MAX;
  }
  for (uint64_t uid : victims) {
    size_t target = 0;
    size_t best = SIZE_MAX;
    SimDuration best_dist = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (!Placeable(i)) {
        continue;
      }
      // Topology-aware spreading: equal planned load breaks toward the
      // survivor closest to the victim (an intra-rack failover ships its
      // journal without crossing the uplink). Strictly-closer-only, so the
      // uniform single-switch topology keeps the legacy lowest-index pick.
      SimDuration dist = topology_->Distance(index, i);
      if (planned[i] < best || (planned[i] == best && dist < best_dist)) {
        best = planned[i];
        best_dist = dist;
        target = i;
      }
    }
    ++planned[target];
    ReplayOnto(records_[uid], target);
    ++failovers_;
  }
  SYMPHONY_LOG(kInfo) << "replica " << index << " killed; " << victims.size()
                      << " lip journal(s) shipped to survivors";
  return Status::Ok();
}

Status SymphonyCluster::CrashReplica(size_t index, SimDuration down_for) {
  if (index >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(index));
  }
  if (dead_[index] || crashed_[index]) {
    return FailedPreconditionError("replica " + std::to_string(index) +
                                   " already down");
  }
  crashed_[index] = true;
  crash_heal_at_[index] = down_for < 0 ? -1 : sim_->now() + down_for;
  // Silent: the runtime halts (its heartbeats stop with it) but no cluster
  // component is marked dead — detection is the control plane's job.
  replicas_[index]->runtime().Halt();
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant("recovery",
                                   "crash:replica" + std::to_string(index),
                                   sim_->now());
  }
  if (down_for >= 0) {
    sim_->ScheduleAt(crash_heal_at_[index], [this, index] {
      if (ctrl_ != nullptr) {
        ctrl_->NoteReplicaHealed(index);
      }
    });
  }
  return Status::Ok();
}

size_t SymphonyCluster::AddReplica() {
  size_t index = ControlAddReplica();
  if (index != kNoReplica && ctrl_ != nullptr) {
    ctrl_->NoteReplicaAdded(index);
  }
  return index;
}

Status SymphonyCluster::DrainReplica(size_t index) {
  if (index >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(index));
  }
  if (!options_.enable_recovery) {
    return FailedPreconditionError("drain requires enable_recovery");
  }
  if (!ControlStartDrain(index)) {
    return FailedPreconditionError(
        "replica " + std::to_string(index) +
        " cannot drain (not serving, or no other placeable replica)");
  }
  if (ctrl_ != nullptr) {
    ctrl_->NoteDrainStarted(index);  // The sweep completes the detach.
  } else {
    PollDrain(index);
  }
  return Status::Ok();
}

void SymphonyCluster::PollDrain(size_t index) {
  // Manual drains without a control plane finish through this small chain;
  // it dies with the draining_ flag, so Simulator::Run still terminates.
  if (!draining_[index]) {
    return;
  }
  if (!ControlDrainComplete(index)) {
    sim_->ScheduleAfter(Millis(5), [this, index] { PollDrain(index); });
  }
}

// ---- ClusterControl (src/ctrl) -----------------------------------------

size_t SymphonyCluster::ControlReplicaCount() const {
  return replicas_.size();
}

bool SymphonyCluster::ControlBeating(size_t replica) const {
  return replica < replicas_.size() && !dead_[replica] &&
         !crashed_[replica] && !fenced_[replica] &&
         !replicas_[replica]->runtime().halted();
}

bool SymphonyCluster::ControlHasWork() const {
  for (const auto& entry : records_) {
    if (!entry.second.done) {
      return true;  // Includes LIPs stranded on a crashed replica.
    }
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (draining_[i]) {
      return true;
    }
    if (Placeable(i) && (replicas_[i]->runtime().live_lips() > 0 ||
                         replicas_[i]->admission_queue_depth() > 0)) {
      return true;
    }
  }
  return false;
}

SimTime SymphonyCluster::ControlHealAt(size_t replica) const {
  if (retired_[replica]) {
    return -1;  // Manual kill / detached drain: permanent.
  }
  if (crashed_[replica]) {
    return crash_heal_at_[replica];  // -1 when the crash never heals.
  }
  return 0;  // Fence-only (false suspicion): the process never went away.
}

void SymphonyCluster::ControlFence(size_t replica, uint64_t epoch) {
  // Halt + refusal at every shared surface BEFORE any LIP is re-executed
  // elsewhere: the old incarnation must be provably inert.
  replicas_[replica]->runtime().Halt();
  fabric_->FenceReplica(replica, epoch);
  store_->SetReplicaFenced(replica, true);
  fenced_[replica] = true;
}

void SymphonyCluster::ControlFailover(size_t replica) {
  (void)FailReplica(replica);  // Counts one failover per victim LIP.
}

bool SymphonyCluster::ControlReadmit(size_t replica, uint64_t epoch) {
  if (retired_[replica] || !dead_[replica]) {
    return false;
  }
  if (crashed_[replica] && (crash_heal_at_[replica] < 0 ||
                            crash_heal_at_[replica] > sim_->now())) {
    return false;  // Process still down.
  }
  // Collect stranded LIPs while this slot is still marked dead: a failover
  // that found no placeable survivor (everyone fenced by a symmetric
  // partition) left their records behind, and the readmitted replica is the
  // first capacity able to rescue them.
  std::vector<uint64_t> stranded = StrandedLips();
  // The old incarnation's state is gone; rebuild the slot fresh. The old
  // server object is parked, not destroyed — pending simulator events may
  // still name its (halted) runtime.
  retired_servers_.push_back(std::move(replicas_[replica]));
  replicas_[replica] = BuildReplica(replica);
  fabric_->ReviveReplica(replica, &replicas_[replica]->runtime());
  replicas_[replica]->runtime().set_channel_fabric(fabric_.get(), replica);
  replicas_[replica]->set_backpressure_hook(
      [fabric = fabric_.get(), replica] {
        return fabric->BackpressureDelay(replica);
      });
  InstallDisaggHook(replica);  // The slot keeps its original role.
  store_->SetReplicaFenced(replica, false);
  store_->ForgetReplica(replica);
  dead_[replica] = false;
  fenced_[replica] = false;
  crashed_[replica] = false;
  draining_[replica] = false;
  crash_heal_at_[replica] = -1;
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "readmit:replica" + std::to_string(replica) + "@epoch" +
                        std::to_string(epoch),
        sim_->now());
  }
  for (uint64_t uid : stranded) {
    ReplayOnto(records_[uid], replica);
    ++failovers_;
  }
  return true;
}

size_t SymphonyCluster::ControlAddReplica() {
  // Role-aware scale-out: in a disaggregated cluster the new capacity joins
  // the hotter pool — worst projected admission delay first, total live LIPs
  // as the tie-break — so a prefill backlog grows the prefill pool instead
  // of adding a decode replica that never sees the queued work. A role-less
  // cluster always adds kUnified (the legacy behavior).
  ReplicaRole role = ReplicaRole::kUnified;
  if (HasPrefillPool()) {
    SimDuration prefill_delay = 0;
    SimDuration serve_delay = 0;
    size_t prefill_lips = 0;
    size_t serve_lips = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (!Placeable(i)) {
        continue;
      }
      SimDuration delay = replicas_[i]->ProjectedAdmissionDelay();
      size_t lips = replicas_[i]->runtime().live_lips();
      if (InServePool(i)) {
        serve_delay = std::max(serve_delay, delay);
        serve_lips += lips;
      } else {
        prefill_delay = std::max(prefill_delay, delay);
        prefill_lips += lips;
      }
    }
    if (std::tie(prefill_delay, prefill_lips) >
        std::tie(serve_delay, serve_lips)) {
      role = ReplicaRole::kPrefill;
    }
  }
  size_t index = topology_->AddReplica();
  assert(index == replicas_.size());
  replicas_.push_back(BuildReplica(index));
  roles_.resize(index, ReplicaRole::kUnified);  // Paranoia: stay aligned.
  roles_.push_back(role);
  launched_per_replica_.push_back(0);
  dead_.push_back(false);
  draining_.push_back(false);
  fenced_.push_back(false);
  crashed_.push_back(false);
  retired_.push_back(false);
  crash_heal_at_.push_back(-1);
  fabric_->AttachReplica(index, &replicas_[index]->runtime());
  replicas_[index]->runtime().set_channel_fabric(fabric_.get(), index);
  replicas_[index]->set_backpressure_hook(
      [fabric = fabric_.get(), index] {
        return fabric->BackpressureDelay(index);
      });
  InstallDisaggHook(index);
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery",
        "scale-out:replica" + std::to_string(index) +
            (role == ReplicaRole::kPrefill ? ":prefill" : ":serve"),
        sim_->now());
  }
  // Fresh capacity rescues any LIPs stranded by a survivor-less failover.
  for (uint64_t uid : StrandedLips()) {
    ReplayOnto(records_[uid], index);
    ++failovers_;
  }
  return index;
}

bool SymphonyCluster::ControlStartDrain(size_t replica) {
  if (!options_.enable_recovery || replica >= replicas_.size() ||
      !Placeable(replica)) {
    return false;
  }
  bool other = false;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    other = other || (i != replica && Placeable(i));
  }
  if (!other) {
    return false;  // Nowhere for its LIPs to go.
  }
  draining_[replica] = true;  // Placement stops at once.
  DrainStep(replica);
  return true;
}

void SymphonyCluster::DrainStep(size_t index) {
  std::vector<uint64_t> hosted;
  for (auto& entry : records_) {
    LipRecord& rec = entry.second;
    if (rec.replica == index && !rec.done && !rec.in_flight &&
        !replicas_[index]->runtime().LipDone(rec.lip)) {
      hosted.push_back(rec.uid);
    }
  }
  // Sort: records_ iteration order is unordered and placement must be
  // deterministic.
  std::sort(hosted.begin(), hosted.end());
  for (uint64_t uid : hosted) {
    LipRecord& rec = records_[uid];
    ClusterLip id{rec.replica, rec.lip, uid};
    (void)Migrate(id, LeastLoaded());
  }
}

bool SymphonyCluster::ControlDrainComplete(size_t replica) {
  if (!draining_[replica]) {
    return false;
  }
  DrainStep(replica);  // Retry stragglers (e.g. a target that went away).
  for (const auto& entry : records_) {
    const LipRecord& rec = entry.second;
    // In-flight journals still name this replica until their replay lands.
    if (rec.replica == replica && !rec.done) {
      return false;
    }
  }
  if (replicas_[replica]->runtime().live_lips() > 0 ||
      replicas_[replica]->admission_queue_depth() > 0) {
    return false;  // Untracked (non-recovery or admission-queued) work left.
  }
  draining_[replica] = false;
  dead_[replica] = true;
  retired_[replica] = true;  // A detached slot is never readmitted.
  replicas_[replica]->runtime().Halt();
  fabric_->MarkReplicaDead(replica);
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "scale-in:replica" + std::to_string(replica), sim_->now());
  }
  return true;
}

ClusterControl::LoadSignal SymphonyCluster::ControlLoadSignal() const {
  LoadSignal sig;
  sig.sheds = submit_sheds_;
  sig.lips.assign(replicas_.size(), kNoReplica);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!Placeable(i)) {
      continue;
    }
    ++sig.serving;
    size_t lips = replicas_[i]->runtime().live_lips();
    sig.live_lips += lips;
    sig.lips[i] = lips;
    sig.queued += replicas_[i]->admission_queue_depth();
    sig.worst_delay =
        std::max(sig.worst_delay, replicas_[i]->ProjectedAdmissionDelay());
  }
  return sig;
}

Status SymphonyCluster::Migrate(const ClusterLip& id, size_t to_replica) {
  if (!options_.enable_recovery) {
    return FailedPreconditionError("migration requires enable_recovery");
  }
  auto it = records_.find(id.uid);
  if (it == records_.end()) {
    return NotFoundError("unknown lip uid " + std::to_string(id.uid));
  }
  LipRecord& rec = it->second;
  if (to_replica >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(to_replica));
  }
  if (!Placeable(to_replica)) {
    return FailedPreconditionError("target replica is not placeable");
  }
  if (dead_[rec.replica]) {
    return FailedPreconditionError("source replica is dead");
  }
  if (to_replica == rec.replica) {
    return InvalidArgumentError("lip already on replica " +
                                std::to_string(to_replica));
  }
  if (rec.in_flight) {
    return FailedPreconditionError("lip migration already in flight");
  }
  LipRuntime& source = replicas_[rec.replica]->runtime();
  if (rec.done || source.LipDone(rec.lip)) {
    return FailedPreconditionError("lip already finished");
  }
  SYMPHONY_RETURN_IF_ERROR(source.Detach(rec.lip));
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "migrate:" + rec.name + ":replica" +
                        std::to_string(rec.replica) + "->replica" +
                        std::to_string(to_replica),
        sim_->now());
  }
  ReplayOnto(rec, to_replica);
  ++migrations_;
  return Status::Ok();
}

size_t SymphonyCluster::Rebalance() {
  if (!options_.enable_recovery) {
    return 0;
  }
  std::vector<size_t> loads(replicas_.size(), SIZE_MAX);
  size_t total = 0;
  size_t live_replicas = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!Placeable(i)) {
      continue;
    }
    loads[i] = replicas_[i]->runtime().live_lips();
    total += loads[i];
    ++live_replicas;
  }
  if (live_replicas < 2) {
    return 0;
  }
  std::vector<std::pair<uint64_t, size_t>> moves;
  if (rebalance_hook_) {
    moves = rebalance_hook_(loads);
  } else {
    // Default policy: a replica above load_factor x the live average sheds
    // LIPs to the emptiest replica — but only moves that strictly improve
    // balance (target + 1 < source on the planned loads). Without that
    // guard a single straggler ping-pongs between replicas forever, each
    // migration restarting it before it can finish.
    double average =
        static_cast<double>(total) / static_cast<double>(live_replicas);
    double bound = options_.load_factor * average;
    std::vector<size_t> planned = loads;  // SIZE_MAX marks unusable replicas.
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (loads[i] == SIZE_MAX || static_cast<double>(loads[i]) <= bound) {
        continue;
      }
      for (auto& entry : records_) {
        LipRecord& rec = entry.second;
        if (rec.replica != i || rec.done || rec.in_flight ||
            replicas_[i]->runtime().LipDone(rec.lip)) {
          continue;
        }
        size_t target = i;
        SimDuration target_dist = 0;
        for (size_t j = 0; j < replicas_.size(); ++j) {
          if (planned[j] == SIZE_MAX) {
            continue;
          }
          // Same topology-aware tie-break as KillReplica: prefer the closest
          // equally-empty replica so rebalance ships stay intra-rack.
          SimDuration dist = topology_->Distance(i, j);
          if (planned[j] < planned[target] ||
              (target != i && planned[j] == planned[target] &&
               dist < target_dist)) {
            target = j;
            target_dist = dist;
          }
        }
        if (target == i || planned[target] + 1 >= planned[i] ||
            static_cast<double>(planned[i]) <= bound) {
          break;
        }
        moves.emplace_back(rec.uid, target);
        --planned[i];
        ++planned[target];
      }
    }
  }
  size_t moved = 0;
  for (const auto& [uid, target] : moves) {
    auto it = records_.find(uid);
    if (it == records_.end()) {
      continue;
    }
    ClusterLip id{it->second.replica, it->second.lip, uid};
    if (Migrate(id, target).ok()) {
      ++moved;
    }
  }
  return moved;
}

void SymphonyCluster::ScheduleRebalance(SimDuration period) {
  sim_->ScheduleAfter(period, [this, period] {
    Rebalance();
    // Keep the chain alive only while there is work, so Simulator::Run
    // still terminates once the cluster drains.
    if (LiveLipsTotal() > 0) {
      ScheduleRebalance(period);
    }
  });
}

void SymphonyCluster::StartAutoRebalance(SimDuration period) {
  assert(period > 0);
  ScheduleRebalance(period);
}

size_t SymphonyCluster::SharePrefixes() {
  size_t warmed = 0;
  uint64_t fingerprint = options_.server.model.Fingerprint();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!Placeable(i)) {
      continue;
    }
    Kvfs& kvfs = replicas_[i]->kvfs();
    for (const KvFileInfo& info : kvfs.ListAll()) {
      if (info.path.empty() || info.opens_total < options_.share_min_opens ||
          info.length < options_.share_min_tokens) {
        continue;
      }
      auto shared = shared_prefixes_.find(info.path);
      if (shared != shared_prefixes_.end() &&
          shared->second.tokens >= info.length) {
        continue;  // Already published at this length or longer.
      }
      // The Replayer's cost model has the final say: a prefix whose PCIe
      // import costs more than one recompute prefill isn't worth sharing.
      if (Replayer::Choose(*cost_model_, info.length) !=
          RecoveryMode::kImportSnapshot) {
        ++warm_skips_cost_;
        continue;
      }
      OpenOptions open;
      open.requester = kAdminLip;
      open.read = true;
      StatusOr<KvHandle> handle = kvfs.Open(info.path, open);
      if (!handle.ok()) {
        continue;  // E.g. exclusively locked; try again next pass.
      }
      StatusOr<KvFileSnapshot> snap = kvfs.ExportSnapshot(*handle);
      (void)kvfs.Close(*handle);
      if (!snap.ok()) {
        continue;
      }
      SnapshotPayload payload;
      payload.label = "kvfs:" + info.path;
      payload.model_fingerprint = fingerprint;
      payload.tokens = info.length;
      payload.streams.emplace_back("records",
                                   SerializeTokenRecords(snap->records));
      PublishResult published = store_->Publish(i, payload);
      ++prefix_publishes_;
      if (shared != shared_prefixes_.end()) {
        if (shared->second.key != published.key) {
          (void)store_->Release(shared->second.key);
          shared->second.key = published.key;
        } else {
          (void)store_->Release(published.key);  // Same content: extra ref.
        }
        shared->second.tokens = info.length;
      } else {
        shared_prefixes_[info.path] = SharedPrefix{published.key, info.length};
      }
      // Warm every live replica that lacks the path. The file materializes
      // after the fetched bytes' interconnect time.
      for (size_t j = 0; j < replicas_.size(); ++j) {
        if (j == i || !Placeable(j) || replicas_[j]->kvfs().Exists(info.path)) {
          continue;
        }
        StatusOr<FetchResult> fetch = store_->Fetch(j, published.key);
        if (!fetch.ok()) {
          // Corruption window: the import is abandoned — the replica falls
          // back to recomputing the prefix when it needs it.
          ++warm_corrupt_fallbacks_;
          continue;
        }
        StatusOr<std::vector<TokenRecord>> records =
            ParseTokenRecords(fetch->streams[0].second);
        if (!records.ok()) {
          ++warm_corrupt_fallbacks_;
          continue;
        }
        auto import = std::make_shared<KvFileSnapshot>();
        import->path = info.path;
        import->mode = snap->mode;
        import->records = std::move(*records);
        ++warm_imports_;
        warm_import_tokens_ += info.length;
        ++warmed;
        sim_->ScheduleAfter(fetch->transfer_time, [this, j, import] {
          if (Placeable(j)) {
            (void)replicas_[j]->ImportNamedSnapshot(*import);
          }
        });
      }
    }
  }
  return warmed;
}

void SymphonyCluster::SchedulePrefixSharing(SimDuration period) {
  sim_->ScheduleAfter(period, [this, period] {
    (void)SharePrefixes();
    // Keep the chain alive only while there is work (see ScheduleRebalance).
    if (LiveLipsTotal() > 0) {
      SchedulePrefixSharing(period);
    }
  });
}

void SymphonyCluster::StartPrefixSharing(SimDuration period) {
  assert(period > 0);
  SchedulePrefixSharing(period);
}

size_t SymphonyCluster::LiveLipsTotal() const {
  size_t live = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    // Placeable only: a crashed replica's stranded count must not keep the
    // rebalance/sharing chains (and thus Simulator::Run) alive forever.
    if (Placeable(i)) {
      live += replicas_[i]->runtime().live_lips();
    }
  }
  return live;
}

SymphonyCluster::ClusterLip SymphonyCluster::Locate(
    const ClusterLip& id) const {
  auto it = records_.find(id.uid);
  if (it == records_.end()) {
    return id;
  }
  return ClusterLip{it->second.replica, it->second.lip, id.uid};
}

const std::string& SymphonyCluster::Output(const ClusterLip& id) const {
  auto it = records_.find(id.uid);
  if (it != records_.end() && it->second.done) {
    // Served from the record: the hosting slot may have been rebuilt by
    // readmission since the LIP finished.
    return it->second.output;
  }
  ClusterLip where = Locate(id);
  return replicas_[where.replica]->runtime().Output(where.lip);
}

bool SymphonyCluster::Done(const ClusterLip& id) const {
  auto it = records_.find(id.uid);
  if (it != records_.end()) {
    return it->second.done;
  }
  return replicas_[id.replica]->runtime().LipDone(id.lip);
}

SymphonyCluster::ClusterSnapshot SymphonyCluster::Snapshot() const {
  ClusterSnapshot snap;
  snap.lips_per_replica = launched_per_replica_;
  SampleSeries queue_waits;  // Merged across replicas for cluster percentiles.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    SymphonyServer* replica = replicas_[i].get();
    snap.total_throughput_busy += replica->device().Utilization();
    snap.batches += replica->device().stats().batches;
    snap.lips_completed += replica->runtime().stats().lips_completed;
    snap.lips_replayed += replica->runtime().stats().lips_replayed;
    snap.replay_divergences += replica->runtime().stats().replay_divergences;
    snap.ipc_recvs_replayed += replica->runtime().stats().ipc_recvs_replayed;
    snap.ipc_sends_suppressed +=
        replica->runtime().stats().ipc_sends_suppressed;
    snap.ipc_credit_waits_replayed +=
        replica->runtime().stats().ipc_credit_waits_replayed;
    const InferenceSchedulerStats& sched = replica->scheduler().stats();
    snap.decode_tokens_batched += sched.decode_tokens_batched;
    snap.prefill_tokens_batched += sched.prefill_tokens_batched;
    snap.prefill_chunks += sched.prefill_chunks;
    snap.prefills_chunked += sched.prefills_chunked;
    for (double wait : replica->scheduler().queue_waits_ms().samples()) {
      queue_waits.Add(wait);
    }
    if (dead_[i]) {
      ++snap.replicas_dead;
    }
  }
  if (queue_waits.count() > 0) {
    snap.queue_wait_p50_ms = queue_waits.Percentile(0.5);
    snap.queue_wait_p99_ms = queue_waits.Percentile(0.99);
  }
  snap.disagg_prefill_routes = disagg_prefill_routes_;
  snap.disagg_handoffs = disagg_handoffs_;
  snap.disagg_handoff_skips = disagg_handoff_skips_;
  for (size_t i = 0; i < fabric_->replica_count(); ++i) {
    const IpcReplicaStats& ipc = fabric_->replica_stats(i);
    snap.ipc_sent += ipc.sent;
    snap.ipc_received += ipc.received;
    snap.ipc_forwarded += ipc.forwarded;
    snap.ipc_dropped += ipc.dropped;
    snap.ipc_per_replica.push_back(ipc);
  }
  snap.ipc_cross_sends = fabric_->stats().cross_sends;
  snap.ipc_cross_bytes = fabric_->stats().cross_bytes;
  snap.ipc_local_deliveries = fabric_->stats().local_deliveries;
  snap.ipc_partition_retries = fabric_->stats().partition_retries;
  snap.ipc_link_down_retries = fabric_->stats().link_down_retries;
  snap.ipc_rehomes = fabric_->stats().rehomes;
  snap.ipc_credit_waits = fabric_->stats().credit_waits;
  snap.ipc_credit_grants = fabric_->stats().credit_grants;
  snap.ipc_credit_deadlocks = fabric_->stats().credit_deadlocks;
  snap.failovers = failovers_;
  snap.migrations = migrations_;
  snap.overflow_events = overflow_events_;
  snap.overflow_rebalances = overflow_rebalances_;
  snap.checkpoints = checkpoints_;
  snap.checkpoint_entries_folded = checkpoint_entries_folded_;
  snap.delta_ships = delta_ships_;
  snap.full_ships = full_ships_;
  snap.ship_bytes = ship_bytes_;
  snap.rehydrate_retries = rehydrate_retries_;
  snap.prefix_publishes = prefix_publishes_;
  snap.warm_imports = warm_imports_;
  snap.warm_import_tokens = warm_import_tokens_;
  snap.warm_skips_cost = warm_skips_cost_;
  snap.warm_corrupt_fallbacks = warm_corrupt_fallbacks_;
  snap.submit_reroutes = submit_reroutes_;
  snap.submit_sheds = submit_sheds_;
  snap.store = store_->stats();
  snap.net_transfers = topology_->stats().transfers;
  snap.net_payload_bytes = topology_->stats().payload_bytes;
  snap.net_multi_hop = topology_->stats().multi_hop_transfers;
  snap.net_reroutes = topology_->stats().reroutes;
  snap.net_link_blocked = topology_->stats().blocked;
  snap.net_links = topology_->LinkReport();
  snap.ipc_fenced_rejections = fabric_->stats().fenced_rejections;
  if (ctrl_ != nullptr) {
    snap.ctrl = ctrl_->stats();
    snap.ctrl_seat = ctrl_->seat();
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ClusterSnapshot::ReplicaLiveness row;
      row.state = ctrl_->Health(i);
      row.epoch = ctrl_->Epoch(i);
      row.heartbeat_age = ctrl_->HeartbeatAge(i);
      row.fenced = fenced_[i];
      if (options_.enable_recovery) {
        for (const auto& entry : records_) {
          if (entry.second.replica == i && !entry.second.done) {
            ++row.lips_hosted;
          }
        }
      } else {
        row.lips_hosted = replicas_[i]->runtime().live_lips();
      }
      snap.liveness.push_back(row);
    }
  }
  return snap;
}

}  // namespace symphony
