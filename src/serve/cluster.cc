#include "src/serve/cluster.h"

#include <cassert>

#include "src/common/hash.h"

namespace symphony {

SymphonyCluster::SymphonyCluster(Simulator* sim, ClusterOptions options)
    : options_(std::move(options)) {
  assert(options_.replicas > 0);
  replicas_.reserve(options_.replicas);
  for (size_t i = 0; i < options_.replicas; ++i) {
    ServerOptions server_options = options_.server;
    // Decorrelate per-replica randomness (tool latencies etc.).
    server_options.runtime.seed = options_.server.runtime.seed + i * 7919;
    server_options.tool_seed = options_.server.tool_seed + i * 104729;
    replicas_.push_back(std::make_unique<SymphonyServer>(sim, server_options));
  }
  launched_per_replica_.assign(options_.replicas, 0);
}

size_t SymphonyCluster::LeastLoaded() const {
  size_t best = 0;
  size_t best_load = replicas_[0]->runtime().live_lips();
  for (size_t i = 1; i < replicas_.size(); ++i) {
    size_t load = replicas_[i]->runtime().live_lips();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

size_t SymphonyCluster::RouteFor(const std::string& affinity_key) const {
  switch (options_.routing) {
    case RoutingPolicy::kRoundRobin: {
      size_t replica = next_round_robin_;
      next_round_robin_ = (next_round_robin_ + 1) % replicas_.size();
      return replica;
    }
    case RoutingPolicy::kLeastLoaded:
      return LeastLoaded();
    case RoutingPolicy::kCacheAffinity:
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      return static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size());
    case RoutingPolicy::kAffinityBounded: {
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      size_t preferred =
          static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size());
      size_t total_live = 0;
      for (const std::unique_ptr<SymphonyServer>& replica : replicas_) {
        total_live += replica->runtime().live_lips();
      }
      double average = static_cast<double>(total_live + 1) /
                       static_cast<double>(replicas_.size());
      double bound = options_.load_factor * average;
      if (static_cast<double>(replicas_[preferred]->runtime().live_lips() + 1) <=
          bound) {
        return preferred;
      }
      return LeastLoaded();
    }
  }
  return 0;
}

SymphonyCluster::ClusterLip SymphonyCluster::Launch(
    std::string name, const std::string& affinity_key, LipProgram program,
    std::function<void(LipId)> on_exit) {
  size_t replica = RouteFor(affinity_key);
  ++launched_per_replica_[replica];
  LipId lip = replicas_[replica]->Launch(std::move(name), std::move(program),
                                         std::move(on_exit));
  return ClusterLip{replica, lip};
}

SymphonyCluster::ClusterSnapshot SymphonyCluster::Snapshot() const {
  ClusterSnapshot snap;
  snap.lips_per_replica = launched_per_replica_;
  for (const std::unique_ptr<SymphonyServer>& replica : replicas_) {
    snap.total_throughput_busy += replica->device().Utilization();
    snap.batches += replica->device().stats().batches;
    snap.lips_completed += replica->runtime().stats().lips_completed;
  }
  return snap;
}

}  // namespace symphony
