#include "src/serve/cluster.h"

#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace symphony {

SymphonyCluster::SymphonyCluster(Simulator* sim, ClusterOptions options)
    : sim_(sim), options_(std::move(options)) {
  assert(sim != nullptr);
  assert(options_.replicas > 0);
  replicas_.reserve(options_.replicas);
  for (size_t i = 0; i < options_.replicas; ++i) {
    ServerOptions server_options = options_.server;
    // Decorrelate per-replica randomness (tool latencies etc.).
    server_options.runtime.seed = options_.server.runtime.seed + i * 7919;
    server_options.tool_seed = options_.server.tool_seed + i * 104729;
    replicas_.push_back(std::make_unique<SymphonyServer>(sim, server_options));
  }
  launched_per_replica_.assign(options_.replicas, 0);
  dead_.assign(options_.replicas, false);
  // Arm the fault plan's replica-kill schedule. Kills route through the
  // normal KillReplica path, so with recovery enabled the victims fail over.
  if (options_.server.fault_plan != nullptr) {
    for (const auto& [replica, at] : options_.server.fault_plan->replica_kills()) {
      sim_->ScheduleAt(at, [this, replica = replica] {
        if (replica < replicas_.size() && !dead_[replica]) {
          (void)KillReplica(replica);
        }
      });
    }
  }
}

size_t SymphonyCluster::LeastLoaded() const {
  size_t best = replicas_.size();
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (dead_[i]) {
      continue;
    }
    size_t load = replicas_[i]->runtime().live_lips();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  assert(best < replicas_.size() && "no live replica");
  return best;
}

size_t SymphonyCluster::FirstLiveFrom(size_t preferred) const {
  for (size_t probe = 0; probe < replicas_.size(); ++probe) {
    size_t i = (preferred + probe) % replicas_.size();
    if (!dead_[i]) {
      return i;
    }
  }
  assert(false && "no live replica");
  return 0;
}

size_t SymphonyCluster::RouteFor(const std::string& affinity_key) const {
  switch (options_.routing) {
    case RoutingPolicy::kRoundRobin: {
      size_t replica = FirstLiveFrom(next_round_robin_);
      next_round_robin_ = (replica + 1) % replicas_.size();
      return replica;
    }
    case RoutingPolicy::kLeastLoaded:
      return LeastLoaded();
    case RoutingPolicy::kCacheAffinity:
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      return FirstLiveFrom(
          static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size()));
    case RoutingPolicy::kAffinityBounded: {
      if (affinity_key.empty()) {
        return LeastLoaded();
      }
      size_t preferred = FirstLiveFrom(
          static_cast<size_t>(Fnv1a(affinity_key) % replicas_.size()));
      size_t total_live = 0;
      size_t live_replicas = 0;
      for (size_t i = 0; i < replicas_.size(); ++i) {
        if (dead_[i]) {
          continue;
        }
        total_live += replicas_[i]->runtime().live_lips();
        ++live_replicas;
      }
      double average = static_cast<double>(total_live + 1) /
                       static_cast<double>(live_replicas);
      double bound = options_.load_factor * average;
      if (static_cast<double>(replicas_[preferred]->runtime().live_lips() + 1) <=
          bound) {
        return preferred;
      }
      // Hot key: the preferred replica is over its bound. The overflow is
      // both a routing decision and a load signal (see MaybeShedOnOverflow).
      NoteOverflow();
      return LeastLoaded();
    }
  }
  return 0;
}

void SymphonyCluster::NoteOverflow() const {
  ++overflow_events_;
  SimTime now = sim_->now();
  if (now - overflow_window_start_ > options_.overflow_window) {
    overflow_window_start_ = now;
    overflow_in_window_ = 0;
  }
  ++overflow_in_window_;
}

void SymphonyCluster::MaybeShedOnOverflow() {
  if (!options_.rebalance_on_overflow || !options_.enable_recovery ||
      overflow_in_window_ < options_.overflow_threshold) {
    return;
  }
  SimTime now = sim_->now();
  if (last_overflow_rebalance_ >= 0 &&
      now - last_overflow_rebalance_ < options_.overflow_cooldown) {
    return;
  }
  last_overflow_rebalance_ = now;
  overflow_in_window_ = 0;
  ++overflow_rebalances_;
  // Deferred one dispatch: Launch's placement must settle before migration
  // decisions read the load it just added.
  sim_->ScheduleAt(now, [this] { (void)Rebalance(); });
}

std::function<void(LipId)> SymphonyCluster::MakeOnExit(uint64_t uid) {
  return [this, uid](LipId lip) {
    auto it = records_.find(uid);
    if (it == records_.end()) {
      return;
    }
    it->second.done = true;
    if (it->second.user_on_exit) {
      it->second.user_on_exit(lip);
    }
  };
}

SymphonyCluster::ClusterLip SymphonyCluster::Launch(
    std::string name, const std::string& affinity_key, LipProgram program,
    std::function<void(LipId)> on_exit) {
  size_t replica = RouteFor(affinity_key);
  ++launched_per_replica_[replica];
  MaybeShedOnOverflow();
  if (!options_.enable_recovery) {
    LipId lip = replicas_[replica]->Launch(std::move(name), std::move(program),
                                           std::move(on_exit));
    return ClusterLip{replica, lip, 0};
  }
  uint64_t uid = next_uid_++;
  LipRecord& rec = records_[uid];
  rec.uid = uid;
  rec.name = name;
  rec.program = program;  // Keep a copy for relaunch.
  rec.user_on_exit = std::move(on_exit);
  rec.replica = replica;
  rec.journal = std::make_shared<SyscallJournal>();
  // Replica-independent seed: a replayed LIP must re-draw the identical RNG
  // stream on any replica, so the seed is derived from the cluster-wide uid
  // rather than the replica's decorrelated runtime seed.
  uint64_t seed =
      Mix64(options_.server.runtime.seed ^ (0x5eedULL + uid * 0x9e3779b9ULL));
  LipRuntime& runtime = replicas_[replica]->runtime();
  rec.lip = runtime.LaunchWithSeed(std::move(name), seed, std::move(program),
                                   MakeOnExit(uid));
  runtime.EnableJournal(rec.lip, rec.journal);
  return ClusterLip{replica, rec.lip, uid};
}

void SymphonyCluster::ReplayOnto(LipRecord& rec, size_t target) {
  SymphonyServer& server = *replicas_[target];
  // Replay from a copy: late completions on the old replica may still append
  // to the original journal, and the new incarnation records into its own.
  auto journal = std::make_shared<SyscallJournal>(*rec.journal);
  CostModel cost(options_.server.model, options_.server.hardware);
  ReplayOutcome outcome = Replayer::Replay(
      server.runtime(), cost, &options_.server.model, journal, rec.program,
      options_.recovery_mode, MakeOnExit(rec.uid));
  rec.journal = std::move(journal);
  rec.replica = target;
  rec.lip = outcome.lip;
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "restore:" + rec.name + "@replica" +
                        std::to_string(target) + ":" +
                        RecoveryModeName(outcome.mode),
        sim_->now());
  }
}

Status SymphonyCluster::KillReplica(size_t index) {
  if (index >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(index));
  }
  if (dead_[index]) {
    return FailedPreconditionError("replica " + std::to_string(index) +
                                   " already dead");
  }
  dead_[index] = true;
  LipRuntime& runtime = replicas_[index]->runtime();
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant("recovery",
                                   "kill:replica" + std::to_string(index),
                                   sim_->now());
  }
  // Collect the victims before halting: LipDone() still answers afterwards,
  // but the order keeps this readable.
  std::vector<uint64_t> victims;
  for (auto& entry : records_) {
    LipRecord& rec = entry.second;
    if (rec.replica == index && !rec.done && !runtime.LipDone(rec.lip)) {
      victims.push_back(rec.uid);
    }
  }
  runtime.Halt();
  if (!options_.enable_recovery || victims.empty()) {
    return Status::Ok();
  }
  bool any_live = false;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    any_live = any_live || !dead_[i];
  }
  if (!any_live) {
    return FailedPreconditionError("no surviving replica to fail over to");
  }
  // Co-migrate every victim to ONE survivor so IPC-coupled LIPs re-execute
  // their sends/recvs against each other (journal.h determinism contract).
  size_t target = LeastLoaded();
  for (uint64_t uid : victims) {
    ReplayOnto(records_[uid], target);
    ++failovers_;
  }
  SYMPHONY_LOG(kInfo) << "replica " << index << " killed; " << victims.size()
                      << " lip(s) replayed on replica " << target;
  return Status::Ok();
}

Status SymphonyCluster::Migrate(const ClusterLip& id, size_t to_replica) {
  if (!options_.enable_recovery) {
    return FailedPreconditionError("migration requires enable_recovery");
  }
  auto it = records_.find(id.uid);
  if (it == records_.end()) {
    return NotFoundError("unknown lip uid " + std::to_string(id.uid));
  }
  LipRecord& rec = it->second;
  if (to_replica >= replicas_.size()) {
    return InvalidArgumentError("no replica " + std::to_string(to_replica));
  }
  if (dead_[to_replica]) {
    return FailedPreconditionError("target replica is dead");
  }
  if (dead_[rec.replica]) {
    return FailedPreconditionError("source replica is dead");
  }
  if (to_replica == rec.replica) {
    return InvalidArgumentError("lip already on replica " +
                                std::to_string(to_replica));
  }
  LipRuntime& source = replicas_[rec.replica]->runtime();
  if (rec.done || source.LipDone(rec.lip)) {
    return FailedPreconditionError("lip already finished");
  }
  SYMPHONY_RETURN_IF_ERROR(source.Detach(rec.lip));
  if (options_.server.trace != nullptr) {
    options_.server.trace->Instant(
        "recovery", "migrate:" + rec.name + ":replica" +
                        std::to_string(rec.replica) + "->replica" +
                        std::to_string(to_replica),
        sim_->now());
  }
  ReplayOnto(rec, to_replica);
  ++migrations_;
  return Status::Ok();
}

size_t SymphonyCluster::Rebalance() {
  if (!options_.enable_recovery) {
    return 0;
  }
  std::vector<size_t> loads(replicas_.size(), SIZE_MAX);
  size_t total = 0;
  size_t live_replicas = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (dead_[i]) {
      continue;
    }
    loads[i] = replicas_[i]->runtime().live_lips();
    total += loads[i];
    ++live_replicas;
  }
  if (live_replicas < 2) {
    return 0;
  }
  std::vector<std::pair<uint64_t, size_t>> moves;
  if (rebalance_hook_) {
    moves = rebalance_hook_(loads);
  } else {
    // Default policy: a replica above load_factor x the live average sheds
    // LIPs to the emptiest replica — but only moves that strictly improve
    // balance (target + 1 < source on the planned loads). Without that
    // guard a single straggler ping-pongs between replicas forever, each
    // migration restarting it before it can finish.
    double average =
        static_cast<double>(total) / static_cast<double>(live_replicas);
    double bound = options_.load_factor * average;
    std::vector<size_t> planned = loads;  // SIZE_MAX marks dead replicas.
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (dead_[i] || static_cast<double>(loads[i]) <= bound) {
        continue;
      }
      for (auto& entry : records_) {
        LipRecord& rec = entry.second;
        if (rec.replica != i || rec.done ||
            replicas_[i]->runtime().LipDone(rec.lip)) {
          continue;
        }
        size_t target = i;
        for (size_t j = 0; j < replicas_.size(); ++j) {
          if (!dead_[j] && planned[j] < planned[target]) {
            target = j;
          }
        }
        if (target == i || planned[target] + 1 >= planned[i] ||
            static_cast<double>(planned[i]) <= bound) {
          break;
        }
        moves.emplace_back(rec.uid, target);
        --planned[i];
        ++planned[target];
      }
    }
  }
  size_t moved = 0;
  for (const auto& [uid, target] : moves) {
    auto it = records_.find(uid);
    if (it == records_.end()) {
      continue;
    }
    ClusterLip id{it->second.replica, it->second.lip, uid};
    if (Migrate(id, target).ok()) {
      ++moved;
    }
  }
  return moved;
}

void SymphonyCluster::ScheduleRebalance(SimDuration period) {
  sim_->ScheduleAfter(period, [this, period] {
    Rebalance();
    // Keep the chain alive only while there is work, so Simulator::Run
    // still terminates once the cluster drains.
    if (LiveLipsTotal() > 0) {
      ScheduleRebalance(period);
    }
  });
}

void SymphonyCluster::StartAutoRebalance(SimDuration period) {
  assert(period > 0);
  ScheduleRebalance(period);
}

size_t SymphonyCluster::LiveLipsTotal() const {
  size_t live = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!dead_[i]) {
      live += replicas_[i]->runtime().live_lips();
    }
  }
  return live;
}

SymphonyCluster::ClusterLip SymphonyCluster::Locate(
    const ClusterLip& id) const {
  auto it = records_.find(id.uid);
  if (it == records_.end()) {
    return id;
  }
  return ClusterLip{it->second.replica, it->second.lip, id.uid};
}

const std::string& SymphonyCluster::Output(const ClusterLip& id) const {
  ClusterLip where = Locate(id);
  return replicas_[where.replica]->runtime().Output(where.lip);
}

bool SymphonyCluster::Done(const ClusterLip& id) const {
  auto it = records_.find(id.uid);
  if (it != records_.end()) {
    return it->second.done;
  }
  return replicas_[id.replica]->runtime().LipDone(id.lip);
}

SymphonyCluster::ClusterSnapshot SymphonyCluster::Snapshot() const {
  ClusterSnapshot snap;
  snap.lips_per_replica = launched_per_replica_;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    SymphonyServer* replica = replicas_[i].get();
    snap.total_throughput_busy += replica->device().Utilization();
    snap.batches += replica->device().stats().batches;
    snap.lips_completed += replica->runtime().stats().lips_completed;
    snap.lips_replayed += replica->runtime().stats().lips_replayed;
    snap.replay_divergences += replica->runtime().stats().replay_divergences;
    if (dead_[i]) {
      ++snap.replicas_dead;
    }
  }
  snap.failovers = failovers_;
  snap.migrations = migrations_;
  snap.overflow_events = overflow_events_;
  snap.overflow_rebalances = overflow_rebalances_;
  return snap;
}

}  // namespace symphony
