// SymphonyServer: the composed LLM-serving operating system (paper §4).
//
// Wires together the LIP runtime (processes/threads), KVFS (KV cache as
// files), the simulated GPU device with its cost model, the two-level
// scheduler (thread scheduler in the runtime + batch inference scheduler),
// and the server-side tool registry. This is the top of the public API: a
// client constructs a server around a Simulator and Launches LIPs.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <array>
#include <deque>
#include <memory>
#include <string>

#include "src/faults/fault_plan.h"
#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/cost_model.h"
#include "src/model/model.h"
#include "src/model/tokenizer.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/runtime.h"
#include "src/sched/batch_policy.h"
#include "src/sched/inference_scheduler.h"
#include "src/sim/event_queue.h"
#include "src/sim/trace.h"
#include "src/tools/circuit_breaker.h"
#include "src/tools/tool_registry.h"

namespace symphony {

enum class BatchPolicyKind {
  kEager,
  kSizeTimeout,
  kPoissonAdaptive,
};

// Failure handling for one tool syscall at the server boundary. The retry
// loop runs entirely server-side: only the FINAL result of a tool syscall is
// journaled, so a recovered LIP replays the failures it actually observed
// rather than re-rolling them.
struct ToolRetryOptions {
  // Per-attempt timeout: an attempt whose (possibly fault-stretched) latency
  // exceeds this fails with kDeadlineExceeded at the timeout instead of
  // waiting out the tail. 0 disables.
  SimDuration call_timeout = 0;
  uint32_t max_attempts = 3;  // Total attempts; 1 = no retries.
  // Backoff before attempt n+1: base * 2^(n-1), capped, plus a uniform
  // jitter of up to `backoff_jitter` of the backoff (de-synchronizes
  // retry storms across LIPs).
  SimDuration backoff_base = Millis(10);
  SimDuration backoff_cap = Millis(500);
  double backoff_jitter = 0.2;
};

// Admission control for LIP launches (paper §6: the server is a shared,
// multi-tenant OS — overload must degrade goodput gracefully, not cliff).
// Disabled by default: Submit then launches unconditionally.
struct AdmissionOptions {
  bool enabled = false;
  // Admitted LIPs allowed to run concurrently; further launches queue.
  uint32_t max_live_lips = 8;
  // Bounded wait queue across all priority classes; beyond it, shed.
  size_t max_queue = 64;
  // EWMA smoothing for the per-LIP service-time estimate that drives
  // deadline-aware rejection, and its optimistic prior.
  double service_ewma_alpha = 0.2;
  SimDuration initial_service_estimate = Millis(500);
};

struct ToolServiceStats {
  uint64_t attempts = 0;   // Tool attempts, including breaker rejections.
  uint64_t retries = 0;    // Attempts that were retried after a backoff.
  uint64_t timeouts = 0;   // Attempts cut off by call_timeout.
  uint64_t failures = 0;   // Final (post-retry) failures delivered to LIPs.
  uint64_t breaker_rejections = 0;  // Attempts rejected by an open breaker.
};

struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;           // Launched, immediately or from the queue.
  uint64_t queued = 0;
  uint64_t rejected_full = 0;      // Shed: queue at capacity.
  uint64_t rejected_deadline = 0;  // Shed: projected delay past the deadline.
  uint64_t shed_expired = 0;       // Dropped at dequeue: deadline passed.
};

struct ServerOptions {
  ModelConfig model = ModelConfig::Llama13B();
  HardwareConfig hardware = HardwareConfig::A100();
  RuntimeOptions runtime;
  InferenceSchedulerOptions scheduler;
  BatchPolicyKind batch_policy = BatchPolicyKind::kEager;
  // SizeTimeout parameters (when selected).
  size_t batch_target_size = 16;
  SimDuration batch_timeout = Millis(5);
  // PoissonAdaptive parameter (when selected).
  SimDuration batch_max_wait = Millis(20);
  // KVFS eviction when the device KV budget fills.
  EvictionMode eviction = EvictionMode::kOffloadLru;
  // Optional execution trace (non-owning; must outlive the server). Records
  // GPU batch spans, LIP lifetime spans, and tool-call spans; dump with
  // TraceRecorder::WriteChromeJson for chrome://tracing / Perfetto.
  TraceRecorder* trace = nullptr;
  // §4.3: offload a LIP's KV to host while it blocks on slow tool I/O.
  bool offload_kv_on_tool_io = true;
  SimDuration min_io_for_offload = Millis(5);
  uint64_t tool_seed = 1234;
  // Failure semantics at the tool syscall boundary.
  ToolRetryOptions tool_retry;
  CircuitBreakerOptions breaker;
  // Admission control / load shedding for Submit().
  AdmissionOptions admission;
  // Optional fault injection (non-owning; must outlive the server). Tool
  // attempts consult it; KV pressure windows are armed at construction; in a
  // cluster each replica shares the plan and SymphonyCluster arms its
  // replica-kill schedule. See src/faults/fault_plan.h.
  FaultPlan* fault_plan = nullptr;
};

class SymphonyServer {
 public:
  SymphonyServer(Simulator* sim, ServerOptions options = {});
  ~SymphonyServer();

  SymphonyServer(const SymphonyServer&) = delete;
  SymphonyServer& operator=(const SymphonyServer&) = delete;

  // Starts a LIP; see LipRuntime::Launch.
  LipId Launch(std::string name, LipProgram program,
               std::function<void(LipId)> on_exit = nullptr);

  // Starts a LIP with resource limits enforced at the system-call boundary
  // (paper §6: resource accounting for untrusted programs).
  LipId LaunchWithQuota(std::string name, LipQuota quota, LipProgram program,
                        std::function<void(LipId)> on_exit = nullptr);

  // ---- Admission-controlled launches -----------------------------------

  static constexpr uint32_t kPriorityLevels = 3;

  struct LaunchSpec {
    std::string name;
    LipProgram program;
    std::function<void(LipId)> on_exit;
    bool has_quota = false;
    LipQuota quota;
    // Completion budget relative to submission; 0 = none. Enforced as a
    // per-LIP deadline (LipRuntime::SetDeadline) once launched, and used for
    // deadline-aware rejection while queued.
    SimDuration deadline = 0;
    // 0 = highest. Clamped to kPriorityLevels - 1.
    uint32_t priority = 1;
    // Fresh context tokens the LIP will prefill up front (0 = unknown or
    // small). The server ignores it; a disaggregated cluster's router steers
    // qualifying launches to its prefill-role replicas (see ClusterOptions).
    uint64_t prefill_hint_tokens = 0;
  };

  struct AdmitResult {
    Status status;       // OK: running or queued. kUnavailable: shed.
    LipId lip = kNoLip;  // Set when launched immediately.
    bool queued = false;
    // Backpressure hint on rejection: projected time until the system could
    // plausibly take this request.
    SimDuration retry_after = 0;
  };

  // Launches through admission control (no-op passthrough when disabled).
  // Queued entries launch highest-priority-first, FIFO within a class, as
  // running admitted LIPs exit; entries whose deadline passes while queued
  // are shed at dequeue (their on_exit never fires).
  AdmitResult Submit(LaunchSpec spec);

  // Extra delay folded into ProjectedQueueDelay (deadline-aware rejection
  // and retry_after hints). The cluster wires this to the IPC fabric's
  // credit backpressure (IpcFabric::BackpressureDelay): a replica whose
  // senders are parked for credits advertises longer projected waits, so
  // Submit's reroute tier steers new work to less-congested replicas.
  void set_backpressure_hook(std::function<SimDuration()> hook) {
    backpressure_hook_ = std::move(hook);
  }

  // Materializes a cluster-shared KV snapshot as a named file on this
  // replica (cross-replica prefix warming, src/store). Pages land on the
  // host tier; the first pred that reads the file pays PCIe, not prefill.
  // kAlreadyExists when the path is already present — the warm was a no-op.
  Status ImportNamedSnapshot(const KvFileSnapshot& snapshot);

  // Component access.
  Simulator* simulator() { return sim_; }
  Kvfs& kvfs() { return *kvfs_; }
  LipRuntime& runtime() { return *runtime_; }
  Device& device() { return *device_; }
  InferenceScheduler& scheduler() { return *scheduler_; }
  ToolRegistry& tools() { return *tools_; }
  const Model& model() const { return *model_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }
  const ServerOptions& options() const { return options_; }

  // Failure-semantics observability.
  const ToolServiceStats& tool_stats() const;
  const AdmissionStats& admission_stats() const { return admission_stats_; }
  // Breaker for `tool`, or nullptr before its first invocation.
  const CircuitBreaker* tool_breaker(const std::string& tool) const;
  size_t admission_queue_depth() const;
  // Projected wait for a request joining the admission queue right now —
  // the control plane's load signal for elastic scaling decisions.
  SimDuration ProjectedAdmissionDelay() const {
    return ProjectedQueueDelay(admission_queue_depth());
  }

  // Aggregate snapshot for benchmarks and dashboards.
  struct MetricsSnapshot {
    double gpu_utilization = 0.0;
    uint64_t batches = 0;
    double mean_batch_size = 0.0;
    uint64_t preds = 0;
    uint64_t lips_completed = 0;
    uint64_t kv_evicted_files = 0;
    uint64_t kv_offloaded_pages = 0;
    uint64_t kv_restored_pages = 0;
    uint64_t transfer_bytes = 0;
    double mean_queue_wait_ms = 0.0;
    // Failure semantics.
    uint64_t memory_requeues = 0;
    uint64_t preds_cancelled = 0;
    uint64_t tool_retries = 0;
    uint64_t tool_timeouts = 0;
    uint64_t tool_failures = 0;
    uint64_t breaker_opens = 0;
    uint64_t breaker_rejections = 0;
    uint64_t deadlines_expired = 0;
    uint64_t deadline_rejections = 0;
    uint64_t admission_rejected = 0;
    uint64_t admission_shed = 0;
  };
  MetricsSnapshot Snapshot() const;

 private:
  class ServerToolService;

  struct QueuedLaunch {
    LaunchSpec spec;
    SimTime enqueued = 0;
    SimTime expire = 0;  // Absolute deadline; 0 = never expires.
  };

  // Launches an admission-tracked LIP with an absolute deadline (0 = none).
  LipId LaunchAdmitted(LaunchSpec spec, SimTime abs_deadline);
  // Fills free run slots from the wait queues.
  void AdmitFromQueue();
  // Projected wait for a request joining behind `depth` queued entries.
  SimDuration ProjectedQueueDelay(size_t depth) const;

  Simulator* sim_;
  ServerOptions options_;
  std::unique_ptr<Model> model_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<Kvfs> kvfs_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<InferenceScheduler> scheduler_;
  std::unique_ptr<ToolRegistry> tools_;
  std::unique_ptr<ServerToolService> tool_service_;
  std::unique_ptr<LipRuntime> runtime_;

  // Admission control state.
  std::array<std::deque<QueuedLaunch>, kPriorityLevels> admission_queue_;
  uint32_t live_admitted_ = 0;
  double service_ewma_s_ = 0.0;  // 0 = no completions yet; use the prior.
  AdmissionStats admission_stats_;
  std::function<SimDuration()> backpressure_hook_;
};

}  // namespace symphony

#endif  // SRC_SERVE_SERVER_H_
