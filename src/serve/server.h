// SymphonyServer: the composed LLM-serving operating system (paper §4).
//
// Wires together the LIP runtime (processes/threads), KVFS (KV cache as
// files), the simulated GPU device with its cost model, the two-level
// scheduler (thread scheduler in the runtime + batch inference scheduler),
// and the server-side tool registry. This is the top of the public API: a
// client constructs a server around a Simulator and Launches LIPs.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <memory>
#include <string>

#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/cost_model.h"
#include "src/model/model.h"
#include "src/model/tokenizer.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/runtime.h"
#include "src/sched/batch_policy.h"
#include "src/sched/inference_scheduler.h"
#include "src/sim/event_queue.h"
#include "src/sim/trace.h"
#include "src/tools/tool_registry.h"

namespace symphony {

enum class BatchPolicyKind {
  kEager,
  kSizeTimeout,
  kPoissonAdaptive,
};

struct ServerOptions {
  ModelConfig model = ModelConfig::Llama13B();
  HardwareConfig hardware = HardwareConfig::A100();
  RuntimeOptions runtime;
  InferenceSchedulerOptions scheduler;
  BatchPolicyKind batch_policy = BatchPolicyKind::kEager;
  // SizeTimeout parameters (when selected).
  size_t batch_target_size = 16;
  SimDuration batch_timeout = Millis(5);
  // PoissonAdaptive parameter (when selected).
  SimDuration batch_max_wait = Millis(20);
  // KVFS eviction when the device KV budget fills.
  EvictionMode eviction = EvictionMode::kOffloadLru;
  // Optional execution trace (non-owning; must outlive the server). Records
  // GPU batch spans, LIP lifetime spans, and tool-call spans; dump with
  // TraceRecorder::WriteChromeJson for chrome://tracing / Perfetto.
  TraceRecorder* trace = nullptr;
  // §4.3: offload a LIP's KV to host while it blocks on slow tool I/O.
  bool offload_kv_on_tool_io = true;
  SimDuration min_io_for_offload = Millis(5);
  uint64_t tool_seed = 1234;
};

class SymphonyServer {
 public:
  SymphonyServer(Simulator* sim, ServerOptions options = {});
  ~SymphonyServer();

  SymphonyServer(const SymphonyServer&) = delete;
  SymphonyServer& operator=(const SymphonyServer&) = delete;

  // Starts a LIP; see LipRuntime::Launch.
  LipId Launch(std::string name, LipProgram program,
               std::function<void(LipId)> on_exit = nullptr);

  // Starts a LIP with resource limits enforced at the system-call boundary
  // (paper §6: resource accounting for untrusted programs).
  LipId LaunchWithQuota(std::string name, LipQuota quota, LipProgram program,
                        std::function<void(LipId)> on_exit = nullptr);

  // Component access.
  Simulator* simulator() { return sim_; }
  Kvfs& kvfs() { return *kvfs_; }
  LipRuntime& runtime() { return *runtime_; }
  Device& device() { return *device_; }
  InferenceScheduler& scheduler() { return *scheduler_; }
  ToolRegistry& tools() { return *tools_; }
  const Model& model() const { return *model_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }
  const ServerOptions& options() const { return options_; }

  // Aggregate snapshot for benchmarks and dashboards.
  struct MetricsSnapshot {
    double gpu_utilization = 0.0;
    uint64_t batches = 0;
    double mean_batch_size = 0.0;
    uint64_t preds = 0;
    uint64_t lips_completed = 0;
    uint64_t kv_evicted_files = 0;
    uint64_t kv_offloaded_pages = 0;
    uint64_t kv_restored_pages = 0;
    uint64_t transfer_bytes = 0;
    double mean_queue_wait_ms = 0.0;
  };
  MetricsSnapshot Snapshot() const;

 private:
  class ServerToolService;

  Simulator* sim_;
  ServerOptions options_;
  std::unique_ptr<Model> model_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<Kvfs> kvfs_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<InferenceScheduler> scheduler_;
  std::unique_ptr<ToolRegistry> tools_;
  std::unique_ptr<ServerToolService> tool_service_;
  std::unique_ptr<LipRuntime> runtime_;
};

}  // namespace symphony

#endif  // SRC_SERVE_SERVER_H_
