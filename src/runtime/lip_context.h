// LipContext: the system-call surface a LIP programs against.
//
// This is the paper's LIP API (Figure 2): kv_* calls manage KV cache files,
// pred runs model computation, spawn/join provide threads, call_tool and
// send/recv provide external interaction and IPC. Asynchronous calls return
// awaitables (`co_await ctx.pred(...)`).
//
// Naming note: LIP-facing system calls deliberately use snake_case to mirror
// the paper's API (kv_open, pred, ...), the same way a libc surface would;
// everything behind the boundary follows the project's normal style.
#ifndef SRC_RUNTIME_LIP_CONTEXT_H_
#define SRC_RUNTIME_LIP_CONTEXT_H_

#include <coroutine>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/kvfs.h"
#include "src/model/distribution.h"
#include "src/runtime/pred_service.h"
#include "src/runtime/runtime.h"
#include "src/runtime/task.h"

namespace symphony {

class LipContext {
 public:
  LipContext(LipRuntime* runtime, LipId lip) : runtime_(runtime), lip_(lip) {}

  LipContext(const LipContext&) = delete;
  LipContext& operator=(const LipContext&) = delete;

  LipId id() const { return lip_; }
  SimTime now() const { return runtime_->simulator()->now(); }
  const Tokenizer& tokenizer() const { return *runtime_->tokenizer(); }

  // ---- KV cache file system calls (synchronous) ------------------------

  // Opens an existing KV file for reading (and optionally writing).
  StatusOr<KvHandle> kv_open(std::string_view path, bool write = false);

  // Creates (or opens) a named KV file for writing.
  StatusOr<KvHandle> kv_create(std::string_view path,
                               uint8_t mode = kModePrivate);

  // Creates an unnamed scratch file, reclaimed on close.
  StatusOr<KvHandle> kv_tmp();

  Status kv_close(KvHandle handle);
  Status kv_remove(std::string_view path);
  bool kv_exists(std::string_view path) const;

  // Copy-on-write clone of the file (shares pages until they diverge).
  StatusOr<KvHandle> kv_fork(KvHandle handle);

  // New file containing the records at `indices` (strictly increasing).
  StatusOr<KvHandle> kv_extract(KvHandle handle, std::span<const uint64_t> indices);

  // New file containing the concatenation of the sources.
  StatusOr<KvHandle> kv_merge(std::span<const KvHandle> handles);

  StatusOr<uint64_t> kv_len(KvHandle handle) const;
  StatusOr<TokenRecord> kv_read(KvHandle handle, uint64_t index);
  Status kv_truncate(KvHandle handle, uint64_t new_length);
  Status kv_lock(KvHandle handle);
  Status kv_unlock(KvHandle handle);
  Status kv_pin(KvHandle handle);
  Status kv_unpin(KvHandle handle);
  Status kv_link(KvHandle handle, std::string_view path);
  Status kv_chmod(KvHandle handle, uint8_t mode);

  // Moves the file's pages to host memory (application-directed placement,
  // e.g. before a long idle period). The next pred on the file restores it
  // on-device automatically, paying the PCIe transfer.
  Status kv_offload(KvHandle handle);

  // Metadata of an open file (length, residency, mode, owner, ...).
  StatusOr<KvFileInfo> kv_stat(KvHandle handle) const;

  // Names under `prefix` this LIP could open for reading.
  std::vector<std::string> kv_list(std::string_view prefix) const;

  // ---- Asynchronous system calls (co_await these) ----------------------

  class PredAwaitable {
   public:
    PredAwaitable(LipRuntime* runtime, KvHandle kv, std::vector<TokenId> tokens,
                  std::vector<int32_t> positions, Status early_error)
        : runtime_(runtime),
          kv_(kv),
          tokens_(std::move(tokens)),
          positions_(std::move(positions)) {
      if (!early_error.ok()) {
        result_.status = std::move(early_error);
        ready_ = true;
      }
    }
    bool await_ready() const { return ready_; }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->SubmitPred(runtime_->current_thread(), kv_, std::move(tokens_),
                           std::move(positions_), &result_);
    }
    StatusOr<std::vector<Distribution>> await_resume() {
      if (!result_.status.ok()) {
        return result_.status;
      }
      return std::move(result_.dists);
    }

   private:
    LipRuntime* runtime_;
    KvHandle kv_;
    std::vector<TokenId> tokens_;
    std::vector<int32_t> positions_;
    PredResult result_;
    bool ready_ = false;
  };

  // pred with explicit absolute positions (the paper's full signature).
  PredAwaitable pred_at(KvHandle kv, std::vector<TokenId> tokens,
                        std::vector<int32_t> positions);

  // pred continuing at the file's current length (the common case).
  PredAwaitable pred(KvHandle kv, std::vector<TokenId> tokens);

  // Single-token decode step.
  PredAwaitable pred1(KvHandle kv, TokenId token);

  // Variadic convenience: co_await ctx.pred_tokens(kv, 260, 261, 262).
  // Exists because GCC (through at least 12.x) cannot persist an
  // initializer-list array temporary across a co_await suspension point, so
  // `co_await ctx.pred(kv, {260, 261})` fails to compile; this form builds
  // the vector outside the coroutine's full expression.
  template <typename... Tokens>
  PredAwaitable pred_tokens(KvHandle kv, Tokens... tokens) {
    std::vector<TokenId> toks;
    toks.reserve(sizeof...(tokens));
    (toks.push_back(static_cast<TokenId>(tokens)), ...);
    return pred(kv, std::move(toks));
  }

  class SleepAwaitable {
   public:
    SleepAwaitable(LipRuntime* runtime, SimDuration duration)
        : runtime_(runtime), duration_(duration) {}
    bool await_ready() const { return duration_ <= 0; }
    void await_suspend(std::coroutine_handle<> frame);
    void await_resume() {}

   private:
    LipRuntime* runtime_;
    SimDuration duration_;
  };

  SleepAwaitable sleep(SimDuration duration) {
    return SleepAwaitable(runtime_, duration);
  }

  class ToolAwaitable {
   public:
    ToolAwaitable(LipRuntime* runtime, std::string tool, std::string args)
        : runtime_(runtime), tool_(std::move(tool)), args_(std::move(args)) {}
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->SubmitTool(runtime_->current_thread(), tool_, args_, &result_);
    }
    StatusOr<std::string> await_resume() {
      if (!result_.status.ok()) {
        return result_.status;
      }
      return std::move(result_.output);
    }

   private:
    LipRuntime* runtime_;
    std::string tool_;
    std::string args_;
    ToolResult result_;
  };

  // Executes a function/tool call server-side (§2.2, §4.3): no client round
  // trip; the thread blocks and Symphony may offload its KV while waiting.
  ToolAwaitable call_tool(std::string tool, std::string args) {
    return ToolAwaitable(runtime_, std::move(tool), std::move(args));
  }

  // ---- Threads ----------------------------------------------------------

  ThreadId spawn(LipProgram program) {
    return runtime_->SpawnThread(lip_, std::move(program));
  }

  class JoinAwaitable {
   public:
    JoinAwaitable(LipRuntime* runtime, ThreadId target)
        : runtime_(runtime), target_(target) {}
    bool await_ready() const { return runtime_->ThreadDone(target_); }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->BlockCurrent();
      runtime_->AddJoiner(target_, runtime_->current_thread());
    }
    void await_resume() {}

   private:
    LipRuntime* runtime_;
    ThreadId target_;
  };

  JoinAwaitable join(ThreadId thread) { return JoinAwaitable(runtime_, thread); }

  class JoinAllAwaitable {
   public:
    JoinAllAwaitable(LipRuntime* runtime, LipId lip)
        : runtime_(runtime), lip_(lip) {}
    bool await_ready() const { return false; }  // Checked inside AddJoinAllWaiter.
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->BlockCurrent();
      runtime_->AddJoinAllWaiter(lip_, runtime_->current_thread());
    }
    void await_resume() {}

   private:
    LipRuntime* runtime_;
    LipId lip_;
  };

  // Waits until every other thread in this LIP has finished.
  JoinAllAwaitable join_all() { return JoinAllAwaitable(runtime_, lip_); }

  class YieldAwaitable {
   public:
    explicit YieldAwaitable(LipRuntime* runtime) : runtime_(runtime) {}
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      ThreadId self = runtime_->current_thread();
      runtime_->BlockCurrent();
      runtime_->Ready(self);
    }
    void await_resume() {}

   private:
    LipRuntime* runtime_;
  };

  YieldAwaitable yield() { return YieldAwaitable(runtime_); }

  // ---- IPC ---------------------------------------------------------------

  // send is a (potentially) blocking syscall: on a credit-bounded fabric
  // channel with no credits left the sender parks FIFO until the consumer
  // frees one (backpressure). await_ready completes the common case — an
  // unbounded channel, an available credit, a legacy in-runtime channel, or
  // a replay-suppressed send — without suspending, so existing workloads'
  // timing is unchanged. Dropping the awaitable without co_await silently
  // skips the send, hence [[nodiscard]] on the factory below.
  //
  // Toolchain caveat (applies to every awaitable here): GCC 12 double-
  // destroys conditional-operator temporaries inside a co_await operand, so
  // write `std::string m = c ? a : b; co_await ctx.send(ch, std::move(m));`
  // rather than passing the ternary directly.
  class SendAwaitable {
   public:
    SendAwaitable(LipRuntime* runtime, std::string channel, std::string message)
        : runtime_(runtime),
          channel_(std::move(channel)),
          message_(std::move(message)) {}
    bool await_ready() {
      return runtime_->ChannelTrySend(channel_, &message_);
    }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->BlockCurrent();
      runtime_->ChannelAddSendWaiter(channel_, runtime_->current_thread(),
                                     &message_);
    }
    void await_resume() {}

   private:
    LipRuntime* runtime_;
    std::string channel_;
    std::string message_;
  };

  [[nodiscard]] SendAwaitable send(std::string channel, std::string message) {
    return SendAwaitable(runtime_, std::move(channel), std::move(message));
  }

  class RecvAwaitable {
   public:
    RecvAwaitable(LipRuntime* runtime, std::string channel)
        : runtime_(runtime), channel_(std::move(channel)) {}
    bool await_ready() {
      ready_ = runtime_->ChannelTryRecv(channel_, &message_);
      return ready_;
    }
    void await_suspend(std::coroutine_handle<> frame) {
      runtime_->SetResumePoint(frame);
      runtime_->BlockCurrent();
      runtime_->ChannelAddWaiter(channel_, runtime_->current_thread(), &message_);
    }
    std::string await_resume() { return std::move(message_); }

   private:
    LipRuntime* runtime_;
    std::string channel_;
    std::string message_;
    bool ready_ = false;
  };

  RecvAwaitable recv(std::string channel) {
    return RecvAwaitable(runtime_, std::move(channel));
  }

  // ---- Misc ---------------------------------------------------------------

  // Appends to the LIP's output stream (the "print" of Figure 2).
  void emit(std::string_view text) { runtime_->Emit(lip_, text); }

  // Per-LIP deterministic randomness for sampling.
  double uniform() { return runtime_->LipRng(lip_).NextDouble(); }
  uint64_t rand64() { return runtime_->LipRng(lip_).NextU64(); }

  // This LIP's resource consumption so far (pred tokens, tool calls,
  // threads, KV pages).
  LipUsage usage() const { return runtime_->GetUsage(lip_); }

  LipRuntime* runtime_for_testing() { return runtime_; }

 private:
  LipRuntime* runtime_;
  LipId lip_;
};

}  // namespace symphony

#endif  // SRC_RUNTIME_LIP_CONTEXT_H_
