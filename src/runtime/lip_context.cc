#include "src/runtime/lip_context.h"

#include <numeric>

namespace symphony {

StatusOr<KvHandle> LipContext::kv_open(std::string_view path, bool write) {
  OpenOptions options;
  options.requester = lip_;
  options.read = true;
  options.write = write;
  StatusOr<KvHandle> handle = runtime_->kvfs()->Open(path, options);
  if (handle.ok()) {
    runtime_->TrackHandle(lip_, *handle);
  }
  return handle;
}

StatusOr<KvHandle> LipContext::kv_create(std::string_view path, uint8_t mode) {
  OpenOptions options;
  options.requester = lip_;
  options.read = true;
  options.write = true;
  options.create = true;
  options.create_mode = mode;
  StatusOr<KvHandle> handle = runtime_->kvfs()->Open(path, options);
  if (handle.ok()) {
    runtime_->TrackHandle(lip_, *handle);
  }
  return handle;
}

StatusOr<KvHandle> LipContext::kv_tmp() {
  StatusOr<KvHandle> handle = runtime_->kvfs()->CreateAnonymous(lip_);
  if (handle.ok()) {
    runtime_->TrackHandle(lip_, *handle);
  }
  return handle;
}

Status LipContext::kv_close(KvHandle handle) {
  Status st = runtime_->kvfs()->Close(handle);
  if (st.ok()) {
    runtime_->UntrackHandle(lip_, handle);
  }
  return st;
}

Status LipContext::kv_remove(std::string_view path) {
  return runtime_->kvfs()->Remove(path, lip_);
}

bool LipContext::kv_exists(std::string_view path) const {
  return runtime_->kvfs()->Exists(path);
}

StatusOr<KvHandle> LipContext::kv_fork(KvHandle handle) {
  StatusOr<KvHandle> fork = runtime_->kvfs()->Fork(handle, lip_);
  if (fork.ok()) {
    runtime_->TrackHandle(lip_, *fork);
  }
  return fork;
}

StatusOr<KvHandle> LipContext::kv_extract(KvHandle handle,
                                          std::span<const uint64_t> indices) {
  StatusOr<KvHandle> extracted = runtime_->kvfs()->Extract(handle, indices, lip_);
  if (extracted.ok()) {
    runtime_->TrackHandle(lip_, *extracted);
  }
  return extracted;
}

StatusOr<KvHandle> LipContext::kv_merge(std::span<const KvHandle> handles) {
  StatusOr<KvHandle> merged = runtime_->kvfs()->Merge(handles, lip_);
  if (merged.ok()) {
    runtime_->TrackHandle(lip_, *merged);
  }
  return merged;
}

StatusOr<uint64_t> LipContext::kv_len(KvHandle handle) const {
  return runtime_->kvfs()->Length(handle);
}

StatusOr<TokenRecord> LipContext::kv_read(KvHandle handle, uint64_t index) {
  return runtime_->kvfs()->Read(handle, index);
}

Status LipContext::kv_truncate(KvHandle handle, uint64_t new_length) {
  return runtime_->kvfs()->Truncate(handle, new_length);
}

Status LipContext::kv_lock(KvHandle handle) { return runtime_->kvfs()->Lock(handle); }
Status LipContext::kv_unlock(KvHandle handle) {
  return runtime_->kvfs()->Unlock(handle);
}
Status LipContext::kv_pin(KvHandle handle) { return runtime_->kvfs()->Pin(handle); }
Status LipContext::kv_unpin(KvHandle handle) {
  return runtime_->kvfs()->Unpin(handle);
}
Status LipContext::kv_link(KvHandle handle, std::string_view path) {
  return runtime_->kvfs()->Link(handle, path);
}
Status LipContext::kv_chmod(KvHandle handle, uint8_t mode) {
  return runtime_->kvfs()->SetMode(handle, mode);
}

Status LipContext::kv_offload(KvHandle handle) {
  return runtime_->kvfs()->OffloadToHost(handle);
}

StatusOr<KvFileInfo> LipContext::kv_stat(KvHandle handle) const {
  return runtime_->kvfs()->Stat(handle);
}

std::vector<std::string> LipContext::kv_list(std::string_view prefix) const {
  std::vector<std::string> all = runtime_->kvfs()->List(prefix);
  std::vector<std::string> readable;
  for (std::string& name : all) {
    StatusOr<KvFileInfo> info = runtime_->kvfs()->StatPath(name);
    if (!info.ok()) {
      continue;
    }
    bool mine = info->owner == lip_;
    uint8_t mode = info->mode;
    if (lip_ == kAdminLip || (mine && (mode & kOwnerRead) != 0) ||
        (!mine && (mode & kOtherRead) != 0)) {
      readable.push_back(std::move(name));
    }
  }
  return readable;
}

LipContext::PredAwaitable LipContext::pred_at(KvHandle kv,
                                              std::vector<TokenId> tokens,
                                              std::vector<int32_t> positions) {
  Status early = Status::Ok();
  if (tokens.empty()) {
    early = InvalidArgumentError("pred requires at least one token");
  } else if (tokens.size() != positions.size()) {
    early = InvalidArgumentError("tokens/positions size mismatch");
  }
  return PredAwaitable(runtime_, kv, std::move(tokens), std::move(positions),
                       std::move(early));
}

LipContext::PredAwaitable LipContext::pred(KvHandle kv,
                                           std::vector<TokenId> tokens) {
  StatusOr<uint64_t> length = runtime_->kvfs()->Length(kv);
  if (!length.ok()) {
    return PredAwaitable(runtime_, kv, {}, {}, length.status());
  }
  std::vector<int32_t> positions(tokens.size());
  std::iota(positions.begin(), positions.end(), static_cast<int32_t>(*length));
  return pred_at(kv, std::move(tokens), std::move(positions));
}

LipContext::PredAwaitable LipContext::pred1(KvHandle kv, TokenId token) {
  return pred(kv, std::vector<TokenId>{token});
}

void LipContext::SleepAwaitable::await_suspend(std::coroutine_handle<> frame) {
  runtime_->SetResumePoint(frame);
  runtime_->SubmitSleep(runtime_->current_thread(), duration_);
}

}  // namespace symphony
