#include "src/runtime/runtime.h"

#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/runtime/lip_context.h"

namespace symphony {

LipRuntime::LipRuntime(Simulator* sim, Kvfs* kvfs, RuntimeOptions options)
    : sim_(sim), kvfs_(kvfs), options_(options) {
  assert(sim != nullptr);
  assert(kvfs != nullptr);
  kvfs_->set_page_quota_hook([this](LipId lip) {
    auto it = processes_.find(lip);
    return it == processes_.end() ? UINT64_MAX : it->second.quota.max_kv_pages;
  });
}

LipRuntime::~LipRuntime() {
  // Destroy any still-suspended coroutine frames (e.g. a simulation stopped
  // at a deadline with LIPs mid-flight).
  for (auto& [id, tcb] : threads_) {
    if (tcb.handle) {
      tcb.handle.destroy();
      tcb.handle = nullptr;
    }
  }
}

LipRuntime::Tcb& LipRuntime::GetTcb(ThreadId thread) {
  auto it = threads_.find(thread);
  assert(it != threads_.end());
  return it->second;
}

LipRuntime::Process& LipRuntime::GetProcess(LipId lip) {
  auto it = processes_.find(lip);
  assert(it != processes_.end());
  return it->second;
}

const LipRuntime::Process& LipRuntime::GetProcess(LipId lip) const {
  auto it = processes_.find(lip);
  assert(it != processes_.end());
  return it->second;
}

LipId LipRuntime::Launch(std::string name, LipProgram program,
                         std::function<void(LipId)> on_exit) {
  return LaunchWithSeed(std::move(name),
                        Mix64(options_.seed ^ (0x11b0000ULL + next_lip_)),
                        std::move(program), std::move(on_exit));
}

LipId LipRuntime::LaunchWithSeed(std::string name, uint64_t rng_seed,
                                 LipProgram program,
                                 std::function<void(LipId)> on_exit) {
  assert(!halted_ && "launch on a halted runtime");
  LipId lip = next_lip_++;
  Process& proc = processes_[lip];
  proc.id = lip;
  proc.name = std::move(name);
  proc.context = std::make_unique<LipContext>(this, lip);
  proc.rng = std::make_unique<Rng>(rng_seed);
  proc.rng_seed = rng_seed;
  proc.on_exit = std::move(on_exit);
  proc.launch_time = sim_->now();
  ++live_lips_;
  ++stats_.lips_launched;
  SpawnThread(lip, std::move(program));
  return lip;
}

ThreadId LipRuntime::SpawnThread(LipId lip, LipProgram program) {
  Process& proc = GetProcess(lip);
  assert(!proc.done);
  if (proc.usage.threads_spawned >= proc.quota.max_threads) {
    SYMPHONY_LOG(kDebug) << "lip " << lip << " thread quota exhausted";
    return 0;
  }
  ++proc.usage.threads_spawned;
  // Spawn path: replica-invariant thread identity for the syscall journal.
  // The root thread is "0"; a child gets parent.path + "." + spawn ordinal.
  std::string path = "0";
  if (current_ != 0) {
    auto parent = threads_.find(current_);
    if (parent != threads_.end() && parent->second.lip == lip) {
      path = parent->second.path + "." +
             std::to_string(parent->second.spawn_seq++);
    }
  }
  ThreadId tid = next_thread_++;
  Tcb& tcb = threads_[tid];
  tcb.path = std::move(path);
  tcb.id = tid;
  tcb.lip = lip;
  tcb.state = ThreadState::kBlocked;  // Ready() flips it below.
  tcb.program = std::move(program);
  Task task = tcb.program(*proc.context);
  tcb.handle = task.Release();
  tcb.resume_point = tcb.handle;
  ++proc.live_threads;
  ++stats_.threads_spawned;
  Ready(tid);
  return tid;
}

void LipRuntime::BlockCurrent() {
  assert(current_ != 0);
  GetTcb(current_).state = ThreadState::kBlocked;
}

void LipRuntime::SetResumePoint(std::coroutine_handle<> frame) {
  assert(current_ != 0);
  GetTcb(current_).resume_point = frame;
}

void LipRuntime::Ready(ThreadId thread) {
  if (halted_) {
    return;  // Replica failure: nothing resumes ever again.
  }
  Tcb& tcb = GetTcb(thread);
  if (tcb.state == ThreadState::kKilled) {
    return;  // Detached LIP: a late completion wrote its slot; drop the wake.
  }
  assert(tcb.state != ThreadState::kDone && "waking a finished thread");
  if (tcb.state == ThreadState::kReady) {
    return;  // A resume event is already pending.
  }
  tcb.state = ThreadState::kReady;
  sim_->ScheduleAfter(options_.resume_overhead,
                      [this, thread] { Resume(thread); });
}

void LipRuntime::WakeSoon(ThreadId thread) { Ready(thread); }

void LipRuntime::Resume(ThreadId thread) {
  if (halted_) {
    return;
  }
  Tcb& tcb = GetTcb(thread);
  if (tcb.state != ThreadState::kReady) {
    return;  // Stale event.
  }
  tcb.state = ThreadState::kRunning;
  ThreadId prev = current_;
  current_ = thread;
  ++stats_.context_switches;
  tcb.resume_point.resume();
  current_ = prev;
  if (tcb.handle.done()) {
    OnThreadExit(tcb);
  }
}

void LipRuntime::OnThreadExit(Tcb& tcb) {
  tcb.state = ThreadState::kDone;
  tcb.handle.destroy();
  tcb.handle = nullptr;
  tcb.program = nullptr;  // Frame destroyed; captures no longer referenced.
  for (ThreadId joiner : tcb.joiners) {
    Ready(joiner);
  }
  tcb.joiners.clear();

  Process& proc = GetProcess(tcb.lip);
  assert(proc.live_threads > 0);
  --proc.live_threads;

  // join_all waiters wake when only waiters remain alive.
  if (!proc.join_all_waiters.empty() &&
      proc.live_threads == proc.join_all_waiters.size()) {
    std::vector<ThreadId> waiters = std::move(proc.join_all_waiters);
    proc.join_all_waiters.clear();
    for (ThreadId waiter : waiters) {
      Ready(waiter);
    }
    return;
  }

  if (proc.live_threads == 0) {
    // Process exit: release kernel resources the LIP left open.
    for (KvHandle handle : proc.open_handles) {
      Status st = kvfs_->Close(handle);
      if (!st.ok()) {
        SYMPHONY_LOG(kDebug) << "lip " << proc.id
                             << " exit close failed: " << st.ToString();
      }
    }
    proc.open_handles.clear();
    proc.done = true;
    --live_lips_;
    ++stats_.lips_completed;
    if (trace_ != nullptr) {
      trace_->Span("lips", proc.name, proc.launch_time,
                   sim_->now() - proc.launch_time);
    }
    if (proc.on_exit) {
      // Run after the current dispatch completes so the callback sees a
      // settled runtime state.
      LipId lip = proc.id;
      auto callback = proc.on_exit;
      sim_->ScheduleAt(sim_->now(), [callback, lip] { callback(lip); });
    }
  }
}

bool LipRuntime::LipDone(LipId lip) const { return GetProcess(lip).done; }

void LipRuntime::SetQuota(LipId lip, LipQuota quota) {
  Process& proc = GetProcess(lip);
  proc.quota = quota;
  if (proc.journal != nullptr) {
    proc.journal->has_quota = true;
    proc.journal->quota_max_pred_tokens = quota.max_pred_tokens;
    proc.journal->quota_max_tool_calls = quota.max_tool_calls;
    proc.journal->quota_max_threads = quota.max_threads;
    proc.journal->quota_max_kv_pages = quota.max_kv_pages;
  }
}

void LipRuntime::SetDeadline(LipId lip, SimTime deadline) {
  Process& proc = GetProcess(lip);
  proc.deadline = deadline;
  proc.expired = false;
  if (proc.journal != nullptr) {
    proc.journal->has_deadline = true;
    proc.journal->deadline = deadline;
  }
  sim_->ScheduleAt(deadline,
                   [this, lip, deadline] { ExpireDeadline(lip, deadline); });
}

bool LipRuntime::DeadlineExpired(LipId lip) const {
  auto it = processes_.find(lip);
  return it != processes_.end() && it->second.expired;
}

void LipRuntime::ExpireDeadline(LipId lip, SimTime deadline) {
  if (halted_) {
    return;
  }
  auto it = processes_.find(lip);
  if (it == processes_.end()) {
    return;
  }
  Process& proc = it->second;
  // Stale event: the LIP exited, was detached, or the deadline was re-armed.
  if (proc.done || proc.expired || proc.deadline != deadline) {
    return;
  }
  proc.expired = true;
  ++stats_.deadlines_expired;
  SYMPHONY_LOG(kDebug) << "lip " << lip << " deadline expired";
  // Cancellation and KV teardown are deferred while replay is consuming the
  // journal: re-executed preds and KV operations must complete so the LIP
  // reaches its pre-failure point (FinishReplay runs the teardown then).
  if (proc.replay == nullptr || proc.replay->complete) {
    // Cancel queued/retry-pending preds so the LIP stops consuming decode
    // capacity; requests already inside a running batch drain normally.
    if (pred_service_ != nullptr) {
      pred_service_->CancelLip(lip);
    }
    // Release the LIP's KV page quota now rather than at exit — an expired
    // LIP must not hold device pages against live work.
    for (KvHandle handle : proc.open_handles) {
      (void)kvfs_->Close(handle);
    }
    proc.open_handles.clear();
  }
}

void LipRuntime::EnableJournal(LipId lip,
                               std::shared_ptr<SyscallJournal> journal) {
  assert(journal != nullptr);
  Process& proc = GetProcess(lip);
  journal->name = proc.name;
  journal->rng_seed = proc.rng_seed;
  if (proc.deadline != 0) {
    journal->has_deadline = true;
    journal->deadline = proc.deadline;
  }
  LipQuota unlimited;
  if (proc.quota.max_pred_tokens != unlimited.max_pred_tokens ||
      proc.quota.max_tool_calls != unlimited.max_tool_calls ||
      proc.quota.max_threads != unlimited.max_threads ||
      proc.quota.max_kv_pages != unlimited.max_kv_pages) {
    journal->has_quota = true;
    journal->quota_max_pred_tokens = proc.quota.max_pred_tokens;
    journal->quota_max_tool_calls = proc.quota.max_tool_calls;
    journal->quota_max_threads = proc.quota.max_threads;
    journal->quota_max_kv_pages = proc.quota.max_kv_pages;
  }
  proc.journal = std::move(journal);
}

std::shared_ptr<SyscallJournal> LipRuntime::Journal(LipId lip) const {
  auto it = processes_.find(lip);
  return it == processes_.end() ? nullptr : it->second.journal;
}

Status LipRuntime::BeginReplay(LipId lip, RecoveryMode mode,
                               const ModelConfig* config) {
  Process& proc = GetProcess(lip);
  if (proc.journal == nullptr) {
    return FailedPreconditionError("lip " + std::to_string(lip) +
                                   " has no journal attached");
  }
  if (mode == RecoveryMode::kAuto) {
    return InvalidArgumentError(
        "resolve kAuto (Replayer::Choose) before BeginReplay");
  }
  if (mode == RecoveryMode::kImportSnapshot && config == nullptr) {
    return InvalidArgumentError(
        "snapshot-import replay requires the model config");
  }
  if (proc.journal->folded_entries() > 0) {
    return FailedPreconditionError(
        "journal has a checkpoint-truncated prefix; rehydrate it from the "
        "snapshot store (RehydrateJournal) before replay");
  }
  auto replay = std::make_unique<Process::ReplayState>();
  replay->mode = mode;
  replay->config = config;
  replay->total = proc.journal->total_entries();
  replay->start = sim_->now();
  proc.replay = std::move(replay);
  ++stats_.lips_replayed;
  if (proc.replay->total == 0) {
    proc.replay->complete = true;  // Empty journal: live immediately.
  }
  return Status::Ok();
}

bool LipRuntime::ReplayActive(LipId lip) const {
  const Process& proc = GetProcess(lip);
  return proc.replay != nullptr && !proc.replay->complete;
}

void LipRuntime::Halt() {
  halted_ = true;
  if (fabric_ != nullptr) {
    fabric_->DropReplicaWaiters(replica_index_);
  }
}

Status LipRuntime::Detach(LipId lip) {
  auto pit = processes_.find(lip);
  if (pit == processes_.end()) {
    return NotFoundError("no such lip " + std::to_string(lip));
  }
  Process& proc = pit->second;
  if (proc.done) {
    return FailedPreconditionError("lip " + std::to_string(lip) +
                                   " already exited");
  }
  for (auto& entry : threads_) {
    Tcb& tcb = entry.second;
    if (tcb.lip == lip && tcb.state != ThreadState::kDone) {
      // Keep the frame allocated: an in-flight pred/tool completion may
      // still write its result slot. ~LipRuntime reclaims it.
      tcb.state = ThreadState::kKilled;
      tcb.joiners.clear();
    }
  }
  // Drop the LIP's pending channel waits so a later send is not swallowed
  // by a dead consumer.
  if (fabric_ != nullptr) {
    fabric_->DropWaiters(replica_index_, lip);
  }
  for (auto& entry : channels_) {
    Channel& ch = entry.second;
    std::deque<std::pair<ThreadId, std::string*>> kept;
    for (auto& waiter : ch.waiters) {
      auto tit = threads_.find(waiter.first);
      if (tit != threads_.end() && tit->second.lip == lip) {
        continue;
      }
      kept.push_back(waiter);
    }
    ch.waiters = std::move(kept);
  }
  for (KvHandle handle : proc.open_handles) {
    (void)kvfs_->Close(handle);
  }
  proc.open_handles.clear();
  proc.live_threads = 0;
  proc.join_all_waiters.clear();
  proc.done = true;
  --live_lips_;
  return Status::Ok();
}

const JournalEntry* LipRuntime::NextReplayEntry(Process& proc,
                                                const Tcb& tcb) {
  return proc.journal->At(tcb.path, proc.replay->cursor[tcb.path]);
}

bool LipRuntime::ReplayServes(Process& proc, const Tcb& tcb) {
  return proc.replay != nullptr && !proc.replay->complete &&
         NextReplayEntry(proc, tcb) != nullptr;
}

void LipRuntime::ConsumeReplayEntry(Process& proc, const Tcb& tcb) {
  ++proc.replay->cursor[tcb.path];
  ++proc.replay->consumed;
  if (proc.replay->consumed >= proc.replay->total) {
    FinishReplay(proc, /*diverged=*/false);
  }
}

void LipRuntime::FinishReplay(Process& proc, bool diverged) {
  if (proc.replay == nullptr || proc.replay->complete) {
    return;
  }
  proc.replay->complete = true;
  if (proc.expired && !proc.done) {
    // The deadline fired mid-replay; run the teardown ExpireDeadline deferred.
    if (pred_service_ != nullptr) {
      pred_service_->CancelLip(proc.id);
    }
    for (KvHandle handle : proc.open_handles) {
      (void)kvfs_->Close(handle);
    }
    proc.open_handles.clear();
  }
  if (trace_ != nullptr && proc.replay->total > 0) {
    trace_->Span("recovery",
                 (diverged ? std::string("replay-diverged:")
                           : std::string("replay:")) +
                     proc.name,
                 proc.replay->start, sim_->now() - proc.replay->start);
  }
}

void LipRuntime::ReplayDiverged(Process& proc, const char* what) {
  ++stats_.replay_divergences;
  SYMPHONY_LOG(kWarning) << "lip " << proc.id << " replay diverged: " << what;
  // Fall out of replay: the remaining log cannot be trusted, so the LIP
  // continues live from here (output identity is no longer guaranteed).
  FinishReplay(proc, /*diverged=*/true);
}

void LipRuntime::JournalRecvDelivery(ThreadId thread,
                                     const std::string& channel,
                                     uint64_t ordinal,
                                     const std::string& message) {
  if (halted_) {
    return;
  }
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.state == ThreadState::kKilled) {
    return;
  }
  Tcb& tcb = it->second;
  Process& proc = GetProcess(tcb.lip);
  if (proc.journal == nullptr) {
    return;
  }
  if (proc.replay != nullptr && !proc.replay->complete) {
    const JournalEntry* entry = NextReplayEntry(proc, tcb);
    if (entry != nullptr) {
      // The ordinal is deliberately not checked: it counts deliveries on the
      // channel object, which a fresh runtime restarts at zero.
      if (entry->kind != JournalEntry::Kind::kRecv ||
          entry->payload != message || entry->channel != channel) {
        ReplayDiverged(proc, "recv delivery disagrees with journal");
      } else {
        ConsumeReplayEntry(proc, tcb);
      }
      return;
    }
  }
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kRecv;
  entry.payload = message;
  entry.channel = channel;
  entry.ordinal = ordinal;
  proc.journal->Append(tcb.path, std::move(entry));
}

void LipRuntime::JournalSleepDone(ThreadId thread, SimDuration duration) {
  if (halted_) {
    return;
  }
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.state == ThreadState::kKilled) {
    return;
  }
  Process& proc = GetProcess(it->second.lip);
  if (proc.journal == nullptr) {
    return;
  }
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kSleep;
  entry.duration = duration;
  proc.journal->Append(it->second.path, std::move(entry));
}

LipUsage LipRuntime::GetUsage(LipId lip) const {
  LipUsage usage = GetProcess(lip).usage;
  usage.kv_pages = kvfs_->OwnerPageRefs(lip);
  return usage;
}

const std::string& LipRuntime::Output(LipId lip) const {
  return GetProcess(lip).output;
}

void LipRuntime::SubmitPred(ThreadId thread, KvHandle kv,
                            std::vector<TokenId> tokens,
                            std::vector<int32_t> positions, PredResult* result) {
  BlockCurrent();
  ++stats_.preds_submitted;
  if (pred_service_ == nullptr) {
    result->status = FailedPreconditionError("no inference service attached");
    Ready(thread);
    return;
  }
  Tcb& tcb = GetTcb(thread);
  Process& proc = GetProcess(tcb.lip);
  // Expired deadline fails fast — before the quota charge, matching a live
  // run where the rejection short-circuits. Suppressed while the journal
  // still serves this thread: the original run's pre-expiry syscalls must
  // replay even though replay's compressed timeline is past the deadline.
  if (proc.expired && !ReplayServes(proc, tcb)) {
    ++stats_.deadline_rejections;
    result->status = DeadlineExceededError("deadline expired for lip " +
                                           std::to_string(proc.id));
    Ready(thread);
    return;
  }
  // Quota is charged before the journal is consulted, on purpose: replayed
  // re-execution then rebuilds the exact pre-failure LipUsage, and a quota
  // error reproduces without ever having been journaled.
  if (proc.usage.pred_tokens + tokens.size() > proc.quota.max_pred_tokens) {
    result->status = QuotaExceededError("pred token quota exhausted for lip " +
                                        std::to_string(proc.id));
    Ready(thread);
    return;
  }
  proc.usage.pred_tokens += tokens.size();

  bool from_journal = false;   // Recompute replay: resubmit, verify, no record.
  size_t verify_index = 0;
  if (proc.replay != nullptr && !proc.replay->complete) {
    const JournalEntry* entry = NextReplayEntry(proc, tcb);
    if (entry != nullptr) {
      if (entry->kind != JournalEntry::Kind::kPred) {
        ReplayDiverged(proc, "pred where journal has a different syscall");
      } else if (proc.replay->mode == RecoveryMode::kImportSnapshot) {
        // Feed the journaled result without touching the device; import the
        // journaled TokenRecords into the KV file on the host tier so the
        // next live pred's restore pays PCIe transfer instead of recompute.
        ++stats_.preds_replayed;
        stats_.replay_tokens_imported += entry->tokens.size();
        result->status = entry->status;
        if (entry->status.ok()) {
          std::vector<TokenRecord> records;
          records.reserve(entry->tokens.size());
          for (size_t i = 0; i < entry->tokens.size(); ++i) {
            records.push_back(
                {entry->tokens[i], entry->positions[i], entry->states[i]});
          }
          Status imported = kvfs_->ImportRecords(kv, records, Tier::kHost);
          if (!imported.ok()) {
            result->status = imported;
          } else {
            result->dists.reserve(entry->states.size());
            for (uint64_t state : entry->states) {
              result->dists.emplace_back(state, proc.replay->config);
            }
          }
        }
        ConsumeReplayEntry(proc, tcb);
        Ready(thread);
        return;
      } else if (!entry->status.ok()) {
        // kRecompute with a journaled failure (cancelled pred, deadline
        // rejection delivered through the service): resubmitting could
        // succeed live and diverge — serve the recorded status verbatim.
        ++stats_.preds_replayed;
        result->status = entry->status;
        ConsumeReplayEntry(proc, tcb);
        Ready(thread);
        return;
      } else {
        // kRecompute: fall through to a live submit so the device rebuilds
        // the KV cache; completion checks it reproduced the journaled states.
        from_journal = true;
        verify_index = proc.replay->cursor[tcb.path];
        ++stats_.preds_replayed;
        stats_.replay_tokens_recomputed += entry->tokens.size();
        ConsumeReplayEntry(proc, tcb);
      }
    }
  }

  PredRequest request;
  request.lip = tcb.lip;
  request.thread = thread;
  request.kv = kv;
  request.tokens = std::move(tokens);
  request.positions = std::move(positions);
  request.submit_time = sim_->now();
  std::shared_ptr<SyscallJournal> journal = proc.journal;
  bool record = journal != nullptr && !from_journal;
  std::vector<TokenId> rec_tokens;
  std::vector<int32_t> rec_positions;
  if (record) {
    rec_tokens = request.tokens;
    rec_positions = request.positions;
  }
  request.complete = [this, thread, result, journal, record, from_journal,
                      verify_index, path = tcb.path,
                      rec_tokens = std::move(rec_tokens),
                      rec_positions = std::move(rec_positions)](
                         PredResult r) mutable {
    auto it = threads_.find(thread);
    bool dead = halted_ || it == threads_.end() ||
                it->second.state == ThreadState::kKilled;
    if (!dead) {
      // A pred that was in flight at deadline expiry can fail for a teardown
      // reason (its KV handle was closed); attribute that to the deadline.
      // Normalized before journaling so replay serves the same status.
      Process& owner = GetProcess(it->second.lip);
      if (owner.expired && !r.status.ok() &&
          r.status.code() != StatusCode::kDeadlineExceeded) {
        r.status = DeadlineExceededError("deadline expired for lip " +
                                         std::to_string(owner.id));
      }
    }
    if (!dead && record) {
      JournalEntry entry;
      entry.kind = JournalEntry::Kind::kPred;
      entry.status = r.status;
      entry.tokens = std::move(rec_tokens);
      entry.positions = std::move(rec_positions);
      entry.states.reserve(r.dists.size());
      for (const Distribution& d : r.dists) {
        entry.states.push_back(d.state());
      }
      journal->Append(path, std::move(entry));
    } else if (!dead && from_journal) {
      const JournalEntry* expect = journal->At(path, verify_index);
      if (expect == nullptr && journal->FoldedAt(path, verify_index)) {
        // The entry was folded into a store checkpoint while this recompute
        // was in flight; its states are durable there, nothing to verify.
        *result = std::move(r);
        Ready(thread);
        return;
      }
      bool match = expect != nullptr &&
                   r.status.code() == expect->status.code() &&
                   r.dists.size() == expect->states.size();
      if (match) {
        for (size_t i = 0; i < r.dists.size(); ++i) {
          if (r.dists[i].state() != expect->states[i]) {
            match = false;
            break;
          }
        }
      }
      if (!match) {
        ++stats_.replay_divergences;
        SYMPHONY_LOG(kWarning)
            << "recomputed pred diverged from journal (thread path " << path
            << ", entry " << verify_index << ")";
      }
    }
    *result = std::move(r);
    Ready(thread);
  };
  pred_service_->Submit(std::move(request));
}

void LipRuntime::SubmitTool(ThreadId thread, const std::string& tool,
                            const std::string& args, ToolResult* result) {
  BlockCurrent();
  ++stats_.tools_invoked;
  if (tool_service_ == nullptr) {
    result->status = FailedPreconditionError("no tool service attached");
    Ready(thread);
    return;
  }
  Tcb& tcb = GetTcb(thread);
  LipId lip = tcb.lip;
  Process& proc = GetProcess(lip);
  if (proc.expired && !ReplayServes(proc, tcb)) {
    ++stats_.deadline_rejections;
    result->status =
        DeadlineExceededError("deadline expired for lip " + std::to_string(lip));
    Ready(thread);
    return;
  }
  if (proc.usage.tool_calls >= proc.quota.max_tool_calls) {
    result->status = QuotaExceededError("tool call quota exhausted for lip " +
                                        std::to_string(lip));
    Ready(thread);
    return;
  }
  ++proc.usage.tool_calls;
  if (proc.replay != nullptr && !proc.replay->complete) {
    const JournalEntry* entry = NextReplayEntry(proc, tcb);
    if (entry != nullptr) {
      if (entry->kind != JournalEntry::Kind::kTool) {
        ReplayDiverged(proc, "tool where journal has a different syscall");
      } else {
        // Side-effect-free tools re-serve the recorded output instantly.
        ++stats_.tools_replayed;
        result->status = entry->status;
        result->output = entry->payload;
        ConsumeReplayEntry(proc, tcb);
        Ready(thread);
        return;
      }
    }
  }
  std::shared_ptr<SyscallJournal> journal = proc.journal;
  tool_service_->Invoke(
      lip, thread, tool, args,
      [this, thread, result, journal, path = tcb.path](ToolResult r) {
        auto it = threads_.find(thread);
        bool dead = halted_ || it == threads_.end() ||
                    it->second.state == ThreadState::kKilled;
        if (journal != nullptr && !dead) {
          JournalEntry entry;
          entry.kind = JournalEntry::Kind::kTool;
          entry.status = r.status;
          entry.payload = r.output;
          journal->Append(path, std::move(entry));
        }
        *result = std::move(r);
        Ready(thread);
      });
}

void LipRuntime::SubmitSleep(ThreadId thread, SimDuration duration) {
  BlockCurrent();
  Tcb& tcb = GetTcb(thread);
  Process& proc = GetProcess(tcb.lip);
  if (proc.replay != nullptr && !proc.replay->complete) {
    const JournalEntry* entry = NextReplayEntry(proc, tcb);
    if (entry != nullptr) {
      if (entry->kind != JournalEntry::Kind::kSleep) {
        ReplayDiverged(proc, "sleep where journal has a different syscall");
      } else {
        // The original run already waited this out; skip the wait.
        ++stats_.sleeps_replayed;
        ConsumeReplayEntry(proc, tcb);
        Ready(thread);
        return;
      }
    }
  }
  sim_->ScheduleAfter(duration, [this, thread, duration] {
    JournalSleepDone(thread, duration);
    Ready(thread);
  });
}

bool LipRuntime::ThreadDone(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it == threads_.end() || it->second.state == ThreadState::kDone;
}

void LipRuntime::AddJoiner(ThreadId target, ThreadId waiter) {
  auto it = threads_.find(target);
  if (it == threads_.end() || it->second.state == ThreadState::kDone) {
    Ready(waiter);
    return;
  }
  it->second.joiners.push_back(waiter);
}

void LipRuntime::AddJoinAllWaiter(LipId lip, ThreadId waiter) {
  Process& proc = GetProcess(lip);
  proc.join_all_waiters.push_back(waiter);
  if (proc.live_threads == proc.join_all_waiters.size()) {
    std::vector<ThreadId> waiters = std::move(proc.join_all_waiters);
    proc.join_all_waiters.clear();
    for (ThreadId w : waiters) {
      Ready(w);
    }
  }
}

bool LipRuntime::ChannelTrySend(const std::string& channel,
                                std::string* message) {
  if (fabric_ != nullptr) {
    LipId sender = kNoLip;
    if (current_ != 0) {
      Tcb& tcb = GetTcb(current_);
      sender = tcb.lip;
      Process& proc = GetProcess(tcb.lip);
      if (proc.replay != nullptr && !proc.replay->complete) {
        const JournalEntry* entry = NextReplayEntry(proc, tcb);
        if (entry != nullptr &&
            entry->kind == JournalEntry::Kind::kCreditWait &&
            entry->channel == channel) {
          // The original send parked for a credit granted at this ordinal.
          // Remember it so this thread's first LIVE blocked send re-parks at
          // its original sender-FIFO position, then consume the kSend that
          // the grant completed (next entry, same syscall).
          tcb.replay_send_resume[channel] = entry->ordinal + 1;
          ++stats_.ipc_credit_waits_replayed;
          ConsumeReplayEntry(proc, tcb);
          entry = NextReplayEntry(proc, tcb);
        }
        if (entry != nullptr) {
          if (entry->kind == JournalEntry::Kind::kSend &&
              entry->channel == channel && entry->payload == *message) {
            // The original send already reached (or is queued for) the peer;
            // re-sending would duplicate it at a live endpoint. No credit is
            // consumed: the original message's credit travels with it.
            ++stats_.ipc_sends_suppressed;
            ++stats_.ipc_messages;
            ConsumeReplayEntry(proc, tcb);
            return true;
          }
          ReplayDiverged(proc, "send disagrees with journal");
          // Fall through live: the message is new as far as anyone knows.
        }
      }
    }
    // TrySend consumes *message on success, so capture the payload for the
    // journal first (the original code paid the same copy).
    std::string payload;
    bool journal = false;
    if (current_ != 0 && GetProcess(GetTcb(current_).lip).journal != nullptr) {
      journal = true;
      payload = *message;
    }
    if (!fabric_->TrySend(replica_index_, sender, channel, message)) {
      return false;  // Out of credits: park; journaling happens at grant.
    }
    ++stats_.ipc_messages;
    if (current_ != 0) {
      // Re-fetch: TrySend can drain deliveries that touch thread state.
      Tcb& tcb = GetTcb(current_);
      tcb.replay_send_resume.erase(channel);  // Completed live: hint stale.
      if (journal) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::kSend;
        entry.channel = channel;
        entry.payload = std::move(payload);
        GetProcess(tcb.lip).journal->Append(tcb.path, std::move(entry));
      }
    }
    return true;
  }
  ++stats_.ipc_messages;
  Channel& ch = channels_[channel];
  if (!ch.waiters.empty()) {
    auto [waiter, slot] = ch.waiters.front();
    ch.waiters.pop_front();
    *slot = std::move(*message);
    JournalRecvDelivery(waiter, channel, ch.next_ordinal++, *slot);
    Ready(waiter);
    return true;
  }
  ch.messages.push_back(std::move(*message));
  return true;
}

void LipRuntime::ChannelAddSendWaiter(const std::string& channel,
                                      ThreadId waiter, std::string* slot) {
  ++stats_.ipc_sends_blocked;
  LipId sender = kNoLip;
  uint64_t resume_grant = 0;
  if (current_ != 0) {
    Tcb& tcb = GetTcb(waiter);
    sender = tcb.lip;
    auto hint = tcb.replay_send_resume.find(channel);
    if (hint != tcb.replay_send_resume.end()) {
      resume_grant = hint->second;  // One-shot: first re-park only.
      tcb.replay_send_resume.erase(hint);
    }
  }
  fabric_->AddSendWaiter(replica_index_, sender, channel, waiter, slot,
                         resume_grant);
}

bool LipRuntime::CompleteBlockedSend(ThreadId thread, std::string* slot,
                                     const std::string& channel,
                                     uint64_t grant_ordinal,
                                     std::string* bytes) {
  if (halted_) {
    return false;
  }
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.state == ThreadState::kKilled ||
      it->second.state == ThreadState::kDone) {
    return false;
  }
  Tcb& tcb = it->second;
  Process& proc = GetProcess(tcb.lip);
  if (proc.journal != nullptr) {
    // Journal grant + send in consumption order, at the syscall boundary:
    // replay consumes the kCreditWait (re-park hint) then the kSend
    // (suppressed) without ever touching the live fabric.
    JournalEntry wait;
    wait.kind = JournalEntry::Kind::kCreditWait;
    wait.channel = channel;
    wait.ordinal = grant_ordinal;
    proc.journal->Append(tcb.path, std::move(wait));
    JournalEntry send;
    send.kind = JournalEntry::Kind::kSend;
    send.channel = channel;
    send.payload = *slot;
    proc.journal->Append(tcb.path, std::move(send));
  }
  ++stats_.ipc_messages;
  ++stats_.ipc_credit_grants;
  *bytes = std::move(*slot);
  Ready(thread);
  return true;
}

bool LipRuntime::ChannelTryRecv(const std::string& channel, std::string* message) {
  if (fabric_ != nullptr) {
    LipId receiver = kNoLip;
    if (current_ != 0) {
      Tcb& tcb = GetTcb(current_);
      receiver = tcb.lip;
      Process& proc = GetProcess(tcb.lip);
      if (proc.replay != nullptr && !proc.replay->complete) {
        const JournalEntry* entry = NextReplayEntry(proc, tcb);
        if (entry != nullptr) {
          if (entry->kind == JournalEntry::Kind::kRecv &&
              entry->channel == channel) {
            // Serve the delivery verbatim — the fabric's copy was consumed
            // by the original incarnation (tool-result discipline). Remember
            // the ordinal: when this thread's journal runs dry mid-wait, the
            // fabric uses it to re-park the thread in its original queue
            // position among this LIP's other waiters.
            *message = entry->payload;
            tcb.replay_recv_resume[channel] = entry->ordinal + 1;
            ++stats_.ipc_recvs_replayed;
            ConsumeReplayEntry(proc, tcb);
            return true;
          }
          // Per-thread logs are ordered, so the original run's next
          // completed syscall was this recv; anything else is divergence.
          // Fall through to a live receive afterwards.
          ReplayDiverged(proc, "recv where journal has a different syscall");
        }
      }
    }
    uint64_t ordinal = 0;
    if (!fabric_->TryRecv(replica_index_, receiver, channel, message,
                          &ordinal)) {
      return false;
    }
    if (current_ != 0) {
      // Live delivery: any replay re-park hint is now stale.
      GetTcb(current_).replay_recv_resume.erase(channel);
      JournalRecvDelivery(current_, channel, ordinal, *message);
    }
    return true;
  }
  auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.messages.empty()) {
    return false;
  }
  *message = std::move(it->second.messages.front());
  it->second.messages.pop_front();
  if (current_ != 0) {
    JournalRecvDelivery(current_, channel, it->second.next_ordinal++, *message);
  }
  return true;
}

void LipRuntime::ChannelAddWaiter(const std::string& channel, ThreadId waiter,
                                  std::string* slot) {
  if (fabric_ != nullptr) {
    LipId receiver = kNoLip;
    uint64_t resume_ordinal = 0;
    if (current_ != 0) {
      Tcb& tcb = GetTcb(waiter);
      receiver = tcb.lip;
      auto hint = tcb.replay_recv_resume.find(channel);
      if (hint != tcb.replay_recv_resume.end()) {
        resume_ordinal = hint->second;  // One-shot: first re-park only.
        tcb.replay_recv_resume.erase(hint);
      }
    }
    fabric_->AddWaiter(replica_index_, receiver, channel, waiter, slot,
                       resume_ordinal);
    return;
  }
  channels_[channel].waiters.emplace_back(waiter, slot);
}

bool LipRuntime::DeliverToWaiter(ThreadId thread, std::string* slot,
                                 const std::string& channel, uint64_t ordinal,
                                 const std::string& message) {
  if (halted_) {
    return false;
  }
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.state == ThreadState::kKilled ||
      it->second.state == ThreadState::kDone) {
    return false;
  }
  *slot = message;
  JournalRecvDelivery(thread, channel, ordinal, *slot);
  Ready(thread);
  return true;
}

void LipRuntime::Emit(LipId lip, std::string_view text) {
  GetProcess(lip).output.append(text);
}

Rng& LipRuntime::LipRng(LipId lip) { return *GetProcess(lip).rng; }

void LipRuntime::TrackHandle(LipId lip, KvHandle handle) {
  GetProcess(lip).open_handles.push_back(handle);
}

void LipRuntime::UntrackHandle(LipId lip, KvHandle handle) {
  auto& handles = GetProcess(lip).open_handles;
  for (size_t i = 0; i < handles.size(); ++i) {
    if (handles[i].slot == handle.slot && handles[i].generation == handle.generation) {
      handles[i] = handles.back();
      handles.pop_back();
      return;
    }
  }
}

}  // namespace symphony
