#include "src/runtime/runtime.h"

#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/runtime/lip_context.h"

namespace symphony {

LipRuntime::LipRuntime(Simulator* sim, Kvfs* kvfs, RuntimeOptions options)
    : sim_(sim), kvfs_(kvfs), options_(options) {
  assert(sim != nullptr);
  assert(kvfs != nullptr);
  kvfs_->set_page_quota_hook([this](LipId lip) {
    auto it = processes_.find(lip);
    return it == processes_.end() ? UINT64_MAX : it->second.quota.max_kv_pages;
  });
}

LipRuntime::~LipRuntime() {
  // Destroy any still-suspended coroutine frames (e.g. a simulation stopped
  // at a deadline with LIPs mid-flight).
  for (auto& [id, tcb] : threads_) {
    if (tcb.handle) {
      tcb.handle.destroy();
      tcb.handle = nullptr;
    }
  }
}

LipRuntime::Tcb& LipRuntime::GetTcb(ThreadId thread) {
  auto it = threads_.find(thread);
  assert(it != threads_.end());
  return it->second;
}

LipRuntime::Process& LipRuntime::GetProcess(LipId lip) {
  auto it = processes_.find(lip);
  assert(it != processes_.end());
  return it->second;
}

const LipRuntime::Process& LipRuntime::GetProcess(LipId lip) const {
  auto it = processes_.find(lip);
  assert(it != processes_.end());
  return it->second;
}

LipId LipRuntime::Launch(std::string name, LipProgram program,
                         std::function<void(LipId)> on_exit) {
  LipId lip = next_lip_++;
  Process& proc = processes_[lip];
  proc.id = lip;
  proc.name = std::move(name);
  proc.context = std::make_unique<LipContext>(this, lip);
  proc.rng = std::make_unique<Rng>(Mix64(options_.seed ^ (0x11b0000ULL + lip)));
  proc.on_exit = std::move(on_exit);
  proc.launch_time = sim_->now();
  ++live_lips_;
  ++stats_.lips_launched;
  SpawnThread(lip, std::move(program));
  return lip;
}

ThreadId LipRuntime::SpawnThread(LipId lip, LipProgram program) {
  Process& proc = GetProcess(lip);
  assert(!proc.done);
  if (proc.usage.threads_spawned >= proc.quota.max_threads) {
    SYMPHONY_LOG(kDebug) << "lip " << lip << " thread quota exhausted";
    return 0;
  }
  ++proc.usage.threads_spawned;
  ThreadId tid = next_thread_++;
  Tcb& tcb = threads_[tid];
  tcb.id = tid;
  tcb.lip = lip;
  tcb.state = ThreadState::kBlocked;  // Ready() flips it below.
  tcb.program = std::move(program);
  Task task = tcb.program(*proc.context);
  tcb.handle = task.Release();
  tcb.resume_point = tcb.handle;
  ++proc.live_threads;
  ++stats_.threads_spawned;
  Ready(tid);
  return tid;
}

void LipRuntime::BlockCurrent() {
  assert(current_ != 0);
  GetTcb(current_).state = ThreadState::kBlocked;
}

void LipRuntime::SetResumePoint(std::coroutine_handle<> frame) {
  assert(current_ != 0);
  GetTcb(current_).resume_point = frame;
}

void LipRuntime::Ready(ThreadId thread) {
  Tcb& tcb = GetTcb(thread);
  assert(tcb.state != ThreadState::kDone && "waking a finished thread");
  if (tcb.state == ThreadState::kReady) {
    return;  // A resume event is already pending.
  }
  tcb.state = ThreadState::kReady;
  sim_->ScheduleAfter(options_.resume_overhead,
                      [this, thread] { Resume(thread); });
}

void LipRuntime::WakeSoon(ThreadId thread) { Ready(thread); }

void LipRuntime::Resume(ThreadId thread) {
  Tcb& tcb = GetTcb(thread);
  if (tcb.state != ThreadState::kReady) {
    return;  // Stale event.
  }
  tcb.state = ThreadState::kRunning;
  ThreadId prev = current_;
  current_ = thread;
  ++stats_.context_switches;
  tcb.resume_point.resume();
  current_ = prev;
  if (tcb.handle.done()) {
    OnThreadExit(tcb);
  }
}

void LipRuntime::OnThreadExit(Tcb& tcb) {
  tcb.state = ThreadState::kDone;
  tcb.handle.destroy();
  tcb.handle = nullptr;
  tcb.program = nullptr;  // Frame destroyed; captures no longer referenced.
  for (ThreadId joiner : tcb.joiners) {
    Ready(joiner);
  }
  tcb.joiners.clear();

  Process& proc = GetProcess(tcb.lip);
  assert(proc.live_threads > 0);
  --proc.live_threads;

  // join_all waiters wake when only waiters remain alive.
  if (!proc.join_all_waiters.empty() &&
      proc.live_threads == proc.join_all_waiters.size()) {
    std::vector<ThreadId> waiters = std::move(proc.join_all_waiters);
    proc.join_all_waiters.clear();
    for (ThreadId waiter : waiters) {
      Ready(waiter);
    }
    return;
  }

  if (proc.live_threads == 0) {
    // Process exit: release kernel resources the LIP left open.
    for (KvHandle handle : proc.open_handles) {
      Status st = kvfs_->Close(handle);
      if (!st.ok()) {
        SYMPHONY_LOG(kDebug) << "lip " << proc.id
                             << " exit close failed: " << st.ToString();
      }
    }
    proc.open_handles.clear();
    proc.done = true;
    --live_lips_;
    ++stats_.lips_completed;
    if (trace_ != nullptr) {
      trace_->Span("lips", proc.name, proc.launch_time,
                   sim_->now() - proc.launch_time);
    }
    if (proc.on_exit) {
      // Run after the current dispatch completes so the callback sees a
      // settled runtime state.
      LipId lip = proc.id;
      auto callback = proc.on_exit;
      sim_->ScheduleAt(sim_->now(), [callback, lip] { callback(lip); });
    }
  }
}

bool LipRuntime::LipDone(LipId lip) const { return GetProcess(lip).done; }

void LipRuntime::SetQuota(LipId lip, LipQuota quota) {
  GetProcess(lip).quota = quota;
}

LipUsage LipRuntime::GetUsage(LipId lip) const {
  LipUsage usage = GetProcess(lip).usage;
  usage.kv_pages = kvfs_->OwnerPageRefs(lip);
  return usage;
}

const std::string& LipRuntime::Output(LipId lip) const {
  return GetProcess(lip).output;
}

void LipRuntime::SubmitPred(ThreadId thread, KvHandle kv,
                            std::vector<TokenId> tokens,
                            std::vector<int32_t> positions, PredResult* result) {
  BlockCurrent();
  ++stats_.preds_submitted;
  if (pred_service_ == nullptr) {
    result->status = FailedPreconditionError("no inference service attached");
    Ready(thread);
    return;
  }
  Process& proc = GetProcess(GetTcb(thread).lip);
  if (proc.usage.pred_tokens + tokens.size() > proc.quota.max_pred_tokens) {
    result->status = QuotaExceededError("pred token quota exhausted for lip " +
                                        std::to_string(proc.id));
    Ready(thread);
    return;
  }
  proc.usage.pred_tokens += tokens.size();
  PredRequest request;
  request.lip = GetTcb(thread).lip;
  request.thread = thread;
  request.kv = kv;
  request.tokens = std::move(tokens);
  request.positions = std::move(positions);
  request.submit_time = sim_->now();
  request.complete = [this, thread, result](PredResult r) {
    *result = std::move(r);
    Ready(thread);
  };
  pred_service_->Submit(std::move(request));
}

void LipRuntime::SubmitTool(ThreadId thread, const std::string& tool,
                            const std::string& args, ToolResult* result) {
  BlockCurrent();
  ++stats_.tools_invoked;
  if (tool_service_ == nullptr) {
    result->status = FailedPreconditionError("no tool service attached");
    Ready(thread);
    return;
  }
  LipId lip = GetTcb(thread).lip;
  Process& proc = GetProcess(lip);
  if (proc.usage.tool_calls >= proc.quota.max_tool_calls) {
    result->status = QuotaExceededError("tool call quota exhausted for lip " +
                                        std::to_string(lip));
    Ready(thread);
    return;
  }
  ++proc.usage.tool_calls;
  tool_service_->Invoke(lip, thread, tool, args,
                        [this, thread, result](ToolResult r) {
                          *result = std::move(r);
                          Ready(thread);
                        });
}

bool LipRuntime::ThreadDone(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it == threads_.end() || it->second.state == ThreadState::kDone;
}

void LipRuntime::AddJoiner(ThreadId target, ThreadId waiter) {
  auto it = threads_.find(target);
  if (it == threads_.end() || it->second.state == ThreadState::kDone) {
    Ready(waiter);
    return;
  }
  it->second.joiners.push_back(waiter);
}

void LipRuntime::AddJoinAllWaiter(LipId lip, ThreadId waiter) {
  Process& proc = GetProcess(lip);
  proc.join_all_waiters.push_back(waiter);
  if (proc.live_threads == proc.join_all_waiters.size()) {
    std::vector<ThreadId> waiters = std::move(proc.join_all_waiters);
    proc.join_all_waiters.clear();
    for (ThreadId w : waiters) {
      Ready(w);
    }
  }
}

void LipRuntime::ChannelSend(const std::string& channel, std::string message) {
  ++stats_.ipc_messages;
  Channel& ch = channels_[channel];
  if (!ch.waiters.empty()) {
    auto [waiter, slot] = ch.waiters.front();
    ch.waiters.pop_front();
    *slot = std::move(message);
    Ready(waiter);
    return;
  }
  ch.messages.push_back(std::move(message));
}

bool LipRuntime::ChannelTryRecv(const std::string& channel, std::string* message) {
  auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.messages.empty()) {
    return false;
  }
  *message = std::move(it->second.messages.front());
  it->second.messages.pop_front();
  return true;
}

void LipRuntime::ChannelAddWaiter(const std::string& channel, ThreadId waiter,
                                  std::string* slot) {
  channels_[channel].waiters.emplace_back(waiter, slot);
}

void LipRuntime::Emit(LipId lip, std::string_view text) {
  GetProcess(lip).output.append(text);
}

Rng& LipRuntime::LipRng(LipId lip) { return *GetProcess(lip).rng; }

void LipRuntime::TrackHandle(LipId lip, KvHandle handle) {
  GetProcess(lip).open_handles.push_back(handle);
}

void LipRuntime::UntrackHandle(LipId lip, KvHandle handle) {
  auto& handles = GetProcess(lip).open_handles;
  for (size_t i = 0; i < handles.size(); ++i) {
    if (handles[i].slot == handle.slot && handles[i].generation == handle.generation) {
      handles[i] = handles.back();
      handles.pop_back();
      return;
    }
  }
}

}  // namespace symphony
