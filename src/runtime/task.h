// Coroutine task type for LIP threads and their subroutines.
//
// A LIP thread is a tree of coroutines rooted at one top-level Task. The
// paper frames LIP threads as POSIX threads; Symphony's simulation realizes
// them as coroutines driven by the thread scheduler (the paper's §6
// explicitly blesses coroutine runtimes as an alternative realization).
//
// Tasks never run eagerly: initial_suspend is suspend_always, so either the
// scheduler (top-level) or a co_await (subroutine) controls the first resume.
// A Task is itself awaitable: `co_await SomeTaskReturningFn(...)` starts the
// child by symmetric transfer and resumes the parent when the child's
// final_suspend fires. A top-level Task has no continuation; its final
// suspend parks the frame so the runtime can observe handle.done() and reap.
#ifndef SRC_RUNTIME_TASK_H_
#define SRC_RUNTIME_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

namespace symphony {

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        std::coroutine_handle<> continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    // Symphony is exception-free by policy; an escaping exception in a LIP is
    // a programming error, not a recoverable condition.
    void unhandled_exception() { std::abort(); }

    // Parent coroutine to resume when this task completes (null at top level).
    std::coroutine_handle<> continuation;
  };

  // Awaitable interface: start the child, resume the parent on completion.
  bool await_ready() const { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // Symmetric transfer into the child.
  }
  void await_resume() {}

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  bool valid() const { return handle_ != nullptr; }

  // Transfers frame ownership to the caller (the runtime's TCB).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

// A value-returning awaitable subroutine: `T v = co_await SomeValueTask(...)`.
// Unlike Task, a ValueTask cannot be a thread's top-level coroutine — it is
// always awaited by a parent, which it resumes on completion by symmetric
// transfer. Used by the LIP standard library (src/liplib) to compose
// generation strategies out of smaller pieces.
template <typename T>
class ValueTask {
 public:
  struct promise_type {
    ValueTask get_return_object() {
      return ValueTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        return handle.promise().continuation;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { std::abort(); }

    std::coroutine_handle<> continuation;
    std::optional<T> value;
  };

  ValueTask() = default;
  explicit ValueTask(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  ValueTask(const ValueTask&) = delete;
  ValueTask& operator=(const ValueTask&) = delete;
  ValueTask(ValueTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  ValueTask& operator=(ValueTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~ValueTask() { Destroy(); }

  bool await_ready() const { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace symphony

#endif  // SRC_RUNTIME_TASK_H_
