// The LIP runtime: processes, threads, and the thread-level scheduler.
//
// LipRuntime plays the role of the OS process layer in the paper's design
// (§4.3): a LIP is a process with one or more threads; threads block on
// system calls (pred, tool I/O, IPC, sleep) and are resumed by the thread
// scheduler in virtual time. The batch inference scheduler is a separate
// component behind the PredService interface — together they form the
// two-level scheduling scheme of §4.4.
#ifndef SRC_RUNTIME_RUNTIME_H_
#define SRC_RUNTIME_RUNTIME_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/kvfs/kvfs.h"
#include "src/model/model_config.h"
#include "src/model/tokenizer.h"
#include "src/recovery/journal.h"
#include "src/runtime/pred_service.h"
#include "src/runtime/task.h"
#include "src/sim/event_queue.h"
#include "src/sim/trace.h"

namespace symphony {

class LipContext;
using LipProgram = std::function<Task(LipContext&)>;

// Cluster IPC fabric interface (implemented by src/net's IpcFabric; the
// runtime sees only this so the dependency arrow stays net -> runtime).
// When attached, the runtime's channel syscalls delegate here and named
// channels become cluster-wide: a channel's home is the replica+LIP that
// receives on it, sends from other replicas traverse a simulated link, and
// delivery is journaled at the receiving LIP's syscall boundary (per-channel
// receive ordinals) so one endpoint of a pair can be killed and replayed
// while the other keeps running live. Without a fabric the legacy in-runtime
// channels (re-execution replay discipline) are used unchanged.
class ChannelFabric {
 public:
  virtual ~ChannelFabric() = default;
  // Attempts to accept a message from `sender` on `replica`. Returns true
  // and consumes *message when the channel has a credit (or is unbounded);
  // returns false — leaving *message intact — when the channel is out of
  // credits or other senders are already parked (FIFO: a fresh send never
  // overtakes them), in which case the caller parks via AddSendWaiter.
  // Delivery failures after acceptance (partition past the deadline) surface
  // through channel state and counters, never to the sender.
  virtual bool TrySend(size_t replica, LipId sender, const std::string& channel,
                       std::string* message) = 0;
  // Parks `waiter` (FIFO among blocked senders) until a credit frees, at
  // which point the fabric calls LipRuntime::CompleteBlockedSend to take the
  // message out of `slot`. `resume_grant` is 0 for a live park; a replayed
  // thread whose last journal-served credit wait on this channel had grant
  // ordinal g passes g+1 and the fabric slots it among its LIP's parked
  // senders in grant order — the sender-side mirror of AddWaiter's
  // resume_ordinal, reconstructing the original run's sender FIFO so
  // blocked-sender wakeup order stays bit-identical.
  virtual void AddSendWaiter(size_t replica, LipId sender,
                             const std::string& channel, ThreadId waiter,
                             std::string* slot, uint64_t resume_grant) = 0;
  // Non-blocking receive by `receiver` on `replica`; registers (or re-homes)
  // the channel's endpoint. On success fills `message` and the delivery
  // `ordinal`.
  virtual bool TryRecv(size_t replica, LipId receiver,
                       const std::string& channel, std::string* message,
                       uint64_t* ordinal) = 0;
  // Blocks `waiter` (FIFO among waiters) until a message is delivered via
  // LipRuntime::DeliverToWaiter. Registers the endpoint like TryRecv.
  // `resume_ordinal` is 0 for a live wait; a replayed thread whose last
  // journal-served recv on this channel had delivery ordinal k passes k+1,
  // and the fabric slots it among its LIP's waiters in ordinal order — that
  // reconstructs the original run's waiter queue, which is runtime state the
  // journal does not otherwise capture (multi-waiter FIFO bit-identity).
  virtual void AddWaiter(size_t replica, LipId receiver,
                         const std::string& channel, ThreadId waiter,
                         std::string* slot, uint64_t resume_ordinal) = 0;
  // Scrubs pending waits (receivers AND parked senders) of one detached LIP
  // / a whole halted replica so a later send is not swallowed by a dead
  // consumer and a freed credit is not granted to a dead sender.
  virtual void DropWaiters(size_t replica, LipId lip) = 0;
  virtual void DropReplicaWaiters(size_t replica) = 0;
};

enum class ThreadState : uint8_t {
  kReady,
  kRunning,
  kBlocked,
  kDone,
  // Forcibly detached (LIP migrated away). The coroutine frame is kept
  // allocated — in-flight completions may still write their result slots —
  // but the thread never resumes; ~LipRuntime reclaims the frame.
  kKilled,
};

struct RuntimeOptions {
  // CPU cost charged per thread resume (context switch).
  SimDuration resume_overhead = Micros(2);
  uint64_t seed = 42;
};

// Per-LIP resource limits (paper §6: "resource accounting" for untrusted
// programs). Defaults are unlimited; the admin LIP is never limited.
struct LipQuota {
  uint64_t max_pred_tokens = UINT64_MAX;  // Total tokens across all preds.
  uint64_t max_tool_calls = UINT64_MAX;
  uint32_t max_threads = UINT32_MAX;      // Threads spawned over the lifetime.
  uint64_t max_kv_pages = UINT64_MAX;     // Page references held in KVFS.
};

struct LipUsage {
  uint64_t pred_tokens = 0;
  uint64_t tool_calls = 0;
  uint32_t threads_spawned = 0;
  uint64_t kv_pages = 0;
};

struct RuntimeStats {
  uint64_t lips_launched = 0;
  uint64_t lips_completed = 0;
  uint64_t threads_spawned = 0;
  uint64_t context_switches = 0;
  uint64_t preds_submitted = 0;
  uint64_t tools_invoked = 0;
  uint64_t ipc_messages = 0;
  // Cluster IPC fabric (src/net): replay served recvs from the journal /
  // suppressed re-sends whose original delivery already happened.
  uint64_t ipc_recvs_replayed = 0;
  uint64_t ipc_sends_suppressed = 0;
  // Credit flow control: sends that parked for a credit / blocked sends
  // granted (journaled kCreditWait entries) / credit waits consumed from the
  // journal during replay.
  uint64_t ipc_sends_blocked = 0;
  uint64_t ipc_credit_grants = 0;
  uint64_t ipc_credit_waits_replayed = 0;
  // Recovery (src/recovery): syscalls answered from a journal during replay.
  uint64_t lips_replayed = 0;
  uint64_t preds_replayed = 0;
  uint64_t tools_replayed = 0;
  uint64_t sleeps_replayed = 0;
  uint64_t replay_tokens_imported = 0;    // KV rebuilt via snapshot import.
  uint64_t replay_tokens_recomputed = 0;  // KV rebuilt by re-running preds.
  uint64_t replay_divergences = 0;  // Live result disagreed with the journal.
  // Failure semantics (src/faults, src/serve): per-LIP deadline enforcement.
  uint64_t deadlines_expired = 0;     // LIPs whose deadline fired.
  uint64_t deadline_rejections = 0;   // Syscalls rejected after expiry.
};

class LipRuntime {
 public:
  LipRuntime(Simulator* sim, Kvfs* kvfs, RuntimeOptions options = {});
  ~LipRuntime();

  LipRuntime(const LipRuntime&) = delete;
  LipRuntime& operator=(const LipRuntime&) = delete;

  // Wiring; must be set before Launch for programs that use pred/tools.
  void set_pred_service(PredService* service) { pred_service_ = service; }
  void set_tool_service(ToolService* service) { tool_service_ = service; }
  void set_tokenizer(const Tokenizer* tokenizer) { tokenizer_ = tokenizer; }
  // Optional tracing: one span per LIP lifetime on track "lips".
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // Attaches the cluster IPC fabric (this runtime is replica
  // `replica_index`); channel syscalls delegate to it from then on. The
  // fabric must outlive the runtime. Without a fabric, channels stay local
  // to this runtime (legacy behaviour, unchanged).
  void set_channel_fabric(ChannelFabric* fabric, size_t replica_index) {
    fabric_ = fabric;
    replica_index_ = replica_index;
  }
  size_t replica_index() const { return replica_index_; }

  // Starts a new LIP. The program begins running in virtual time on the next
  // simulator dispatch. on_exit fires when the LIP's last thread finishes.
  LipId Launch(std::string name, LipProgram program,
               std::function<void(LipId)> on_exit = nullptr);

  // Launch with an explicit RNG seed. Replicas decorrelate their default
  // seeds, so a replayed LIP must be pinned to the seed its journal recorded
  // for ctx.uniform()/rand64() to re-draw the identical stream.
  LipId LaunchWithSeed(std::string name, uint64_t rng_seed, LipProgram program,
                       std::function<void(LipId)> on_exit = nullptr);

  bool LipDone(LipId lip) const;
  size_t live_lips() const { return live_lips_; }

  // ---- Checkpoint/restore (src/recovery) -------------------------------

  // Attaches a journal; every completed syscall is recorded from then on.
  // Must be called before the LIP's first dispatch for a complete record.
  // Fills the journal's launch metadata (name, rng seed, quota) from the
  // process. The runtime shares ownership until the LIP is destroyed.
  void EnableJournal(LipId lip, std::shared_ptr<SyscallJournal> journal);

  // The journal attached to `lip`, or nullptr.
  std::shared_ptr<SyscallJournal> Journal(LipId lip) const;

  // Switches `lip` into replay: subsequent syscalls consume the attached
  // journal (per-thread, in order) instead of hitting live services, until
  // the log is exhausted — from then on the LIP runs live and keeps
  // recording. Mode must be resolved (not kAuto); kImportSnapshot needs the
  // model config to reconstruct Distributions from journaled states.
  Status BeginReplay(LipId lip, RecoveryMode mode, const ModelConfig* config);

  // True while `lip` still has journaled entries to consume.
  bool ReplayActive(LipId lip) const;

  // Kills the whole runtime (replica failure): no thread ever resumes and
  // pending completions become no-ops. Coroutine frames stay allocated until
  // destruction so in-flight completions writing result slots stay safe.
  void Halt();
  bool halted() const { return halted_; }

  // Forcibly detaches one live LIP (live migration): marks its threads
  // killed, closes its KV handles, and fires no on_exit. The attached
  // journal survives and can be replayed elsewhere.
  Status Detach(LipId lip);

  // Resource accounting (§6). Quotas may be set any time; enforcement is at
  // the system-call boundary from then on.
  void SetQuota(LipId lip, LipQuota quota);
  LipUsage GetUsage(LipId lip) const;

  // Arms an absolute per-LIP deadline. When it fires, queued/pending preds
  // are cancelled (PredService::CancelLip), the LIP's open KV handles are
  // closed (releasing its page quota), and every further pred/tool syscall
  // fails fast with kDeadlineExceeded — the LIP consumes no more decode
  // steps. Re-arming with a later time supersedes the earlier deadline.
  // During journal replay the expiry is recorded but rejection and handle
  // teardown are deferred until the journal is exhausted: replay compresses
  // virtual time, and the journal already holds what actually happened.
  void SetDeadline(LipId lip, SimTime deadline);
  bool DeadlineExpired(LipId lip) const;

  // Text emitted by the LIP via LipContext::emit.
  const std::string& Output(LipId lip) const;

  const RuntimeStats& stats() const { return stats_; }
  Simulator* simulator() { return sim_; }
  Kvfs* kvfs() { return kvfs_; }
  const Tokenizer* tokenizer() const { return tokenizer_; }

  // ---- Internal surface used by LipContext and its awaitables ----------

  ThreadId current_thread() const { return current_; }

  // Spawns a thread in `lip` running `program`; returns its id, or 0 when
  // the LIP's thread quota is exhausted (joining id 0 is a no-op).
  ThreadId SpawnThread(LipId lip, LipProgram program);

  // Marks the current thread blocked (called from await_suspend).
  void BlockCurrent();

  // Records the coroutine frame to resume when the current thread next
  // wakes. Awaitables call this from await_suspend with their own handle so
  // that wake-ups resume the actual suspended frame (which may be a child
  // Task deep in a co_await chain, not the thread's top-level coroutine).
  void SetResumePoint(std::coroutine_handle<> frame);

  // Makes `thread` runnable; it resumes after resume_overhead.
  void Ready(ThreadId thread);

  // Schedules a wake of `thread` at now (used for error completions so the
  // caller never resumes a coroutine from inside await_suspend).
  void WakeSoon(ThreadId thread);

  // pred syscall plumbing. The completion callback writes into `result`
  // (which lives in the suspended coroutine frame) and wakes the thread.
  void SubmitPred(ThreadId thread, KvHandle kv, std::vector<TokenId> tokens,
                  std::vector<int32_t> positions, PredResult* result);

  // Tool-call plumbing.
  void SubmitTool(ThreadId thread, const std::string& tool, const std::string& args,
                  ToolResult* result);

  // Sleep plumbing (journaled so replay can skip already-served waits).
  // Caller must have set the resume point; the thread blocks here.
  void SubmitSleep(ThreadId thread, SimDuration duration);

  // Join bookkeeping.
  bool ThreadDone(ThreadId thread) const;
  void AddJoiner(ThreadId target, ThreadId waiter);
  void AddJoinAllWaiter(LipId lip, ThreadId waiter);

  // IPC channels (named, FIFO; bounded by credits when a fabric is attached
  // and configured). With a fabric attached these delegate cluster-wide (see
  // ChannelFabric above); otherwise they are the legacy in-runtime channels
  // (always unbounded — TrySend never fails).
  //
  // ChannelTrySend returns true when the send completed (accepted by the
  // fabric, handed to a legacy waiter, queued, or suppressed by replay) and
  // false when the channel is out of credits: *message is left intact and
  // the caller must park via ChannelAddSendWaiter (the send awaitable's
  // await_suspend). Journaling of a blocked send happens at grant time
  // (CompleteBlockedSend), not at park time, so the journal records only
  // COMPLETED syscalls — a sender killed while parked re-runs the send live
  // on replay, re-parking at its original sender-FIFO position.
  bool ChannelTrySend(const std::string& channel, std::string* message);
  void ChannelAddSendWaiter(const std::string& channel, ThreadId waiter,
                            std::string* slot);
  bool ChannelTryRecv(const std::string& channel, std::string* message);
  void ChannelAddWaiter(const std::string& channel, ThreadId waiter,
                        std::string* slot);

  // Fabric delivery into a blocked recv: writes `slot`, journals the
  // delivery, and wakes the thread. Returns false — without consuming the
  // message — when the runtime is halted or the thread is killed/done, so
  // the fabric can keep the message queued for forwarding instead.
  bool DeliverToWaiter(ThreadId thread, std::string* slot,
                       const std::string& channel, uint64_t ordinal,
                       const std::string& message);

  // Fabric grant of a credit to a blocked send: journals the credit wait
  // (JournalEntry::kCreditWait with the channel's grant ordinal) followed by
  // the send itself, moves the parked message out of `slot` into *bytes, and
  // wakes the thread. Returns false — leaving the credit and the grant
  // ordinal unconsumed — when the runtime is halted or the thread is
  // killed/done, so the fabric skips to the next parked sender.
  bool CompleteBlockedSend(ThreadId thread, std::string* slot,
                           const std::string& channel, uint64_t grant_ordinal,
                           std::string* bytes);

  void Emit(LipId lip, std::string_view text);
  Rng& LipRng(LipId lip);
  void TrackHandle(LipId lip, KvHandle handle);
  void UntrackHandle(LipId lip, KvHandle handle);

 private:
  struct Tcb {
    ThreadId id = 0;
    LipId lip = kNoLip;
    ThreadState state = ThreadState::kReady;
    std::coroutine_handle<Task::promise_type> handle;
    // The frame to resume at the next wake-up (innermost suspended frame).
    std::coroutine_handle<> resume_point;
    std::vector<ThreadId> joiners;
    // Keeps the program callable alive for the coroutine's lifetime: a
    // lambda coroutine's captures live in the lambda object, not the frame.
    LipProgram program;
    // Spawn path ("0", "0.0", "0.1.2", ...): replica-invariant thread
    // identity used to key the syscall journal (see journal.h).
    std::string path = "0";
    // Number of threads this thread has spawned (next child path suffix).
    uint32_t spawn_seq = 0;
    // Per-channel re-park hint: ordinal after the last journal-served recv.
    // Consumed by this thread's first live recv on the channel (see
    // ChannelFabric::AddWaiter's resume_ordinal).
    std::unordered_map<std::string, uint64_t> replay_recv_resume;
    // Sender-side mirror: grant ordinal after the last journal-served credit
    // wait, consumed by this thread's first live blocked send on the channel
    // (see ChannelFabric::AddSendWaiter's resume_grant).
    std::unordered_map<std::string, uint64_t> replay_send_resume;
  };

  struct Process {
    LipId id = kNoLip;
    std::string name;
    std::unique_ptr<LipContext> context;
    std::unique_ptr<Rng> rng;
    uint32_t live_threads = 0;
    std::vector<ThreadId> join_all_waiters;
    std::vector<KvHandle> open_handles;
    std::string output;
    std::function<void(LipId)> on_exit;
    bool done = false;
    LipQuota quota;
    LipUsage usage;
    SimTime launch_time = 0;
    // Absolute deadline (0 = none) and whether it has fired.
    SimTime deadline = 0;
    bool expired = false;
    // The seed actually used for `rng` (recorded into the journal).
    uint64_t rng_seed = 0;
    // Checkpoint/restore state (nullptr when recovery is not in use).
    std::shared_ptr<SyscallJournal> journal;
    struct ReplayState {
      RecoveryMode mode = RecoveryMode::kRecompute;
      const ModelConfig* config = nullptr;  // For kImportSnapshot.
      // Per-thread-path read cursor into the journal.
      std::unordered_map<std::string, size_t> cursor;
      uint64_t total = 0;
      uint64_t consumed = 0;
      bool complete = false;
      SimTime start = 0;
    };
    std::unique_ptr<ReplayState> replay;
  };

  struct Channel {
    std::deque<std::string> messages;
    std::deque<std::pair<ThreadId, std::string*>> waiters;
    // Per-channel delivery count (the kRecv ordinal in legacy mode).
    uint64_t next_ordinal = 0;
  };

  void Resume(ThreadId thread);
  void OnThreadExit(Tcb& tcb);
  Tcb& GetTcb(ThreadId thread);
  Process& GetProcess(LipId lip);
  const Process& GetProcess(LipId lip) const;

  // Replay plumbing. NextReplayEntry returns the next journaled entry for
  // `tcb`'s thread (nullptr once its log is exhausted — live from then on);
  // ConsumeReplayEntry advances the cursor and finishes the replay when the
  // whole journal has been consumed.
  const JournalEntry* NextReplayEntry(Process& proc, const Tcb& tcb);
  void ConsumeReplayEntry(Process& proc, const Tcb& tcb);
  // True while `tcb`'s next syscall will be answered from the journal —
  // deadline rejections are suppressed for such calls (see SetDeadline).
  bool ReplayServes(Process& proc, const Tcb& tcb);
  void ExpireDeadline(LipId lip, SimTime deadline);
  void FinishReplay(Process& proc, bool diverged);
  void ReplayDiverged(Process& proc, const char* what);
  // Records a delivered IPC message (or checks it against the journal
  // during replay). Called at every delivery point: direct handoff in
  // legacy ChannelSend, successful ChannelTryRecv, and DeliverToWaiter.
  void JournalRecvDelivery(ThreadId thread, const std::string& channel,
                           uint64_t ordinal, const std::string& message);
  void JournalSleepDone(ThreadId thread, SimDuration duration);

  Simulator* sim_;
  Kvfs* kvfs_;
  RuntimeOptions options_;
  PredService* pred_service_ = nullptr;
  ToolService* tool_service_ = nullptr;
  const Tokenizer* tokenizer_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  ChannelFabric* fabric_ = nullptr;
  size_t replica_index_ = 0;

  std::unordered_map<ThreadId, Tcb> threads_;
  std::unordered_map<LipId, Process> processes_;
  std::unordered_map<std::string, Channel> channels_;
  ThreadId next_thread_ = 1;
  LipId next_lip_ = kAdminLip + 1;
  ThreadId current_ = 0;
  size_t live_lips_ = 0;
  bool halted_ = false;
  RuntimeStats stats_;
};

}  // namespace symphony

#endif  // SRC_RUNTIME_RUNTIME_H_
