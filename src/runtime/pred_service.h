// The boundary between the LIP runtime and the batch inference scheduler.
//
// pred is the paper's single system call for model computation (§4.1). The
// runtime converts a thread's pred syscall into a PredRequest and hands it to
// a PredService; the inference scheduler (src/sched) batches requests and
// executes them on the simulated GPU, invoking each request's completion
// callback in virtual time.
#ifndef SRC_RUNTIME_PRED_SERVICE_H_
#define SRC_RUNTIME_PRED_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/types.h"
#include "src/model/distribution.h"
#include "src/sim/time.h"

namespace symphony {

using ThreadId = uint64_t;

struct PredResult {
  Status status;
  // One next-token distribution per input token (paper: "returns a list of
  // next token distributions for each input token").
  std::vector<Distribution> dists;
};

struct PredRequest {
  LipId lip = kNoLip;
  ThreadId thread = 0;
  KvHandle kv;
  // Token i is placed at absolute position positions[i]. The executor
  // enforces strict continuation: positions[i] == kv file length + i.
  std::vector<TokenId> tokens;
  std::vector<int32_t> positions;
  SimTime submit_time = 0;
  // Times this request was bounced for lack of device memory (scheduler
  // bookkeeping for preemption-style retry).
  uint32_t memory_retries = 0;
  // Chunked-prefill bookkeeping (scheduler-owned). When the scheduler splits
  // a large prefill into position-contiguous chunks, the re-queued
  // continuation keeps the original submit_time/lip/kv context, counts the
  // tokens already executed in chunk_done, and accumulates the per-token
  // distributions of earlier chunks in chunk_dists so the final chunk can
  // deliver one result bit-identical to unchunked execution.
  uint64_t chunk_done = 0;
  std::shared_ptr<std::vector<Distribution>> chunk_dists;
  std::function<void(PredResult)> complete;
};

class PredService {
 public:
  virtual ~PredService() = default;

  // Takes ownership of the request. On validation failure the implementation
  // must still deliver the error through request.complete.
  virtual void Submit(PredRequest request) = 0;

  // Cancels every queued or retry-pending request belonging to `lip`,
  // completing each with kDeadlineExceeded. Used by per-LIP deadline expiry;
  // requests already inside a running batch finish normally. Optional.
  virtual void CancelLip(LipId lip) { (void)lip; }
};

// The runtime's hook surface for external I/O (tool calls). The serving
// layer implements this; it also gives the server visibility for the §4.3
// optimization (offload a blocked thread's KV to host while it waits).
struct ToolResult {
  Status status;
  std::string output;
};

class ToolService {
 public:
  virtual ~ToolService() = default;
  virtual void Invoke(LipId lip, ThreadId thread, const std::string& tool,
                      const std::string& args,
                      std::function<void(ToolResult)> complete) = 0;
};

}  // namespace symphony

#endif  // SRC_RUNTIME_PRED_SERVICE_H_
