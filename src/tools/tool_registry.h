// Server-side tool registry (paper §2.2).
//
// Symphony co-locates function execution with generation: instead of
// returning a function-call spec to the client and waiting for it to execute
// and re-prompt, a LIP invokes tools directly on the server. The registry
// maps tool names to handlers with latency models; handlers are deterministic
// given (args, seed) so simulations replay.
//
// The registry implements the runtime's ToolService when wrapped by the
// serving layer (which adds the §4.3 offload-while-blocked policy).
#ifndef SRC_TOOLS_TOOL_REGISTRY_H_
#define SRC_TOOLS_TOOL_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/time.h"

namespace symphony {

struct ToolInvocation {
  SimDuration latency = 0;
  Status status;
  std::string output;
};

// Handler: given args and a per-call Rng, produce output + latency.
using ToolHandler = std::function<ToolInvocation(const std::string& args, Rng& rng)>;

struct ToolSpec {
  std::string name;
  std::string description;
  ToolHandler handler;
};

class ToolRegistry {
 public:
  explicit ToolRegistry(uint64_t seed = 1234) : seed_(seed) {}

  Status Register(ToolSpec spec);
  bool Has(const std::string& name) const { return tools_.count(name) > 0; }
  std::vector<std::string> Names() const;

  // Runs the handler (instantaneously in real time); the caller is
  // responsible for charging `latency` in virtual time.
  StatusOr<ToolInvocation> Run(const std::string& name, const std::string& args);

  // ---- Stock tools for workloads and examples --------------------------

  // Fixed-latency echo tool: returns "echo:<args>".
  static ToolSpec Echo(std::string name, SimDuration latency);

  // Lognormal-latency lookup tool: returns a deterministic pseudo-document
  // for the queried key (stands in for a web/API/RAG fetch).
  static ToolSpec Lookup(std::string name, SimDuration median_latency,
                         double sigma = 0.5);

  // Arithmetic evaluator over "a op b" integer expressions (stands in for
  // server-side code execution, e.g. NumPy snippets).
  static ToolSpec Calculator(std::string name, SimDuration latency);

 private:
  uint64_t seed_;
  uint64_t invocation_count_ = 0;
  std::unordered_map<std::string, ToolSpec> tools_;
};

}  // namespace symphony

#endif  // SRC_TOOLS_TOOL_REGISTRY_H_
