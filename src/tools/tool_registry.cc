#include "src/tools/tool_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/hash.h"

namespace symphony {

Status ToolRegistry::Register(ToolSpec spec) {
  if (spec.name.empty() || !spec.handler) {
    return InvalidArgumentError("tool needs a name and a handler");
  }
  auto [it, inserted] = tools_.emplace(spec.name, std::move(spec));
  if (!inserted) {
    return AlreadyExistsError("tool already registered: " + it->first);
  }
  return Status::Ok();
}

std::vector<std::string> ToolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(tools_.size());
  for (const auto& [name, spec] : tools_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<ToolInvocation> ToolRegistry::Run(const std::string& name,
                                           const std::string& args) {
  auto it = tools_.find(name);
  if (it == tools_.end()) {
    return NotFoundError("no such tool: " + name);
  }
  // Per-call Rng: deterministic in (registry seed, call index, args).
  Rng rng(Mix64(seed_ ^ Mix64(invocation_count_++) ^ Fnv1a(args)));
  return it->second.handler(args, rng);
}

ToolSpec ToolRegistry::Echo(std::string name, SimDuration latency) {
  ToolSpec spec;
  spec.name = std::move(name);
  spec.description = "echoes its arguments after a fixed delay";
  spec.handler = [latency](const std::string& args, Rng&) {
    return ToolInvocation{latency, Status::Ok(), "echo:" + args};
  };
  return spec;
}

ToolSpec ToolRegistry::Lookup(std::string name, SimDuration median_latency,
                              double sigma) {
  ToolSpec spec;
  spec.name = std::move(name);
  spec.description = "fetches a pseudo-document for a key (lognormal latency)";
  spec.handler = [median_latency, sigma](const std::string& args, Rng& rng) {
    double factor = std::exp(sigma * rng.NextGaussian());
    SimDuration latency = static_cast<SimDuration>(
        static_cast<double>(median_latency) * factor);
    uint64_t h = Fnv1a(args);
    std::string doc = "doc";
    for (int i = 0; i < 8; ++i) {
      doc += " w" + std::to_string((h >> (i * 8)) % 997);
    }
    return ToolInvocation{latency, Status::Ok(), doc};
  };
  return spec;
}

ToolSpec ToolRegistry::Calculator(std::string name, SimDuration latency) {
  ToolSpec spec;
  spec.name = std::move(name);
  spec.description = "evaluates 'a op b' integer expressions";
  spec.handler = [latency](const std::string& args, Rng&) {
    long a = 0;
    long b = 0;
    char op = 0;
    char* cursor = nullptr;
    a = std::strtol(args.c_str(), &cursor, 10);
    while (cursor != nullptr && *cursor == ' ') {
      ++cursor;
    }
    if (cursor == nullptr || *cursor == '\0') {
      return ToolInvocation{latency, InvalidArgumentError("expected 'a op b'"), ""};
    }
    op = *cursor++;
    b = std::strtol(cursor, nullptr, 10);
    long result = 0;
    switch (op) {
      case '+':
        result = a + b;
        break;
      case '-':
        result = a - b;
        break;
      case '*':
        result = a * b;
        break;
      case '/':
        if (b == 0) {
          return ToolInvocation{latency, InvalidArgumentError("division by zero"),
                                ""};
        }
        result = a / b;
        break;
      default:
        return ToolInvocation{latency,
                              InvalidArgumentError(std::string("bad operator: ") + op),
                              ""};
    }
    return ToolInvocation{latency, Status::Ok(), std::to_string(result)};
  };
  return spec;
}

}  // namespace symphony
