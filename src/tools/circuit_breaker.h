// Per-tool circuit breaker for the server-side tool layer.
//
// A tool that fails repeatedly (an injected outage, a saturated backend) is
// not worth paying latency and retry budgets against: the breaker fails the
// call instantly with kUnavailable until the tool shows signs of life. The
// classic three-state machine over virtual time:
//
//   kClosed    — normal operation. `failure_threshold` CONSECUTIVE transient
//                failures trip it to kOpen.
//   kOpen      — every call is rejected without invoking the tool, until
//                `cooldown` has elapsed since the trip.
//   kHalfOpen  — after the cooldown, exactly one probe call is let through;
//                its success closes the breaker, its failure re-opens it
//                (restarting the cooldown).
//
// Only transient failures (IsTransientError) should be recorded — a caller
// error like kInvalidArgument says nothing about the tool's health. The
// state machine is purely virtual-time-driven and has no randomness, so it
// replays deterministically.
#ifndef SRC_TOOLS_CIRCUIT_BREAKER_H_
#define SRC_TOOLS_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "src/sim/time.h"

namespace symphony {

struct CircuitBreakerOptions {
  bool enabled = true;
  uint32_t failure_threshold = 5;    // Consecutive failures to trip open.
  SimDuration cooldown = Millis(250);  // Open duration before the probe.
};

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  // May this call proceed? Rejections are counted; when the cooldown has
  // elapsed the first caller becomes the half-open probe.
  bool Allow(SimTime now);

  // Outcome of a call that was allowed through.
  void RecordSuccess();
  void RecordFailure(SimTime now);

  State state(SimTime now) const;

  // Remaining cooldown when open (0 otherwise) — the retry-after hint.
  SimDuration RetryAfter(SimTime now) const;

  uint32_t consecutive_failures() const { return consecutive_failures_; }
  uint64_t opens() const { return opens_; }
  uint64_t rejections() const { return rejections_; }

 private:
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  SimTime opened_at_ = 0;
  bool probe_in_flight_ = false;
  uint64_t opens_ = 0;
  uint64_t rejections_ = 0;
};

}  // namespace symphony

#endif  // SRC_TOOLS_CIRCUIT_BREAKER_H_
