#include "src/tools/circuit_breaker.h"

namespace symphony {

bool CircuitBreaker::Allow(SimTime now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= options_.cooldown) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;  // This caller is the probe.
      }
      ++rejections_;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++rejections_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(SimTime now) {
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open, cooldown restarts.
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state(SimTime now) const {
  if (state_ == State::kOpen && now - opened_at_ >= options_.cooldown) {
    return State::kHalfOpen;
  }
  return state_;
}

SimDuration CircuitBreaker::RetryAfter(SimTime now) const {
  if (state_ != State::kOpen) {
    return 0;
  }
  SimDuration remaining = options_.cooldown - (now - opened_at_);
  return remaining > 0 ? remaining : 0;
}

}  // namespace symphony
