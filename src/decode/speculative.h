// Speculative decoding support (paper §4.1).
//
// The LIP drafts k tokens with a cheap model, then passes all of them to a
// single pred on the target model; pred returns one distribution per draft
// token, which the verifier checks left to right. Accepted tokens stay in
// the KV file; the LIP truncates the rejected suffix (kv_truncate) and
// appends the correction token.
//
// Acceptance uses the standard stochastic rule: accept draft token x with
// probability min(1, p_target(x) / p_draft(x)); on rejection, fall back to a
// sample from the target distribution (a simplification of the residual
// distribution max(0, p-q), which our constructive distributions cannot
// renormalize in closed form — documented in DESIGN.md).
#ifndef SRC_DECODE_SPECULATIVE_H_
#define SRC_DECODE_SPECULATIVE_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/model/distribution.h"
#include "src/model/tokenizer.h"

namespace symphony {

struct SpeculativeOutcome {
  // Number of draft tokens accepted (0..k).
  size_t accepted = 0;
  // Token to emit after the accepted prefix: on full acceptance this is a
  // bonus token sampled from the final target distribution; on rejection it
  // is the correction sample.
  TokenId next_token = kUnkToken;
};

// `draft_tokens[i]` was proposed from `draft_dists[i]` (the draft model's
// distribution *before* emitting the token). `target_dists` are pred's
// results: target_dists[i] is the target distribution after consuming
// draft_tokens[0..i]; the verification of draft_tokens[i] therefore uses the
// distribution at index i-1, and `target_before` (the target distribution
// before any draft token) verifies draft_tokens[0].
SpeculativeOutcome VerifyDraft(const Distribution& target_before,
                               const std::vector<TokenId>& draft_tokens,
                               const std::vector<Distribution>& draft_dists,
                               const std::vector<Distribution>& target_dists,
                               Rng& rng);

}  // namespace symphony

#endif  // SRC_DECODE_SPECULATIVE_H_
