// Incremental JSON validator for JSON-mode constrained decoding.
//
// A pushdown acceptor over bytes: Feed() consumes one character and reports
// whether the prefix can still extend to a valid JSON value; Done() reports
// whether the input so far IS a complete value. Unlike the regex engine this
// handles arbitrary nesting, which a DFA cannot.
//
// A LIP uses it exactly like TokenConstraint: mask the distribution to tokens
// whose text keeps the machine alive, and allow EOS only when Done().
#ifndef SRC_DECODE_JSON_MACHINE_H_
#define SRC_DECODE_JSON_MACHINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/model/tokenizer.h"

namespace symphony {

class JsonMachine {
 public:
  JsonMachine() { Reset(); }

  void Reset();

  // Consumes one byte. Returns false (and enters the dead state) if no valid
  // JSON document can start with the consumed prefix.
  bool Feed(char c);

  // Consumes a string; stops at the first rejection.
  bool FeedAll(std::string_view text);

  // True when the consumed prefix is a complete JSON value (trailing
  // whitespace allowed).
  bool Done() const;

  bool dead() const { return dead_; }

  // Number of open syntactic contexts (strings, objects, arrays, ...).
  // Useful for "close as soon as possible" generation policies.
  size_t Depth() const { return stack_.size(); }

  // Copyable snapshot semantics let callers probe "what if" cheaply.
  JsonMachine Probe() const { return *this; }

  // Convenience: true if `text` could extend the current prefix.
  bool CanFeed(std::string_view text) const {
    JsonMachine probe = *this;
    return probe.FeedAll(text);
  }

  // Token-level helpers mirroring TokenConstraint.
  bool AllowsToken(const Tokenizer& tokenizer, TokenId token) const;
  void AdvanceToken(const Tokenizer& tokenizer, TokenId token);

 private:
  // The acceptor is a state machine over "contexts" kept in a stack.
  enum class Ctx : uint8_t {
    kValue,        // Expecting the start of a value.
    kObjectFirst,  // After '{': key string or '}'.
    kObjectKey,    // After ',' in an object: key string.
    kObjectColon,  // After a key: expecting ':'.
    kObjectNext,   // After a member value: ',' or '}'.
    kArrayFirst,   // After '[': value or ']'.
    kArrayNext,    // After an element: ',' or ']'.
    kString,       // Inside a value string.
    kKeyString,    // Inside an object key string.
    kNumber,       // Inside a number.
    kLiteral,      // Inside true/false/null.
  };

  // Called when a value has completed and its context has been popped.
  void ValueDone();
  void Die() { dead_ = true; }

  bool dead_ = false;
  std::vector<Ctx> stack_;
  // String escape handling (applies to kString/kKeyString).
  bool in_escape_ = false;
  int hex_remaining_ = 0;
  // kLiteral progress ("true", "false", "null").
  const char* literal_ = nullptr;
  size_t literal_pos_ = 0;
  // kNumber sub-state.
  enum class Num : uint8_t {
    kStart,      // Nothing or '-' consumed.
    kZero,       // Leading zero: next must be '.', 'e', or a delimiter.
    kInt,        // In integer digits.
    kFracDot,    // Just consumed '.', need a digit.
    kFrac,       // In fraction digits.
    kExpStart,   // Just consumed 'e'/'E', need sign or digit.
    kExpSign,    // Consumed exponent sign, need a digit.
    kExpDigits,  // In exponent digits.
  };
  Num num_ = Num::kStart;

  bool NumberIsValid() const {
    return num_ == Num::kZero || num_ == Num::kInt || num_ == Num::kFrac ||
           num_ == Num::kExpDigits;
  }
  // Tries to extend the number with c; returns false if c cannot extend it.
  bool FeedNumber(char c);
};

}  // namespace symphony

#endif  // SRC_DECODE_JSON_MACHINE_H_
