// Token samplers operating on model Distributions.
//
// These are LIP-side building blocks (paper §2.3/§4.1): because pred returns
// the full next-token distribution, sampling strategy is program-defined, not
// baked into the serving system. Samplers are pure: the caller supplies the
// uniform variate, keeping LIP execution deterministic and replayable.
#ifndef SRC_DECODE_SAMPLERS_H_
#define SRC_DECODE_SAMPLERS_H_

#include <cstdint>

#include "src/model/distribution.h"
#include "src/model/tokenizer.h"

namespace symphony {

struct SamplerConfig {
  // 0 means greedy (argmax).
  double temperature = 1.0;
  // 0 disables top-k truncation.
  uint32_t top_k = 0;
  // 1.0 disables nucleus truncation.
  double top_p = 1.0;
};

// Samples one token according to config. `u` must be uniform in [0,1).
TokenId SampleToken(const Distribution& dist, const SamplerConfig& config, double u);

// Convenience wrappers.
inline TokenId GreedyToken(const Distribution& dist) { return dist.Argmax(); }

}  // namespace symphony

#endif  // SRC_DECODE_SAMPLERS_H_
