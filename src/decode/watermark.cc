#include "src/decode/watermark.h"

#include <cmath>

#include "src/common/hash.h"

namespace symphony {

bool Watermarker::IsGreen(TokenId prev_token, TokenId token) const {
  uint64_t h = Mix64(config_.salt ^
                     (static_cast<uint64_t>(static_cast<uint32_t>(prev_token))
                      << 32) ^
                     static_cast<uint64_t>(static_cast<uint32_t>(token)));
  // Map to [0,1): green iff below gamma.
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < config_.gamma;
}

TokenId Watermarker::Sample(const Distribution& dist, TokenId prev_token,
                            double u_bias, double u_sample,
                            double temperature) const {
  if (u_bias < config_.bias) {
    TokenId green = dist.SampleMasked(
        u_sample, temperature,
        [&](TokenId t) { return IsGreen(prev_token, t); });
    if (green != kUnkToken) {
      return green;
    }
  }
  return dist.Sample(u_sample, temperature);
}

WatermarkVerdict DetectWatermark(const std::vector<TokenId>& tokens,
                                 const WatermarkConfig& config,
                                 double z_threshold) {
  Watermarker watermarker(config);
  WatermarkVerdict verdict;
  for (size_t i = 1; i < tokens.size(); ++i) {
    ++verdict.total;
    if (watermarker.IsGreen(tokens[i - 1], tokens[i])) {
      ++verdict.green;
    }
  }
  if (verdict.total == 0) {
    return verdict;
  }
  double n = static_cast<double>(verdict.total);
  double expected = config.gamma * n;
  double variance = n * config.gamma * (1.0 - config.gamma);
  verdict.z_score =
      (static_cast<double>(verdict.green) - expected) / std::sqrt(variance);
  verdict.watermarked = verdict.z_score > z_threshold;
  return verdict;
}

}  // namespace symphony
