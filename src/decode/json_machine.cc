#include "src/decode/json_machine.h"

#include <cctype>
#include <cstring>

namespace symphony {

namespace {

bool IsJsonWs(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

void JsonMachine::Reset() {
  dead_ = false;
  stack_.clear();
  stack_.push_back(Ctx::kValue);
  in_escape_ = false;
  hex_remaining_ = 0;
  literal_ = nullptr;
  literal_pos_ = 0;
  num_ = Num::kStart;
}

void JsonMachine::ValueDone() {
  // Stack top (if any) is the parent continuation (kObjectNext/kArrayNext)
  // left in place when the value context was pushed; nothing to do here —
  // the parent handles the next delimiter itself.
}

bool JsonMachine::FeedNumber(char c) {
  switch (num_) {
    case Num::kStart:
      if (c == '0') {
        num_ = Num::kZero;
        return true;
      }
      if (IsDigit(c)) {
        num_ = Num::kInt;
        return true;
      }
      return false;
    case Num::kZero:
      if (c == '.') {
        num_ = Num::kFracDot;
        return true;
      }
      if (c == 'e' || c == 'E') {
        num_ = Num::kExpStart;
        return true;
      }
      return false;
    case Num::kInt:
      if (IsDigit(c)) {
        return true;
      }
      if (c == '.') {
        num_ = Num::kFracDot;
        return true;
      }
      if (c == 'e' || c == 'E') {
        num_ = Num::kExpStart;
        return true;
      }
      return false;
    case Num::kFracDot:
      if (IsDigit(c)) {
        num_ = Num::kFrac;
        return true;
      }
      return false;
    case Num::kFrac:
      if (IsDigit(c)) {
        return true;
      }
      if (c == 'e' || c == 'E') {
        num_ = Num::kExpStart;
        return true;
      }
      return false;
    case Num::kExpStart:
      if (c == '+' || c == '-') {
        num_ = Num::kExpSign;
        return true;
      }
      if (IsDigit(c)) {
        num_ = Num::kExpDigits;
        return true;
      }
      return false;
    case Num::kExpSign:
      if (IsDigit(c)) {
        num_ = Num::kExpDigits;
        return true;
      }
      return false;
    case Num::kExpDigits:
      return IsDigit(c);
  }
  return false;
}

bool JsonMachine::Feed(char c) {
  if (dead_) {
    return false;
  }
  if (stack_.empty()) {
    if (IsJsonWs(c)) {
      return true;
    }
    Die();
    return false;
  }

  Ctx top = stack_.back();
  switch (top) {
    case Ctx::kValue: {
      if (IsJsonWs(c)) {
        return true;
      }
      stack_.pop_back();
      switch (c) {
        case '{':
          stack_.push_back(Ctx::kObjectFirst);
          return true;
        case '[':
          stack_.push_back(Ctx::kArrayFirst);
          return true;
        case '"':
          stack_.push_back(Ctx::kString);
          in_escape_ = false;
          hex_remaining_ = 0;
          return true;
        case 't':
          literal_ = "true";
          literal_pos_ = 1;
          stack_.push_back(Ctx::kLiteral);
          return true;
        case 'f':
          literal_ = "false";
          literal_pos_ = 1;
          stack_.push_back(Ctx::kLiteral);
          return true;
        case 'n':
          literal_ = "null";
          literal_pos_ = 1;
          stack_.push_back(Ctx::kLiteral);
          return true;
        case '-':
          num_ = Num::kStart;
          stack_.push_back(Ctx::kNumber);
          return true;
        default:
          if (IsDigit(c)) {
            num_ = Num::kStart;
            stack_.push_back(Ctx::kNumber);
            return FeedNumber(c) ? true : (Die(), false);
          }
          Die();
          return false;
      }
    }

    case Ctx::kObjectFirst: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == '}') {
        stack_.pop_back();
        ValueDone();
        return true;
      }
      if (c == '"') {
        stack_.back() = Ctx::kObjectColon;
        stack_.push_back(Ctx::kKeyString);
        in_escape_ = false;
        hex_remaining_ = 0;
        return true;
      }
      Die();
      return false;
    }

    case Ctx::kObjectKey: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == '"') {
        stack_.back() = Ctx::kObjectColon;
        stack_.push_back(Ctx::kKeyString);
        in_escape_ = false;
        hex_remaining_ = 0;
        return true;
      }
      Die();
      return false;
    }

    case Ctx::kObjectColon: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == ':') {
        stack_.back() = Ctx::kObjectNext;
        stack_.push_back(Ctx::kValue);
        return true;
      }
      Die();
      return false;
    }

    case Ctx::kObjectNext: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == ',') {
        stack_.back() = Ctx::kObjectKey;
        return true;
      }
      if (c == '}') {
        stack_.pop_back();
        ValueDone();
        return true;
      }
      Die();
      return false;
    }

    case Ctx::kArrayFirst: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == ']') {
        stack_.pop_back();
        ValueDone();
        return true;
      }
      stack_.back() = Ctx::kArrayNext;
      stack_.push_back(Ctx::kValue);
      return Feed(c);  // Re-dispatch as the start of a value.
    }

    case Ctx::kArrayNext: {
      if (IsJsonWs(c)) {
        return true;
      }
      if (c == ',') {
        stack_.push_back(Ctx::kValue);
        return true;
      }
      if (c == ']') {
        stack_.pop_back();
        ValueDone();
        return true;
      }
      Die();
      return false;
    }

    case Ctx::kString:
    case Ctx::kKeyString: {
      if (hex_remaining_ > 0) {
        if (std::isxdigit(static_cast<unsigned char>(c))) {
          --hex_remaining_;
          return true;
        }
        Die();
        return false;
      }
      if (in_escape_) {
        in_escape_ = false;
        switch (c) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            return true;
          case 'u':
            hex_remaining_ = 4;
            return true;
          default:
            Die();
            return false;
        }
      }
      if (c == '\\') {
        in_escape_ = true;
        return true;
      }
      if (c == '"') {
        stack_.pop_back();
        if (top == Ctx::kString) {
          ValueDone();
        }
        return true;
      }
      // Control characters are invalid inside strings.
      if (static_cast<unsigned char>(c) < 0x20) {
        Die();
        return false;
      }
      return true;
    }

    case Ctx::kNumber: {
      if (FeedNumber(c)) {
        return true;
      }
      // The char does not extend the number; if the number is complete,
      // close it and re-dispatch into the parent context.
      if (!NumberIsValid()) {
        Die();
        return false;
      }
      stack_.pop_back();
      ValueDone();
      return Feed(c);
    }

    case Ctx::kLiteral: {
      if (literal_ != nullptr && literal_pos_ < std::strlen(literal_) &&
          c == literal_[literal_pos_]) {
        ++literal_pos_;
        if (literal_pos_ == std::strlen(literal_)) {
          stack_.pop_back();
          ValueDone();
        }
        return true;
      }
      Die();
      return false;
    }
  }
  Die();
  return false;
}

bool JsonMachine::FeedAll(std::string_view text) {
  for (char c : text) {
    if (!Feed(c)) {
      return false;
    }
  }
  return true;
}

bool JsonMachine::Done() const {
  if (dead_) {
    return false;
  }
  if (stack_.empty()) {
    return true;
  }
  // A top-level number can be complete while still extensible.
  return stack_.size() == 1 && stack_.back() == Ctx::kNumber && NumberIsValid();
}

bool JsonMachine::AllowsToken(const Tokenizer& tokenizer, TokenId token) const {
  if (token == kEosToken) {
    return Done();
  }
  if (token == kPadToken || token == kBosToken || token == kUnkToken) {
    return false;
  }
  if (token < 0 || static_cast<uint32_t>(token) >= tokenizer.vocab_size()) {
    return false;
  }
  return CanFeed(tokenizer.TokenToString(token));
}

void JsonMachine::AdvanceToken(const Tokenizer& tokenizer, TokenId token) {
  if (token == kEosToken) {
    return;
  }
  FeedAll(tokenizer.TokenToString(token));
}

}  // namespace symphony
