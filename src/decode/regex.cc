#include "src/decode/regex.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

namespace symphony {

namespace {

// ---------------------------------------------------------------------------
// NFA (Thompson construction)
// ---------------------------------------------------------------------------

struct NfaState {
  // Character transitions.
  std::vector<std::pair<CharSet, int>> edges;
  // Epsilon transitions.
  std::vector<int> eps;
};

struct Fragment {
  int start = -1;
  int accept = -1;  // Single accept per fragment by construction.
};

class NfaBuilder {
 public:
  int NewState() {
    states_.emplace_back();
    return static_cast<int>(states_.size()) - 1;
  }

  void AddEdge(int from, const CharSet& chars, int to) {
    states_[from].edges.emplace_back(chars, to);
  }
  void AddEps(int from, int to) { states_[from].eps.push_back(to); }

  Fragment Empty() {
    Fragment f{NewState(), NewState()};
    AddEps(f.start, f.accept);
    return f;
  }

  Fragment Chars(const CharSet& set) {
    Fragment f{NewState(), NewState()};
    AddEdge(f.start, set, f.accept);
    return f;
  }

  Fragment Concat(Fragment a, Fragment b) {
    AddEps(a.accept, b.start);
    return Fragment{a.start, b.accept};
  }

  Fragment Alternate(Fragment a, Fragment b) {
    Fragment f{NewState(), NewState()};
    AddEps(f.start, a.start);
    AddEps(f.start, b.start);
    AddEps(a.accept, f.accept);
    AddEps(b.accept, f.accept);
    return f;
  }

  Fragment Star(Fragment a) {
    Fragment f{NewState(), NewState()};
    AddEps(f.start, a.start);
    AddEps(f.start, f.accept);
    AddEps(a.accept, a.start);
    AddEps(a.accept, f.accept);
    return f;
  }

  Fragment Plus(Fragment a) {
    Fragment f{NewState(), NewState()};
    AddEps(f.start, a.start);
    AddEps(a.accept, a.start);
    AddEps(a.accept, f.accept);
    return f;
  }

  Fragment Optional(Fragment a) {
    Fragment f{NewState(), NewState()};
    AddEps(f.start, a.start);
    AddEps(f.start, f.accept);
    AddEps(a.accept, f.accept);
    return f;
  }

  // Deep-copies a fragment (needed for {m,n} expansion).
  Fragment Clone(Fragment src) {
    std::map<int, int> mapping;
    std::deque<int> pending = {src.start};
    mapping[src.start] = NewState();
    while (!pending.empty()) {
      int old_id = pending.front();
      pending.pop_front();
      // Copy the state's edge lists (note: NewState may reallocate states_,
      // so read a copy).
      NfaState state_copy = states_[old_id];
      for (const auto& [chars, to] : state_copy.edges) {
        if (mapping.find(to) == mapping.end()) {
          mapping[to] = NewState();
          pending.push_back(to);
        }
        AddEdge(mapping[old_id], chars, mapping[to]);
      }
      for (int to : state_copy.eps) {
        if (mapping.find(to) == mapping.end()) {
          mapping[to] = NewState();
          pending.push_back(to);
        }
        AddEps(mapping[old_id], mapping[to]);
      }
    }
    // The accept state may be unreachable in degenerate fragments; map it.
    if (mapping.find(src.accept) == mapping.end()) {
      mapping[src.accept] = NewState();
    }
    return Fragment{mapping[src.start], mapping[src.accept]};
  }

  const std::vector<NfaState>& states() const { return states_; }

 private:
  std::vector<NfaState> states_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

CharSet SingleChar(unsigned char c) {
  CharSet set;
  set.set(c);
  return set;
}

CharSet RangeChars(unsigned char lo, unsigned char hi) {
  CharSet set;
  for (int c = lo; c <= hi; ++c) {
    set.set(static_cast<size_t>(c));
  }
  return set;
}

CharSet DigitChars() { return RangeChars('0', '9'); }
CharSet WordChars() {
  CharSet set = RangeChars('a', 'z') | RangeChars('A', 'Z') | DigitChars();
  set.set('_');
  return set;
}
CharSet SpaceChars() {
  CharSet set;
  for (unsigned char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    set.set(c);
  }
  return set;
}
CharSet AnyChars() {
  CharSet set;
  set.set();
  set.reset('\n');
  return set;
}

class Parser {
 public:
  Parser(std::string_view pattern, NfaBuilder* nfa) : pattern_(pattern), nfa_(nfa) {}

  StatusOr<Fragment> Parse() {
    SYMPHONY_ASSIGN_OR_RETURN(Fragment f, ParseAlternation());
    if (pos_ != pattern_.size()) {
      return InvalidArgumentError("unexpected character at position " +
                                  std::to_string(pos_));
    }
    return f;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }
  char Take() { return pattern_[pos_++]; }

  StatusOr<Fragment> ParseAlternation() {
    SYMPHONY_ASSIGN_OR_RETURN(Fragment left, ParseConcat());
    while (!AtEnd() && Peek() == '|') {
      Take();
      SYMPHONY_ASSIGN_OR_RETURN(Fragment right, ParseConcat());
      left = nfa_->Alternate(left, right);
    }
    return left;
  }

  StatusOr<Fragment> ParseConcat() {
    Fragment result = nfa_->Empty();
    bool any = false;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      SYMPHONY_ASSIGN_OR_RETURN(Fragment piece, ParseRepeat());
      result = any ? nfa_->Concat(result, piece) : piece;
      any = true;
    }
    return result;
  }

  StatusOr<Fragment> ParseRepeat() {
    SYMPHONY_ASSIGN_OR_RETURN(Fragment atom, ParseAtom());
    for (;;) {
      if (AtEnd()) {
        return atom;
      }
      char c = Peek();
      if (c == '*') {
        Take();
        atom = nfa_->Star(atom);
      } else if (c == '+') {
        Take();
        atom = nfa_->Plus(atom);
      } else if (c == '?') {
        Take();
        atom = nfa_->Optional(atom);
      } else if (c == '{') {
        SYMPHONY_ASSIGN_OR_RETURN(atom, ParseBound(atom));
      } else {
        return atom;
      }
    }
  }

  // {m} {m,} {m,n}
  StatusOr<Fragment> ParseBound(Fragment atom) {
    Take();  // '{'
    SYMPHONY_ASSIGN_OR_RETURN(int min_count, ParseInt());
    int max_count = min_count;
    bool unbounded = false;
    if (!AtEnd() && Peek() == ',') {
      Take();
      if (!AtEnd() && Peek() == '}') {
        unbounded = true;
      } else {
        SYMPHONY_ASSIGN_OR_RETURN(max_count, ParseInt());
      }
    }
    if (AtEnd() || Take() != '}') {
      return InvalidArgumentError("unterminated {} bound");
    }
    if (!unbounded && max_count < min_count) {
      return InvalidArgumentError("bad {} bound: max < min");
    }
    if (min_count > 256 || (!unbounded && max_count > 256)) {
      return InvalidArgumentError("{} bound too large (max 256)");
    }

    Fragment result = nfa_->Empty();
    bool any = false;
    auto append = [&](Fragment f) {
      result = any ? nfa_->Concat(result, f) : f;
      any = true;
    };
    for (int i = 0; i < min_count; ++i) {
      append(nfa_->Clone(atom));
    }
    if (unbounded) {
      append(nfa_->Star(nfa_->Clone(atom)));
    } else {
      for (int i = min_count; i < max_count; ++i) {
        append(nfa_->Optional(nfa_->Clone(atom)));
      }
    }
    return result;
  }

  StatusOr<int> ParseInt() {
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return InvalidArgumentError("expected integer in {} bound");
    }
    int value = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      value = value * 10 + (Take() - '0');
      if (value > 100000) {
        return InvalidArgumentError("integer too large in {} bound");
      }
    }
    return value;
  }

  StatusOr<Fragment> ParseAtom() {
    if (AtEnd()) {
      return InvalidArgumentError("unexpected end of pattern");
    }
    char c = Take();
    switch (c) {
      case '(': {
        SYMPHONY_ASSIGN_OR_RETURN(Fragment inner, ParseAlternation());
        if (AtEnd() || Take() != ')') {
          return InvalidArgumentError("unbalanced parenthesis");
        }
        return inner;
      }
      case '[':
        return ParseClass();
      case '.':
        return nfa_->Chars(AnyChars());
      case '\\': {
        SYMPHONY_ASSIGN_OR_RETURN(CharSet set, ParseEscape());
        return nfa_->Chars(set);
      }
      case '*':
      case '+':
      case '?':
      case '{':
      case ')':
      case '|':
        return InvalidArgumentError(std::string("misplaced metacharacter '") + c +
                                    "'");
      default:
        return nfa_->Chars(SingleChar(static_cast<unsigned char>(c)));
    }
  }

  StatusOr<CharSet> ParseEscape() {
    if (AtEnd()) {
      return InvalidArgumentError("dangling backslash");
    }
    char c = Take();
    switch (c) {
      case 'd':
        return DigitChars();
      case 'D':
        return ~DigitChars() & AnyChars();
      case 'w':
        return WordChars();
      case 'W':
        return ~WordChars() & AnyChars();
      case 's':
        return SpaceChars();
      case 'S':
        return ~SpaceChars() & AnyChars();
      case 'n':
        return SingleChar('\n');
      case 't':
        return SingleChar('\t');
      case 'r':
        return SingleChar('\r');
      default:
        // Escaped literal (punctuation, backslash, brackets...).
        return SingleChar(static_cast<unsigned char>(c));
    }
  }

  StatusOr<Fragment> ParseClass() {
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      Take();
      negate = true;
    }
    CharSet set;
    bool first = true;
    while (!AtEnd() && (Peek() != ']' || first)) {
      first = false;
      char c = Take();
      CharSet piece;
      if (c == '\\') {
        SYMPHONY_ASSIGN_OR_RETURN(piece, ParseEscape());
        set |= piece;
        continue;
      }
      // Range?
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Take();  // '-'
        char hi = Take();
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          return InvalidArgumentError("inverted range in character class");
        }
        set |= RangeChars(static_cast<unsigned char>(c),
                          static_cast<unsigned char>(hi));
      } else {
        set.set(static_cast<unsigned char>(c));
      }
    }
    if (AtEnd() || Take() != ']') {
      return InvalidArgumentError("unterminated character class");
    }
    if (negate) {
      set = ~set & AnyChars();
    }
    return nfa_->Chars(set);
  }

  std::string_view pattern_;
  NfaBuilder* nfa_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Subset construction
// ---------------------------------------------------------------------------

std::vector<int> EpsClosure(const std::vector<NfaState>& states,
                            std::vector<int> set) {
  std::vector<bool> in_set(states.size(), false);
  std::deque<int> pending;
  for (int s : set) {
    in_set[static_cast<size_t>(s)] = true;
    pending.push_back(s);
  }
  while (!pending.empty()) {
    int s = pending.front();
    pending.pop_front();
    for (int to : states[static_cast<size_t>(s)].eps) {
      if (!in_set[static_cast<size_t>(to)]) {
        in_set[static_cast<size_t>(to)] = true;
        set.push_back(to);
        pending.push_back(to);
      }
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace

StatusOr<std::unique_ptr<Dfa>> CompileRegex(std::string_view pattern,
                                            size_t max_states) {
  NfaBuilder nfa;
  Parser parser(pattern, &nfa);
  SYMPHONY_ASSIGN_OR_RETURN(Fragment fragment, parser.Parse());

  const std::vector<NfaState>& states = nfa.states();
  auto dfa = std::make_unique<Dfa>();

  std::map<std::vector<int>, Dfa::StateId> ids;
  std::vector<std::vector<int>> sets;
  std::deque<Dfa::StateId> pending;

  std::vector<int> start_set = EpsClosure(states, {fragment.start});
  ids[start_set] = 0;
  sets.push_back(start_set);
  pending.push_back(0);
  dfa->start_ = 0;
  dfa->transitions_.resize(256, Dfa::kDead);
  dfa->accept_.push_back(std::binary_search(start_set.begin(), start_set.end(),
                                            fragment.accept));

  while (!pending.empty()) {
    Dfa::StateId id = pending.front();
    pending.pop_front();
    const std::vector<int> current = sets[id];

    // Move on each character. For efficiency, gather edges once.
    for (int c = 0; c < 256; ++c) {
      std::vector<int> next;
      for (int s : current) {
        for (const auto& [chars, to] : states[static_cast<size_t>(s)].edges) {
          if (chars.test(static_cast<size_t>(c))) {
            next.push_back(to);
          }
        }
      }
      if (next.empty()) {
        continue;
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      next = EpsClosure(states, std::move(next));
      auto [it, inserted] = ids.emplace(next, static_cast<Dfa::StateId>(sets.size()));
      if (inserted) {
        if (sets.size() >= max_states) {
          return ResourceExhaustedError("regex DFA exceeds state limit");
        }
        sets.push_back(next);
        pending.push_back(it->second);
        dfa->transitions_.resize(dfa->transitions_.size() + 256, Dfa::kDead);
        dfa->accept_.push_back(std::binary_search(next.begin(), next.end(),
                                                  fragment.accept));
      }
      dfa->transitions_[id * 256 + static_cast<size_t>(c)] = it->second;
    }
  }

  // Liveness: states from which an accepting state is reachable (backward
  // reachability via reverse edges).
  size_t n = dfa->accept_.size();
  std::vector<std::vector<Dfa::StateId>> reverse(n);
  for (size_t s = 0; s < n; ++s) {
    for (int c = 0; c < 256; ++c) {
      Dfa::StateId to = dfa->transitions_[s * 256 + static_cast<size_t>(c)];
      if (to != Dfa::kDead) {
        reverse[to].push_back(static_cast<Dfa::StateId>(s));
      }
    }
  }
  dfa->live_.assign(n, false);
  std::deque<Dfa::StateId> live_pending;
  for (size_t s = 0; s < n; ++s) {
    if (dfa->accept_[s]) {
      dfa->live_[s] = true;
      live_pending.push_back(static_cast<Dfa::StateId>(s));
    }
  }
  while (!live_pending.empty()) {
    Dfa::StateId s = live_pending.front();
    live_pending.pop_front();
    for (Dfa::StateId from : reverse[s]) {
      if (!dfa->live_[from]) {
        dfa->live_[from] = true;
        live_pending.push_back(from);
      }
    }
  }

  return dfa;
}

const std::string& TokenConstraint::TokenText(TokenId token) const {
  auto it = token_text_.find(token);
  if (it == token_text_.end()) {
    it = token_text_.emplace(token, tokenizer_->TokenToString(token)).first;
  }
  return it->second;
}

bool TokenConstraint::Allows(Dfa::StateId state, TokenId token) const {
  if (token == kEosToken) {
    return dfa_->IsAccept(state);
  }
  if (token == kPadToken || token == kBosToken || token == kUnkToken) {
    return false;
  }
  if (token < 0 || static_cast<uint32_t>(token) >= tokenizer_->vocab_size()) {
    return false;
  }
  Dfa::StateId next = dfa_->Run(state, TokenText(token));
  return !dfa_->IsDeadEnd(next);
}

Dfa::StateId TokenConstraint::Advance(Dfa::StateId state, TokenId token) const {
  if (token == kEosToken) {
    return state;
  }
  return dfa_->Run(state, TokenText(token));
}

}  // namespace symphony
