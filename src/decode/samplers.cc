#include "src/decode/samplers.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace symphony {

TokenId SampleToken(const Distribution& dist, const SamplerConfig& config, double u) {
  if (config.temperature <= 0.0) {
    return dist.Argmax();
  }
  bool truncated = config.top_k > 0 || config.top_p < 1.0;
  if (!truncated) {
    return dist.Sample(u, config.temperature);
  }

  // Truncation operates on the candidate set, which carries virtually all of
  // the distribution's mass (the tail floor is ~1e-8 per token).
  std::vector<TokenId> candidates = dist.TopCandidates();
  size_t keep = candidates.size();
  if (config.top_k > 0) {
    keep = std::min<size_t>(keep, config.top_k);
  }
  if (config.top_p < 1.0) {
    double cum = 0.0;
    size_t nucleus = 0;
    for (size_t i = 0; i < keep; ++i) {
      cum += dist.Prob(candidates[i]);
      ++nucleus;
      if (cum >= config.top_p) {
        break;
      }
    }
    keep = nucleus;
  }
  keep = std::max<size_t>(keep, 1);

  // Renormalized inverse-CDF over the kept tokens at the given temperature.
  std::vector<double> weights(keep);
  double total = 0.0;
  for (size_t i = 0; i < keep; ++i) {
    // Prob() is at temperature 1; re-shape with the configured temperature.
    weights[i] = std::pow(dist.Prob(candidates[i]), 1.0 / config.temperature);
    total += weights[i];
  }
  double target = u * total;
  for (size_t i = 0; i < keep; ++i) {
    if (target < weights[i]) {
      return candidates[i];
    }
    target -= weights[i];
  }
  return candidates[keep - 1];
}

}  // namespace symphony
