// Token-level watermarking (Kirchenbauer et al., cited by paper §2.3 [26]).
//
// A stateful sampling strategy that a prompt API cannot express: at each
// step, the previous token seeds a pseudo-random partition of the vocabulary
// into a "green list" (fraction gamma); sampling is biased toward green
// tokens. A detector that knows the salt recomputes the partition and tests
// whether the green fraction of a text is statistically improbable.
//
// In Symphony this is ~15 lines of LIP code around pred's distributions;
// this header packages it with a detector so tests can close the loop.
#ifndef SRC_DECODE_WATERMARK_H_
#define SRC_DECODE_WATERMARK_H_

#include <cstdint>
#include <vector>

#include "src/model/distribution.h"
#include "src/model/tokenizer.h"

namespace symphony {

struct WatermarkConfig {
  uint64_t salt = 0x3a7e12f9ULL;
  double gamma = 0.5;  // Green-list fraction of the vocabulary.
  // Strength: probability that a step is forced to sample green (soft
  // watermark: delta-boost approximated by constrained resampling).
  double bias = 0.85;
};

class Watermarker {
 public:
  explicit Watermarker(WatermarkConfig config) : config_(config) {}

  // True if `token` is on the green list seeded by `prev_token`.
  bool IsGreen(TokenId prev_token, TokenId token) const;

  // Samples the next token from `dist` with the watermark bias applied.
  // `u_bias` decides whether this step is green-constrained; `u_sample`
  // drives the (possibly masked) sampling.
  TokenId Sample(const Distribution& dist, TokenId prev_token, double u_bias,
                 double u_sample, double temperature = 1.0) const;

  const WatermarkConfig& config() const { return config_; }

 private:
  WatermarkConfig config_;
};

struct WatermarkVerdict {
  uint64_t green = 0;
  uint64_t total = 0;
  double z_score = 0.0;  // Standard deviations above the gamma baseline.
  bool watermarked = false;
};

// Tests a token sequence for the watermark (z > threshold).
WatermarkVerdict DetectWatermark(const std::vector<TokenId>& tokens,
                                 const WatermarkConfig& config,
                                 double z_threshold = 4.0);

}  // namespace symphony

#endif  // SRC_DECODE_WATERMARK_H_
