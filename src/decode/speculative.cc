#include "src/decode/speculative.h"

#include <algorithm>
#include <cassert>

namespace symphony {

SpeculativeOutcome VerifyDraft(const Distribution& target_before,
                               const std::vector<TokenId>& draft_tokens,
                               const std::vector<Distribution>& draft_dists,
                               const std::vector<Distribution>& target_dists,
                               Rng& rng) {
  assert(draft_tokens.size() == draft_dists.size());
  assert(draft_tokens.size() == target_dists.size());

  SpeculativeOutcome outcome;
  if (draft_tokens.empty()) {
    outcome.next_token = target_before.Sample(rng.NextDouble());
    return outcome;
  }
  for (size_t i = 0; i < draft_tokens.size(); ++i) {
    const Distribution& target =
        i == 0 ? target_before : target_dists[i - 1];
    double p = target.Prob(draft_tokens[i]);
    double q = std::max(draft_dists[i].Prob(draft_tokens[i]), 1e-12);
    double accept_prob = std::min(1.0, p / q);
    if (rng.NextDouble() < accept_prob) {
      ++outcome.accepted;
      continue;
    }
    // Rejected: correction token from the target distribution at this point.
    outcome.next_token = target.Sample(rng.NextDouble());
    return outcome;
  }
  // All accepted: bonus token from the distribution after the last draft.
  outcome.next_token = target_dists.back().Sample(rng.NextDouble());
  return outcome;
}

}  // namespace symphony
