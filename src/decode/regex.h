// Regular-expression engine for constrained decoding.
//
// Compiles a regex to an NFA (Thompson construction), then to a DFA (subset
// construction). TokenConstraint lifts the character DFA to the token level:
// a token is allowed in a DFA state when consuming its surface string does
// not reach the dead state, and EOS is allowed exactly in accepting states.
// This is the same recipe production engines (Outlines, XGrammar) use; here
// it lets a LIP enforce output structure purely by masking the distributions
// pred returns (paper §2.3).
//
// Supported syntax: literals, '.', escapes (\d \D \w \W \s \S \n \t \\ and
// escaped punctuation), character classes [abc], [a-z], [^...], grouping
// (...), alternation '|', and the postfix operators * + ? {m} {m,} {m,n}.
// Matching is anchored (full-match semantics).
#ifndef SRC_DECODE_REGEX_H_
#define SRC_DECODE_REGEX_H_

#include <bitset>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/model/tokenizer.h"

namespace symphony {

using CharSet = std::bitset<256>;

// Deterministic finite automaton over bytes.
class Dfa {
 public:
  using StateId = uint32_t;
  static constexpr StateId kDead = 0xffffffffu;

  StateId start() const { return start_; }
  bool IsAccept(StateId state) const { return accept_[state]; }

  // Transition; kDead is absorbing.
  StateId Next(StateId state, unsigned char c) const {
    if (state == kDead) {
      return kDead;
    }
    return transitions_[state * 256 + c];
  }

  // Runs the DFA over `text` from `state`.
  StateId Run(StateId state, std::string_view text) const {
    for (unsigned char c : text) {
      state = Next(state, c);
      if (state == kDead) {
        break;
      }
    }
    return state;
  }

  // Full-match test from the start state.
  bool Matches(std::string_view text) const {
    StateId s = Run(start_, text);
    return s != kDead && IsAccept(s);
  }

  // True if no accepting state is reachable from `state` (useful to abort a
  // generation that can no longer satisfy the constraint).
  bool IsDeadEnd(StateId state) const {
    return state == kDead || !live_[state];
  }

  size_t num_states() const { return accept_.size(); }

 private:
  friend StatusOr<std::unique_ptr<Dfa>> CompileRegex(std::string_view pattern,
                                                     size_t max_states);

  StateId start_ = 0;
  std::vector<StateId> transitions_;  // num_states x 256.
  std::vector<bool> accept_;
  std::vector<bool> live_;  // Can reach an accepting state.
};

// Compiles `pattern`; fails with kInvalidArgument on syntax errors and
// kResourceExhausted if the DFA exceeds `max_states`.
StatusOr<std::unique_ptr<Dfa>> CompileRegex(std::string_view pattern,
                                            size_t max_states = 4096);

// Token-level view of a character DFA, bound to a tokenizer.
class TokenConstraint {
 public:
  // Both pointers must outlive the constraint.
  TokenConstraint(const Dfa* dfa, const Tokenizer* tokenizer)
      : dfa_(dfa), tokenizer_(tokenizer) {}

  Dfa::StateId start() const { return dfa_->start(); }

  // True if `token` may be emitted in `state`. EOS is allowed exactly when
  // the state accepts; other specials are never allowed.
  bool Allows(Dfa::StateId state, TokenId token) const;

  // State after emitting `token` (which must be allowed).
  Dfa::StateId Advance(Dfa::StateId state, TokenId token) const;

  bool IsAccept(Dfa::StateId state) const { return dfa_->IsAccept(state); }
  bool IsDeadEnd(Dfa::StateId state) const { return dfa_->IsDeadEnd(state); }

 private:
  // Token strings are interned per token id to avoid re-rendering.
  const std::string& TokenText(TokenId token) const;

  const Dfa* dfa_;
  const Tokenizer* tokenizer_;
  mutable std::unordered_map<TokenId, std::string> token_text_;
};

}  // namespace symphony

#endif  // SRC_DECODE_REGEX_H_
