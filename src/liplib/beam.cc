#include "src/liplib/beam.h"

#include <algorithm>
#include <memory>
#include <optional>

namespace symphony {

namespace {

struct Beam {
  KvHandle kv;
  // Distribution after the beam's last token; optional only so Beam is
  // default-constructible for container use.
  std::optional<Distribution> dist;
  double sum_logprob = 0.0;
  std::vector<TokenId> tokens;
};

struct Expansion {
  size_t parent;
  TokenId token;
  double sum_logprob;  // Parent score + this token's logprob.
};

}  // namespace

ValueTask<BeamResult> BeamSearch(LipContext& ctx, KvHandle prompt_kv,
                                 Distribution seed_dist, BeamOptions options) {
  BeamResult failure;
  if (options.width < 1 || options.expand_per_beam < 1) {
    failure.status = InvalidArgumentError("beam width/expansion must be >= 1");
    co_return failure;
  }

  std::vector<Beam> beams;
  {
    StatusOr<KvHandle> root = ctx.kv_fork(prompt_kv);
    if (!root.ok()) {
      failure.status = root.status();
      co_return failure;
    }
    beams.push_back(Beam{*root, seed_dist, 0.0, {}});
  }
  std::vector<BeamResult> finished;

  auto close_all = [&](std::vector<Beam>& set) {
    for (Beam& beam : set) {
      (void)ctx.kv_close(beam.kv);
    }
    set.clear();
  };

  for (int step = 0; step < options.max_steps && !beams.empty(); ++step) {
    // Gather candidate expansions across all beams.
    std::vector<Expansion> expansions;
    for (size_t b = 0; b < beams.size(); ++b) {
      std::vector<TokenId> cands = beams[b].dist->TopCandidates();
      int take = std::min<int>(options.expand_per_beam,
                               static_cast<int>(cands.size()));
      for (int j = 0; j < take; ++j) {
        expansions.push_back(Expansion{
            b, cands[static_cast<size_t>(j)],
            beams[b].sum_logprob + beams[b].dist->LogProb(cands[static_cast<size_t>(j)])});
      }
    }
    std::stable_sort(expansions.begin(), expansions.end(),
                     [](const Expansion& a, const Expansion& b) {
                       return a.sum_logprob > b.sum_logprob;
                     });
    if (expansions.size() > static_cast<size_t>(options.width)) {
      expansions.resize(static_cast<size_t>(options.width));
    }

    // EOS expansions finish their sequence; the rest fork + extend, with the
    // preds issued from parallel threads so they share one GPU batch.
    auto next = std::make_shared<std::vector<Beam>>();
    std::vector<ThreadId> workers;
    bool fork_failed = false;
    for (const Expansion& expansion : expansions) {
      const Beam& parent = beams[expansion.parent];
      if (expansion.token == kEosToken) {
        BeamResult done;
        done.status = Status::Ok();
        done.tokens = parent.tokens;
        done.sum_logprob = expansion.sum_logprob;
        done.hit_eos = true;
        finished.push_back(std::move(done));
        continue;
      }
      StatusOr<KvHandle> fork = ctx.kv_fork(parent.kv);
      if (!fork.ok()) {
        fork_failed = true;
        break;
      }
      Beam child;
      child.kv = *fork;
      child.sum_logprob = expansion.sum_logprob;
      child.tokens = parent.tokens;
      child.tokens.push_back(expansion.token);
      size_t slot = next->size();
      next->push_back(std::move(child));
      TokenId token = expansion.token;
      KvHandle child_kv = (*next)[slot].kv;
      workers.push_back(
          ctx.spawn([child_kv, token, slot, next](LipContext& inner) -> Task {
            StatusOr<std::vector<Distribution>> d =
                co_await inner.pred1(child_kv, token);
            if (d.ok()) {
              (*next)[slot].dist = d->back();
            }
            co_return;
          }));
    }
    for (ThreadId worker : workers) {
      co_await ctx.join(worker);
    }
    close_all(beams);
    if (fork_failed) {
      close_all(*next);
      failure.status = ResourceExhaustedError("beam fork failed");
      co_return failure;
    }
    // Drop beams whose pred failed (dist unset).
    for (Beam& beam : *next) {
      if (beam.dist.has_value()) {
        beams.push_back(std::move(beam));
      } else {
        (void)ctx.kv_close(beam.kv);
      }
    }
    next->clear();
  }

  // Surviving active beams count as (unterminated) results.
  for (Beam& beam : beams) {
    BeamResult open;
    open.status = Status::Ok();
    open.tokens = beam.tokens;
    open.sum_logprob = beam.sum_logprob;
    finished.push_back(std::move(open));
  }
  close_all(beams);

  const BeamResult* best = nullptr;
  for (const BeamResult& candidate : finished) {
    if (candidate.tokens.empty()) {
      continue;
    }
    if (best == nullptr || candidate.MeanLogprob() > best->MeanLogprob()) {
      best = &candidate;
    }
  }
  if (best == nullptr) {
    failure.status = UnavailableError("beam search produced no sequences");
    co_return failure;
  }
  co_return *best;
}

}  // namespace symphony
