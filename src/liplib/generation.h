// LIP standard library: reusable generation strategies.
//
// The paper's thesis is that generation strategy is application code; this
// library is what that application code looks like when packaged for reuse.
// Every routine here is an awaitable subroutine (ValueTask) built purely on
// the public LipContext system-call surface — no serving-system hooks.
//
//   GenResult r = co_await liplib_generate(ctx, kv, prompt, options);
//
// Strategies: plain sampling, constrained (any TokenMask), best-of-N
// (parallel sampling + model-likelihood reranking), and beam search (in
// beam.h). All are deterministic given the LIP's seed.
#ifndef SRC_LIPLIB_GENERATION_H_
#define SRC_LIPLIB_GENERATION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/decode/json_machine.h"
#include "src/decode/regex.h"
#include "src/decode/samplers.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/task.h"

namespace symphony {

struct GenOptions {
  SamplerConfig sampler;
  uint32_t max_new_tokens = 64;
  bool stop_at_eos = true;
};

struct GenResult {
  Status status;
  std::vector<TokenId> tokens;  // Generated tokens (EOS excluded).
  bool hit_eos = false;
  double sum_logprob = 0.0;  // Model log-likelihood of the generated tokens.

  bool ok() const { return status.ok(); }
};

// Feeds `prompt` (may be empty if the file already has content and
// `first_dist` semantics are not needed) and generates up to max_new_tokens.
// The KV file is left containing prompt + generated tokens.
ValueTask<GenResult> Generate(LipContext& ctx, KvHandle kv,
                              std::vector<TokenId> prompt, GenOptions options);

// A pluggable token mask with per-step state (regex DFA, JSON machine, or
// anything the application invents).
struct TokenMask {
  // May token `t` be emitted now?
  std::function<bool(TokenId)> allows;
  // Commit token `t` (advance internal state).
  std::function<void(TokenId)> advance;
  // Is the constraint satisfied (generation may stop)?
  std::function<bool()> done;
};

// Wraps a TokenConstraint (regex DFA) as a TokenMask. The returned mask
// holds a mutable DFA state; the constraint object must outlive it.
TokenMask MaskFromRegex(const TokenConstraint* constraint);

// Wraps a JsonMachine as a TokenMask; the machine must outlive the mask.
// Whitespace tokens are excluded so generation always makes progress.
TokenMask MaskFromJson(JsonMachine* machine, const Tokenizer* tokenizer);

// Constrained generation: every emitted token satisfies the mask; stops when
// the mask reports done (and EOS is then implied) or max_new_tokens.
// Fails with kFailedPrecondition on a dead end (no token allowed).
ValueTask<GenResult> GenerateConstrained(LipContext& ctx, KvHandle kv,
                                         std::vector<TokenId> prompt,
                                         TokenMask mask, GenOptions options);

// Best-of-N: runs N independent sampled generations in parallel threads,
// each on its own fork of `base` (after feeding `prompt` once), and returns
// the candidate with the highest length-normalized model log-likelihood.
ValueTask<GenResult> BestOfN(LipContext& ctx, KvHandle base,
                             std::vector<TokenId> prompt, int n,
                             GenOptions options);

}  // namespace symphony

#endif  // SRC_LIPLIB_GENERATION_H_
