// LIP standard library: beam search.
//
// Classic beam search over the model's token distributions, implemented
// entirely with public LIP system calls: each beam is a KV file fork (so all
// beams share the prompt pages copy-on-write), per-step expansions run in
// parallel threads (so the batch scheduler fuses their preds into one GPU
// step), and pruned beams are simply closed.
#ifndef SRC_LIPLIB_BEAM_H_
#define SRC_LIPLIB_BEAM_H_

#include <vector>

#include "src/common/status.h"
#include "src/runtime/lip_context.h"
#include "src/runtime/task.h"

namespace symphony {

struct BeamOptions {
  int width = 4;
  int max_steps = 16;
  // Candidates considered per beam per step (<= Distribution::kNumCandidates).
  int expand_per_beam = 4;
};

struct BeamResult {
  Status status;
  std::vector<TokenId> tokens;
  double sum_logprob = 0.0;
  bool hit_eos = false;

  bool ok() const { return status.ok(); }
  double MeanLogprob() const {
    return tokens.empty() ? -1e30
                          : sum_logprob / static_cast<double>(tokens.size());
  }
};

// Expands from `prompt_kv` + `seed_dist` (the distribution after the prompt,
// i.e. `pred(prompt)->back()`); `prompt_kv` itself is never modified. The
// best sequence by mean log-probability is returned; all beam forks are
// closed before returning.
ValueTask<BeamResult> BeamSearch(LipContext& ctx, KvHandle prompt_kv,
                                 Distribution seed_dist, BeamOptions options);

}  // namespace symphony

#endif  // SRC_LIPLIB_BEAM_H_
