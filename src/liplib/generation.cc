#include "src/liplib/generation.h"

#include <cmath>
#include <memory>

namespace symphony {

ValueTask<GenResult> Generate(LipContext& ctx, KvHandle kv,
                              std::vector<TokenId> prompt, GenOptions options) {
  GenResult result;
  if (prompt.empty()) {
    result.status = InvalidArgumentError(
        "Generate needs at least one prompt token to obtain a distribution");
    co_return result;
  }
  StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
  if (!dists.ok()) {
    result.status = dists.status();
    co_return result;
  }
  Distribution dist = dists->back();
  while (result.tokens.size() < options.max_new_tokens) {
    TokenId t = SampleToken(dist, options.sampler, ctx.uniform());
    if (t == kEosToken && options.stop_at_eos) {
      result.hit_eos = true;
      break;
    }
    double logprob = dist.LogProb(t);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
    if (!d.ok()) {
      result.status = d.status();
      co_return result;
    }
    result.tokens.push_back(t);
    result.sum_logprob += logprob;
    dist = d->back();
  }
  result.status = Status::Ok();
  co_return result;
}

TokenMask MaskFromRegex(const TokenConstraint* constraint) {
  auto state = std::make_shared<Dfa::StateId>(constraint->start());
  TokenMask mask;
  mask.allows = [constraint, state](TokenId t) {
    return constraint->Allows(*state, t);
  };
  mask.advance = [constraint, state](TokenId t) {
    *state = constraint->Advance(*state, t);
  };
  mask.done = [constraint, state] { return constraint->IsAccept(*state); };
  return mask;
}

TokenMask MaskFromJson(JsonMachine* machine, const Tokenizer* tokenizer) {
  TokenMask mask;
  mask.allows = [machine, tokenizer](TokenId t) {
    if (t >= kFirstByteToken && t < kFirstWordToken) {
      char c = static_cast<char>(t - kFirstByteToken);
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        return false;  // Whitespace stalls structural progress.
      }
    }
    return machine->AllowsToken(*tokenizer, t);
  };
  mask.advance = [machine, tokenizer](TokenId t) {
    machine->AdvanceToken(*tokenizer, t);
  };
  mask.done = [machine] { return machine->Done(); };
  return mask;
}

ValueTask<GenResult> GenerateConstrained(LipContext& ctx, KvHandle kv,
                                         std::vector<TokenId> prompt,
                                         TokenMask mask, GenOptions options) {
  GenResult result;
  if (prompt.empty()) {
    result.status = InvalidArgumentError(
        "GenerateConstrained needs at least one prompt token");
    co_return result;
  }
  StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
  if (!dists.ok()) {
    result.status = dists.status();
    co_return result;
  }
  Distribution dist = dists->back();
  while (result.tokens.size() < options.max_new_tokens && !mask.done()) {
    TokenId t;
    if (options.sampler.temperature <= 0.0) {
      t = dist.GreedyMasked(mask.allows);
    } else {
      t = dist.SampleMasked(ctx.uniform(), options.sampler.temperature,
                            mask.allows);
    }
    if (t == kUnkToken) {
      result.status = FailedPreconditionError("constraint dead end");
      co_return result;
    }
    if (t == kEosToken) {
      result.hit_eos = true;
      break;
    }
    double logprob = dist.LogProb(t);
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
    if (!d.ok()) {
      result.status = d.status();
      co_return result;
    }
    mask.advance(t);
    result.tokens.push_back(t);
    result.sum_logprob += logprob;
    dist = d->back();
  }
  result.status = Status::Ok();
  co_return result;
}

ValueTask<GenResult> BestOfN(LipContext& ctx, KvHandle base,
                             std::vector<TokenId> prompt, int n,
                             GenOptions options) {
  GenResult failure;
  if (prompt.empty() || n < 1) {
    failure.status = InvalidArgumentError("BestOfN needs a prompt and n >= 1");
    co_return failure;
  }
  // Feed the prompt once on the base file; every candidate forks it.
  StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(base, prompt);
  if (!dists.ok()) {
    failure.status = dists.status();
    co_return failure;
  }
  Distribution seed_dist = dists->back();

  auto candidates = std::make_shared<std::vector<GenResult>>(
      static_cast<size_t>(n));
  std::vector<ThreadId> threads;
  for (int i = 0; i < n; ++i) {
    StatusOr<KvHandle> fork = ctx.kv_fork(base);
    if (!fork.ok()) {
      failure.status = fork.status();
      co_return failure;
    }
    KvHandle kv = *fork;
    threads.push_back(ctx.spawn(
        [kv, i, seed_dist, options, candidates](LipContext& inner) -> Task {
          GenResult& slot = (*candidates)[static_cast<size_t>(i)];
          Distribution dist = seed_dist;
          slot.status = Status::Ok();
          while (slot.tokens.size() < options.max_new_tokens) {
            TokenId t = SampleToken(dist, options.sampler, inner.uniform());
            if (t == kEosToken && options.stop_at_eos) {
              slot.hit_eos = true;
              break;
            }
            double logprob = dist.LogProb(t);
            StatusOr<std::vector<Distribution>> d = co_await inner.pred1(kv, t);
            if (!d.ok()) {
              slot.status = d.status();
              break;
            }
            slot.tokens.push_back(t);
            slot.sum_logprob += logprob;
            dist = d->back();
          }
          (void)inner.kv_close(kv);
          co_return;
        }));
  }
  for (ThreadId thread : threads) {
    co_await ctx.join(thread);
  }

  // Rerank by length-normalized log-likelihood.
  const GenResult* best = nullptr;
  double best_score = 0.0;
  for (const GenResult& candidate : *candidates) {
    if (!candidate.ok() || candidate.tokens.empty()) {
      continue;
    }
    double score = candidate.sum_logprob /
                   static_cast<double>(candidate.tokens.size());
    if (best == nullptr || score > best_score) {
      best = &candidate;
      best_score = score;
    }
  }
  if (best == nullptr) {
    failure.status = UnavailableError("no best-of-n candidate succeeded");
    co_return failure;
  }
  co_return *best;
}

}  // namespace symphony
