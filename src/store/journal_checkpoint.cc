#include "src/store/journal_checkpoint.h"

#include <algorithm>
#include <cstring>

namespace symphony {

namespace {

// Little-endian primitives. The simulator is single-platform per run, but a
// byte-stable encoding keeps chunk content addresses reproducible across
// builds, which property tests rely on.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  bool AtEnd() const { return pos_ == bytes_.size(); }

  StatusOr<uint8_t> U8() {
    if (pos_ + 1 > bytes_.size()) {
      return Truncated();
    }
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  StatusOr<uint32_t> U32() {
    if (pos_ + 4 > bytes_.size()) {
      return Truncated();
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }

  StatusOr<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Truncated();
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }

  StatusOr<std::string> String() {
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos_ + len > bytes_.size()) {
      return Truncated();
    }
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  Status Truncated() const {
    return InternalError("truncated journal stream");
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

void AppendJournalEntry(std::string* out, const JournalEntry& entry) {
  PutU8(out, static_cast<uint8_t>(entry.kind));
  PutU8(out, static_cast<uint8_t>(entry.status.code()));
  PutString(out, entry.status.message());
  PutU32(out, static_cast<uint32_t>(entry.tokens.size()));
  for (TokenId token : entry.tokens) {
    PutU32(out, static_cast<uint32_t>(token));
  }
  PutU32(out, static_cast<uint32_t>(entry.positions.size()));
  for (int32_t position : entry.positions) {
    PutU32(out, static_cast<uint32_t>(position));
  }
  PutU32(out, static_cast<uint32_t>(entry.states.size()));
  for (uint64_t state : entry.states) {
    PutU64(out, state);
  }
  PutString(out, entry.payload);
  PutU64(out, static_cast<uint64_t>(entry.duration));
  PutString(out, entry.channel);
  PutU64(out, entry.ordinal);
}

std::string SerializeJournalEntries(const std::vector<JournalEntry>& entries) {
  std::string out;
  for (const JournalEntry& entry : entries) {
    AppendJournalEntry(&out, entry);
  }
  return out;
}

StatusOr<std::vector<JournalEntry>> ParseJournalEntries(
    const std::string& bytes) {
  std::vector<JournalEntry> entries;
  Cursor cursor(bytes);
  while (!cursor.AtEnd()) {
    JournalEntry entry;
    SYMPHONY_ASSIGN_OR_RETURN(uint8_t kind, cursor.U8());
    entry.kind = static_cast<JournalEntry::Kind>(kind);
    SYMPHONY_ASSIGN_OR_RETURN(uint8_t code, cursor.U8());
    SYMPHONY_ASSIGN_OR_RETURN(std::string message, cursor.String());
    entry.status = Status(static_cast<StatusCode>(code), std::move(message));
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t ntokens, cursor.U32());
    entry.tokens.reserve(ntokens);
    for (uint32_t i = 0; i < ntokens; ++i) {
      SYMPHONY_ASSIGN_OR_RETURN(uint32_t token, cursor.U32());
      entry.tokens.push_back(static_cast<TokenId>(token));
    }
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t npositions, cursor.U32());
    entry.positions.reserve(npositions);
    for (uint32_t i = 0; i < npositions; ++i) {
      SYMPHONY_ASSIGN_OR_RETURN(uint32_t position, cursor.U32());
      entry.positions.push_back(static_cast<int32_t>(position));
    }
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t nstates, cursor.U32());
    entry.states.reserve(nstates);
    for (uint32_t i = 0; i < nstates; ++i) {
      SYMPHONY_ASSIGN_OR_RETURN(uint64_t state, cursor.U64());
      entry.states.push_back(state);
    }
    SYMPHONY_ASSIGN_OR_RETURN(entry.payload, cursor.String());
    SYMPHONY_ASSIGN_OR_RETURN(uint64_t duration, cursor.U64());
    entry.duration = static_cast<SimDuration>(duration);
    SYMPHONY_ASSIGN_OR_RETURN(entry.channel, cursor.String());
    SYMPHONY_ASSIGN_OR_RETURN(entry.ordinal, cursor.U64());
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string SerializeTokenRecords(const std::vector<TokenRecord>& records) {
  std::string out;
  out.reserve(records.size() * 16);
  for (const TokenRecord& record : records) {
    PutU32(&out, static_cast<uint32_t>(record.token));
    PutU32(&out, static_cast<uint32_t>(record.position));
    PutU64(&out, record.state);
  }
  return out;
}

StatusOr<std::vector<TokenRecord>> ParseTokenRecords(const std::string& bytes) {
  if (bytes.size() % 16 != 0) {
    return InternalError("truncated kv record stream");
  }
  std::vector<TokenRecord> records;
  records.reserve(bytes.size() / 16);
  Cursor cursor(bytes);
  while (!cursor.AtEnd()) {
    TokenRecord record;
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t token, cursor.U32());
    record.token = static_cast<TokenId>(token);
    SYMPHONY_ASSIGN_OR_RETURN(uint32_t position, cursor.U32());
    record.position = static_cast<int32_t>(position);
    SYMPHONY_ASSIGN_OR_RETURN(record.state, cursor.U64());
    records.push_back(record);
  }
  return records;
}

uint64_t JournalLiveBytes(const SyscallJournal& journal) {
  uint64_t bytes = 0;
  for (const auto& [path, log] : journal.threads()) {
    // A thread with nothing live ships nothing — its path is already
    // implied by the folded checkpoint, so a fully-folded journal measures
    // zero (the degenerate delta ship: an empty packet, pure latency).
    if (log.live.empty()) {
      continue;
    }
    for (const JournalEntry& entry : log.live) {
      std::string buf;
      AppendJournalEntry(&buf, entry);
      bytes += buf.size();
    }
    bytes += path.size();
  }
  return bytes;
}

StatusOr<CheckpointOutcome> CheckpointJournal(SnapshotStore& store,
                                              size_t replica,
                                              uint64_t model_fingerprint,
                                              SyscallJournal& journal) {
  CheckpointOutcome outcome;
  outcome.key = journal.checkpoint_key();
  if (journal.live_entries() == 0) {
    return outcome;
  }

  // Each thread's stream is the previous checkpoint's stream (byte-identical
  // prefix, re-read from the store) extended by the live entries. Thread
  // paths sort so the snapshot key is independent of map iteration order.
  std::vector<std::pair<std::string, std::string>> prior;
  if (journal.folded_entries() > 0) {
    if (journal.checkpoint_key() == 0) {
      return InternalError("journal has folded entries but no checkpoint");
    }
    SYMPHONY_ASSIGN_OR_RETURN(
        FetchResult fetched, store.Fetch(replica, journal.checkpoint_key()));
    prior = std::move(fetched.streams);
  }

  SnapshotPayload payload;
  payload.label = "journal:" + journal.name;
  payload.model_fingerprint = model_fingerprint;
  payload.tokens = journal.pred_tokens();
  std::vector<std::string> paths;
  paths.reserve(journal.threads().size());
  for (const auto& [path, log] : journal.threads()) {
    paths.push_back(path);
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::string stream;
    for (auto& [name, bytes] : prior) {
      if (name == path) {
        stream = std::move(bytes);
        break;
      }
    }
    const SyscallJournal::ThreadLog& log = journal.threads().at(path);
    for (const JournalEntry& entry : log.live) {
      AppendJournalEntry(&stream, entry);
    }
    payload.streams.emplace_back(path, std::move(stream));
  }

  uint64_t previous = journal.checkpoint_key();
  PublishResult published = store.Publish(replica, payload);
  outcome.key = published.key;
  outcome.folded_entries = journal.live_entries();
  outcome.new_bytes = published.new_bytes;
  journal.FoldPrefix(published.key);
  if (previous != 0 && previous != published.key) {
    (void)store.Release(previous);
  }
  return outcome;
}

StatusOr<RehydrateOutcome> RehydrateJournal(SnapshotStore& store,
                                            size_t replica,
                                            SyscallJournal& journal) {
  RehydrateOutcome outcome;
  if (journal.folded_entries() == 0) {
    return outcome;
  }
  if (journal.checkpoint_key() == 0) {
    return InternalError("journal has folded entries but no checkpoint");
  }
  SYMPHONY_ASSIGN_OR_RETURN(FetchResult fetched,
                            store.Fetch(replica, journal.checkpoint_key()));
  outcome.bytes_fetched = fetched.bytes_fetched;
  outcome.transfer_time = fetched.transfer_time;
  for (auto& [path, bytes] : fetched.streams) {
    SYMPHONY_ASSIGN_OR_RETURN(std::vector<JournalEntry> entries,
                              ParseJournalEntries(bytes));
    // The stream holds the full history; entries beyond the folded count
    // cannot exist (fold always folds everything), so sizes must agree.
    outcome.entries_restored += entries.size();
    SYMPHONY_RETURN_IF_ERROR(
        journal.ReinstatePrefix(path, std::move(entries)));
  }
  return outcome;
}

}  // namespace symphony
