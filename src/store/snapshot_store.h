// SnapshotStore: a content-addressed, checksummed, reference-counted KV
// snapshot store shared across the cluster.
//
// The paper makes KV cache a first-class, user-managed resource (KVFS); this
// store extends that to the cluster: snapshots of KV-bearing state (journal
// prefixes, hot named KV files) are published once and imported anywhere,
// instead of being recomputed per replica or re-shipped whole per migration.
//
// Content addressing: a snapshot is a set of named append-only byte streams
// (one per journal thread path, or a single "records" stream for a KV file),
// each split into fixed-size chunks. A chunk's key IS the hash of its bytes,
// which doubles as its checksum: an importer recomputes the hash after the
// simulated transfer and any in-flight corruption (FaultPlan byte flips) is
// detected before the data can be served. Because streams are append-only and
// chunk boundaries are fixed offsets, a snapshot that extends an earlier one
// re-publishes only its tail chunks — checkpoint generations and growing
// prefixes dedup structurally.
//
// The snapshot key mixes the model fingerprint with every stream's chunk
// keys, so a snapshot is keyed by (model config, token prefix): identical
// prefixes on different replicas collide into ONE refcounted manifest.
//
// Transfer costs are simulated, not real: the store tracks which replicas
// already hold each chunk, and Fetch reports the bytes that actually had to
// move plus the time those bytes took on the wire. With a NetworkTopology
// wired in (SnapshotStoreOptions::topology — how SymphonyCluster runs it),
// the moved bytes are routed from the nearest caching replica over the same
// physical links as IPC and journal shipping, so a fetch queues behind — and
// delays — concurrent traffic on shared hops. Without one, the flat
// CostModel::NetworkTime charge applies. Callers delay the dependent action
// by the reported transfer_time.
#ifndef SRC_STORE_SNAPSHOT_STORE_H_
#define SRC_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/faults/fault_plan.h"
#include "src/model/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

class NetworkTopology;

struct SnapshotStoreOptions {
  // Chunking granularity for serialized streams. Smaller chunks dedup more
  // finely but cost more manifest bookkeeping.
  uint64_t chunk_bytes = 4096;
  // All non-owning; any may be null (features degrade gracefully).
  Simulator* sim = nullptr;           // Virtual clock for windows and traces.
  const CostModel* cost = nullptr;    // Flat interconnect-time fallback.
  FaultPlan* fault_plan = nullptr;    // In-flight corruption injection.
  TraceRecorder* trace = nullptr;     // publish/import spans ("store" track).
  // Routes fetched bytes over the cluster's physical links (from the nearest
  // caching replica), serializing against concurrent IPC and migration
  // traffic. Null = flat CostModel::NetworkTime charge, no link occupancy.
  NetworkTopology* topology = nullptr;
};

// What a publisher hands the store: named append-only streams plus the
// identity/size metadata consumers need for cost decisions.
struct SnapshotPayload {
  std::string label;            // Debug/trace only; not part of the key.
  uint64_t model_fingerprint = 0;
  uint64_t tokens = 0;          // Pred tokens the snapshot covers.
  std::vector<std::pair<std::string, std::string>> streams;
};

struct StreamManifest {
  std::string name;
  uint64_t bytes = 0;
  std::vector<uint64_t> chunks;  // Content-address (= checksum) per chunk.
};

struct SnapshotManifest {
  uint64_t key = 0;
  std::string label;
  uint64_t model_fingerprint = 0;
  uint64_t tokens = 0;
  uint64_t bytes = 0;
  std::vector<StreamManifest> streams;
};

struct PublishResult {
  uint64_t key = 0;
  bool deduped = false;          // An identical snapshot was already stored.
  uint64_t new_bytes = 0;        // Chunk bytes this publish actually added.
  uint64_t deduped_bytes = 0;    // Bytes satisfied by existing chunks.
};

struct FetchResult {
  const SnapshotManifest* manifest = nullptr;
  // Reassembled streams, in manifest order (checksum-verified).
  std::vector<std::pair<std::string, std::string>> streams;
  uint64_t bytes_fetched = 0;    // Moved over the interconnect.
  uint64_t chunks_fetched = 0;
  uint64_t chunk_hits = 0;       // Already cached at the replica.
  SimDuration transfer_time = 0; // Cost-model time for bytes_fetched.
};

struct SnapshotStoreStats {
  uint64_t publishes = 0;
  uint64_t publish_dedup_hits = 0;   // Whole-snapshot dedups.
  uint64_t published_bytes = 0;      // New chunk bytes stored.
  uint64_t deduped_bytes = 0;        // Publish bytes satisfied by dedup.
  uint64_t fetches = 0;
  uint64_t fetched_bytes = 0;        // Bytes that moved over the network.
  uint64_t local_hit_bytes = 0;      // Bytes served from the replica cache.
  uint64_t corrupt_chunks_detected = 0;  // Checksum mismatches on transfer.
  uint64_t corrupt_fetch_failures = 0;   // Fetches aborted after retry.
  uint64_t releases = 0;
  uint64_t snapshots_dropped = 0;
  uint64_t chunks_dropped = 0;
  uint64_t fenced_fetches = 0;  // Fetches refused from fenced replicas.
};

class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options = {});

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Stores `payload`, dedup-aware, and returns its content key holding one
  // new reference for the caller (every Publish must eventually be matched
  // by a Release). The publishing replica's cache is marked as holding every
  // chunk — the data originated there.
  PublishResult Publish(size_t replica, const SnapshotPayload& payload);

  // Reassembles snapshot `key` at `replica`: chunks missing from the
  // replica's cache move over the interconnect — routed per source replica
  // through the topology when one is wired, flat cost-model time otherwise;
  // either way reported in the result's transfer_time (0 when nothing moved)
  // — and are checksum-verified on arrival. A mismatch is retried once
  // (fresh fault draw) and then fails the fetch with kUnavailable, so
  // corrupted data is NEVER returned. Does not take a reference.
  StatusOr<FetchResult> Fetch(size_t replica, uint64_t key);

  // Reference counting. A snapshot whose count reaches zero is dropped,
  // along with any chunks no surviving snapshot references.
  Status Acquire(uint64_t key);
  Status Release(uint64_t key);

  // Fencing (control plane, src/ctrl): a fenced replica's fetches fail with
  // kFailedPrecondition and its cached chunks stop being offered as fetch
  // sources — a replica declared dead must be unable to touch shared state
  // until readmitted at a new epoch.
  void SetReplicaFenced(size_t replica, bool fenced);
  // Readmission: the rebuilt replica's chunk cache is gone with its old
  // process, so the store must forget what the old incarnation held.
  void ForgetReplica(size_t replica);

  const SnapshotManifest* Find(uint64_t key) const;
  bool Contains(uint64_t key) const { return Find(key) != nullptr; }
  // True when every chunk of `key` is already cached at `replica` (an import
  // would move zero bytes).
  bool LocalAt(size_t replica, uint64_t key) const;

  size_t snapshot_count() const { return manifests_.size(); }
  size_t chunk_count() const { return chunks_.size(); }
  uint64_t stored_bytes() const { return stored_bytes_; }
  const SnapshotStoreStats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::string bytes;
    uint64_t refs = 0;
  };
  struct Stored {
    SnapshotManifest manifest;
    uint64_t refs = 0;
  };

  SimTime Now() const;
  std::unordered_set<uint64_t>& CacheFor(size_t replica);
  // The caching replica closest to `replica` in the topology (ties toward
  // the lowest index); SIZE_MAX when no other replica holds the chunk.
  size_t NearestHolder(size_t replica, uint64_t chunk_key) const;

  SnapshotStoreOptions options_;
  std::unordered_map<uint64_t, Chunk> chunks_;
  std::unordered_map<uint64_t, Stored> manifests_;
  // Per-replica set of locally cached chunk keys (grown on demand).
  std::vector<std::unordered_set<uint64_t>> local_;
  std::vector<bool> fenced_;
  uint64_t stored_bytes_ = 0;
  SnapshotStoreStats stats_;
};

// Content address (= checksum) of one chunk. Exposed for tests that need to
// prove a corrupted chunk can never keep its address.
uint64_t SnapshotChunkKey(std::string_view bytes);

}  // namespace symphony

#endif  // SRC_STORE_SNAPSHOT_STORE_H_
