#include "src/store/snapshot_store.h"

#include <algorithm>
#include <map>

#include "src/common/hash.h"
#include "src/net/topology.h"

namespace symphony {

uint64_t SnapshotChunkKey(std::string_view bytes) {
  // Length is mixed in so a truncated chunk cannot alias a shorter one.
  return Mix64(Fnv1a(bytes) ^ (bytes.size() * 0x9e3779b97f4a7c15ULL));
}

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(options) {
  if (options_.chunk_bytes == 0) {
    options_.chunk_bytes = 4096;
  }
}

SimTime SnapshotStore::Now() const {
  return options_.sim != nullptr ? options_.sim->now() : 0;
}

std::unordered_set<uint64_t>& SnapshotStore::CacheFor(size_t replica) {
  if (replica >= local_.size()) {
    local_.resize(replica + 1);
  }
  return local_[replica];
}

size_t SnapshotStore::NearestHolder(size_t replica, uint64_t chunk_key) const {
  size_t best = SIZE_MAX;
  SimDuration best_dist = 0;
  for (size_t holder = 0; holder < local_.size(); ++holder) {
    if (holder == replica || local_[holder].count(chunk_key) == 0 ||
        (holder < fenced_.size() && fenced_[holder])) {
      continue;  // A fenced replica cannot serve chunks either.
    }
    SimDuration dist = options_.topology != nullptr
                           ? options_.topology->Distance(holder, replica)
                           : 0;
    if (best == SIZE_MAX || dist < best_dist) {
      best = holder;
      best_dist = dist;
    }
  }
  return best;
}

PublishResult SnapshotStore::Publish(size_t replica,
                                     const SnapshotPayload& payload) {
  ++stats_.publishes;
  PublishResult result;

  // Chunk every stream and derive the content key. Streams hash in caller
  // order; journal checkpoints sort their thread paths so the key is stable.
  SnapshotManifest manifest;
  manifest.label = payload.label;
  manifest.model_fingerprint = payload.model_fingerprint;
  manifest.tokens = payload.tokens;
  uint64_t key = Mix64(0x5eedc0de5eedc0deULL ^ payload.model_fingerprint);
  for (const auto& [name, bytes] : payload.streams) {
    StreamManifest stream;
    stream.name = name;
    stream.bytes = bytes.size();
    key = HashCombine(key, Fnv1a(name));
    for (size_t offset = 0; offset < bytes.size();
         offset += options_.chunk_bytes) {
      size_t len = std::min<size_t>(options_.chunk_bytes,
                                    bytes.size() - offset);
      uint64_t chunk_key =
          SnapshotChunkKey(std::string_view(bytes).substr(offset, len));
      stream.chunks.push_back(chunk_key);
      key = HashCombine(key, chunk_key);
    }
    key = HashCombine(key, stream.bytes);
    manifest.bytes += stream.bytes;
    manifest.streams.push_back(std::move(stream));
  }
  manifest.key = key;
  result.key = key;

  std::unordered_set<uint64_t>& cache = CacheFor(replica);
  auto existing = manifests_.find(key);
  if (existing != manifests_.end()) {
    // Identical content already published (possibly by another replica):
    // one more reference, no new bytes. The publisher has the data locally
    // by construction, so its cache learns the chunks too.
    ++existing->second.refs;
    ++stats_.publish_dedup_hits;
    result.deduped = true;
    result.deduped_bytes = manifest.bytes;
    stats_.deduped_bytes += manifest.bytes;
    for (const StreamManifest& stream : existing->second.manifest.streams) {
      for (uint64_t chunk_key : stream.chunks) {
        cache.insert(chunk_key);
      }
    }
  } else {
    // Store chunks, reusing any shared with earlier snapshots (the prefix of
    // a grown stream, or identical content elsewhere).
    for (const auto& [name, bytes] : payload.streams) {
      for (size_t offset = 0; offset < bytes.size();
           offset += options_.chunk_bytes) {
        size_t len = std::min<size_t>(options_.chunk_bytes,
                                      bytes.size() - offset);
        std::string_view slice = std::string_view(bytes).substr(offset, len);
        uint64_t chunk_key = SnapshotChunkKey(slice);
        Chunk& chunk = chunks_[chunk_key];
        if (chunk.refs == 0) {
          chunk.bytes = std::string(slice);
          stored_bytes_ += len;
          result.new_bytes += len;
        } else {
          result.deduped_bytes += len;
        }
        ++chunk.refs;
        cache.insert(chunk_key);
      }
    }
    stats_.published_bytes += result.new_bytes;
    stats_.deduped_bytes += result.deduped_bytes;
    Stored stored;
    stored.manifest = std::move(manifest);
    stored.refs = 1;
    manifests_.emplace(key, std::move(stored));
  }

  if (options_.trace != nullptr) {
    options_.trace->Instant(
        "store",
        "publish:" + payload.label + ":" + std::to_string(result.new_bytes) +
            "B(+" + std::to_string(result.deduped_bytes) + "B dedup)",
        Now());
  }
  return result;
}

StatusOr<FetchResult> SnapshotStore::Fetch(size_t replica, uint64_t key) {
  if (replica < fenced_.size() && fenced_[replica]) {
    ++stats_.fenced_fetches;
    return FailedPreconditionError("replica " + std::to_string(replica) +
                                   " is fenced");
  }
  auto it = manifests_.find(key);
  if (it == manifests_.end()) {
    return NotFoundError("no snapshot " + std::to_string(key));
  }
  ++stats_.fetches;
  const SnapshotManifest& manifest = it->second.manifest;
  std::unordered_set<uint64_t>& cache = CacheFor(replica);

  FetchResult result;
  result.manifest = &manifest;
  // Moved bytes grouped by nearest caching replica (the simulated source);
  // SIZE_MAX groups chunks no replica cache holds (flat-charged fallback).
  // std::map: deterministic transfer order.
  std::map<size_t, uint64_t> moved_by_source;
  for (const StreamManifest& stream : manifest.streams) {
    std::string bytes;
    bytes.reserve(stream.bytes);
    for (uint64_t chunk_key : stream.chunks) {
      auto cit = chunks_.find(chunk_key);
      if (cit == chunks_.end()) {
        return InternalError("snapshot " + std::to_string(key) +
                             " references a dropped chunk");
      }
      const Chunk& chunk = cit->second;
      if (cache.count(chunk_key) > 0) {
        ++result.chunk_hits;
        stats_.local_hit_bytes += chunk.bytes.size();
        bytes.append(chunk.bytes);
        continue;
      }
      // Simulated network transfer: the moving copy may be corrupted by a
      // fault window; recomputing the content address over the received
      // bytes is the checksum. One re-read on mismatch (a fresh fault draw),
      // then give up — the caller falls back to recompute or retries later.
      bool verified = false;
      std::string moved;
      for (uint32_t attempt = 1; attempt <= 2; ++attempt) {
        moved = chunk.bytes;
        if (options_.fault_plan != nullptr) {
          options_.fault_plan->OnKvTransfer(Now(), chunk_key, attempt, &moved);
        }
        if (SnapshotChunkKey(moved) == chunk_key) {
          verified = true;
          break;
        }
        ++stats_.corrupt_chunks_detected;
      }
      if (!verified) {
        ++stats_.corrupt_fetch_failures;
        if (options_.trace != nullptr) {
          options_.trace->Instant(
              "store", "import-corrupt:" + manifest.label, Now());
        }
        return UnavailableError("kv snapshot chunk corrupted in transfer "
                                "(snapshot " + manifest.label + ")");
      }
      moved_by_source[NearestHolder(replica, chunk_key)] += moved.size();
      result.bytes_fetched += moved.size();
      ++result.chunks_fetched;
      stats_.fetched_bytes += moved.size();
      cache.insert(chunk_key);
      bytes.append(moved);
    }
    result.streams.emplace_back(stream.name, std::move(bytes));
  }
  if (result.bytes_fetched > 0) {
    // Nothing moved = nothing charged; only actual packets pay wire time.
    if (options_.topology != nullptr) {
      // One transfer per source replica, all racing in parallel over their
      // own routes (and queueing where those routes share links); the fetch
      // completes when the slowest source delivers.
      SimTime now = Now();
      SimTime arrival = now;
      uint64_t unsourced = 0;
      for (const auto& [source, moved_bytes] : moved_by_source) {
        if (source == SIZE_MAX) {
          unsourced = moved_bytes;
          continue;
        }
        arrival = std::max(
            arrival, options_.topology->Transfer(source, replica, moved_bytes,
                                                 "store:" + manifest.label));
      }
      result.transfer_time = arrival - now;
      if (unsourced > 0 && options_.cost != nullptr) {
        result.transfer_time = std::max(
            result.transfer_time, options_.cost->NetworkTime(unsourced));
      }
    } else if (options_.cost != nullptr) {
      result.transfer_time = options_.cost->NetworkTime(result.bytes_fetched);
    }
  }
  if (options_.trace != nullptr) {
    if (result.bytes_fetched > 0) {
      options_.trace->Span("store",
                           "import:" + manifest.label + ":" +
                               std::to_string(result.bytes_fetched) + "B",
                           Now(), result.transfer_time);
    } else {
      options_.trace->Instant("store", "import-hit:" + manifest.label, Now());
    }
  }
  return result;
}

Status SnapshotStore::Acquire(uint64_t key) {
  auto it = manifests_.find(key);
  if (it == manifests_.end()) {
    return NotFoundError("no snapshot " + std::to_string(key));
  }
  ++it->second.refs;
  return Status::Ok();
}

Status SnapshotStore::Release(uint64_t key) {
  auto it = manifests_.find(key);
  if (it == manifests_.end()) {
    return NotFoundError("no snapshot " + std::to_string(key));
  }
  ++stats_.releases;
  if (--it->second.refs > 0) {
    return Status::Ok();
  }
  // Last reference: drop the manifest and any chunks it alone kept alive.
  for (const StreamManifest& stream : it->second.manifest.streams) {
    for (uint64_t chunk_key : stream.chunks) {
      auto cit = chunks_.find(chunk_key);
      if (cit == chunks_.end()) {
        continue;
      }
      if (--cit->second.refs == 0) {
        stored_bytes_ -= cit->second.bytes.size();
        for (auto& cache : local_) {
          cache.erase(chunk_key);
        }
        chunks_.erase(cit);
        ++stats_.chunks_dropped;
      }
    }
  }
  manifests_.erase(it);
  ++stats_.snapshots_dropped;
  return Status::Ok();
}

void SnapshotStore::SetReplicaFenced(size_t replica, bool fenced) {
  if (replica >= fenced_.size()) {
    fenced_.resize(replica + 1, false);
  }
  fenced_[replica] = fenced;
}

void SnapshotStore::ForgetReplica(size_t replica) {
  if (replica < local_.size()) {
    local_[replica].clear();
  }
}

const SnapshotManifest* SnapshotStore::Find(uint64_t key) const {
  auto it = manifests_.find(key);
  return it == manifests_.end() ? nullptr : &it->second.manifest;
}

bool SnapshotStore::LocalAt(size_t replica, uint64_t key) const {
  const SnapshotManifest* manifest = Find(key);
  if (manifest == nullptr || replica >= local_.size()) {
    return manifest != nullptr && manifest->bytes == 0;
  }
  const std::unordered_set<uint64_t>& cache = local_[replica];
  for (const StreamManifest& stream : manifest->streams) {
    for (uint64_t chunk_key : stream.chunks) {
      if (cache.count(chunk_key) == 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace symphony
