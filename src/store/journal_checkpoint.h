// Journal checkpointing against the SnapshotStore.
//
// CheckpointJournal serializes a SyscallJournal's entire logical log — the
// previously folded prefix (re-read from the store) plus the live suffix —
// into per-thread-path append-only streams, publishes the result as one
// content-addressed snapshot, and truncates the live entries from memory
// (SyscallJournal::FoldPrefix). Because serialization is deterministic and
// streams only ever grow, consecutive checkpoint generations share all but
// their tail chunks, so folding is cheap after the first time.
//
// RehydrateJournal is the inverse: before a truncated journal can drive a
// replay, its folded prefix is fetched from the store (paying interconnect
// time for chunks the target replica doesn't already cache), deserialized,
// and reinstated, restoring the full in-memory log. Replay from
// (checkpoint + suffix) is therefore bit-identical to replay from a journal
// that never truncated: it IS the same entry sequence.
//
// The serializers are also used stand-alone: KV-file record streams for
// cross-replica prefix sharing, and serialized sizes for delta-migration
// ship accounting.
#ifndef SRC_STORE_JOURNAL_CHECKPOINT_H_
#define SRC_STORE_JOURNAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/kvfs.h"
#include "src/recovery/journal.h"
#include "src/store/snapshot_store.h"

namespace symphony {

// ---- Deterministic binary codec (little-endian, fixed-width) ------------

// Appends one journal entry to a stream; the encoding is append-only stable:
// serializing entries [0, n) then [0, m), m > n, yields byte-identical
// prefixes, which is what makes checkpoint chunks dedup across generations.
void AppendJournalEntry(std::string* out, const JournalEntry& entry);
std::string SerializeJournalEntries(const std::vector<JournalEntry>& entries);
StatusOr<std::vector<JournalEntry>> ParseJournalEntries(
    const std::string& bytes);

// KV-file record streams (cross-replica prefix sharing).
std::string SerializeTokenRecords(const std::vector<TokenRecord>& records);
StatusOr<std::vector<TokenRecord>> ParseTokenRecords(const std::string& bytes);

// Serialized size of the live (post-checkpoint) suffix / the whole resident
// log: the bytes a delta / full migration ships.
uint64_t JournalLiveBytes(const SyscallJournal& journal);

// ---- Checkpoint fold / rehydrate ----------------------------------------

struct CheckpointOutcome {
  uint64_t key = 0;              // New checkpoint snapshot.
  uint64_t folded_entries = 0;   // Entries truncated by this fold.
  uint64_t new_bytes = 0;        // Chunk bytes the publish actually added.
};

// Folds every live entry of `journal` into a new store snapshot published
// from `replica`, releasing the superseded checkpoint. No-op success when
// nothing is live. Fails without touching the journal if the previous
// checkpoint cannot be re-read (e.g. a corruption window) — the journal just
// stays fatter until the next interval crossing.
StatusOr<CheckpointOutcome> CheckpointJournal(SnapshotStore& store,
                                              size_t replica,
                                              uint64_t model_fingerprint,
                                              SyscallJournal& journal);

struct RehydrateOutcome {
  uint64_t entries_restored = 0;
  uint64_t bytes_fetched = 0;     // Moved over the interconnect.
  SimDuration transfer_time = 0;  // Cost-model charge for those bytes.
};

// Reinstates `journal`'s folded prefix from its checkpoint snapshot so a
// full-log replay can run at `replica`. No-op success when nothing is
// folded. The checkpoint reference is kept: its chunks stay alive for the
// next fold's dedup and for other replicas' imports.
StatusOr<RehydrateOutcome> RehydrateJournal(SnapshotStore& store,
                                            size_t replica,
                                            SyscallJournal& journal);

}  // namespace symphony

#endif  // SRC_STORE_JOURNAL_CHECKPOINT_H_
