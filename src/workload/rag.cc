#include "src/workload/rag.h"

#include <algorithm>
#include <memory>

#include "src/common/hash.h"
#include "src/runtime/lip_context.h"
#include "src/sim/distributions.h"

namespace symphony {

namespace {

// Uniform word token derived from a hash chain.
TokenId WordTokenFromHash(uint64_t h, uint32_t vocab_size) {
  uint32_t words = vocab_size - static_cast<uint32_t>(kFirstWordToken);
  return kFirstWordToken + static_cast<TokenId>(Mix64(h) % words);
}

struct RequestRecord {
  SimTime arrival = 0;
  SimTime finish = 0;
  uint64_t generated = 0;
  bool cache_hit = false;
  bool ok = false;
};

RagRunResult Summarize(std::string system, const RagConfig& config,
                       const std::vector<RequestRecord>& records,
                       double gpu_utilization, SimTime end_time) {
  RagRunResult result;
  result.system = std::move(system);
  result.pareto_index = config.pareto_index;
  result.request_rate = config.request_rate;
  SampleSeries per_token_ms;
  SampleSeries e2e_ms;
  for (const RequestRecord& r : records) {
    if (!r.ok) {
      ++result.failed;
      continue;
    }
    ++result.completed;
    result.generated_tokens += r.generated;
    result.cache_hits += r.cache_hit ? 1 : 0;
    if (r.generated > 0) {
      per_token_ms.Add(ToMillis(r.finish - r.arrival) /
                       static_cast<double>(r.generated));
    }
    e2e_ms.Add(ToMillis(r.finish - r.arrival));
  }
  result.duration_s = ToSeconds(end_time);
  if (result.duration_s > 0) {
    result.throughput_tok_s =
        static_cast<double>(result.generated_tokens) / result.duration_s;
  }
  result.mean_latency_per_token_ms = per_token_ms.mean();
  result.p99_latency_per_token_ms = per_token_ms.Percentile(0.99);
  result.mean_e2e_ms = e2e_ms.mean();
  result.gpu_utilization = gpu_utilization;
  return result;
}

}  // namespace

RagCorpus::RagCorpus(const RagConfig& config, uint32_t vocab_size)
    : seed_(config.seed),
      query_tokens_(config.query_tokens),
      vocab_size_(vocab_size) {
  instruction_.reserve(config.instruction_tokens);
  uint64_t ih = Mix64(seed_ ^ 0x1257ac710ULL);
  for (uint32_t i = 0; i < config.instruction_tokens; ++i) {
    ih = Mix64(ih + i + 1);
    instruction_.push_back(WordTokenFromHash(ih, vocab_size_));
  }
  docs_.resize(config.num_docs);
  for (size_t topic = 0; topic < config.num_docs; ++topic) {
    std::vector<TokenId>& doc = docs_[topic];
    doc.reserve(config.doc_tokens);
    uint64_t h = Mix64(seed_ ^ (0xd0c0000ULL + topic));
    for (uint32_t i = 0; i < config.doc_tokens; ++i) {
      h = Mix64(h + i + 1);
      doc.push_back(WordTokenFromHash(h, vocab_size_));
    }
  }
}

std::vector<TokenId> RagCorpus::MakeQuery(size_t topic, uint64_t request_id) const {
  std::vector<TokenId> query;
  query.reserve(query_tokens_);
  // Topic marker token keeps queries for the same topic related.
  query.push_back(WordTokenFromHash(seed_ ^ (0x70b1cULL + topic), vocab_size_));
  uint64_t h = Mix64(seed_ ^ Mix64(0x9e3779b9ULL + request_id));
  for (uint32_t i = 1; i < query_tokens_; ++i) {
    h = Mix64(h + i);
    query.push_back(WordTokenFromHash(h, vocab_size_));
  }
  return query;
}

std::vector<TokenId> RagCorpus::MakePrompt(size_t topic, uint64_t request_id,
                                           PromptLayout layout) const {
  std::vector<TokenId> query = MakeQuery(topic, request_id);
  std::vector<TokenId> prompt;
  if (layout == PromptLayout::kDocFirst) {
    prompt = docs_[topic];
    prompt.insert(prompt.end(), query.begin(), query.end());
    return prompt;
  }
  prompt = instruction_;
  prompt.insert(prompt.end(), query.begin(), query.end());
  prompt.insert(prompt.end(), docs_[topic].begin(), docs_[topic].end());
  return prompt;
}

RagRunResult RunRagOnBaseline(const RagConfig& config, BaselineOptions baseline) {
  Simulator sim;
  PromptServer server(&sim, baseline);
  RagCorpus corpus(config, baseline.model.vocab_size);
  ParetoCatalog popularity(config.num_docs, config.pareto_index, config.seed + 1);
  PoissonProcess arrivals(config.request_rate, config.seed + 2);

  std::vector<RequestRecord> records(config.num_requests);

  SimTime when = 0;
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    when += arrivals.NextGap();
    size_t topic = popularity.Next();
    sim.ScheduleAt(when, [&, i, topic] {
      records[i].arrival = sim.now();
      CompletionRequest request;
      request.id = i;
      request.prompt = corpus.MakePrompt(topic, i, config.baseline_layout);
      request.max_new_tokens = config.answer_tokens;
      request.stop_at_eos = false;  // Fixed-length answers for comparability.
      request.done = [&records, i](const CompletionResponse& response) {
        records[i].finish = response.finish_time;
        records[i].generated = response.tokens.size();
        records[i].cache_hit = response.cache_hit;
        records[i].ok = response.status.ok();
      };
      server.Submit(std::move(request));
    });
  }
  sim.Run();
  return Summarize(baseline.name, config, records, server.device().Utilization(),
                   sim.now());
}

namespace {

// The paper's §5 LIP: application-managed prompt caching. The application
// knows its topic popularity ranking and retains KV for the top-K topics as
// named shared files; other topics are computed and discarded.
LipProgram MakeRagLip(const RagCorpus* corpus, size_t topic, uint64_t request_id,
                      const RagConfig* config, RequestRecord* record) {
  return [=](LipContext& ctx) -> Task {
    std::string cache_path = "/cache/doc_" + std::to_string(topic);
    KvHandle kv{};
    bool hit = false;

    if (ctx.kv_exists(cache_path)) {
      StatusOr<KvHandle> shared = ctx.kv_open(cache_path);
      if (shared.ok()) {
        StatusOr<KvHandle> fork = ctx.kv_fork(*shared);
        (void)ctx.kv_close(*shared);
        if (fork.ok()) {
          kv = *fork;
          hit = true;
        }
      }
    }
    if (!hit) {
      StatusOr<KvHandle> fresh = ctx.kv_tmp();
      if (!fresh.ok()) {
        co_return;
      }
      kv = *fresh;
      StatusOr<std::vector<Distribution>> prefill =
          co_await ctx.pred(kv, corpus->doc(topic));
      if (!prefill.ok()) {
        co_return;
      }
      // Application policy: retain only the K most popular topics, and pin
      // the very hottest on-GPU so they are never offloaded.
      if (topic < config->cache_top_k && !ctx.kv_exists(cache_path)) {
        StatusOr<KvHandle> cache_copy = ctx.kv_fork(kv);
        if (cache_copy.ok()) {
          if (ctx.kv_link(*cache_copy, cache_path).ok()) {
            (void)ctx.kv_chmod(*cache_copy, kModeShared);
            if (topic < config->pin_top_k) {
              (void)ctx.kv_pin(*cache_copy);
            }
          }
          (void)ctx.kv_close(*cache_copy);
        }
      }
    }
    record->cache_hit = hit;

    std::vector<TokenId> query = corpus->MakeQuery(topic, request_id);
    StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, query);
    if (!dists.ok()) {
      co_return;
    }
    TokenId next = dists->back().Argmax();
    uint64_t generated = 0;
    while (generated < config->answer_tokens) {
      ++generated;  // `next` is the freshly generated token.
      if (generated >= config->answer_tokens) {
        break;
      }
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, next);
      if (!d.ok()) {
        co_return;
      }
      next = d->back().Argmax();
    }
    record->generated = generated;
    record->ok = true;
    co_return;
  };
}

}  // namespace

RagRunResult RunRagOnSymphony(const RagConfig& config, ServerOptions server_options) {
  Simulator sim;
  SymphonyServer server(&sim, server_options);
  RagCorpus corpus(config, server_options.model.vocab_size);
  ParetoCatalog popularity(config.num_docs, config.pareto_index, config.seed + 1);
  PoissonProcess arrivals(config.request_rate, config.seed + 2);

  std::vector<RequestRecord> records(config.num_requests);

  // Driver-side admission: at most max_active request LIPs in flight, the
  // rest queue (latency includes the queue wait), mirroring the baselines'
  // continuous-batching slot limit.
  struct Pending {
    uint64_t id;
    size_t topic;
  };
  std::deque<Pending> pending;
  size_t active = 0;
  std::function<void()> maybe_launch = [&] {
    while (active < config.max_active && !pending.empty()) {
      Pending next = pending.front();
      pending.pop_front();
      ++active;
      server.Launch("rag-" + std::to_string(next.id),
                    MakeRagLip(&corpus, next.topic, next.id, &config,
                               &records[next.id]),
                    [&, id = next.id](LipId) {
                      records[id].finish = sim.now();
                      --active;
                      maybe_launch();
                    });
    }
  };

  SimTime when = 0;
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    when += arrivals.NextGap();
    size_t topic = popularity.Next();
    sim.ScheduleAt(when, [&, i, topic] {
      records[i].arrival = sim.now();
      pending.push_back(Pending{i, topic});
      maybe_launch();
    });
  }
  sim.Run();
  RagRunResult result = Summarize("symphony", config, records,
                                  server.device().Utilization(), sim.now());
  result.mean_batch_size = server.device().batch_sizes().mean();
  result.batches = server.device().stats().batches;
  result.offloaded_pages = server.kvfs().stats().offloaded_pages;
  result.restored_pages = server.kvfs().stats().restored_pages;
  return result;
}

RagRunResult RunRagOnCluster(const RagConfig& config,
                             ClusterOptions cluster_options) {
  Simulator sim;
  SymphonyCluster cluster(&sim, cluster_options);
  RagCorpus corpus(config, cluster_options.server.model.vocab_size);
  ParetoCatalog popularity(config.num_docs, config.pareto_index, config.seed + 1);
  PoissonProcess arrivals(config.request_rate, config.seed + 2);

  std::vector<RequestRecord> records(config.num_requests);

  // Per-replica admission of config.max_active concurrent LIPs; pending
  // requests queue per replica (routing is decided at arrival).
  struct Pending {
    uint64_t id;
    size_t topic;
  };
  size_t replicas = cluster.replica_count();
  std::vector<std::deque<Pending>> pending(replicas);
  std::vector<size_t> active(replicas, 0);
  std::function<void(size_t)> maybe_launch = [&](size_t replica) {
    while (active[replica] < config.max_active && !pending[replica].empty()) {
      Pending next = pending[replica].front();
      pending[replica].pop_front();
      ++active[replica];
      cluster.replica(replica).Launch(
          "rag-" + std::to_string(next.id),
          MakeRagLip(&corpus, next.topic, next.id, &config, &records[next.id]),
          [&, id = next.id, replica](LipId) {
            records[id].finish = sim.now();
            --active[replica];
            maybe_launch(replica);
          });
    }
  };

  SimTime when = 0;
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    when += arrivals.NextGap();
    size_t topic = popularity.Next();
    sim.ScheduleAt(when, [&, i, topic] {
      records[i].arrival = sim.now();
      size_t replica = cluster.RouteFor("doc_" + std::to_string(topic));
      pending[replica].push_back(Pending{i, topic});
      maybe_launch(replica);
    });
  }
  sim.Run();

  double busy = 0.0;
  for (size_t r = 0; r < replicas; ++r) {
    busy += cluster.replica(r).device().Utilization();
  }
  RagRunResult result = Summarize(
      "cluster-x" + std::to_string(replicas), config, records,
      busy / static_cast<double>(replicas), sim.now());
  return result;
}

}  // namespace symphony
