// The paper's §5 evaluation workload: retrieval-augmented generation.
//
// "The application inputs a topic, fetches the relevant document, and
// generates an answer. There are 100 documents, each containing 3,000
// tokens." Topic popularity follows a Pareto-index-controlled distribution;
// requests arrive as a Poisson process.
//
// Two drivers run the identical workload:
//   * RunRagOnBaseline  — text-completion requests against a PromptServer
//     (vLLM-like or TGI-like), prompt = document + query.
//   * RunRagOnSymphony  — one LIP per request implementing the paper's
//     application-managed caching policy: keep the KV files of the top-K
//     most popular topics as named, shared KVFS files and fork them per
//     request; recompute (and drop) everything else.
#ifndef SRC_WORKLOAD_RAG_H_
#define SRC_WORKLOAD_RAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/baseline/prompt_server.h"
#include "src/serve/cluster.h"
#include "src/serve/server.h"
#include "src/sim/stats.h"

namespace symphony {

// How a *prompt-serving* client lays out its completion request. Prefix
// caching can only reuse KV for a shared prefix:
//   kQueryFirst — the natural chat layout [instruction, query, document]:
//                 the per-request query defeats prefix reuse of the document
//                 (the situation PromptCache-style modular reuse targets).
//   kDocFirst   — [document, query]: maximally favorable to prefix caching
//                 (used by the ablation to show when vLLM-like catches up).
// Symphony LIPs always control their own context layout and use doc-first.
enum class PromptLayout {
  kQueryFirst,
  kDocFirst,
};

struct RagConfig {
  size_t num_docs = 100;
  uint32_t doc_tokens = 3000;
  uint32_t instruction_tokens = 16;  // Shared preamble (chat layout only).
  uint32_t query_tokens = 24;
  uint32_t answer_tokens = 32;
  PromptLayout baseline_layout = PromptLayout::kQueryFirst;
  double pareto_index = 1.0;    // Small = few topics dominate (§5).
  double request_rate = 2.0;    // Poisson arrivals per second.
  size_t num_requests = 200;
  size_t cache_top_k = 20;      // Symphony LIP policy: topics to retain.
  // Symphony LIP policy refinement (off by default; exercised by the
  // bench_kv_policy ablation): pin the KV of the hottest topics on-GPU so
  // they are never evicted/offloaded. Wasteful at flat popularity.
  size_t pin_top_k = 0;
  // Admission limit for concurrent request LIPs. Defaults to the baselines'
  // continuous-batching slot count; may be set higher for Symphony because
  // forked KV files share document pages, so concurrent requests on popular
  // topics have a much smaller private footprint than baseline sequences.
  size_t max_active = 16;
  uint64_t seed = 42;
};

// Deterministic synthetic corpus: document/query token streams are pure
// functions of (seed, topic, request id).
class RagCorpus {
 public:
  RagCorpus(const RagConfig& config, uint32_t vocab_size);

  size_t num_docs() const { return docs_.size(); }
  const std::vector<TokenId>& doc(size_t topic) const { return docs_[topic]; }

  // Per-request query tokens (start with a topic marker, then noise).
  std::vector<TokenId> MakeQuery(size_t topic, uint64_t request_id) const;

  // Shared instruction preamble (identical across requests).
  const std::vector<TokenId>& instruction() const { return instruction_; }

  // Baseline prompt in the given layout.
  std::vector<TokenId> MakePrompt(size_t topic, uint64_t request_id,
                                  PromptLayout layout) const;

 private:
  uint64_t seed_;
  uint32_t query_tokens_;
  uint32_t vocab_size_;
  std::vector<TokenId> instruction_;
  std::vector<std::vector<TokenId>> docs_;
};

struct RagRunResult {
  std::string system;
  double pareto_index = 0.0;
  double request_rate = 0.0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cache_hits = 0;
  uint64_t generated_tokens = 0;
  double duration_s = 0.0;
  double throughput_tok_s = 0.0;
  double mean_latency_per_token_ms = 0.0;
  double p99_latency_per_token_ms = 0.0;
  double mean_e2e_ms = 0.0;
  double gpu_utilization = 0.0;
  // Diagnostics (Symphony runs; zero for baselines).
  double mean_batch_size = 0.0;
  uint64_t batches = 0;
  uint64_t offloaded_pages = 0;
  uint64_t restored_pages = 0;
};

// Runs the workload to completion on a prompt server (vLLM/TGI-like).
RagRunResult RunRagOnBaseline(const RagConfig& config, BaselineOptions baseline);

// Runs the workload to completion on Symphony with the LIP caching policy.
// `server_options` lets callers pick batch policy etc.; model/hardware should
// match the baseline's for a fair comparison.
RagRunResult RunRagOnSymphony(const RagConfig& config, ServerOptions server_options);

// Runs the workload on a multi-replica cluster; requests route by the
// cluster's policy with the topic as the affinity key. The per-replica
// admission limit is config.max_active (so total concurrency scales with the
// replica count).
RagRunResult RunRagOnCluster(const RagConfig& config, ClusterOptions cluster_options);

}  // namespace symphony

#endif  // SRC_WORKLOAD_RAG_H_
