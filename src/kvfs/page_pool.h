// Tiered, reference-counted page storage for KV tensors.
//
// The pool virtualizes two memory tiers — device HBM and host DRAM — with
// fixed page budgets derived from the hardware config. Pages are refcounted
// so kv_fork can share pages copy-on-write; a write to a shared page goes
// through EnsureExclusive(), which transparently copies it.
//
// The pool is mechanism only. Which page to evict, and whether eviction means
// offload-to-host or drop, is policy owned by Kvfs/eviction.
#ifndef SRC_KVFS_PAGE_POOL_H_
#define SRC_KVFS_PAGE_POOL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/types.h"

namespace symphony {

struct PagePoolStats {
  uint64_t gpu_pages_used = 0;
  uint64_t host_pages_used = 0;
  uint64_t cow_copies = 0;        // Pages copied by EnsureExclusive.
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t tier_moves = 0;        // Offloads + restores.
};

class PagePool {
 public:
  // Budgets are in pages per tier.
  PagePool(uint64_t gpu_page_budget, uint64_t host_page_budget);

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  // Allocates an empty page in `tier` with refcount 1.
  StatusOr<PageId> Allocate(Tier tier);

  // Increments the sharing count (kv_fork).
  void Ref(PageId id);

  // Decrements; frees the page when the count reaches zero.
  void Unref(PageId id);

  // Returns `id` if exclusively owned, otherwise allocates a copy in the same
  // tier, moves one reference to it, and returns the copy.
  StatusOr<PageId> EnsureExclusive(PageId id);

  // Moves a page between tiers (accounting only; the caller charges transfer
  // time). Fails with kResourceExhausted if the target tier is full.
  Status MoveToTier(PageId id, Tier tier);

  // Record access (mutable interface used by files).
  TokenRecord* MutableRecords(PageId id);
  const TokenRecord* Records(PageId id) const;

  uint32_t used(PageId id) const;
  void set_used(PageId id, uint32_t used);
  uint32_t refcount(PageId id) const;
  Tier tier(PageId id) const;

  uint64_t gpu_pages_free() const { return gpu_budget_ - stats_.gpu_pages_used; }
  uint64_t host_pages_free() const { return host_budget_ - stats_.host_pages_used; }
  uint64_t gpu_budget() const { return gpu_budget_; }
  uint64_t host_budget() const { return host_budget_; }
  const PagePoolStats& stats() const { return stats_; }

 private:
  struct PageMeta {
    std::array<TokenRecord, kPageTokens> records;
    uint32_t used = 0;
    uint32_t refcount = 0;
    Tier tier = Tier::kGpu;
    bool live = false;
  };

  PageMeta& Meta(PageId id);
  const PageMeta& Meta(PageId id) const;
  uint64_t& TierUsage(Tier tier);

  uint64_t gpu_budget_;
  uint64_t host_budget_;
  std::vector<PageMeta> pages_;
  std::vector<PageId> free_list_;
  PagePoolStats stats_;
};

}  // namespace symphony

#endif  // SRC_KVFS_PAGE_POOL_H_
