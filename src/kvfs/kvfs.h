// KVFS: the KV-cache file system (paper §4.2).
//
// KVFS treats KV caches as files: they persist beyond a LIP's lifetime, can
// be shared across LIPs, and are manipulated with POSIX-like calls plus the
// specialized fork/extract/merge operations. Pages live in a tiered PagePool
// (GPU + host); when the GPU tier fills, an eviction policy picks victim
// files to offload or drop.
//
// Time/cost separation: KVFS never consumes virtual time itself. Operations
// that imply data movement (offload, restore, eviction) accumulate
// `pending_transfer_bytes`, which the serving layer drains and converts into
// simulated PCIe time. This keeps policy (here) and timing (gpu::Device)
// decoupled.
#ifndef SRC_KVFS_KVFS_H_
#define SRC_KVFS_KVFS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/kv_file.h"
#include "src/kvfs/page_pool.h"
#include "src/kvfs/types.h"
#include "src/sim/time.h"

namespace symphony {

// What to do when the GPU tier is full and a new page is needed.
enum class EvictionMode {
  kNone,        // Fail the allocation with kResourceExhausted.
  kDropLru,     // Free the least-recently-used eligible file entirely.
  kOffloadLru,  // Move the LRU eligible file's pages to the host tier
                // (falls back to dropping when the host tier is full too).
};

struct KvfsOptions {
  uint64_t gpu_page_budget = 4096;
  uint64_t host_page_budget = 16384;
  EvictionMode eviction = EvictionMode::kOffloadLru;
  // Virtual clock for LRU bookkeeping; defaults to a monotonic counter.
  std::function<SimTime()> clock;
};

struct OpenOptions {
  LipId requester = kNoLip;
  bool read = true;
  bool write = false;
  bool create = false;    // Create if missing.
  bool exclusive = false; // With create: fail if the path already exists.
  uint8_t create_mode = kModePrivate;
};

// Snapshot of one file's metadata, for introspection and eviction policies.
struct KvFileInfo {
  FileId id = kInvalidFile;
  std::string path;  // Empty for anonymous files.
  LipId owner = kNoLip;
  uint8_t mode = 0;
  uint64_t length = 0;
  uint64_t gpu_pages = 0;
  uint64_t host_pages = 0;
  bool pinned = false;
  bool locked = false;
  uint32_t open_count = 0;
  // Cumulative non-admin Open() calls on the path over the file's lifetime:
  // the cluster's prefix-sharing pass uses this as its hotness signal (its
  // own admin export opens don't count).
  uint64_t opens_total = 0;
  SimTime last_access = 0;
};

// Custom eviction hook: return the victim file id, or nullopt to give up.
// Candidates are pre-filtered to eligible files (not pinned/locked/open).
using EvictionHook =
    std::function<std::optional<FileId>(const std::vector<KvFileInfo>& candidates)>;

// Per-owner page quota hook (paper §6, resource accounting): returns the
// maximum page references the owner may hold; UINT64_MAX = unlimited. Admin
// is never limited.
using PageQuotaHook = std::function<uint64_t(LipId owner)>;

struct KvfsStats {
  uint64_t opens = 0;
  uint64_t forks = 0;
  uint64_t extracts = 0;
  uint64_t merges = 0;
  uint64_t evicted_files = 0;
  uint64_t dropped_files = 0;
  uint64_t offloaded_pages = 0;
  uint64_t restored_pages = 0;
  uint64_t acl_denials = 0;
  uint64_t snapshot_exports = 0;
  uint64_t snapshot_imports = 0;
  uint64_t imported_tokens = 0;  // Records written via Import{Records,Snapshot}.
};

// Portable, replica-independent copy of one KV file's logical contents
// (checkpoint/restore, src/recovery). TokenRecords are pure data — token,
// position, hidden state — so a snapshot can be imported into any replica's
// KVFS and the pages rematerialized there.
struct KvFileSnapshot {
  std::string path;  // Empty for anonymous files.
  uint8_t mode = kModePrivate;
  std::vector<TokenRecord> records;
};

class Kvfs {
 public:
  explicit Kvfs(KvfsOptions options);

  Kvfs(const Kvfs&) = delete;
  Kvfs& operator=(const Kvfs&) = delete;

  // ---- Namespace operations -------------------------------------------

  // Opens (optionally creating) the file at `path`.
  StatusOr<KvHandle> Open(std::string_view path, const OpenOptions& options);

  // Creates an unnamed file, visible only through the returned handle; it is
  // reclaimed when the handle closes.
  StatusOr<KvHandle> CreateAnonymous(LipId requester);

  Status Close(KvHandle handle);

  // Unlinks the path. Pages are reclaimed when the last handle closes.
  Status Remove(std::string_view path, LipId requester);

  // Gives the file at `path` a (new) name visible to other LIPs. Source must
  // be open by `handle` whose requester owns the file.
  Status Link(KvHandle handle, std::string_view path);

  bool Exists(std::string_view path) const;
  std::vector<std::string> List(std::string_view prefix) const;

  // ---- Data-plane operations ------------------------------------------

  // Copy-on-write clone (paper's kv_fork): shares all pages, O(#pages).
  StatusOr<KvHandle> Fork(KvHandle source, LipId requester);

  // New file holding copies of the records at `indices` (context pruning).
  // Indices must be strictly increasing.
  StatusOr<KvHandle> Extract(KvHandle source, std::span<const uint64_t> indices,
                             LipId requester);

  // New file holding the concatenation of the sources' records.
  StatusOr<KvHandle> Merge(std::span<const KvHandle> sources, LipId requester);

  Status Append(KvHandle handle, std::span<const TokenRecord> records);

  // ---- Snapshot export/import (checkpoint/restore, src/recovery) -------

  // Copies the file's logical contents into a portable snapshot.
  StatusOr<KvFileSnapshot> ExportSnapshot(KvHandle handle) const;

  // Materializes `snapshot` as a new anonymous file owned by `requester`,
  // with pages allocated in `tier` (host by default: the restore path pays
  // PCIe lazily, when a pred first needs the file on-device).
  StatusOr<KvHandle> ImportSnapshot(const KvFileSnapshot& snapshot,
                                    LipId requester, Tier tier = Tier::kHost);

  // Bulk-appends records into an existing file with pages in `tier`.
  // Atomic like Append, but host-tier imports skip GPU eviction pressure.
  Status ImportRecords(KvHandle handle, std::span<const TokenRecord> records,
                       Tier tier);

  StatusOr<TokenRecord> Read(KvHandle handle, uint64_t index);
  StatusOr<uint64_t> Length(KvHandle handle) const;
  StatusOr<HiddenState> TailState(KvHandle handle) const;
  Status Truncate(KvHandle handle, uint64_t new_length);

  // ---- Concurrency & policy controls ----------------------------------

  // Exclusive write lock. Only one holder; the holder's other handles to the
  // same file may still write. Locked files are eviction-exempt.
  Status Lock(KvHandle handle);
  Status Unlock(KvHandle handle);

  // Pinned files are never chosen as eviction victims.
  Status Pin(KvHandle handle);
  Status Unpin(KvHandle handle);

  Status SetMode(KvHandle handle, uint8_t mode);  // Owner or admin only.

  // ---- Residency (used by the serving layer) --------------------------

  // Moves all of the file's pages to the host tier.
  Status OffloadToHost(KvHandle handle);

  // Ensures all pages are GPU-resident, evicting other files if necessary.
  Status RestoreToGpu(KvHandle handle);

  // Ensures at least `pages` free GPU pages, evicting eligible files.
  Status ReserveGpuPages(uint64_t pages);

  // Moves every unpinned file owned by `owner` to the host tier (the §4.3
  // offload-while-blocked-on-I/O optimization). Files are restored lazily by
  // the next pred that uses them. Returns the number of pages moved; stops
  // early if the host tier fills.
  uint64_t OffloadOwnedBy(LipId owner);

  // Bytes of host<->device traffic implied by operations since the last call.
  uint64_t TakePendingTransferBytes();

  // ---- Introspection ---------------------------------------------------

  StatusOr<KvFileInfo> Stat(KvHandle handle) const;
  StatusOr<KvFileInfo> StatPath(std::string_view path) const;
  std::vector<KvFileInfo> ListAll() const;
  const KvfsStats& stats() const { return stats_; }
  const PagePool& pool() const { return pool_; }
  uint64_t bytes_per_page() const { return bytes_per_page_; }
  void set_bytes_per_page(uint64_t bytes) { bytes_per_page_ = bytes; }
  void set_eviction_hook(EvictionHook hook) { eviction_hook_ = std::move(hook); }
  void set_page_quota_hook(PageQuotaHook hook) { page_quota_ = std::move(hook); }

  // Page references currently attributed to files owned by `owner`.
  uint64_t OwnerPageRefs(LipId owner) const;

  // Direct data access for the serving layer / tests (bypasses ACLs).
  StatusOr<const KvFileData*> FileData(KvHandle handle) const;

 private:
  struct FileEntry {
    std::optional<KvFileData> data;
    std::string path;
    LipId owner = kNoLip;
    uint8_t mode = kModePrivate;
    bool pinned = false;
    bool unlinked = false;
    LipId lock_holder = kNoLip;
    uint32_t open_count = 0;
    uint64_t opens_total = 0;  // Cumulative named opens (hotness signal).
    SimTime last_access = 0;
    uint32_t generation = 0;
    bool live = false;
  };
  struct HandleEntry {
    FileId file = kInvalidFile;
    LipId requester = kNoLip;
    bool can_read = false;
    bool can_write = false;
    uint32_t generation = 0;
    bool live = false;
  };

  SimTime Now();
  FileId AllocateFileSlot();
  void ReclaimIfOrphaned(FileId id);
  StatusOr<HandleEntry*> ResolveHandle(KvHandle handle);
  StatusOr<const HandleEntry*> ResolveHandle(KvHandle handle) const;
  FileEntry& File(FileId id) { return files_[id]; }
  const FileEntry& File(FileId id) const { return files_[id]; }
  StatusOr<KvHandle> MakeHandle(FileId file, LipId requester, bool read, bool write);
  bool MayRead(const FileEntry& file, LipId requester) const;
  bool MayWrite(const FileEntry& file, LipId requester) const;
  // Appends with eviction-on-pressure retry.
  Status AppendWithEviction(FileEntry& file, const TokenRecord& record);
  // Evicts one eligible file; returns false if none eligible.
  bool EvictOne();
  // True when `owner` is at/over its page quota (admin is exempt).
  bool OverPageQuota(LipId owner) const;
  std::vector<KvFileInfo> EligibleVictims() const;
  KvFileInfo InfoFor(FileId id) const;

  KvfsOptions options_;
  PagePool pool_;
  // Declared before files_ so it outlives every KvFileData destructor (their
  // page-ref observers write into this map during teardown).
  std::unordered_map<LipId, int64_t> owner_page_refs_;
  std::vector<FileEntry> files_;
  std::vector<uint32_t> free_file_slots_;
  std::vector<HandleEntry> handles_;
  std::vector<uint32_t> free_handle_slots_;
  std::unordered_map<std::string, FileId> names_;
  EvictionHook eviction_hook_;
  PageQuotaHook page_quota_;
  // KV bytes per page; the serving layer overwrites this from its model
  // config (default: Llama-13B geometry).
  uint64_t bytes_per_page_ = static_cast<uint64_t>(kPageTokens) * 819200;
  uint64_t pending_transfer_bytes_ = 0;
  SimTime fallback_clock_ = 0;
  // Mutable: const introspection paths (ExportSnapshot) still count.
  mutable KvfsStats stats_;
};

}  // namespace symphony

#endif  // SRC_KVFS_KVFS_H_
