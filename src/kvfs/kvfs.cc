#include "src/kvfs/kvfs.h"

#include <algorithm>
#include <cassert>

namespace symphony {

Kvfs::Kvfs(KvfsOptions options)
    : options_(std::move(options)),
      pool_(options_.gpu_page_budget, options_.host_page_budget) {}

SimTime Kvfs::Now() {
  if (options_.clock) {
    return options_.clock();
  }
  return ++fallback_clock_;
}

FileId Kvfs::AllocateFileSlot() {
  FileId id;
  if (!free_file_slots_.empty()) {
    id = free_file_slots_.back();
    free_file_slots_.pop_back();
  } else {
    id = static_cast<FileId>(files_.size());
    files_.emplace_back();
  }
  FileEntry& entry = files_[id];
  uint32_t generation = entry.generation + 1;
  entry = FileEntry{};
  entry.generation = generation;
  entry.live = true;
  entry.data.emplace(&pool_);
  // Attribute this file's page references to its (future) owner. The owner
  // field is always assigned before any pages are added.
  entry.data->set_page_ref_observer([this, id](int64_t delta) {
    owner_page_refs_[files_[id].owner] += delta;
  });
  return id;
}

uint64_t Kvfs::OwnerPageRefs(LipId owner) const {
  auto it = owner_page_refs_.find(owner);
  if (it == owner_page_refs_.end() || it->second < 0) {
    return 0;
  }
  return static_cast<uint64_t>(it->second);
}

bool Kvfs::OverPageQuota(LipId owner) const {
  if (!page_quota_ || owner == kAdminLip) {
    return false;
  }
  uint64_t quota = page_quota_(owner);
  return OwnerPageRefs(owner) > quota;
}

void Kvfs::ReclaimIfOrphaned(FileId id) {
  FileEntry& entry = files_[id];
  if (!entry.live || !entry.unlinked || entry.open_count > 0) {
    return;
  }
  entry.data.reset();  // Releases all page references.
  entry.live = false;
  free_file_slots_.push_back(id);
}

bool Kvfs::MayRead(const FileEntry& file, LipId requester) const {
  if (requester == kAdminLip) {
    return true;
  }
  return requester == file.owner ? (file.mode & kOwnerRead) != 0
                                 : (file.mode & kOtherRead) != 0;
}

bool Kvfs::MayWrite(const FileEntry& file, LipId requester) const {
  if (requester == kAdminLip) {
    return true;
  }
  return requester == file.owner ? (file.mode & kOwnerWrite) != 0
                                 : (file.mode & kOtherWrite) != 0;
}

StatusOr<KvHandle> Kvfs::MakeHandle(FileId file, LipId requester, bool read,
                                    bool write) {
  uint32_t slot;
  if (!free_handle_slots_.empty()) {
    slot = free_handle_slots_.back();
    free_handle_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(handles_.size());
    handles_.emplace_back();
  }
  HandleEntry& entry = handles_[slot];
  uint32_t generation = entry.generation + 1;
  entry = HandleEntry{};
  entry.file = file;
  entry.requester = requester;
  entry.can_read = read;
  entry.can_write = write;
  entry.generation = generation;
  entry.live = true;
  ++files_[file].open_count;
  return KvHandle{slot, generation};
}

StatusOr<Kvfs::HandleEntry*> Kvfs::ResolveHandle(KvHandle handle) {
  if (handle.slot >= handles_.size()) {
    return InvalidArgumentError("bad kv handle");
  }
  HandleEntry& entry = handles_[handle.slot];
  if (!entry.live || entry.generation != handle.generation) {
    return InvalidArgumentError("stale kv handle");
  }
  return &entry;
}

StatusOr<const Kvfs::HandleEntry*> Kvfs::ResolveHandle(KvHandle handle) const {
  if (handle.slot >= handles_.size()) {
    return InvalidArgumentError("bad kv handle");
  }
  const HandleEntry& entry = handles_[handle.slot];
  if (!entry.live || entry.generation != handle.generation) {
    return InvalidArgumentError("stale kv handle");
  }
  return &entry;
}

StatusOr<KvHandle> Kvfs::Open(std::string_view path, const OpenOptions& options) {
  if (path.empty()) {
    return InvalidArgumentError("empty path");
  }
  if (options.requester == kNoLip) {
    return InvalidArgumentError("open requires a requester identity");
  }
  auto it = names_.find(std::string(path));
  if (it == names_.end()) {
    if (!options.create) {
      return NotFoundError("no such kv file: " + std::string(path));
    }
    FileId id = AllocateFileSlot();
    FileEntry& entry = files_[id];
    entry.path = std::string(path);
    entry.owner = options.requester;
    entry.mode = options.create_mode;
    entry.last_access = Now();
    if (options.requester != kAdminLip) {
      ++entry.opens_total;
    }
    names_.emplace(std::string(path), id);
    ++stats_.opens;
    return MakeHandle(id, options.requester, /*read=*/true, /*write=*/true);
  }
  if (options.create && options.exclusive) {
    return AlreadyExistsError("kv file exists: " + std::string(path));
  }
  FileId id = it->second;
  FileEntry& entry = files_[id];
  if (options.read && !MayRead(entry, options.requester)) {
    ++stats_.acl_denials;
    return PermissionDeniedError("read access denied: " + std::string(path));
  }
  if (options.write && !MayWrite(entry, options.requester)) {
    ++stats_.acl_denials;
    return PermissionDeniedError("write access denied: " + std::string(path));
  }
  entry.last_access = Now();
  // Admin opens (sharing passes, introspection) don't count toward hotness.
  if (options.requester != kAdminLip) {
    ++entry.opens_total;
  }
  ++stats_.opens;
  return MakeHandle(id, options.requester, options.read, options.write);
}

StatusOr<KvHandle> Kvfs::CreateAnonymous(LipId requester) {
  if (requester == kNoLip) {
    return InvalidArgumentError("create requires a requester identity");
  }
  FileId id = AllocateFileSlot();
  FileEntry& entry = files_[id];
  entry.owner = requester;
  entry.mode = kModePrivate;
  entry.unlinked = true;  // Reclaimed when the handle closes.
  entry.last_access = Now();
  ++stats_.opens;
  return MakeHandle(id, requester, /*read=*/true, /*write=*/true);
}

Status Kvfs::Close(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileId file = entry->file;
  FileEntry& fentry = files_[file];
  if (fentry.lock_holder == entry->requester) {
    // Dropping the last handle of the lock holder releases the lock. We keep
    // it simple: any close by the holder releases it.
    fentry.lock_holder = kNoLip;
  }
  entry->live = false;
  free_handle_slots_.push_back(handle.slot);
  assert(fentry.open_count > 0);
  --fentry.open_count;
  ReclaimIfOrphaned(file);
  return Status::Ok();
}

Status Kvfs::Remove(std::string_view path, LipId requester) {
  auto it = names_.find(std::string(path));
  if (it == names_.end()) {
    return NotFoundError("no such kv file: " + std::string(path));
  }
  FileEntry& entry = files_[it->second];
  if (requester != kAdminLip && requester != entry.owner &&
      !MayWrite(entry, requester)) {
    ++stats_.acl_denials;
    return PermissionDeniedError("remove denied: " + std::string(path));
  }
  entry.unlinked = true;
  entry.path.clear();
  FileId id = it->second;
  names_.erase(it);
  ReclaimIfOrphaned(id);
  return Status::Ok();
}

Status Kvfs::Link(KvHandle handle, std::string_view path) {
  if (path.empty()) {
    return InvalidArgumentError("empty path");
  }
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileEntry& fentry = files_[entry->file];
  if (entry->requester != kAdminLip && entry->requester != fentry.owner) {
    ++stats_.acl_denials;
    return PermissionDeniedError("link requires ownership");
  }
  if (names_.count(std::string(path)) > 0) {
    return AlreadyExistsError("kv file exists: " + std::string(path));
  }
  if (!fentry.path.empty()) {
    names_.erase(fentry.path);
  }
  fentry.path = std::string(path);
  fentry.unlinked = false;
  names_.emplace(std::string(path), entry->file);
  return Status::Ok();
}

bool Kvfs::Exists(std::string_view path) const {
  return names_.count(std::string(path)) > 0;
}

std::vector<std::string> Kvfs::List(std::string_view prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, id] : names_) {
    if (name.size() >= prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<KvHandle> Kvfs::Fork(KvHandle source, LipId requester) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * src, ResolveHandle(source));
  if (!src->can_read) {
    return PermissionDeniedError("fork requires a readable handle");
  }
  FileEntry& src_file = files_[src->file];
  src_file.last_access = Now();
  FileId id = AllocateFileSlot();
  FileEntry& entry = files_[id];
  entry.owner = requester == kNoLip ? src->requester : requester;
  entry.mode = kModePrivate;
  entry.unlinked = true;
  entry.last_access = Now();
  // Re-fetch source after AllocateFileSlot (files_ may reallocate).
  SYMPHONY_RETURN_IF_ERROR(entry.data->CloneFrom(*files_[src->file].data));
  if (OverPageQuota(entry.owner)) {
    LipId owner = entry.owner;
    entry.data->ReleaseAll();
    ReclaimIfOrphaned(id);
    return QuotaExceededError("kv page quota exceeded for lip " +
                              std::to_string(owner));
  }
  ++stats_.forks;
  return MakeHandle(id, entry.owner, /*read=*/true, /*write=*/true);
}

StatusOr<KvHandle> Kvfs::Extract(KvHandle source, std::span<const uint64_t> indices,
                                 LipId requester) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * src, ResolveHandle(source));
  if (!src->can_read) {
    return PermissionDeniedError("extract requires a readable handle");
  }
  FileId src_id = src->file;
  LipId owner = requester == kNoLip ? src->requester : requester;
  for (size_t i = 1; i < indices.size(); ++i) {
    if (indices[i] <= indices[i - 1]) {
      return InvalidArgumentError("extract indices must be strictly increasing");
    }
  }
  FileId id = AllocateFileSlot();
  {
    FileEntry& entry = files_[id];
    entry.owner = owner;
    entry.mode = kModePrivate;
    entry.unlinked = true;
    entry.last_access = Now();
    // Guard against the eviction scan picking this half-built file.
    entry.open_count = 1;
  }
  auto abort_build = [&](Status st) -> StatusOr<KvHandle> {
    --files_[id].open_count;
    ReclaimIfOrphaned(id);
    return st;
  };
  for (uint64_t index : indices) {
    StatusOr<TokenRecord> rec = files_[src_id].data->At(index);
    if (!rec.ok()) {
      return abort_build(rec.status());
    }
    Status st = AppendWithEviction(files_[id], *rec);
    if (!st.ok()) {
      return abort_build(st);
    }
  }
  files_[src_id].last_access = Now();
  --files_[id].open_count;
  ++stats_.extracts;
  return MakeHandle(id, owner, /*read=*/true, /*write=*/true);
}

StatusOr<KvHandle> Kvfs::Merge(std::span<const KvHandle> sources, LipId requester) {
  if (sources.empty()) {
    return InvalidArgumentError("merge requires at least one source");
  }
  std::vector<FileId> src_ids;
  LipId owner = requester;
  for (KvHandle h : sources) {
    SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * src, ResolveHandle(h));
    if (!src->can_read) {
      return PermissionDeniedError("merge requires readable handles");
    }
    if (owner == kNoLip) {
      owner = src->requester;
    }
    src_ids.push_back(src->file);
  }
  FileId id = AllocateFileSlot();
  {
    FileEntry& entry = files_[id];
    entry.owner = owner;
    entry.mode = kModePrivate;
    entry.unlinked = true;
    entry.last_access = Now();
    // Guard against the eviction scan picking this half-built file.
    entry.open_count = 1;
  }
  auto abort_build = [&](Status st) -> StatusOr<KvHandle> {
    --files_[id].open_count;
    ReclaimIfOrphaned(id);
    return st;
  };
  for (FileId src_id : src_ids) {
    uint64_t len = files_[src_id].data->length();
    for (uint64_t i = 0; i < len; ++i) {
      StatusOr<TokenRecord> rec = files_[src_id].data->At(i);
      if (!rec.ok()) {
        return abort_build(rec.status());
      }
      Status st = AppendWithEviction(files_[id], *rec);
      if (!st.ok()) {
        return abort_build(st);
      }
    }
    files_[src_id].last_access = Now();
  }
  --files_[id].open_count;
  ++stats_.merges;
  return MakeHandle(id, owner, /*read=*/true, /*write=*/true);
}

Status Kvfs::AppendWithEviction(FileEntry& file, const TokenRecord& record) {
  for (;;) {
    Status st = file.data->Append(record, Tier::kGpu);
    if (st.ok()) {
      if (OverPageQuota(file.owner)) {
        // Roll the record back; the quota is a hard per-tenant cap (§6).
        (void)file.data->Truncate(file.data->length() - 1);
        return QuotaExceededError("kv page quota exceeded for lip " +
                                  std::to_string(file.owner));
      }
      return st;
    }
    if (st.code() != StatusCode::kResourceExhausted) {
      return st;
    }
    if (options_.eviction == EvictionMode::kNone || !EvictOne()) {
      return st;
    }
  }
}

Status Kvfs::Append(KvHandle handle, std::span<const TokenRecord> records) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  if (!entry->can_write) {
    ++stats_.acl_denials;
    return PermissionDeniedError("append on read-only handle");
  }
  FileId file_id = entry->file;
  LipId requester = entry->requester;
  FileEntry& file = files_[file_id];
  if (file.lock_holder != kNoLip && file.lock_holder != requester) {
    return FailedPreconditionError("file locked by another lip");
  }
  uint64_t original_length = files_[file_id].data->length();
  for (const TokenRecord& rec : records) {
    Status st = AppendWithEviction(files_[file_id], rec);
    if (!st.ok()) {
      // Appends are atomic: roll back the partial span.
      (void)files_[file_id].data->Truncate(original_length);
      return st;
    }
  }
  files_[file_id].last_access = Now();
  return Status::Ok();
}

StatusOr<KvFileSnapshot> Kvfs::ExportSnapshot(KvHandle handle) const {
  SYMPHONY_ASSIGN_OR_RETURN(const HandleEntry* entry, ResolveHandle(handle));
  if (!entry->can_read) {
    return PermissionDeniedError("snapshot export on write-only handle");
  }
  const FileEntry& file = files_[entry->file];
  KvFileSnapshot snapshot;
  snapshot.path = file.unlinked ? std::string() : file.path;
  snapshot.mode = file.mode;
  uint64_t length = file.data->length();
  snapshot.records.reserve(length);
  for (uint64_t i = 0; i < length; ++i) {
    SYMPHONY_ASSIGN_OR_RETURN(TokenRecord rec, file.data->At(i));
    snapshot.records.push_back(rec);
  }
  ++stats_.snapshot_exports;
  return snapshot;
}

StatusOr<KvHandle> Kvfs::ImportSnapshot(const KvFileSnapshot& snapshot,
                                        LipId requester, Tier tier) {
  SYMPHONY_ASSIGN_OR_RETURN(KvHandle handle, CreateAnonymous(requester));
  Status st = ImportRecords(handle, snapshot.records, tier);
  if (!st.ok()) {
    (void)Close(handle);
    return st;
  }
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  files_[entry->file].mode = snapshot.mode;
  ++stats_.snapshot_imports;
  return handle;
}

Status Kvfs::ImportRecords(KvHandle handle,
                           std::span<const TokenRecord> records, Tier tier) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  if (!entry->can_write) {
    ++stats_.acl_denials;
    return PermissionDeniedError("import on read-only handle");
  }
  FileId file_id = entry->file;
  LipId requester = entry->requester;
  if (files_[file_id].lock_holder != kNoLip &&
      files_[file_id].lock_holder != requester) {
    return FailedPreconditionError("file locked by another lip");
  }
  uint64_t original_length = files_[file_id].data->length();
  for (const TokenRecord& rec : records) {
    Status st;
    if (tier == Tier::kGpu) {
      st = AppendWithEviction(files_[file_id], rec);
    } else {
      st = files_[file_id].data->Append(rec, tier);
      if (st.ok() && OverPageQuota(files_[file_id].owner)) {
        st = QuotaExceededError("kv page quota exceeded for lip " +
                                std::to_string(files_[file_id].owner));
      }
    }
    if (!st.ok()) {
      // Imports are atomic: roll back the partial span.
      (void)files_[file_id].data->Truncate(original_length);
      return st;
    }
  }
  stats_.imported_tokens += records.size();
  files_[file_id].last_access = Now();
  return Status::Ok();
}

StatusOr<TokenRecord> Kvfs::Read(KvHandle handle, uint64_t index) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  if (!entry->can_read) {
    ++stats_.acl_denials;
    return PermissionDeniedError("read on write-only handle");
  }
  FileEntry& file = files_[entry->file];
  file.last_access = Now();
  return file.data->At(index);
}

StatusOr<uint64_t> Kvfs::Length(KvHandle handle) const {
  SYMPHONY_ASSIGN_OR_RETURN(const HandleEntry* entry, ResolveHandle(handle));
  return files_[entry->file].data->length();
}

StatusOr<HiddenState> Kvfs::TailState(KvHandle handle) const {
  SYMPHONY_ASSIGN_OR_RETURN(const HandleEntry* entry, ResolveHandle(handle));
  return files_[entry->file].data->TailState();
}

Status Kvfs::Truncate(KvHandle handle, uint64_t new_length) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  if (!entry->can_write) {
    ++stats_.acl_denials;
    return PermissionDeniedError("truncate on read-only handle");
  }
  FileEntry& file = files_[entry->file];
  if (file.lock_holder != kNoLip && file.lock_holder != entry->requester) {
    return FailedPreconditionError("file locked by another lip");
  }
  file.last_access = Now();
  return file.data->Truncate(new_length);
}

Status Kvfs::Lock(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileEntry& file = files_[entry->file];
  if (file.lock_holder != kNoLip && file.lock_holder != entry->requester) {
    return FailedPreconditionError("file already locked");
  }
  file.lock_holder = entry->requester;
  return Status::Ok();
}

Status Kvfs::Unlock(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileEntry& file = files_[entry->file];
  if (file.lock_holder != entry->requester) {
    return FailedPreconditionError("not the lock holder");
  }
  file.lock_holder = kNoLip;
  return Status::Ok();
}

Status Kvfs::Pin(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  files_[entry->file].pinned = true;
  return Status::Ok();
}

Status Kvfs::Unpin(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  files_[entry->file].pinned = false;
  return Status::Ok();
}

Status Kvfs::SetMode(KvHandle handle, uint8_t mode) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileEntry& file = files_[entry->file];
  if (entry->requester != kAdminLip && entry->requester != file.owner) {
    ++stats_.acl_denials;
    return PermissionDeniedError("chmod requires ownership");
  }
  file.mode = mode;
  return Status::Ok();
}

Status Kvfs::OffloadToHost(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileEntry& file = files_[entry->file];
  for (PageId page : file.data->pages()) {
    if (pool_.tier(page) != Tier::kGpu) {
      continue;
    }
    SYMPHONY_RETURN_IF_ERROR(pool_.MoveToTier(page, Tier::kHost));
    pending_transfer_bytes_ += bytes_per_page_;
    ++stats_.offloaded_pages;
  }
  return Status::Ok();
}

Status Kvfs::RestoreToGpu(KvHandle handle) {
  SYMPHONY_ASSIGN_OR_RETURN(HandleEntry * entry, ResolveHandle(handle));
  FileId file_id = entry->file;
  for (PageId page : files_[file_id].data->pages()) {
    if (pool_.tier(page) != Tier::kHost) {
      continue;
    }
    SYMPHONY_RETURN_IF_ERROR(ReserveGpuPages(1));
    SYMPHONY_RETURN_IF_ERROR(pool_.MoveToTier(page, Tier::kGpu));
    pending_transfer_bytes_ += bytes_per_page_;
    ++stats_.restored_pages;
  }
  files_[file_id].last_access = Now();
  return Status::Ok();
}

Status Kvfs::ReserveGpuPages(uint64_t pages) {
  while (pool_.gpu_pages_free() < pages) {
    if (options_.eviction == EvictionMode::kNone || !EvictOne()) {
      return ResourceExhaustedError("cannot reserve gpu pages");
    }
  }
  return Status::Ok();
}

uint64_t Kvfs::OffloadOwnedBy(LipId owner) {
  uint64_t moved = 0;
  for (FileId id = 0; id < files_.size(); ++id) {
    FileEntry& entry = files_[id];
    if (!entry.live || !entry.data || entry.owner != owner || entry.pinned) {
      continue;
    }
    for (PageId page : entry.data->pages()) {
      if (pool_.tier(page) != Tier::kGpu) {
        continue;
      }
      if (!pool_.MoveToTier(page, Tier::kHost).ok()) {
        return moved;  // Host tier full; keep the rest on-device.
      }
      pending_transfer_bytes_ += bytes_per_page_;
      ++stats_.offloaded_pages;
      ++moved;
    }
  }
  return moved;
}

uint64_t Kvfs::TakePendingTransferBytes() {
  uint64_t bytes = pending_transfer_bytes_;
  pending_transfer_bytes_ = 0;
  return bytes;
}

KvFileInfo Kvfs::InfoFor(FileId id) const {
  const FileEntry& entry = files_[id];
  KvFileInfo info;
  info.id = id;
  info.path = entry.path;
  info.owner = entry.owner;
  info.mode = entry.mode;
  info.length = entry.data ? entry.data->length() : 0;
  info.gpu_pages = entry.data ? entry.data->PagesInTier(Tier::kGpu) : 0;
  info.host_pages = entry.data ? entry.data->PagesInTier(Tier::kHost) : 0;
  info.pinned = entry.pinned;
  info.locked = entry.lock_holder != kNoLip;
  info.open_count = entry.open_count;
  info.opens_total = entry.opens_total;
  info.last_access = entry.last_access;
  return info;
}

std::vector<KvFileInfo> Kvfs::EligibleVictims() const {
  std::vector<KvFileInfo> out;
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileEntry& entry = files_[id];
    if (!entry.live || !entry.data || entry.pinned || entry.open_count > 0 ||
        entry.lock_holder != kNoLip) {
      continue;
    }
    if (entry.data->PagesInTier(Tier::kGpu) == 0) {
      continue;
    }
    out.push_back(InfoFor(id));
  }
  return out;
}

bool Kvfs::EvictOne() {
  std::vector<KvFileInfo> candidates = EligibleVictims();
  if (candidates.empty()) {
    return false;
  }
  FileId victim = kInvalidFile;
  if (eviction_hook_) {
    std::optional<FileId> pick = eviction_hook_(candidates);
    if (!pick.has_value()) {
      return false;
    }
    victim = *pick;
  } else {
    SimTime oldest = candidates[0].last_access;
    victim = candidates[0].id;
    for (const KvFileInfo& info : candidates) {
      if (info.last_access < oldest) {
        oldest = info.last_access;
        victim = info.id;
      }
    }
  }
  FileEntry& entry = files_[victim];
  if (!entry.live || !entry.data) {
    return false;
  }
  ++stats_.evicted_files;
  if (options_.eviction == EvictionMode::kOffloadLru) {
    bool offloaded_all = true;
    for (PageId page : entry.data->pages()) {
      if (pool_.tier(page) != Tier::kGpu) {
        continue;
      }
      Status st = pool_.MoveToTier(page, Tier::kHost);
      if (!st.ok()) {
        offloaded_all = false;
        break;
      }
      pending_transfer_bytes_ += bytes_per_page_;
      ++stats_.offloaded_pages;
    }
    if (offloaded_all) {
      return true;
    }
    // Host tier full: fall through to dropping the file.
  }
  // Drop: release pages and unlink so lookups miss from now on.
  entry.data->ReleaseAll();
  if (!entry.path.empty()) {
    names_.erase(entry.path);
    entry.path.clear();
  }
  entry.unlinked = true;
  ++stats_.dropped_files;
  ReclaimIfOrphaned(victim);
  return true;
}

StatusOr<KvFileInfo> Kvfs::Stat(KvHandle handle) const {
  SYMPHONY_ASSIGN_OR_RETURN(const HandleEntry* entry, ResolveHandle(handle));
  return InfoFor(entry->file);
}

StatusOr<KvFileInfo> Kvfs::StatPath(std::string_view path) const {
  auto it = names_.find(std::string(path));
  if (it == names_.end()) {
    return NotFoundError("no such kv file: " + std::string(path));
  }
  return InfoFor(it->second);
}

std::vector<KvFileInfo> Kvfs::ListAll() const {
  std::vector<KvFileInfo> out;
  for (FileId id = 0; id < files_.size(); ++id) {
    if (files_[id].live) {
      out.push_back(InfoFor(id));
    }
  }
  return out;
}

StatusOr<const KvFileData*> Kvfs::FileData(KvHandle handle) const {
  SYMPHONY_ASSIGN_OR_RETURN(const HandleEntry* entry, ResolveHandle(handle));
  return &*files_[entry->file].data;
}

}  // namespace symphony
