// A KV cache file: an append-mostly sequence of TokenRecords stored in
// refcounted pages. KvFileData is the in-"kernel" representation; LIPs only
// see KvHandles through the Kvfs API.
//
// Sharing model: Fork() snapshots the page list and bumps refcounts (O(pages),
// no tensor copies). Any mutation of a shared page (append into a partial
// tail page, truncate) first goes through copy-on-write.
#ifndef SRC_KVFS_KV_FILE_H_
#define SRC_KVFS_KV_FILE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/page_pool.h"
#include "src/kvfs/types.h"
#include "src/sim/time.h"

namespace symphony {

class KvFileData {
 public:
  // `pool` must outlive the file.
  explicit KvFileData(PagePool* pool) : pool_(pool) {}

  ~KvFileData() { ReleaseAll(); }
  KvFileData(const KvFileData&) = delete;
  KvFileData& operator=(const KvFileData&) = delete;
  KvFileData(KvFileData&& other) noexcept;
  KvFileData& operator=(KvFileData&& other) noexcept;

  uint64_t length() const { return length_; }
  bool empty() const { return length_ == 0; }
  const std::vector<PageId>& pages() const { return pages_; }

  // Appends one record; allocates pages in `tier` as needed.
  Status Append(const TokenRecord& record, Tier tier = Tier::kGpu);
  Status AppendSpan(std::span<const TokenRecord> records, Tier tier = Tier::kGpu);

  // Random access. Index must be < length().
  StatusOr<TokenRecord> At(uint64_t index) const;

  // Hidden state after the last token. Fails on an empty file (the caller
  // supplies the model's initial state in that case).
  StatusOr<HiddenState> TailState() const;

  // Drops tokens beyond new_length.
  Status Truncate(uint64_t new_length);

  // Makes this file share all of `other`'s pages (this must be empty).
  Status CloneFrom(const KvFileData& other);

  // Releases every page reference; the file becomes empty.
  void ReleaseAll();

  // Number of this file's pages currently resident in each tier.
  uint64_t PagesInTier(Tier tier) const;

  // True if every page is GPU-resident (required before pred can use it).
  bool FullyOnGpu() const { return PagesInTier(Tier::kHost) == 0; }

  // Observer of this file's page-reference count (for per-owner resource
  // accounting): called with +n / -n whenever pages_ grows or shrinks.
  void set_page_ref_observer(std::function<void(int64_t)> observer) {
    page_ref_observer_ = std::move(observer);
  }

 private:
  void NotifyDelta(int64_t delta) {
    if (page_ref_observer_ && delta != 0) {
      page_ref_observer_(delta);
    }
  }

  // Copy-on-write: ensures pages_[page_index] is exclusively owned.
  Status MakeExclusive(size_t page_index);

  PagePool* pool_;
  std::vector<PageId> pages_;
  uint64_t length_ = 0;
  std::function<void(int64_t)> page_ref_observer_;
};

}  // namespace symphony

#endif  // SRC_KVFS_KV_FILE_H_
