#include "src/kvfs/kv_file.h"

#include <cassert>
#include <utility>

namespace symphony {

KvFileData::KvFileData(KvFileData&& other) noexcept
    : pool_(other.pool_), pages_(std::move(other.pages_)), length_(other.length_) {
  other.pages_.clear();
  other.length_ = 0;
}

KvFileData& KvFileData::operator=(KvFileData&& other) noexcept {
  if (this != &other) {
    ReleaseAll();
    pool_ = other.pool_;
    pages_ = std::move(other.pages_);
    length_ = other.length_;
    other.pages_.clear();
    other.length_ = 0;
  }
  return *this;
}

Status KvFileData::MakeExclusive(size_t page_index) {
  assert(page_index < pages_.size());
  SYMPHONY_ASSIGN_OR_RETURN(PageId exclusive, pool_->EnsureExclusive(pages_[page_index]));
  pages_[page_index] = exclusive;
  return Status::Ok();
}

Status KvFileData::Append(const TokenRecord& record, Tier tier) {
  uint32_t offset = static_cast<uint32_t>(length_ % kPageTokens);
  if (offset == 0) {
    // Need a fresh page.
    SYMPHONY_ASSIGN_OR_RETURN(PageId page, pool_->Allocate(tier));
    pages_.push_back(page);
    NotifyDelta(1);
  } else {
    SYMPHONY_RETURN_IF_ERROR(MakeExclusive(pages_.size() - 1));
  }
  PageId tail = pages_.back();
  pool_->MutableRecords(tail)[offset] = record;
  pool_->set_used(tail, offset + 1);
  ++length_;
  return Status::Ok();
}

Status KvFileData::AppendSpan(std::span<const TokenRecord> records, Tier tier) {
  for (const TokenRecord& r : records) {
    SYMPHONY_RETURN_IF_ERROR(Append(r, tier));
  }
  return Status::Ok();
}

StatusOr<TokenRecord> KvFileData::At(uint64_t index) const {
  if (index >= length_) {
    return OutOfRangeError("token index beyond file length");
  }
  PageId page = pages_[index / kPageTokens];
  return pool_->Records(page)[index % kPageTokens];
}

StatusOr<HiddenState> KvFileData::TailState() const {
  if (length_ == 0) {
    return FailedPreconditionError("empty kv file has no tail state");
  }
  SYMPHONY_ASSIGN_OR_RETURN(TokenRecord rec, At(length_ - 1));
  return rec.state;
}

Status KvFileData::Truncate(uint64_t new_length) {
  if (new_length > length_) {
    return OutOfRangeError("truncate beyond file length");
  }
  if (new_length == length_) {
    return Status::Ok();
  }
  size_t keep_pages = static_cast<size_t>((new_length + kPageTokens - 1) / kPageTokens);
  int64_t dropped = 0;
  while (pages_.size() > keep_pages) {
    pool_->Unref(pages_.back());
    pages_.pop_back();
    --dropped;
  }
  NotifyDelta(dropped);
  length_ = new_length;
  uint32_t tail_used = static_cast<uint32_t>(new_length % kPageTokens);
  if (tail_used != 0 && !pages_.empty()) {
    // Shrinking `used` on a shared page would corrupt siblings: COW first.
    SYMPHONY_RETURN_IF_ERROR(MakeExclusive(pages_.size() - 1));
    pool_->set_used(pages_.back(), tail_used);
  }
  return Status::Ok();
}

Status KvFileData::CloneFrom(const KvFileData& other) {
  if (!empty()) {
    return FailedPreconditionError("clone target must be empty");
  }
  if (pool_ != other.pool_) {
    return InvalidArgumentError("clone across page pools");
  }
  pages_ = other.pages_;
  length_ = other.length_;
  for (PageId page : pages_) {
    pool_->Ref(page);
  }
  NotifyDelta(static_cast<int64_t>(pages_.size()));
  return Status::Ok();
}

void KvFileData::ReleaseAll() {
  NotifyDelta(-static_cast<int64_t>(pages_.size()));
  for (PageId page : pages_) {
    pool_->Unref(page);
  }
  pages_.clear();
  length_ = 0;
}

uint64_t KvFileData::PagesInTier(Tier tier) const {
  uint64_t n = 0;
  for (PageId page : pages_) {
    if (pool_->tier(page) == tier) {
      ++n;
    }
  }
  return n;
}

}  // namespace symphony
