#include "src/kvfs/page_pool.h"

#include <cassert>

namespace symphony {

PagePool::PagePool(uint64_t gpu_page_budget, uint64_t host_page_budget)
    : gpu_budget_(gpu_page_budget), host_budget_(host_page_budget) {
  pages_.reserve(1024);
}

PagePool::PageMeta& PagePool::Meta(PageId id) {
  assert(id < pages_.size());
  assert(pages_[id].live);
  return pages_[id];
}

const PagePool::PageMeta& PagePool::Meta(PageId id) const {
  assert(id < pages_.size());
  assert(pages_[id].live);
  return pages_[id];
}

uint64_t& PagePool::TierUsage(Tier tier) {
  return tier == Tier::kGpu ? stats_.gpu_pages_used : stats_.host_pages_used;
}

StatusOr<PageId> PagePool::Allocate(Tier tier) {
  uint64_t budget = tier == Tier::kGpu ? gpu_budget_ : host_budget_;
  if (TierUsage(tier) >= budget) {
    return ResourceExhaustedError(tier == Tier::kGpu ? "gpu page budget exhausted"
                                                     : "host page budget exhausted");
  }
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.emplace_back();
  }
  PageMeta& meta = pages_[id];
  meta = PageMeta{};
  meta.refcount = 1;
  meta.tier = tier;
  meta.live = true;
  ++TierUsage(tier);
  ++stats_.allocations;
  return id;
}

void PagePool::Ref(PageId id) { ++Meta(id).refcount; }

void PagePool::Unref(PageId id) {
  PageMeta& meta = Meta(id);
  assert(meta.refcount > 0);
  if (--meta.refcount == 0) {
    --TierUsage(meta.tier);
    meta.live = false;
    free_list_.push_back(id);
    ++stats_.frees;
  }
}

StatusOr<PageId> PagePool::EnsureExclusive(PageId id) {
  PageMeta& meta = Meta(id);
  if (meta.refcount == 1) {
    return id;
  }
  SYMPHONY_ASSIGN_OR_RETURN(PageId copy, Allocate(meta.tier));
  PageMeta& copy_meta = pages_[copy];
  // Re-fetch: Allocate may have reallocated pages_.
  PageMeta& src_meta = pages_[id];
  copy_meta.records = src_meta.records;
  copy_meta.used = src_meta.used;
  --src_meta.refcount;
  ++stats_.cow_copies;
  return copy;
}

Status PagePool::MoveToTier(PageId id, Tier tier) {
  PageMeta& meta = Meta(id);
  if (meta.tier == tier) {
    return Status::Ok();
  }
  uint64_t budget = tier == Tier::kGpu ? gpu_budget_ : host_budget_;
  if (TierUsage(tier) >= budget) {
    return ResourceExhaustedError("target tier full");
  }
  --TierUsage(meta.tier);
  meta.tier = tier;
  ++TierUsage(tier);
  ++stats_.tier_moves;
  return Status::Ok();
}

TokenRecord* PagePool::MutableRecords(PageId id) { return Meta(id).records.data(); }
const TokenRecord* PagePool::Records(PageId id) const { return Meta(id).records.data(); }

uint32_t PagePool::used(PageId id) const { return Meta(id).used; }
void PagePool::set_used(PageId id, uint32_t used) {
  assert(used <= kPageTokens);
  Meta(id).used = used;
}
uint32_t PagePool::refcount(PageId id) const { return Meta(id).refcount; }
Tier PagePool::tier(PageId id) const { return Meta(id).tier; }

}  // namespace symphony
