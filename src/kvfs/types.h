// Shared vocabulary types for KVFS.
#ifndef SRC_KVFS_TYPES_H_
#define SRC_KVFS_TYPES_H_

#include <cstdint>
#include <limits>

#include "src/model/model.h"
#include "src/model/tokenizer.h"

namespace symphony {

// Identity of a LIP process, used for KVFS ownership and access control.
using LipId = uint32_t;
inline constexpr LipId kNoLip = 0;      // Reserved: "nobody".
inline constexpr LipId kAdminLip = 1;   // Superuser: bypasses ACL checks.

using PageId = uint32_t;
using FileId = uint32_t;
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
inline constexpr FileId kInvalidFile = std::numeric_limits<FileId>::max();

// Tokens per KV page (PagedAttention-style granularity).
inline constexpr uint32_t kPageTokens = 16;

// Where a page's tensors physically live.
enum class Tier : uint8_t {
  kGpu = 0,   // On-device HBM: usable by pred directly.
  kHost = 1,  // Offloaded to host DRAM: must be restored before pred.
};

// One token's cached entry: the token, its absolute position, and the model
// hidden state *after* consuming it (the stand-in for its K/V tensors).
struct TokenRecord {
  TokenId token = kPadToken;
  int32_t position = 0;
  HiddenState state = 0;
};

// POSIX-flavored permission bits (owner/other × read/write).
enum KvMode : uint8_t {
  kOwnerRead = 1 << 0,
  kOwnerWrite = 1 << 1,
  kOtherRead = 1 << 2,
  kOtherWrite = 1 << 3,
};
inline constexpr uint8_t kModePrivate = kOwnerRead | kOwnerWrite;
inline constexpr uint8_t kModeShared = kModePrivate | kOtherRead;
inline constexpr uint8_t kModePublic = kModeShared | kOtherWrite;

// An open-file handle. Generation counts detect use-after-close.
struct KvHandle {
  uint32_t slot = std::numeric_limits<uint32_t>::max();
  uint32_t generation = 0;

  bool valid() const { return slot != std::numeric_limits<uint32_t>::max(); }
};

}  // namespace symphony

#endif  // SRC_KVFS_TYPES_H_
