// Baseline prompt-serving systems (paper §5 comparators).
//
// PromptServer implements the classic prompt-in/text-out architecture with
// continuous batching on the same simulated device and cost model Symphony
// uses, so performance differences come only from policy:
//
//   * VllmLike():  continuous batching + automatic prefix caching — finished
//     prompts' KV blocks are retained (LRU-dropped under memory pressure) and
//     reused when an identical prompt prefix arrives. The policy is
//     system-wide and application-unaware (§2.1).
//   * TgiLike():   continuous batching, no KV reuse across requests.
//
// Requests are text completions: prompt tokens in, up to max_new_tokens out,
// greedy sampling (matching the benchmark LIPs).
#ifndef SRC_BASELINE_PROMPT_SERVER_H_
#define SRC_BASELINE_PROMPT_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/cost_model.h"
#include "src/model/model.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace symphony {

struct CompletionRequest {
  uint64_t id = 0;
  std::vector<TokenId> prompt;
  uint32_t max_new_tokens = 128;
  bool stop_at_eos = true;
  std::function<void(const struct CompletionResponse&)> done;
};

struct CompletionResponse {
  Status status;
  uint64_t id = 0;
  std::vector<TokenId> tokens;
  SimTime arrival = 0;
  SimTime first_token_time = 0;
  SimTime finish_time = 0;
  bool cache_hit = false;

  SimDuration e2e_latency() const { return finish_time - arrival; }
  double latency_per_token_ms() const {
    return tokens.empty() ? 0.0
                          : ToMillis(e2e_latency()) / static_cast<double>(tokens.size());
  }
};

struct BaselineOptions {
  std::string name = "baseline";
  ModelConfig model = ModelConfig::Llama13B();
  HardwareConfig hardware = HardwareConfig::A100();
  size_t max_active = 16;        // Continuous-batching slots.
  uint64_t prefill_chunk = 2048; // Max prompt tokens prefetched per step.
  bool prefix_cache = false;     // vLLM-style automatic prefix caching.
  size_t max_queue = 100000;
};

struct BaselineStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t steps = 0;
};

class PromptServer {
 public:
  PromptServer(Simulator* sim, BaselineOptions options);

  PromptServer(const PromptServer&) = delete;
  PromptServer& operator=(const PromptServer&) = delete;

  static BaselineOptions VllmLike() {
    BaselineOptions o;
    o.name = "vllm-like";
    o.prefix_cache = true;
    return o;
  }
  static BaselineOptions TgiLike() {
    BaselineOptions o;
    o.name = "tgi-like";
    o.prefix_cache = false;
    return o;
  }

  void Submit(CompletionRequest request);

  const BaselineStats& stats() const { return stats_; }
  const Device& device() const { return *device_; }
  const Kvfs& kvfs() const { return *kvfs_; }
  size_t queue_depth() const { return waiting_.size(); }
  size_t active() const { return active_.size(); }
  const std::string& name() const { return options_.name; }

 private:
  struct Sequence {
    CompletionRequest request;
    SimTime arrival = 0;
    KvHandle kv;
    size_t prefill_done = 0;  // Prompt tokens already in the KV file.
    bool cache_hit = false;
    bool cache_inserted = false;
    size_t matched_blocks = 0;  // Cached prefix blocks reused at admission.
    std::vector<TokenId> generated;
    SimTime first_token_time = 0;
    TokenId next_decode_token = kUnkToken;  // Valid once prefill finished.
    bool Prefilling() const { return prefill_done < request.prompt.size(); }
  };

  void Pump();        // Admit + launch the next step if the device is idle.
  void AdmitWaiting();
  void LaunchStep();
  void CompleteStepForSeqs(const std::vector<Sequence*>& step_seqs,
                           const std::vector<uint64_t>& counts);
  void FinishSequence(Sequence& seq, Status status);
  void MaybeInsertCache(Sequence& seq);

  // Block-level automatic prefix caching (vLLM-style): prompts are hashed in
  // kPageTokens-sized block chains; admission reuses the longest cached
  // block-prefix. Returns per-prefix chain hashes for the prompt's complete
  // blocks (capped so at least one prompt token is always computed fresh).
  static std::vector<uint64_t> BlockChainHashes(const std::vector<TokenId>& prompt);
  // Tries to reuse a cached prefix; fills kv/prefill_done/matched_blocks.
  bool TryCacheLookup(Sequence& seq);

  Simulator* sim_;
  BaselineOptions options_;
  Model model_;
  CostModel cost_;
  std::unique_ptr<Kvfs> kvfs_;
  std::unique_ptr<Device> device_;
  std::deque<CompletionRequest> waiting_;
  std::deque<SimTime> arrivals_;  // Parallel to waiting_.
  std::vector<std::unique_ptr<Sequence>> active_;
  // Chain-hash of the first k blocks -> path of a cached KV file covering at
  // least those blocks. Entries go stale when eviction drops the file; they
  // are pruned lazily on lookup.
  std::unordered_map<uint64_t, std::string> prefix_index_;
  uint64_t next_cache_id_ = 0;
  BaselineStats stats_;
};

}  // namespace symphony

#endif  // SRC_BASELINE_PROMPT_SERVER_H_
