#include "src/baseline/prompt_server.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace symphony {

namespace {

KvfsOptions BaselineKvfsOptions(const BaselineOptions& options, Simulator* sim,
                                const CostModel& cost) {
  KvfsOptions kv;
  uint64_t page_bytes =
      static_cast<uint64_t>(kPageTokens) * options.model.KvBytesPerToken();
  kv.gpu_page_budget = cost.DeviceKvBudgetBytes() / page_bytes;
  // Prompt servers keep all KV on-device; under pressure cached blocks are
  // dropped (vLLM semantics), never offloaded.
  kv.host_page_budget = 0;
  kv.eviction = EvictionMode::kDropLru;
  kv.clock = [sim] { return sim->now(); };
  return kv;
}

}  // namespace

PromptServer::PromptServer(Simulator* sim, BaselineOptions options)
    : sim_(sim),
      options_(std::move(options)),
      model_(options_.model),
      cost_(options_.model, options_.hardware),
      kvfs_(std::make_unique<Kvfs>(BaselineKvfsOptions(options_, sim, cost_))),
      device_(std::make_unique<Device>(sim, cost_)) {
  kvfs_->set_bytes_per_page(static_cast<uint64_t>(kPageTokens) *
                            options_.model.KvBytesPerToken());
}

std::vector<uint64_t> PromptServer::BlockChainHashes(
    const std::vector<TokenId>& prompt) {
  // At least the final prompt token must be computed fresh (its logits are
  // never cached), so cap the cacheable prefix at prompt.size() - 1 tokens.
  size_t cacheable = prompt.empty() ? 0 : prompt.size() - 1;
  size_t blocks = cacheable / kPageTokens;
  std::vector<uint64_t> hashes;
  hashes.reserve(blocks);
  uint64_t h = 0xa9c11u;
  for (size_t b = 0; b < blocks; ++b) {
    for (size_t i = b * kPageTokens; i < (b + 1) * kPageTokens; ++i) {
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(prompt[i])));
    }
    hashes.push_back(h);
  }
  return hashes;
}

bool PromptServer::TryCacheLookup(Sequence& seq) {
  std::vector<uint64_t> hashes = BlockChainHashes(seq.request.prompt);
  for (size_t k = hashes.size(); k > 0; --k) {
    auto it = prefix_index_.find(hashes[k - 1]);
    if (it == prefix_index_.end()) {
      continue;
    }
    if (!kvfs_->Exists(it->second)) {
      prefix_index_.erase(it);  // Evicted since registration.
      continue;
    }
    OpenOptions open;
    open.requester = kAdminLip;
    StatusOr<KvHandle> cached = kvfs_->Open(it->second, open);
    if (!cached.ok()) {
      continue;
    }
    StatusOr<KvHandle> fork = kvfs_->Fork(*cached, kAdminLip);
    (void)kvfs_->Close(*cached);
    if (!fork.ok()) {
      continue;
    }
    uint64_t prefix_tokens = static_cast<uint64_t>(k) * kPageTokens;
    if (!kvfs_->Truncate(*fork, prefix_tokens).ok()) {
      (void)kvfs_->Close(*fork);
      continue;
    }
    seq.kv = *fork;
    seq.prefill_done = prefix_tokens;
    seq.matched_blocks = k;
    return true;
  }
  return false;
}

void PromptServer::Submit(CompletionRequest request) {
  ++stats_.submitted;
  if (waiting_.size() >= options_.max_queue) {
    ++stats_.failed;
    if (request.done) {
      CompletionResponse response;
      response.status = UnavailableError("queue full");
      response.id = request.id;
      response.arrival = sim_->now();
      response.finish_time = sim_->now();
      request.done(response);
    }
    return;
  }
  waiting_.push_back(std::move(request));
  arrivals_.push_back(sim_->now());
  Pump();
}

void PromptServer::AdmitWaiting() {
  while (!waiting_.empty() && active_.size() < options_.max_active) {
    CompletionRequest request = std::move(waiting_.front());
    waiting_.pop_front();
    SimTime arrival = arrivals_.front();
    arrivals_.pop_front();

    auto seq = std::make_unique<Sequence>();
    seq->request = std::move(request);
    seq->arrival = arrival;

    bool hit = false;
    if (options_.prefix_cache && seq->request.prompt.size() >= 2) {
      hit = TryCacheLookup(*seq);
      if (hit) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    }
    if (!hit) {
      StatusOr<KvHandle> fresh = kvfs_->CreateAnonymous(kAdminLip);
      if (!fresh.ok()) {
        FinishSequence(*seq, fresh.status());
        continue;
      }
      seq->kv = *fresh;
    }
    seq->cache_hit = hit;
    active_.push_back(std::move(seq));
  }
}

void PromptServer::Pump() {
  if (device_->busy()) {
    return;
  }
  AdmitWaiting();
  if (active_.empty()) {
    return;
  }
  LaunchStep();
}

void PromptServer::LaunchStep() {
  std::vector<WorkItem> items;
  std::vector<Sequence*> step_seqs;
  std::vector<uint64_t> counts;
  items.reserve(active_.size());

  for (std::unique_ptr<Sequence>& seq : active_) {
    uint64_t context = 0;
    StatusOr<uint64_t> length = kvfs_->Length(seq->kv);
    if (length.ok()) {
      context = *length;
    }
    uint64_t n;
    if (seq->Prefilling()) {
      n = std::min<uint64_t>(options_.prefill_chunk,
                             seq->request.prompt.size() - seq->prefill_done);
    } else {
      n = 1;
    }
    items.push_back(WorkItem{n, context});
    step_seqs.push_back(seq.get());
    counts.push_back(n);
  }

  uint64_t transfer_bytes = kvfs_->TakePendingTransferBytes();
  ++stats_.steps;
  device_->Execute(std::move(items), transfer_bytes,
                   [this, step_seqs = std::move(step_seqs),
                    counts = std::move(counts)]() mutable {
                     CompleteStepForSeqs(step_seqs, counts);
                     Pump();
                   });
}

void PromptServer::CompleteStepForSeqs(const std::vector<Sequence*>& step_seqs,
                                       const std::vector<uint64_t>& counts) {
  std::vector<Sequence*> finished;
  for (size_t i = 0; i < step_seqs.size(); ++i) {
    Sequence* seq = step_seqs[i];
    uint64_t n = counts[i];

    // Tokens fed this step.
    std::vector<TokenId> fed;
    fed.reserve(n);
    if (seq->Prefilling()) {
      for (uint64_t j = 0; j < n; ++j) {
        fed.push_back(seq->request.prompt[seq->prefill_done + j]);
      }
    } else {
      fed.push_back(seq->next_decode_token);
    }

    // Advance model state and append KV records.
    StatusOr<uint64_t> length = kvfs_->Length(seq->kv);
    if (!length.ok()) {
      FinishSequence(*seq, length.status());
      finished.push_back(seq);
      continue;
    }
    HiddenState state;
    if (*length == 0) {
      state = model_.InitialState();
    } else {
      state = *kvfs_->TailState(seq->kv);
    }
    std::vector<TokenRecord> records;
    records.reserve(fed.size());
    int32_t pos = static_cast<int32_t>(*length);
    for (TokenId t : fed) {
      state = model_.Advance(state, t, pos);
      records.push_back(TokenRecord{t, pos, state});
      ++pos;
    }
    Status append = kvfs_->Append(seq->kv, records);
    if (!append.ok()) {
      FinishSequence(*seq, append);
      finished.push_back(seq);
      continue;
    }

    bool was_prefilling = seq->Prefilling();
    if (was_prefilling) {
      seq->prefill_done += n;
      if (seq->Prefilling()) {
        continue;  // More prompt chunks to go.
      }
      MaybeInsertCache(*seq);
    }

    // Sample the next token greedily from the distribution after the last
    // fed token.
    TokenId sampled = model_.Predict(state).Argmax();
    if (seq->first_token_time == 0) {
      seq->first_token_time = sim_->now();
    }
    if (sampled == kEosToken && seq->request.stop_at_eos) {
      FinishSequence(*seq, Status::Ok());
      finished.push_back(seq);
      continue;
    }
    seq->generated.push_back(sampled);
    if (seq->generated.size() >= seq->request.max_new_tokens) {
      FinishSequence(*seq, Status::Ok());
      finished.push_back(seq);
      continue;
    }
    seq->next_decode_token = sampled;
  }

  // Remove finished sequences from the active set.
  if (!finished.empty()) {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](const std::unique_ptr<Sequence>& seq) {
                                   return std::find(finished.begin(), finished.end(),
                                                    seq.get()) != finished.end();
                                 }),
                  active_.end());
  }
}

void PromptServer::MaybeInsertCache(Sequence& seq) {
  if (!options_.prefix_cache || seq.cache_inserted ||
      seq.request.prompt.size() < 2) {
    return;
  }
  seq.cache_inserted = true;
  std::vector<uint64_t> hashes = BlockChainHashes(seq.request.prompt);
  if (hashes.empty() || seq.matched_blocks >= hashes.size()) {
    return;  // Nothing longer than what the cache already covered.
  }
  StatusOr<KvHandle> fork = kvfs_->Fork(seq.kv, kAdminLip);
  if (!fork.ok()) {
    return;
  }
  uint64_t prefix_tokens = hashes.size() * kPageTokens;
  std::string path = "/apc/" + std::to_string(next_cache_id_++);
  Status st = kvfs_->Truncate(*fork, prefix_tokens);
  if (st.ok()) {
    st = kvfs_->Link(*fork, path);
  }
  (void)kvfs_->Close(*fork);  // Closed cache entries are LRU-evictable.
  if (!st.ok()) {
    SYMPHONY_LOG(kDebug) << options_.name
                         << " cache insert failed: " << st.ToString();
    return;
  }
  // Register every block-prefix of the entry so future prompts can match
  // partial prefixes (e.g. shared document, different query).
  for (size_t k = 1; k <= hashes.size(); ++k) {
    prefix_index_[hashes[k - 1]] = path;
  }
}

void PromptServer::FinishSequence(Sequence& seq, Status status) {
  if (seq.kv.valid()) {
    (void)kvfs_->Close(seq.kv);
    seq.kv = KvHandle{};
  }
  if (status.ok()) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  if (seq.request.done) {
    CompletionResponse response;
    response.status = std::move(status);
    response.id = seq.request.id;
    response.tokens = seq.generated;
    response.arrival = seq.arrival;
    response.first_token_time = seq.first_token_time;
    response.finish_time = sim_->now();
    response.cache_hit = seq.cache_hit;
    seq.request.done(response);
  }
}

}  // namespace symphony
