// FaultPlan: deterministic, simulation-time-driven fault injection.
//
// The paper moves tool execution and control flow onto the server (§2.2,
// §4.3), so the server — not the client — absorbs flaky tools, latency
// tails, memory pressure, and replica failures. FaultPlan is the harness
// that makes those failure modes reproducible: every fault decision is a
// pure function of (plan seed, fault site, call identity), so a seeded run
// is bit-identical across reruns and property tests can replay a failing
// seed exactly.
//
// Fault classes:
//   * Tool faults      — per-tool transient failure probability, a permanent
//                        outage window in virtual time, and latency-tail
//                        stretching. Consulted by the serving layer's tool
//                        service on every attempt (retries draw fresh
//                        decisions); the FINAL result of a tool syscall is
//                        what the SyscallJournal records, so recovery replays
//                        the observed failures rather than re-rolling them.
//   * KVFS pressure    — windows during which a pinned admin-owned scratch
//                        file occupies GPU pages, forcing eviction/offload
//                        and kResourceExhausted on competing allocations.
//   * Replica kills    — a schedule of KillReplica times; SymphonyCluster
//                        arms these at construction when the plan is set in
//                        ServerOptions::fault_plan. Kills are MANUAL and
//                        permanent: the cluster is told, fails over
//                        immediately, and the replica never returns.
//   * Replica crashes  — the autonomic variant (CrashReplicaAt): the
//                        replica's runtime halts silently — nothing tells
//                        the cluster — so only the control plane's missed
//                        heartbeats can discover it. With down_for >= 0 the
//                        process heals at `at + down_for` and may be
//                        re-admitted (fenced at a bumped epoch); down_for
//                        < 0 keeps it down forever.
//   * Partitions       — windows during which the interconnect between one
//                        replica pair drops traffic (symmetric). The IPC
//                        fabric (src/net) consults OnIpcTransmit per transfer
//                        attempt: blocked sends queue and retry with
//                        exponential backoff, surfacing kUnavailable only
//                        past the per-channel send deadline.
//
// Replay invariance: tool fault decisions are keyed by (tool, args hash,
// the calling LIP's tool-call ordinal, attempt number) rather than a global
// call counter, so a journaled LIP that re-executes an interrupted call
// after recovery draws the same decisions the original run would have. As
// with the journal's determinism contract, cross-thread ordinal assignment
// is stable only for race-free programs.
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/kvfs.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace symphony {

// Per-tool fault behaviour. Probabilities are per attempt.
struct ToolFaultSpec {
  // Transient failure: the attempt fails with kUnavailable.
  double fail_prob = 0.0;
  // Latency tail: the attempt's latency is multiplied by tail_factor.
  double tail_prob = 0.0;
  double tail_factor = 8.0;
  // Permanent outage window in virtual time: every attempt inside
  // [fail_after, recover_at) fails with kUnavailable. Negative = unset;
  // recover_at < 0 with fail_after >= 0 means the outage never ends.
  SimTime fail_after = -1;
  SimTime recover_at = -1;
};

// What the serving layer should do with one tool attempt.
struct FaultDecision {
  Status status;               // OK = no injected failure.
  double latency_factor = 1.0; // Multiplier on the tool's modelled latency.
};

struct KvPressureSpec {
  SimTime at = 0;
  SimDuration duration = 0;
  uint64_t pages = 0;
};

// Byte-level corruption of KV snapshot transfers: inside [at, at + duration),
// each transferred chunk is corrupted (one deterministically chosen byte
// flipped) with probability `prob` per attempt. The snapshot store's
// per-chunk checksums must catch every flip — corrupted data is never
// served; the importer retries or falls back to recompute.
struct KvCorruptionSpec {
  SimTime at = 0;
  SimDuration duration = 0;
  double prob = 1.0;
};

// A silent replica crash at `at`: the runtime halts with NO notification to
// the cluster (contrast KillReplicaAt, which routes through KillReplica and
// fails over immediately). Detection is the control plane's job. down_for
// >= 0 heals the process at `at + down_for`, making the replica eligible
// for readmission; down_for < 0 = down forever.
struct CrashSpec {
  size_t replica = 0;
  SimTime at = 0;
  SimDuration down_for = -1;
};

// A symmetric network partition between replicas `a` and `b` during
// [at, at + duration): every IPC transfer attempt between them is blocked.
struct PartitionSpec {
  size_t a = 0;
  size_t b = 0;
  SimTime at = 0;
  SimDuration duration = 0;
};

// A symmetric down window for one physical topology link during
// [at, at + duration): no transfer may start on the link between nodes
// `a` and `b` (NetworkTopology node names, e.g. "replica0", "rack0") in
// either direction. The topology reroutes affected transfers over surviving
// paths when one exists; when none does, the IPC fabric surfaces the same
// retry/deadline semantics as a partition. Unlike PartitionSpec (which
// blocks one replica PAIR), a link-down hits every pair routed across the
// link — downing a rack uplink partitions rack from rack.
struct LinkDownSpec {
  std::string a;
  std::string b;
  SimTime at = 0;
  SimDuration duration = 0;
};

// A slow-consumer window on `replica` during [at, at + duration): every IPC
// message that becomes deliverable at a channel homed there is held for
// `stall` before a recv may take it. Lets tests exercise credit backpressure
// (bounded channels fill, senders park) without hand-built stalling LIPs.
struct SlowConsumerSpec {
  size_t replica = 0;
  SimTime at = 0;
  SimDuration duration = 0;
  SimDuration stall = 0;
};

struct FaultPlanStats {
  uint64_t tool_faults = 0;         // Injected failures (transient + outage).
  uint64_t tool_tail_stretches = 0; // Latency-tail injections.
  uint64_t pressure_windows = 0;    // KV pressure windows actually opened.
  uint64_t kv_corruptions = 0;      // Chunk transfers corrupted in flight.
  uint64_t partition_blocks = 0;    // IPC transfer attempts blocked.
  uint64_t slow_consumer_stalls = 0;  // Deliveries held by a stall window.
  uint64_t link_down_blocks = 0;    // Transfers denied their static route.
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) : seed_(seed) {}

  // ---- Plan construction -----------------------------------------------

  void FailTool(const std::string& tool, ToolFaultSpec spec) {
    tool_faults_[tool] = spec;
  }

  void KillReplicaAt(size_t replica, SimTime at) {
    kills_.emplace_back(replica, at);
  }

  void CrashReplicaAt(size_t replica, SimTime at, SimDuration down_for = -1) {
    crashes_.push_back(CrashSpec{replica, at, down_for});
  }

  void AddKvPressure(SimTime at, SimDuration duration, uint64_t pages) {
    pressure_.push_back(KvPressureSpec{at, duration, pages});
  }

  void AddKvCorruption(SimTime at, SimDuration duration, double prob = 1.0) {
    corruption_.push_back(KvCorruptionSpec{at, duration, prob});
  }

  void AddPartition(size_t a, size_t b, SimTime at, SimDuration duration) {
    partitions_.push_back(PartitionSpec{a, b, at, duration});
  }

  void AddSlowConsumer(size_t replica, SimTime at, SimDuration duration,
                       SimDuration stall) {
    slow_consumers_.push_back(SlowConsumerSpec{replica, at, duration, stall});
  }

  void AddLinkDown(std::string a, std::string b, SimTime at,
                   SimDuration duration) {
    link_downs_.push_back(
        LinkDownSpec{std::move(a), std::move(b), at, duration});
  }

  // ---- Consultation (serving layer) ------------------------------------

  // Decision for one attempt of one logical tool call. `call_ordinal` is the
  // calling LIP's tool-call count at submission (replay-invariant), `attempt`
  // the 1-based retry attempt.
  FaultDecision OnToolCall(const std::string& tool, SimTime now,
                           const std::string& args, uint64_t call_ordinal,
                           uint32_t attempt);

  // Arms the KV pressure windows on one server's file system: each window
  // pins `pages` GPU pages in an admin-owned anonymous file for `duration`.
  // In a cluster every replica arms the same windows on its own KVFS.
  void ArmKvPressure(Simulator* sim, Kvfs* kvfs);

  // One KV chunk transfer (snapshot store import): inside a corruption
  // window, flips one deterministically chosen byte of `bytes` in place with
  // the window's probability — keyed by (plan seed, chunk, attempt), so a
  // retried transfer re-draws independently but a replayed run draws the
  // same corruption. Returns true when it corrupted.
  bool OnKvTransfer(SimTime now, uint64_t chunk_key, uint32_t attempt,
                    std::string* bytes);

  // One IPC transfer attempt between replicas `from` and `to` (IPC fabric,
  // src/net): true when a partition window blocks it. Pure time check —
  // deterministic per definition, so retried attempts re-consult it and a
  // replayed run sees the identical windows.
  bool OnIpcTransmit(size_t from, size_t to, SimTime now);

  // True when a partition window covers the (from, to) pair at `now`,
  // without counting a blocked attempt.
  bool Partitioned(size_t from, size_t to, SimTime now) const;

  // True when a down window covers the physical link between topology nodes
  // `a` and `b` (either direction) at `now`. Pure time check — the topology
  // consults it per link while validating a route, so it never counts.
  bool LinkDown(const std::string& a, const std::string& b, SimTime now) const;

  // One transfer denied its static route by a down link (the topology calls
  // this once per rerouted or blocked transfer, not once per link checked).
  void NoteLinkBlocked() { ++stats_.link_down_blocks; }

  const std::vector<LinkDownSpec>& link_downs() const { return link_downs_; }

  // Delay before a message that just became deliverable at a channel homed
  // on `replica` may be received; 0 outside every slow-consumer window.
  // Pure time check (longest covering window wins), so retried and replayed
  // consultations are deterministic.
  SimDuration OnIpcDeliver(size_t replica, SimTime now);

  const std::vector<std::pair<size_t, SimTime>>& replica_kills() const {
    return kills_;
  }
  const std::vector<CrashSpec>& crashes() const { return crashes_; }
  // Partition windows, exposed so the control plane can schedule readmission
  // probes at window ends instead of polling.
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }
  const FaultPlanStats& stats() const { return stats_; }
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::unordered_map<std::string, ToolFaultSpec> tool_faults_;
  std::vector<std::pair<size_t, SimTime>> kills_;
  std::vector<CrashSpec> crashes_;
  std::vector<KvPressureSpec> pressure_;
  std::vector<KvCorruptionSpec> corruption_;
  std::vector<PartitionSpec> partitions_;
  std::vector<SlowConsumerSpec> slow_consumers_;
  std::vector<LinkDownSpec> link_downs_;
  FaultPlanStats stats_;
};

}  // namespace symphony

#endif  // SRC_FAULTS_FAULT_PLAN_H_
