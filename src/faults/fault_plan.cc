#include "src/faults/fault_plan.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace symphony {

FaultDecision FaultPlan::OnToolCall(const std::string& tool, SimTime now,
                                    const std::string& args,
                                    uint64_t call_ordinal, uint32_t attempt) {
  FaultDecision decision;
  auto it = tool_faults_.find(tool);
  if (it == tool_faults_.end()) {
    return decision;
  }
  const ToolFaultSpec& spec = it->second;
  if (spec.fail_after >= 0 && now >= spec.fail_after &&
      (spec.recover_at < 0 || now < spec.recover_at)) {
    ++stats_.tool_faults;
    decision.status = UnavailableError("injected outage: tool '" + tool + "'");
    return decision;
  }
  // One decision stream per (tool, args, logical call, attempt): independent
  // of global call interleaving, so replayed re-execution re-draws it.
  Rng rng(Mix64(seed_ ^ Fnv1a(tool)) ^
          Mix64(Fnv1a(args) + call_ordinal * 0x9e3779b97f4a7c15ULL + attempt));
  if (spec.fail_prob > 0.0 && rng.NextDouble() < spec.fail_prob) {
    ++stats_.tool_faults;
    decision.status =
        UnavailableError("injected transient fault: tool '" + tool + "'");
    return decision;
  }
  if (spec.tail_prob > 0.0 && rng.NextDouble() < spec.tail_prob) {
    ++stats_.tool_tail_stretches;
    decision.latency_factor = spec.tail_factor;
  }
  return decision;
}

bool FaultPlan::OnKvTransfer(SimTime now, uint64_t chunk_key, uint32_t attempt,
                             std::string* bytes) {
  if (bytes == nullptr || bytes->empty()) {
    return false;
  }
  for (size_t w = 0; w < corruption_.size(); ++w) {
    const KvCorruptionSpec& spec = corruption_[w];
    if (now < spec.at || now >= spec.at + spec.duration) {
      continue;
    }
    // One decision stream per (window, chunk, attempt), independent of global
    // transfer interleaving — same keying discipline as OnToolCall.
    Rng rng(Mix64(seed_ ^ 0xc0220c7ed5eedULL) ^
            Mix64(chunk_key + w * 0x9e3779b97f4a7c15ULL + attempt));
    if (rng.NextDouble() >= spec.prob) {
      continue;
    }
    size_t index = static_cast<size_t>(rng.NextBounded(bytes->size()));
    uint8_t bit = static_cast<uint8_t>(1u << rng.NextBounded(8));
    (*bytes)[index] = static_cast<char>(
        static_cast<uint8_t>((*bytes)[index]) ^ bit);
    ++stats_.kv_corruptions;
    return true;
  }
  return false;
}

bool FaultPlan::Partitioned(size_t from, size_t to, SimTime now) const {
  for (const PartitionSpec& spec : partitions_) {
    bool pair = (spec.a == from && spec.b == to) ||
                (spec.a == to && spec.b == from);
    if (pair && now >= spec.at && now < spec.at + spec.duration) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::LinkDown(const std::string& a, const std::string& b,
                         SimTime now) const {
  for (const LinkDownSpec& spec : link_downs_) {
    bool pair = (spec.a == a && spec.b == b) || (spec.a == b && spec.b == a);
    if (pair && now >= spec.at && now < spec.at + spec.duration) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::OnIpcTransmit(size_t from, size_t to, SimTime now) {
  if (!Partitioned(from, to, now)) {
    return false;
  }
  ++stats_.partition_blocks;
  return true;
}

SimDuration FaultPlan::OnIpcDeliver(size_t replica, SimTime now) {
  SimDuration stall = 0;
  for (const SlowConsumerSpec& spec : slow_consumers_) {
    if (spec.replica == replica && now >= spec.at &&
        now < spec.at + spec.duration) {
      stall = std::max(stall, spec.stall);
    }
  }
  if (stall > 0) {
    ++stats_.slow_consumer_stalls;
  }
  return stall;
}

void FaultPlan::ArmKvPressure(Simulator* sim, Kvfs* kvfs) {
  for (const KvPressureSpec& spec : pressure_) {
    // A server (re)built mid-simulation — replica readmission, elastic
    // scale-out — must not re-open windows that already started; only
    // windows still ahead of the clock are armed on its fresh KVFS.
    if (spec.at < sim->now()) {
      continue;
    }
    sim->ScheduleAt(spec.at, [this, sim, kvfs, spec] {
      StatusOr<KvHandle> handle = kvfs->CreateAnonymous(kAdminLip);
      if (!handle.ok()) {
        return;  // Pool already saturated: the pressure exists without us.
      }
      std::vector<TokenRecord> filler(spec.pages *
                                      static_cast<uint64_t>(kPageTokens));
      for (size_t i = 0; i < filler.size(); ++i) {
        filler[i] = TokenRecord{0, static_cast<int32_t>(i), 0};
      }
      (void)kvfs->Append(*handle, filler);  // Best effort: partial is pressure too.
      (void)kvfs->Pin(*handle);             // Not evictable for the window.
      ++stats_.pressure_windows;
      sim->ScheduleAfter(spec.duration, [kvfs, h = *handle] {
        (void)kvfs->Unpin(h);
        (void)kvfs->Close(h);
      });
    });
  }
}

}  // namespace symphony
