// ControlPlane: the cluster's autonomic membership loop — heartbeat failure
// detection, automatic recovery, and elastic replica scaling (src/ctrl).
//
// Until this layer existed every failure was handled manually: the harness
// (or FaultPlan's kill schedule) called SymphonyCluster::KillReplica and the
// cluster obediently failed over. Nothing ever *detected* a dead replica,
// re-admitted a healed one, or grew the fleet under load. The control plane
// closes that loop deterministically:
//
//   * Heartbeats over the real network. Every monitored replica sends a
//     periodic heartbeat (seeded jitter on the period) to the SEAT — the
//     lowest-indexed live replica, which models wherever the membership
//     service currently runs; the seat itself beats to its DEPUTY (the next
//     live replica) so seat death is detected the same way. Each beat is
//     charged through NetworkTopology::Transfer, so it queues behind
//     migrations and IPC on shared links, and FaultPlan partition /
//     link-down windows block it exactly as they block IPC — false
//     suspicion is an honest consequence of the network model, not a
//     scripted event.
//
//   * Timeout detector. A periodic sweep classifies each replica by the age
//     of its last delivered beat: live -> suspected (age > suspect_after,
//     routing de-prefers it) -> dead (age > declare_dead_after). A
//     suspected replica whose beats resume returns to live and counts a
//     false suspicion.
//
//   * Exactly-once recovery with fencing. Declaring a replica dead bumps
//     its EPOCH and fences it (runtime halted; IPC fabric and snapshot
//     store refuse its sends/fetches at that epoch) BEFORE the journaled
//     failover replays its LIPs elsewhere. The dual guard is the lease: a
//     replica that cannot deliver a heartbeat for `lease` (< the declare
//     window) fences ITSELF, so by the time the seat declares it dead and
//     re-executes its LIPs, the old incarnation is provably inert — a LIP
//     is never executed twice, and replay stays bit-identical. Stale beats
//     from a previous epoch are dropped on arrival.
//
//   * Readmission. A crashed replica with a FaultPlan `down_for` heal
//     window — or a fenced-but-healthy false suspect — re-joins at the
//     bumped epoch: the cluster rebuilds the server slot fresh (its old
//     state is gone; its LIPs already live elsewhere), un-fences fabric and
//     store, and the detector resumes monitoring it. Probes run at known
//     times only (heal instants, partition/link-down window ends), so the
//     event queue never polls an unreachable replica forever.
//
//   * Elasticity. A scaling loop EWMAs the cluster's admission signal
//     (worst projected queue delay, submit-shed delta) and grows the fleet
//     through ClusterControl::ControlAddReplica — the new replica attaches
//     to a rack switch in the topology — or drains the least-loaded replica
//     when the load floor and cooldowns allow, migrating its LIPs off
//     before detaching it.
//
// Determinism: every decision is a pure function of (options.seed, replica,
// beat sequence, virtual time); heartbeat jitter is Mix64-derived, sweeps
// and beats run at scheduled virtual times, and link charging is the
// topology's deterministic serialization. A seeded run detects, fences,
// fails over, and scales identically across reruns. Enabling the control
// plane DOES change IPC timings (heartbeats occupy real links) — that is
// the point, not a bug.
//
// Liveness: all chains (beats, sweep, scaling) are guarded by
// ClusterControl::ControlHasWork and die when the cluster drains, so
// Simulator::Run terminates; SymphonyCluster re-arms them via Kick() when
// new work lands.
#ifndef SRC_CTRL_CONTROL_PLANE_H_
#define SRC_CTRL_CONTROL_PLANE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/net/topology.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

inline constexpr size_t kNoReplica = SIZE_MAX;

enum class ReplicaHealth {
  kLive,       // Beats arriving within suspect_after.
  kSuspected,  // Beats missing; routing de-prefers it; not yet declared.
  kDead,       // Declared dead: fenced, failed over, awaiting readmission.
  kDraining,   // Scale-in: migrating LIPs off before detach.
  kDetached,   // Drained and removed from service (terminal).
};
const char* ReplicaHealthName(ReplicaHealth health);

struct ScalingOptions {
  bool enabled = false;
  size_t min_replicas = 1;
  size_t max_replicas = 8;
  SimDuration evaluate_period = Millis(25);
  // EWMA weight for the admission signals (per evaluation tick).
  double ewma_alpha = 0.4;
  // Scale OUT when the EWMA of the worst per-replica projected admission
  // delay exceeds this, or when >= scale_out_on_sheds requests were shed
  // since the last tick (sheds are rare and decisive; delay is smooth).
  SimDuration scale_out_queue_delay = Millis(20);
  uint64_t scale_out_on_sheds = 1;
  SimDuration scale_out_cooldown = Millis(100);
  // Scale IN (drain the least-loaded replica) when the EWMA of live LIPs
  // per serving replica sinks below this floor with empty queues, no fresh
  // sheds, and the cooldown elapsed.
  double scale_in_load = 0.25;
  SimDuration scale_in_cooldown = Millis(400);
  // Scale-out on a role-partitioned fleet (ClusterOptions::roles) is
  // role-aware: the cluster joins the new replica to the hotter pool
  // (worst projected admission delay, live-LIP tie-break), so a prefill
  // backlog grows the prefill pool rather than adding a decode replica
  // that never sees the queued work. Role-less fleets add kUnified.
};

struct ControlPlaneOptions {
  bool enabled = false;
  // Heartbeat cadence: period stretched per beat by a deterministic factor
  // drawn uniformly from [1 - jitter, 1 + jitter] (seeded, per replica).
  SimDuration heartbeat_period = Millis(5);
  double heartbeat_jitter = 0.25;
  uint64_t heartbeat_bytes = 64;
  // Detector thresholds on the age of the last DELIVERED beat. Must order
  // suspect_after < lease < declare_dead_after: the source-side lease fence
  // has to land before the seat re-executes the victim's LIPs.
  SimDuration suspect_after = Millis(12);
  SimDuration declare_dead_after = Millis(40);
  // Source-side self-fence: a replica whose beats have been undeliverable
  // for this long halts itself (it must assume it has been declared dead).
  SimDuration lease = Millis(25);
  SimDuration sweep_period = Millis(4);
  uint64_t seed = 0xC7A1;
  ScalingOptions scaling;
};

struct ControlPlaneStats {
  uint64_t heartbeats_sent = 0;       // Handed to the topology.
  uint64_t heartbeats_delivered = 0;  // Arrived at the current epoch.
  uint64_t heartbeats_dropped = 0;    // Blocked by a partition / link-down.
  uint64_t suspicions = 0;
  uint64_t false_suspicions = 0;  // Suspected replicas whose beats resumed.
  uint64_t self_fences = 0;       // Lease expiries (source-side fencing).
  uint64_t dead_declared = 0;
  uint64_t auto_failovers = 0;
  uint64_t readmissions = 0;
  uint64_t seat_changes = 0;
  uint64_t scale_outs = 0;
  uint64_t scale_ins = 0;         // Drains started.
  uint64_t drains_completed = 0;  // Drained replicas detached.
  // Sum over declares of the beat age at declare time (detection latency =
  // age - heartbeat_period on average; bench divides by dead_declared).
  SimDuration detection_age_total = 0;
  SimTime last_dead_declared_at = -1;
  SimTime last_readmission_at = -1;
  SimTime last_scale_out_at = -1;
};

// What the control plane needs from the cluster, expressed as a narrow
// interface so src/ctrl never depends on src/serve (SymphonyCluster
// implements it privately). Every method is called at a scheduled virtual
// time from the control loops.
class ClusterControl {
 public:
  virtual ~ClusterControl() = default;

  struct LoadSignal {
    size_t serving = 0;    // Placeable (not dead/fenced/draining) replicas.
    size_t live_lips = 0;  // Across serving replicas.
    size_t queued = 0;     // Admission-queued launches across them.
    uint64_t sheds = 0;    // Cumulative cluster submit_sheds.
    SimDuration worst_delay = 0;  // Max projected admission delay.
    // Per-replica live LIPs; kNoReplica (SIZE_MAX) for non-serving slots.
    std::vector<size_t> lips;
  };

  virtual size_t ControlReplicaCount() const = 0;
  // True while `replica` can emit heartbeats (not dead, fenced, or halted).
  virtual bool ControlBeating(size_t replica) const = 0;
  // True while the cluster has undone work (records, live LIPs, queued
  // admissions, active drains). Gates every control chain.
  virtual bool ControlHasWork() const = 0;
  // When the replica's process is healthy again: 0 = already (fence-only),
  // a future SimTime = crash heal instant, negative = never (permanent
  // crash or manual kill — readmission is impossible).
  virtual SimTime ControlHealAt(size_t replica) const = 0;
  // Fences `replica` at `epoch`: halts its runtime and marks it refused at
  // the IPC fabric and snapshot store. Idempotent.
  virtual void ControlFence(size_t replica, uint64_t epoch) = 0;
  // Journaled failover of every LIP hosted on the (already fenced) replica,
  // spread across placeable survivors.
  virtual void ControlFailover(size_t replica) = 0;
  // Rebuilds the replica slot fresh and returns it to service at `epoch`.
  // False when readmission is impossible (retired slot, still down).
  virtual bool ControlReadmit(size_t replica, uint64_t epoch) = 0;
  // Grows the fleet by one replica (topology attach + fabric wiring);
  // returns the new index, or kNoReplica when refused.
  virtual size_t ControlAddReplica() = 0;
  // Starts draining `replica` (stops placement, migrates its LIPs off).
  virtual bool ControlStartDrain(size_t replica) = 0;
  // Retries straggler migrations and, once nothing is hosted, detaches the
  // replica. True when fully detached.
  virtual bool ControlDrainComplete(size_t replica) = 0;
  virtual LoadSignal ControlLoadSignal() const = 0;
};

class ControlPlane {
 public:
  // `cluster`, `sim`, and `topology` are required; `faults` and `trace` are
  // optional. Does not schedule anything until Kick().
  ControlPlane(Simulator* sim, ClusterControl* cluster,
               NetworkTopology* topology, FaultPlan* faults,
               TraceRecorder* trace, ControlPlaneOptions options);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // (Re)arms the heartbeat/sweep/scaling chains if work exists and they are
  // not already running. The cluster calls this whenever work lands
  // (Launch/Submit) so chains stopped by an idle period resume with a fresh
  // grace window instead of declaring everyone dead at the first sweep.
  void Kick();

  // A replica index now exists (scale-out or late attach): track it live.
  void NoteReplicaAdded(size_t replica);
  // The replica's crashed process healed (FaultPlan down_for): try to
  // readmit it now.
  void NoteReplicaHealed(size_t replica);
  // KillReplica was called manually: record the death (epoch bump, no
  // probes — manual kills stay permanent, the legacy contract).
  void NoteManualDeath(size_t replica);
  // DrainReplica was called manually: track the drain so the sweep finishes
  // the detach (the scaling loop flips this itself for its own drains).
  void NoteDrainStarted(size_t replica);

  ReplicaHealth Health(size_t replica) const;
  uint64_t Epoch(size_t replica) const;
  // Age of the last delivered beat; -1 when dead/detached or never beat.
  SimDuration HeartbeatAge(size_t replica) const;
  size_t seat() const { return seat_; }
  const ControlPlaneOptions& options() const { return options_; }
  const ControlPlaneStats& stats() const { return stats_; }

 private:
  struct Tracked {
    ReplicaHealth health = ReplicaHealth::kLive;
    uint64_t epoch = 1;
    // Grace anchor: (re)join/seat-change time; ages are measured from
    // max(last_heartbeat, joined_at) so a fresh member is never judged on
    // beats it could not yet have sent.
    SimTime joined_at = 0;
    SimTime last_heartbeat = 0;  // Arrival time of the last delivered beat.
    SimTime last_ok_send = 0;    // Last beat that left the replica.
    uint64_t beat_seq = 0;       // Jitter stream position.
    bool loop_running = false;   // A Beat event chain is pending.
    bool self_fenced = false;
  };

  void EnsureTracked();
  bool Monitorable(ReplicaHealth health) const {
    return health == ReplicaHealth::kLive ||
           health == ReplicaHealth::kSuspected ||
           health == ReplicaHealth::kDraining;
  }
  void StartBeat(size_t replica);
  void Beat(size_t replica);
  void RecordArrival(size_t replica, uint64_t epoch);
  SimDuration NextBeatDelay(size_t replica);
  void Sweep();
  void EvaluateScaling();
  void DeclareDead(size_t replica, SimDuration age);
  void ChooseSeat(bool count_change);
  void ScheduleReadmitProbes(size_t replica);
  void TryReadmit(size_t replica);
  void Trace(const std::string& what);

  Simulator* sim_;
  ClusterControl* cluster_;
  NetworkTopology* topology_;
  FaultPlan* faults_;      // Optional.
  TraceRecorder* trace_;   // Optional.
  ControlPlaneOptions options_;
  std::vector<Tracked> tracked_;
  size_t seat_ = kNoReplica;
  size_t deputy_ = kNoReplica;
  bool sweep_running_ = false;
  bool scale_running_ = false;
  // Scaling state.
  uint64_t last_sheds_ = 0;
  double ewma_delay_ = 0.0;
  double ewma_load_ = 0.0;
  SimTime last_scale_out_ = -1;
  SimTime last_scale_in_ = -1;
  ControlPlaneStats stats_;
};

}  // namespace symphony

#endif  // SRC_CTRL_CONTROL_PLANE_H_
