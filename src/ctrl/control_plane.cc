#include "src/ctrl/control_plane.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"

namespace symphony {

const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kLive:
      return "live";
    case ReplicaHealth::kSuspected:
      return "suspected";
    case ReplicaHealth::kDead:
      return "dead";
    case ReplicaHealth::kDraining:
      return "draining";
    case ReplicaHealth::kDetached:
      return "detached";
  }
  return "?";
}

ControlPlane::ControlPlane(Simulator* sim, ClusterControl* cluster,
                           NetworkTopology* topology, FaultPlan* faults,
                           TraceRecorder* trace, ControlPlaneOptions options)
    : sim_(sim),
      cluster_(cluster),
      topology_(topology),
      faults_(faults),
      trace_(trace),
      options_(options) {
  assert(sim != nullptr);
  assert(cluster != nullptr);
  assert(topology != nullptr);
  assert(options_.suspect_after < options_.lease &&
         options_.lease < options_.declare_dead_after &&
         "fencing order: a lost replica must self-fence before it can be "
         "declared dead");
  EnsureTracked();
  ChooseSeat(/*count_change=*/false);
}

void ControlPlane::Trace(const std::string& what) {
  if (trace_ != nullptr) {
    trace_->Instant("ctrl", what, sim_->now());
  }
}

void ControlPlane::EnsureTracked() {
  SimTime now = sim_->now();
  while (tracked_.size() < cluster_->ControlReplicaCount()) {
    Tracked t;
    t.joined_at = now;
    tracked_.push_back(t);
  }
}

void ControlPlane::Kick() {
  if (!options_.enabled) {
    return;
  }
  EnsureTracked();
  if (!cluster_->ControlHasWork()) {
    return;
  }
  for (size_t i = 0; i < tracked_.size(); ++i) {
    StartBeat(i);
  }
  if (!sweep_running_) {
    sweep_running_ = true;
    sim_->ScheduleAfter(options_.sweep_period, [this] { Sweep(); });
  }
  if (options_.scaling.enabled && !scale_running_) {
    scale_running_ = true;
    sim_->ScheduleAfter(options_.scaling.evaluate_period,
                        [this] { EvaluateScaling(); });
  }
}

void ControlPlane::StartBeat(size_t replica) {
  Tracked& t = tracked_[replica];
  if (t.loop_running || !Monitorable(t.health)) {
    return;
  }
  // Fresh grace window: the chain may have been stopped for a long idle
  // stretch, during which missing beats prove nothing.
  t.joined_at = std::max(t.joined_at, sim_->now());
  t.loop_running = true;
  sim_->ScheduleAfter(NextBeatDelay(replica),
                      [this, replica] { Beat(replica); });
}

SimDuration ControlPlane::NextBeatDelay(size_t replica) {
  Tracked& t = tracked_[replica];
  ++t.beat_seq;
  // Deterministic jitter stream per (seed, replica, beat): desynchronizes
  // the fleet's beats so they don't all hit the seat's links in lockstep.
  uint64_t draw = Mix64(options_.seed ^
                        (replica * 0x9e3779b97f4a7c15ULL) ^ t.beat_seq);
  double unit = static_cast<double>(draw >> 11) * 0x1p-53;  // [0, 1)
  double factor = 1.0 + options_.heartbeat_jitter * (2.0 * unit - 1.0);
  auto delay = static_cast<SimDuration>(
      static_cast<double>(options_.heartbeat_period) * factor);
  return std::max<SimDuration>(1, delay);
}

void ControlPlane::Beat(size_t replica) {
  Tracked& t = tracked_[replica];
  if (!Monitorable(t.health) || !cluster_->ControlHasWork()) {
    t.loop_running = false;
    return;
  }
  SimTime now = sim_->now();
  if (cluster_->ControlBeating(replica)) {
    size_t dest = replica == seat_ ? deputy_ : seat_;
    if (dest == kNoReplica || dest == replica) {
      // Sole member: its beat is trivially observed locally.
      t.last_ok_send = now;
      RecordArrival(replica, t.epoch);
    } else if ((faults_ != nullptr &&
                faults_->Partitioned(replica, dest, now)) ||
               !topology_->HasRoute(replica, dest, now)) {
      ++stats_.heartbeats_dropped;
      // Source-side lease: this replica cannot prove it is alive. Once the
      // lease (< declare_dead_after) expires it must assume the seat will
      // declare it dead and re-execute its LIPs elsewhere — so it fences
      // itself FIRST. This is what makes a partition-induced false
      // suspicion exactly-once: by declare time the old incarnation is
      // provably inert.
      if (!t.self_fenced &&
          now - std::max(t.last_ok_send, t.joined_at) > options_.lease) {
        t.self_fenced = true;
        ++stats_.self_fences;
        cluster_->ControlFence(replica, t.epoch);
        Trace("self-fence:replica" + std::to_string(replica));
      }
    } else {
      ++stats_.heartbeats_sent;
      t.last_ok_send = now;
      // The beat rides the real links — it queues behind migrations and IPC
      // and arrives when the topology says it arrives.
      SimTime arrive =
          topology_->Transfer(replica, dest, options_.heartbeat_bytes,
                              "hb:replica" + std::to_string(replica));
      uint64_t epoch = t.epoch;
      sim_->ScheduleAt(arrive, [this, replica, epoch] {
        RecordArrival(replica, epoch);
      });
    }
  }
  sim_->ScheduleAfter(NextBeatDelay(replica),
                      [this, replica] { Beat(replica); });
}

void ControlPlane::RecordArrival(size_t replica, uint64_t epoch) {
  Tracked& t = tracked_[replica];
  // A beat from a fenced epoch is a zombie talking: drop it. Same for a
  // replica already declared dead — its failover is committed.
  if (t.epoch != epoch || !Monitorable(t.health)) {
    return;
  }
  ++stats_.heartbeats_delivered;
  t.last_heartbeat = std::max(t.last_heartbeat, sim_->now());
}

void ControlPlane::Sweep() {
  if (!cluster_->ControlHasWork()) {
    sweep_running_ = false;
    return;
  }
  ChooseSeat(/*count_change=*/true);
  bool any_monitored = false;
  SimTime now = sim_->now();
  for (size_t i = 0; i < tracked_.size(); ++i) {
    Tracked& t = tracked_[i];
    if (!Monitorable(t.health)) {
      continue;
    }
    any_monitored = true;
    SimDuration age = now - std::max(t.last_heartbeat, t.joined_at);
    if (age > options_.declare_dead_after) {
      DeclareDead(i, age);
      continue;
    }
    if (t.health == ReplicaHealth::kLive && age > options_.suspect_after) {
      t.health = ReplicaHealth::kSuspected;
      ++stats_.suspicions;
      Trace("suspect:replica" + std::to_string(i));
    } else if (t.health == ReplicaHealth::kSuspected &&
               age <= options_.suspect_after) {
      // Beats resumed: the suspicion was false. Routing trusts it again.
      t.health = ReplicaHealth::kLive;
      ++stats_.false_suspicions;
      Trace("unsuspect:replica" + std::to_string(i));
    }
  }
  for (size_t i = 0; i < tracked_.size(); ++i) {
    if (tracked_[i].health == ReplicaHealth::kDraining &&
        cluster_->ControlDrainComplete(i)) {
      tracked_[i].health = ReplicaHealth::kDetached;
      ++stats_.drains_completed;
      Trace("detach:replica" + std::to_string(i));
    }
  }
  if (!any_monitored) {
    // Everyone is dead or detached: stop — a readmission probe re-kicks.
    sweep_running_ = false;
    return;
  }
  sim_->ScheduleAfter(options_.sweep_period, [this] { Sweep(); });
}

void ControlPlane::DeclareDead(size_t replica, SimDuration age) {
  Tracked& t = tracked_[replica];
  t.health = ReplicaHealth::kDead;
  // The epoch bump is the fence token: everything the old incarnation might
  // still try (sends, fetches, beats) is refused at the new epoch.
  ++t.epoch;
  ++stats_.dead_declared;
  stats_.detection_age_total += age;
  stats_.last_dead_declared_at = sim_->now();
  Trace("declare-dead:replica" + std::to_string(replica) + ":epoch" +
        std::to_string(t.epoch));
  // Fence BEFORE failover: the replay that re-executes this replica's LIPs
  // must never race a live original.
  cluster_->ControlFence(replica, t.epoch);
  cluster_->ControlFailover(replica);
  ++stats_.auto_failovers;
  if (replica == seat_ || replica == deputy_) {
    ChooseSeat(/*count_change=*/true);
  }
  ScheduleReadmitProbes(replica);
}

void ControlPlane::ChooseSeat(bool count_change) {
  size_t old_seat = seat_;
  seat_ = kNoReplica;
  deputy_ = kNoReplica;
  for (size_t i = 0; i < tracked_.size(); ++i) {
    if (!Monitorable(tracked_[i].health)) {
      continue;
    }
    if (seat_ == kNoReplica) {
      seat_ = i;
    } else if (deputy_ == kNoReplica) {
      deputy_ = i;
      break;
    }
  }
  if (seat_ != old_seat && seat_ != kNoReplica) {
    if (count_change) {
      ++stats_.seat_changes;
    }
    // The new seat starts with a fresh view: ages are measured from now, so
    // stale bookkeeping tied to the old seat can't cascade declarations.
    SimTime now = sim_->now();
    for (Tracked& t : tracked_) {
      t.joined_at = std::max(t.joined_at, now);
    }
    Trace("seat:replica" + std::to_string(seat_));
  }
}

void ControlPlane::ScheduleReadmitProbes(size_t replica) {
  SimTime heal = cluster_->ControlHealAt(replica);
  if (heal < 0) {
    return;  // Permanent: the process never comes back.
  }
  SimTime now = sim_->now();
  std::vector<SimTime> probes;
  probes.push_back(std::max(heal, now));
  if (faults_ != nullptr) {
    // Probe again when each fault window that could have isolated the
    // replica closes. Known absolute times only — never a polling loop.
    for (const PartitionSpec& p : faults_->partitions()) {
      SimTime end = p.at + p.duration;
      if ((p.a == replica || p.b == replica) && end > now) {
        probes.push_back(std::max(end, heal));
      }
    }
    for (const LinkDownSpec& l : faults_->link_downs()) {
      SimTime end = l.at + l.duration;
      if (end > now) {
        probes.push_back(std::max(end, heal));
      }
    }
  }
  for (SimTime at : probes) {
    sim_->ScheduleAt(at, [this, replica] { TryReadmit(replica); });
  }
}

void ControlPlane::NoteReplicaHealed(size_t replica) {
  TryReadmit(replica);
}

void ControlPlane::TryReadmit(size_t replica) {
  EnsureTracked();
  Tracked& t = tracked_[replica];
  if (t.health != ReplicaHealth::kDead) {
    return;
  }
  SimTime now = sim_->now();
  SimTime heal = cluster_->ControlHealAt(replica);
  if (heal < 0 || heal > now) {
    return;  // Still down (a partition-end probe can fire before the heal).
  }
  // The rejoiner must be able to reach the seat, or it would be declared
  // dead again immediately.
  if (seat_ != kNoReplica && seat_ != replica) {
    if (faults_ != nullptr && faults_->Partitioned(replica, seat_, now)) {
      return;
    }
    if (!topology_->HasRoute(replica, seat_, now)) {
      return;
    }
  }
  if (!cluster_->ControlReadmit(replica, t.epoch)) {
    return;
  }
  t.health = ReplicaHealth::kLive;
  t.self_fenced = false;
  t.joined_at = now;
  t.last_heartbeat = now;
  t.last_ok_send = now;
  ++stats_.readmissions;
  stats_.last_readmission_at = now;
  Trace("readmit:replica" + std::to_string(replica) + ":epoch" +
        std::to_string(t.epoch));
  if (seat_ == kNoReplica) {
    ChooseSeat(/*count_change=*/true);
  }
  Kick();
}

void ControlPlane::NoteReplicaAdded(size_t replica) {
  EnsureTracked();
  assert(replica < tracked_.size());
  (void)replica;
  Kick();
}

void ControlPlane::NoteManualDeath(size_t replica) {
  EnsureTracked();
  Tracked& t = tracked_[replica];
  if (t.health == ReplicaHealth::kDead ||
      t.health == ReplicaHealth::kDetached) {
    return;
  }
  t.health = ReplicaHealth::kDead;
  ++t.epoch;
  if (replica == seat_ || replica == deputy_) {
    ChooseSeat(/*count_change=*/true);
  }
}

void ControlPlane::NoteDrainStarted(size_t replica) {
  EnsureTracked();
  Tracked& t = tracked_[replica];
  if (!Monitorable(t.health) || t.health == ReplicaHealth::kDraining) {
    return;
  }
  t.health = ReplicaHealth::kDraining;
  Trace("drain:replica" + std::to_string(replica));
  Kick();  // The sweep chain must run to finish the detach.
}

void ControlPlane::EvaluateScaling() {
  if (!cluster_->ControlHasWork()) {
    scale_running_ = false;
    return;
  }
  ClusterControl::LoadSignal signal = cluster_->ControlLoadSignal();
  uint64_t shed_delta = signal.sheds - last_sheds_;
  last_sheds_ = signal.sheds;
  double alpha = options_.scaling.ewma_alpha;
  ewma_delay_ = alpha * static_cast<double>(signal.worst_delay) +
                (1.0 - alpha) * ewma_delay_;
  double per_replica =
      signal.serving > 0 ? static_cast<double>(signal.live_lips) /
                               static_cast<double>(signal.serving)
                         : 0.0;
  ewma_load_ = alpha * per_replica + (1.0 - alpha) * ewma_load_;
  SimTime now = sim_->now();
  bool overloaded =
      (options_.scaling.scale_out_on_sheds > 0 &&
       shed_delta >= options_.scaling.scale_out_on_sheds) ||
      ewma_delay_ >
          static_cast<double>(options_.scaling.scale_out_queue_delay);
  if (overloaded && signal.serving < options_.scaling.max_replicas &&
      (last_scale_out_ < 0 ||
       now - last_scale_out_ >= options_.scaling.scale_out_cooldown)) {
    size_t added = cluster_->ControlAddReplica();
    if (added != kNoReplica) {
      last_scale_out_ = now;
      ++stats_.scale_outs;
      stats_.last_scale_out_at = now;
      Trace("scale-out:replica" + std::to_string(added));
      NoteReplicaAdded(added);
    }
  } else if (!overloaded && signal.queued == 0 && shed_delta == 0 &&
             signal.serving > options_.scaling.min_replicas &&
             ewma_load_ < options_.scaling.scale_in_load &&
             (last_scale_in_ < 0 ||
              now - last_scale_in_ >= options_.scaling.scale_in_cooldown)) {
    // Drain the least-loaded serving replica; ties break to the HIGHEST
    // index so elastic growth unwinds LIFO.
    size_t victim = kNoReplica;
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < signal.lips.size(); ++i) {
      if (signal.lips[i] != SIZE_MAX && signal.lips[i] <= best) {
        best = signal.lips[i];
        victim = i;
      }
    }
    if (victim != kNoReplica && cluster_->ControlStartDrain(victim)) {
      tracked_[victim].health = ReplicaHealth::kDraining;
      last_scale_in_ = now;
      ++stats_.scale_ins;
      Trace("drain:replica" + std::to_string(victim));
    }
  }
  sim_->ScheduleAfter(options_.scaling.evaluate_period,
                      [this] { EvaluateScaling(); });
}

ReplicaHealth ControlPlane::Health(size_t replica) const {
  if (replica >= tracked_.size()) {
    return ReplicaHealth::kLive;
  }
  return tracked_[replica].health;
}

uint64_t ControlPlane::Epoch(size_t replica) const {
  if (replica >= tracked_.size()) {
    return 1;
  }
  return tracked_[replica].epoch;
}

SimDuration ControlPlane::HeartbeatAge(size_t replica) const {
  if (replica >= tracked_.size() ||
      !Monitorable(tracked_[replica].health) ||
      tracked_[replica].last_heartbeat == 0) {
    return -1;
  }
  return sim_->now() - tracked_[replica].last_heartbeat;
}

}  // namespace symphony
