#include "src/net/topology.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace symphony {
namespace {

constexpr SimDuration kUnreachable = std::numeric_limits<SimDuration>::max();

}  // namespace

NetworkTopology::NetworkTopology(Simulator* sim, const CostModel* cost,
                                 FaultPlan* faults, TraceRecorder* trace,
                                 TopologyOptions options)
    : sim_(sim),
      cost_(cost),
      faults_(faults),
      trace_(trace),
      options_(options) {
  assert(sim != nullptr);
  assert(cost != nullptr);
  if (options_.preset == TopologyOptions::Preset::kSingleSwitch) {
    EnsureReplica(options_.replicas > 0 ? options_.replicas - 1 : 0);
    return;
  }
  // kTwoRack: fixed graph, built up front from the replica count.
  const HardwareConfig& hw = cost_->hardware();
  size_t replicas = std::max<size_t>(options_.replicas, 1);
  size_t split = options_.rack_split > 0 ? options_.rack_split
                                         : (replicas + 1) / 2;
  split = std::min(split, replicas);
  options_.rack_split = split;
  double edge_bw = options_.edge_bandwidth > 0 ? options_.edge_bandwidth
                                               : hw.interconnect_bandwidth;
  SimDuration edge_lat = options_.edge_latency >= 0
                             ? options_.edge_latency
                             : hw.interconnect_latency / 2;
  double up_bw = options_.uplink_bandwidth > 0 ? options_.uplink_bandwidth
                                               : hw.interconnect_bandwidth;
  SimDuration up_lat = options_.uplink_latency >= 0 ? options_.uplink_latency
                                                    : hw.interconnect_latency;
  double spine_bw = options_.spine_bandwidth > 0 ? options_.spine_bandwidth
                                                 : up_bw;
  SimDuration spine_lat =
      options_.spine_latency >= 0 ? options_.spine_latency : 4 * up_lat;

  replica_count_ = replicas;
  for (size_t i = 0; i < replicas; ++i) {
    names_.push_back("replica" + std::to_string(i));
    replica_node_.push_back(i);
  }
  size_t rack0 = names_.size();
  names_.push_back("rack0");
  size_t rack1 = names_.size();
  names_.push_back("rack1");
  adj_.resize(names_.size() + (options_.spine ? 1 : 0));
  for (size_t i = 0; i < replicas; ++i) {
    AddBidirectionalEdge(i, i < split ? rack0 : rack1, edge_bw, edge_lat);
  }
  rack0_node_ = rack0;
  rack1_node_ = rack1;
  rack_members_[0] = split;
  rack_members_[1] = replicas - split;
  edge_bw_ = edge_bw;
  edge_lat_ = edge_lat;
  AddBidirectionalEdge(rack0, rack1, up_bw, up_lat);
  if (options_.spine) {
    size_t spine = names_.size();
    names_.push_back("spine");
    AddBidirectionalEdge(rack0, spine, spine_bw, spine_lat);
    AddBidirectionalEdge(spine, rack1, spine_bw, spine_lat);
  }
}

void NetworkTopology::AddBidirectionalEdge(size_t a, size_t b,
                                           double bandwidth,
                                           SimDuration latency) {
  adj_[a].push_back(Edge{b, bandwidth, latency});
  adj_[b].push_back(Edge{a, bandwidth, latency});
}

void NetworkTopology::EnsureReplica(size_t index) {
  if (index < replica_count_) {
    return;
  }
  // Fixed presets size their graph at construction and grow only through
  // AddReplica; a replica index outside the built graph is a wiring bug.
  assert(adj_.empty() && "replica index outside the fixed topology graph");
  while (replica_count_ <= index) {
    names_.push_back("replica" + std::to_string(replica_count_));
    replica_node_.push_back(replica_count_);
    ++replica_count_;
  }
}

size_t NetworkTopology::AddReplica() {
  size_t index = replica_count_;
  if (adj_.empty()) {
    EnsureReplica(index);  // Mesh: node id == replica index.
    return index;
  }
  // Switch preset: the new node lands past the switches, so it gets its own
  // node id and an edge to the emptier rack. A leaf never shortens an
  // existing route, so memoized static paths stay valid.
  size_t node = names_.size();
  names_.push_back("replica" + std::to_string(index));
  adj_.emplace_back();
  size_t rack_slot = rack_members_[0] <= rack_members_[1] ? 0 : 1;
  size_t rack = rack_slot == 0 ? rack0_node_ : rack1_node_;
  AddBidirectionalEdge(node, rack, edge_bw_, edge_lat_);
  ++rack_members_[rack_slot];
  replica_node_.push_back(node);
  ++replica_count_;
  return index;
}

size_t NetworkTopology::NodeOf(size_t replica) const {
  assert(replica < replica_node_.size());
  return replica_node_[replica];
}

Link& NetworkTopology::LinkFor(size_t from, size_t to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it != links_.end()) {
    return *it->second;
  }
  std::string name = "link:" + names_[from] + "->" + names_[to];
  std::unique_ptr<Link> link;
  if (adj_.empty()) {
    // Ideal-switch mesh: the uniform cost-model interconnect.
    link = std::make_unique<Link>(sim_, cost_, trace_, std::move(name));
  } else {
    const Edge* edge = EdgeBetween(from, to);
    assert(edge != nullptr && "no physical edge between route hops");
    link = std::make_unique<Link>(sim_, edge->bandwidth, edge->latency, trace_,
                                  std::move(name));
  }
  it = links_.emplace(key, std::move(link)).first;
  return *it->second;
}

const NetworkTopology::Edge* NetworkTopology::EdgeBetween(size_t from,
                                                          size_t to) const {
  for (const Edge& edge : adj_[from]) {
    if (edge.to == to) {
      return &edge;
    }
  }
  return nullptr;
}

bool NetworkTopology::LinkUp(size_t a, size_t b, SimTime now) const {
  return faults_ == nullptr ||
         !faults_->LinkDown(names_[a], names_[b], now);
}

std::vector<size_t> NetworkTopology::Shortest(size_t from, size_t to,
                                              SimTime now,
                                              bool respect_down) const {
  if (from == to) {
    return {from};
  }
  if (adj_.empty()) {
    // Mesh: one direct link, no alternates.
    if (respect_down && !LinkUp(from, to, now)) {
      return {};
    }
    return {from, to};
  }
  // Deterministic Dijkstra over latency: O(n^2) selection with (distance,
  // node id) tie-breaks, so equal-cost routes always resolve the same way.
  size_t n = names_.size();
  std::vector<SimDuration> dist(n, kUnreachable);
  std::vector<size_t> prev(n, n);
  std::vector<bool> done(n, false);
  dist[from] = 0;
  for (size_t round = 0; round < n; ++round) {
    size_t best = n;
    for (size_t v = 0; v < n; ++v) {
      if (!done[v] && dist[v] != kUnreachable &&
          (best == n || dist[v] < dist[best])) {
        best = v;
      }
    }
    if (best == n || best == to) {
      break;
    }
    done[best] = true;
    for (const Edge& edge : adj_[best]) {
      if (respect_down && !LinkUp(best, edge.to, now)) {
        continue;
      }
      SimDuration cand = dist[best] + edge.latency;
      if (cand < dist[edge.to] ||
          (cand == dist[edge.to] && best < prev[edge.to])) {
        dist[edge.to] = cand;
        prev[edge.to] = best;
      }
    }
  }
  if (dist[to] == kUnreachable) {
    return {};
  }
  std::vector<size_t> path;
  for (size_t v = to; v != from; v = prev[v]) {
    path.push_back(v);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

const std::vector<size_t>& NetworkTopology::StaticPath(size_t from,
                                                       size_t to) {
  auto key = std::make_pair(from, to);
  auto it = static_paths_.find(key);
  if (it == static_paths_.end()) {
    std::vector<size_t> path = Shortest(from, to, 0, /*respect_down=*/false);
    assert(!path.empty() && "topology graph is disconnected");
    it = static_paths_.emplace(key, std::move(path)).first;
  }
  return it->second;
}

std::vector<size_t> NetworkTopology::PathFor(size_t from, size_t to,
                                             SimTime now, bool* rerouted) {
  *rerouted = false;
  const std::vector<size_t>& preferred = StaticPath(from, to);
  if (faults_ == nullptr || faults_->link_downs().empty()) {
    return preferred;
  }
  bool up = true;
  for (size_t i = 0; i + 1 < preferred.size(); ++i) {
    if (!LinkUp(preferred[i], preferred[i + 1], now)) {
      up = false;
      break;
    }
  }
  if (up) {
    return preferred;
  }
  std::vector<size_t> alternate = Shortest(from, to, now, /*respect_down=*/true);
  *rerouted = !alternate.empty();
  return alternate;
}

bool NetworkTopology::Routable(size_t from, size_t to, SimTime now) {
  if (HasRoute(from, to, now)) {
    return true;
  }
  ++stats_.blocked;
  faults_->NoteLinkBlocked();
  return false;
}

bool NetworkTopology::HasRoute(size_t from, size_t to, SimTime now) {
  if (faults_ == nullptr || faults_->link_downs().empty() || from == to) {
    return true;
  }
  EnsureReplica(std::max(from, to));
  bool rerouted = false;
  return !PathFor(NodeOf(from), NodeOf(to), now, &rerouted).empty();
}

SimTime NetworkTopology::Transfer(size_t from, size_t to, uint64_t bytes,
                                  const std::string& label) {
  EnsureReplica(std::max(from, to));
  ++stats_.transfers;
  stats_.payload_bytes += bytes;
  SimTime now = sim_->now();
  if (from == to) {
    return now;
  }
  bool rerouted = false;
  size_t from_node = NodeOf(from);
  size_t to_node = NodeOf(to);
  std::vector<size_t> path = PathFor(from_node, to_node, now, &rerouted);
  if (rerouted) {
    ++stats_.reroutes;
    faults_->NoteLinkBlocked();
  }
  if (path.empty()) {
    // Fully severed cut: charge the static route deterministically rather
    // than drop the bytes. Callers gate on Routable() to avoid this.
    path = StaticPath(from_node, to_node);
  }
  if (path.size() > 2) {
    ++stats_.multi_hop_transfers;
  }
  // Store-and-forward: hop N serializes once hop N-1 delivered, and queues
  // behind whatever else occupies that wire.
  SimTime at = now;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    at = LinkFor(path[i], path[i + 1]).TransmitFrom(at, bytes, label);
  }
  return at;
}

SimDuration NetworkTopology::Distance(size_t from, size_t to) {
  EnsureReplica(std::max(from, to));
  if (from == to) {
    return 0;
  }
  if (adj_.empty()) {
    return cost_->hardware().interconnect_latency;
  }
  const std::vector<size_t>& path = StaticPath(NodeOf(from), NodeOf(to));
  SimDuration total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Edge* edge = EdgeBetween(path[i], path[i + 1]);
    assert(edge != nullptr);
    total += edge->latency;
  }
  return total;
}

std::vector<TopoLinkReport> NetworkTopology::LinkReport() const {
  std::vector<TopoLinkReport> report;
  report.reserve(links_.size());
  for (const auto& entry : links_) {
    report.push_back(TopoLinkReport{entry.second->name(),
                                    entry.second->stats()});
  }
  return report;
}

}  // namespace symphony
