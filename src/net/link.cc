#include "src/net/link.h"

#include <algorithm>
#include <cassert>

namespace symphony {

Link::Link(Simulator* sim, const CostModel* cost, TraceRecorder* trace,
           std::string name)
    : sim_(sim), trace_(trace), name_(std::move(name)) {
  assert(sim != nullptr);
  assert(cost != nullptr);
  bandwidth_ = cost->hardware().interconnect_bandwidth;
  latency_ = cost->hardware().interconnect_latency;
}

Link::Link(Simulator* sim, double bandwidth, SimDuration latency,
           TraceRecorder* trace, std::string name)
    : sim_(sim),
      trace_(trace),
      name_(std::move(name)),
      bandwidth_(bandwidth),
      latency_(latency) {
  assert(sim != nullptr);
  assert(bandwidth > 0.0);
  assert(latency >= 0);
}

SimTime Link::Transmit(uint64_t bytes, const std::string& label) {
  return TransmitFrom(sim_->now(), bytes, label);
}

SimTime Link::TransmitFrom(SimTime earliest, uint64_t bytes,
                           const std::string& label) {
  SimTime start = std::max(earliest, sim_->now());
  SimDuration serialize =
      DurationFromSeconds(static_cast<double>(bytes) / bandwidth_);
  SimTime begin = std::max(start, busy_until_);
  stats_.queue_delay += begin - start;
  busy_until_ = begin + serialize;
  SimTime arrival = busy_until_ + latency_;
  ++stats_.transfers;
  stats_.bytes += bytes;
  if (trace_ != nullptr) {
    trace_->Span("net", name_ + ":" + label, start, arrival - start);
  }
  return arrival;
}

}  // namespace symphony
