#include "src/net/link.h"

#include <algorithm>
#include <cassert>

namespace symphony {

Link::Link(Simulator* sim, const CostModel* cost, TraceRecorder* trace,
           std::string name)
    : sim_(sim), cost_(cost), trace_(trace), name_(std::move(name)) {
  assert(sim != nullptr);
  assert(cost != nullptr);
}

SimTime Link::Transmit(uint64_t bytes, const std::string& label) {
  const HardwareConfig& hw = cost_->hardware();
  SimTime now = sim_->now();
  SimDuration serialize = DurationFromSeconds(
      static_cast<double>(bytes) / hw.interconnect_bandwidth);
  busy_until_ = std::max(now, busy_until_) + serialize;
  SimTime arrival = busy_until_ + hw.interconnect_latency;
  ++stats_.transfers;
  stats_.bytes += bytes;
  if (trace_ != nullptr) {
    trace_->Span("net", name_ + ":" + label, now, arrival - now);
  }
  return arrival;
}

}  // namespace symphony
