// A simulated point-to-point interconnect link between two replicas.
//
// Each directed replica pair gets one Link (the IPC fabric creates them
// lazily). A transfer serializes on the link's bandwidth — back-to-back
// messages queue behind each other the way packets do on a NIC — and then
// pays the interconnect's propagation latency on top. Bandwidth and latency
// come from the shared CostModel (HardwareConfig::interconnect_*), the same
// budget journal shipping and snapshot transfers are charged against, so IPC
// traffic and migration traffic are modeled as contending for one fabric.
// Every transfer emits a span on the "net" trace track.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>

#include "src/model/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

struct LinkStats {
  uint64_t transfers = 0;
  uint64_t bytes = 0;
};

class Link {
 public:
  // `cost` is required; `trace` is optional.
  Link(Simulator* sim, const CostModel* cost, TraceRecorder* trace,
       std::string name);

  // Charges one transfer of `bytes` starting now and returns its absolute
  // arrival time: serialization queues behind earlier transfers still on the
  // wire, then the propagation latency applies.
  SimTime Transmit(uint64_t bytes, const std::string& label);

  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  const CostModel* cost_;
  TraceRecorder* trace_;
  std::string name_;
  SimTime busy_until_ = 0;
  LinkStats stats_;
};

}  // namespace symphony

#endif  // SRC_NET_LINK_H_
